// Pedagogical walkthrough of the paper's machinery on one query: prints the
// core-forest-leaf decomposition, the BFS tree with its non-tree edge
// classification, the CPI candidate sets per construction strategy, and the
// final matching order.
//
//   $ ./build/examples/decomposition_explorer
//
// Uses the paper's Figure 4/Figure 7 style query over a Yeast-like network.

#include <cstdio>
#include <string>

#include "cpi/cpi_builder.h"
#include "cpi/root_select.h"
#include "decomp/bfs_tree.h"
#include "decomp/cfl_decomposition.h"
#include "decomp/two_core.h"
#include "gen/datasets.h"
#include "gen/query_gen.h"
#include "graph/graph_stats.h"
#include "match/cfl_match.h"
#include "order/matching_order.h"

int main() {
  using namespace cfl;

  Graph data = MakeYeastLike(0.5);
  std::printf("data graph: %s\n\n", Describe(ComputeStats(data)).c_str());

  // A query in the Figure 4 spirit: triangle core with pendant trees.
  QueryGenOptions qo;
  qo.num_vertices = 12;
  qo.sparse = true;
  qo.seed = 7;
  Graph q = GenerateQuery(data, qo);
  std::printf("query: %s\n", Describe(ComputeStats(q)).c_str());
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    std::printf("  u%-2u label=%u neighbors:", u, q.label(u));
    for (VertexId w : q.Neighbors(u)) std::printf(" u%u", w);
    std::printf("\n");
  }

  // --- Core-forest-leaf decomposition ------------------------------------
  LabelDegreeIndex index(data);
  std::vector<VertexId> core = TwoCoreVertices(q);
  std::vector<VertexId> choices = core;
  if (choices.empty()) {
    for (VertexId u = 0; u < q.NumVertices(); ++u) choices.push_back(u);
  }
  VertexId root = SelectRoot(q, data, index, choices);
  CflDecomposition d = DecomposeCfl(q, root);

  auto print_set = [](const char* name, const std::vector<VertexId>& vs) {
    std::printf("%s = {", name);
    for (size_t i = 0; i < vs.size(); ++i) {
      std::printf("%su%u", i ? ", " : "", vs[i]);
    }
    std::printf("}\n");
  };
  std::printf("\ncore-forest-leaf decomposition%s:\n",
              d.QueryIsTree() ? " (query is a tree; core = chosen root)" : "");
  print_set("  V_C (core)  ", d.core);
  print_set("  V_T (forest)", d.forest);
  print_set("  V_I (leaf)  ", d.leaf);
  print_set("  connections ", d.connections);

  // --- BFS tree -----------------------------------------------------------
  BfsTree tree = BuildBfsTree(q, root);
  std::printf("\nBFS tree rooted at u%u (selected per A.6):\n", root);
  for (uint32_t lev = 0; lev < tree.NumLevels(); ++lev) {
    std::printf("  level %u:", lev + 1);
    for (VertexId u : tree.levels[lev]) {
      if (tree.parent[u] == kInvalidVertex) {
        std::printf(" u%u", u);
      } else {
        std::printf(" u%u(p=u%u)", u, tree.parent[u]);
      }
    }
    std::printf("\n");
  }
  for (const NonTreeEdge& e : tree.non_tree_edges) {
    std::printf("  non-tree edge (u%u,u%u): %s\n", e.u, e.v,
                e.same_level ? "S-NTE (same level)" : "C-NTE (cross level)");
  }

  // --- CPI under the three construction strategies -----------------------
  std::printf("\nCPI candidate-set sizes per strategy:\n  %-4s", "u");
  std::printf("%10s %10s %10s\n", "naive", "top-down", "refined");
  Cpi naive = BuildCpi(q, data, tree, CpiStrategy::kNaive);
  Cpi td = BuildCpi(q, data, tree, CpiStrategy::kTopDown);
  Cpi refined = BuildCpi(q, data, tree, CpiStrategy::kRefined);
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    std::printf("  u%-3u%10zu %10zu %10zu\n", u, naive.Candidates(u).size(),
                td.Candidates(u).size(), refined.Candidates(u).size());
  }
  std::printf("  total CPI entries: naive=%llu td=%llu refined=%llu\n",
              static_cast<unsigned long long>(naive.SizeInEntries()),
              static_cast<unsigned long long>(td.SizeInEntries()),
              static_cast<unsigned long long>(refined.SizeInEntries()));

  // --- Matching order ------------------------------------------------------
  MatchingOrder order =
      ComputeMatchingOrder(q, refined, d, DecompositionMode::kCfl);
  std::printf("\nmatching order (macro order V_C, V_T, then leaf-match):\n  ");
  for (uint32_t i = 0; i < order.steps.size(); ++i) {
    std::printf("%su%u", i ? " -> " : "", order.steps[i].u);
    if (i + 1 == order.num_core_steps) std::printf(" | ");
  }
  std::printf("\n  (leaf-match handles:");
  for (VertexId u : order.leaves) std::printf(" u%u", u);
  std::printf(")\n");

  // --- And the answer ------------------------------------------------------
  CflMatcher matcher(data);
  MatchResult r = matcher.Match(q);
  std::printf("\nembeddings of the query in the data graph: %llu\n",
              static_cast<unsigned long long>(r.embeddings));
  return 0;
}
