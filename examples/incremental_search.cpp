// Incremental (pull-based) embedding retrieval with EmbeddingIterator —
// paper Algorithm 1's "only one embedding is generated each time" protocol.
//
// Typical use: paginate matches in an interactive tool, or stop as soon as
// some externally-checked condition is met, without ever holding more than
// O(|V(q)|) of search state.
//
//   $ ./build/examples/incremental_search [page_size]

#include <cstdio>
#include <cstdlib>

#include "gen/datasets.h"
#include "gen/query_gen.h"
#include "graph/graph_stats.h"
#include "match/iterator.h"

int main(int argc, char** argv) {
  using namespace cfl;
  const uint32_t page_size = argc > 1 ? std::atoi(argv[1]) : 5;

  Graph data = MakeYeastLike(0.5);
  std::printf("data graph: %s\n", Describe(ComputeStats(data)).c_str());

  QueryGenOptions qo;
  qo.num_vertices = 8;
  qo.sparse = true;
  qo.seed = 11;
  Graph query = GenerateQuery(data, qo);
  std::printf("query: %s\n\n", Describe(ComputeStats(query)).c_str());

  EmbeddingIterator it(data, query);
  Embedding m;
  for (uint32_t page = 1; page <= 3; ++page) {
    std::printf("-- page %u --\n", page);
    for (uint32_t i = 0; i < page_size; ++i) {
      if (!it.Next(&m)) {
        std::printf("(no more embeddings; %llu total)\n",
                    static_cast<unsigned long long>(it.produced()));
        return 0;
      }
      std::printf("#%llu:", static_cast<unsigned long long>(it.produced()));
      for (VertexId u = 0; u < query.NumVertices(); ++u) {
        std::printf(" u%u->v%u", u, m[u]);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(stopping after 3 pages; produced %llu of an unknown "
              "total — nothing beyond these was computed)\n",
              static_cast<unsigned long long>(it.produced()));
  return 0;
}
