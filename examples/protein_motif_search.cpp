// Protein-motif search: the workload that motivates the paper (protein
// interaction network analysis [13]). Builds a Yeast-scale PPI stand-in,
// then searches for classic interaction motifs — triangles with tails,
// stars, and a "bridged complexes" pattern — and reports match counts and
// the phase timing breakdown.
//
//   $ ./build/examples/protein_motif_search [scale]
//
// scale in (0, 1] shrinks the network (default 1.0 = Yeast-size).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "match/cfl_match.h"

namespace {

using namespace cfl;

struct Motif {
  std::string name;
  Graph pattern;
};

// Motifs use labels that actually occur in the PPI stand-in (0 = the most
// common GO-term bucket, etc. — the label distribution is power-law).
std::vector<Motif> MakeMotifs() {
  std::vector<Motif> motifs;
  // A triangle of three distinct protein families.
  motifs.push_back({"triangle(0,1,2)",
                    MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}})});
  // A hub protein with three identical-family partners (NEC-heavy: the
  // three leaves collapse to one class in leaf-match).
  motifs.push_back(
      {"star(0;1,1,1)",
       MakeGraph({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}})});
  // Two interacting hubs, each with private partners — the core-forest-leaf
  // structure the paper's framework shines on. Common labels only, so the
  // pattern actually occurs.
  motifs.push_back(
      {"bridged hubs",
       MakeGraph({0, 0, 1, 1, 1, 1},
                 {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {1, 5}})});
  // A tailed triangle (core = triangle, tail = forest + leaf).
  motifs.push_back(
      {"tailed triangle",
       MakeGraph({0, 0, 0, 1, 2},
                 {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}})});
  return motifs;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  if (argc > 1) scale = std::atof(argv[1]);
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "usage: %s [scale in (0,1]]\n", argv[0]);
    return 1;
  }

  Graph network = MakeYeastLike(scale);
  std::printf("protein network (Yeast-like stand-in): %s\n",
              Describe(ComputeStats(network)).c_str());

  CflMatcher matcher(network);
  MatchOptions options;
  options.limits.max_embeddings = 10'000'000;
  options.limits.time_limit_seconds = 30.0;

  std::printf("\n%-20s %14s %10s %10s %10s\n", "motif", "matches",
              "build(ms)", "order(ms)", "enum(ms)");
  for (const Motif& motif : MakeMotifs()) {
    MatchResult r = matcher.Match(motif.pattern, options);
    std::printf("%-20s %14llu%c %9.3f %10.3f %10.3f\n", motif.name.c_str(),
                static_cast<unsigned long long>(r.embeddings),
                r.reached_limit ? '+' : ' ', r.build_seconds * 1e3,
                r.order_seconds * 1e3, r.enumerate_seconds * 1e3);
  }
  std::printf("\n('+' marks counts truncated at the embedding cap)\n");
  return 0;
}
