// Head-to-head comparison of every matching engine in the library on one
// workload — the quickest way to see the paper's headline result locally.
//
//   $ ./build/examples/compare_algorithms [dataset] [query_size] [S|N]
//
// dataset: hprd | yeast | human | wordnet | dblp | synthetic (default yeast)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baseline/compress.h"
#include "baseline/quicksi.h"
#include "baseline/turboiso.h"
#include "baseline/ullmann.h"
#include "gen/datasets.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/graph_stats.h"
#include "match/engine.h"

int main(int argc, char** argv) {
  using namespace cfl;

  std::string dataset = argc > 1 ? argv[1] : "yeast";
  uint32_t query_size = argc > 2 ? std::atoi(argv[2]) : 50;
  bool sparse = argc > 3 ? (argv[3][0] == 'S' || argv[3][0] == 's') : false;

  Graph g;
  if (dataset == "synthetic") {
    SyntheticOptions options;
    options.num_vertices = 50'000;
    options.seed = 4;
    g = MakeSynthetic(options);
  } else {
    g = MakeDatasetLike(dataset, /*scale=*/0.5);
  }
  std::printf("data graph [%s-like]: %s\n", dataset.c_str(),
              Describe(ComputeStats(g)).c_str());

  std::vector<Graph> queries =
      GenerateQuerySet(g, /*count=*/10, query_size, sparse, /*seed=*/2016);
  std::printf("10 random-walk queries, |V(q)|=%u, %s\n\n", query_size,
              sparse ? "sparse" : "non-sparse");

  std::vector<std::unique_ptr<SubgraphEngine>> engines;
  engines.push_back(MakeUllmann(g));
  engines.push_back(MakeQuickSi(g));
  engines.push_back(MakeTurboIso(g));
  engines.push_back(MakeTurboIsoBoost(g));
  engines.push_back(MakeCflMatch(g));
  engines.push_back(MakeCflMatchBoost(g));

  MatchLimits limits;
  limits.max_embeddings = 100'000;
  limits.time_limit_seconds = 5.0;

  std::printf("%-16s %12s %14s %9s\n", "engine", "avg ms/query",
              "embeddings", "timeouts");
  for (const auto& engine : engines) {
    double total_s = 0.0;
    uint64_t embeddings = 0;
    uint32_t timeouts = 0;
    for (const Graph& q : queries) {
      MatchResult r = engine->Run(q, limits);
      total_s += r.total_seconds;
      embeddings += r.embeddings;
      timeouts += r.timed_out ? 1 : 0;
    }
    std::printf("%-16s %12.3f %14llu %9u\n",
                std::string(engine->name()).c_str(),
                total_s * 1e3 / queries.size(),
                static_cast<unsigned long long>(embeddings), timeouts);
  }
  std::printf(
      "\n(embedding totals can differ slightly across engines when the cap\n"
      " is hit: engines stop as soon as the count *reaches* the cap, and\n"
      " CFL-Match counts leaf Cartesian products in bulk)\n");
  return 0;
}
