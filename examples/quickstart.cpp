// Quickstart: build a small labeled data graph, define a query, and extract
// all subgraph isomorphic embeddings with CFL-Match.
//
//   $ ./build/examples/quickstart
//
// This is the paper's running example (Figure 3): a 5-vertex query over a
// 7-vertex data graph with exactly three embeddings.

#include <cstdio>

#include "graph/graph_builder.h"
#include "match/cfl_match.h"

int main() {
  using namespace cfl;

  // Labels A..E as 0..4. The data graph of paper Figure 3(b).
  Graph data = MakeGraph(
      /*labels=*/{0, 2, 1, 2, 4, 3, 4},  // v0:A v1:C v2:B v3:C v4:E v5:D v6:E
      /*edges=*/{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}, {1, 4}, {1, 5},
                 {2, 5}, {3, 5}, {3, 6}, {5, 4}, {5, 6}, {1, 6}});

  // The query of Figure 3(a): a 5-cycle-ish pattern A-B-C with a D-E tail.
  Graph query = MakeGraph(
      /*labels=*/{0, 1, 2, 3, 4},  // u1:A u2:B u3:C u4:D u5:E
      /*edges=*/{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}});

  // A matcher is bound to one data graph and can then serve many queries.
  CflMatcher matcher(data);

  // 1) Count all embeddings (the fast path: leaf mappings are counted as
  //    Cartesian products, never materialized).
  MatchResult counted = matcher.Match(query);
  std::printf("embeddings: %llu  (build %.1fus, order %.1fus, enum %.1fus)\n",
              static_cast<unsigned long long>(counted.embeddings),
              counted.build_seconds * 1e6, counted.order_seconds * 1e6,
              counted.enumerate_seconds * 1e6);

  // 2) Enumerate them explicitly via a callback.
  MatchOptions options;
  options.on_embedding = [&](const Embedding& m) {
    std::printf("  embedding:");
    for (VertexId u = 0; u < query.NumVertices(); ++u) {
      std::printf(" u%u->v%u", u + 1, m[u]);
    }
    std::printf("\n");
    return true;  // keep going
  };
  matcher.Match(query, options);

  // 3) Limits: stop after the first embedding.
  MatchOptions first_only;
  first_only.limits.max_embeddings = 1;
  MatchResult r = matcher.Match(query, first_only);
  std::printf("with max_embeddings=1: found %llu (reached_limit=%d)\n",
              static_cast<unsigned long long>(r.embeddings), r.reached_limit);
  return 0;
}
