// Focused tests for the TurboISO baseline beyond the cross-engine sweeps:
// NEC handling, deadline behavior, region independence, and stress cases
// that exercise the candidate-region machinery.

#include "baseline/turboiso.h"

#include <gtest/gtest.h>

#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::BruteForceCount;

TEST(TurboIsoTest, NecPermutationCounting) {
  // Star with 3 identical leaves over a hub with 5 candidates: TurboISO's
  // NEC rewriting enumerates combinations and multiplies by 3! — the total
  // must equal the falling factorial 5*4*3 = 60.
  Graph q = MakeGraph({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  GraphBuilder gb(6);
  gb.SetLabel(0, 0);
  for (VertexId v = 1; v <= 5; ++v) {
    gb.SetLabel(v, 1);
    gb.AddEdge(0, v);
  }
  Graph g = std::move(gb).Build();
  EXPECT_EQ(MakeTurboIso(g)->Run(q, {}).embeddings, 60u);
}

TEST(TurboIsoTest, MixedNecGroups) {
  // Two NEC groups of different labels under one hub.
  Graph q = MakeGraph({0, 1, 1, 2, 2}, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  GraphBuilder gb(8);
  gb.SetLabel(0, 0);
  for (VertexId v = 1; v <= 3; ++v) {
    gb.SetLabel(v, 1);
    gb.AddEdge(0, v);
  }
  for (VertexId v = 4; v <= 6; ++v) {
    gb.SetLabel(v, 2);
    gb.AddEdge(0, v);
  }
  gb.SetLabel(7, 5);
  Graph g = std::move(gb).Build();
  // (3*2) * (3*2) = 36.
  EXPECT_EQ(MakeTurboIso(g)->Run(q, {}).embeddings, 36u);
  EXPECT_EQ(BruteForceCount(q, g), 36u);
}

TEST(TurboIsoTest, NonTreeEdgesValidated) {
  // Square query (cycle of 4): the closing edge is a non-tree edge that the
  // search must check against G.
  Graph q = MakeGraph({0, 1, 0, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  // Data: a path a-b-c-d (labels 0,1,0,1) with NO closing edge -> 0 matches;
  // then with the closing edge -> cycle matches.
  Graph path = MakeGraph({0, 1, 0, 1}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(MakeTurboIso(path)->Run(q, {}).embeddings, 0u);
  Graph cycle = MakeGraph({0, 1, 0, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(MakeTurboIso(cycle)->Run(q, {}).embeddings,
            BruteForceCount(q, cycle));
}

TEST(TurboIsoTest, DeadlineRespected) {
  const uint32_t kQ = 8, kG = 64;
  GraphBuilder qb(kQ);
  for (VertexId a = 0; a < kQ; ++a) {
    for (VertexId b = a + 1; b < kQ; ++b) qb.AddEdge(a, b);
  }
  Graph q = std::move(qb).Build();
  GraphBuilder gb(kG);
  for (VertexId a = 0; a < kG; ++a) {
    for (VertexId b = a + 1; b < kG; ++b) gb.AddEdge(a, b);
  }
  Graph g = std::move(gb).Build();

  MatchLimits limits;
  limits.time_limit_seconds = 0.05;
  MatchResult r = MakeTurboIso(g)->Run(q, limits);
  EXPECT_TRUE(r.timed_out);
}

TEST(TurboIsoTest, RegionStatsAccumulate) {
  SyntheticOptions options;
  options.num_vertices = 200;
  options.average_degree = 5.0;
  options.num_labels = 4;
  options.seed = 17;
  Graph g = MakeSynthetic(options);
  QueryGenOptions qo;
  qo.num_vertices = 8;
  qo.seed = 5;
  Graph q = GenerateQuery(g, qo);

  MatchResult r = MakeTurboIso(g)->Run(q, {});
  EXPECT_GT(r.index_entries, 0u);  // candidate regions were materialized
  EXPECT_GE(r.total_seconds,
            r.order_seconds + r.enumerate_seconds - 1e-6);
}

TEST(TurboIsoTest, DisjointCandidateRegionsSumCorrectly) {
  // Two disconnected (in the label sense) regions in the data graph each
  // hosting one match; the per-start-vertex region loop must find both.
  Graph q = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  GraphBuilder gb(6);
  gb.SetLabel(0, 0);
  gb.SetLabel(1, 1);
  gb.SetLabel(2, 2);
  gb.AddEdge(0, 1);
  gb.AddEdge(1, 2);
  gb.SetLabel(3, 0);
  gb.SetLabel(4, 1);
  gb.SetLabel(5, 2);
  gb.AddEdge(3, 4);
  gb.AddEdge(4, 5);
  Graph g = std::move(gb).Build();
  EXPECT_EQ(MakeTurboIso(g)->Run(q, {}).embeddings, 2u);
}

}  // namespace
}  // namespace cfl
