// Tests for the structural-equivalence data-graph compression of [14].

#include "baseline/compress.h"

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace cfl {
namespace {

TEST(CompressTest, NonAdjacentTwinsMerge) {
  // v1, v2: label 1, both adjacent exactly to {v0, v3}.
  Graph g = MakeGraph({0, 1, 1, 2}, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  CompressedGraph cg = CompressBySE(g);
  EXPECT_EQ(cg.graph.NumVertices(), 3u);
  EXPECT_EQ(cg.original_vertices, 4u);
  EXPECT_EQ(cg.class_of[1], cg.class_of[2]);
  VertexId h = cg.class_of[1];
  EXPECT_EQ(cg.graph.multiplicity(h), 2u);
  EXPECT_FALSE(cg.graph.HasEdge(h, h));  // non-adjacent twins: no self-loop
  EXPECT_NEAR(cg.CompressionRatio(), 0.25, 1e-9);
}

TEST(CompressTest, AdjacentTwinsMergeWithSelfLoop) {
  // Triangle of label-1 vertices all adjacent to v0: N(v) u {v} coincide.
  Graph g = MakeGraph({0, 1, 1, 1},
                      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  CompressedGraph cg = CompressBySE(g);
  EXPECT_EQ(cg.graph.NumVertices(), 2u);
  VertexId h = cg.class_of[1];
  EXPECT_EQ(cg.class_of[2], h);
  EXPECT_EQ(cg.class_of[3], h);
  EXPECT_EQ(cg.graph.multiplicity(h), 3u);
  EXPECT_TRUE(cg.graph.HasEdge(h, h));  // clique class: self-loop
}

TEST(CompressTest, DifferentLabelsNeverMerge) {
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}});
  CompressedGraph cg = CompressBySE(g);
  EXPECT_EQ(cg.graph.NumVertices(), 3u);
  EXPECT_EQ(cg.CompressionRatio(), 0.0);
}

TEST(CompressTest, ExpandedStatisticsPreserved) {
  SyntheticOptions options;
  options.num_vertices = 30;
  options.average_degree = 3.0;
  options.num_labels = 3;
  options.seed = 7;
  Graph base = MakeSynthetic(options);
  Graph g = AddTwinVertices(base, 20, 0.4, 123);

  CompressedGraph cg = CompressBySE(g);
  EXPECT_LT(cg.graph.NumVertices(), g.NumVertices());
  EXPECT_EQ(cg.graph.EffectiveNumVertices(), g.NumVertices());
  // Label frequencies in the expanded view must match the original.
  for (Label l = 0; l < g.NumLabels(); ++l) {
    EXPECT_EQ(cg.graph.LabelFrequency(l), g.LabelFrequency(l)) << "label " << l;
  }
  // Spot-check effective degrees through the class map.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(cg.graph.degree(cg.class_of[v]), g.degree(v)) << "vertex " << v;
  }
}

TEST(CompressTest, QueryRestrictionDropsIrrelevantLabels) {
  // Data has labels 0,1,2; query uses only 0 and 1.
  Graph g = MakeGraph({0, 1, 2, 2, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  Graph q = MakeGraph({0, 1}, {{0, 1}});
  CompressedGraph cg = CompressForQuery(g, q);
  EXPECT_EQ(cg.original_vertices, 3u);  // v0, v1, v4 kept
  EXPECT_EQ(cg.class_of[2], kInvalidVertex);
  EXPECT_EQ(cg.class_of[3], kInvalidVertex);
  for (VertexId v : {0u, 1u, 4u}) {
    EXPECT_NE(cg.class_of[v], kInvalidVertex) << v;
  }
}

TEST(CompressTest, TwinRichGraphCompressesWell) {
  SyntheticOptions options;
  options.num_vertices = 100;
  options.average_degree = 4.0;
  options.num_labels = 5;
  options.seed = 21;
  Graph base = MakeSynthetic(options);
  Graph g = AddTwinVertices(base, 100, 0.3, 22);
  CompressedGraph cg = CompressBySE(g);
  // 100 of 200 vertices are twins; at least a third of the graph must fold.
  EXPECT_GT(cg.CompressionRatio(), 0.33);
}

TEST(CompressTest, EmptyRestriction) {
  Graph g = MakeGraph({0, 0}, {{0, 1}});
  Graph q = MakeGraph({5, 5}, {{0, 1}});  // label absent from data
  CompressedGraph cg = CompressForQuery(g, q);
  EXPECT_EQ(cg.graph.NumVertices(), 0u);
  EXPECT_EQ(cg.original_vertices, 0u);
}

}  // namespace
}  // namespace cfl
