// Execution-stats observability layer (src/obs/): randomized property tests
// of the accounting identities, serial-vs-parallel stats equivalence across
// thread counts, deadline/limit edge cases, and the CFL_STATS compile gate.
//
// The identities under test (see src/obs/stats.h):
//   * generated[u] - pruned_backward[u] - pruned_bottomup[u] == |C(u)|
//     for every query vertex u,
//   * embeddings_found == MatchResult::embeddings,
//   * sum of phase timers <= total wall time,
//   * sum(|C(u)|) == cpi_candidate_entries,
//   * TotalRootsClaimed() <= root_candidates (== without a cap/deadline).
// CheckStatsInvariants bundles them; the tests here also re-check the
// per-vertex identity explicitly so a violation names the vertex.

#include "obs/stats.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "decomp/bfs_tree.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "match/cfl_match.h"
#include "parallel/parallel_match.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::Figure3Data;
using testing::Figure3Query;

// Small synthetic data graph for a given seed; sized so that 100 pairs run
// in seconds but queries still exercise core/forest/leaf structure.
Graph TestData(uint64_t seed) {
  SyntheticOptions options;
  options.num_vertices = 150;
  options.average_degree = 6.0;
  options.num_labels = 6;
  options.seed = seed + 1;
  return MakeSynthetic(options);
}

Graph TestQuery(const Graph& data, uint64_t seed) {
  QueryGenOptions options;
  options.num_vertices = 7;
  options.sparse = (seed % 2 == 0);
  options.seed = seed * 13 + 5;
  return GenerateQuery(data, options);
}

// Asserts every stats identity on `result`, naming `tag` on failure.
void ExpectStatsConsistent(const MatchResult& result, const std::string& tag) {
  if (!obs::kStatsEnabled) return;
  const MatchStats& s = result.stats;
  ASSERT_TRUE(s.recorded) << tag;

  // The bundled checker first (it covers everything below and more)...
  EXPECT_EQ(obs::CheckStatsInvariants(s, result.embeddings,
                                      result.total_seconds),
            "")
      << tag;

  // ...then the load-bearing identities explicitly, naming the vertex.
  EXPECT_EQ(s.embeddings_found, result.embeddings) << tag;
  EXPECT_LE(s.PhaseSecondsSum(), result.total_seconds + 1e-6) << tag;
  const size_t n = s.cpi_candidates_per_vertex.size();
  ASSERT_EQ(s.cpi.generated.size(), n) << tag;
  ASSERT_EQ(s.cpi.pruned_backward.size(), n) << tag;
  ASSERT_EQ(s.cpi.pruned_bottomup.size(), n) << tag;
  uint64_t entries = 0;
  for (size_t u = 0; u < n; ++u) {
    EXPECT_EQ(s.cpi.generated[u] - s.cpi.pruned_backward[u] -
                  s.cpi.pruned_bottomup[u],
              s.cpi_candidates_per_vertex[u])
        << tag << " u=" << u;
    entries += s.cpi_candidates_per_vertex[u];
  }
  if (n > 0) {
    EXPECT_EQ(entries, s.cpi_candidate_entries) << tag;
  }
  EXPECT_LE(s.enumeration.hub_probes, s.enumeration.backward_probes) << tag;
  EXPECT_LE(s.enumeration.backward_rejects, s.enumeration.backward_probes)
      << tag;
  EXPECT_LE(s.enumeration.leaf_sampled_calls, s.enumeration.leaf_calls) << tag;
  EXPECT_LE(s.candidates_bound, s.candidates_tried) << tag;
  EXPECT_LE(s.TotalRootsClaimed(), s.root_candidates) << tag;
}

// ---- Property test: 10 data graphs x 10 queries = 100 seeded pairs ------

class StatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsPropertyTest, AccountingIdentitiesHoldOnRandomPairs) {
  const uint64_t data_seed = GetParam();
  Graph g = TestData(data_seed);
  CflMatcher matcher(g);
  for (uint64_t query_seed = 0; query_seed < 10; ++query_seed) {
    Graph q = TestQuery(g, data_seed * 10 + query_seed);
    MatchResult result = matcher.Match(q);
    ExpectStatsConsistent(result, "data_seed=" + std::to_string(data_seed) +
                                      " query_seed=" +
                                      std::to_string(query_seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StatsPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

// The CPI ablation strategies and both decomposition ablations must satisfy
// the same identities (the per-vertex accounting is strategy-independent).
TEST(StatsPropertyTest, IdentitiesHoldAcrossAblations) {
  Graph g = TestData(42);
  CflMatcher matcher(g);
  Graph q = TestQuery(g, 7);
  for (CpiStrategy strategy :
       {CpiStrategy::kNaive, CpiStrategy::kTopDown, CpiStrategy::kRefined}) {
    for (DecompositionMode mode :
         {DecompositionMode::kNone, DecompositionMode::kCoreForest,
          DecompositionMode::kCfl}) {
      MatchOptions options;
      options.cpi_strategy = strategy;
      options.decomposition = mode;
      MatchResult result = matcher.Match(q, options);
      ExpectStatsConsistent(result,
                            "strategy=" + std::to_string(int(strategy)) +
                                " mode=" + std::to_string(int(mode)));
    }
  }
}

// A query with an empty candidate set short-circuits enumeration
// (PreparedQuery::no_results); the stats must still be well-formed.
TEST(StatsPropertyTest, ImpossibleQueryShortCircuitConsistent) {
  Graph g = Figure3Data();
  // Label 9 does not occur in the data graph.
  Graph q = MakeGraph({9, 9}, {{0, 1}});
  CflMatcher matcher(g);
  MatchResult result = matcher.Match(q);
  EXPECT_EQ(result.embeddings, 0u);
  if (obs::kStatsEnabled) {
    EXPECT_EQ(obs::CheckStatsInvariants(result.stats, result.embeddings,
                                        result.total_seconds),
              "");
    EXPECT_EQ(result.stats.embeddings_found, 0u);
  }
}

// Prepare must carry the Prepare-side half on its own (the parallel matcher
// consumes it from PreparedQuery, not MatchResult).
TEST(StatsPropertyTest, PrepareRecordsBuildSideStats) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  Graph g = Figure3Data();
  Graph q = Figure3Query();
  CflMatcher matcher(g);
  PreparedQuery prepared = matcher.Prepare(q);
  EXPECT_TRUE(prepared.stats.recorded);
  EXPECT_EQ(prepared.stats.cpi_candidates_per_vertex.size(), q.NumVertices());
  uint64_t entries = std::accumulate(
      prepared.stats.cpi_candidates_per_vertex.begin(),
      prepared.stats.cpi_candidates_per_vertex.end(), uint64_t{0});
  EXPECT_EQ(entries, prepared.stats.cpi_candidate_entries);
  EXPECT_GT(prepared.stats.cpi_candidate_entries, 0u);
  // Enumeration-side fields stay untouched by Prepare.
  EXPECT_EQ(prepared.stats.embeddings_found, 0u);
  EXPECT_EQ(prepared.stats.enumeration.core_visits, 0u);
}

// ---- Parallel equivalence: 1/2/4 threads vs serial ----------------------

// On a complete, uncapped counting run every worker partition explores the
// same search space the serial matcher does, so all order-independent
// counters must be *equal* across thread counts — not merely close.
TEST(ParallelStatsTest, OrderIndependentCountersMatchSerial) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  Graph g = TestData(3);
  CflMatcher serial(g);
  for (uint64_t query_seed = 0; query_seed < 5; ++query_seed) {
    Graph q = TestQuery(g, query_seed);
    MatchResult reference = serial.Match(q);
    ExpectStatsConsistent(reference, "serial");
    for (uint32_t threads : {1u, 2u, 4u}) {
      ParallelCflMatcher parallel(g, threads);
      MatchResult result = parallel.Match(q);
      const std::string tag = "threads=" + std::to_string(threads) +
                              " query_seed=" + std::to_string(query_seed);
      ExpectStatsConsistent(result, tag);
      EXPECT_EQ(result.embeddings, reference.embeddings) << tag;

      const EnumStats& a = reference.stats.enumeration;
      const EnumStats& b = result.stats.enumeration;
      EXPECT_EQ(b.backward_probes, a.backward_probes) << tag;
      EXPECT_EQ(b.hub_probes, a.hub_probes) << tag;
      EXPECT_EQ(b.backward_rejects, a.backward_rejects) << tag;
      EXPECT_EQ(b.conflict_rejects, a.conflict_rejects) << tag;
      EXPECT_EQ(b.partials_discarded, a.partials_discarded) << tag;
      EXPECT_EQ(b.max_depth, a.max_depth) << tag;
      EXPECT_EQ(b.core_visits, a.core_visits) << tag;
      EXPECT_EQ(b.leaf_calls, a.leaf_calls) << tag;
      EXPECT_EQ(b.leaf_products, a.leaf_products) << tag;
      EXPECT_EQ(result.stats.candidates_tried,
                reference.stats.candidates_tried)
          << tag;
      EXPECT_EQ(result.stats.candidates_bound,
                reference.stats.candidates_bound)
          << tag;
      EXPECT_EQ(result.stats.embeddings_found,
                reference.stats.embeddings_found)
          << tag;
      EXPECT_EQ(result.stats.root_candidates, reference.stats.root_candidates)
          << tag;

      // Order-dependent shape: per-worker claim counts vary by schedule but
      // are bounded, sized to the pool, and sum to the root count exactly.
      EXPECT_EQ(result.stats.threads, threads) << tag;
      ASSERT_EQ(result.stats.worker_roots_claimed.size(), threads) << tag;
      for (uint64_t claimed : result.stats.worker_roots_claimed) {
        EXPECT_LE(claimed, result.stats.root_candidates) << tag;
      }
      EXPECT_EQ(result.stats.TotalRootsClaimed(),
                result.stats.root_candidates)
          << tag;
    }
  }
}

// ---- Deadline / limit edge cases ----------------------------------------

// time_limit_seconds <= 0 means "no deadline" (MatchLimits contract); the
// run must complete, not report a timeout, and satisfy every identity.
TEST(StatsEdgeCaseTest, ZeroTimeBudgetDisablesDeadline) {
  Graph g = TestData(11);
  Graph q = TestQuery(g, 4);
  CflMatcher matcher(g);
  MatchOptions options;
  options.limits.time_limit_seconds = 0.0;
  MatchResult result = matcher.Match(q, options);
  EXPECT_FALSE(result.timed_out);
  ExpectStatsConsistent(result, "zero budget");

  MatchResult uncapped = matcher.Match(q);
  EXPECT_EQ(result.embeddings, uncapped.embeddings);
}

// A vanishingly small positive budget usually expires mid-run; whatever was
// counted so far must still reconcile (stats describe the partial run).
TEST(StatsEdgeCaseTest, TinyTimeBudgetKeepsStatsConsistent) {
  Graph g = TestData(12);
  Graph q = TestQuery(g, 9);
  CflMatcher matcher(g);
  MatchResult uncapped = matcher.Match(q);
  MatchOptions options;
  options.limits.time_limit_seconds = 1e-12;
  MatchResult result = matcher.Match(q, options);
  ExpectStatsConsistent(result, "tiny budget");
  EXPECT_LE(result.embeddings, uncapped.embeddings);
  if (result.timed_out && obs::kStatsEnabled) {
    // A partial run cannot claim the full root partition.
    EXPECT_LE(result.stats.TotalRootsClaimed(), result.stats.root_candidates);
  }
}

TEST(StatsEdgeCaseTest, LimitOneSerialAndParallel) {
  Graph g = TestData(13);
  Graph q = TestQuery(g, 2);
  CflMatcher matcher(g);
  MatchResult uncapped = matcher.Match(q);
  ASSERT_GT(uncapped.embeddings, 1u);

  MatchOptions options;
  options.limits.max_embeddings = 1;
  MatchResult serial = matcher.Match(q, options);
  EXPECT_TRUE(serial.reached_limit);
  ExpectStatsConsistent(serial, "serial limit=1");

  for (uint32_t threads : {2u, 4u}) {
    ParallelCflMatcher parallel(g, threads);
    MatchResult result = parallel.Match(q, options);
    EXPECT_TRUE(result.reached_limit);
    // Workers race toward the cap, so the count may overshoot but never
    // undershoot it (same MatchLimits contract as before this layer).
    EXPECT_GE(result.embeddings, 1u);
    ExpectStatsConsistent(result, "parallel limit=1 threads=" +
                                      std::to_string(threads));
  }
}

// Caps at and around the exact embedding count (the worker-boundary case:
// the last root claimed is the one that crosses the cap).
TEST(StatsEdgeCaseTest, LimitAtWorkerBoundary) {
  Graph g = TestData(14);
  Graph q = TestQuery(g, 6);
  CflMatcher matcher(g);
  MatchResult uncapped = matcher.Match(q);
  ASSERT_GT(uncapped.embeddings, 2u);
  const uint64_t total = uncapped.embeddings;

  for (uint64_t cap : {total - 1, total, total + 1}) {
    MatchOptions options;
    options.limits.max_embeddings = cap;
    for (uint32_t threads : {1u, 2u, 4u}) {
      ParallelCflMatcher parallel(g, threads);
      MatchResult result = parallel.Match(q, options);
      const std::string tag = "cap=" + std::to_string(cap) +
                              " threads=" + std::to_string(threads);
      ExpectStatsConsistent(result, tag);
      if (cap >= total) {
        // The cap never truncates: full count, and with stats on the whole
        // root partition must have been claimed.
        EXPECT_EQ(result.embeddings, total) << tag;
        if (obs::kStatsEnabled) {
          EXPECT_EQ(result.stats.TotalRootsClaimed(),
                    result.stats.root_candidates)
              << tag;
        }
      } else {
        EXPECT_TRUE(result.reached_limit) << tag;
        EXPECT_GE(result.embeddings, cap) << tag;
      }
    }
  }
}

// ---- Compile gate --------------------------------------------------------

// With CFL_STATS=OFF every field stays zero-initialized (the recording
// sites compile away); with ON a non-trivial run populates them. The same
// test compiles both ways — that is the point of keeping the struct
// unconditional.
TEST(StatsGateTest, FieldsMatchCompileTimeGate) {
  Graph g = Figure3Data();
  Graph q = Figure3Query();
  CflMatcher matcher(g);
  MatchResult result = matcher.Match(q);
  ASSERT_EQ(result.embeddings, 3u);  // the paper's Figure 3 ground truth

  const MatchStats& s = result.stats;
  if (obs::kStatsEnabled) {
    EXPECT_TRUE(s.recorded);
    EXPECT_EQ(s.embeddings_found, 3u);
    EXPECT_GT(s.cpi_candidate_entries, 0u);
    EXPECT_GT(s.root_candidates, 0u);
    EXPECT_FALSE(s.cpi_candidates_per_vertex.empty());
    EXPECT_NE(obs::FormatStats(s), "");
  } else {
    EXPECT_FALSE(s.recorded);
    EXPECT_EQ(s.embeddings_found, 0u);
    EXPECT_EQ(s.cpi_candidate_entries, 0u);
    EXPECT_EQ(s.root_candidates, 0u);
    EXPECT_TRUE(s.cpi_candidates_per_vertex.empty());
    EXPECT_EQ(s.PhaseSecondsSum(), 0.0);
    // The checker and the roll-up are no-ops on unrecorded stats.
    EXPECT_EQ(obs::CheckStatsInvariants(s, result.embeddings,
                                        result.total_seconds),
              "");
    obs::StatsTotals totals;
    totals.Add(s);
    EXPECT_EQ(totals.core_visits, 0u);
  }
}

// EnumStats::Merge is the parallel aggregation primitive: sums everywhere,
// max for max_depth, and the sampling cursor is shard-local (not merged).
TEST(StatsGateTest, EnumStatsMergeSumsAndMaxes) {
  EnumStats a;
  a.backward_probes = 10;
  a.hub_probes = 4;
  a.max_depth = 3;
  a.leaf_calls = 7;
  a.leaf_sampled_seconds = 0.5;
  EnumStats b;
  b.backward_probes = 5;
  b.hub_probes = 1;
  b.max_depth = 5;
  b.leaf_calls = 2;
  b.leaf_sampled_seconds = 0.25;
  a.Merge(b);
  EXPECT_EQ(a.backward_probes, 15u);
  EXPECT_EQ(a.hub_probes, 5u);
  EXPECT_EQ(a.max_depth, 5u);  // max, not sum
  EXPECT_EQ(a.leaf_calls, 9u);
  EXPECT_DOUBLE_EQ(a.leaf_sampled_seconds, 0.75);
}

// CheckStatsInvariants must actually *catch* violations, not just pass on
// good inputs — corrupt one field per identity and expect a diagnostic.
TEST(StatsGateTest, CheckerCatchesEachViolation) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  Graph g = Figure3Data();
  Graph q = Figure3Query();
  CflMatcher matcher(g);
  MatchResult result = matcher.Match(q);
  ASSERT_EQ(obs::CheckStatsInvariants(result.stats, result.embeddings,
                                      result.total_seconds),
            "");

  {
    MatchStats s = result.stats;
    s.embeddings_found += 1;
    EXPECT_NE(obs::CheckStatsInvariants(s, result.embeddings,
                                        result.total_seconds),
              "");
  }
  {
    MatchStats s = result.stats;
    s.cpi.generated[0] += 1;  // breaks the per-vertex accounting identity
    EXPECT_NE(obs::CheckStatsInvariants(s, result.embeddings,
                                        result.total_seconds),
              "");
  }
  {
    MatchStats s = result.stats;
    s.enumerate_seconds = result.total_seconds + 1.0;  // phase sum > total
    EXPECT_NE(obs::CheckStatsInvariants(s, result.embeddings,
                                        result.total_seconds),
              "");
  }
  {
    MatchStats s = result.stats;
    s.enumeration.hub_probes = s.enumeration.backward_probes + 1;
    EXPECT_NE(obs::CheckStatsInvariants(s, result.embeddings,
                                        result.total_seconds),
              "");
  }
  {
    MatchStats s = result.stats;
    s.worker_roots_claimed.assign(1, s.root_candidates + 1);
    EXPECT_NE(obs::CheckStatsInvariants(s, result.embeddings,
                                        result.total_seconds),
              "");
  }
}

}  // namespace
}  // namespace cfl
