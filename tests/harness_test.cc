// Tests for the experiment harness: table formatting, environment knobs,
// and the query-set runner's budget/INF semantics.

#include "harness/runner.h"

#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/env.h"
#include "harness/table.h"
#include "match/engine.h"
#include "test_util.h"

namespace cfl {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"query set", "CFL-Match"});
  t.AddRow({"q50S", "1.25"});
  t.AddRow({"q200N", "INF"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("query set"), std::string::npos);
  EXPECT_NE(out.find("q200N"), std::string::npos);
  EXPECT_NE(out.find("INF"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);  // must not crash
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(FormatMillisTest, Precision) {
  EXPECT_EQ(FormatMillis(0.1234), "0.123");
  EXPECT_EQ(FormatMillis(12.344), "12.34");
  EXPECT_EQ(FormatMillis(1234.7), "1235");
}

TEST(EnvTest, Defaults) {
  unsetenv("CFL_BENCH_SCALE");
  unsetenv("CFL_BENCH_QUERIES");
  unsetenv("CFL_BENCH_TIME_LIMIT_S");
  EXPECT_DOUBLE_EQ(BenchScale(0.25), 0.25);
  EXPECT_EQ(BenchQueries(20), 20u);
  EXPECT_DOUBLE_EQ(BenchTimeLimitSeconds(20.0), 20.0);
}

TEST(EnvTest, ParsesValues) {
  setenv("CFL_BENCH_SCALE", "full", 1);
  EXPECT_DOUBLE_EQ(BenchScale(0.25), 1.0);
  setenv("CFL_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(BenchScale(0.25), 0.5);
  setenv("CFL_BENCH_SCALE", "junk", 1);
  EXPECT_DOUBLE_EQ(BenchScale(0.25), 0.25);
  unsetenv("CFL_BENCH_SCALE");

  setenv("CFL_BENCH_QUERIES", "7", 1);
  EXPECT_EQ(BenchQueries(20), 7u);
  unsetenv("CFL_BENCH_QUERIES");

  setenv("CFL_BENCH_TIME_LIMIT_S", "2.5", 1);
  EXPECT_DOUBLE_EQ(BenchTimeLimitSeconds(20.0), 2.5);
  unsetenv("CFL_BENCH_TIME_LIMIT_S");
}

TEST(RunnerTest, AveragesOverQueries) {
  Graph g = testing::Figure3Data();
  std::vector<Graph> queries = {testing::Figure3Query(),
                                testing::Figure3Query()};
  std::unique_ptr<SubgraphEngine> engine = MakeCflMatch(g);
  RunConfig config;
  QuerySetResult r = RunQuerySet(*engine, queries, config);
  EXPECT_EQ(r.queries_run, 2u);
  EXPECT_FALSE(r.IsInf());
  EXPECT_EQ(r.total_embeddings, 6u);
  EXPECT_GE(r.avg_total_ms, 0.0);
  EXPECT_EQ(FormatResult(r), FormatMillis(r.avg_total_ms));
}

TEST(RunnerTest, BudgetExhaustionIsInf) {
  // A clique-on-clique workload that cannot finish in 1 ms.
  GraphBuilder qb(8);
  for (VertexId a = 0; a < 8; ++a) {
    for (VertexId b = a + 1; b < 8; ++b) qb.AddEdge(a, b);
  }
  Graph q = std::move(qb).Build();
  GraphBuilder gb(48);
  for (VertexId a = 0; a < 48; ++a) {
    for (VertexId b = a + 1; b < 48; ++b) gb.AddEdge(a, b);
  }
  Graph g = std::move(gb).Build();

  std::vector<Graph> queries = {q, q, q};
  std::unique_ptr<SubgraphEngine> engine = MakeCflMatch(g);
  RunConfig config;
  config.set_budget_seconds = 0.02;
  QuerySetResult r = RunQuerySet(*engine, queries, config);
  EXPECT_TRUE(r.IsInf());
  EXPECT_EQ(FormatResult(r), std::string(kInf));
}

}  // namespace
}  // namespace cfl
