// Tests for the experiment harness: table formatting, environment knobs,
// and the query-set runner's budget/INF semantics.

#include "harness/runner.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/env.h"
#include "harness/env.h"
#include "harness/table.h"
#include "match/engine.h"
#include "test_util.h"

namespace cfl {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"query set", "CFL-Match"});
  t.AddRow({"q50S", "1.25"});
  t.AddRow({"q200N", "INF"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("query set"), std::string::npos);
  EXPECT_NE(out.find("q200N"), std::string::npos);
  EXPECT_NE(out.find("INF"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);  // must not crash
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(FormatMillisTest, Precision) {
  EXPECT_EQ(FormatMillis(0.1234), "0.123");
  EXPECT_EQ(FormatMillis(12.344), "12.34");
  EXPECT_EQ(FormatMillis(1234.7), "1235");
}

TEST(EnvTest, Defaults) {
  // The gtest runner is started without these knobs, so the process-env
  // snapshot (check/env.h) has them absent and the fallbacks apply.
  EXPECT_DOUBLE_EQ(BenchScale(0.25), 0.25);
  EXPECT_EQ(BenchQueries(20), 20u);
  EXPECT_DOUBLE_EQ(BenchTimeLimitSeconds(20.0), 20.0);
}

TEST(EnvTest, ParsesValues) {
  // Parsing is tested against the raw parsers: the knob accessors read the
  // immutable startup snapshot, which a runtime setenv cannot reach.
  EXPECT_DOUBLE_EQ(ParseBenchScale("full", 0.25), 1.0);
  EXPECT_DOUBLE_EQ(ParseBenchScale("0.5", 0.25), 0.5);
  EXPECT_DOUBLE_EQ(ParseBenchScale("junk", 0.25), 0.25);
  EXPECT_DOUBLE_EQ(ParseBenchScale(nullptr, 0.25), 0.25);

  EXPECT_EQ(ParsePositiveU32("7", 20), 7u);
  EXPECT_EQ(ParsePositiveU32("-3", 20), 20u);
  EXPECT_EQ(ParsePositiveU32(nullptr, 20), 20u);

  EXPECT_DOUBLE_EQ(ParsePositiveSeconds("2.5", 20.0), 2.5);
  EXPECT_DOUBLE_EQ(ParsePositiveSeconds("0", 20.0), 20.0);
}

TEST(EnvTest, SnapshotIsImmuneToRuntimeSetenv) {
  // The long-lived-process contract: once captured, CFL_* reads never touch
  // the live environment again (no getenv on query paths).
  cfl::env::Capture();
  EXPECT_EQ(cfl::env::Get("CFL_TEST_AFTER_SNAPSHOT"), nullptr);
  setenv("CFL_TEST_AFTER_SNAPSHOT", "1", 1);
  EXPECT_EQ(cfl::env::Get("CFL_TEST_AFTER_SNAPSHOT"), nullptr);
  unsetenv("CFL_TEST_AFTER_SNAPSHOT");
}

TEST(RunnerTest, AveragesOverQueries) {
  Graph g = testing::Figure3Data();
  std::vector<Graph> queries = {testing::Figure3Query(),
                                testing::Figure3Query()};
  std::unique_ptr<SubgraphEngine> engine = MakeCflMatch(g);
  RunConfig config;
  QuerySetResult r = RunQuerySet(*engine, queries, config);
  EXPECT_EQ(r.queries_run, 2u);
  EXPECT_FALSE(r.IsInf());
  EXPECT_EQ(r.total_embeddings, 6u);
  EXPECT_GE(r.avg_total_ms, 0.0);
  EXPECT_EQ(FormatResult(r), FormatMillis(r.avg_total_ms));
}

// Engine stub returning scripted MatchResults; records the limits it was
// handed so tests can assert on the runner's budget clamping.
class ScriptedEngine : public SubgraphEngine {
 public:
  explicit ScriptedEngine(std::vector<MatchResult> script)
      : script_(std::move(script)) {}

  std::string_view name() const override { return "scripted"; }

  MatchResult Run(const Graph&, const MatchLimits& limits) override {
    received_limits.push_back(limits);
    MatchResult r = script_[std::min(calls_, script_.size() - 1)];
    ++calls_;
    return r;
  }

  std::vector<MatchLimits> received_limits;

 private:
  std::vector<MatchResult> script_;
  size_t calls_ = 0;
};

MatchResult TimedResult(double total_s, double order_s, double enum_s) {
  MatchResult r;
  r.total_seconds = total_s;
  r.order_seconds = order_s;
  r.enumerate_seconds = enum_s;
  return r;
}

// Regression (runner.cc): with the budget nearly spent, `remaining` could be
// <= 0 and was assigned to time_limit_seconds, whose <= 0 convention means
// *unlimited* — a query starting at the budget edge ran forever.
TEST(ClampToBudgetTest, ExhaustedBudgetNeverYieldsUnlimitedDeadline) {
  MatchLimits per_query;  // no per-query deadline of its own
  bool exhausted = false;

  // Budget exactly spent and overspent: the query must be skipped, not
  // handed a <= 0 ("unlimited") deadline.
  ClampToBudget(per_query, 1.0, 1.0, &exhausted);
  EXPECT_TRUE(exhausted);
  ClampToBudget(per_query, 1.0, 2.5, &exhausted);
  EXPECT_TRUE(exhausted);
  // Microscopic positive remainder: also exhausted (below the deadline's
  // resolution).
  ClampToBudget(per_query, 1.0, 1.0 - 1e-9, &exhausted);
  EXPECT_TRUE(exhausted);

  // Meaningful remainder: clamped to it, strictly positive.
  MatchLimits clamped = ClampToBudget(per_query, 1.0, 0.4, &exhausted);
  EXPECT_FALSE(exhausted);
  EXPECT_NEAR(clamped.time_limit_seconds, 0.6, 1e-12);
  EXPECT_GT(clamped.time_limit_seconds, 0.0);
}

TEST(ClampToBudgetTest, TighterPerQueryDeadlineIsKept) {
  MatchLimits per_query;
  per_query.time_limit_seconds = 0.1;
  bool exhausted = false;
  MatchLimits clamped = ClampToBudget(per_query, 10.0, 1.0, &exhausted);
  EXPECT_FALSE(exhausted);
  EXPECT_DOUBLE_EQ(clamped.time_limit_seconds, 0.1);  // 0.1 < 9.0 remaining

  // No set budget: limits pass through untouched.
  clamped = ClampToBudget(per_query, 0.0, 123.0, &exhausted);
  EXPECT_FALSE(exhausted);
  EXPECT_DOUBLE_EQ(clamped.time_limit_seconds, 0.1);
}

TEST(RunnerTest, QueriesNeverReceiveNonPositiveDeadlineUnderBudget) {
  Graph g = testing::Figure3Data();
  std::vector<Graph> queries(3, testing::Figure3Query());
  ScriptedEngine engine({TimedResult(0.01, 0.0, 0.01)});
  RunConfig config;
  config.set_budget_seconds = 1e-9;  // budget smaller than clock resolution
  config.repetitions = 1;
  QuerySetResult r = RunQuerySet(engine, queries, config);
  // Whether or not any query squeaked in before the budget check, none may
  // have been handed the "unlimited" <= 0 deadline.
  for (const MatchLimits& limits : engine.received_limits) {
    EXPECT_GT(limits.time_limit_seconds, 0.0);
  }
  EXPECT_TRUE(r.IsInf());
}

// Regression (runner.cc): repetitions used to take per-field minima, so
// avg_total_ms could come from a different repetition than avg_enum_ms and
// the columns stopped summing consistently.
TEST(RunnerTest, BestRepetitionIsReportedWholesale) {
  Graph g = testing::Figure3Data();
  std::vector<Graph> queries = {testing::Figure3Query()};
  // Rep 1: total 10ms (order 1, enum 9). Rep 2: total 8ms (order 4, enum 4).
  // Per-field minima would fabricate (total 8, order 1, enum 4); the best
  // rep wholesale is rep 2.
  ScriptedEngine engine({TimedResult(0.010, 0.001, 0.009),
                         TimedResult(0.008, 0.004, 0.004)});
  RunConfig config;
  config.repetitions = 2;
  QuerySetResult r = RunQuerySet(engine, queries, config);
  EXPECT_DOUBLE_EQ(r.avg_total_ms, 8.0);
  EXPECT_DOUBLE_EQ(r.avg_order_ms, 4.0);
  EXPECT_DOUBLE_EQ(r.avg_enum_ms, 4.0);
}

TEST(RunnerTest, BudgetExhaustionIsInf) {
  // A clique-on-clique workload that cannot finish in 1 ms.
  GraphBuilder qb(8);
  for (VertexId a = 0; a < 8; ++a) {
    for (VertexId b = a + 1; b < 8; ++b) qb.AddEdge(a, b);
  }
  Graph q = std::move(qb).Build();
  GraphBuilder gb(48);
  for (VertexId a = 0; a < 48; ++a) {
    for (VertexId b = a + 1; b < 48; ++b) gb.AddEdge(a, b);
  }
  Graph g = std::move(gb).Build();

  std::vector<Graph> queries = {q, q, q};
  std::unique_ptr<SubgraphEngine> engine = MakeCflMatch(g);
  RunConfig config;
  config.set_budget_seconds = 0.02;
  QuerySetResult r = RunQuerySet(*engine, queries, config);
  EXPECT_TRUE(r.IsInf());
  EXPECT_EQ(FormatResult(r), std::string(kInf));
}

}  // namespace
}  // namespace cfl
