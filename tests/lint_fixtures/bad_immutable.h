// Fixture: a CFL_IMMUTABLE_AFTER_BUILD class with a non-const public
// method and a mutable member must fire `immutable-class` for both.
// Never compiled — checked-in input for tests/lint_test.cc.
#ifndef CFL_TESTS_LINT_FIXTURES_BAD_IMMUTABLE_H_
#define CFL_TESTS_LINT_FIXTURES_BAD_IMMUTABLE_H_

class Table {
 public:
  CFL_IMMUTABLE_AFTER_BUILD(Table);

  Table() = default;
  Table(const Table&) = default;
  Table& operator=(const Table&) = default;

  int size() const { return size_; }

  // Violation: a public mutator on a frozen class.
  void Resize(int n);

 private:
  int size_ = 0;

  // Violation: mutable state inside a frozen class.
  mutable int lookups_ = 0;
};

#endif  // CFL_TESTS_LINT_FIXTURES_BAD_IMMUTABLE_H_
