// Fixture: raw SIMD outside src/kernels/ must fire `raw-simd` — once for
// the vendor-intrinsic include, once for the intrinsic-bearing line.
// Never compiled — checked-in input for tests/lint_test.cc.
#include <immintrin.h>

int LowLane(const int* p) {
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  return _mm256_extract_epi32(v, 0);
}
