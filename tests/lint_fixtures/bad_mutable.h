// Fixture: a `mutable` member without an allow-comment must fire
// `mutable-member` — const-invisible caches are how "immutable" structures
// grow data races.
// Never compiled — checked-in input for tests/lint_test.cc.
#ifndef CFL_TESTS_LINT_FIXTURES_BAD_MUTABLE_H_
#define CFL_TESTS_LINT_FIXTURES_BAD_MUTABLE_H_

class Histogram {
 public:
  int Quantile(double q) const;

 private:
  mutable int cached_quantile_ = -1;
};

#endif  // CFL_TESTS_LINT_FIXTURES_BAD_MUTABLE_H_
