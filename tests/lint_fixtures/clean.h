// Fixture: an unremarkable header that satisfies every cfl_lint rule,
// including a properly frozen CFL_IMMUTABLE_AFTER_BUILD class.
// Never compiled — checked-in input for tests/lint_test.cc.
#ifndef CFL_TESTS_LINT_FIXTURES_CLEAN_H_
#define CFL_TESTS_LINT_FIXTURES_CLEAN_H_

#include <vector>

class Accumulator {
 public:
  CFL_IMMUTABLE_AFTER_BUILD(Accumulator);

  Accumulator() = default;
  explicit Accumulator(std::vector<int> values) : values_(values) {}

  int total() const;
  bool empty() const { return values_.empty(); }

 private:
  std::vector<int> values_;
};

#endif  // CFL_TESTS_LINT_FIXTURES_CLEAN_H_
