// Fixture: a raw steady_clock read outside src/obs/ and src/harness/ must
// fire `raw-clock`. Never compiled — checked-in input for tests/lint_test.cc.
#include <chrono>

double ElapsedSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
