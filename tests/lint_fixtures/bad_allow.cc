// Fixture: malformed escape hatches must fire `bad-allow` — a bogus
// suppression must not silently suppress anything.
// Never compiled — checked-in input for tests/lint_test.cc.

// cfl-lint: allow(no-such-rule) the rule id does not exist
int WithUnknownRule();

int WithMissingReason();  // cfl-lint: allow(raw-assert)

// The analyzer's directive tag feeds the same parser: a bare analyze-tag
// allow (rule but no reason) must fire here too, not wait for cfl_analyze.
int WithBareAnalyzeAllow();  // cfl-analyze: allow(lock-order)
