// Fixture: a raw std::mutex member (and a raw lock holder) outside
// src/check/thread_annotations.h must fire `raw-mutex` — such members are
// invisible to Clang Thread Safety Analysis.
// Never compiled — checked-in input for tests/lint_test.cc.
#ifndef CFL_TESTS_LINT_FIXTURES_BAD_MUTEX_H_
#define CFL_TESTS_LINT_FIXTURES_BAD_MUTEX_H_

#include <mutex>

class Counter {
 public:
  void Add(int delta) {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += delta;
  }

 private:
  std::mutex mu_;
  int total_ = 0;
};

#endif  // CFL_TESTS_LINT_FIXTURES_BAD_MUTEX_H_
