// Fixture: the same raw SIMD that trips `raw-simd` elsewhere is allowed
// here — the path contains src/kernels/, the one sanctioned home for
// vendor intrinsics. Never compiled — checked-in input for
// tests/lint_test.cc (the raw-simd mini-tree).
#include <immintrin.h>

int LowLane(const int* p) {
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  return _mm256_extract_epi32(v, 0);
}
