// Fixture: a raw assert() outside src/check/ must fire `raw-assert`.
// Never compiled — checked-in input for tests/lint_test.cc.
#include <cassert>

int Square(int x) {
  assert(x >= 0);
  return x * x;
}
