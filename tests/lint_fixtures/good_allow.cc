// Fixture: a well-formed allow-comment (known rule + reason) suppresses
// exactly the annotated line; the file must lint clean.
// Never compiled — checked-in input for tests/lint_test.cc.

class Memo {
 public:
  int Get(int key) const;

 private:
  // cfl-lint: allow(mutable-member) fixture: private memo cache, single-threaded by construction
  mutable int last_result_ = 0;
};

// A well-formed analyze-tag directive (known analyzer rule + reason) is
// the other tool's suppression: cfl_lint must tolerate it silently.
// cfl-analyze: allow(blocking-under-lock) fixture: wait releases the mutex
int AnalyzerSuppressedSite();
