// Cross-engine agreement: every engine in the repository — Ullmann,
// QuickSI, TurboISO, the CFL variants, and the boosted engines — must report
// the same embedding count as the brute-force oracle, over randomized
// graph/query sweeps of varied density and label selectivity.

#include <memory>

#include <gtest/gtest.h>

#include "baseline/compress.h"
#include "baseline/quicksi.h"
#include "baseline/turboiso.h"
#include "baseline/ullmann.h"
#include "baseline/vf2.h"
#include "gen/query_gen.h"
#include "graph/graph_builder.h"
#include "gen/synthetic.h"
#include "match/engine.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::BruteForceCount;
using testing::Figure3Data;
using testing::Figure3Query;
using testing::Figure7Data;
using testing::Figure7Query;

std::vector<std::unique_ptr<SubgraphEngine>> AllEngines(const Graph& data) {
  std::vector<std::unique_ptr<SubgraphEngine>> engines;
  engines.push_back(MakeUllmann(data));
  engines.push_back(MakeVf2(data));
  engines.push_back(MakeQuickSi(data));
  engines.push_back(MakeTurboIso(data));
  engines.push_back(MakeCflMatch(data));
  engines.push_back(MakeCfMatch(data));
  engines.push_back(MakeMatchNoDecomp(data));
  engines.push_back(MakeCflMatchTd(data));
  engines.push_back(MakeCflMatchNaive(data));
  engines.push_back(MakeCflMatchBoost(data));
  engines.push_back(MakeTurboIsoBoost(data));
  return engines;
}

TEST(EnginesTest, AllAgreeOnFigure3) {
  Graph q = Figure3Query();
  Graph g = Figure3Data();
  for (const auto& engine : AllEngines(g)) {
    EXPECT_EQ(engine->Run(q, {}).embeddings, 3u) << engine->name();
  }
}

TEST(EnginesTest, AllAgreeOnFigure7) {
  Graph q = Figure7Query();
  Graph g = Figure7Data();
  for (const auto& engine : AllEngines(g)) {
    EXPECT_EQ(engine->Run(q, {}).embeddings, 2u) << engine->name();
  }
}

struct SweepParam {
  uint64_t seed;
  uint32_t data_vertices;
  double data_degree;
  uint32_t labels;
  uint32_t query_vertices;
  bool sparse;
};

class CrossEngineTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CrossEngineTest, AllEnginesMatchBruteForce) {
  const SweepParam& p = GetParam();
  SyntheticOptions options;
  options.num_vertices = p.data_vertices;
  options.average_degree = p.data_degree;
  options.num_labels = p.labels;
  options.seed = p.seed;
  Graph g = MakeSynthetic(options);

  QueryGenOptions query_options;
  query_options.num_vertices = p.query_vertices;
  query_options.sparse = p.sparse;
  query_options.seed = p.seed * 31 + 7;
  Graph q = GenerateQuery(g, query_options);

  const uint64_t truth = BruteForceCount(q, g);
  for (const auto& engine : AllEngines(g)) {
    MatchResult r = engine->Run(q, {});
    EXPECT_EQ(r.embeddings, truth)
        << engine->name() << " seed=" << p.seed << " |V(q)|=" << p.query_vertices;
  }
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> sweep;
  uint64_t seed = 1;
  for (uint32_t labels : {2u, 4u, 8u}) {
    for (double degree : {3.0, 6.0}) {
      for (uint32_t qv : {4u, 6u, 8u}) {
        for (bool sparse : {true, false}) {
          sweep.push_back({seed++, 48, degree, labels, qv, sparse});
        }
      }
    }
  }
  return sweep;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossEngineTest,
                         ::testing::ValuesIn(MakeSweep()));

// Engines must agree on *twin-rich* graphs too, where the boosted engines
// take the compressed path with multiplicities > 1 and clique classes.
class TwinGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwinGraphTest, BoostedEnginesAreExactUnderCompression) {
  const uint64_t seed = GetParam();
  SyntheticOptions options;
  options.num_vertices = 24;
  options.average_degree = 3.0;
  options.num_labels = 3;
  options.seed = seed;
  Graph base = MakeSynthetic(options);
  Graph g = AddTwinVertices(base, 16, /*adjacent_fraction=*/0.5, seed + 99);

  QueryGenOptions query_options;
  query_options.num_vertices = 5;
  query_options.sparse = (seed % 2 == 0);
  query_options.seed = seed * 17 + 3;
  Graph q = GenerateQuery(g, query_options);

  const uint64_t truth = BruteForceCount(q, g);
  for (const auto& engine : AllEngines(g)) {
    EXPECT_EQ(engine->Run(q, {}).embeddings, truth)
        << engine->name() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwinGraphTest,
                         ::testing::Range<uint64_t>(0, 20));

TEST(EnginesTest, SingleVertexQueries) {
  // Degenerate but legal: a one-vertex query counts label occurrences.
  Graph g = Figure3Data();
  Graph q = MakeGraph({2}, {});  // label C: v1 and v3
  for (const auto& engine : AllEngines(g)) {
    EXPECT_EQ(engine->Run(q, {}).embeddings, 2u) << engine->name();
  }
}

TEST(EnginesTest, LimitsRespectedByAll) {
  // A query with plenty of embeddings; every engine must stop at the cap.
  SyntheticOptions options;
  options.num_vertices = 64;
  options.average_degree = 6.0;
  options.num_labels = 2;
  options.seed = 5;
  Graph g = MakeSynthetic(options);
  QueryGenOptions query_options;
  query_options.num_vertices = 4;
  query_options.seed = 11;
  Graph q = GenerateQuery(g, query_options);
  const uint64_t truth = BruteForceCount(q, g);
  ASSERT_GT(truth, 50u);

  MatchLimits limits;
  limits.max_embeddings = 10;
  for (const auto& engine : AllEngines(g)) {
    MatchResult r = engine->Run(q, limits);
    EXPECT_TRUE(r.reached_limit) << engine->name();
    EXPECT_GE(r.embeddings, 10u) << engine->name();
    EXPECT_LT(r.embeddings, truth) << engine->name();
  }
}

}  // namespace
}  // namespace cfl
