// Tests for the serving stack (ISSUE 7): canonical query hashing, the
// plan/CPI cache, the shared-pool scheduler, the wire protocol, and the
// socket server end to end.

#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dyn/delta.h"
#include "gen/query_gen.h"
#include "gen/rng.h"
#include "gen/synthetic.h"
#include "graph/graph_builder.h"
#include "match/cfl_match.h"
#include "match/iterator.h"
#include "parallel/task_pool.h"
#include "serve/canonical.h"
#include "serve/client.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "test_util.h"

namespace cfl {
namespace {

using serve::CanonicalQueryHash;
using serve::FindIsomorphism;
using serve::PlanCache;
using testing::Figure3Data;
using testing::Figure3Query;

// Random vertex renumbering of `q` — the workload the canonical hash must
// collapse.
Graph Relabel(const Graph& q, Rng& rng) {
  const uint32_t n = q.NumVertices();
  std::vector<VertexId> perm(n);
  for (VertexId v = 0; v < n; ++v) perm[v] = v;
  for (uint32_t i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.Below(i)]);
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) builder.SetLabel(perm[v], q.label(v));
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : q.Neighbors(v)) {
      if (u > v) builder.AddEdge(perm[v], perm[u]);
    }
  }
  return std::move(builder).Build();
}

Graph TestData() {
  SyntheticOptions options;
  options.num_vertices = 120;
  options.average_degree = 5.0;
  options.num_labels = 4;
  options.seed = 99;
  return MakeSynthetic(options);
}

std::vector<Graph> TestQueries(const Graph& data, uint32_t count,
                               uint32_t size, uint64_t seed) {
  return GenerateQuerySet(data, count, size, /*sparse=*/true, seed);
}

// ---- canonical hash -----------------------------------------------------

TEST(CanonicalTest, HashInvariantUnderRelabeling) {
  Graph data = TestData();
  Rng rng(7);
  // Property sweep: every relabeling of every generated query shares the
  // original's hash, and FindIsomorphism recovers a certified mapping.
  for (const Graph& q : TestQueries(data, 12, 8, 3)) {
    const uint64_t hash = CanonicalQueryHash(q);
    for (int rep = 0; rep < 4; ++rep) {
      Graph relabeled = Relabel(q, rng);
      EXPECT_EQ(CanonicalQueryHash(relabeled), hash);
      auto iso = FindIsomorphism(relabeled, q);
      ASSERT_TRUE(iso.has_value());
      // Certify: bijective, label-preserving, edge-preserving.
      std::set<VertexId> image(iso->begin(), iso->end());
      EXPECT_EQ(image.size(), q.NumVertices());
      for (VertexId v = 0; v < relabeled.NumVertices(); ++v) {
        EXPECT_EQ(relabeled.label(v), q.label((*iso)[v]));
        for (VertexId u : relabeled.Neighbors(v)) {
          EXPECT_TRUE(q.HasEdge((*iso)[v], (*iso)[u]));
        }
      }
    }
  }
}

TEST(CanonicalTest, HashSeparatesDifferentQueries) {
  Graph data = TestData();
  std::vector<Graph> queries = TestQueries(data, 16, 8, 11);
  std::map<uint64_t, const Graph*> by_hash;
  for (const Graph& q : queries) {
    auto [it, fresh] = by_hash.emplace(CanonicalQueryHash(q), &q);
    // Equal hashes are only acceptable for actually-isomorphic queries.
    if (!fresh) {
      EXPECT_TRUE(FindIsomorphism(q, *it->second).has_value());
    }
  }
  // The sweep must not degenerate into one bucket.
  EXPECT_GT(by_hash.size(), 8u);
}

TEST(CanonicalTest, RejectsNonIsomorphic) {
  // Same degree sequence and labels, different structure: path vs triangle
  // plus isolated-ish tail. P4 (path on 4) vs K3+K1 have different degree
  // multisets; use C4 vs P4 with uniform labels instead — C4 is 2-regular,
  // P4 is not, WL separates them; also test same-WL-seed label mismatch.
  Graph c4 = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Graph p4 = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_FALSE(FindIsomorphism(c4, p4).has_value());
  EXPECT_NE(CanonicalQueryHash(c4), CanonicalQueryHash(p4));

  Graph labeled = MakeGraph({0, 1, 0, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_FALSE(FindIsomorphism(c4, labeled).has_value());
  EXPECT_NE(CanonicalQueryHash(c4), CanonicalQueryHash(labeled));
}

// ---- plan cache ---------------------------------------------------------

TEST(PlanCacheTest, IsomorphicRelabelsShareOneEntry) {
  Graph data = TestData();
  CflMatcher matcher(data);
  PlanCache cache(64ull << 20);
  Graph q = TestQueries(data, 1, 8, 21)[0];

  EXPECT_EQ(cache.Find(q).plan, nullptr);  // cold
  auto plan = cache.Insert(q, matcher.Prepare(q));
  ASSERT_NE(plan, nullptr);

  Rng rng(5);
  for (int rep = 0; rep < 3; ++rep) {
    Graph relabeled = Relabel(q, rng);
    PlanCache::Hit hit = cache.Find(relabeled);
    ASSERT_NE(hit.plan, nullptr);
    EXPECT_EQ(hit.plan.get(), plan.get());  // the same shared entry
    EXPECT_EQ(hit.remap.size(), q.NumVertices());
  }
  serve::PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PlanCacheTest, CacheHitResultsAreBitIdenticalToColdPrepare) {
  Graph data = TestData();
  CflMatcher matcher(data);
  PlanCache cache(64ull << 20);
  Rng rng(31);

  for (const Graph& q : TestQueries(data, 6, 8, 41)) {
    auto inserted = cache.Insert(q, matcher.Prepare(q));
    ASSERT_NE(inserted, nullptr);
    Graph relabeled = Relabel(q, rng);
    PlanCache::Hit hit = cache.Find(relabeled);
    ASSERT_NE(hit.plan, nullptr);

    // Cold path: prepare `relabeled` from scratch and stream everything.
    std::set<Embedding> cold;
    {
      EmbeddingIterator it(data, relabeled);
      Embedding m;
      while (it.Next(&m)) cold.insert(m);
    }
    // Cached path: stream from the shared plan (the *representative*'s
    // numbering) and translate through the hit's remap.
    std::set<Embedding> cached;
    {
      EmbeddingIterator it(data, hit.plan);
      Embedding m;
      while (it.Next(&m)) {
        Embedding translated(m.size());
        for (VertexId u = 0; u < translated.size(); ++u) {
          translated[u] = m[hit.remap[u]];
        }
        cached.insert(translated);
      }
    }
    EXPECT_EQ(cached, cold);
  }
}

TEST(PlanCacheTest, EvictsLruUnderTinyByteBudget) {
  Graph data = TestData();
  CflMatcher matcher(data);
  std::vector<Graph> queries = TestQueries(data, 6, 8, 61);

  // Size one plan, then budget for roughly two of them.
  PlanCache probe(1ull << 30);
  probe.Insert(queries[0], matcher.Prepare(queries[0]));
  const uint64_t one_plan = probe.Stats().bytes;
  ASSERT_GT(one_plan, 0u);

  PlanCache cache(one_plan * 2 + one_plan / 2);
  for (const Graph& q : queries) {
    cache.Insert(q, matcher.Prepare(q));
  }
  serve::PlanCacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, cache.max_bytes());
  EXPECT_LT(stats.entries, queries.size());
  // LRU: the most recently inserted query must still be resident.
  EXPECT_NE(cache.Find(queries.back()).plan, nullptr);

  // A plan bigger than the whole budget is served uncached.
  PlanCache tiny(1);
  EXPECT_NE(tiny.Insert(queries[0], matcher.Prepare(queries[0])), nullptr);
  EXPECT_EQ(tiny.Stats().entries, 0u);
}

TEST(PlanCacheTest, InvalidateLabelsDropsOnlyIntersectingEntries) {
  Graph data = TestData();
  CflMatcher matcher(data);
  PlanCache cache(64ull << 20);

  // Two cached plans with disjoint label signatures.
  Graph q01 = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  Graph q23 = MakeGraph({2, 3, 2}, {{0, 1}, {1, 2}});
  ASSERT_NE(cache.Insert(q01, matcher.Prepare(q01)), nullptr);
  ASSERT_NE(cache.Insert(q23, matcher.Prepare(q23)), nullptr);
  ASSERT_EQ(cache.Stats().entries, 2u);

  // A batch that dirtied label 3 must drop exactly the {2,3} plan.
  dyn::DirtyLabels dirty;
  dirty.labels = {3};
  EXPECT_EQ(cache.InvalidateLabels(dirty), 1u);
  EXPECT_NE(cache.Find(q01).plan, nullptr);
  EXPECT_EQ(cache.Find(q23).plan, nullptr);
  serve::PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.evictions, 0u);  // invalidation is not LRU pressure

  // A clean batch drops nothing.
  dyn::DirtyLabels clean;
  clean.labels = {7};
  EXPECT_EQ(cache.InvalidateLabels(clean), 0u);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(PlanCacheTest, ZeroBudgetDisablesCaching) {
  Graph data = TestData();
  CflMatcher matcher(data);
  PlanCache cache(0);
  EXPECT_FALSE(cache.enabled());
  Graph q = TestQueries(data, 1, 8, 71)[0];
  auto plan = cache.Insert(q, matcher.Prepare(q));
  ASSERT_NE(plan, nullptr);  // pass-through still returns the plan
  EXPECT_EQ(cache.Find(q).plan, nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

// ---- task pool ----------------------------------------------------------

TEST(TaskPoolTest, RunsEverySubmittedTask) {
  TaskPool pool(4);
  constexpr uint32_t kTasks = 100;
  std::atomic<uint32_t> ran{0};
  TaskLatch latch(kTasks);
  for (uint32_t i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(TaskPoolTest, DrainsQueueOnDestruction) {
  std::atomic<uint32_t> ran{0};
  {
    TaskPool pool(1);  // single worker: tasks queue up
    for (uint32_t i = 0; i < 50; ++i) {
      pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor must run all 50, not drop the queue
  EXPECT_EQ(ran.load(), 50u);
}

// ---- scheduler ----------------------------------------------------------

TEST(SchedulerTest, ClampsLimitsToServerBudgets) {
  // The scheduler holds no graph; limits clamping is pure options logic.
  serve::SchedulerOptions options;
  options.workers = 2;
  options.max_time_limit_seconds = 5.0;
  options.max_embeddings = 1000;
  serve::QueryScheduler scheduler(options);

  MatchLimits unlimited;  // the dangerous request: no limits at all
  MatchLimits clamped = scheduler.ClampLimits(unlimited);
  EXPECT_DOUBLE_EQ(clamped.time_limit_seconds, 5.0);
  EXPECT_EQ(clamped.max_embeddings, 1000u);

  MatchLimits tighter;
  tighter.time_limit_seconds = 0.5;
  tighter.max_embeddings = 10;
  clamped = scheduler.ClampLimits(tighter);
  EXPECT_DOUBLE_EQ(clamped.time_limit_seconds, 0.5);  // tighter wins
  EXPECT_EQ(clamped.max_embeddings, 10u);
}

TEST(SchedulerTest, CountsMatchSerialEngine) {
  Graph data = TestData();
  CflMatcher matcher(data);
  serve::SchedulerOptions options;
  options.workers = 3;
  serve::QueryScheduler scheduler(options);

  for (const Graph& q : TestQueries(data, 8, 8, 81)) {
    MatchResult serial = matcher.Match(q);
    PreparedQuery prepared = matcher.Prepare(q);
    uint32_t quota = 0;
    MatchResult served =
        scheduler.Execute(data, q, prepared, MatchLimits{}, &quota);
    EXPECT_EQ(served.embeddings, serial.embeddings);
    EXPECT_FALSE(served.reached_limit);
    EXPECT_FALSE(served.timed_out);
    EXPECT_GE(quota, 1u);
    EXPECT_LE(quota, options.workers);
  }
}

TEST(SchedulerTest, ConcurrentQueriesInterleaveCorrectly) {
  Graph data = TestData();
  CflMatcher matcher(data);
  std::vector<Graph> queries = TestQueries(data, 6, 8, 91);
  std::vector<uint64_t> expected;
  std::vector<PreparedQuery> prepared;
  for (const Graph& q : queries) {
    expected.push_back(matcher.Match(q).embeddings);
    prepared.push_back(matcher.Prepare(q));
  }

  serve::SchedulerOptions options;
  options.workers = 4;
  options.max_concurrent_queries = 3;  // force admission waits
  serve::QueryScheduler scheduler(options);

  std::atomic<uint32_t> failures{0};
  std::vector<std::thread> sessions;
  sessions.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    sessions.emplace_back([&, i] {
      for (int rep = 0; rep < 3; ++rep) {
        MatchResult r =
            scheduler.Execute(data, queries[i], prepared[i], MatchLimits{});
        if (r.embeddings != expected[i]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(scheduler.ActiveQueries(), 0u);
}

// ---- protocol -----------------------------------------------------------

TEST(ProtocolTest, RequestHeaderRoundTrip) {
  serve::RequestHeader header;
  header.kind = serve::RequestKind::kQuery;
  header.mode = serve::QueryMode::kStream;
  header.limits.max_embeddings = 500;
  header.limits.time_limit_seconds = 2.5;

  std::string error;
  auto parsed =
      serve::ParseRequestHeader(serve::FormatRequestHeader(header), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->kind, serve::RequestKind::kQuery);
  EXPECT_EQ(parsed->mode, serve::QueryMode::kStream);
  EXPECT_EQ(parsed->limits.max_embeddings, 500u);
  EXPECT_DOUBLE_EQ(parsed->limits.time_limit_seconds, 2.5);

  EXPECT_FALSE(serve::ParseRequestHeader("FROB", &error).has_value());
  EXPECT_FALSE(serve::ParseRequestHeader("QUERY mode=banana", &error)
                   .has_value());
  EXPECT_FALSE(serve::ParseRequestHeader("QUERY max=0", &error).has_value());
}

TEST(ProtocolTest, OversizeRequestLineIsRejectedBeforeParsing) {
  std::string line = "QUERY mode=count ";
  line.append(serve::kMaxRequestLineBytes, 'x');
  std::string error;
  EXPECT_FALSE(serve::ParseRequestHeader(line, &error).has_value());
  EXPECT_NE(error.find("request line exceeds"), std::string::npos) << error;
  // Exactly at the cap is still legal input (it fails on content, with a
  // content error, proving the size gate let it through).
  std::string at_cap(serve::kMaxRequestLineBytes, 'y');
  EXPECT_FALSE(serve::ParseRequestHeader(at_cap, &error).has_value());
  EXPECT_EQ(error.find("request line exceeds"), std::string::npos) << error;
}

TEST(ProtocolTest, ResultLineRoundTrip) {
  serve::QueryOutcome outcome;
  outcome.embeddings = 42;
  outcome.reached_limit = true;
  outcome.timed_out = false;
  outcome.cache = serve::QueryOutcome::Cache::kHit;
  outcome.prepare_ms = 1.5;
  outcome.enum_ms = 2.25;
  outcome.total_ms = 4.0;
  outcome.quota = 3;

  std::string error;
  auto parsed =
      serve::ParseResultLine(serve::FormatResultLine(outcome), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->embeddings, 42u);
  EXPECT_TRUE(parsed->reached_limit);
  EXPECT_FALSE(parsed->timed_out);
  EXPECT_EQ(parsed->cache, serve::QueryOutcome::Cache::kHit);
  EXPECT_EQ(parsed->quota, 3u);

  Embedding emb = {4, 0, 7};
  auto round = serve::ParseEmbeddingLine(serve::FormatEmbeddingLine(emb));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, emb);
}

TEST(ProtocolTest, UpdateOpAndUpdatedLineRoundTrip) {
  using serve::UpdateOp;
  const UpdateOp ops[] = {
      {UpdateOp::Kind::kAddVertex, 3, 0},
      {UpdateOp::Kind::kRemoveVertex, 17, 0},
      {UpdateOp::Kind::kAddEdge, 4, 9},
      {UpdateOp::Kind::kRemoveEdge, 9, 4},
  };
  for (const UpdateOp& op : ops) {
    std::string error;
    auto parsed = serve::ParseUpdateOp(serve::FormatUpdateOp(op), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->kind, op.kind);
    EXPECT_EQ(parsed->u, op.u);
    EXPECT_EQ(parsed->v, op.v);
  }
  std::string error;
  EXPECT_FALSE(serve::ParseUpdateOp("xy 1 2", &error).has_value());
  EXPECT_FALSE(serve::ParseUpdateOp("ae 1", &error).has_value());
  EXPECT_FALSE(serve::ParseUpdateOp("av 1 2", &error).has_value());
  EXPECT_FALSE(serve::ParseUpdateOp("ae 1 99999999999", &error).has_value());

  serve::UpdateOutcome outcome;
  outcome.epoch = 7;
  outcome.added_vertices = 1;
  outcome.removed_vertices = 2;
  outcome.added_edges = 3;
  outcome.removed_edges = 4;
  outcome.dirty_labels = 5;
  outcome.invalidated = 6;
  outcome.retained = 8;
  auto parsed =
      serve::ParseUpdatedLine(serve::FormatUpdatedLine(outcome), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->epoch, 7u);
  EXPECT_EQ(parsed->added_vertices, 1u);
  EXPECT_EQ(parsed->removed_vertices, 2u);
  EXPECT_EQ(parsed->added_edges, 3u);
  EXPECT_EQ(parsed->removed_edges, 4u);
  EXPECT_EQ(parsed->dirty_labels, 5u);
  EXPECT_EQ(parsed->invalidated, 6u);
  EXPECT_EQ(parsed->retained, 8u);
}

// ---- server end to end --------------------------------------------------

std::string TestSocketPath(const char* tag) {
  return "/tmp/cfl_serve_test_" + std::to_string(getpid()) + "_" + tag +
         ".sock";
}

class ServerFixture {
 public:
  explicit ServerFixture(const Graph& data, serve::ServeOptions options)
      : options_(std::move(options)), server_(data, options_) {
    thread_ = std::thread([this] { server_.Serve(); });
    serve::ServeClient probe;
    for (int attempt = 0; attempt < 300; ++attempt) {
      if (probe.Connect(options_.socket_path) && probe.Ping()) return;
      usleep(10'000);
    }
    ADD_FAILURE() << "server did not come up";
  }

  ~ServerFixture() {
    server_.RequestShutdown();
    thread_.join();
    unlink(options_.socket_path.c_str());
  }

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  serve::ServeOptions options_;
  serve::QueryServer server_;
  std::thread thread_;
};

TEST(QueryServerTest, CountStreamStatsShutdown) {
  Graph data = Figure3Data();
  Graph q = Figure3Query();
  serve::ServeOptions options;
  options.socket_path = TestSocketPath("basic");
  options.workers = 2;
  options.sessions = 2;
  {
    ServerFixture fixture(data, options);
    serve::ServeClient client;
    ASSERT_TRUE(client.Connect(fixture.socket_path()));
    ASSERT_TRUE(client.Ping());

    serve::ServeClient::Reply count = client.Count(q);
    ASSERT_TRUE(count.ok) << count.error;
    EXPECT_EQ(count.outcome.embeddings, 3u);
    EXPECT_EQ(count.outcome.cache, serve::QueryOutcome::Cache::kMiss);

    // Second time around: served from the plan cache.
    count = client.Count(q);
    ASSERT_TRUE(count.ok) << count.error;
    EXPECT_EQ(count.outcome.embeddings, 3u);
    EXPECT_EQ(count.outcome.cache, serve::QueryOutcome::Cache::kHit);

    serve::ServeClient::Reply stream = client.Stream(q);
    ASSERT_TRUE(stream.ok) << stream.error;
    EXPECT_EQ(stream.embeddings.size(), 3u);
    std::set<Embedding> streamed(stream.embeddings.begin(),
                                 stream.embeddings.end());
    std::set<Embedding> direct;
    EmbeddingIterator it(data, q);
    Embedding m;
    while (it.Next(&m)) direct.insert(m);
    EXPECT_EQ(streamed, direct);

    std::map<std::string, uint64_t> stats = client.Stats();
    EXPECT_EQ(stats["queries"], 3u);
    EXPECT_EQ(stats["cache_hits"], 2u);  // count #2 and the stream
    EXPECT_EQ(stats["cache_misses"], 1u);

    // The connection stays usable after a whole exchange.
    ASSERT_TRUE(client.Ping());
    EXPECT_TRUE(client.Shutdown());
  }
}

TEST(QueryServerTest, StreamedRelabeledQueryIsRemappedToClientNumbering) {
  Graph data = TestData();
  Graph q = TestQueries(data, 1, 6, 17)[0];
  Rng rng(23);
  Graph relabeled = Relabel(q, rng);

  serve::ServeOptions options;
  options.socket_path = TestSocketPath("remap");
  options.workers = 2;
  ServerFixture fixture(data, options);
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(fixture.socket_path()));

  // Warm the cache with q, then stream the relabeled twin: the EMB lines
  // must be valid embeddings of *relabeled*, not of q.
  ASSERT_TRUE(client.Count(q).ok);
  serve::ServeClient::Reply reply = client.Stream(relabeled);
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.outcome.cache, serve::QueryOutcome::Cache::kHit);

  std::set<Embedding> expected;
  EmbeddingIterator it(data, relabeled);
  Embedding m;
  while (it.Next(&m)) expected.insert(m);
  std::set<Embedding> streamed(reply.embeddings.begin(),
                               reply.embeddings.end());
  EXPECT_EQ(streamed, expected);
}

// Raw byte-level connection for driving the protocol off the happy path —
// the ServeClient only speaks well-formed exchanges.
class RawConn {
 public:
  explicit RawConn(const std::string& path) {
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n =
          send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    while (true) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

TEST(QueryServerTest, MalformedRequestsGetErrAndConnectionStaysUsable) {
  Graph data = Figure3Data();
  serve::ServeOptions options;
  options.socket_path = TestSocketPath("err");
  options.workers = 2;
  ServerFixture fixture(data, options);
  RawConn conn(fixture.socket_path());
  ASSERT_TRUE(conn.ok());

  // Every ERR names the problem, and none of them poisons the connection.
  std::string line;
  ASSERT_TRUE(conn.Send("FROB\n"));
  ASSERT_TRUE(conn.ReadLine(&line));
  EXPECT_EQ(line, "ERR unknown request 'FROB'");

  ASSERT_TRUE(conn.Send("QUERY mode=banana\n"));
  ASSERT_TRUE(conn.ReadLine(&line));
  EXPECT_EQ(line, "ERR bad mode 'banana'");

  ASSERT_TRUE(conn.Send("QUERY max=0\n"));
  ASSERT_TRUE(conn.ReadLine(&line));
  EXPECT_EQ(line, "ERR bad max '0'");

  ASSERT_TRUE(conn.Send("QUERY mode=count frob=1\n"));
  ASSERT_TRUE(conn.ReadLine(&line));
  EXPECT_EQ(line, "ERR unknown QUERY option 'frob'");

  // A well-formed header with a garbage graph body: the body is drained to
  // END first, so the ERR leaves the stream aligned on request boundaries.
  ASSERT_TRUE(conn.Send("QUERY mode=count\nnot a graph line\nEND\n"));
  ASSERT_TRUE(conn.ReadLine(&line));
  EXPECT_EQ(line.rfind("ERR bad query graph:", 0), 0u) << line;

  ASSERT_TRUE(conn.Send("PING\n"));
  ASSERT_TRUE(conn.ReadLine(&line));
  EXPECT_EQ(line, "PONG");

  // The errors counter saw all five.
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(fixture.socket_path()));
  EXPECT_EQ(client.Stats()["errors"], 5u);
}

TEST(QueryServerTest, OversizeRequestLineGetsErrNotUnboundedBuffering) {
  Graph data = Figure3Data();
  serve::ServeOptions options;
  options.socket_path = TestSocketPath("oversize");
  ServerFixture fixture(data, options);
  RawConn conn(fixture.socket_path());
  ASSERT_TRUE(conn.ok());

  std::string big = "QUERY mode=count ";
  big.append(2 * serve::kMaxRequestLineBytes, 'x');
  big += '\n';
  ASSERT_TRUE(conn.Send(big));
  std::string line;
  ASSERT_TRUE(conn.ReadLine(&line));
  EXPECT_EQ(line.rfind("ERR request line exceeds", 0), 0u) << line;

  ASSERT_TRUE(conn.Send("PING\n"));
  ASSERT_TRUE(conn.ReadLine(&line));
  EXPECT_EQ(line, "PONG");
}

TEST(QueryServerTest, UnterminatedByteFloodDropsOnlyThatConnection) {
  Graph data = Figure3Data();
  serve::ServeOptions options;
  options.socket_path = TestSocketPath("flood");
  ServerFixture fixture(data, options);
  RawConn hostile(fixture.socket_path());
  ASSERT_TRUE(hostile.ok());

  // > 1 MiB with no newline: the session's read buffer cap kicks in and the
  // server hangs up on this peer. The send itself may fail part-way with
  // EPIPE once the server closes — that is the expected outcome, not an
  // error, so its return value is deliberately unchecked.
  std::string flood(64 * 1024, 'z');
  for (int i = 0; i < 40; ++i) {
    if (!hostile.Send(flood)) break;
  }
  std::string line;
  EXPECT_FALSE(hostile.ReadLine(&line));  // EOF: dropped without a reply

  // The server itself is unharmed and keeps serving everyone else.
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(fixture.socket_path()));
  EXPECT_TRUE(client.Ping());
}

TEST(QueryServerTest, MidRequestDisconnectLeavesServerServing) {
  Graph data = Figure3Data();
  Graph q = Figure3Query();
  serve::ServeOptions options;
  options.socket_path = TestSocketPath("disco");
  options.workers = 2;
  options.sessions = 2;
  ServerFixture fixture(data, options);

  {
    // Vanish mid-QUERY, after the header but before END.
    RawConn conn(fixture.socket_path());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.Send("QUERY mode=count\nt 2 1\nv 0 0\n"));
  }  // destructor closes the socket

  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(fixture.socket_path()));
  ASSERT_TRUE(client.Ping());
  serve::ServeClient::Reply count = client.Count(q);
  ASSERT_TRUE(count.ok) << count.error;
  EXPECT_EQ(count.outcome.embeddings, 3u);
}

TEST(QueryServerTest, ConcurrentMixedQueriesMatchSerialEngine) {
  Graph data = TestData();
  std::vector<Graph> queries = TestQueries(data, 6, 8, 101);
  CflMatcher matcher(data);
  std::vector<uint64_t> expected;
  for (const Graph& q : queries) expected.push_back(matcher.Match(q).embeddings);

  serve::ServeOptions options;
  options.socket_path = TestSocketPath("mixed");
  options.workers = 4;
  options.sessions = 4;
  ServerFixture fixture(data, options);

  std::atomic<uint32_t> failures{0};
  std::vector<std::thread> clients;
  Rng seed_rng(3);
  for (uint32_t c = 0; c < 4; ++c) {
    uint64_t client_seed = seed_rng.Next64();
    clients.emplace_back([&, client_seed] {
      Rng rng(client_seed);
      serve::ServeClient client;
      if (!client.Connect(fixture.socket_path())) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < queries.size(); ++i) {
          // Every client sends its own relabeling: same logical query,
          // different numbering — the cache's bread and butter.
          Graph relabeled = Relabel(queries[i], rng);
          serve::ServeClient::Reply reply = client.Count(relabeled);
          if (!reply.ok || reply.outcome.embeddings != expected[i]) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

// ---- dynamic updates over the wire --------------------------------------

// Two label-disjoint clusters: A = labels {0,1} (vertices 0..3, a path),
// B = labels {2,3} (vertices 4..7, a path). Updates confined to B can
// never dirty a plan whose query labels live in A.
Graph TwoClusterData() {
  return MakeGraph({0, 1, 0, 1, 2, 3, 2, 3},
                   {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}});
}

Graph EdgeQuery(Label a, Label b) {
  return MakeGraph({a, b}, {{0, 1}});
}

TEST(QueryServerTest, UpdateInvalidatesExactlyAffectedPlans) {
  Graph data = TwoClusterData();
  Graph qa = EdgeQuery(0, 1);  // 3 embeddings: edges (0,1) (1,2) (2,3)
  Graph qb = EdgeQuery(2, 3);  // 3 embeddings: edges (4,5) (5,6) (6,7)

  serve::ServeOptions options;
  options.socket_path = TestSocketPath("update");
  options.workers = 2;
  ServerFixture fixture(data, options);
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(fixture.socket_path()));

  // Warm both plans.
  serve::ServeClient::Reply reply = client.Count(qa);
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.outcome.embeddings, 3u);
  reply = client.Count(qb);
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.outcome.embeddings, 3u);
  EXPECT_EQ(client.Stats()["cache_entries"], 2u);

  // One new edge inside cluster B: only qb's plan may die.
  serve::ServeClient::UpdateReply update = client.Update(
      {{serve::UpdateOp::Kind::kAddEdge, 4, 7}});
  ASSERT_TRUE(update.ok) << update.error;
  EXPECT_EQ(update.outcome.epoch, 1u);
  EXPECT_EQ(update.outcome.added_edges, 1u);
  EXPECT_EQ(update.outcome.invalidated, 1u);
  EXPECT_EQ(update.outcome.retained, 1u);
  EXPECT_LE(update.outcome.dirty_labels, 2u);  // subset of {2,3}

  // The surviving {0,1} plan is served from cache AND still answers
  // correctly on the new epoch — the invalidation-soundness claim.
  reply = client.Count(qa);
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.outcome.cache, serve::QueryOutcome::Cache::kHit);
  EXPECT_EQ(reply.outcome.embeddings, 3u);

  // The dirtied plan was dropped: re-prepared, and sees the new edge.
  reply = client.Count(qb);
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.outcome.cache, serve::QueryOutcome::Cache::kMiss);
  EXPECT_EQ(reply.outcome.embeddings, 4u);

  std::map<std::string, uint64_t> stats = client.Stats();
  EXPECT_EQ(stats["updates"], 1u);
  EXPECT_EQ(stats["cache_invalidations"], 1u);
  EXPECT_EQ(stats["epoch"], 1u);
}

TEST(QueryServerTest, RejectedUpdateBatchAppliesNothing) {
  Graph data = TwoClusterData();
  Graph qb = EdgeQuery(2, 3);

  serve::ServeOptions options;
  options.socket_path = TestSocketPath("reject");
  options.workers = 2;
  ServerFixture fixture(data, options);
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(fixture.socket_path()));

  // Valid op followed by an invalid one (edge (4,5) already exists): the
  // whole batch must be rejected atomically.
  serve::ServeClient::UpdateReply update = client.Update(
      {{serve::UpdateOp::Kind::kAddEdge, 4, 7},
       {serve::UpdateOp::Kind::kAddEdge, 4, 5}});
  EXPECT_FALSE(update.ok);
  EXPECT_NE(update.error.find("update rejected"), std::string::npos)
      << update.error;

  serve::ServeClient::Reply reply = client.Count(qb);
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.outcome.embeddings, 3u);  // the valid op did not land
  EXPECT_EQ(client.Stats()["epoch"], 0u);

  // The connection is still usable and a well-formed batch still commits.
  update = client.Update({{serve::UpdateOp::Kind::kAddEdge, 4, 7}});
  ASSERT_TRUE(update.ok) << update.error;
  EXPECT_EQ(update.outcome.epoch, 1u);
}

TEST(QueryServerTest, ConcurrentQueriesAndUpdatesKeepInvariants) {
  // Churn cluster B with edge-swap batches whose *net* embedding count is
  // constant: {ae 4 7, re 5 6} and its inverse both leave exactly three
  // (l2,l3) edges. Any torn (non-atomic) view would count 2 or 4; any
  // wrongly surviving stale plan on cluster A would miscount A. Queries
  // run concurrently with the updates the whole time.
  Graph data = TwoClusterData();
  Graph qa = EdgeQuery(0, 1);
  Graph qb = EdgeQuery(2, 3);

  serve::ServeOptions options;
  options.socket_path = TestSocketPath("churn");
  options.workers = 4;
  options.sessions = 4;
  ServerFixture fixture(data, options);

  constexpr int kBatches = 30;
  std::atomic<bool> done{false};
  std::atomic<uint32_t> failures{0};

  std::thread updater([&] {
    serve::ServeClient client;
    if (!client.Connect(fixture.socket_path())) {
      failures.fetch_add(1);
      done.store(true);
      return;
    }
    for (int i = 0; i < kBatches; ++i) {
      std::vector<serve::UpdateOp> batch;
      if (i % 2 == 0) {
        batch = {{serve::UpdateOp::Kind::kAddEdge, 4, 7},
                 {serve::UpdateOp::Kind::kRemoveEdge, 5, 6}};
      } else {
        batch = {{serve::UpdateOp::Kind::kRemoveEdge, 4, 7},
                 {serve::UpdateOp::Kind::kAddEdge, 5, 6}};
      }
      serve::ServeClient::UpdateReply reply = client.Update(batch);
      if (!reply.ok) failures.fetch_add(1);
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      serve::ServeClient client;
      if (!client.Connect(fixture.socket_path())) {
        failures.fetch_add(1);
        return;
      }
      const Graph& q = (r == 0) ? qa : qb;
      while (!done.load(std::memory_order_relaxed)) {
        serve::ServeClient::Reply reply = client.Count(q);
        // Both clusters always hold exactly three matching edges — for A
        // because updates never touch it, for B because every batch is
        // count-preserving and must be observed atomically.
        if (!reply.ok || reply.outcome.embeddings != 3u) {
          failures.fetch_add(1);
        }
      }
    });
  }
  updater.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);

  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(fixture.socket_path()));
  std::map<std::string, uint64_t> stats = client.Stats();
  EXPECT_EQ(stats["updates"], static_cast<uint64_t>(kBatches));
  EXPECT_GE(stats["epoch"], static_cast<uint64_t>(kBatches));
}

}  // namespace
}  // namespace cfl
