// Tests for path enumeration, cardinality estimation, the greedy path
// ordering (Algorithm 2), matching-order assembly, and QuickSI's
// QI-sequence.

#include "order/matching_order.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cpi/cpi_builder.h"
#include "decomp/bfs_tree.h"
#include "decomp/cfl_decomposition.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/graph_stats.h"
#include "order/cardinality.h"
#include "order/path_enum.h"
#include "order/path_order.h"
#include "order/quicksi_order.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::Figure7Data;
using testing::Figure7Query;

TEST(PathEnumTest, Figure7Paths) {
  Graph q = Figure7Query();
  BfsTree tree = BuildBfsTree(q, 0);
  std::vector<bool> all(q.NumVertices(), true);
  std::vector<std::vector<VertexId>> paths = RootToLeafPaths(tree, 0, all);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (std::vector<VertexId>{0, 1, 3}));
  EXPECT_EQ(paths[1], (std::vector<VertexId>{0, 2}));
}

TEST(PathEnumTest, RestrictionPrunesSubtrees) {
  Graph q = Figure7Query();
  BfsTree tree = BuildBfsTree(q, 0);
  std::vector<bool> include(q.NumVertices(), true);
  include[3] = false;  // cut u3: path (0,1) remains
  std::vector<std::vector<VertexId>> paths = RootToLeafPaths(tree, 0, include);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(paths[1], (std::vector<VertexId>{0, 2}));
}

TEST(PathEnumTest, SingletonStart) {
  Graph q = Figure7Query();
  BfsTree tree = BuildBfsTree(q, 0);
  std::vector<bool> include(q.NumVertices(), false);
  include[0] = true;
  std::vector<std::vector<VertexId>> paths = RootToLeafPaths(tree, 0, include);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<VertexId>{0}));
}

TEST(CardinalityTest, Figure7RefinedCounts) {
  Graph q = Figure7Query();
  Graph g = Figure7Data();
  BfsTree tree = BuildBfsTree(q, 0);
  Cpi cpi = BuildCpi(q, g, tree, CpiStrategy::kRefined);
  // Refined CPI (Fig 7(e)): u0:{v1} u1:{v3,v5} u2:{v4,v6} u3:{v11,v12}.
  std::vector<double> p1 = PathSuffixCardinalities(cpi, {0, 1, 3});
  EXPECT_DOUBLE_EQ(p1[0], 2.0);  // v1->v3->v11 and v1->v5->v12
  EXPECT_DOUBLE_EQ(p1[1], 2.0);
  EXPECT_DOUBLE_EQ(p1[2], 2.0);
  std::vector<double> p2 = PathSuffixCardinalities(cpi, {0, 2});
  EXPECT_DOUBLE_EQ(p2[0], 2.0);
  // Whole-tree cardinality ignores non-tree edges: v1 pairs each of its two
  // u1-branches (v3->v11, v5->v12) with either u2 candidate (v4, v6) -> 4.
  std::vector<bool> all(q.NumVertices(), true);
  EXPECT_DOUBLE_EQ(TreeCardinality(cpi, 0, all), 4.0);
}

// Property: on a *path-shaped* query with a naive CPI, the DP cardinality
// equals the number of label-preserving walks in the data graph (counted by
// brute force) — the DP is exact, not an estimate, at the CPI level.
TEST(CardinalityTest, MatchesWalkCountOnNaiveCpi) {
  SyntheticOptions options;
  options.num_vertices = 40;
  options.average_degree = 4.0;
  options.num_labels = 3;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    options.seed = seed;
    Graph g = MakeSynthetic(options);
    // Path query with labels drawn from the data graph.
    std::vector<Label> labels = {g.label(seed % g.NumVertices()),
                                 g.label((seed * 3 + 1) % g.NumVertices()),
                                 g.label((seed * 7 + 2) % g.NumVertices())};
    Graph q = MakeGraph(labels, {{0, 1}, {1, 2}});
    BfsTree tree = BuildBfsTree(q, 0);
    Cpi cpi = BuildCpi(q, g, tree, CpiStrategy::kNaive);

    // Brute-force count of walks (v0,v1,v2) with matching labels.
    uint64_t walks = 0;
    for (VertexId v0 : g.VerticesWithLabel(labels[0])) {
      for (VertexId v1 : g.Neighbors(v0)) {
        if (g.label(v1) != labels[1]) continue;
        for (VertexId v2 : g.Neighbors(v1)) {
          if (g.label(v2) == labels[2]) ++walks;
        }
      }
    }
    std::vector<double> suffix = PathSuffixCardinalities(cpi, {0, 1, 2});
    EXPECT_DOUBLE_EQ(suffix[0], static_cast<double>(walks)) << "seed " << seed;
  }
}

TEST(PathOrderTest, CoversAllPathVerticesOnce) {
  Graph q = Figure7Query();
  Graph g = Figure7Data();
  BfsTree tree = BuildBfsTree(q, 0);
  Cpi cpi = BuildCpi(q, g, tree);
  std::vector<bool> all(q.NumVertices(), true);
  std::vector<std::vector<VertexId>> paths = RootToLeafPaths(tree, 0, all);
  std::vector<VertexId> seq = OrderPaths(cpi, paths, tree.non_tree_edges);
  ASSERT_EQ(seq.size(), q.NumVertices());
  std::set<VertexId> distinct(seq.begin(), seq.end());
  EXPECT_EQ(distinct.size(), q.NumVertices());
  EXPECT_EQ(seq.front(), 0u);  // paths share the root, so it comes first
}

TEST(PathOrderTest, SeededOrderingSkipsSeeds) {
  Graph q = Figure7Query();
  Graph g = Figure7Data();
  BfsTree tree = BuildBfsTree(q, 0);
  Cpi cpi = BuildCpi(q, g, tree);
  std::vector<bool> all(q.NumVertices(), true);
  std::vector<std::vector<VertexId>> paths = RootToLeafPaths(tree, 0, all);
  std::vector<VertexId> seq =
      OrderPaths(cpi, paths, tree.non_tree_edges, /*seed_sequence=*/{0});
  ASSERT_EQ(seq.size(), q.NumVertices() - 1);
  EXPECT_TRUE(std::find(seq.begin(), seq.end(), 0u) == seq.end());
}

// Algorithm 2's greedy rule: with one clearly cheaper path, it goes first.
TEST(PathOrderTest, CheaperPathFirst) {
  // Query: root A with two arms, B-arm and C-arm; data has 1 B but 5 Cs.
  Graph q = MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}});
  GraphBuilder b(8);
  b.SetLabel(0, 0);
  b.SetLabel(1, 1);
  for (VertexId v = 2; v < 7; ++v) b.SetLabel(v, 2);
  b.AddEdge(0, 1);
  for (VertexId v = 2; v < 7; ++v) b.AddEdge(0, v);
  b.SetLabel(7, 3);
  b.AddEdge(0, 7);
  Graph g = std::move(b).Build();

  BfsTree tree = BuildBfsTree(q, 0);
  Cpi cpi = BuildCpi(q, g, tree);
  std::vector<bool> all(q.NumVertices(), true);
  std::vector<std::vector<VertexId>> paths = RootToLeafPaths(tree, 0, all);
  std::vector<VertexId> seq = OrderPaths(cpi, paths, tree.non_tree_edges);
  // The B-arm (1 candidate) must be matched before the C-arm (5 candidates).
  EXPECT_EQ(seq, (std::vector<VertexId>{0, 1, 2}));
}

void ExpectValidMatchingOrder(const Graph& q, const MatchingOrder& order,
                              const CflDecomposition& d,
                              DecompositionMode mode) {
  std::set<VertexId> placed;
  for (uint32_t i = 0; i < order.steps.size(); ++i) {
    const MatchStep& step = order.steps[i];
    // Connected: every non-first step's parent is already placed.
    if (i == 0) {
      EXPECT_EQ(step.parent, kInvalidVertex);
    } else {
      EXPECT_TRUE(placed.count(step.parent)) << "step " << i;
    }
    // Backward edges reference placed vertices and real query edges.
    for (VertexId w : step.backward) {
      EXPECT_TRUE(placed.count(w));
      EXPECT_TRUE(q.HasEdge(step.u, w));
    }
    EXPECT_TRUE(placed.insert(step.u).second) << "duplicate step";
  }
  // Coverage: steps + leaves = V(q); leaves only in kCfl mode.
  std::set<VertexId> leaves(order.leaves.begin(), order.leaves.end());
  EXPECT_EQ(placed.size() + leaves.size(), q.NumVertices());
  if (mode == DecompositionMode::kCfl) {
    EXPECT_EQ(leaves, std::set<VertexId>(d.leaf.begin(), d.leaf.end()));
  } else {
    EXPECT_TRUE(leaves.empty());
  }
  // Macro order: the first num_core_steps steps are exactly the core when
  // decomposing.
  if (mode != DecompositionMode::kNone) {
    std::set<VertexId> core_steps;
    for (uint32_t i = 0; i < order.num_core_steps; ++i) {
      core_steps.insert(order.steps[i].u);
    }
    EXPECT_EQ(core_steps, std::set<VertexId>(d.core.begin(), d.core.end()));
  }
}

class MatchingOrderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingOrderPropertyTest, ValidForAllModes) {
  const uint64_t seed = GetParam();
  SyntheticOptions options;
  options.num_vertices = 120;
  options.average_degree = 5.0;
  options.num_labels = 6;
  options.seed = seed;
  Graph g = MakeSynthetic(options);
  QueryGenOptions qo;
  qo.num_vertices = 12;
  qo.sparse = (seed % 2 == 0);
  qo.seed = seed + 500;
  Graph q = GenerateQuery(g, qo);

  CflDecomposition d = DecomposeCfl(q, 0);
  VertexId root = d.core.front();
  BfsTree tree = BuildBfsTree(q, root);
  Cpi cpi = BuildCpi(q, g, tree);
  for (DecompositionMode mode :
       {DecompositionMode::kCfl, DecompositionMode::kCoreForest,
        DecompositionMode::kNone}) {
    MatchingOrder order = ComputeMatchingOrder(q, cpi, d, mode);
    ExpectValidMatchingOrder(q, order, d, mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatchingOrderPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

TEST(QuickSiOrderTest, ConnectedAndComplete) {
  Graph g = testing::Figure3Data();
  Graph q = testing::Figure3Query();
  LabelPairFrequency freq(g);
  std::vector<QuickSiStep> seq = ComputeQiSequence(q, g, freq);
  ASSERT_EQ(seq.size(), q.NumVertices());
  std::set<VertexId> placed;
  for (uint32_t i = 0; i < seq.size(); ++i) {
    if (i == 0) {
      EXPECT_EQ(seq[i].parent, kInvalidVertex);
    } else {
      EXPECT_TRUE(placed.count(seq[i].parent));
      EXPECT_TRUE(q.HasEdge(seq[i].u, seq[i].parent));
    }
    for (VertexId w : seq[i].backward) {
      EXPECT_TRUE(placed.count(w));
      EXPECT_TRUE(q.HasEdge(seq[i].u, w));
    }
    placed.insert(seq[i].u);
  }
  EXPECT_EQ(placed.size(), q.NumVertices());
}

TEST(QuickSiOrderTest, InfrequentEdgeFirst) {
  // Data: many A-B edges, one A-C edge. Query has both an A-B and an A-C
  // edge; QuickSI must start from the infrequent A-C side.
  GraphBuilder b(12);
  b.SetLabel(0, 0);                                  // A hub
  for (VertexId v = 1; v <= 10; ++v) b.SetLabel(v, 1);  // Bs
  b.SetLabel(11, 2);                                 // C
  for (VertexId v = 1; v <= 10; ++v) b.AddEdge(0, v);
  b.AddEdge(0, 11);
  Graph g = std::move(b).Build();

  Graph q = MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}});
  LabelPairFrequency freq(g);
  std::vector<QuickSiStep> seq = ComputeQiSequence(q, g, freq);
  // First two steps must be the A-C edge endpoints (u0 and u2).
  std::set<VertexId> first_two = {seq[0].u, seq[1].u};
  EXPECT_EQ(first_two, (std::set<VertexId>{0u, 2u}));
}

}  // namespace
}  // namespace cfl
