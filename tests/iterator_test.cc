// Tests for the pull-based EmbeddingIterator (paper Algorithm 1's
// one-embedding-at-a-time protocol).

#include "match/iterator.h"

#include <set>

#include <gtest/gtest.h>

#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::BruteForceEmbeddings;
using testing::Figure3Data;
using testing::Figure3Query;

TEST(EmbeddingIteratorTest, Figure3YieldsAllThree) {
  Graph g = Figure3Data();
  Graph q = Figure3Query();
  EmbeddingIterator it(g, q);
  std::set<Embedding> seen;
  Embedding m;
  while (it.Next(&m)) EXPECT_TRUE(seen.insert(m).second);
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(it.produced(), 3u);
  // Exhausted iterators stay exhausted.
  EXPECT_FALSE(it.Next(&m));
}

TEST(EmbeddingIteratorTest, EarlyStopIsCheap) {
  // A workload with many embeddings: pulling just one must not enumerate
  // the rest (we can only observe produced(), but at least semantics hold).
  Graph q = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  GraphBuilder b(21);
  b.SetLabel(0, 0);
  for (VertexId v = 1; v <= 20; ++v) {
    b.SetLabel(v, 1);
    b.AddEdge(0, v);
  }
  Graph g = std::move(b).Build();

  EmbeddingIterator it(g, q);
  Embedding m;
  ASSERT_TRUE(it.Next(&m));
  EXPECT_EQ(it.produced(), 1u);
  EXPECT_NE(m[1], m[2]);
}

TEST(EmbeddingIteratorTest, NoEmbeddings) {
  Graph g = Figure3Data();
  Graph q = MakeGraph({9, 9}, {{0, 1}});
  EmbeddingIterator it(g, q);
  Embedding m;
  EXPECT_FALSE(it.Next(&m));
  EXPECT_EQ(it.produced(), 0u);
}

class IteratorAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IteratorAgreementTest, YieldsExactlyTheBruteForceSet) {
  const uint64_t seed = GetParam();
  SyntheticOptions options;
  options.num_vertices = 40;
  options.average_degree = 4.5;
  options.num_labels = 3;
  options.seed = seed * 7 + 2;
  Graph g = MakeSynthetic(options);
  QueryGenOptions qo;
  qo.num_vertices = 6;
  qo.sparse = (seed % 2 == 0);
  qo.seed = seed;
  Graph q = GenerateQuery(g, qo);

  std::vector<Embedding> truth = BruteForceEmbeddings(q, g);
  std::set<Embedding> expected(truth.begin(), truth.end());

  EmbeddingIterator it(g, q);
  std::set<Embedding> seen;
  Embedding m;
  while (it.Next(&m)) {
    EXPECT_TRUE(seen.insert(m).second) << "duplicate, seed " << seed;
  }
  EXPECT_EQ(seen, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IteratorAgreementTest,
                         ::testing::Range<uint64_t>(0, 20));

TEST(EmbeddingIteratorTest, InterleavedIteratorsAreIndependent) {
  Graph g = Figure3Data();
  Graph q = Figure3Query();
  EmbeddingIterator a(g, q);
  EmbeddingIterator b(g, q);
  Embedding ma, mb;
  ASSERT_TRUE(a.Next(&ma));
  ASSERT_TRUE(b.Next(&mb));
  EXPECT_EQ(ma, mb);  // deterministic pipelines yield the same order
  ASSERT_TRUE(a.Next(&ma));
  ASSERT_TRUE(a.Next(&ma));
  EXPECT_FALSE(a.Next(&ma));
  // b is still on its first embedding and can finish independently.
  ASSERT_TRUE(b.Next(&mb));
  ASSERT_TRUE(b.Next(&mb));
  EXPECT_FALSE(b.Next(&mb));
}

}  // namespace
}  // namespace cfl
