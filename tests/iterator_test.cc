// Tests for the pull-based EmbeddingIterator (paper Algorithm 1's
// one-embedding-at-a-time protocol).

#include "match/iterator.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "gen/query_gen.h"
#include "match/cfl_match.h"
#include "gen/synthetic.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::BruteForceEmbeddings;
using testing::Figure3Data;
using testing::Figure3Query;

TEST(EmbeddingIteratorTest, Figure3YieldsAllThree) {
  Graph g = Figure3Data();
  Graph q = Figure3Query();
  EmbeddingIterator it(g, q);
  std::set<Embedding> seen;
  Embedding m;
  while (it.Next(&m)) EXPECT_TRUE(seen.insert(m).second);
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(it.produced(), 3u);
  // Exhausted iterators stay exhausted.
  EXPECT_FALSE(it.Next(&m));
}

TEST(EmbeddingIteratorTest, EarlyStopIsCheap) {
  // A workload with many embeddings: pulling just one must not enumerate
  // the rest (we can only observe produced(), but at least semantics hold).
  Graph q = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  GraphBuilder b(21);
  b.SetLabel(0, 0);
  for (VertexId v = 1; v <= 20; ++v) {
    b.SetLabel(v, 1);
    b.AddEdge(0, v);
  }
  Graph g = std::move(b).Build();

  EmbeddingIterator it(g, q);
  Embedding m;
  ASSERT_TRUE(it.Next(&m));
  EXPECT_EQ(it.produced(), 1u);
  EXPECT_NE(m[1], m[2]);
}

TEST(EmbeddingIteratorTest, NoEmbeddings) {
  Graph g = Figure3Data();
  Graph q = MakeGraph({9, 9}, {{0, 1}});
  EmbeddingIterator it(g, q);
  Embedding m;
  EXPECT_FALSE(it.Next(&m));
  EXPECT_EQ(it.produced(), 0u);
}

class IteratorAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IteratorAgreementTest, YieldsExactlyTheBruteForceSet) {
  const uint64_t seed = GetParam();
  SyntheticOptions options;
  options.num_vertices = 40;
  options.average_degree = 4.5;
  options.num_labels = 3;
  options.seed = seed * 7 + 2;
  Graph g = MakeSynthetic(options);
  QueryGenOptions qo;
  qo.num_vertices = 6;
  qo.sparse = (seed % 2 == 0);
  qo.seed = seed;
  Graph q = GenerateQuery(g, qo);

  std::vector<Embedding> truth = BruteForceEmbeddings(q, g);
  std::set<Embedding> expected(truth.begin(), truth.end());

  EmbeddingIterator it(g, q);
  std::set<Embedding> seen;
  Embedding m;
  while (it.Next(&m)) {
    EXPECT_TRUE(seen.insert(m).second) << "duplicate, seed " << seed;
  }
  EXPECT_EQ(seen, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IteratorAgreementTest,
                         ::testing::Range<uint64_t>(0, 20));

// Regression (ISSUE 7): the iterator used to ignore MatchLimits entirely —
// a streamed query could pin a server worker forever.
TEST(EmbeddingIteratorTest, HonorsMaxEmbeddings) {
  Graph g = Figure3Data();
  Graph q = Figure3Query();  // 3 embeddings total
  MatchLimits limits;
  limits.max_embeddings = 2;
  EmbeddingIterator it(g, q, limits);
  Embedding m;
  EXPECT_TRUE(it.Next(&m));
  EXPECT_TRUE(it.Next(&m));
  EXPECT_FALSE(it.Next(&m));  // capped, not exhausted
  EXPECT_EQ(it.produced(), 2u);
  EXPECT_TRUE(it.reached_limit());
  EXPECT_FALSE(it.timed_out());

  // Same tie-break as MatchResult: reached_limit iff the cap was hit, so a
  // run that exhausts the space below the cap reports neither flag.
  MatchLimits loose;
  loose.max_embeddings = 100;
  EmbeddingIterator all(g, q, loose);
  while (all.Next(&m)) {
  }
  EXPECT_EQ(all.produced(), 3u);
  EXPECT_FALSE(all.reached_limit());
  EXPECT_FALSE(all.timed_out());
}

TEST(EmbeddingIteratorTest, HonorsDeadline) {
  // A heavy workload (dense bipartite-ish blow-up) with an already-expired
  // deadline: the very first Next() must give up and report timed_out.
  GraphBuilder qb(6);
  for (VertexId v = 0; v < 6; ++v) qb.SetLabel(v, v % 2);
  for (VertexId a = 0; a < 6; a += 2) {
    for (VertexId b = 1; b < 6; b += 2) qb.AddEdge(a, b);
  }
  Graph q = std::move(qb).Build();
  GraphBuilder gb(40);
  for (VertexId v = 0; v < 40; ++v) gb.SetLabel(v, v % 2);
  for (VertexId a = 0; a < 40; a += 2) {
    for (VertexId b = 1; b < 40; b += 2) gb.AddEdge(a, b);
  }
  Graph g = std::move(gb).Build();

  MatchLimits limits;
  limits.time_limit_seconds = 1e-9;
  EmbeddingIterator it(g, q, limits);
  Embedding m;
  uint64_t pulled = 0;
  // The deadline is checked on a coarse stride, so a handful of embeddings
  // may slip out before expiry is noticed; the stream must still end in
  // timed_out, far before the full (millions-sized) result set.
  while (it.Next(&m)) ++pulled;
  EXPECT_TRUE(it.timed_out());
  EXPECT_LT(pulled, 1u << 20);
  EXPECT_FALSE(it.Next(&m));  // stays finished
}

TEST(EmbeddingIteratorTest, StreamsFromSharedPreparedQuery) {
  Graph g = Figure3Data();
  Graph q = Figure3Query();
  CflMatcher matcher(g);
  auto prepared = std::make_shared<const PreparedQuery>(matcher.Prepare(q));

  // Two iterators off the same plan: both yield the full set independently.
  std::set<Embedding> direct;
  Embedding m;
  EmbeddingIterator fresh(g, q);
  while (fresh.Next(&m)) direct.insert(m);

  for (int i = 0; i < 2; ++i) {
    EmbeddingIterator it(g, prepared);
    std::set<Embedding> seen;
    while (it.Next(&m)) seen.insert(m);
    EXPECT_EQ(seen, direct);
  }
}

TEST(EmbeddingIteratorTest, InterleavedIteratorsAreIndependent) {
  Graph g = Figure3Data();
  Graph q = Figure3Query();
  EmbeddingIterator a(g, q);
  EmbeddingIterator b(g, q);
  Embedding ma, mb;
  ASSERT_TRUE(a.Next(&ma));
  ASSERT_TRUE(b.Next(&mb));
  EXPECT_EQ(ma, mb);  // deterministic pipelines yield the same order
  ASSERT_TRUE(a.Next(&ma));
  ASSERT_TRUE(a.Next(&ma));
  EXPECT_FALSE(a.Next(&ma));
  // b is still on its first embedding and can finish independently.
  ASSERT_TRUE(b.Next(&mb));
  ASSERT_TRUE(b.Next(&mb));
  EXPECT_FALSE(b.Next(&mb));
}

}  // namespace
}  // namespace cfl
