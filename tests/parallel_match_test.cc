// Parallel enumeration layer: thread-pool semantics and serial-vs-parallel
// equivalence of the root-partitioned matcher across thread counts, with
// and without embedding caps, deadlines, and compressed data graphs.

#include "parallel/parallel_match.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/compress.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "match/cfl_match.h"
#include "parallel/thread_pool.h"
#include "test_util.h"

namespace cfl {
namespace {

const uint32_t kThreadCounts[] = {1, 2, 4, 8};

// ---- ThreadPool ---------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryWorkerExactlyOnce) {
  for (uint32_t n : kThreadCounts) {
    ThreadPool pool(n);
    ASSERT_EQ(pool.size(), n);
    std::vector<std::atomic<uint32_t>> hits(n);
    for (auto& h : hits) h = 0;
    pool.Run([&](uint32_t worker) {
      ASSERT_LT(worker, n);
      ++hits[worker];
    });
    for (uint32_t w = 0; w < n; ++w) EXPECT_EQ(hits[w], 1u) << "worker " << w;
  }
}

TEST(ThreadPoolTest, RunIsABarrierAndReusable) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (int round = 1; round <= 3; ++round) {
    pool.Run([&](uint32_t) { sum.fetch_add(1); });
    // All four increments of the round must be visible after Run returns.
    EXPECT_EQ(sum.load(), static_cast<uint64_t>(4 * round));
  }
}

TEST(ThreadPoolTest, ZeroClampsToOneAndRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Run([&](uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);  // size-1 pools run on the calling thread
}

// A body that throws must fail fast with a diagnostic, never unwind into
// the worker loop or deadlock the Run() barrier. Exercise both execution
// paths: the inline size-1 pool and a detached multi-worker pool.
TEST(ThreadPoolDeathTest, ThrowingBodyFailsFastInline) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool pool(1);
  EXPECT_DEATH(
      pool.Run([](uint32_t) { throw std::runtime_error("inline boom"); }),
      "ThreadPool body threw.*inline boom");
}

TEST(ThreadPoolDeathTest, ThrowingBodyFailsFastOnWorker) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(4);
        pool.Run([](uint32_t worker) {
          if (worker == 2) throw std::runtime_error("worker boom");
        });
      },
      "ThreadPool body threw.*worker boom");
}

// ---- Serial vs parallel equivalence -------------------------------------

uint64_t SerialCount(const Graph& data, const Graph& q,
                     const MatchLimits& limits = {}) {
  CflMatcher matcher(data);
  MatchOptions options;
  options.limits = limits;
  return matcher.Match(q, options).embeddings;
}

TEST(ParallelMatchTest, Figure3CountsAtAllThreadCounts) {
  Graph g = testing::Figure3Data();
  Graph q = testing::Figure3Query();
  for (uint32_t threads : kThreadCounts) {
    ParallelCflMatcher matcher(g, threads);
    MatchResult r = matcher.Match(q);
    EXPECT_EQ(r.embeddings, 3u) << "threads=" << threads;
    EXPECT_FALSE(r.timed_out);
    EXPECT_FALSE(r.reached_limit);
  }
}

TEST(ParallelMatchTest, SyntheticCountsMatchSerial) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    SyntheticOptions data_opt;
    data_opt.num_vertices = 300;
    data_opt.average_degree = 5.0;
    data_opt.num_labels = 4;
    data_opt.seed = seed;
    Graph g = MakeSynthetic(data_opt);

    QueryGenOptions query_opt;
    query_opt.num_vertices = 8;
    query_opt.sparse = (seed % 2 == 0);
    query_opt.seed = seed;
    Graph q = GenerateQuery(g, query_opt);

    const uint64_t expected = SerialCount(g, q);
    for (uint32_t threads : kThreadCounts) {
      ParallelCflMatcher matcher(g, threads);
      MatchResult r = matcher.Match(q);
      EXPECT_EQ(r.embeddings, expected)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_FALSE(r.timed_out);
    }
  }
}

TEST(ParallelMatchTest, EmbeddingCapClampedCountsMatchSerial) {
  SyntheticOptions data_opt;
  data_opt.num_vertices = 300;
  data_opt.average_degree = 6.0;
  data_opt.num_labels = 3;
  data_opt.seed = 11;
  Graph g = MakeSynthetic(data_opt);

  QueryGenOptions query_opt;
  query_opt.num_vertices = 6;
  query_opt.seed = 11;
  Graph q = GenerateQuery(g, query_opt);

  // A cap well below the full count: both engines must stop at it. Counts
  // may overshoot by the last leaf product, so compare clamped values —
  // exactly how the difftest oracle compares engines.
  const uint64_t full = SerialCount(g, q);
  ASSERT_GT(full, 50u) << "fixture too small for a meaningful cap";
  MatchLimits limits;
  limits.max_embeddings = 50;
  const uint64_t serial = std::min(SerialCount(g, q, limits), limits.max_embeddings);

  for (uint32_t threads : kThreadCounts) {
    ParallelCflMatcher matcher(g, threads);
    MatchOptions options;
    options.limits = limits;
    MatchResult r = matcher.Match(q, options);
    EXPECT_EQ(std::min(r.embeddings, limits.max_embeddings), serial)
        << "threads=" << threads;
    EXPECT_TRUE(r.reached_limit) << "threads=" << threads;
  }
}

TEST(ParallelMatchTest, ExpiringDeadlineReportsTimeout) {
  // Clique-on-clique: far too much work for a microsecond deadline; every
  // thread count must cut off and report timed_out without corrupting
  // state or deadlocking at the barrier.
  GraphBuilder qb(8);
  for (VertexId a = 0; a < 8; ++a) {
    for (VertexId b = a + 1; b < 8; ++b) qb.AddEdge(a, b);
  }
  Graph q = std::move(qb).Build();
  GraphBuilder gb(64);
  for (VertexId a = 0; a < 64; ++a) {
    for (VertexId b = a + 1; b < 64; ++b) gb.AddEdge(a, b);
  }
  Graph g = std::move(gb).Build();

  MatchLimits limits;
  limits.time_limit_seconds = 1e-6;
  for (uint32_t threads : kThreadCounts) {
    ParallelCflMatcher matcher(g, threads);
    MatchOptions options;
    options.limits = limits;
    MatchResult r = matcher.Match(q, options);
    EXPECT_TRUE(r.timed_out) << "threads=" << threads;
    EXPECT_FALSE(r.reached_limit);
  }
}

TEST(ParallelMatchTest, CompressedGraphCountsMatchSerial) {
  // Compression introduces multiplicities, exercising the ExpansionFactor
  // path of the parallel visitor.
  Graph plain = testing::Figure7Data();
  Graph q = testing::Figure7Query();
  CompressedGraph compressed = CompressBySE(plain);
  const uint64_t expected = SerialCount(compressed.graph, q);
  EXPECT_EQ(expected, SerialCount(plain, q));  // compression is exact
  for (uint32_t threads : kThreadCounts) {
    ParallelCflMatcher matcher(compressed.graph, threads);
    EXPECT_EQ(matcher.Match(q).embeddings, expected) << "threads=" << threads;
  }
}

TEST(ParallelMatchTest, EnumerationCallbackFallsBackToSerial) {
  Graph g = testing::Figure3Data();
  Graph q = testing::Figure3Query();
  ParallelCflMatcher matcher(g, 4);
  std::vector<Embedding> seen;
  MatchOptions options;
  options.on_embedding = [&](const Embedding& m) {
    seen.push_back(m);
    return true;
  };
  MatchResult r = matcher.Match(q, options);
  EXPECT_EQ(r.embeddings, 3u);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ParallelMatchTest, EngineWrapperNameAndLimits) {
  Graph g = testing::Figure3Data();
  std::unique_ptr<SubgraphEngine> engine = MakeParallelCflMatch(g, 2);
  EXPECT_EQ(engine->name(), "CFL-Match-P2");
  MatchLimits limits;
  limits.max_embeddings = 1;
  MatchResult r = engine->Run(testing::Figure3Query(), limits);
  EXPECT_GE(r.embeddings, 1u);
  EXPECT_TRUE(r.reached_limit);
}

}  // namespace
}  // namespace cfl
