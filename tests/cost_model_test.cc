// Reproduces the paper's Figure 1 / Section 3 cost arithmetic exactly:
// the edge/path-based matching order costs T_iso = 200302, the CFL order
// costs T'_iso = 2302 on the same instance.

#include "order/cost_model.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "match/cfl_match.h"
#include "test_util.h"

namespace cfl {
namespace {

constexpr Label kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

// The Figure 1(a) query: u1:A u2:B u3:C u4:D u5:E u6:C with spanning-tree
// edges (u1,u2),(u2,u3),(u3,u4),(u1,u5),(u5,u6) and non-tree edge (u2,u5).
// (The paper draws u5 with the same label as u2; what matters for the
// arithmetic is that u5's label has 1000 candidates under v0 while u2's has
// one, which the labels here encode.)
Graph Figure1Query() {
  return MakeGraph({kA, kB, kC, kD, kE, kC},
                   {{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 5}, {1, 4}});
}

// A data graph realizing Figure 1(b)'s counts:
//  v0:A -- v2:B and 1000 E vertices e_1..e_1000;
//  v2 -- 100 C vertices c_1..c_100, each with a private D pendant;
//  v2 -- e_1 (the only E vertex adjacent to v2); e_1 -- c0:C.
Graph Figure1Data() {
  const uint32_t kEs = 1000, kCs = 100;
  // ids: 0 = v0, 1 = v2, [2, 2+kCs) = c_i, [2+kCs, 2+2*kCs) = d_i,
  //      [2+2*kCs, 2+2*kCs+kEs) = e_j, last = c0.
  const VertexId c_base = 2, d_base = c_base + kCs, e_base = d_base + kCs;
  const VertexId c0 = e_base + kEs;
  GraphBuilder b(c0 + 1);
  b.SetLabel(0, kA);
  b.SetLabel(1, kB);
  b.AddEdge(0, 1);
  for (uint32_t i = 0; i < kCs; ++i) {
    b.SetLabel(c_base + i, kC);
    b.SetLabel(d_base + i, kD);
    b.AddEdge(1, c_base + i);
    b.AddEdge(c_base + i, d_base + i);
  }
  for (uint32_t j = 0; j < kEs; ++j) {
    b.SetLabel(e_base + j, kE);
    b.AddEdge(0, e_base + j);
  }
  b.AddEdge(1, e_base);      // e_1 is the only E adjacent to v2
  b.SetLabel(c0, kC);
  b.AddEdge(e_base, c0);     // e_1's private C pendant for u6
  return std::move(b).Build();
}

TEST(CostModelTest, Figure1Arithmetic) {
  Graph q = Figure1Query();
  Graph g = Figure1Data();

  // Spanning-tree parents (per Figure 1's thick edges).
  std::vector<VertexId> parents = {kInvalidVertex, 0, 1, 2, 0, 4};

  // The edge/path-based order of QuickSI & TurboISO: (u1,u2,u3,u4,u5,u6).
  CostModelResult naive = ComputeMatchingCost(
      q, g, StepsFromOrder(q, {0, 1, 2, 3, 4, 5}, parents));
  EXPECT_EQ(naive.total_cost, 200302u);
  ASSERT_EQ(naive.breadths.size(), 6u);
  EXPECT_EQ(naive.breadths[0], 1u);    // B1
  EXPECT_EQ(naive.breadths[1], 1u);    // B2
  EXPECT_EQ(naive.breadths[2], 100u);  // B3
  EXPECT_EQ(naive.breadths[3], 100u);  // B4
  EXPECT_EQ(naive.breadths[4], 100u);  // B5

  // The CFL order that checks the non-tree edge early: (u1,u2,u5,u3,u4,u6).
  CostModelResult cfl = ComputeMatchingCost(
      q, g, StepsFromOrder(q, {0, 1, 4, 2, 3, 5}, parents));
  EXPECT_EQ(cfl.total_cost, 2302u);

  // The paper's headline: two orders of magnitude apart on this instance.
  EXPECT_GT(naive.total_cost / cfl.total_cost, 80u);
}

TEST(CostModelTest, Figure1EmbeddingCount) {
  // Both orders describe the same query: CFL-Match finds all 100 embeddings
  // (u3 -> c_i, u4 -> d_i, u5 -> e_1, u6 -> c0).
  Graph q = Figure1Query();
  Graph g = Figure1Data();
  CflMatcher matcher(g);
  EXPECT_EQ(matcher.Match(q).embeddings, 100u);
}

TEST(CostModelTest, BreadthsMatchBruteForceOnRandomInstance) {
  Graph q = testing::Figure3Query();
  Graph g = testing::Figure3Data();
  std::vector<VertexId> parents = {kInvalidVertex, 0, 0, 1, 2};
  CostModelResult r =
      ComputeMatchingCost(q, g, StepsFromOrder(q, {0, 1, 2, 3, 4}, parents));
  // Final breadth = number of embeddings of the full query = 3 (Figure 3).
  EXPECT_EQ(r.breadths.back(), 3u);
  EXPECT_FALSE(r.truncated);
}

TEST(CostModelTest, TruncationFlag) {
  // One-label star blow-up overflows a tiny breadth cap.
  GraphBuilder gb(40);
  for (VertexId v = 1; v < 40; ++v) gb.AddEdge(0, v);
  Graph g = std::move(gb).Build();
  Graph q = MakeGraph({0, 0, 0}, {{0, 1}, {0, 2}});
  std::vector<VertexId> parents = {kInvalidVertex, 0, 0};
  CostModelResult r = ComputeMatchingCost(
      q, g, StepsFromOrder(q, {0, 1, 2}, parents), /*max_breadth=*/10);
  EXPECT_TRUE(r.truncated);
}

TEST(CostModelTest, StepsFromOrderValidation) {
  Graph q = testing::Figure3Query();
  std::vector<VertexId> parents = {kInvalidVertex, 0, 0, 1, 2};
  // Child before parent must throw.
  EXPECT_THROW(StepsFromOrder(q, {3, 1, 0, 2, 4}, parents),
               std::invalid_argument);
}

}  // namespace
}  // namespace cfl
