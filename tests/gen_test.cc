// Tests for the generators: synthetic data graphs, twin planting, random-
// walk query extraction, and the dataset stand-ins' statistics.

#include "gen/synthetic.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/query_gen.h"
#include "gen/rng.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"

namespace cfl {
namespace {

TEST(RngTest, DeterministicAndBounded) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.Next64();
    EXPECT_EQ(x, b.Next64());
    uint64_t below = a.Below(17);
    EXPECT_LT(below, 17u);
    EXPECT_EQ(below, b.Below(17));
  }
  // Different seeds diverge immediately.
  Rng a2(42);
  EXPECT_NE(a2.Next64(), c.Next64());
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double x = r.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng r(11);
  std::vector<uint32_t> counts(10, 0);
  const int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) counts[r.Below(10)]++;
  for (uint32_t c : counts) {
    EXPECT_NEAR(c, kDraws / 10.0, kDraws / 10.0 * 0.15);
  }
}

TEST(SyntheticTest, HitsTargets) {
  SyntheticOptions options;
  options.num_vertices = 5000;
  options.average_degree = 8.0;
  options.num_labels = 50;
  options.seed = 3;
  Graph g = MakeSynthetic(options);
  EXPECT_EQ(g.NumVertices(), 5000u);
  EXPECT_EQ(g.NumEdges(), 20000u);  // n*d/2 exactly
  GraphStats s = ComputeStats(g);
  EXPECT_NEAR(s.average_degree, 8.0, 1e-9);
  EXPECT_LE(s.num_labels, 50u);
}

TEST(SyntheticTest, ConnectedByConstruction) {
  SyntheticOptions options;
  options.num_vertices = 500;
  options.average_degree = 2.0;  // barely above tree density
  options.seed = 5;
  Graph g = MakeSynthetic(options);
  // BFS reach from 0 must cover everything.
  std::vector<bool> seen(g.NumVertices(), false);
  std::vector<VertexId> queue = {0};
  seen[0] = true;
  size_t reached = 1;
  while (!queue.empty()) {
    VertexId v = queue.back();
    queue.pop_back();
    for (VertexId w : g.Neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        ++reached;
        queue.push_back(w);
      }
    }
  }
  EXPECT_EQ(reached, g.NumVertices());
}

TEST(SyntheticTest, Deterministic) {
  SyntheticOptions options;
  options.num_vertices = 300;
  options.seed = 9;
  Graph a = MakeSynthetic(options);
  Graph b = MakeSynthetic(options);
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.label(v), b.label(v));
  }
}

TEST(SyntheticTest, PowerLawSkewsLabels) {
  SyntheticOptions options;
  options.num_vertices = 20000;
  options.num_labels = 20;
  options.label_exponent = 1.5;
  options.seed = 12;
  Graph g = MakeSynthetic(options);
  // Label 0 must be much more frequent than label 19.
  EXPECT_GT(g.LabelFrequency(0), 5 * std::max<uint64_t>(1, g.LabelFrequency(19)));
}

TEST(SyntheticTest, UniformWhenExponentZero) {
  SyntheticOptions options;
  options.num_vertices = 20000;
  options.num_labels = 10;
  options.label_exponent = 0.0;
  options.seed = 13;
  Graph g = MakeSynthetic(options);
  for (Label l = 0; l < 10; ++l) {
    EXPECT_NEAR(g.LabelFrequency(l), 2000.0, 300.0) << "label " << l;
  }
}

TEST(TwinTest, TwinsCopyNeighborhoods) {
  SyntheticOptions options;
  options.num_vertices = 100;
  options.seed = 1;
  Graph base = MakeSynthetic(options);
  Graph g = AddTwinVertices(base, 30, 0.0, 2);
  ASSERT_EQ(g.NumVertices(), 130u);
  // Original adjacency is preserved among the first 100 vertices.
  for (VertexId v = 0; v < 100; ++v) {
    for (VertexId w : base.Neighbors(v)) {
      EXPECT_TRUE(g.HasEdge(v, w));
    }
  }
  // Every twin's neighborhood is a subset of original vertices and matches
  // some original vertex's base neighborhood.
  for (VertexId t = 100; t < 130; ++t) {
    EXPECT_GT(g.StructuralDegree(t), 0u);
    for (VertexId w : g.Neighbors(t)) EXPECT_LT(w, 100u);
  }
}

TEST(QueryGenTest, SparseQueriesAreSparseConnectedSubgraphs) {
  SyntheticOptions options;
  options.num_vertices = 2000;
  options.average_degree = 8.0;
  options.num_labels = 10;
  options.seed = 77;
  Graph g = MakeSynthetic(options);

  for (uint64_t seed = 0; seed < 10; ++seed) {
    QueryGenOptions qo;
    qo.num_vertices = 20;
    qo.sparse = true;
    qo.seed = seed;
    Graph q = GenerateQuery(g, qo);
    EXPECT_EQ(q.NumVertices(), 20u);
    // Sparse: average degree <= 3.
    EXPECT_LE(2.0 * q.NumEdges(), 3.0 * q.NumVertices());
    // Connected: edges >= n-1 plus BFS reach.
    EXPECT_GE(q.NumEdges(), q.NumVertices() - 1);
  }
}

TEST(QueryGenTest, NonSparseQueriesAreDenser) {
  SyntheticOptions options;
  options.num_vertices = 40;
  options.average_degree = 12.0;  // dense enough to host non-sparse queries
  options.num_labels = 5;
  options.seed = 78;
  Graph g = MakeSynthetic(options);
  QueryGenOptions qo;
  qo.num_vertices = 10;
  qo.sparse = false;
  qo.seed = 4;
  Graph q = GenerateQuery(g, qo);
  EXPECT_GT(2.0 * q.NumEdges(), 3.0 * q.NumVertices());
}

TEST(QueryGenTest, QueriesAreSubgraphsOfData) {
  // Every query edge must exist in the data graph under the walk's vertex
  // mapping. We can't observe the mapping directly, but labels and a
  // brute-force check that the query has >= 1 embedding suffice.
  SyntheticOptions options;
  options.num_vertices = 300;
  options.average_degree = 6.0;
  options.num_labels = 4;
  options.seed = 80;
  Graph g = MakeSynthetic(options);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    QueryGenOptions qo;
    qo.num_vertices = 8;
    qo.seed = seed;
    Graph q = GenerateQuery(g, qo);
    // The extraction guarantees at least one embedding exists.
    // (Checked cheaply via CFL in cfl_match_test; here check labels exist.)
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      EXPECT_FALSE(g.VerticesWithLabel(q.label(u)).empty());
    }
  }
}

TEST(QueryGenTest, ThrowsWhenQueryLargerThanData) {
  Graph g = MakeGraph({0, 0}, {{0, 1}});
  QueryGenOptions qo;
  qo.num_vertices = 5;
  EXPECT_THROW(GenerateQuery(g, qo), std::runtime_error);
}

TEST(DatasetsTest, StandInsMatchPublishedShapes) {
  struct Expect {
    const char* name;
    uint64_t vertices;
    double avg_degree;
    uint32_t labels;
  };
  // Full-size targets from the paper's Section 6 / appendix; generated at
  // reduced scale, degree and label counts must still track.
  const Expect expects[] = {
      {"hprd", 9460, 7.8, 307},
      {"yeast", 3112, 8.1, 71},
      {"human", 4674, 36.9, 44},
  };
  for (const Expect& e : expects) {
    Graph g = MakeDatasetLike(e.name, /*scale=*/0.5);
    GraphStats s = ComputeStats(g);
    EXPECT_NEAR(s.num_vertices, e.vertices * 0.5, e.vertices * 0.02) << e.name;
    EXPECT_NEAR(s.average_degree, e.avg_degree, e.avg_degree * 0.25) << e.name;
    EXPECT_LE(s.num_labels, e.labels) << e.name;
  }
}

TEST(DatasetsTest, UnknownNameThrows) {
  EXPECT_THROW(MakeDatasetLike("imdb"), std::invalid_argument);
  EXPECT_THROW(MakeDatasetLike("hprd", 0.0), std::invalid_argument);
  EXPECT_THROW(MakeDatasetLike("hprd", 1.5), std::invalid_argument);
}

TEST(DatasetsTest, NamesRoundTrip) {
  for (const std::string& name : DatasetNames()) {
    Graph g = MakeDatasetLike(name, 0.02);
    EXPECT_GT(g.NumVertices(), 0u) << name;
  }
}

}  // namespace
}  // namespace cfl
