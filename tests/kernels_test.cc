// Property tests for the SIMD kernel layer (kernels/kernels.h).
//
// The contract under test: for identical inputs, the scalar reference, the
// AVX2 implementation, and the dispatched entry points return identical
// bytes — same values, same order, same counts, same first-failure index
// from VerifyBackwardEdges. Inputs sweep the shapes the engine produces:
// empty, singleton, unaligned tails around the 8-lane block width, sizes
// from 10^0 to 10^5, disjoint/identical extremes, and skew ratios past the
// galloping cutover.

#include "kernels/kernels.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "check/env.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace cfl {
namespace {

using kernels::BackwardPlan;
using kernels::Isa;

// ---- reference implementations (straight from the STL) -------------------

std::vector<uint32_t> RefIntersect(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint32_t> RefPositions(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  size_t i = 0;
  for (size_t j = 0; j < b.size(); ++j) {
    while (i < a.size() && a[i] < b[j]) ++i;
    if (i < a.size() && a[i] == b[j]) out.push_back(static_cast<uint32_t>(j));
  }
  return out;
}

// Strictly ascending vector of `n` values with gaps in [1, max_gap].
std::vector<uint32_t> RandomAscending(std::mt19937& rng, size_t n,
                                      uint32_t max_gap) {
  std::uniform_int_distribution<uint32_t> gap(1, max_gap);
  std::vector<uint32_t> v;
  v.reserve(n);
  uint32_t cur = gap(rng);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(cur);
    cur += gap(rng);
  }
  return v;
}

// Runs every implementation of every intersection primitive on (a, b) and
// checks them against the STL reference. `where` labels the failing combo.
void CheckIntersection(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b, const char* where) {
  const std::vector<uint32_t> want = RefIntersect(a, b);
  const std::vector<uint32_t> want_pos = RefPositions(a, b);

  std::vector<uint32_t> got;
  kernels::scalar::IntersectSorted(a, b, got);
  EXPECT_EQ(got, want) << where << " scalar values |a|=" << a.size()
                       << " |b|=" << b.size();
  got.clear();
  kernels::avx2::IntersectSorted(a, b, got);
  EXPECT_EQ(got, want) << where << " avx2 values |a|=" << a.size()
                       << " |b|=" << b.size();
  got.clear();
  kernels::IntersectSorted(a, b, got);
  EXPECT_EQ(got, want) << where << " dispatched values";

  EXPECT_EQ(kernels::scalar::IntersectCount(a, b), want.size())
      << where << " scalar count";
  EXPECT_EQ(kernels::avx2::IntersectCount(a, b), want.size())
      << where << " avx2 count";
  EXPECT_EQ(kernels::IntersectCount(a, b), want.size())
      << where << " dispatched count";

  got.clear();
  kernels::scalar::IntersectPositions(a, b, got);
  EXPECT_EQ(got, want_pos) << where << " scalar positions";
  got.clear();
  kernels::avx2::IntersectPositions(a, b, got);
  EXPECT_EQ(got, want_pos) << where << " avx2 positions";
  got.clear();
  kernels::IntersectPositions(a, b, got);
  EXPECT_EQ(got, want_pos) << where << " dispatched positions";
}

TEST(KernelsIntersectTest, EmptyAndSingletonEdgeCases) {
  const std::vector<uint32_t> empty;
  const std::vector<uint32_t> one{7};
  const std::vector<uint32_t> other{9};
  const std::vector<uint32_t> run{1, 3, 5, 7, 9, 11, 13, 15, 17};
  CheckIntersection(empty, empty, "empty/empty");
  CheckIntersection(empty, run, "empty/run");
  CheckIntersection(run, empty, "run/empty");
  CheckIntersection(one, one, "one/one");
  CheckIntersection(one, other, "one/other");
  CheckIntersection(one, run, "one/run");
  CheckIntersection(run, one, "run/one");
}

TEST(KernelsIntersectTest, DisjointAndIdenticalExtremes) {
  std::mt19937 rng(17);
  for (size_t n : {1u, 8u, 9u, 100u, 4096u}) {
    std::vector<uint32_t> a = RandomAscending(rng, n, 5);
    CheckIntersection(a, a, "identical");
    // Interleave a second sequence into the gaps: strictly disjoint.
    std::vector<uint32_t> b;
    for (uint32_t x : a) b.push_back(x * 2 + 100000000u);
    CheckIntersection(a, b, "disjoint");
    CheckIntersection(b, a, "disjoint-swapped");
  }
}

TEST(KernelsIntersectTest, UnalignedTailsAroundBlockWidth) {
  std::mt19937 rng(23);
  // Every size pair around the 8-lane block width, both orders: the block
  // loop's tail handoff must be exact for 7/8/9-style remainders.
  for (size_t na = 0; na <= 19; ++na) {
    for (size_t nb = 0; nb <= 19; ++nb) {
      std::vector<uint32_t> a = RandomAscending(rng, na, 3);
      std::vector<uint32_t> b = RandomAscending(rng, nb, 3);
      CheckIntersection(a, b, "tail-sweep");
    }
  }
}

TEST(KernelsIntersectTest, RandomizedSizeAndDensitySweep) {
  std::mt19937 rng(41);
  const size_t sizes[] = {1, 10, 100, 1000, 10000, 100000};
  // max_gap controls density and thus selectivity: gap 2 overlaps heavily
  // with gap 2, gap 64 barely touches anything.
  const uint32_t gaps[] = {2, 8, 64};
  for (size_t na : sizes) {
    for (size_t nb : sizes) {
      for (uint32_t ga : gaps) {
        std::vector<uint32_t> a = RandomAscending(rng, na, ga);
        std::vector<uint32_t> b = RandomAscending(rng, nb, ga);
        CheckIntersection(a, b, "sweep");
      }
    }
  }
}

TEST(KernelsIntersectTest, SkewedPairsTakeGallopingPathCorrectly) {
  std::mt19937 rng(59);
  // 10^4:1-style skew drives both directions past the galloping cutover.
  std::vector<uint32_t> large = RandomAscending(rng, 100000, 4);
  for (size_t small_n : {1u, 3u, 17u, 200u}) {
    std::vector<uint32_t> small;
    std::sample(large.begin(), large.end(), std::back_inserter(small),
                small_n, rng);
    // Perturb half the sampled values so misses interleave with hits.
    for (size_t i = 0; i < small.size(); i += 2) small[i] += 1;
    std::sort(small.begin(), small.end());
    small.erase(std::unique(small.begin(), small.end()), small.end());
    CheckIntersection(small, large, "gallop-small-a");
    CheckIntersection(large, small, "gallop-small-b");
  }
}

// ---- backward-edge verification ------------------------------------------

// A graph with both hub and non-hub vertices: vertices 0..3 connect to most
// of the 64 tail vertices (structural degree >= 8 => hubs at threshold 8),
// the tail vertices keep degree < 8 (non-hubs).
Graph HubMixData() {
  constexpr uint32_t kTail = 64;
  GraphBuilder b(4 + kTail);
  b.SetHubDegreeThreshold(8);
  for (uint32_t v = 0; v < 4 + kTail; ++v) b.SetLabel(v, 0);
  for (uint32_t h = 0; h < 4; ++h) {
    for (uint32_t t = 0; t < kTail; ++t) {
      // Each hub skips a different residue class so rows differ.
      if (t % 7 == h) continue;
      b.AddEdge(h, 4 + t);
    }
  }
  return std::move(b).Build();
}

TEST(KernelsVerifyTest, MatchesPerEdgeHasEdgeOnHubAndNonHubMixes) {
  Graph g = HubMixData();
  ASSERT_TRUE(g.HasHubIndex());
  ASSERT_TRUE(g.IsHub(0));
  ASSERT_FALSE(g.IsHub(4));

  std::mt19937 rng(97);
  std::uniform_int_distribution<uint32_t> pick(0, g.NumVertices() - 1);
  for (int trial = 0; trial < 2000; ++trial) {
    BackwardPlan plan;
    plan.Reset();
    const uint32_t n = 1 + trial % 7;
    std::vector<VertexId> mapped;
    for (uint32_t k = 0; k < n; ++k) {
      VertexId w = pick(rng);
      // Bias toward hubs so the all-hub bit-parallel path gets exercised.
      if (trial % 3 != 0) w %= 4;
      plan.Add(g, w);
      mapped.push_back(w);
    }
    const VertexId v = pick(rng);

    // Reference: first failing per-edge HasEdge probe, or n if all pass.
    uint32_t want = n;
    for (uint32_t k = 0; k < n; ++k) {
      if (!g.HasEdge(mapped[k], v)) {
        want = k;
        break;
      }
    }
    EXPECT_EQ(kernels::scalar::VerifyBackwardEdges(g, plan, v), want)
        << "trial " << trial << " v=" << v;
    EXPECT_EQ(kernels::avx2::VerifyBackwardEdges(g, plan, v), want)
        << "trial " << trial << " v=" << v;
    EXPECT_EQ(kernels::VerifyBackwardEdges(g, plan, v), want)
        << "trial " << trial << " v=" << v;
  }
}

TEST(KernelsVerifyTest, PlanTracksHubRowsAndAllHubFlag) {
  Graph g = HubMixData();
  BackwardPlan plan;
  plan.Add(g, 0);
  plan.Add(g, 1);
  EXPECT_TRUE(plan.all_hub);
  EXPECT_NE(plan.edges[0].row, nullptr);
  plan.Add(g, 5);  // tail vertex: not a hub
  EXPECT_FALSE(plan.all_hub);
  EXPECT_EQ(plan.edges[2].row, nullptr);
  plan.Reset();
  EXPECT_TRUE(plan.all_hub);
  EXPECT_TRUE(plan.edges.empty());
}

TEST(KernelsVerifyTest, EmptyPlanAlwaysPasses) {
  Graph g = HubMixData();
  BackwardPlan plan;
  EXPECT_EQ(kernels::VerifyBackwardEdges(g, plan, 0), 0u);
  EXPECT_EQ(kernels::scalar::VerifyBackwardEdges(g, plan, 7), 0u);
  EXPECT_EQ(kernels::avx2::VerifyBackwardEdges(g, plan, 7), 0u);
}

TEST(KernelsVerifyTest, WorksWithoutHubIndex) {
  // Hub rows disabled entirely: every plan edge falls back to HasEdge.
  GraphBuilder b(6);
  b.SetHubDegreeThreshold(0);
  for (uint32_t v = 0; v < 6; ++v) b.SetLabel(v, 0);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build();
  ASSERT_FALSE(g.HasHubIndex());
  BackwardPlan plan;
  plan.Add(g, 0);
  plan.Add(g, 1);
  EXPECT_FALSE(plan.all_hub);
  EXPECT_EQ(kernels::scalar::VerifyBackwardEdges(g, plan, 2), 2u);
  EXPECT_EQ(kernels::avx2::VerifyBackwardEdges(g, plan, 2), 2u);
  EXPECT_EQ(kernels::scalar::VerifyBackwardEdges(g, plan, 3), 0u);
  plan.Reset();
  plan.Add(g, 2);
  plan.Add(g, 3);  // v=0: edge (2,0) holds, (3,0) doesn't -> first fail 1
  EXPECT_EQ(kernels::avx2::VerifyBackwardEdges(g, plan, 0), 1u);
}

// ---- dispatch ------------------------------------------------------------

TEST(KernelsDispatchTest, StartupSelectionIsConsistent) {
  const Isa isa = kernels::ActiveIsa();
  if (env::Get("CFL_FORCE_SCALAR") != nullptr &&
      std::string_view(env::Get("CFL_FORCE_SCALAR")) != "0") {
    EXPECT_EQ(isa, Isa::kScalar);
    EXPECT_FALSE(kernels::PrefetchEnabled());
  } else if (kernels::Avx2Available()) {
    EXPECT_EQ(isa, Isa::kAvx2);
  } else {
    EXPECT_EQ(isa, Isa::kScalar);
  }
  EXPECT_STRNE(kernels::IsaName(isa), "");
  // CompiledIn is a superset condition of Available.
  if (kernels::Avx2Available()) {
    EXPECT_TRUE(kernels::Avx2CompiledIn());
  }
}

TEST(KernelsDispatchTest, ForcedIsasAgreeBitForBit) {
  const Isa original = kernels::ActiveIsa();
  std::mt19937 rng(131);
  std::vector<uint32_t> a = RandomAscending(rng, 3000, 6);
  std::vector<uint32_t> b = RandomAscending(rng, 5000, 4);
  Graph g = HubMixData();
  BackwardPlan plan;
  plan.Add(g, 0);
  plan.Add(g, 1);
  plan.Add(g, 2);
  plan.Add(g, 3);

  kernels::ForceIsaForTesting(Isa::kScalar);
  EXPECT_EQ(kernels::ActiveIsa(), Isa::kScalar);
  std::vector<uint32_t> scalar_vals;
  kernels::IntersectSorted(a, b, scalar_vals);
  const uint64_t scalar_count = kernels::IntersectCount(a, b);
  std::vector<uint32_t> scalar_pos;
  kernels::IntersectPositions(a, b, scalar_pos);
  std::vector<uint32_t> scalar_fails;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    scalar_fails.push_back(kernels::VerifyBackwardEdges(g, plan, v));
  }

  if (kernels::Avx2Available()) {
    kernels::ForceIsaForTesting(Isa::kAvx2);
    EXPECT_EQ(kernels::ActiveIsa(), Isa::kAvx2);
    std::vector<uint32_t> vals;
    kernels::IntersectSorted(a, b, vals);
    EXPECT_EQ(vals, scalar_vals);
    EXPECT_EQ(kernels::IntersectCount(a, b), scalar_count);
    std::vector<uint32_t> pos;
    kernels::IntersectPositions(a, b, pos);
    EXPECT_EQ(pos, scalar_pos);
    std::vector<uint32_t> fails;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      fails.push_back(kernels::VerifyBackwardEdges(g, plan, v));
    }
    EXPECT_EQ(fails, scalar_fails);
  }

  kernels::ForceIsaForTesting(original);
  EXPECT_EQ(kernels::ActiveIsa(), original);
}

TEST(KernelsDispatchTest, PrefetchSpanIsAHarmlessHint) {
  // Purely a smoke test: any pointer/size combination must be safe.
  std::vector<uint32_t> v(100000);
  kernels::PrefetchSpan(nullptr, 0);
  kernels::PrefetchSpan(v.data(), 0);
  kernels::PrefetchSpan(v.data(), 1);
  kernels::PrefetchSpan(v.data(), 64);
  kernels::PrefetchSpan(v.data(), 65);
  kernels::PrefetchSpan(v.data(), v.size() * sizeof(uint32_t));
  SUCCEED();
}

}  // namespace
}  // namespace cfl
