// Tests for candidate filters, root selection, and CPI construction —
// including the paper's full Figure 7 construction trace and the soundness
// property (Lemmas 5.2 / 5.3) on randomized inputs.

#include "cpi/cpi_builder.h"

#include <algorithm>
#include <numeric>
#include <span>

#include <gtest/gtest.h>

#include "cpi/candidate_filter.h"
#include "cpi/root_select.h"
#include "decomp/bfs_tree.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::BruteForceEmbeddings;
using testing::Figure7Data;
using testing::Figure7Query;

std::vector<VertexId> ToVec(std::span<const VertexId> s) {
  return {s.begin(), s.end()};
}

std::vector<VertexId> Sorted(std::span<const VertexId> s) {
  std::vector<VertexId> v(s.begin(), s.end());
  std::sort(v.begin(), v.end());
  return v;
}

TEST(CandidateFilterTest, LabelDegreeFilter) {
  Graph q = Figure7Query();
  Graph g = Figure7Data();
  // u1 (B, degree 3): v3 qualifies, v10 (C) has the wrong label.
  EXPECT_TRUE(LabelDegreeFilter(q, 1, g, 3));
  EXPECT_FALSE(LabelDegreeFilter(q, 1, g, 10));
  // u2 (C, degree 3): v10 has degree 3 and label C.
  EXPECT_TRUE(LabelDegreeFilter(q, 2, g, 10));
}

TEST(CandidateFilterTest, CandVerifyNlf) {
  Graph q = Figure7Query();
  Graph g = Figure7Data();
  // v10 (C) has no D neighbor, which u2 requires -> CandVerify fails
  // (exactly the paper's Example 5.1 pruning of v10).
  EXPECT_FALSE(CandVerify(q, 2, g, 10));
  EXPECT_TRUE(CandVerify(q, 2, g, 4));
  EXPECT_TRUE(CandVerify(q, 2, g, 6));
  EXPECT_TRUE(CandVerify(q, 2, g, 8));
}

TEST(CandidateFilterTest, MndFilter) {
  // Query: center 0 with a degree-3 neighbor -> mnd_q(1) = 3. Data vertex
  // whose neighbors all have degree 1 must fail.
  Graph q = MakeGraph({0, 1, 2, 2, 2}, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  Graph g = MakeGraph({1, 0, 2, 2, 2}, {{0, 1}, {1, 2}, {1, 3}, {1, 4}});
  // In q, vertex 1 (label 1) has neighbor 0 with degree 4 -> mnd_q = 4.
  // In g, vertex 0 (label 1) has neighbor 1 with degree 4 -> passes.
  EXPECT_TRUE(CandVerify(q, 1, g, 0));
  // Cross-check the accessor directly.
  EXPECT_EQ(q.MaxNeighborDegree(1), 4u);
  EXPECT_EQ(g.MaxNeighborDegree(2), 4u);
}

TEST(LabelDegreeIndexTest, Counts) {
  Graph g = Figure7Data();
  LabelDegreeIndex index(g);
  // B vertices: v3,v5,v9 have degree 3; v7 has degree 4.
  EXPECT_EQ(index.CountAtLeast(testing::kB, 3), 4u);
  EXPECT_EQ(index.CountAtLeast(testing::kB, 4), 1u);
  EXPECT_EQ(index.CountAtLeast(testing::kB, 5), 0u);
  // A vertices: v1 (degree 5), v2 (degree 3).
  EXPECT_EQ(index.CountAtLeast(testing::kA, 1), 2u);
  EXPECT_EQ(index.CountAtLeast(testing::kA, 4), 1u);
  EXPECT_EQ(index.CountAtLeast(99, 0), 0u);
}

TEST(RootSelectTest, PicksU0ForFigure7) {
  Graph q = Figure7Query();
  Graph g = Figure7Data();
  LabelDegreeIndex index(g);
  std::vector<VertexId> all = {0, 1, 2, 3};
  EXPECT_EQ(SelectRoot(q, g, index, all), 0u);
}

class CpiFigure7Test : public ::testing::Test {
 protected:
  CpiFigure7Test()
      : q_(Figure7Query()), g_(Figure7Data()), tree_(BuildBfsTree(q_, 0)) {}

  Graph q_, g_;
  BfsTree tree_;
};

TEST_F(CpiFigure7Test, NaiveCandidatesAreLabelSets) {
  Cpi cpi = BuildCpi(q_, g_, tree_, CpiStrategy::kNaive);
  EXPECT_EQ(ToVec(cpi.Candidates(0)), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(ToVec(cpi.Candidates(1)), (std::vector<VertexId>{3, 5, 7, 9}));
  EXPECT_EQ(ToVec(cpi.Candidates(2)), (std::vector<VertexId>{4, 6, 8, 10}));
  EXPECT_EQ(ToVec(cpi.Candidates(3)), (std::vector<VertexId>{11, 12, 13, 15}));
}

TEST_F(CpiFigure7Test, TopDownMatchesFigure7d) {
  // Paper Example 5.1: forward generation gives u1 = {v3,v5,v7,v9} then the
  // backward pass prunes v9; u2 = {v4,v6,v8} (v10 killed by CandVerify);
  // u3 = {v11,v12} (v13, v15 lack a neighbor in u2.C / u1.C).
  Cpi cpi = BuildCpi(q_, g_, tree_, CpiStrategy::kTopDown);
  EXPECT_EQ(ToVec(cpi.Candidates(0)), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(ToVec(cpi.Candidates(1)), (std::vector<VertexId>{3, 5, 7}));
  EXPECT_EQ(ToVec(cpi.Candidates(2)), (std::vector<VertexId>{4, 6, 8}));
  EXPECT_EQ(ToVec(cpi.Candidates(3)), (std::vector<VertexId>{11, 12}));
}

TEST_F(CpiFigure7Test, RefinedMatchesFigure7e) {
  // Paper Example 5.2: bottom-up refinement prunes v8 (u2), v7 (u1), v2 (u0).
  Cpi cpi = BuildCpi(q_, g_, tree_, CpiStrategy::kRefined);
  EXPECT_EQ(ToVec(cpi.Candidates(0)), (std::vector<VertexId>{1}));
  EXPECT_EQ(ToVec(cpi.Candidates(1)), (std::vector<VertexId>{3, 5}));
  EXPECT_EQ(ToVec(cpi.Candidates(2)), (std::vector<VertexId>{4, 6}));
  EXPECT_EQ(ToVec(cpi.Candidates(3)), (std::vector<VertexId>{11, 12}));
}

TEST_F(CpiFigure7Test, RefinedAdjacencyLists) {
  Cpi cpi = BuildCpi(q_, g_, tree_, CpiStrategy::kRefined);
  // N_{u1}^{u0}(v1) = {v3, v5} — as positions {0, 1} in u1.C.
  std::span<const uint32_t> adj_u1 = cpi.AdjacentPositions(1, 0);
  ASSERT_EQ(adj_u1.size(), 2u);
  EXPECT_EQ(cpi.CandidateAt(1, adj_u1[0]), 3u);
  EXPECT_EQ(cpi.CandidateAt(1, adj_u1[1]), 5u);
  // N_{u3}^{u1}(v3) = {v11}; N_{u3}^{u1}(v5) = {v12}.
  std::span<const uint32_t> adj_v3 = cpi.AdjacentPositions(3, 0);
  ASSERT_EQ(adj_v3.size(), 1u);
  EXPECT_EQ(cpi.CandidateAt(3, adj_v3[0]), 11u);
  std::span<const uint32_t> adj_v5 = cpi.AdjacentPositions(3, 1);
  ASSERT_EQ(adj_v5.size(), 1u);
  EXPECT_EQ(cpi.CandidateAt(3, adj_v5[0]), 12u);
}

TEST_F(CpiFigure7Test, EmptinessDetection) {
  Cpi cpi = BuildCpi(q_, g_, tree_, CpiStrategy::kRefined);
  EXPECT_FALSE(cpi.HasEmptyCandidateSet());

  // A query with an impossible label has empty candidates everywhere.
  Graph impossible = MakeGraph({17, 17}, {{0, 1}});
  BfsTree t2 = BuildBfsTree(impossible, 0);
  Cpi cpi2 = BuildCpi(impossible, g_, t2, CpiStrategy::kRefined);
  EXPECT_TRUE(cpi2.HasEmptyCandidateSet());
}

TEST_F(CpiFigure7Test, SizeBoundHolds) {
  // |CPI| = O(|E(G)| * |V(q)|): candidates <= |V(G)| per vertex, adjacency
  // entries <= 2|E(G)| per tree edge.
  Cpi cpi = BuildCpi(q_, g_, tree_, CpiStrategy::kNaive);
  uint64_t bound = static_cast<uint64_t>(q_.NumVertices()) *
                   (g_.NumVertices() + 2 * g_.NumEdges());
  EXPECT_LE(cpi.SizeInEntries(), bound);
  EXPECT_GT(cpi.MemoryBytes(), 0u);
}

// ---- CpiBuildStats (src/obs/stats.h) ------------------------------------

// The Figure 7 trace pins down the per-vertex accounting exactly: forward
// generation sizes, the backward S-NTE prune of v9 from u1.C, and the
// bottom-up prunes of v2/v7/v8 (Examples 5.1 / 5.2).
TEST_F(CpiFigure7Test, BuildStatsMatchFigure7Trace) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  CpiBuilder builder(g_);
  CpiBuildStats stats;
  builder.Build(q_, tree_, CpiStrategy::kRefined, &stats);
  EXPECT_EQ(stats.generated,
            (std::vector<uint64_t>{2, 4, 3, 2}));  // v9 still present in u1
  EXPECT_EQ(stats.pruned_backward, (std::vector<uint64_t>{0, 1, 0, 0}));
  EXPECT_EQ(stats.pruned_bottomup, (std::vector<uint64_t>{1, 1, 1, 0}));
  EXPECT_EQ(stats.TotalGenerated(), 11u);
  EXPECT_EQ(stats.TotalPruned(), 4u);
}

// generated[u] - pruned[u] == |C(u)| for every strategy; the naive strategy
// prunes nothing; the phase timers are non-negative.
TEST_F(CpiFigure7Test, BuildStatsReconcileAcrossStrategies) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  for (CpiStrategy strategy :
       {CpiStrategy::kNaive, CpiStrategy::kTopDown, CpiStrategy::kRefined}) {
    CpiBuilder builder(g_);
    CpiBuildStats stats;
    Cpi cpi = builder.Build(q_, tree_, strategy, &stats);
    ASSERT_EQ(stats.generated.size(), q_.NumVertices());
    for (VertexId u = 0; u < q_.NumVertices(); ++u) {
      EXPECT_EQ(stats.generated[u] - stats.pruned_backward[u] -
                    stats.pruned_bottomup[u],
                cpi.NumCandidates(u))
          << "strategy " << int(strategy) << " u " << u;
    }
    if (strategy == CpiStrategy::kNaive) {
      EXPECT_EQ(stats.TotalPruned(), 0u);
    }
    if (strategy != CpiStrategy::kRefined) {
      EXPECT_EQ(std::accumulate(stats.pruned_bottomup.begin(),
                                stats.pruned_bottomup.end(), uint64_t{0}),
                0u);
    }
    EXPECT_GE(stats.top_down_seconds, 0.0);
    EXPECT_GE(stats.bottom_up_seconds, 0.0);
    EXPECT_GE(stats.adjacency_seconds, 0.0);
  }
}

// Without a sink the builder records nothing and the build result is
// unchanged (the stats pointer must not alter construction).
TEST_F(CpiFigure7Test, BuildWithAndWithoutStatsSinkAgree) {
  CpiBuilder with(g_), without(g_);
  CpiBuildStats stats;
  Cpi a = with.Build(q_, tree_, CpiStrategy::kRefined, &stats);
  Cpi b = without.Build(q_, tree_, CpiStrategy::kRefined);
  ASSERT_EQ(a.NumQueryVertices(), b.NumQueryVertices());
  for (VertexId u = 0; u < q_.NumVertices(); ++u) {
    EXPECT_EQ(ToVec(a.Candidates(u)), ToVec(b.Candidates(u))) << "u " << u;
  }
  EXPECT_EQ(a.SizeInEntries(), b.SizeInEntries());
}

// Soundness (Lemmas 5.2/5.3): every true embedding must survive in the CPI —
// for each query vertex u, M(u) is in u.C, for every strategy.
class CpiSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CpiSoundnessTest, AllEmbeddingsSurvive) {
  const uint64_t seed = GetParam();
  SyntheticOptions data_options;
  data_options.num_vertices = 60;
  data_options.average_degree = 4.0;
  data_options.num_labels = 4;
  data_options.seed = seed;
  Graph g = MakeSynthetic(data_options);

  QueryGenOptions query_options;
  query_options.num_vertices = 6;
  query_options.sparse = (seed % 2 == 0);
  query_options.seed = seed * 7 + 1;
  Graph q = GenerateQuery(g, query_options);

  std::vector<Embedding> truth = BruteForceEmbeddings(q, g);

  for (CpiStrategy strategy :
       {CpiStrategy::kNaive, CpiStrategy::kTopDown, CpiStrategy::kRefined}) {
    for (VertexId root = 0; root < q.NumVertices(); ++root) {
      BfsTree tree = BuildBfsTree(q, root);
      Cpi cpi = BuildCpi(q, g, tree, strategy);
      for (const Embedding& m : truth) {
        for (VertexId u = 0; u < q.NumVertices(); ++u) {
          std::span<const VertexId> c = cpi.Candidates(u);
          EXPECT_TRUE(std::binary_search(c.begin(), c.end(), m[u]))
              << "seed " << seed << " root " << root << " u " << u;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpiSoundnessTest,
                         ::testing::Range<uint64_t>(0, 12));

// Layout equivalence: the flattened arena CPI must expose, through
// Candidates / AdjacentPositions / CandidateAt, exactly the nested
// representation the pre-arena implementation stored — per query vertex, a
// candidate list, and per parent candidate the ascending positions of the
// child candidates adjacent to it in the data graph. The reference is
// rebuilt here from first principles (Graph::HasEdge), independent of the
// builder's scan order.
TEST(CpiLayoutTest, FlattenedLayoutMatchesNestedReference) {
  SyntheticOptions options;
  options.num_vertices = 120;
  options.average_degree = 6.0;
  options.num_labels = 6;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    options.seed = seed + 1;
    Graph g = MakeSynthetic(options);
    QueryGenOptions query_options;
    query_options.num_vertices = 7;
    query_options.seed = seed * 13 + 5;
    Graph q = GenerateQuery(g, query_options);
    BfsTree tree = BuildBfsTree(q, 0);
    Cpi cpi = BuildCpi(q, g, tree, CpiStrategy::kRefined);

    // Reference nested representation.
    std::vector<std::vector<VertexId>> ref_cands(q.NumVertices());
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      ref_cands[u] = ToVec(cpi.Candidates(u));
      EXPECT_TRUE(std::is_sorted(ref_cands[u].begin(), ref_cands[u].end()));
      for (uint32_t i = 0; i < ref_cands[u].size(); ++i) {
        EXPECT_EQ(cpi.CandidateAt(u, i), ref_cands[u][i]);
      }
    }
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      if (u == tree.root) continue;
      const VertexId p = tree.parent[u];
      for (uint32_t pp = 0; pp < ref_cands[p].size(); ++pp) {
        std::vector<uint32_t> expected;
        for (uint32_t i = 0; i < ref_cands[u].size(); ++i) {
          if (g.HasEdge(ref_cands[p][pp], ref_cands[u][i])) {
            expected.push_back(i);
          }
        }
        std::span<const uint32_t> got = cpi.AdjacentPositions(u, pp);
        EXPECT_EQ(std::vector<uint32_t>(got.begin(), got.end()), expected)
            << "seed " << seed << " u " << u << " parent_pos " << pp;
      }
    }
  }
}

// Refinement can only shrink candidate sets (monotonicity).
TEST(CpiMonotonicityTest, RefinedIsSubsetOfTopDownIsSubsetOfNaive) {
  SyntheticOptions options;
  options.num_vertices = 80;
  options.average_degree = 5.0;
  options.num_labels = 5;
  options.seed = 99;
  Graph g = MakeSynthetic(options);
  QueryGenOptions query_options;
  query_options.num_vertices = 8;
  query_options.seed = 3;
  Graph q = GenerateQuery(g, query_options);
  BfsTree tree = BuildBfsTree(q, 0);

  Cpi naive = BuildCpi(q, g, tree, CpiStrategy::kNaive);
  Cpi td = BuildCpi(q, g, tree, CpiStrategy::kTopDown);
  Cpi refined = BuildCpi(q, g, tree, CpiStrategy::kRefined);
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    std::vector<VertexId> n = Sorted(naive.Candidates(u));
    std::vector<VertexId> t = Sorted(td.Candidates(u));
    std::vector<VertexId> r = Sorted(refined.Candidates(u));
    EXPECT_TRUE(std::includes(n.begin(), n.end(), t.begin(), t.end()));
    EXPECT_TRUE(std::includes(t.begin(), t.end(), r.begin(), r.end()));
  }
}

}  // namespace
}  // namespace cfl
