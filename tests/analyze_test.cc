// cfl_analyze fixture tests: every whole-program rule must fire on its
// checked-in violating mini-tree, the clean and allow trees must pass, and
// the mutation self-test proves end-to-end sensitivity — twenty
// violations (two per rule, concurrency rules included, plus a dyn-module
// quartet covering its DAG edge and 22/24 lock levels) seeded one at a
// time into a copy of the clean tree, all but at most one of which the
// analyzer must detect (the acceptance bar for the analyzer being more
// than a tautology on an already-clean tree).
//
// The analyzer binary path and the fixture directory come in as compile
// definitions (CFL_ANALYZE_BINARY, CFL_ANALYZE_FIXTURES) from
// tests/CMakeLists.

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

struct AnalyzeRun {
  int exit_code = -1;
  std::string output;
};

AnalyzeRun RunAnalyze(const std::string& args) {
  std::string cmd =
      std::string("\"") + CFL_ANALYZE_BINARY + "\" " + args + " 2>&1";
  AnalyzeRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buffer[4096];
  size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, n);
  }
  int status = pclose(pipe);
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  return run;
}

std::string FixtureRoot(const char* name) {
  return std::string(CFL_ANALYZE_FIXTURES) + "/" + name;
}

std::string RootArg(const std::string& root) {
  return "--root \"" + root + "\"";
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

// ---- per-rule fixtures --------------------------------------------------

TEST(CflAnalyzeTest, CleanTreeIsClean) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("clean")));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("clean"), std::string::npos) << run.output;
}

// False-positive regressions ride in the clean tree: a span member and a
// span-returning method of a CFL_IMMUTABLE_AFTER_BUILD class, a
// string_view accessor on a mutable class, a CFL_SPAN_INTO member naming a
// frozen owner, and CheckedU32-routed narrowings. None may fire.
TEST(CflAnalyzeTest, EscapeHatchesSuppressWithReason) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("allows")));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(CflAnalyzeTest, LayeringFiresOnBackEdgeAndCycle) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("layering")));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[layering]"), 2) << run.output;
  EXPECT_NE(run.output.find("back-edge"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("include cycle"), std::string::npos)
      << run.output;
}

TEST(CflAnalyzeTest, SpanEscapeFiresOnMemberMethodAndBogusOwner) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("span")));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[span-escape]"), 3) << run.output;
  EXPECT_NE(run.output.find("CFL_SPAN_INTO names 'Mutable'"),
            std::string::npos)
      << run.output;
}

TEST(CflAnalyzeTest, NarrowingFiresOnCastAndImplicitInit) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("narrowing")));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[narrowing]"), 2) << run.output;
}

TEST(CflAnalyzeTest, WorkerNoexceptFiresOnDirectBodyAndThrowingHelper) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("noexcept")));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[worker-noexcept]"), 2)
      << run.output;
}

TEST(CflAnalyzeTest, StatsGateFiresOnUngatedMutations) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("stats")));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[stats-gate]"), 2) << run.output;
}

TEST(CflAnalyzeTest, BadAllowFiresOnUnknownRule) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("badallow")));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // One unknown rule id (lint tag) + one reason-less analyze-tag allow.
  EXPECT_EQ(CountOccurrences(run.output, "[bad-allow]"), 2) << run.output;
  EXPECT_NE(run.output.find("missing justification"), std::string::npos)
      << run.output;
}

TEST(CflAnalyzeTest, LockOrderFiresOnCycleLevelInversionAndMissingMarker) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("lockorder")));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Missing marker on Gamma, the descending Alpha(20) -> Beta(10) edge,
  // the Alpha -> Beta -> Alpha cycle, and the transitive re-acquisition of
  // Alpha::mu_ the cycle implies.
  EXPECT_EQ(CountOccurrences(run.output, "[lock-order]"), 4) << run.output;
  EXPECT_NE(run.output.find("no CFL_LOCK_LEVEL"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("must strictly ascend"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("lock-order cycle: Alpha::mu_ -> Beta::mu_"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("recursive acquisition"), std::string::npos)
      << run.output;
}

TEST(CflAnalyzeTest, BlockingUnderLockFiresOnWaitSyscallAndSubmit) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("blocking")));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The un-allowed condvar wait, the poll(2) call, and TaskPool::Submit;
  // the allow-annotated wait in TakeAllowed must stay silent.
  EXPECT_EQ(CountOccurrences(run.output, "[blocking-under-lock]"), 3)
      << run.output;
  EXPECT_NE(run.output.find("CondVar::Wait parks the thread"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'poll' is a syscall-shaped blocking call"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("TaskPool::Submit"), std::string::npos)
      << run.output;
}

TEST(CflAnalyzeTest, AtomicIntentFiresOnAllFourShapes) {
  AnalyzeRun run = RunAnalyze(RootArg(FixtureRoot("atomic")));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Undeclared atomic, defaulted seq_cst, relaxed publish store, and an
  // over-strong counter RMW.
  EXPECT_EQ(CountOccurrences(run.output, "[atomic-intent]"), 4)
      << run.output;
  EXPECT_NE(run.output.find("declares no CFL_ATOMIC_INTENT"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("defaults to seq_cst"), std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("publication needs release stores and acquire loads"),
      std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("counters are relaxed-only"), std::string::npos)
      << run.output;
}

TEST(CflAnalyzeTest, JsonModeEmitsMachineReadableReport) {
  AnalyzeRun clean =
      RunAnalyze(RootArg(FixtureRoot("clean")) + " --json");
  EXPECT_EQ(clean.exit_code, 0) << clean.output;
  EXPECT_NE(clean.output.find("\"tool\":\"cfl_analyze\""),
            std::string::npos)
      << clean.output;
  EXPECT_NE(clean.output.find("\"errors\":0"), std::string::npos)
      << clean.output;

  AnalyzeRun bad =
      RunAnalyze(RootArg(FixtureRoot("stats")) + " --json");
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("\"rule\":\"stats-gate\""), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("\"line\":"), std::string::npos) << bad.output;
}

TEST(CflAnalyzeTest, UsageErrorsExitTwo) {
  AnalyzeRun run = RunAnalyze("--no-such-flag");
  EXPECT_EQ(run.exit_code, 2) << run.output;
  AnalyzeRun missing = RunAnalyze("--root /no/such/dir/cfl");
  EXPECT_EQ(missing.exit_code, 2) << missing.output;
}

// ---- mutation self-test -------------------------------------------------

struct Mutation {
  const char* file;           // relative to the tree root
  const char* from;           // exact text in the clean tree
  const char* to;             // the seeded violation
  const char* expected_rule;  // "[rule-id]" that must appear
};

const Mutation kMutations[] = {
    // layering
    {"src/graph/graph.h", "#include \"check/check.h\"",
     "#include \"match/match.h\"", "[layering]"},
    {"src/cpi/util.h", "#include \"check/check.h\"",
     "#include \"cpi/cpi.h\"", "[layering]"},
    // span-escape
    {"src/match/match.h", "std::vector<uint32_t> buf_;",
     "std::span<uint32_t> buf_;", "[span-escape]"},
    {"src/match/match.h", "CFL_SPAN_INTO(Cpi)", "CFL_SPAN_INTO(Scratch)",
     "[span-escape]"},
    // narrowing
    {"src/cpi/util.h", "const uint32_t n = CheckedU32(v.size());",
     "const uint32_t n = static_cast<uint32_t>(v.size());", "[narrowing]"},
    {"src/cpi/util.h", "uint32_t m = CheckedU32(w.size());",
     "uint32_t m = w.size();", "[narrowing]"},
    // worker-noexcept
    {"src/parallel/pool.cc",
     "uint64_t Accumulate(uint64_t a, uint64_t b) noexcept {",
     "uint64_t Accumulate(uint64_t a, uint64_t b) {", "[worker-noexcept]"},
    {"src/parallel/pool.cc", "InvokeBody(*body_, worker_id);",
     "(*body_)(worker_id);", "[worker-noexcept]"},
    // stats-gate
    {"src/match/match.cc", "CFL_STATS_ONLY(stats_.probes += 1;)",
     "stats_.probes += 1;", "[stats-gate]"},
    {"src/match/match.cc", "CFL_STATS_ONLY(stats_.generated.push_back(v);)",
     "stats_.generated.push_back(v);", "[stats-gate]"},
    // lock-order
    {"src/serve/queue.h", "Mutex mu_ CFL_LOCK_LEVEL(10);", "Mutex mu_;",
     "[lock-order]"},
    {"src/serve/queue.h", "Mutex reg_mu_ CFL_LOCK_LEVEL(20);",
     "Mutex reg_mu_ CFL_LOCK_LEVEL(5);", "[lock-order]"},
    // blocking-under-lock
    {"src/serve/queue.cc",
     "// cfl-analyze: allow(blocking-under-lock) condvar wait releases mu_",
     "// condvar wait releases mu_", "[blocking-under-lock]"},
    {"src/serve/queue.cc", "flushed_ = true;", "poll(nullptr, 0, 1);",
     "[blocking-under-lock]"},
    // atomic-intent
    {"src/serve/queue.h",
     "std::atomic<uint64_t> enqueued_ CFL_ATOMIC_INTENT(counter){0};",
     "std::atomic<uint64_t> enqueued_{0};", "[atomic-intent]"},
    {"src/serve/queue.h",
     "config_.store(config, std::memory_order_release);",
     "config_.store(config, std::memory_order_relaxed);",
     "[atomic-intent]"},
    // dyn: one seed per concurrency rule plus the module's DAG edge
    {"src/dyn/epoch.h", "#include \"parallel/pool.h\"",
     "#include \"match/match.h\"", "[layering]"},
    {"src/dyn/epoch.h", "Mutex drain_mu_ CFL_LOCK_LEVEL(24);",
     "Mutex drain_mu_ CFL_LOCK_LEVEL(21);", "[lock-order]"},
    {"src/dyn/epoch.cc",
     "// cfl-analyze: allow(blocking-under-lock) condvar wait releases "
     "drain_mu_",
     "// condvar wait releases drain_mu_", "[blocking-under-lock]"},
    {"src/dyn/epoch.h", "current_.load(std::memory_order_acquire);",
     "current_.load(std::memory_order_relaxed);", "[atomic-intent]"},
};

bool ApplyMutation(const fs::path& root, const Mutation& m) {
  fs::path target = root / m.file;
  std::ifstream in(target);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  size_t at = text.find(m.from);
  if (at == std::string::npos) return false;  // fixture drifted
  text.replace(at, std::string(m.from).size(), m.to);
  std::ofstream out(target, std::ios::trunc);
  if (!out) return false;
  out << text;
  return true;
}

TEST(CflAnalyzeTest, MutationSelfTestDetectsAllButOne) {
  const fs::path clean = FixtureRoot("clean");
  const fs::path base = fs::temp_directory_path() / "cfl_analyze_mutants";
  std::error_code ec;
  fs::remove_all(base, ec);
  fs::create_directories(base);

  int detected = 0;
  std::string misses;
  int idx = 0;
  for (const Mutation& m : kMutations) {
    fs::path root = base / ("m" + std::to_string(idx++));
    fs::copy(clean, root,
             fs::copy_options::recursive |
                 fs::copy_options::overwrite_existing);
    ASSERT_TRUE(ApplyMutation(root, m))
        << "mutation " << idx << ": '" << m.from << "' not found in "
        << m.file << " — the clean fixture drifted";
    AnalyzeRun run = RunAnalyze(RootArg(root.string()));
    bool hit = run.exit_code == 1 &&
               run.output.find(m.expected_rule) != std::string::npos;
    if (hit) {
      ++detected;
    } else {
      misses += std::string("\n  mutation ") + std::to_string(idx) + " (" +
                m.file + ": " + m.from + " -> " + m.to + ") expected " +
                m.expected_rule + ", got exit " +
                std::to_string(run.exit_code) + ":\n" + run.output;
    }
  }
  fs::remove_all(base, ec);
  const int total = static_cast<int>(std::size(kMutations));
  EXPECT_GE(detected, total - 1)
      << "only " << detected << "/" << total
      << " seeded violations detected:" << misses;
}

}  // namespace
