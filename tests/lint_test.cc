// cfl_lint fixture tests: each checked-in bad-example under
// tests/lint_fixtures/ must make exactly its rule fire (with a nonzero
// exit), and the clean fixtures must pass. This is the linter's own
// regression suite — the `cfl_lint_tree` ctest proves the real tree is
// clean, these prove the rules still *catch* anything.
//
// The linter binary path and the fixture directory come in as compile
// definitions (CFL_LINT_BINARY, CFL_LINT_FIXTURES) from tests/CMakeLists.

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& args) {
  std::string cmd =
      std::string("\"") + CFL_LINT_BINARY + "\" " + args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buffer[4096];
  size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, n);
  }
  int status = pclose(pipe);
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  return run;
}

std::string Fixture(const char* name) {
  return std::string("\"") + CFL_LINT_FIXTURES + "/" + name + "\"";
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(CflLintTest, RawAssertFires) {
  LintRun run = RunLint(Fixture("bad_assert.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[raw-assert]"), 1) << run.output;
}

TEST(CflLintTest, RawMutexFiresOnMemberAndLockGuard) {
  LintRun run = RunLint(Fixture("bad_mutex.h"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[raw-mutex]"), 2) << run.output;
}

TEST(CflLintTest, UnjustifiedMutableFires) {
  LintRun run = RunLint(Fixture("bad_mutable.h"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[mutable-member]"), 1)
      << run.output;
}

TEST(CflLintTest, BogusAllowCommentsFire) {
  LintRun run = RunLint(Fixture("bad_allow.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Two lint-tag problems plus one bare analyze-tag allow: both directive
  // tags feed one parser, so a reason-less analyzer suppression fires here
  // without waiting for a cfl_analyze run.
  EXPECT_EQ(CountOccurrences(run.output, "[bad-allow]"), 3) << run.output;
  EXPECT_NE(run.output.find("unknown rule id 'no-such-rule'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("missing justification after allow(raw-assert)"),
            std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("missing justification after allow(lock-order)"),
      std::string::npos)
      << run.output;
}

TEST(CflLintTest, ImmutableClassFiresOnMutatorAndMutable) {
  LintRun run = RunLint(Fixture("bad_immutable.h"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[immutable-class]"), 2)
      << run.output;
  // The mutator is named; constructors and operator= must NOT be flagged.
  EXPECT_NE(run.output.find("'Resize'"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("operator"), std::string::npos) << run.output;
}

TEST(CflLintTest, RawClockFiresOnTypeAndNowCall) {
  LintRun run = RunLint(Fixture("bad_clock.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Both the time_point type use and the ::now() call mention steady_clock.
  EXPECT_EQ(CountOccurrences(run.output, "[raw-clock]"), 2) << run.output;
}

TEST(CflLintTest, RawSimdFiresOnIncludeAndIntrinsics) {
  LintRun run = RunLint(Fixture("bad_simd.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // One for <immintrin.h>, one per intrinsic-bearing line.
  EXPECT_EQ(CountOccurrences(run.output, "[raw-simd]"), 3) << run.output;
}

TEST(CflLintTest, RawSimdAllowedInsideKernelsTree) {
  LintRun run = RunLint(Fixture("simd_tree/src/kernels/ok_simd.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.find("error:"), std::string::npos) << run.output;
}

TEST(CflLintTest, WellFormedAllowSuppresses) {
  LintRun run = RunLint(Fixture("good_allow.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.find("error:"), std::string::npos) << run.output;
}

TEST(CflLintTest, CleanFixturePasses) {
  LintRun run = RunLint(Fixture("clean.h"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.find("error:"), std::string::npos) << run.output;
}

TEST(CflLintTest, AllBadFixturesTogetherReportEveryRule) {
  LintRun run = RunLint(Fixture("bad_assert.cc") + " " +
                        Fixture("bad_mutex.h") + " " +
                        Fixture("bad_mutable.h") + " " +
                        Fixture("bad_allow.cc") + " " +
                        Fixture("bad_immutable.h") + " " +
                        Fixture("bad_clock.cc") + " " +
                        Fixture("bad_simd.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  for (const char* rule :
       {"[raw-assert]", "[raw-mutex]", "[mutable-member]", "[bad-allow]",
        "[immutable-class]", "[raw-clock]", "[raw-simd]"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos)
        << "missing " << rule << " in:\n"
        << run.output;
  }
}

TEST(CflLintTest, UnknownFlagIsAUsageError) {
  LintRun run = RunLint("--definitely-not-a-flag");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
