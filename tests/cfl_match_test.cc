// End-to-end tests of CflMatcher: paper examples, variant agreement,
// enumeration mode, limits, and leaf-match counting against brute force.

#include "match/cfl_match.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::BruteForceCount;
using testing::Figure3Data;
using testing::Figure3Query;
using testing::Figure7Data;
using testing::Figure7Query;

TEST(CflMatchTest, Figure3HasThreeEmbeddings) {
  Graph q = Figure3Query();
  Graph g = Figure3Data();
  ASSERT_EQ(BruteForceCount(q, g), 3u);  // the paper lists exactly three

  CflMatcher matcher(g);
  MatchResult r = matcher.Match(q);
  EXPECT_EQ(r.embeddings, 3u);
  EXPECT_FALSE(r.timed_out);
  EXPECT_FALSE(r.reached_limit);
}

TEST(CflMatchTest, Figure3EnumerationMatchesPaperList) {
  Graph q = Figure3Query();
  Graph g = Figure3Data();
  CflMatcher matcher(g);
  MatchOptions options;
  std::set<Embedding> seen;
  options.on_embedding = [&](const Embedding& m) {
    seen.insert(m);
    return true;
  };
  MatchResult r = matcher.Match(q, options);
  EXPECT_EQ(r.embeddings, 3u);
  std::set<Embedding> expected = {{0, 2, 1, 5, 4}, {0, 2, 1, 5, 6},
                                  {0, 2, 3, 5, 6}};
  EXPECT_EQ(seen, expected);
}

TEST(CflMatchTest, Figure7HasTwoEmbeddings) {
  Graph q = Figure7Query();
  Graph g = Figure7Data();
  ASSERT_EQ(BruteForceCount(q, g), 2u);
  CflMatcher matcher(g);
  EXPECT_EQ(matcher.Match(q).embeddings, 2u);
}

TEST(CflMatchTest, EmbeddingsAreValid) {
  Graph q = Figure3Query();
  Graph g = Figure3Data();
  CflMatcher matcher(g);
  MatchOptions options;
  options.on_embedding = [&](const Embedding& m) {
    // Injective, label-preserving, edge-preserving.
    std::set<VertexId> distinct(m.begin(), m.end());
    EXPECT_EQ(distinct.size(), m.size());
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      EXPECT_EQ(q.label(u), g.label(m[u]));
      for (VertexId w : q.Neighbors(u)) {
        EXPECT_TRUE(g.HasEdge(m[u], m[w]));
      }
    }
    return true;
  };
  matcher.Match(q, options);
}

TEST(CflMatchTest, NoEmbeddingsForImpossibleLabel) {
  Graph g = Figure3Data();
  Graph q = MakeGraph({0, 9}, {{0, 1}});  // label 9 absent from g
  CflMatcher matcher(g);
  EXPECT_EQ(matcher.Match(q).embeddings, 0u);
}

TEST(CflMatchTest, MaxEmbeddingsStopsEarly) {
  // Star query into a large star: many embeddings, cap at 5.
  Graph q = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  GraphBuilder b(11);
  b.SetLabel(0, 0);
  for (VertexId v = 1; v <= 10; ++v) {
    b.SetLabel(v, 1);
    b.AddEdge(0, v);
  }
  Graph g = std::move(b).Build();
  ASSERT_EQ(BruteForceCount(q, g), 90u);

  CflMatcher matcher(g);
  MatchOptions options;
  options.limits.max_embeddings = 5;
  MatchResult r = matcher.Match(q, options);
  EXPECT_TRUE(r.reached_limit);
  EXPECT_GE(r.embeddings, 5u);

  // Without a cap the count is exact.
  EXPECT_EQ(matcher.Match(q).embeddings, 90u);
}

TEST(CflMatchTest, TreeQueriesWork) {
  Graph g = Figure3Data();
  // Path query C-D-E (labels 2,3,4).
  Graph q = MakeGraph({2, 3, 4}, {{0, 1}, {1, 2}});
  CflMatcher matcher(g);
  EXPECT_EQ(matcher.Match(q).embeddings, BruteForceCount(q, g));
}

TEST(CflMatchTest, SingleEdgeQuery) {
  Graph g = Figure3Data();
  Graph q = MakeGraph({0, 1}, {{0, 1}});  // A-B
  CflMatcher matcher(g);
  EXPECT_EQ(matcher.Match(q).embeddings, BruteForceCount(q, g));
}

TEST(CflMatchTest, VariantsAgreeOnPaperFixtures) {
  Graph g = Figure3Data();
  Graph q = Figure3Query();
  CflMatcher matcher(g);
  for (DecompositionMode mode :
       {DecompositionMode::kCfl, DecompositionMode::kCoreForest,
        DecompositionMode::kNone}) {
    for (CpiStrategy strategy :
         {CpiStrategy::kNaive, CpiStrategy::kTopDown, CpiStrategy::kRefined}) {
      MatchOptions options;
      options.decomposition = mode;
      options.cpi_strategy = strategy;
      EXPECT_EQ(matcher.Match(q, options).embeddings, 3u)
          << "mode " << static_cast<int>(mode) << " strategy "
          << static_cast<int>(strategy);
    }
  }
}

TEST(CflMatchTest, TimeoutReported) {
  // A pathologically symmetric instance: clique query into a larger clique
  // of one label explodes combinatorially; a tiny deadline must trip.
  const uint32_t kQ = 8, kG = 64;
  GraphBuilder qb(kQ);
  for (VertexId a = 0; a < kQ; ++a) {
    for (VertexId b = a + 1; b < kQ; ++b) qb.AddEdge(a, b);
  }
  Graph q = std::move(qb).Build();
  GraphBuilder gb(kG);
  for (VertexId a = 0; a < kG; ++a) {
    for (VertexId b = a + 1; b < kG; ++b) gb.AddEdge(a, b);
  }
  Graph g = std::move(gb).Build();

  CflMatcher matcher(g);
  MatchOptions options;
  options.limits.time_limit_seconds = 0.05;
  MatchResult r = matcher.Match(q, options);
  EXPECT_TRUE(r.timed_out);
}

TEST(CflMatchTest, ResultTimingsArePopulated) {
  Graph g = Figure3Data();
  Graph q = Figure3Query();
  CflMatcher matcher(g);
  MatchResult r = matcher.Match(q);
  EXPECT_GE(r.build_seconds, 0.0);
  EXPECT_GE(r.order_seconds, 0.0);
  EXPECT_GE(r.enumerate_seconds, 0.0);
  EXPECT_GE(r.total_seconds,
            r.build_seconds + r.order_seconds + r.enumerate_seconds - 1e-6);
  EXPECT_GT(r.index_entries, 0u);
}

// Leaf-heavy queries exercise the label-class/NEC counting path; sweep
// random instances against brute force.
class LeafCountingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeafCountingTest, CountMatchesBruteForce) {
  const uint64_t seed = GetParam();
  SyntheticOptions options;
  options.num_vertices = 50;
  options.average_degree = 5.0;
  options.num_labels = 3;  // few labels => NEC groups and class conflicts
  options.seed = seed;
  Graph g = MakeSynthetic(options);

  QueryGenOptions query_options;
  query_options.num_vertices = 7;
  query_options.sparse = true;  // sparse => many leaves
  query_options.seed = seed + 1000;
  Graph q = GenerateQuery(g, query_options);

  CflMatcher matcher(g);
  EXPECT_EQ(matcher.Match(q).embeddings, BruteForceCount(q, g))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LeafCountingTest,
                         ::testing::Range<uint64_t>(0, 25));

TEST(CflMatchTest, EstimateEmbeddings) {
  Graph g = Figure3Data();
  CflMatcher matcher(g);
  // Tree query with pairwise-distinct labels: injectivity is automatic, so
  // the tree-cardinality estimate is exact.
  Graph path = MakeGraph({2, 3, 4}, {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(matcher.EstimateEmbeddings(path),
                   static_cast<double>(BruteForceCount(path, g)));
  // Impossible label: estimate 0.
  Graph impossible = MakeGraph({9, 9}, {{0, 1}});
  EXPECT_DOUBLE_EQ(matcher.EstimateEmbeddings(impossible), 0.0);
  // General queries: the estimate upper-bounds the true count (non-tree
  // edges and injectivity only remove embeddings).
  Graph q = Figure3Query();
  EXPECT_GE(matcher.EstimateEmbeddings(q),
            static_cast<double>(BruteForceCount(q, g)));
}

// Enumeration mode must produce exactly the same embeddings as brute force.
class EnumerationAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnumerationAgreementTest, SetsMatch) {
  const uint64_t seed = GetParam();
  SyntheticOptions options;
  options.num_vertices = 40;
  options.average_degree = 4.0;
  options.num_labels = 3;
  options.seed = seed * 13 + 5;
  Graph g = MakeSynthetic(options);

  QueryGenOptions query_options;
  query_options.num_vertices = 6;
  query_options.sparse = (seed % 2 == 1);
  query_options.seed = seed;
  Graph q = GenerateQuery(g, query_options);

  std::vector<Embedding> truth = testing::BruteForceEmbeddings(q, g);
  std::set<Embedding> expected(truth.begin(), truth.end());

  CflMatcher matcher(g);
  MatchOptions options2;
  std::set<Embedding> seen;
  options2.on_embedding = [&](const Embedding& m) {
    EXPECT_TRUE(seen.insert(m).second) << "duplicate embedding";
    return true;
  };
  MatchResult r = matcher.Match(q, options2);
  EXPECT_EQ(seen, expected) << "seed " << seed;
  EXPECT_EQ(r.embeddings, expected.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, EnumerationAgreementTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace cfl
