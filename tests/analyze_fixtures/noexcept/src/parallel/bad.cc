// Fixture VIOLATIONS: both worker-noexcept shapes — the pool invoking the
// run body directly (outside InvokeBody), and a Run lambda calling a
// src/parallel function that is neither noexcept nor CFL_POOL_SAFE.
#include <cstdint>
#include <functional>

namespace fix {

class ThreadPool {
 public:
  void Run(const std::function<void(uint32_t)>& body);

 private:
  static void InvokeBody(const std::function<void(uint32_t)>& body,
                         uint32_t worker_id) noexcept;

  const std::function<void(uint32_t)>* body_ = nullptr;
};

void ThreadPool::InvokeBody(const std::function<void(uint32_t)>& body,
                            uint32_t worker_id) noexcept {
  body(worker_id);
}

void ThreadPool::Run(const std::function<void(uint32_t)>& body) {
  body(0);
}

uint64_t Helper(uint64_t v) { return v + 1; }

void Drive(ThreadPool& pool) {
  pool.Run([&](uint32_t w) { Helper(w); });
}

}  // namespace fix
