// Fixture: the field lists the stats-gate rule indexes.
#ifndef FIX_STATS_OBS_STATS_H_
#define FIX_STATS_OBS_STATS_H_

#include <cstdint>

namespace fix {

struct EnumStats {
  uint64_t probes = 0;
};

struct CpiBuildStats {
  uint64_t pruned = 0;
};

}  // namespace fix

#endif  // FIX_STATS_OBS_STATS_H_
