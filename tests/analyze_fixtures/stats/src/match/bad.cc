// Fixture VIOLATIONS: ungated stats-counter mutations (increment and
// assignment) — both would survive -DCFL_STATS=OFF.
#include <cstdint>

#include "obs/stats.h"

namespace fix {

void Record(EnumStats& stats, CpiBuildStats& build) {
  stats.probes += 1;
  build.pruned = 0;
}

}  // namespace fix
