// Fixture: the escape hatch — a documented allow suppresses narrowing.
#include <cstdint>
#include <vector>

namespace fix {

uint32_t Bounded(const std::vector<int>& v) {
  // cfl-lint: allow(narrowing) fixture: size bounded by construction
  return static_cast<uint32_t>(v.size());
}

}  // namespace fix
