// Fixture: the escape hatch — a documented allow suppresses span-escape.
#ifndef FIX_ALLOWS_OK_H_
#define FIX_ALLOWS_OK_H_

#include <span>

namespace fix {

class Holder {
 private:
  // cfl-lint: allow(span-escape) fixture: view never outlives the frame
  std::span<int> scratch_;
};

}  // namespace fix

#endif  // FIX_ALLOWS_OK_H_
