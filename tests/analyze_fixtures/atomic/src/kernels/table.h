// Fixture: atomic-intent violations. One undeclared atomic, one defaulted
// (seq_cst) operation, one relaxed store on a publish-intent pointer (the
// classic broken-publication bug: readers can observe the pointer before
// the pointee's fields), and one over-strong RMW on a counter. Expected:
// four [atomic-intent].
#ifndef FIX_KERNELS_TABLE_H_
#define FIX_KERNELS_TABLE_H_

#include <atomic>
#include <cstdint>

namespace fix {

struct Table {
  uint64_t rows = 0;
};

class TablePublisher {
 public:
  const Table* Active() {
    return active_.load(std::memory_order_acquire);
  }
  void Publish(const Table* table) {
    active_.store(table, std::memory_order_relaxed);
  }
  void Bump() {
    swaps_.fetch_add(1, std::memory_order_acq_rel);
  }
  uint64_t Generation() { return generation_.load(); }
  void Retire() { retired_.store(true, std::memory_order_relaxed); }

 private:
  std::atomic<const Table*> active_ CFL_ATOMIC_INTENT(publish){nullptr};
  std::atomic<uint64_t> swaps_ CFL_ATOMIC_INTENT(counter){0};
  std::atomic<uint64_t> generation_ CFL_ATOMIC_INTENT(counter){0};
  std::atomic<bool> retired_{false};
};

}  // namespace fix

#endif  // FIX_KERNELS_TABLE_H_
