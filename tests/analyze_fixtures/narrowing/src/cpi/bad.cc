// Fixture VIOLATIONS: both narrowing shapes — an unchecked
// static_cast<uint32_t> of a size expression and an implicit 32-bit
// initialization from .size().
#include <cstdint>
#include <vector>

namespace fix {

uint32_t CastNarrow(const std::vector<int>& v) {
  return static_cast<uint32_t>(v.size());
}

uint32_t ImplicitNarrow(const std::vector<int>& v) {
  uint32_t n = v.size();
  return n;
}

}  // namespace fix
