// Fixture: blocking-under-lock violations. Three blocking shapes while a
// MutexLock is live — a condvar wait with no allow-directive, a bare
// syscall (poll), and a TaskPool::Submit — plus one *allowed* condvar wait
// that must stay silent. Expected: three [blocking-under-lock].
#ifndef FIX_SERVE_SESSION_H_
#define FIX_SERVE_SESSION_H_

#include <cstdint>

namespace fix {

class TaskPool {
 public:
  void Submit(uint64_t task);

 private:
  Mutex pool_mu_ CFL_LOCK_LEVEL(30);
  uint64_t queued_ = 0;
};

inline void TaskPool::Submit(uint64_t task) {
  MutexLock lock(pool_mu_);
  queued_ += task;
}

class Session {
 public:
  uint64_t Take();
  uint64_t TakeAllowed();
  void PollUnderLock(int fd);
  void Enqueue(uint64_t task);

 private:
  Mutex mu_ CFL_LOCK_LEVEL(10);
  CondVar ready_;
  TaskPool pool_;
  uint64_t depth_ = 0;
};

inline uint64_t Session::Take() {
  MutexLock lock(mu_);
  while (depth_ == 0) ready_.Wait(mu_);
  depth_ -= 1;
  return depth_;
}

inline uint64_t Session::TakeAllowed() {
  MutexLock lock(mu_);
  // cfl-analyze: allow(blocking-under-lock) condvar wait releases mu_
  while (depth_ == 0) ready_.Wait(mu_);
  depth_ -= 1;
  return depth_;
}

inline void Session::PollUnderLock(int fd) {
  MutexLock lock(mu_);
  poll(nullptr, 0, fd);
  depth_ += 1;
}

inline void Session::Enqueue(uint64_t task) {
  MutexLock lock(mu_);
  pool_.Submit(task);
}

}  // namespace fix

#endif  // FIX_SERVE_SESSION_H_
