// Fixture VIOLATIONS: all three span-escape shapes — a bare view member, a
// view-returning method of a mutable class, and a CFL_SPAN_INTO annotation
// whose target is not frozen anywhere in the program.
#ifndef FIX_SPAN_BAD_H_
#define FIX_SPAN_BAD_H_

#include <span>

#define CFL_SPAN_INTO(owner)

namespace fix {

class Mutable {
 public:
  void Clear();
};

class Holder {
 public:
  std::span<const int> View() const { return scratch_; }

 private:
  std::span<const int> scratch_;
  CFL_SPAN_INTO(Mutable) std::span<int> annotated_;
};

}  // namespace fix

#endif  // FIX_SPAN_BAD_H_
