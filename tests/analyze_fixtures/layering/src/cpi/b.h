// Fixture VIOLATION (with a.h): the other half of the include cycle.
#ifndef FIX_LAYERING_CPI_B_H_
#define FIX_LAYERING_CPI_B_H_

#include "cpi/a.h"

namespace fix {
class B {};
}  // namespace fix

#endif  // FIX_LAYERING_CPI_B_H_
