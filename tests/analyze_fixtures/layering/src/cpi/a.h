// Fixture VIOLATION (with b.h): a within-module include cycle, which the
// module DAG cannot see — only the file-level cycle check catches it.
#ifndef FIX_LAYERING_CPI_A_H_
#define FIX_LAYERING_CPI_A_H_

#include "cpi/b.h"

namespace fix {
class A {};
}  // namespace fix

#endif  // FIX_LAYERING_CPI_A_H_
