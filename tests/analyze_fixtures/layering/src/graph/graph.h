// Fixture VIOLATION: graph reaches up into match — a layering back-edge.
#ifndef FIX_LAYERING_GRAPH_H_
#define FIX_LAYERING_GRAPH_H_

#include "match/match.h"

namespace fix {
class Graph {};
}  // namespace fix

#endif  // FIX_LAYERING_GRAPH_H_
