// Fixture: top-layer module (no includes).
#ifndef FIX_LAYERING_MATCH_H_
#define FIX_LAYERING_MATCH_H_

namespace fix {
class Matcher {};
}  // namespace fix

#endif  // FIX_LAYERING_MATCH_H_
