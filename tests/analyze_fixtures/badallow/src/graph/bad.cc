// Fixture VIOLATION: an allow naming a rule neither tool knows, and an
// analyzer-tag allow with no justification after the rule.
namespace fix {

// cfl-lint: allow(no-such-rule) this rule id does not exist
int kValue = 1;

// cfl-analyze: allow(blocking-under-lock)
int kOther = 2;

}  // namespace fix
