// Fixture VIOLATION: an allow naming a rule neither tool knows.
namespace fix {

// cfl-lint: allow(no-such-rule) this rule id does not exist
int kValue = 1;

}  // namespace fix
