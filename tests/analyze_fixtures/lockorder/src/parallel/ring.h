// Fixture: lock-order violations. Alpha (level 20) locks itself and then
// calls into Beta (level 10) — a descending edge — and Beta's locked path
// calls back into Alpha's locked path, closing a cycle. Gamma's mutex has
// no CFL_LOCK_LEVEL at all. Expected: one level violation, one cycle, one
// missing marker — three [lock-order] diagnostics.
#ifndef FIX_PARALLEL_RING_H_
#define FIX_PARALLEL_RING_H_

#include <cstdint>

namespace fix {

class Beta;

class Alpha {
 public:
  void Poke(Beta& b);
  void Touch();

 private:
  Mutex mu_ CFL_LOCK_LEVEL(20);
  uint64_t hits_ = 0;
};

class Beta {
 public:
  void Poke(Alpha& a);

 private:
  Mutex mu_ CFL_LOCK_LEVEL(10);
  uint64_t hits_ = 0;
};

class Gamma {
 public:
  void Touch();

 private:
  Mutex mu_;
  uint64_t hits_ = 0;
};

inline void Alpha::Touch() {
  MutexLock lock(mu_);
  hits_ += 1;
}

inline void Alpha::Poke(Beta& b) {
  MutexLock lock(mu_);
  hits_ += 1;
  b.Poke(*this);
}

inline void Beta::Poke(Alpha& a) {
  MutexLock lock(mu_);
  hits_ += 1;
  a.Touch();
}

inline void Gamma::Touch() {
  MutexLock lock(mu_);
  hits_ += 1;
}

}  // namespace fix

#endif  // FIX_PARALLEL_RING_H_
