// Fixture: concurrency surface mirrored from src/serve — a work queue plus
// a registry, exercising every shape the lock-order / blocking-under-lock /
// atomic-intent passes must accept on a clean tree: ascending nested
// acquisition (10 -> 20, via a call under lock), an allowed condvar wait,
// and one atomic of each declared intent.
#ifndef FIX_SERVE_QUEUE_H_
#define FIX_SERVE_QUEUE_H_

#include <atomic>
#include <cstdint>

#include "check/check.h"

namespace fix {

struct QueueConfig {
  uint32_t capacity = 0;
};

class Registry {
 public:
  void Record(uint64_t item);
  uint64_t Count();

 private:
  Mutex reg_mu_ CFL_LOCK_LEVEL(20);
  uint64_t count_ = 0;
};

class WorkQueue {
 public:
  void Push(uint64_t item);
  uint64_t Pop();
  void Close();
  void Flush();

  const QueueConfig* Config() {
    return config_.load(std::memory_order_acquire);
  }
  void PublishConfig(const QueueConfig* config) {
    config_.store(config, std::memory_order_release);
  }
  uint64_t Enqueued() {
    return enqueued_.load(std::memory_order_relaxed);
  }
  bool Open() { return open_.load(std::memory_order_relaxed); }

 private:
  Mutex mu_ CFL_LOCK_LEVEL(10);
  CondVar ready_;
  Registry registry_;
  uint64_t depth_ = 0;
  bool flushed_ = false;

  std::atomic<uint64_t> enqueued_ CFL_ATOMIC_INTENT(counter){0};
  std::atomic<bool> open_ CFL_ATOMIC_INTENT(flag){true};
  std::atomic<const QueueConfig*> config_ CFL_ATOMIC_INTENT(publish){
      nullptr};
};

}  // namespace fix

#endif  // FIX_SERVE_QUEUE_H_
