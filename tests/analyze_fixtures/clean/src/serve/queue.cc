// Fixture: implementation of the queue.h concurrency surface. Everything
// here is the clean shape of each rule — the mutation self-test seeds its
// violations into exactly these lines.
#include "serve/queue.h"

namespace fix {

void Registry::Record(uint64_t item) {
  MutexLock lock(reg_mu_);
  count_ += item;
}

uint64_t Registry::Count() {
  MutexLock lock(reg_mu_);
  return count_;
}

void WorkQueue::Push(uint64_t item) {
  MutexLock lock(mu_);
  depth_ += 1;
  // Nested acquisition through a call: mu_ (10) -> reg_mu_ (20) ascends.
  registry_.Record(item);
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  ready_.NotifyOne();
}

uint64_t WorkQueue::Pop() {
  MutexLock lock(mu_);
  // cfl-analyze: allow(blocking-under-lock) condvar wait releases mu_
  while (depth_ == 0) ready_.Wait(mu_);
  depth_ -= 1;
  return depth_;
}

void WorkQueue::Close() {
  open_.store(false, std::memory_order_relaxed);
  ready_.NotifyAll();
}

void WorkQueue::Flush() {
  MutexLock lock(mu_);
  flushed_ = true;
}

}  // namespace fix
