// Fixture: dependency-free base module. The analyzer only lexes fixture
// trees (they are never compiled), so the macros need no real expansion.
#ifndef FIX_CHECK_CHECK_H_
#define FIX_CHECK_CHECK_H_

#define CFL_IMMUTABLE_AFTER_BUILD(cls)
#define CFL_SPAN_INTO(owner)
#define CFL_POOL_SAFE
#define CFL_STATS_ONLY(...)
#define CFL_LOCK_LEVEL(n)
#define CFL_ATOMIC_INTENT(intent)

#endif  // FIX_CHECK_CHECK_H_
