// Fixture: the epoch-versioning surface mirrored from src/dyn — a pending
// delta guarded at level 22, a drain tracker nested at level 24, a publish
// atomic for the current snapshot and a counter for folds. Exercises the
// dyn module's edges in the layering DAG (graph, parallel) and the 22 -> 24
// nested acquisition the lock-order pass must accept.
#ifndef FIX_DYN_EPOCH_H_
#define FIX_DYN_EPOCH_H_

#include <atomic>
#include <cstdint>

#include "check/check.h"
#include "graph/graph.h"
#include "parallel/pool.h"

namespace fix {

class EpochRing {
 public:
  void Commit(uint64_t touched);
  void Pin();
  void Unpin();
  void AwaitDrained();

  const Graph* Current() {
    return current_.load(std::memory_order_acquire);
  }
  uint64_t Folds() { return folds_.load(std::memory_order_relaxed); }

 private:
  void NoteRetired(uint64_t epoch);

  Mutex mu_ CFL_LOCK_LEVEL(22);
  Mutex drain_mu_ CFL_LOCK_LEVEL(24);
  CondVar drained_;
  uint64_t epoch_ = 0;
  uint64_t pins_ = 0;

  std::atomic<const Graph*> current_ CFL_ATOMIC_INTENT(publish){nullptr};
  std::atomic<uint64_t> folds_ CFL_ATOMIC_INTENT(counter){0};
};

}  // namespace fix

#endif  // FIX_DYN_EPOCH_H_
