// Fixture: implementation of the epoch.h concurrency surface. The commit
// path acquires mu_ (22) and, through NoteRetired, drain_mu_ (24) — the
// ascending nested pair the dyn module adds to the hierarchy. The mutation
// self-test seeds its dyn violations into exactly these lines.
#include "dyn/epoch.h"

namespace fix {

void EpochRing::Commit(uint64_t touched) {
  MutexLock lock(mu_);
  epoch_ += 1;
  folds_.fetch_add(1, std::memory_order_relaxed);
  // Nested acquisition through a call: mu_ (22) -> drain_mu_ (24) ascends.
  NoteRetired(epoch_ - touched);
}

void EpochRing::NoteRetired(uint64_t epoch) {
  MutexLock lock(drain_mu_);
  pins_ -= epoch == 0 ? 0 : 1;
  drained_.NotifyAll();
}

void EpochRing::Pin() {
  MutexLock lock(drain_mu_);
  pins_ += 1;
}

void EpochRing::Unpin() {
  MutexLock lock(drain_mu_);
  pins_ -= 1;
  drained_.NotifyAll();
}

void EpochRing::AwaitDrained() {
  MutexLock lock(drain_mu_);
  // cfl-analyze: allow(blocking-under-lock) condvar wait releases drain_mu_
  while (pins_ != 0) drained_.Wait(drain_mu_);
}

}  // namespace fix
