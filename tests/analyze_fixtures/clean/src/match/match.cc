// Fixture: properly gated stats mutations (mutation self-test seeds 9 and
// 10 unwrap these).
#include "match/match.h"

#include "obs/stats.h"

namespace fix {

void Enumerator::Bind(uint32_t v) {
  buf_.push_back(v);
  CFL_STATS_ONLY(stats_.probes += 1;)
  CFL_STATS_ONLY(stats_.generated.push_back(v);)
}

}  // namespace fix
