// Fixture: the enumeration layer. The annotated view member is clean (Cpi
// is frozen); the vector member and the string_view accessor are the
// false-positive regressions for span-escape.
#ifndef FIX_MATCH_MATCH_H_
#define FIX_MATCH_MATCH_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cpi/cpi.h"
#include "obs/stats.h"

namespace fix {

class Enumerator {
 public:
  std::string_view name() const { return "fixture"; }

  void Bind(uint32_t v);

 private:
  CFL_SPAN_INTO(Cpi) std::span<const uint32_t> candidates_;
  std::vector<uint32_t> buf_;
  EnumStats stats_;
};

}  // namespace fix

#endif  // FIX_MATCH_MATCH_H_
