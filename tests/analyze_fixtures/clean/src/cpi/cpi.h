// Fixture: a frozen index (valid CFL_SPAN_INTO target) and a mutable
// scratch structure (an invalid one — mutation self-test seed 4 retargets
// an annotation at it).
#ifndef FIX_CPI_CPI_H_
#define FIX_CPI_CPI_H_

#include <cstdint>
#include <vector>

#include "check/check.h"
#include "cpi/util.h"
#include "graph/graph.h"

namespace fix {

class Cpi {
 public:
  CFL_IMMUTABLE_AFTER_BUILD(Cpi);

  uint32_t NumCandidates() const { return CheckedU32(cand_.size()); }

 private:
  std::vector<uint32_t> cand_;
};

class Scratch {
 public:
  void Reset() { buf_.clear(); }

 private:
  std::vector<uint32_t> buf_;
};

}  // namespace fix

#endif  // FIX_CPI_CPI_H_
