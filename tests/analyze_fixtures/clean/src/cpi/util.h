// Fixture: sanctioned narrowing helpers (mutation self-test seeds 5 and 6
// strip the CheckedU32 routing here).
#ifndef FIX_CPI_UTIL_H_
#define FIX_CPI_UTIL_H_

#include <cstdint>
#include <vector>

#include "check/check.h"

namespace fix {

inline uint32_t CheckedU32(uint64_t v) { return static_cast<uint32_t>(v); }

inline uint32_t CandidateCount(const std::vector<uint32_t>& v) {
  const uint32_t n = CheckedU32(v.size());
  return n;
}

inline uint32_t TotalCount(const std::vector<uint32_t>& w) {
  uint32_t m = CheckedU32(w.size());
  return m;
}

}  // namespace fix

#endif  // FIX_CPI_UTIL_H_
