// Fixture stats structs — the analyzer reads the counter field lists for
// the stats-gate rule from EnumStats / CpiBuildStats under src/obs/.
#ifndef FIX_OBS_STATS_H_
#define FIX_OBS_STATS_H_

#include <cstdint>
#include <vector>

namespace fix {

struct EnumStats {
  uint64_t probes = 0;
  std::vector<uint64_t> generated;

  uint64_t TotalProbes() const { return probes; }
};

struct CpiBuildStats {
  uint64_t pruned = 0;
};

}  // namespace fix

#endif  // FIX_OBS_STATS_H_
