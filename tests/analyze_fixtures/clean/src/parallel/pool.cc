// Fixture: a clean worker boundary — the body is invoked only inside
// InvokeBody, the out-of-boundary functions are noexcept, and everything a
// Run lambda calls is noexcept or CFL_POOL_SAFE. Mutation self-test seeds
// 7 and 8 break these properties.
#include "parallel/pool.h"

#include "check/check.h"

namespace fix {

namespace {

uint64_t Accumulate(uint64_t a, uint64_t b) noexcept { return a + b; }

uint64_t Allocating(uint64_t n) CFL_POOL_SAFE { return n * 2; }

}  // namespace

void ThreadPool::InvokeBody(const std::function<void(uint32_t)>& body,
                            uint32_t worker_id) noexcept {
  body(worker_id);
}

void ThreadPool::WorkerLoop(uint32_t worker_id) noexcept {
  InvokeBody(*body_, worker_id);
}

void ThreadPool::Run(const std::function<void(uint32_t)>& body) {
  body_ = &body;
  WorkerLoop(0);
}

void Drive(ThreadPool& pool) {
  pool.Run([&](uint32_t w) {
    uint64_t total = Accumulate(w, 1);
    total = Allocating(total);
  });
}

}  // namespace fix
