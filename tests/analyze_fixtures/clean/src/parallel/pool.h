// Fixture: the worker-pool surface mirrored from src/parallel/thread_pool.h.
#ifndef FIX_PARALLEL_POOL_H_
#define FIX_PARALLEL_POOL_H_

#include <cstdint>
#include <functional>

#include "match/match.h"

namespace fix {

class ThreadPool {
 public:
  explicit ThreadPool(uint32_t threads);

  uint32_t size() const { return size_; }

  void Run(const std::function<void(uint32_t)>& body);

 private:
  void WorkerLoop(uint32_t worker_id) noexcept;

  static void InvokeBody(const std::function<void(uint32_t)>& body,
                         uint32_t worker_id) noexcept;

  const std::function<void(uint32_t)>* body_ = nullptr;
  uint32_t size_ = 1;
};

}  // namespace fix

#endif  // FIX_PARALLEL_POOL_H_
