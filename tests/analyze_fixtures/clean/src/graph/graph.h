// Fixture: an immutable-after-build structure. False-positive regression
// for span-escape — views into a frozen arena are fine, both as members and
// as method returns.
#ifndef FIX_GRAPH_GRAPH_H_
#define FIX_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "check/check.h"

namespace fix {

class Graph {
 public:
  CFL_IMMUTABLE_AFTER_BUILD(Graph);

  std::span<const uint32_t> Neighbors() const {
    return {edges_.data(), edges_.size()};
  }

 private:
  std::vector<uint32_t> edges_;
  std::span<const uint32_t> cached_;  // fine: the owner is frozen
};

}  // namespace fix

#endif  // FIX_GRAPH_GRAPH_H_
