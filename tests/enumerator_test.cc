// Direct tests of the CPI-based backtracking enumerator (Algorithm 5):
// state cleanliness across outcomes, backward-edge enforcement, capacity
// semantics, and visitor-visible invariants.

#include "match/enumerator.h"

#include <gtest/gtest.h>

#include "cpi/cpi_builder.h"
#include "decomp/bfs_tree.h"
#include "decomp/cfl_decomposition.h"
#include "graph/graph_builder.h"
#include "order/matching_order.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::Figure7Data;
using testing::Figure7Query;

struct Fixture {
  Graph q = Figure7Query();
  Graph g = Figure7Data();
  BfsTree tree = BuildBfsTree(q, 0);
  Cpi cpi = BuildCpi(q, g, tree);
  CflDecomposition d = DecomposeCfl(q, 0);
  MatchingOrder order =
      ComputeMatchingOrder(q, cpi, d, DecompositionMode::kNone);
};

TEST(EnumeratorTest, VisitorSeesFullyBoundValidMappings) {
  Fixture f;
  EnumeratorState state(f.q.NumVertices(), f.g.NumVertices());
  Deadline deadline(0.0);
  uint32_t visits = 0;
  EnumerateStatus status = EnumeratePartial(
      f.g, f.cpi, f.order.steps, state, deadline, [&]() {
        ++visits;
        for (VertexId u = 0; u < f.q.NumVertices(); ++u) {
          EXPECT_NE(state.mapping[u], kInvalidVertex);
          EXPECT_EQ(f.g.label(state.mapping[u]), f.q.label(u));
          for (VertexId w : f.q.Neighbors(u)) {
            EXPECT_TRUE(f.g.HasEdge(state.mapping[u], state.mapping[w]));
          }
        }
        return true;
      });
  EXPECT_EQ(status, EnumerateStatus::kDone);
  EXPECT_EQ(visits, 2u);  // Figure 7 has two embeddings
}

TEST(EnumeratorTest, StateCleanAfterEveryOutcome) {
  Fixture f;
  EnumeratorState state(f.q.NumVertices(), f.g.NumVertices());

  auto expect_clean = [&]() {
    for (uint32_t used : state.used) EXPECT_EQ(used, 0u);
    for (VertexId v : state.mapping) EXPECT_EQ(v, kInvalidVertex);
  };

  // Outcome 1: exhausted.
  {
    Deadline deadline(0.0);
    EnumeratePartial(f.g, f.cpi, f.order.steps, state, deadline,
                     []() { return true; });
    expect_clean();
  }
  // Outcome 2: stopped by the visitor.
  {
    Deadline deadline(0.0);
    EnumerateStatus status = EnumeratePartial(
        f.g, f.cpi, f.order.steps, state, deadline, []() { return false; });
    EXPECT_EQ(status, EnumerateStatus::kStopped);
    expect_clean();
  }
  // Outcome 3: timed out (pre-expired deadline still unwinds cleanly).
  {
    Deadline deadline(1e-9);
    while (!deadline.ExpiredCoarse()) {
    }
    EnumerateStatus status = EnumeratePartial(
        f.g, f.cpi, f.order.steps, state, deadline, []() { return true; });
    EXPECT_EQ(status, EnumerateStatus::kTimedOut);
    expect_clean();
  }
}

TEST(EnumeratorTest, SearchCountersAdvance) {
  Fixture f;
  EnumeratorState state(f.q.NumVertices(), f.g.NumVertices());
  Deadline deadline(0.0);
  EnumeratePartial(f.g, f.cpi, f.order.steps, state, deadline,
                   []() { return true; });
  EXPECT_GT(state.candidates_tried, 0u);
  EXPECT_GT(state.candidates_bound, 0u);
  EXPECT_LE(state.candidates_bound, state.candidates_tried);
}

TEST(EnumeratorTest, CapacitySemantics) {
  // Two same-label query vertices against one capacity-2 hypervertex: both
  // may share it; capacity 1 forbids it.
  Graph q = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}, {1, 2}});
  for (uint32_t capacity : {1u, 2u}) {
    GraphBuilder gb(2);
    gb.AllowSelfLoops();
    gb.SetLabel(0, 0);
    gb.SetLabel(1, 1);
    gb.AddEdge(0, 1);
    gb.AddEdge(1, 1);  // clique class
    gb.SetMultiplicities({1, capacity});
    Graph g = std::move(gb).Build();

    BfsTree tree = BuildBfsTree(q, 0);
    Cpi cpi = BuildCpi(q, g, tree);
    if (cpi.HasEmptyCandidateSet()) {
      EXPECT_EQ(capacity, 1u);  // degree filter alone kills capacity 1
      continue;
    }
    CflDecomposition d = DecomposeCfl(q, 0);
    MatchingOrder order =
        ComputeMatchingOrder(q, cpi, d, DecompositionMode::kNone);
    EnumeratorState state(q.NumVertices(), g.NumVertices());
    Deadline deadline(0.0);
    uint32_t matches = 0;
    EnumeratePartial(g, cpi, order.steps, state, deadline, [&]() {
      ++matches;
      return true;
    });
    EXPECT_EQ(matches, capacity == 2 ? 1u : 0u) << "capacity " << capacity;
  }
}

}  // namespace
}  // namespace cfl
