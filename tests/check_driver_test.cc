// cfl_check driver tests: the unified gate runner must merge cfl_lint and
// cfl_analyze findings, report absent clang wrappers as skipped (never
// failed), honor --skip, and emit the merged report as the shared JSON
// schema and as SARIF 2.1.0 — the document CI uploads as an artifact.
//
// The driver binary path and the analyzer fixture trees come in as compile
// definitions (CFL_CHECK_BINARY, CFL_ANALYZE_FIXTURES).

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

struct CheckRun {
  int exit_code = -1;
  std::string output;
};

CheckRun RunCheck(const std::string& args) {
  std::string cmd =
      std::string("\"") + CFL_CHECK_BINARY + "\" " + args + " 2>&1";
  CheckRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buffer[4096];
  size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, n);
  }
  int status = pclose(pipe);
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  return run;
}

std::string FixtureRoot(const char* name) {
  return std::string(CFL_ANALYZE_FIXTURES) + "/" + name;
}

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CflCheckTest, CleanTreeEveryOwnGateCleanExitZero) {
  CheckRun run = RunCheck("--root \"" + FixtureRoot("clean") +
                          "\" --skip tidy,sa");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("cfl_lint: clean"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("cfl_analyze: clean"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("0 finding(s) across 4 gate(s)"),
            std::string::npos)
      << run.output;
}

TEST(CflCheckTest, AbsentClangWrappersReportSkippedNotFailed) {
  // Fixture roots carry no tools/ directory, so both wrappers are absent;
  // that must read as "skipped", and the exit code must stay 0.
  CheckRun run = RunCheck("--root \"" + FixtureRoot("clean") + "\"");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("clang-tidy: skipped"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("clang-sa: skipped"), std::string::npos)
      << run.output;
}

TEST(CflCheckTest, FindingsMergeIntoJsonAndSarifWithExitOne) {
  const fs::path dir =
      fs::temp_directory_path() / "cfl_check_driver_test_out";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  const fs::path json = dir / "report.json";
  const fs::path sarif = dir / "report.sarif";

  CheckRun run = RunCheck("--root \"" + FixtureRoot("atomic") +
                          "\" --skip tidy,sa --json \"" + json.string() +
                          "\" --sarif \"" + sarif.string() + "\"");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("cfl_analyze: findings"), std::string::npos)
      << run.output;

  const std::string j = ReadFile(json);
  EXPECT_NE(j.find("\"tool\":\"cfl_check\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"name\":\"cfl_analyze\",\"status\":\"findings\""),
            std::string::npos)
      << j;
  EXPECT_NE(j.find("\"rule\":\"atomic-intent\""), std::string::npos) << j;
  // Report URIs are root-relative.
  EXPECT_NE(j.find("\"file\":\"src/kernels/table.h\""), std::string::npos)
      << j;

  const std::string s = ReadFile(sarif);
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos) << s;
  EXPECT_NE(s.find("sarif-2.1.0.json"), std::string::npos) << s;
  EXPECT_NE(s.find("\"name\": \"cfl_check\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"ruleId\": \"atomic-intent\""), std::string::npos)
      << s;
  EXPECT_NE(s.find("\"uri\": \"src/kernels/table.h\""), std::string::npos)
      << s;
  EXPECT_NE(s.find("\"startLine\": "), std::string::npos) << s;
  // Every finding is attributed to its producing gate.
  EXPECT_NE(s.find("\"gate\": \"cfl_analyze\""), std::string::npos) << s;

  fs::remove_all(dir, ec);
}

TEST(CflCheckTest, LockOrderFindingsFlowThroughTheDriver) {
  CheckRun run = RunCheck("--root \"" + FixtureRoot("lockorder") +
                          "\" --skip tidy,sa");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[lock-order]"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("lock-order cycle"), std::string::npos)
      << run.output;
}

TEST(CflCheckTest, UsageAndEnvironmentErrorsExitTwo) {
  CheckRun bad_flag = RunCheck("--no-such-flag");
  EXPECT_EQ(bad_flag.exit_code, 2) << bad_flag.output;
  CheckRun bad_root = RunCheck("--root /no/such/dir/cfl");
  EXPECT_EQ(bad_root.exit_code, 2) << bad_root.output;
  CheckRun bad_skip =
      RunCheck("--root \"" + FixtureRoot("clean") + "\" --skip nonsense");
  EXPECT_EQ(bad_skip.exit_code, 2) << bad_skip.output;
}

}  // namespace
