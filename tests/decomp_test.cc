// Tests for 2-core peeling, CFL decomposition, BFS trees, and NEC classes.

#include "decomp/cfl_decomposition.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "decomp/bfs_tree.h"
#include "decomp/forest_is.h"
#include "decomp/k_core.h"
#include "decomp/nec.h"
#include "decomp/two_core.h"
#include "gen/synthetic.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::Figure7Query;

// The paper's Figure 4(a) query: triangle core {u0,u1,u2}; u1 hangs a tree
// u3,u4 with leaves u7,u8; u2 hangs u5,u6 with leaves u9,u10.
Graph Figure4Query() {
  return MakeGraph(
      {0, 1, 2, 3, 3, 4, 4, 5, 5, 6, 6},
      {{0, 1}, {0, 2}, {1, 2},                    // core triangle
       {1, 3}, {1, 4}, {3, 7}, {4, 8},            // tree at u1
       {2, 5}, {2, 6}, {5, 9}, {6, 10}});         // tree at u2
}

TEST(TwoCoreTest, TriangleWithPendantTrees) {
  Graph q = Figure4Query();
  std::vector<VertexId> core = TwoCoreVertices(q);
  EXPECT_EQ(core, (std::vector<VertexId>{0, 1, 2}));
}

TEST(TwoCoreTest, TreeHasEmptyCore) {
  Graph path = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(TwoCoreVertices(path).empty());
}

TEST(TwoCoreTest, CycleIsItsOwnCore) {
  Graph cycle = MakeGraph({0, 0, 0, 0, 0},
                          {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  EXPECT_EQ(TwoCoreVertices(cycle).size(), 5u);
}

TEST(TwoCoreTest, MatchesBruteForceDefinitionOnRandomGraphs) {
  // 2-core = maximal subgraph with min degree >= 2; cross-check peeling
  // against iterated brute-force deletion.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SyntheticOptions options;
    options.num_vertices = 40;
    options.average_degree = 2.2;
    options.num_labels = 3;
    options.seed = seed;
    Graph g = MakeSynthetic(options);

    std::vector<bool> in(g.NumVertices(), true);
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (!in[v]) continue;
        uint32_t d = 0;
        for (VertexId w : g.Neighbors(v)) d += in[w] ? 1 : 0;
        if (d < 2) {
          in[v] = false;
          changed = true;
        }
      }
    }
    EXPECT_EQ(TwoCoreMembership(g), in) << "seed " << seed;
  }
}

TEST(CflDecompositionTest, Figure4Partition) {
  Graph q = Figure4Query();
  CflDecomposition d = DecomposeCfl(q);
  EXPECT_FALSE(d.QueryIsTree());
  EXPECT_EQ(d.core, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(d.forest, (std::vector<VertexId>{3, 4, 5, 6}));
  EXPECT_EQ(d.leaf, (std::vector<VertexId>{7, 8, 9, 10}));
  EXPECT_EQ(d.connections, (std::vector<VertexId>{1, 2}));
}

TEST(CflDecompositionTest, PartitionIsDisjointAndComplete) {
  Graph q = Figure4Query();
  CflDecomposition d = DecomposeCfl(q);
  EXPECT_EQ(d.core.size() + d.forest.size() + d.leaf.size(), q.NumVertices());
  std::vector<VertexId> all;
  all.insert(all.end(), d.core.begin(), d.core.end());
  all.insert(all.end(), d.forest.begin(), d.forest.end());
  all.insert(all.end(), d.leaf.begin(), d.leaf.end());
  std::sort(all.begin(), all.end());
  for (VertexId v = 0; v < q.NumVertices(); ++v) EXPECT_EQ(all[v], v);
}

TEST(CflDecompositionTest, TreeQueryCoreIsChosenRoot) {
  // Star: center 0, leaves 1..3.
  Graph star = MakeGraph({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  CflDecomposition d = DecomposeCfl(star, /*tree_root=*/0);
  EXPECT_TRUE(d.QueryIsTree());
  EXPECT_EQ(d.core, (std::vector<VertexId>{0}));
  EXPECT_TRUE(d.forest.empty());
  EXPECT_EQ(d.leaf, (std::vector<VertexId>{1, 2, 3}));
}

TEST(CflDecompositionTest, TreeQueryDegreeOneRootStaysCore) {
  // Path 0-1-2: root the tree at the degree-one endpoint 0.
  Graph path = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  CflDecomposition d = DecomposeCfl(path, /*tree_root=*/0);
  EXPECT_EQ(d.core, (std::vector<VertexId>{0}));
  EXPECT_EQ(d.forest, (std::vector<VertexId>{1}));
  EXPECT_EQ(d.leaf, (std::vector<VertexId>{2}));
}

TEST(CflDecompositionTest, WholeQueryCanBeCore) {
  Graph k4 = MakeGraph({0, 0, 0, 0},
                       {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  CflDecomposition d = DecomposeCfl(k4);
  EXPECT_EQ(d.core.size(), 4u);
  EXPECT_TRUE(d.forest.empty());
  EXPECT_TRUE(d.leaf.empty());
  EXPECT_TRUE(d.connections.empty());
}

TEST(BfsTreeTest, Figure7Structure) {
  Graph q = Figure7Query();
  BfsTree t = BuildBfsTree(q, 0);
  EXPECT_EQ(t.root, 0u);
  EXPECT_EQ(t.level[0], 1u);
  EXPECT_EQ(t.level[1], 2u);
  EXPECT_EQ(t.level[2], 2u);
  EXPECT_EQ(t.level[3], 3u);
  EXPECT_EQ(t.parent[1], 0u);
  EXPECT_EQ(t.parent[2], 0u);
  EXPECT_EQ(t.parent[3], 1u);
  ASSERT_EQ(t.non_tree_edges.size(), 2u);
  // (u1,u2) is an S-NTE; (u2,u3) a C-NTE with u2 the shallower endpoint.
  bool found_snte = false, found_cnte = false;
  for (const NonTreeEdge& e : t.non_tree_edges) {
    if (e.same_level) {
      found_snte = true;
      EXPECT_EQ(std::min(e.u, e.v), 1u);
      EXPECT_EQ(std::max(e.u, e.v), 2u);
    } else {
      found_cnte = true;
      EXPECT_EQ(e.u, 2u);
      EXPECT_EQ(e.v, 3u);
    }
  }
  EXPECT_TRUE(found_snte);
  EXPECT_TRUE(found_cnte);
}

TEST(BfsTreeTest, LevelsPartitionAndParentsAreShallower) {
  Graph q = Figure4Query();
  BfsTree t = BuildBfsTree(q, 0);
  size_t total = 0;
  for (const std::vector<VertexId>& level : t.levels) total += level.size();
  EXPECT_EQ(total, q.NumVertices());
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    if (v == t.root) continue;
    EXPECT_EQ(t.level[v], t.level[t.parent[v]] + 1);
  }
}

TEST(BfsTreeTest, DisconnectedThrows) {
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {2, 3}});
  EXPECT_THROW(BuildBfsTree(g, 0), std::invalid_argument);
}

TEST(NecTest, DetectsNonAdjacentTwins) {
  // u1 and u2: same label, both adjacent exactly to {0,3}.
  Graph q = MakeGraph({0, 1, 1, 2}, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  std::vector<std::vector<VertexId>> classes = ComputeNecClasses(q);
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[1], (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(NecReducedVertices(q), 1u);
}

TEST(NecTest, LabelDifferenceSplitsClasses) {
  Graph q = MakeGraph({0, 1, 2, 3}, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(NecReducedVertices(q), 0u);
}

TEST(NecTest, LeafTwins) {
  // Star with three same-label leaves: all three are one NEC class.
  Graph star = MakeGraph({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  std::vector<std::vector<VertexId>> classes = ComputeNecClasses(star);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[1].size(), 3u);
  EXPECT_EQ(NecReducedVertices(star), 2u);
}

TEST(ForestIsTest, LeafSetIsTheMaximumIndependentSet) {
  // Paper A.5: the cMVC-based independent set of the forest-structure is
  // exactly the leaf-set V_I.
  Graph q = Figure4Query();
  CflDecomposition d = DecomposeCfl(q);
  ForestIsResult fis = ComputeForestIs(q, d);
  EXPECT_EQ(fis.independent, d.leaf);
  EXPECT_EQ(fis.cover, d.forest);
  EXPECT_TRUE(IsIndependentSet(q, fis.independent));
}

TEST(ForestIsTest, PropertyOnRandomQueries) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    SyntheticOptions options;
    options.num_vertices = 60;
    options.average_degree = 2.4;
    options.num_labels = 3;
    options.seed = seed;
    Graph q = MakeSynthetic(options);
    CflDecomposition d = DecomposeCfl(q, 0);
    ForestIsResult fis = ComputeForestIs(q, d);
    EXPECT_TRUE(IsIndependentSet(q, fis.independent)) << seed;
    EXPECT_EQ(fis.independent, d.leaf) << seed;
    // The cover really covers every forest edge: each non-core edge has an
    // endpoint in cover or in the core.
    std::vector<bool> covered(q.NumVertices(), false);
    for (VertexId v : fis.cover) covered[v] = true;
    for (VertexId v : d.core) covered[v] = true;
    for (VertexId a = 0; a < q.NumVertices(); ++a) {
      for (VertexId b : q.Neighbors(a)) {
        if (b < a) continue;
        EXPECT_TRUE(covered[a] || covered[b])
            << "uncovered edge (" << a << "," << b << ") seed " << seed;
      }
    }
  }
}

TEST(KCoreTest, CoreNumbersOnKnownGraph) {
  // K4 with a pendant path: clique vertices have core 3, path 1.
  Graph g = MakeGraph({0, 0, 0, 0, 0, 0},
                      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
                       {3, 4}, {4, 5}});
  std::vector<uint32_t> core = CoreNumbers(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[1], 3u);
  EXPECT_EQ(core[2], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(KCoreTest, TwoCoreConsistency) {
  // The k-core hierarchy at k=2 must agree with the dedicated 2-core.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    SyntheticOptions options;
    options.num_vertices = 50;
    options.average_degree = 3.0;
    options.num_labels = 2;
    options.seed = seed;
    Graph g = MakeSynthetic(options);
    CoreHierarchy h = ComputeCoreHierarchy(g);
    EXPECT_EQ(h.KCore(2), TwoCoreVertices(g)) << seed;
    // Shells partition V.
    size_t total = 0;
    for (const std::vector<VertexId>& shell : h.shells) total += shell.size();
    EXPECT_EQ(total, g.NumVertices());
  }
}

TEST(Lemma42Test, ForestSetHasNoNecTwins) {
  // Paper Lemma 4.2: no two forest-set vertices have the same label and the
  // same neighborhoods (they would close a cycle and belong to the core).
  for (uint64_t seed = 0; seed < 15; ++seed) {
    SyntheticOptions options;
    options.num_vertices = 60;
    options.average_degree = 2.6;
    options.num_labels = 2;  // few labels maximize collision chances
    options.seed = seed;
    Graph q = MakeSynthetic(options);
    CflDecomposition d = DecomposeCfl(q, 0);
    for (size_t i = 0; i < d.forest.size(); ++i) {
      for (size_t j = i + 1; j < d.forest.size(); ++j) {
        VertexId a = d.forest[i], b = d.forest[j];
        if (q.label(a) != q.label(b)) continue;
        std::span<const VertexId> na = q.Neighbors(a);
        std::span<const VertexId> nb = q.Neighbors(b);
        bool equal = na.size() == nb.size() &&
                     std::equal(na.begin(), na.end(), nb.begin());
        EXPECT_FALSE(equal) << "forest twins u" << a << ", u" << b
                            << " at seed " << seed;
      }
    }
  }
}

TEST(KCoreTest, MonotoneUnderPeeling) {
  // Core numbers are monotone: k-core of the k-core is itself.
  SyntheticOptions options;
  options.num_vertices = 80;
  options.average_degree = 5.0;
  options.seed = 3;
  Graph g = MakeSynthetic(options);
  CoreHierarchy h = ComputeCoreHierarchy(g);
  ASSERT_GE(h.degeneracy, 2u);
  std::vector<VertexId> inner = h.KCore(h.degeneracy);
  ASSERT_FALSE(inner.empty());
  Graph sub = InducedSubgraph(g, inner);
  for (VertexId v = 0; v < sub.NumVertices(); ++v) {
    EXPECT_GE(sub.StructuralDegree(v), h.degeneracy);
  }
}

}  // namespace
}  // namespace cfl
