// Unit tests for the core graph representation (graph/graph.h).

#include "graph/graph.h"

#include <random>
#include <set>
#include <sstream>
#include <utility>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::Figure3Data;

TEST(GraphTest, BasicShape) {
  Graph g = Figure3Data();
  EXPECT_EQ(g.NumVertices(), 7u);
  EXPECT_EQ(g.NumEdges(), 13u);
  EXPECT_EQ(g.NumLabels(), 5u);
  EXPECT_EQ(g.label(0), 0u);
  EXPECT_EQ(g.label(5), 3u);
}

TEST(GraphTest, NeighborsSortedByLabelThenIdAndDegrees) {
  Graph g = Figure3Data();
  // v0's neighbors are v1(C), v2(B), v3(C); (label, id) order puts the B
  // vertex first and the two C vertices after it ascending by id.
  std::span<const VertexId> n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 3u);
  EXPECT_EQ(n0[0], 2u);
  EXPECT_EQ(n0[1], 1u);
  EXPECT_EQ(n0[2], 3u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.StructuralDegree(0), 3u);
  EXPECT_EQ(g.degree(4), 2u);
}

TEST(GraphTest, NeighborsWithLabel) {
  Graph g = Figure3Data();
  // Multi-run list: v0's neighbors split into a B run {2} and a C run {1,3}.
  std::span<const VertexId> b_run = g.NeighborsWithLabel(0, 1);  // label B
  ASSERT_EQ(b_run.size(), 1u);
  EXPECT_EQ(b_run[0], 2u);
  std::span<const VertexId> c_run = g.NeighborsWithLabel(0, 2);  // label C
  ASSERT_EQ(c_run.size(), 2u);
  EXPECT_EQ(c_run[0], 1u);
  EXPECT_EQ(c_run[1], 3u);
  // Absent label: empty span.
  EXPECT_TRUE(g.NeighborsWithLabel(0, 4).empty());   // no E neighbor
  EXPECT_TRUE(g.NeighborsWithLabel(0, 99).empty());  // label not in graph
  // Single-run list: v4's neighbors v1(C) and v5(D) are two runs of one.
  std::span<const VertexId> v4_c = g.NeighborsWithLabel(4, 2);
  ASSERT_EQ(v4_c.size(), 1u);
  EXPECT_EQ(v4_c[0], 1u);
  // Every (v, l) pair agrees with a filter over the full neighbor list.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (Label l = 0; l < g.NumLabels(); ++l) {
      std::vector<VertexId> expected;
      for (VertexId w : g.Neighbors(v)) {
        if (g.label(w) == l) expected.push_back(w);
      }
      std::span<const VertexId> run = g.NeighborsWithLabel(v, l);
      EXPECT_EQ(std::vector<VertexId>(run.begin(), run.end()), expected)
          << "v=" << v << " l=" << l;
    }
  }
}

TEST(GraphTest, NeighborsWithLabelOnSelfLoopCompressedVertex) {
  // Clique class at v1 (self-loop): v1 must appear in its own label run.
  GraphBuilder b(3);
  b.AllowSelfLoops();
  b.SetLabel(0, 0);
  b.SetLabel(1, 1);
  b.SetLabel(2, 1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  b.AddEdge(1, 2);
  b.SetMultiplicities({1, 2, 1});
  Graph g = std::move(b).Build();
  std::span<const VertexId> run = g.NeighborsWithLabel(1, 1);
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run[0], 1u);  // the self-loop
  EXPECT_EQ(run[1], 2u);
  std::span<const VertexId> run0 = g.NeighborsWithLabel(1, 0);
  ASSERT_EQ(run0.size(), 1u);
  EXPECT_EQ(run0[0], 0u);
}

TEST(GraphTest, HubProbesAgreeWithBinarySearch) {
  // Randomized graphs with a skewed degree distribution; a low threshold
  // forces several hub rows. HasEdge must agree with ground truth whether
  // the probe goes through a hub bitmap or the binary-search fallback.
  std::mt19937 rng(20260805);
  for (int trial = 0; trial < 4; ++trial) {
    const uint32_t n = 80;
    GraphBuilder b(n);
    for (VertexId v = 0; v < n; ++v) b.SetLabel(v, v % 5);
    std::set<std::pair<VertexId, VertexId>> truth;
    std::uniform_int_distribution<uint32_t> pick(0, n - 1);
    // A few heavy vertices connected to most of the graph, plus random edges.
    for (VertexId hub = 0; hub < 3; ++hub) {
      for (VertexId w = 3; w < n; w += 1 + trial) {
        b.AddEdge(hub, w);
        truth.emplace(std::min<VertexId>(hub, w), std::max<VertexId>(hub, w));
      }
    }
    for (int e = 0; e < 200; ++e) {
      VertexId u = pick(rng), v = pick(rng);
      if (u == v) continue;
      b.AddEdge(u, v);
      truth.emplace(std::min(u, v), std::max(u, v));
    }
    b.SetHubDegreeThreshold(8);
    Graph g = std::move(b).Build();
    ASSERT_TRUE(g.HasHubIndex());
    EXPECT_EQ(g.HubDegreeThreshold(), 8u);
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(g.IsHub(v), g.StructuralDegree(v) >= 8u) << "v=" << v;
    }
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        const bool expect =
            truth.count({std::min(u, v), std::max(u, v)}) != 0 && u != v;
        EXPECT_EQ(g.HasEdge(u, v), expect) << "u=" << u << " v=" << v;
      }
    }
  }
}

TEST(GraphTest, HubIndexDisabledByZeroThreshold) {
  GraphBuilder b(4);
  for (VertexId v = 0; v < 4; ++v) {
    for (VertexId w = v + 1; w < 4; ++w) b.AddEdge(v, w);
  }
  b.SetHubDegreeThreshold(0);
  Graph g = std::move(b).Build();
  EXPECT_FALSE(g.HasHubIndex());
  EXPECT_TRUE(g.HasEdge(0, 3));  // binary-search fallback still works
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, HasEdge) {
  Graph g = Figure3Data();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(5, 6));
  EXPECT_FALSE(g.HasEdge(0, 4));
  EXPECT_FALSE(g.HasEdge(2, 6));
  EXPECT_FALSE(g.HasEdge(0, 0));  // no self-loop
}

TEST(GraphTest, DuplicateEdgesCoalesce) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphTest, LabelIndex) {
  Graph g = Figure3Data();
  std::span<const VertexId> cs = g.VerticesWithLabel(2);  // label C
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0], 1u);
  EXPECT_EQ(cs[1], 3u);
  EXPECT_EQ(g.LabelFrequency(2), 2u);
  EXPECT_EQ(g.LabelFrequency(0), 1u);
  EXPECT_TRUE(g.VerticesWithLabel(99).empty());
  EXPECT_EQ(g.LabelFrequency(99), 0u);
}

TEST(GraphTest, NeighborLabelCounts) {
  Graph g = Figure3Data();
  // v0 (A) neighbors: v1(C), v2(B), v3(C).
  EXPECT_EQ(g.NeighborLabelCount(0, 2), 2u);  // two C neighbors
  EXPECT_EQ(g.NeighborLabelCount(0, 1), 1u);  // one B neighbor
  EXPECT_EQ(g.NeighborLabelCount(0, 4), 0u);  // no E neighbor
  EXPECT_EQ(g.NeighborLabelKinds(0), 2u);
}

TEST(GraphTest, MaxNeighborDegree) {
  Graph g = Figure3Data();
  // v4 (E) neighbors: v1 (degree 5), v5 (degree 5).
  EXPECT_EQ(g.MaxNeighborDegree(4), 5u);
  // v0 neighbors: v1 (5), v2 (4), v3 (4).
  EXPECT_EQ(g.MaxNeighborDegree(0), 5u);
}

TEST(GraphTest, SelfLoopRejectedWithoutOptIn) {
  GraphBuilder b(2);
  EXPECT_THROW(b.AddEdge(0, 0), std::invalid_argument);
}

TEST(GraphTest, OutOfRangeEdgeThrows) {
  GraphBuilder b(2);
  EXPECT_THROW(b.AddEdge(0, 5), std::out_of_range);
}

TEST(GraphMultiplicityTest, EffectiveDegreesAndSelfLoops) {
  // Hypervertex 0 stands for 3 mutually-adjacent originals (clique class,
  // self-loop); vertex 1 stands for 2 originals adjacent to all of them.
  GraphBuilder b(2);
  b.AllowSelfLoops();
  b.SetLabel(0, 0);
  b.SetLabel(1, 1);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.SetMultiplicities({3, 2});
  Graph g = std::move(b).Build();

  EXPECT_TRUE(g.HasMultiplicities());
  EXPECT_EQ(g.EffectiveNumVertices(), 5u);
  EXPECT_EQ(g.multiplicity(0), 3u);
  // v0's expanded degree: 2 clique siblings + 2 members of v1.
  EXPECT_EQ(g.degree(0), 4u);
  // v1's expanded degree: 3 members of v0.
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_FALSE(g.HasEdge(1, 1));
  // NLF under expansion: v0 sees 2 label-0 neighbors and 2 label-1.
  EXPECT_EQ(g.NeighborLabelCount(0, 0), 2u);
  EXPECT_EQ(g.NeighborLabelCount(0, 1), 2u);
}

TEST(GraphStatsTest, ComputeStats) {
  Graph g = Figure3Data();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_vertices, 7u);
  EXPECT_EQ(s.num_edges, 13u);
  EXPECT_EQ(s.distinct_labels, 5u);
  EXPECT_NEAR(s.average_degree, 26.0 / 7.0, 1e-9);
  EXPECT_EQ(s.max_degree, 5u);
}

TEST(GraphStatsTest, LabelPairFrequency) {
  Graph g = Figure3Data();
  LabelPairFrequency f(g);
  // Edges with labels {A,C}: (v0,v1), (v0,v3) -> 2.
  EXPECT_EQ(f.Frequency(0, 2), 2u);
  EXPECT_EQ(f.Frequency(2, 0), 2u);
  // {C,E}: (v1,v4), (v1,v6), (v3,v6) -> 3.
  EXPECT_EQ(f.Frequency(2, 4), 3u);
  // {A,E}: none.
  EXPECT_EQ(f.Frequency(0, 4), 0u);
}

TEST(GraphIoTest, RoundTrip) {
  Graph g = Figure3Data();
  std::stringstream ss;
  WriteGraph(g, ss);
  Graph h = ReadGraph(ss);
  ASSERT_EQ(h.NumVertices(), g.NumVertices());
  ASSERT_EQ(h.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(h.label(v), g.label(v));
    std::span<const VertexId> a = g.Neighbors(v);
    std::span<const VertexId> b = h.Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIoTest, RoundTripWithMultiplicities) {
  GraphBuilder b(2);
  b.AllowSelfLoops();
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.SetMultiplicities({3, 1});
  Graph g = std::move(b).Build();
  std::stringstream ss;
  WriteGraph(g, ss);
  Graph h = ReadGraph(ss);
  EXPECT_TRUE(h.HasMultiplicities());
  EXPECT_EQ(h.multiplicity(0), 3u);
  EXPECT_TRUE(h.HasEdge(0, 0));
}

TEST(GraphIoTest, MalformedInputs) {
  {
    std::stringstream ss("v 0 1\n");
    EXPECT_THROW(ReadGraph(ss), std::runtime_error);
  }
  {
    std::stringstream ss("t 2 1\nv 0 0\nv 1 0\n");  // missing edge
    EXPECT_THROW(ReadGraph(ss), std::runtime_error);
  }
  {
    std::stringstream ss("t 2 1\nv 0 0\nv 5 0\ne 0 1\n");  // bad vertex id
    EXPECT_THROW(ReadGraph(ss), std::runtime_error);
  }
  {
    std::stringstream ss("");
    EXPECT_THROW(ReadGraph(ss), std::runtime_error);
  }
}

TEST(InducedSubgraphTest, ExtractsVertexInducedEdges) {
  Graph g = Figure3Data();
  std::vector<VertexId> to_original;
  Graph sub = InducedSubgraph(g, {0, 1, 2, 4}, &to_original);
  EXPECT_EQ(sub.NumVertices(), 4u);
  // Induced edges: (0,1), (0,2), (1,2), (1,4) -> local (0,1),(0,2),(1,2),(1,3).
  EXPECT_EQ(sub.NumEdges(), 4u);
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 3));
  EXPECT_FALSE(sub.HasEdge(0, 3));
  EXPECT_EQ(sub.label(3), g.label(4));
  ASSERT_EQ(to_original.size(), 4u);
  EXPECT_EQ(to_original[3], 4u);
}

}  // namespace
}  // namespace cfl
