// Unit tests for the core graph representation (graph/graph.h).

#include "graph/graph.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::Figure3Data;

TEST(GraphTest, BasicShape) {
  Graph g = Figure3Data();
  EXPECT_EQ(g.NumVertices(), 7u);
  EXPECT_EQ(g.NumEdges(), 13u);
  EXPECT_EQ(g.NumLabels(), 5u);
  EXPECT_EQ(g.label(0), 0u);
  EXPECT_EQ(g.label(5), 3u);
}

TEST(GraphTest, NeighborsSortedAndDegrees) {
  Graph g = Figure3Data();
  std::span<const VertexId> n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 3u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(n0[2], 3u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.StructuralDegree(0), 3u);
  EXPECT_EQ(g.degree(4), 2u);
}

TEST(GraphTest, HasEdge) {
  Graph g = Figure3Data();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(5, 6));
  EXPECT_FALSE(g.HasEdge(0, 4));
  EXPECT_FALSE(g.HasEdge(2, 6));
  EXPECT_FALSE(g.HasEdge(0, 0));  // no self-loop
}

TEST(GraphTest, DuplicateEdgesCoalesce) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphTest, LabelIndex) {
  Graph g = Figure3Data();
  std::span<const VertexId> cs = g.VerticesWithLabel(2);  // label C
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0], 1u);
  EXPECT_EQ(cs[1], 3u);
  EXPECT_EQ(g.LabelFrequency(2), 2u);
  EXPECT_EQ(g.LabelFrequency(0), 1u);
  EXPECT_TRUE(g.VerticesWithLabel(99).empty());
  EXPECT_EQ(g.LabelFrequency(99), 0u);
}

TEST(GraphTest, NeighborLabelCounts) {
  Graph g = Figure3Data();
  // v0 (A) neighbors: v1(C), v2(B), v3(C).
  EXPECT_EQ(g.NeighborLabelCount(0, 2), 2u);  // two C neighbors
  EXPECT_EQ(g.NeighborLabelCount(0, 1), 1u);  // one B neighbor
  EXPECT_EQ(g.NeighborLabelCount(0, 4), 0u);  // no E neighbor
  EXPECT_EQ(g.NeighborLabelKinds(0), 2u);
}

TEST(GraphTest, MaxNeighborDegree) {
  Graph g = Figure3Data();
  // v4 (E) neighbors: v1 (degree 5), v5 (degree 5).
  EXPECT_EQ(g.MaxNeighborDegree(4), 5u);
  // v0 neighbors: v1 (5), v2 (4), v3 (4).
  EXPECT_EQ(g.MaxNeighborDegree(0), 5u);
}

TEST(GraphTest, SelfLoopRejectedWithoutOptIn) {
  GraphBuilder b(2);
  EXPECT_THROW(b.AddEdge(0, 0), std::invalid_argument);
}

TEST(GraphTest, OutOfRangeEdgeThrows) {
  GraphBuilder b(2);
  EXPECT_THROW(b.AddEdge(0, 5), std::out_of_range);
}

TEST(GraphMultiplicityTest, EffectiveDegreesAndSelfLoops) {
  // Hypervertex 0 stands for 3 mutually-adjacent originals (clique class,
  // self-loop); vertex 1 stands for 2 originals adjacent to all of them.
  GraphBuilder b(2);
  b.AllowSelfLoops();
  b.SetLabel(0, 0);
  b.SetLabel(1, 1);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.SetMultiplicities({3, 2});
  Graph g = std::move(b).Build();

  EXPECT_TRUE(g.HasMultiplicities());
  EXPECT_EQ(g.EffectiveNumVertices(), 5u);
  EXPECT_EQ(g.multiplicity(0), 3u);
  // v0's expanded degree: 2 clique siblings + 2 members of v1.
  EXPECT_EQ(g.degree(0), 4u);
  // v1's expanded degree: 3 members of v0.
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_FALSE(g.HasEdge(1, 1));
  // NLF under expansion: v0 sees 2 label-0 neighbors and 2 label-1.
  EXPECT_EQ(g.NeighborLabelCount(0, 0), 2u);
  EXPECT_EQ(g.NeighborLabelCount(0, 1), 2u);
}

TEST(GraphStatsTest, ComputeStats) {
  Graph g = Figure3Data();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_vertices, 7u);
  EXPECT_EQ(s.num_edges, 13u);
  EXPECT_EQ(s.distinct_labels, 5u);
  EXPECT_NEAR(s.average_degree, 26.0 / 7.0, 1e-9);
  EXPECT_EQ(s.max_degree, 5u);
}

TEST(GraphStatsTest, LabelPairFrequency) {
  Graph g = Figure3Data();
  LabelPairFrequency f(g);
  // Edges with labels {A,C}: (v0,v1), (v0,v3) -> 2.
  EXPECT_EQ(f.Frequency(0, 2), 2u);
  EXPECT_EQ(f.Frequency(2, 0), 2u);
  // {C,E}: (v1,v4), (v1,v6), (v3,v6) -> 3.
  EXPECT_EQ(f.Frequency(2, 4), 3u);
  // {A,E}: none.
  EXPECT_EQ(f.Frequency(0, 4), 0u);
}

TEST(GraphIoTest, RoundTrip) {
  Graph g = Figure3Data();
  std::stringstream ss;
  WriteGraph(g, ss);
  Graph h = ReadGraph(ss);
  ASSERT_EQ(h.NumVertices(), g.NumVertices());
  ASSERT_EQ(h.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(h.label(v), g.label(v));
    std::span<const VertexId> a = g.Neighbors(v);
    std::span<const VertexId> b = h.Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIoTest, RoundTripWithMultiplicities) {
  GraphBuilder b(2);
  b.AllowSelfLoops();
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.SetMultiplicities({3, 1});
  Graph g = std::move(b).Build();
  std::stringstream ss;
  WriteGraph(g, ss);
  Graph h = ReadGraph(ss);
  EXPECT_TRUE(h.HasMultiplicities());
  EXPECT_EQ(h.multiplicity(0), 3u);
  EXPECT_TRUE(h.HasEdge(0, 0));
}

TEST(GraphIoTest, MalformedInputs) {
  {
    std::stringstream ss("v 0 1\n");
    EXPECT_THROW(ReadGraph(ss), std::runtime_error);
  }
  {
    std::stringstream ss("t 2 1\nv 0 0\nv 1 0\n");  // missing edge
    EXPECT_THROW(ReadGraph(ss), std::runtime_error);
  }
  {
    std::stringstream ss("t 2 1\nv 0 0\nv 5 0\ne 0 1\n");  // bad vertex id
    EXPECT_THROW(ReadGraph(ss), std::runtime_error);
  }
  {
    std::stringstream ss("");
    EXPECT_THROW(ReadGraph(ss), std::runtime_error);
  }
}

TEST(InducedSubgraphTest, ExtractsVertexInducedEdges) {
  Graph g = Figure3Data();
  std::vector<VertexId> to_original;
  Graph sub = InducedSubgraph(g, {0, 1, 2, 4}, &to_original);
  EXPECT_EQ(sub.NumVertices(), 4u);
  // Induced edges: (0,1), (0,2), (1,2), (1,4) -> local (0,1),(0,2),(1,2),(1,3).
  EXPECT_EQ(sub.NumEdges(), 4u);
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 3));
  EXPECT_FALSE(sub.HasEdge(0, 3));
  EXPECT_EQ(sub.label(3), g.label(4));
  ASSERT_EQ(to_original.size(), 4u);
  EXPECT_EQ(to_original[3], 4u);
}

}  // namespace
}  // namespace cfl
