// Shared test helpers: paper figure fixtures and a brute-force subgraph
// isomorphism oracle used to validate every engine.

#ifndef CFL_TESTS_TEST_UTIL_H_
#define CFL_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "match/embedding.h"

namespace cfl {
namespace testing {

// Reference oracle: plain recursive backtracking in input vertex order with
// label filtering only. Exponential but obviously correct; use on small
// graphs. Returns all embeddings (capped at `limit`).
inline std::vector<Embedding> BruteForceEmbeddings(const Graph& q,
                                                   const Graph& g,
                                                   uint64_t limit = 1u << 20) {
  std::vector<Embedding> out;
  const uint32_t n = q.NumVertices();
  Embedding mapping(n, kInvalidVertex);
  std::vector<bool> used(g.NumVertices(), false);

  std::function<void(uint32_t)> rec = [&](uint32_t u) {
    if (out.size() >= limit) return;
    if (u == n) {
      out.push_back(mapping);
      return;
    }
    for (VertexId v : g.VerticesWithLabel(q.label(u))) {
      if (used[v]) continue;
      bool ok = true;
      for (VertexId w : q.Neighbors(u)) {
        if (w < u && !g.HasEdge(mapping[w], v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      mapping[u] = v;
      used[v] = true;
      rec(u + 1);
      used[v] = false;
      mapping[u] = kInvalidVertex;
    }
  };
  rec(0);
  return out;
}

inline uint64_t BruteForceCount(const Graph& q, const Graph& g) {
  return BruteForceEmbeddings(q, g).size();
}

// ---- Paper fixtures -----------------------------------------------------

// Labels A..E as 0..4 throughout.
inline constexpr Label kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

// Figure 3(a) query: u1:A, u2:B, u3:C, u4:D, u5:E;
// edges (u1,u2),(u1,u3),(u2,u3),(u2,u4),(u3,u5),(u4,u5). (0-based here.)
inline Graph Figure3Query() {
  return MakeGraph({kA, kB, kC, kD, kE},
                   {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}});
}

// Figure 3(b) data graph; the paper lists exactly three embeddings of the
// Figure 3(a) query: (v0,v2,v1,v5,v4), (v0,v2,v1,v5,v6), (v0,v2,v3,v5,v6).
inline Graph Figure3Data() {
  // v0:A v1:C v2:B v3:C v4:E v5:D v6:E
  return MakeGraph({kA, kC, kB, kC, kE, kD, kE},
                   {{0, 1},
                    {0, 2},
                    {0, 3},
                    {1, 2},
                    {2, 3},
                    {1, 4},
                    {1, 5},
                    {2, 5},
                    {3, 5},
                    {3, 6},
                    {5, 4},
                    {5, 6},
                    {1, 6}});
}

// Figure 7(a) query: u0:A, u1:B, u2:C, u3:D; tree edges (u0,u1),(u0,u2),
// (u1,u3); non-tree edges (u1,u2) [S-NTE] and (u2,u3) [C-NTE].
inline Graph Figure7Query() {
  return MakeGraph({kA, kB, kC, kD},
                   {{0, 1}, {0, 2}, {1, 3}, {1, 2}, {2, 3}});
}

// A data graph realizing the paper's Figure 7(c)-(e) CPI construction trace.
// Vertex ids follow the paper (v1..v13, v15); v0 and v14 are isolated
// fillers with an unused label so ids line up.
//
// Expected candidate sets:
//   after top-down (Fig 7(d)): u0:{v1,v2} u1:{v3,v5,v7} u2:{v4,v6,v8}
//                              u3:{v11,v12}
//   after refinement (Fig 7(e)): u0:{v1} u1:{v3,v5} u2:{v4,v6} u3:{v11,v12}
// and exactly two embeddings: (v1,v3,v4,v11) and (v1,v5,v6,v12).
inline Graph Figure7Data() {
  std::vector<Label> labels(16, kE);
  labels[1] = kA;   // v1
  labels[2] = kA;   // v2
  labels[3] = kB;   // v3
  labels[5] = kB;   // v5
  labels[7] = kB;   // v7
  labels[9] = kB;   // v9
  labels[4] = kC;   // v4
  labels[6] = kC;   // v6
  labels[8] = kC;   // v8
  labels[10] = kC;  // v10
  labels[11] = kD;  // v11
  labels[12] = kD;  // v12
  labels[13] = kD;  // v13
  labels[15] = kD;  // v15
  return MakeGraph(labels, {// v1: A hub on the left
                            {1, 3},
                            {1, 5},
                            {1, 7},
                            {1, 4},
                            {1, 6},
                            // v2: A hub on the right
                            {2, 9},
                            {2, 8},
                            {2, 10},
                            // B-C-D structure
                            {3, 4},
                            {3, 11},
                            {5, 6},
                            {5, 12},
                            {7, 6},
                            {7, 13},
                            {9, 10},
                            {9, 13},
                            {4, 11},
                            {6, 12},
                            {7, 8},
                            {8, 15},
                            // v14 (filler label) pads v10's degree to 3 so
                            // v10 survives the counting/degree stage and is
                            // pruned by CandVerify, as in the paper's trace.
                            {10, 14}});
}

}  // namespace testing
}  // namespace cfl

#endif  // CFL_TESTS_TEST_UTIL_H_
