// Tests for the dynamic-graph epoch layer (ISSUE 10): the GraphDelta
// overlay's merged adjacency against a std::set model, FoldDelta content
// equality with a from-scratch rebuild, snapshot isolation across commits,
// compaction gating on pinned epochs (the tsan lane's main prey), and
// EpochRef misuse death tests.

#include "dyn/dynamic_graph.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/validate.h"
#include "dyn/delta.h"
#include "dyn/epoch.h"
#include "dyn/fold.h"
#include "gen/rng.h"
#include "gen/synthetic.h"
#include "graph/graph_builder.h"

namespace cfl {
namespace {

using dyn::DirtyLabels;
using dyn::DynamicGraph;
using dyn::DynOptions;
using dyn::EpochManager;
using dyn::EpochRef;
using dyn::FoldDelta;
using dyn::GraphDelta;

Graph SmallBase(uint64_t seed, uint32_t n = 60) {
  SyntheticOptions options;
  options.num_vertices = n;
  options.average_degree = 4.0;
  options.num_labels = 4;
  options.seed = seed;
  return MakeSynthetic(options);
}

// Obviously-correct mirror of base graph + mutations. Tombstoned vertices
// keep their label (matching the fold's semantics) but lose all edges.
struct Model {
  std::vector<Label> labels;
  std::vector<bool> alive;
  std::vector<std::set<VertexId>> adj;
  std::vector<std::pair<VertexId, VertexId>> edge_list;  // u < v, sampling

  explicit Model(const Graph& g) {
    const uint32_t n = g.NumVertices();
    labels.resize(n);
    alive.assign(n, true);
    adj.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      labels[v] = g.label(v);
      for (VertexId w : g.Neighbors(v)) {
        adj[v].insert(w);
        if (w > v) edge_list.emplace_back(v, w);
      }
    }
  }

  VertexId AddVertex(Label l) {
    labels.push_back(l);
    alive.push_back(true);
    adj.emplace_back();
    return static_cast<VertexId>(labels.size() - 1);
  }

  void RemoveVertex(VertexId v) {
    for (VertexId w : adj[v]) adj[w].erase(v);
    adj[v].clear();
    alive[v] = false;
    std::erase_if(edge_list, [v](const std::pair<VertexId, VertexId>& e) {
      return e.first == v || e.second == v;
    });
  }

  void AddEdge(VertexId u, VertexId v) {
    adj[u].insert(v);
    adj[v].insert(u);
    edge_list.emplace_back(std::min(u, v), std::max(u, v));
  }

  void RemoveEdge(VertexId u, VertexId v) {
    adj[u].erase(v);
    adj[v].erase(u);
    std::pair<VertexId, VertexId> key{std::min(u, v), std::max(u, v)};
    std::erase(edge_list, key);
  }

  bool HasEdge(VertexId u, VertexId v) const { return adj[u].count(v) > 0; }

  Graph Rebuild() const {
    std::vector<std::pair<VertexId, VertexId>> edges(edge_list);
    std::sort(edges.begin(), edges.end());
    return MakeGraph(labels, edges);
  }

  // v's post-delta adjacency in the graph's (label, id) order.
  std::vector<VertexId> SortedNeighbors(VertexId v) const {
    std::vector<VertexId> out(adj[v].begin(), adj[v].end());
    std::sort(out.begin(), out.end(), [&](VertexId a, VertexId b) {
      if (labels[a] != labels[b]) return labels[a] < labels[b];
      return a < b;
    });
    return out;
  }
};

// Applies ~`ops` random mutations to both the delta and the model. Every
// op the model accepts the delta must accept too.
void Mutate(Rng& rng, uint32_t ops, GraphDelta* delta, Model* model) {
  for (uint32_t i = 0; i < ops; ++i) {
    const uint32_t n = static_cast<uint32_t>(model->labels.size());
    switch (rng.Below(8)) {
      case 0: {  // add vertex
        Label l = static_cast<Label>(rng.Below(5));
        VertexId id = kInvalidVertex;
        ASSERT_TRUE(delta->AddVertex(l, &id)) << delta->error();
        ASSERT_EQ(id, model->AddVertex(l));
        break;
      }
      case 1: {  // remove a random alive base vertex (not batch-added)
        VertexId v = rng.Below(n);
        if (v >= delta->BaseVertices() || !model->alive[v]) break;
        ASSERT_TRUE(delta->RemoveVertex(v)) << delta->error();
        model->RemoveVertex(v);
        break;
      }
      case 2:
      case 3: {  // remove a random existing edge
        if (model->edge_list.empty()) break;
        auto [u, v] =
            model->edge_list[rng.Below(model->edge_list.size())];
        ASSERT_TRUE(delta->RemoveEdge(u, v)) << delta->error();
        model->RemoveEdge(u, v);
        break;
      }
      default: {  // add a random missing edge between alive vertices
        VertexId u = rng.Below(n);
        VertexId v = rng.Below(n);
        if (u == v || !model->alive[u] || !model->alive[v]) break;
        if (model->HasEdge(u, v)) break;
        ASSERT_TRUE(delta->AddEdge(u, v)) << delta->error();
        model->AddEdge(u, v);
        break;
      }
    }
  }
}

// ---- overlay adjacency vs the set model ---------------------------------

TEST(GraphDeltaTest, MergedNeighborsMatchSetModel) {
  for (uint64_t trial = 0; trial < 10; ++trial) {
    Graph base = SmallBase(100 + trial);
    Model model(base);
    GraphDelta delta(base);
    Rng rng(900 + trial);
    Mutate(rng, 30, &delta, &model);
    delta.Seal();

    const uint32_t n = static_cast<uint32_t>(model.labels.size());
    ASSERT_EQ(delta.NewVertices(), n);
    std::vector<VertexId> merged;
    for (VertexId v = 0; v < n; ++v) {
      delta.MergedNeighbors(v, &merged);
      std::vector<VertexId> expected =
          model.alive[v] ? model.SortedNeighbors(v) : std::vector<VertexId>{};
      ASSERT_EQ(merged, expected) << "vertex " << v << " trial " << trial;

      // Per-label slices agree too (including labels v has no edges to).
      for (Label l = 0; l < 6; ++l) {
        std::vector<VertexId> by_label;
        if (model.alive[v]) {
          for (VertexId w : model.adj[v]) {
            if (model.labels[w] == l) by_label.push_back(w);
          }
          std::sort(by_label.begin(), by_label.end());
        }
        std::vector<VertexId> got;
        delta.MergedNeighborsWithLabel(v, l, &got);
        ASSERT_EQ(got, by_label) << "vertex " << v << " label " << l;
      }
    }
  }
}

TEST(GraphDeltaTest, RejectsInvalidOps) {
  Graph base = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  GraphDelta delta(base);

  EXPECT_FALSE(delta.AddEdge(0, 0));  // self-loop
  EXPECT_FALSE(delta.AddEdge(0, 1));  // already present
  EXPECT_FALSE(delta.RemoveEdge(0, 2));  // not present
  EXPECT_FALSE(delta.AddEdge(0, 99));  // out of range

  ASSERT_TRUE(delta.RemoveVertex(1));
  EXPECT_FALSE(delta.AddEdge(0, 1));     // dead endpoint
  EXPECT_FALSE(delta.RemoveVertex(1));   // already tombstoned
  EXPECT_FALSE(delta.RemoveEdge(1, 2));  // vanished with the vertex

  VertexId id = kInvalidVertex;
  ASSERT_TRUE(delta.AddVertex(7, &id));
  EXPECT_EQ(id, 3u);  // new ids start at base n
  EXPECT_FALSE(delta.RemoveVertex(id));  // same-batch removal rejected
  EXPECT_NE(delta.error(), "");
}

// ---- fold vs from-scratch rebuild ---------------------------------------

// Full content comparison through the public Graph API: adjacency, label
// index, NLF, mnd, degrees, and the hub index.
void ExpectGraphsEqual(const Graph& folded, const Graph& rebuilt) {
  ASSERT_EQ(folded.NumVertices(), rebuilt.NumVertices());
  ASSERT_EQ(folded.NumEdges(), rebuilt.NumEdges());
  ASSERT_EQ(folded.NumLabels(), rebuilt.NumLabels());
  ASSERT_EQ(folded.HasHubIndex(), rebuilt.HasHubIndex());
  ASSERT_EQ(folded.HubDegreeThreshold(), rebuilt.HubDegreeThreshold());
  for (VertexId v = 0; v < folded.NumVertices(); ++v) {
    ASSERT_EQ(folded.label(v), rebuilt.label(v)) << v;
    ASSERT_EQ(folded.degree(v), rebuilt.degree(v)) << v;
    ASSERT_EQ(folded.MaxNeighborDegree(v), rebuilt.MaxNeighborDegree(v)) << v;
    ASSERT_EQ(folded.IsHub(v), rebuilt.IsHub(v)) << v;
    std::span<const VertexId> fn = folded.Neighbors(v);
    std::span<const VertexId> rn = rebuilt.Neighbors(v);
    ASSERT_TRUE(std::equal(fn.begin(), fn.end(), rn.begin(), rn.end())) << v;
    std::span<const Graph::LabelCount> fc = folded.NeighborLabelCounts(v);
    std::span<const Graph::LabelCount> rc = rebuilt.NeighborLabelCounts(v);
    ASSERT_EQ(fc.size(), rc.size()) << v;
    for (size_t i = 0; i < fc.size(); ++i) {
      ASSERT_EQ(fc[i].label, rc[i].label) << v;
      ASSERT_EQ(fc[i].count, rc[i].count) << v;
    }
  }
  for (Label l = 0; l < folded.NumLabels(); ++l) {
    std::span<const VertexId> fv = folded.VerticesWithLabel(l);
    std::span<const VertexId> rv = rebuilt.VerticesWithLabel(l);
    ASSERT_TRUE(std::equal(fv.begin(), fv.end(), rv.begin(), rv.end())) << l;
    ASSERT_EQ(folded.LabelFrequency(l), rebuilt.LabelFrequency(l)) << l;
  }
}

TEST(FoldDeltaTest, FoldedGraphMatchesFromScratchRebuild) {
  for (uint64_t trial = 0; trial < 10; ++trial) {
    Graph base = SmallBase(200 + trial);
    Model model(base);
    GraphDelta delta(base);
    Rng rng(1700 + trial);
    Mutate(rng, 25, &delta, &model);
    delta.Seal();

    DirtyLabels dirty;
    Graph folded = FoldDelta(base, delta, &dirty);
    ValidationResult valid = ValidateGraph(folded);
    ASSERT_TRUE(valid.ok) << valid.error;
    ExpectGraphsEqual(folded, model.Rebuild());

    // Dirty-label oracle: any base vertex whose NLF or mnd moved must have
    // its label in the dirty set — that is exactly the soundness condition
    // the serve layer's plan invalidation relies on.
    for (VertexId v = 0; v < base.NumVertices(); ++v) {
      std::span<const Graph::LabelCount> before = base.NeighborLabelCounts(v);
      std::span<const Graph::LabelCount> after = folded.NeighborLabelCounts(v);
      bool nlf_moved =
          !std::equal(before.begin(), before.end(), after.begin(),
                      after.end(), [](const Graph::LabelCount& a, const Graph::LabelCount& b) {
                        return a.label == b.label && a.count == b.count;
                      });
      if (nlf_moved ||
          base.MaxNeighborDegree(v) != folded.MaxNeighborDegree(v)) {
        EXPECT_TRUE(dirty.Contains(base.label(v)))
            << "vertex " << v << " changed but label " << base.label(v)
            << " is not dirty (trial " << trial << ")";
      }
    }
    for (VertexId v : delta.Touched()) {
      EXPECT_TRUE(dirty.Contains(delta.LabelOf(v)));
    }
  }
}

TEST(FoldDeltaTest, TombstonesKeepLabelAndLoseEdges) {
  Graph base = MakeGraph({0, 1, 0, 1}, {{0, 1}, {1, 2}, {2, 3}});
  GraphDelta delta(base);
  ASSERT_TRUE(delta.RemoveVertex(1));
  delta.Seal();
  Graph folded = FoldDelta(base, delta);
  ASSERT_TRUE(ValidateGraph(folded).ok);
  EXPECT_EQ(folded.NumVertices(), 4u);
  EXPECT_EQ(folded.label(1), 1u);
  EXPECT_EQ(folded.StructuralDegree(1), 0u);
  EXPECT_EQ(folded.NumEdges(), 1u);  // only (2,3) survives
  // The label index still lists the tombstone (content-equal with a
  // rebuild over the same vertex set).
  std::span<const VertexId> l1 = folded.VerticesWithLabel(1);
  EXPECT_TRUE(std::find(l1.begin(), l1.end(), 1u) != l1.end());
}

// ---- snapshots and epochs -----------------------------------------------

TEST(DynamicGraphTest, SnapshotIsolationAcrossCommits) {
  DynamicGraph dg(MakeGraph({0, 1, 0}, {{0, 1}}),
                  DynOptions{0.0, false});
  dyn::Snapshot before = dg.Acquire();
  EXPECT_EQ(before.epoch(), 0u);
  EXPECT_FALSE(before.graph().HasEdge(1, 2));

  GraphDelta delta = dg.NewDelta(before);
  ASSERT_TRUE(delta.AddEdge(1, 2));
  dyn::ApplyResult result;
  ASSERT_FALSE(dg.Apply(std::move(delta), &result).has_value());
  EXPECT_EQ(result.epoch, 1u);
  EXPECT_EQ(result.added_edges, 1u);

  // The pinned snapshot still answers as of epoch 0.
  EXPECT_FALSE(before.graph().HasEdge(1, 2));
  dyn::Snapshot after = dg.Acquire();
  EXPECT_EQ(after.epoch(), 1u);
  EXPECT_TRUE(after.graph().HasEdge(1, 2));
  before.ReleasePin();
  after.ReleasePin();
}

TEST(DynamicGraphTest, StaleDeltaIsRejectedWholesale) {
  DynamicGraph dg(MakeGraph({0, 1, 0}, {{0, 1}}),
                  DynOptions{0.0, false});
  dyn::Snapshot snap = dg.Acquire();
  GraphDelta first = dg.NewDelta(snap);
  GraphDelta second = dg.NewDelta(snap);
  ASSERT_TRUE(first.AddEdge(1, 2));
  ASSERT_TRUE(second.AddEdge(0, 2));
  ASSERT_FALSE(dg.Apply(std::move(first)).has_value());

  std::optional<std::string> error = dg.Apply(std::move(second));
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("stale"), std::string::npos) << *error;
  // Nothing of the stale batch landed.
  snap.ReleasePin();
  dyn::Snapshot now = dg.Acquire();
  EXPECT_FALSE(now.graph().HasEdge(0, 2));
  EXPECT_EQ(now.epoch(), 1u);
}

TEST(DynamicGraphTest, EmptyDeltaCommitsNothing) {
  DynamicGraph dg(MakeGraph({0, 1}, {{0, 1}}), DynOptions{0.0, false});
  dyn::Snapshot snap = dg.Acquire();
  dyn::ApplyResult result;
  ASSERT_FALSE(dg.Apply(dg.NewDelta(snap), &result).has_value());
  EXPECT_EQ(result.epoch, 0u);
  EXPECT_EQ(dg.CurrentEpoch(), 0u);
}

TEST(DynamicGraphTest, CompactionWaitsForPinnedEpochs) {
  // Manual compaction so the test controls exactly when the rebuild runs.
  DynamicGraph dg(SmallBase(42), DynOptions{0.0, false});

  dyn::Snapshot s0 = dg.Acquire();
  GraphDelta delta = dg.NewDelta(s0);
  ASSERT_TRUE(delta.AddVertex(2));
  ASSERT_FALSE(dg.Apply(std::move(delta)).has_value());

  // Pin the *current* epoch, then pin the superseded one via s0 — the
  // compactor must wait for every epoch older than its target.
  dyn::Snapshot s1 = dg.Acquire();
  std::atomic<bool> compacted{false};
  std::thread compactor([&] {
    EXPECT_TRUE(dg.CompactNow());
    compacted.store(true, std::memory_order_release);
  });

  // While the old epoch stays pinned the compactor must not finish. A
  // bounded sleep cannot prove "never", but with tsan on this lane any
  // install racing the pinned reader would be flagged as well.
  usleep(50'000);
  EXPECT_FALSE(compacted.load(std::memory_order_acquire));
  EXPECT_EQ(dg.Stats().compactions, 0u);

  s0.ReleasePin();  // drain the old epoch: the rebuild may now install
  compactor.join();
  EXPECT_TRUE(compacted.load());
  EXPECT_EQ(dg.Stats().compactions, 1u);
  s1.ReleasePin();
}

TEST(DynamicGraphTest, BackgroundCompactionTriggersOnChurn) {
  // Tiny threshold: the very first batch crosses it.
  DynamicGraph dg(SmallBase(43), DynOptions{0.001, true});
  dyn::Snapshot snap = dg.Acquire();
  GraphDelta delta = dg.NewDelta(snap);
  ASSERT_TRUE(delta.AddVertex(1));
  ASSERT_TRUE(delta.AddVertex(3));
  ASSERT_FALSE(dg.Apply(std::move(delta)).has_value());
  snap.ReleasePin();

  // The compactor runs asynchronously; poll until it lands.
  for (int i = 0; i < 500; ++i) {
    obs::DynCounters stats = dg.Stats();
    if (stats.compactions + stats.compactions_abandoned > 0) break;
    usleep(10'000);
  }
  obs::DynCounters stats = dg.Stats();
  EXPECT_GE(stats.compactions + stats.compactions_abandoned, 1u);
}

TEST(EpochManagerTest, PinCountsAndDraining) {
  EpochManager m;
  EXPECT_EQ(m.current(), 0u);
  EpochRef a = m.Pin();
  EpochRef b = m.Pin();
  EXPECT_EQ(m.PinCount(0), 2u);
  EXPECT_EQ(m.Advance(), 1u);
  EpochRef c = m.Pin();
  EXPECT_EQ(c.epoch(), 1u);
  EXPECT_EQ(m.PinnedAtOrBelow(0), 2u);
  EXPECT_EQ(m.PinnedAtOrBelow(1), 3u);
  a.Release();
  b.Release();
  EXPECT_EQ(m.PinnedAtOrBelow(0), 0u);
  EXPECT_TRUE(m.WaitUntilDrained(0));  // already drained: returns at once
  c.Release();
}

TEST(EpochManagerTest, CancelFailsParkedWaiters) {
  EpochManager m;
  EpochRef pin = m.Pin();
  m.Advance();
  std::atomic<bool> woke{false};
  bool result = true;
  std::thread waiter([&] {
    result = m.WaitUntilDrained(0);  // parked: epoch 0 is pinned
    woke.store(true, std::memory_order_release);
  });
  usleep(20'000);
  EXPECT_FALSE(woke.load(std::memory_order_acquire));
  m.Cancel();
  waiter.join();
  EXPECT_FALSE(result);  // cancelled, not drained
  pin.Release();
}

// ---- misuse death tests -------------------------------------------------

TEST(EpochDeathTest, DoubleReleaseDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        EpochManager m;
        EpochRef ref = m.Pin();
        ref.Release();
        ref.Release();
      },
      "");
}

TEST(EpochDeathTest, LeakedPinAtManagerDestructionDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        auto* m = new EpochManager;
        EpochRef leaked = m->Pin();
        delete m;  // dies: a pin is still outstanding
        leaked.Release();
      },
      "");
}

}  // namespace
}  // namespace cfl
