// Focused tests for the leaf-match stage (paper Section 4.4): label-class
// partitioning, NEC combination counting, conflict handling within a class,
// capacity-aware counting on compressed graphs, and the paper's Figure 6
// worked arithmetic (3 x 2 = 6 completions).

#include "match/leaf_match.h"

#include <gtest/gtest.h>

#include "cpi/cpi_builder.h"
#include "decomp/bfs_tree.h"
#include "decomp/cfl_decomposition.h"
#include "graph/graph_builder.h"
#include "match/cfl_match.h"
#include "test_util.h"

namespace cfl {
namespace {

using testing::BruteForceCount;

// Drives a full CFL match and returns the count — the leaf stage is where
// these fixtures put all their weight.
uint64_t CflCount(const Graph& q, const Graph& g) {
  CflMatcher matcher(g);
  return matcher.Match(q).embeddings;
}

TEST(LeafMatchTest, PaperSection44Arithmetic) {
  // Reconstruction of the paper's Section 4.4 example shape: after core and
  // forest are matched, two label classes remain — one with 3 injective
  // assignments, one with 2 — giving 3 x 2 = 6 leaf completions.
  //
  // Query: hub A (label 0) with two G-leaves (label 1) and one F-leaf
  // (label 2) plus a second hub B (label 3) attached to A with one F-leaf.
  Graph q = MakeGraph({0, 1, 1, 2, 3, 2},
                      {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {4, 5}});
  // Data: a0 (A) adjacent to three G vertices (so C(2 leaves of label 1) has
  // C(3,2) x 2! = 6... we want exactly 3 injective pairs => 3 candidates,
  // ordered pairs = 3*2 = 6; and one F; b0 (B) adjacent to a0 and 2 Fs.
  GraphBuilder b(9);
  b.SetLabel(0, 0);                                  // a0
  b.SetLabel(1, 1);  b.SetLabel(2, 1);  b.SetLabel(3, 1);  // G's
  b.SetLabel(4, 2);                                  // F at a0
  b.SetLabel(5, 3);                                  // b0
  b.SetLabel(6, 2);  b.SetLabel(7, 2);               // F's at b0
  b.SetLabel(8, 4);                                  // spare
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(0, 4);
  b.AddEdge(0, 5);
  b.AddEdge(5, 6);
  b.AddEdge(5, 7);
  Graph g = std::move(b).Build();

  // Leaves of q: {1,2} (label 1, NEC pair), {3} (label 2), {5} (label 2).
  // Classes: label 1 -> ordered pairs from {v1,v2,v3} = 6;
  //          label 2 -> u3 from {v4}, u5 from {v6,v7} = 1 * 2 = 2.
  // Total = 6 * 2 = 12.
  EXPECT_EQ(BruteForceCount(q, g), 12u);
  EXPECT_EQ(CflCount(q, g), 12u);
}

TEST(LeafMatchTest, SameLabelClassesConflict) {
  // Two leaves with the same label but different parents share candidates —
  // the class machinery must forbid mapping both to the same data vertex.
  Graph q = MakeGraph({0, 1, 2, 2}, {{0, 1}, {0, 2}, {1, 3}});
  //   u2 (leaf of u0) and u3 (leaf of u1) both have label 2.
  GraphBuilder b(4);
  b.SetLabel(0, 0);
  b.SetLabel(1, 1);
  b.SetLabel(2, 2);  // the only label-2 vertex, adjacent to both hubs
  b.SetLabel(3, 9);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build();
  // Both leaves would map to v2 — impossible injectively.
  EXPECT_EQ(BruteForceCount(q, g), 0u);
  EXPECT_EQ(CflCount(q, g), 0u);
}

TEST(LeafMatchTest, NecFactorialCounting) {
  // k same-label leaves under one parent with m candidates: count must be
  // the falling factorial m(m-1)...(m-k+1).
  for (uint32_t k = 1; k <= 4; ++k) {
    for (uint32_t m = k; m <= 6; ++m) {
      GraphBuilder qb(1 + k);
      qb.SetLabel(0, 0);
      for (uint32_t i = 1; i <= k; ++i) {
        qb.SetLabel(i, 1);
        qb.AddEdge(0, i);
      }
      Graph q = std::move(qb).Build();

      GraphBuilder gb(1 + m);
      gb.SetLabel(0, 0);
      for (uint32_t i = 1; i <= m; ++i) {
        gb.SetLabel(i, 1);
        gb.AddEdge(0, i);
      }
      Graph g = std::move(gb).Build();

      uint64_t expected = 1;
      for (uint32_t i = 0; i < k; ++i) expected *= (m - i);
      EXPECT_EQ(CflCount(q, g), expected) << "k=" << k << " m=" << m;
    }
  }
}

TEST(LeafMatchTest, CapacityAwareOnCompressedGraphs) {
  // Hypervertex with multiplicity 3 hosting 2 leaves: P(3,2) = 6 ordered
  // assignments.
  GraphBuilder gb(2);
  gb.SetLabel(0, 0);
  gb.SetLabel(1, 1);
  gb.AddEdge(0, 1);
  gb.SetMultiplicities({1, 3});
  Graph g = std::move(gb).Build();

  Graph q = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  EXPECT_EQ(CflCount(q, g), 6u);

  // Three leaves: P(3,3) = 6; four leaves: impossible.
  Graph q3 = MakeGraph({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(CflCount(q3, g), 6u);
  Graph q4 = MakeGraph({0, 1, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(CflCount(q4, g), 0u);
}

TEST(LeafMatchTest, LeafCandidatesExcludeUsedVertices) {
  // A leaf's candidate is consumed by the core: the completion must fail.
  // Query: triangle A-B-C with a C leaf on A.
  Graph q = MakeGraph({0, 1, 2, 2}, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  // Data: triangle a-b-c with NO second C adjacent to a.
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(BruteForceCount(q, g), 0u);
  EXPECT_EQ(CflCount(q, g), 0u);

  // Adding one more C adjacent to a fixes it.
  Graph g2 = MakeGraph({0, 1, 2, 2}, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  EXPECT_EQ(BruteForceCount(q, g2), 1u);
  EXPECT_EQ(CflCount(q, g2), 1u);
}

TEST(LeafMatchTest, EnumerationExpandsAllAssignments) {
  // Star query with 2 same-label leaves over a 4-candidate star: callback
  // must fire 12 times (ordered pairs).
  Graph q = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  GraphBuilder gb(5);
  gb.SetLabel(0, 0);
  for (VertexId v = 1; v <= 4; ++v) {
    gb.SetLabel(v, 1);
    gb.AddEdge(0, v);
  }
  Graph g = std::move(gb).Build();

  CflMatcher matcher(g);
  MatchOptions options;
  uint64_t calls = 0;
  options.on_embedding = [&](const Embedding& m) {
    EXPECT_NE(m[1], m[2]);
    ++calls;
    return true;
  };
  MatchResult r = matcher.Match(q, options);
  EXPECT_EQ(calls, 12u);
  EXPECT_EQ(r.embeddings, 12u);
}

TEST(LeafMatchTest, SaturationOnHugeCounts) {
  // 30 same-label leaves over a 60-candidate hub: the count overflows
  // uint64 and must saturate at kNoLimit instead of wrapping.
  const uint32_t k = 30, m = 60;
  GraphBuilder qb(1 + k);
  qb.SetLabel(0, 0);
  for (uint32_t i = 1; i <= k; ++i) {
    qb.SetLabel(i, 1);
    qb.AddEdge(0, i);
  }
  Graph q = std::move(qb).Build();
  GraphBuilder gb(1 + m);
  gb.SetLabel(0, 0);
  for (uint32_t i = 1; i <= m; ++i) {
    gb.SetLabel(i, 1);
    gb.AddEdge(0, i);
  }
  Graph g = std::move(gb).Build();

  CflMatcher matcher(g);
  MatchResult r = matcher.Match(q);
  // (60)_30 is ~1e52; the saturating count reports kNoLimit and the cap
  // machinery reports reached_limit.
  EXPECT_EQ(r.embeddings, kNoLimit);
  EXPECT_TRUE(r.reached_limit);
}

}  // namespace
}  // namespace cfl
