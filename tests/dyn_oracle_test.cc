// Randomized update-vs-rebuild differential oracle (ISSUE 10).
//
// Drives DynamicGraph with random insert/delete batches and, after every
// commit, checks that each engine's answer on the incrementally folded
// epoch snapshot is identical to its answer on a from-scratch rebuild of
// the same logical graph — counts for every engine, full sorted embedding
// lists for CFL-Match. On a mismatch a greedy delete-one shrinker reduces
// the batch to a minimal reproducer and prints it with the seed, in the
// spirit of cfl_difftest.
//
// The main sweep commits 200 seeded batches (50 trials x 4 batches); a
// second suite re-runs a smaller sweep under aggressive compaction with a
// pinned old epoch, locking in engine-level snapshot isolation.

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/quicksi.h"
#include "baseline/vf2.h"
#include "check/validate.h"
#include "dyn/delta.h"
#include "dyn/dynamic_graph.h"
#include "dyn/fold.h"
#include "gen/query_gen.h"
#include "gen/rng.h"
#include "gen/synthetic.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "match/cfl_match.h"
#include "match/engine.h"
#include "parallel/parallel_match.h"

namespace cfl {
namespace {

using dyn::DynamicGraph;
using dyn::DynOptions;
using dyn::FoldDelta;
using dyn::GraphDelta;

// One recorded mutation; `a` is the label for kAddVertex, a vertex id for
// kRemoveVertex, an endpoint otherwise.
struct Op {
  enum Kind { kAddVertex, kRemoveVertex, kAddEdge, kRemoveEdge } kind;
  uint32_t a = 0;
  uint32_t b = 0;
};

std::string FormatOps(const std::vector<Op>& ops) {
  std::ostringstream out;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kAddVertex: out << "av " << op.a; break;
      case Op::kRemoveVertex: out << "rv " << op.a; break;
      case Op::kAddEdge: out << "ae " << op.a << ' ' << op.b; break;
      case Op::kRemoveEdge: out << "re " << op.a << ' ' << op.b; break;
    }
    out << "; ";
  }
  return out.str();
}

// Obviously-correct mirror of the evolving graph; tombstones keep their
// label and lose all edges, matching the fold's semantics.
struct Model {
  std::vector<Label> labels;
  std::vector<bool> alive;
  std::vector<std::set<VertexId>> adj;
  std::vector<std::pair<VertexId, VertexId>> edge_list;  // u < v

  explicit Model(const Graph& g) {
    const uint32_t n = g.NumVertices();
    labels.resize(n);
    alive.assign(n, true);
    adj.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      labels[v] = g.label(v);
      for (VertexId w : g.Neighbors(v)) {
        adj[v].insert(w);
        if (w > v) edge_list.emplace_back(v, w);
      }
    }
  }

  void Apply(const Op& op) {
    switch (op.kind) {
      case Op::kAddVertex:
        labels.push_back(op.a);
        alive.push_back(true);
        adj.emplace_back();
        break;
      case Op::kRemoveVertex:
        for (VertexId w : adj[op.a]) adj[w].erase(op.a);
        adj[op.a].clear();
        alive[op.a] = false;
        std::erase_if(edge_list,
                      [&](const std::pair<VertexId, VertexId>& e) {
                        return e.first == op.a || e.second == op.a;
                      });
        break;
      case Op::kAddEdge:
        adj[op.a].insert(op.b);
        adj[op.b].insert(op.a);
        edge_list.emplace_back(std::min(op.a, op.b), std::max(op.a, op.b));
        break;
      case Op::kRemoveEdge:
        adj[op.a].erase(op.b);
        adj[op.b].erase(op.a);
        std::erase(edge_list, std::pair<VertexId, VertexId>{
                                  std::min(op.a, op.b), std::max(op.a, op.b)});
        break;
    }
  }

  Graph Rebuild() const {
    std::vector<std::pair<VertexId, VertexId>> edges(edge_list);
    std::sort(edges.begin(), edges.end());
    return MakeGraph(labels, edges);
  }
};

// Replays `op` onto the delta; false (with the delta poisoned) if invalid.
bool ApplyToDelta(const Op& op, GraphDelta* delta) {
  switch (op.kind) {
    case Op::kAddVertex: return delta->AddVertex(static_cast<Label>(op.a));
    case Op::kRemoveVertex: return delta->RemoveVertex(op.a);
    case Op::kAddEdge: return delta->AddEdge(op.a, op.b);
    case Op::kRemoveEdge: return delta->RemoveEdge(op.a, op.b);
  }
  return false;
}

// Generates ~`target` random valid ops against `model`, advancing it.
std::vector<Op> GenerateBatch(Rng& rng, Model* model, uint32_t target,
                              uint32_t base_vertices) {
  std::vector<Op> ops;
  for (uint32_t i = 0; i < target; ++i) {
    const uint32_t n = static_cast<uint32_t>(model->labels.size());
    Op op{};
    switch (rng.Below(8)) {
      case 0:
        op = {Op::kAddVertex, static_cast<uint32_t>(rng.Below(5)), 0};
        break;
      case 1: {
        VertexId v = static_cast<VertexId>(rng.Below(n));
        if (v >= base_vertices || !model->alive[v]) continue;
        op = {Op::kRemoveVertex, v, 0};
        break;
      }
      case 2:
      case 3: {
        if (model->edge_list.empty()) continue;
        auto [u, v] = model->edge_list[rng.Below(model->edge_list.size())];
        op = {Op::kRemoveEdge, u, v};
        break;
      }
      default: {
        VertexId u = static_cast<VertexId>(rng.Below(n));
        VertexId v = static_cast<VertexId>(rng.Below(n));
        if (u == v || !model->alive[u] || !model->alive[v]) continue;
        if (model->adj[u].count(v) > 0) continue;
        op = {Op::kAddEdge, u, v};
        break;
      }
    }
    model->Apply(op);
    ops.push_back(op);
  }
  return ops;
}

// Folds base+ops and rebuilds base+ops from scratch. False when the
// (possibly shrunk) op list is not valid against `base`.
bool Replay(const Graph& base, const std::vector<Op>& ops, Graph* folded,
            Graph* rebuilt) {
  GraphDelta delta(base);
  Model model(base);
  for (const Op& op : ops) {
    if (!ApplyToDelta(op, &delta)) return false;
    model.Apply(op);
  }
  delta.Seal();
  *folded = FoldDelta(base, delta);
  *rebuilt = model.Rebuild();
  return true;
}

struct EngineSpec {
  const char* name;
  std::function<std::unique_ptr<SubgraphEngine>(const Graph&)> make;
};

const std::vector<EngineSpec>& Engines() {
  static const std::vector<EngineSpec>* engines = new std::vector<EngineSpec>{
      {"cfl", [](const Graph& g) { return MakeCflMatch(g); }},
      {"cfl-par2", [](const Graph& g) { return MakeParallelCflMatch(g, 2); }},
      {"vf2", [](const Graph& g) { return MakeVf2(g); }},
      {"quicksi", [](const Graph& g) { return MakeQuickSi(g); }},
  };
  return *engines;
}

uint64_t CountOn(const EngineSpec& spec, const Graph& data, const Graph& q) {
  return spec.make(data)->Run(q, MatchLimits{}).embeddings;
}

std::vector<Embedding> SortedEmbeddings(const Graph& data, const Graph& q) {
  CflMatcher matcher(data);
  MatchOptions options;
  std::vector<Embedding> out;
  options.on_embedding = [&out](const Embedding& e) {
    out.push_back(e);
    return true;
  };
  matcher.Match(q, options);
  std::sort(out.begin(), out.end());
  return out;
}

// Greedy delete-one shrinking: drop any op whose removal still reproduces
// the divergence, to a fixpoint.
std::vector<Op> ShrinkOps(
    const Graph& base, std::vector<Op> ops,
    const std::function<bool(const Graph&, const Graph&)>& diverges) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < ops.size(); ++i) {
      std::vector<Op> candidate = ops;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      Graph folded;
      Graph rebuilt;
      if (!Replay(base, candidate, &folded, &rebuilt)) continue;
      if (diverges(folded, rebuilt)) {
        ops = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return ops;
}

std::string DescribeQuery(const Graph& q) {
  std::ostringstream out;
  WriteGraph(q, out);
  return out.str();
}

// Checks every engine on (folded, rebuilt) for each query; on divergence,
// shrinks against `before` + `ops` and reports a minimal reproducer.
// Returns false on the first divergence.
bool CheckBatch(const Graph& before, const std::vector<Op>& ops,
                const Graph& folded, const Graph& rebuilt,
                const std::vector<Graph>& queries, uint64_t seed,
                uint32_t batch) {
  for (const Graph& q : queries) {
    for (const EngineSpec& spec : Engines()) {
      const uint64_t on_folded = CountOn(spec, folded, q);
      const uint64_t on_rebuilt = CountOn(spec, rebuilt, q);
      if (on_folded == on_rebuilt) continue;
      std::vector<Op> minimal = ShrinkOps(
          before, ops, [&](const Graph& f, const Graph& r) {
            return CountOn(spec, f, q) != CountOn(spec, r, q);
          });
      ADD_FAILURE() << "engine " << spec.name << " diverged: " << on_folded
                    << " on the folded epoch vs " << on_rebuilt
                    << " on the rebuild (seed " << seed << ", batch "
                    << batch << ")\nminimal batch: " << FormatOps(minimal)
                    << "\nquery:\n" << DescribeQuery(q);
      return false;
    }
    // Bit-identical full embedding lists, not just counts.
    if (SortedEmbeddings(folded, q) != SortedEmbeddings(rebuilt, q)) {
      std::vector<Op> minimal = ShrinkOps(
          before, ops, [&](const Graph& f, const Graph& r) {
            return SortedEmbeddings(f, q) != SortedEmbeddings(r, q);
          });
      ADD_FAILURE() << "embedding lists diverged (seed " << seed
                    << ", batch " << batch << ")\nminimal batch: "
                    << FormatOps(minimal) << "\nquery:\n"
                    << DescribeQuery(q);
      return false;
    }
  }
  return true;
}

Graph OracleBase(uint64_t seed) {
  SyntheticOptions options;
  options.num_vertices = 48;
  options.average_degree = 3.5;
  options.num_labels = 4;
  options.seed = seed;
  return MakeSynthetic(options);
}

// ---- the main sweep: 50 trials x 4 batches = 200 seeded batches ---------

TEST(DynOracleTest, TwoHundredSeededBatchesAcrossEngines) {
  constexpr uint64_t kTrials = 50;
  constexpr uint32_t kBatches = 4;
  for (uint64_t trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = 5000 + trial;
    Graph base = OracleBase(seed);
    Model model(base);
    // Compaction off: this sweep isolates the incremental fold path.
    DynamicGraph dg(base, DynOptions{0.0, false});
    Rng rng(seed * 31 + 7);

    for (uint32_t batch = 0; batch < kBatches; ++batch) {
      dyn::Snapshot snap = dg.Acquire();
      Graph before = snap.graph();  // copy: the shrinker's base
      std::vector<Op> ops =
          GenerateBatch(rng, &model, 10, snap.graph().NumVertices());

      GraphDelta delta = dg.NewDelta(snap);
      for (const Op& op : ops) {
        ASSERT_TRUE(ApplyToDelta(op, &delta)) << delta.error();
      }
      ASSERT_FALSE(dg.Apply(std::move(delta)).has_value());
      snap.ReleasePin();

      dyn::Snapshot now = dg.Acquire();
      const Graph& folded = now.graph();
      Graph rebuilt = model.Rebuild();
      ValidationResult valid = ValidateGraph(folded);
      ASSERT_TRUE(valid.ok) << valid.error << " (seed " << seed << ")";

      std::vector<Graph> queries =
          GenerateQuerySet(rebuilt, 2, 5, /*sparse=*/true, seed + batch);
      if (!CheckBatch(before, ops, folded, rebuilt, queries, seed, batch)) {
        return;  // one shrunk reproducer is worth more than a cascade
      }
      now.ReleasePin();
    }
  }
}

// ---- the same oracle under aggressive compaction ------------------------

TEST(DynOracleTest, OracleHoldsUnderAggressiveCompactionAndPinnedEpochs) {
  constexpr uint64_t kTrials = 8;
  constexpr uint32_t kBatches = 3;
  for (uint64_t trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = 9000 + trial;
    Graph base = OracleBase(seed);
    Model model(base);
    // Any churn triggers the background compactor; while `pinned` is held
    // it must park, not install (tsan on this lane watches the dance).
    DynamicGraph dg(base, DynOptions{0.001, true});
    Rng rng(seed * 17 + 3);

    std::vector<Graph> queries = GenerateQuerySet(base, 2, 5, true, seed);
    dyn::Snapshot pinned = dg.Acquire();
    std::vector<uint64_t> pinned_counts;
    for (const Graph& q : queries) {
      pinned_counts.push_back(CountOn(Engines()[0], pinned.graph(), q));
    }

    for (uint32_t batch = 0; batch < kBatches; ++batch) {
      dyn::Snapshot snap = dg.Acquire();
      std::vector<Op> ops =
          GenerateBatch(rng, &model, 8, snap.graph().NumVertices());
      GraphDelta delta = dg.NewDelta(snap);
      for (const Op& op : ops) {
        ASSERT_TRUE(ApplyToDelta(op, &delta)) << delta.error();
      }
      std::optional<std::string> error = dg.Apply(std::move(delta));
      ASSERT_FALSE(error.has_value()) << *error;
      snap.ReleasePin();

      dyn::Snapshot now = dg.Acquire();
      Graph rebuilt = model.Rebuild();
      for (const Graph& q : queries) {
        EXPECT_EQ(CountOn(Engines()[0], now.graph(), q),
                  CountOn(Engines()[0], rebuilt, q))
            << "seed " << seed << " batch " << batch;
      }
      now.ReleasePin();
    }

    // The pinned epoch still answers exactly as before any batch landed.
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(CountOn(Engines()[0], pinned.graph(), queries[i]),
                pinned_counts[i])
          << "snapshot isolation broken (seed " << seed << ")";
    }
    pinned.ReleasePin();

    // Drained now: force a synchronous compaction and re-verify against
    // the rebuild — the compacted epoch must be answer-identical too.
    dg.CompactNow();
    dyn::Snapshot compacted = dg.Acquire();
    Graph rebuilt = model.Rebuild();
    for (const Graph& q : queries) {
      EXPECT_EQ(CountOn(Engines()[0], compacted.graph(), q),
                CountOn(Engines()[0], rebuilt, q))
          << "post-compaction divergence (seed " << seed << ")";
    }
    compacted.ReleasePin();
  }
}

}  // namespace
}  // namespace cfl
