// Tests for the correctness-tooling layer (src/check/): the CFL_CHECK macro
// family and the structural validators. Every validator is exercised both
// on known-good structures (must pass) and on deliberately corrupted copies
// (must fail, with the failure attributed to the right rule — a validator
// that flags the wrong invariant would mislead whoever debugs a real
// corruption).

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.h"
#include "check/test_access.h"
#include "check/validate.h"
#include "cpi/cpi_builder.h"
#include "decomp/bfs_tree.h"
#include "decomp/cfl_decomposition.h"
#include "decomp/nec.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace cfl {
namespace {

using ::cfl::testing::Figure3Data;
using ::cfl::testing::Figure3Query;
using ::cfl::testing::Figure7Data;
using ::cfl::testing::Figure7Query;
using ::cfl::testing::kA;
using ::cfl::testing::kB;
using ::cfl::testing::kC;
using ::cfl::testing::kD;

// Asserts the validator fails and attributes the failure to the right rule.
void ExpectFailureContaining(const ValidationResult& r,
                             const std::string& needle) {
  ASSERT_FALSE(r.ok) << "validator accepted a corrupted structure";
  EXPECT_NE(r.error.find(needle), std::string::npos)
      << "failure \"" << r.error << "\" does not mention \"" << needle
      << "\"";
}

// ---- CFL_CHECK macros -----------------------------------------------------

TEST(CheckMacros, PassingChecksAreSilent) {
  CFL_CHECK(true) << "never evaluated";
  CFL_CHECK_EQ(2 + 2, 4);
  CFL_CHECK_LT(1, 2) << "context";
  CFL_DCHECK(true);
  CFL_DCHECK_GE(5, 5);
}

TEST(CheckMacrosDeathTest, FailureReportsExpressionAndContext) {
  EXPECT_DEATH(CFL_CHECK(1 == 2) << " extra context " << 42,
               "CFL_CHECK failed.*1 == 2.*extra context 42");
}

TEST(CheckMacrosDeathTest, ComparisonFailureReportsValues) {
  int lhs = 3;
  int rhs = 7;
  EXPECT_DEATH(CFL_CHECK_EQ(lhs, rhs) << " while testing",
               "lhs == rhs.*\\(3 vs 7\\).*while testing");
}

#if CFL_DCHECK_IS_ON
TEST(CheckMacrosDeathTest, DchecksActiveInDebugBuilds) {
  EXPECT_DEATH(CFL_DCHECK(false) << " debug only", "CFL_CHECK failed");
}
#else
TEST(CheckMacros, DchecksCompiledOutInReleaseBuilds) {
  int evaluations = 0;
  // The condition is dead: it must not run (and must not abort).
  CFL_DCHECK(++evaluations > 0) << " never printed";
  EXPECT_EQ(evaluations, 0);
}
#endif

// ---- ValidateGraph --------------------------------------------------------

TEST(ValidateGraphTest, AcceptsPaperFixtures) {
  EXPECT_TRUE(ValidateGraph(Figure3Query()).ok);
  EXPECT_TRUE(ValidateGraph(Figure3Data()).ok);
  EXPECT_TRUE(ValidateGraph(Figure7Data()).ok);
}

TEST(ValidateGraphTest, AcceptsCompressedGraphWithSelfLoop) {
  GraphBuilder b(3);
  b.AllowSelfLoops();
  b.SetLabel(0, kA);
  b.SetLabel(1, kB);
  b.SetLabel(2, kB);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 1);  // clique class of two merged B vertices
  b.SetMultiplicities({1, 2, 1});
  EXPECT_TRUE(ValidateGraph(std::move(b).Build()).ok);
}

TEST(ValidateGraphTest, CatchesUnsortedAdjacency) {
  Graph g = Figure3Data();
  std::vector<VertexId>& nb = GraphTestAccess::Neighbors(g);
  // v0's adjacency is {2, 1, 3} in (label, id) order (v2 has label B; v1 and
  // v3 label C); swapping the first two entries puts a C before the B.
  std::swap(nb[0], nb[1]);
  ExpectFailureContaining(ValidateGraph(g), "not strictly ascending");
}

TEST(ValidateGraphTest, CatchesAsymmetricAdjacency) {
  Graph g = Figure3Data();
  // v0's adjacency {2,1,3} -> {2,1,4}: stays (label, id)-sorted (v4 carries
  // label E), but v4 does not list v0 back.
  GraphTestAccess::Neighbors(g)[2] = 4;
  ExpectFailureContaining(ValidateGraph(g), "asymmetric");
}

TEST(ValidateGraphTest, CatchesWrongEdgeCount) {
  Graph g = Figure3Data();
  ++GraphTestAccess::NumEdges(g);
  ExpectFailureContaining(ValidateGraph(g), "NumEdges");
}

TEST(ValidateGraphTest, CatchesLabelIndexInconsistency) {
  Graph g = Figure3Data();
  ++GraphTestAccess::LabelFrequency(g)[kA];
  ExpectFailureContaining(ValidateGraph(g), "LabelFrequency");
}

TEST(ValidateGraphTest, CatchesNlfDrift) {
  Graph g = Figure3Data();
  ++GraphTestAccess::Nlf(g)[0].count;
  ExpectFailureContaining(ValidateGraph(g), "NLF");
}

TEST(ValidateGraphTest, CatchesWrongEffectiveDegree) {
  Graph g = Figure3Data();
  ++GraphTestAccess::EffectiveDegree(g)[3];
  ExpectFailureContaining(ValidateGraph(g), "degree(3)");
}

TEST(ValidateGraphTest, CatchesWrongMaxNeighborDegree) {
  Graph g = Figure3Data();
  ++GraphTestAccess::Mnd(g)[5];
  ExpectFailureContaining(ValidateGraph(g), "MaxNeighborDegree");
}

TEST(ValidateGraphTest, CatchesSelfLoopAtSingletonVertex) {
  GraphBuilder b(2);
  b.AllowSelfLoops();
  b.SetLabel(0, kA);
  b.SetLabel(1, kB);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  b.SetMultiplicities({1, 2});
  Graph g = std::move(b).Build();
  ASSERT_TRUE(ValidateGraph(g).ok);
  // Demote the clique class to a singleton: the self-loop becomes illegal.
  GraphTestAccess::Multiplicity(g)[1] = 1;
  GraphTestAccess::EffectiveNumVertices(g) = 2;
  ExpectFailureContaining(ValidateGraph(g), "self-loop");
}

// ---- ValidateBfsTree ------------------------------------------------------

TEST(ValidateBfsTreeTest, AcceptsBuiltTree) {
  Graph q = Figure7Query();
  EXPECT_TRUE(ValidateBfsTree(q, BuildBfsTree(q, 0)).ok);
}

TEST(ValidateBfsTreeTest, CatchesNonEdgeParent) {
  Graph q = Figure7Query();
  BfsTree tree = BuildBfsTree(q, 0);
  // u3's parent is u1; u0 is not adjacent to u3.
  tree.parent[3] = 0;
  ExpectFailureContaining(ValidateBfsTree(q, tree), "not a query edge");
}

TEST(ValidateBfsTreeTest, CatchesWrongLevel) {
  Graph q = Figure7Query();
  BfsTree tree = BuildBfsTree(q, 0);
  ++tree.level[2];
  ExpectFailureContaining(ValidateBfsTree(q, tree), "level");
}

TEST(ValidateBfsTreeTest, CatchesMisclassifiedNonTreeEdge) {
  Graph q = Figure7Query();
  BfsTree tree = BuildBfsTree(q, 0);
  ASSERT_FALSE(tree.non_tree_edges.empty());
  tree.non_tree_edges[0].same_level = !tree.non_tree_edges[0].same_level;
  ExpectFailureContaining(ValidateBfsTree(q, tree), "misclassified");
}

// ---- ValidateCpi ----------------------------------------------------------

struct CpiFixture {
  Graph query = Figure7Query();
  Graph data = Figure7Data();
  BfsTree tree;
  Cpi cpi;

  CpiFixture() {
    tree = BuildBfsTree(query, 0);
    cpi = BuildCpi(query, data, tree, CpiStrategy::kRefined);
  }
};

TEST(ValidateCpiTest, AcceptsBuiltCpi) {
  CpiFixture f;
  EXPECT_TRUE(ValidateCpi(f.query, f.data, f.cpi).ok);
}

TEST(ValidateCpiTest, AcceptsAllStrategies) {
  CpiFixture f;
  for (CpiStrategy strategy :
       {CpiStrategy::kNaive, CpiStrategy::kTopDown, CpiStrategy::kRefined}) {
    Cpi cpi = BuildCpi(f.query, f.data, f.tree, strategy);
    EXPECT_TRUE(ValidateCpi(f.query, f.data, cpi).ok);
  }
}

TEST(ValidateCpiTest, CatchesUnsortedCandidates) {
  CpiFixture f;
  // u1's refined candidates are {v3, v5}.
  std::span<VertexId> cands = CpiTestAccess::Candidates(f.cpi, 1);
  ASSERT_GE(cands.size(), 2u);
  std::swap(cands.front(), cands.back());
  ExpectFailureContaining(ValidateCpi(f.query, f.data, f.cpi),
                          "not strictly ascending");
}

TEST(ValidateCpiTest, CatchesWrongLabelCandidate) {
  CpiFixture f;
  // Root candidate set becomes {v4}, which carries label C, not A.
  std::span<VertexId> root_cands = CpiTestAccess::Candidates(f.cpi, 0);
  ASSERT_EQ(root_cands.size(), 1u);
  root_cands[0] = 4;
  ExpectFailureContaining(ValidateCpi(f.query, f.data, f.cpi), "label");
}

TEST(ValidateCpiTest, CatchesOutOfRangePosition) {
  CpiFixture f;
  // Non-root vertices store positions into their candidate array; position
  // 200 is far outside any of them. The clobbered entry also breaks the
  // exact block correspondence, which is the rule that must fire.
  for (VertexId u = 1; u < f.query.NumVertices(); ++u) {
    std::span<uint32_t> adj = CpiTestAccess::AdjEntries(f.cpi, u);
    if (adj.empty()) continue;
    const uint32_t saved = adj.back();
    adj.back() = 200;
    ValidationResult r = ValidateCpi(f.query, f.data, f.cpi);
    ASSERT_FALSE(r.ok) << "out-of-range position in u=" << u << " accepted";
    adj.back() = saved;
  }
}

TEST(ValidateCpiTest, CatchesDroppedAdjacencyEntry) {
  CpiFixture f;
  // Shrinking u1's entry slice by one (final relative offset plus the
  // arena-start table for every later vertex) makes u1's last block miss a
  // real data-graph edge — the silent embedding-dropping bug class.
  std::span<uint32_t> offsets = CpiTestAccess::AdjOffsets(f.cpi, 1);
  ASSERT_FALSE(CpiTestAccess::AdjEntries(f.cpi, 1).empty());
  ASSERT_FALSE(offsets.empty());
  --offsets.back();
  std::vector<uint64_t>& start = CpiTestAccess::AdjEntryStart(f.cpi);
  for (size_t u = 2; u < start.size(); ++u) --start[u];
  ExpectFailureContaining(ValidateCpi(f.query, f.data, f.cpi), "misses");
}

TEST(ValidateCpiTest, CatchesPhantomAdjacencyEntry) {
  CpiFixture f;
  // u3's candidates are {v11, v12}; its parent u1 has candidates {v3, v5}.
  // v3 is adjacent to v11 only and v5 to v12 only, so the blocks are {0}
  // and {1}. Moving the block boundary hands v5's entry to v3's block,
  // which then claims a data edge (v3, v12) that does not exist.
  std::span<uint32_t> offsets = CpiTestAccess::AdjOffsets(f.cpi, 3);
  ASSERT_EQ(offsets.size(), 3u);
  ASSERT_EQ(offsets[0], 0u);
  ASSERT_EQ(offsets[1], 1u);
  ASSERT_EQ(offsets[2], 2u);
  offsets[1] = 2;
  ExpectFailureContaining(ValidateCpi(f.query, f.data, f.cpi),
                          "without a matching data-graph edge");
}

TEST(ValidateCpiTest, CatchesBrokenOffsets) {
  CpiFixture f;
  std::span<uint32_t> offsets = CpiTestAccess::AdjOffsets(f.cpi, 1);
  ASSERT_FALSE(offsets.empty());
  ++offsets.back();
  ExpectFailureContaining(ValidateCpi(f.query, f.data, f.cpi), "partition");
}

// ---- ValidateDecomposition ------------------------------------------------

// Triangle {0,1,2} with a pendant leaf 3 on vertex 0.
Graph TriangleWithPendant() {
  return MakeGraph({kA, kB, kC, kD}, {{0, 1}, {0, 2}, {1, 2}, {0, 3}});
}

TEST(ValidateDecompositionTest, AcceptsCoreQueries) {
  Graph q = TriangleWithPendant();
  EXPECT_TRUE(ValidateDecomposition(q, DecomposeCfl(q)).ok);
  Graph fig3 = Figure3Query();
  EXPECT_TRUE(ValidateDecomposition(fig3, DecomposeCfl(fig3)).ok);
}

TEST(ValidateDecompositionTest, AcceptsTreeQuery) {
  Graph path = MakeGraph({kA, kB, kC}, {{0, 1}, {1, 2}});
  EXPECT_TRUE(ValidateDecomposition(path, DecomposeCfl(path, 1)).ok);
}

TEST(ValidateDecompositionTest, CatchesLeafPlacedInCore) {
  Graph q = TriangleWithPendant();
  CflDecomposition d = DecomposeCfl(q);
  ASSERT_EQ(d.leaf, std::vector<VertexId>({3}));
  // Promote the pendant leaf into the core-set: the core is no longer the
  // 2-core.
  d.klass[3] = VertexClass::kCore;
  d.core.push_back(3);
  d.leaf.clear();
  ExpectFailureContaining(ValidateDecomposition(q, d), "2-core");
}

TEST(ValidateDecompositionTest, CatchesLeafMisclassifiedAsForest) {
  Graph q = TriangleWithPendant();
  CflDecomposition d = DecomposeCfl(q);
  d.klass[3] = VertexClass::kForest;
  d.forest = {3};
  d.leaf.clear();
  ExpectFailureContaining(ValidateDecomposition(q, d), "degree");
}

TEST(ValidateDecompositionTest, CatchesKlassListDisagreement) {
  Graph q = TriangleWithPendant();
  CflDecomposition d = DecomposeCfl(q);
  d.klass[1] = VertexClass::kForest;  // lists still say core
  ExpectFailureContaining(ValidateDecomposition(q, d), "klass disagrees");
}

TEST(ValidateDecompositionTest, CatchesMissingConnection) {
  Graph q = TriangleWithPendant();
  CflDecomposition d = DecomposeCfl(q);
  ASSERT_FALSE(d.connections.empty());
  d.connections.clear();
  ExpectFailureContaining(ValidateDecomposition(q, d), "connection");
}

// ---- ValidateNecClasses ---------------------------------------------------

// v1 and v2 are non-adjacent twins (label B, both adjacent to exactly v0).
Graph TwinStar() {
  return MakeGraph({kA, kB, kB, kC}, {{0, 1}, {0, 2}, {0, 3}});
}

TEST(ValidateNecClassesTest, AcceptsComputedClasses) {
  Graph g = TwinStar();
  EXPECT_TRUE(ValidateNecClasses(g, ComputeNecClasses(g)).ok);
  Graph fig3 = Figure3Data();
  EXPECT_TRUE(ValidateNecClasses(fig3, ComputeNecClasses(fig3)).ok);
}

TEST(ValidateNecClassesTest, CatchesMergedNonEquivalentVertices) {
  Graph g = TwinStar();
  // v3 has a different label; forcing it into the twins' class is invalid.
  std::vector<std::vector<VertexId>> classes = {{0}, {1, 2, 3}};
  ExpectFailureContaining(ValidateNecClasses(g, classes), "label");
}

TEST(ValidateNecClassesTest, CatchesSplitEquivalentVertices) {
  Graph g = TwinStar();
  std::vector<std::vector<VertexId>> classes = {{0}, {1}, {2}, {3}};
  ExpectFailureContaining(ValidateNecClasses(g, classes), "merged");
}

TEST(ValidateNecClassesTest, CatchesDifferentNeighborhoods) {
  Graph g = MakeGraph({kA, kB, kB}, {{0, 1}, {1, 2}});
  std::vector<std::vector<VertexId>> classes = {{0}, {1, 2}};
  ExpectFailureContaining(ValidateNecClasses(g, classes), "neighborhoods");
}

// ---- ValidateEmbedding ----------------------------------------------------

TEST(ValidateEmbeddingTest, AcceptsPaperEmbeddings) {
  Graph q = Figure3Query();
  Graph g = Figure3Data();
  // The paper lists (v0, v2, v1, v5, v4) among the three embeddings.
  EXPECT_TRUE(ValidateEmbedding(q, g, {0, 2, 1, 5, 4}).ok);
}

TEST(ValidateEmbeddingTest, CatchesNonInjectiveMapping) {
  Graph q = MakeGraph({kA, kB, kB}, {{0, 1}, {0, 2}});
  Graph g = MakeGraph({kA, kB, kB}, {{0, 1}, {0, 2}});
  ExpectFailureContaining(ValidateEmbedding(q, g, {0, 1, 1}), "absorbs");
}

TEST(ValidateEmbeddingTest, CatchesLabelViolation) {
  Graph q = Figure3Query();
  Graph g = Figure3Data();
  // u1 carries label B but v1 carries label C.
  ExpectFailureContaining(ValidateEmbedding(q, g, {0, 1, 2, 5, 4}),
                          "label");
}

TEST(ValidateEmbeddingTest, CatchesMissingEdge) {
  Graph q = Figure3Query();
  Graph g = Figure3Data();
  // Labels all match (v3 carries C like v1 does), but the query edge
  // (u2, u4) would need the absent data edge (v3, v4).
  ExpectFailureContaining(ValidateEmbedding(q, g, {0, 2, 3, 5, 4}),
                          "no data edge");
}

TEST(ValidateEmbeddingTest, CatchesIncompleteMapping) {
  Graph q = Figure3Query();
  Graph g = Figure3Data();
  ExpectFailureContaining(
      ValidateEmbedding(q, g, {0, 2, 1, 5, kInvalidVertex}), "unmatched");
}

TEST(ValidateEmbeddingTest, RespectsMultiplicityOnCompressedGraphs) {
  // Data: hypervertex v1 stands for two B vertices forming a clique
  // (self-loop); query asks for an adjacent B-B pair.
  GraphBuilder b(2);
  b.AllowSelfLoops();
  b.SetLabel(0, kA);
  b.SetLabel(1, kB);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  b.SetMultiplicities({1, 2});
  Graph data = std::move(b).Build();
  Graph q = MakeGraph({kA, kB, kB}, {{0, 1}, {0, 2}, {1, 2}});

  // Both B query vertices may co-map into the clique class...
  EXPECT_TRUE(ValidateEmbedding(q, data, {0, 1, 1}).ok);
  // ...but a third occupant exceeds the multiplicity.
  Graph q3 = MakeGraph({kA, kB, kB, kB},
                       {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  ExpectFailureContaining(ValidateEmbedding(q3, data, {0, 1, 1, 1}),
                          "multiplicity");
}

}  // namespace
}  // namespace cfl
