// Shared machinery for the figure/table reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper (see
// DESIGN.md §3). All honor:
//   CFL_BENCH_SCALE        graph-size multiplier; "full" = paper scale
//   CFL_BENCH_QUERIES      queries per query set (paper: 100)
//   CFL_BENCH_TIME_LIMIT_S per-query-set budget standing in for the paper's
//                          5-hour limit (exceeding it prints "INF")
//   CFL_BENCH_JSON         path of a JSON-lines file; when set, every
//                          measured query-set result is also appended there
//                          as one machine-readable JSON object
// Defaults keep the whole suite at minutes scale.

#ifndef CFL_BENCH_BENCH_COMMON_H_
#define CFL_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/graph.h"
#include "graph/graph_stats.h"
#include "kernels/kernels.h"
#include "harness/env.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "match/engine.h"
#include "obs/stats.h"
#include "parallel/parallel_match.h"

namespace cfl::bench {

struct Config {
  double scale = 0.25;
  uint32_t queries_per_set = 8;
  double set_budget_seconds = 5.0;
  uint64_t max_embeddings = 100'000;  // the paper's default #embeddings
  uint32_t threads = 1;               // CFL-Match enumeration threads
};

inline Config LoadConfig() {
  Config c;
  c.scale = BenchScale(c.scale);
  c.queries_per_set = BenchQueries(c.queries_per_set);
  c.set_budget_seconds = BenchTimeLimitSeconds(c.set_budget_seconds);
  c.threads = BenchThreads(c.threads);
  return c;
}

inline RunConfig MakeRunConfig(const Config& c) {
  RunConfig rc;
  rc.per_query.max_embeddings = c.max_embeddings;
  rc.set_budget_seconds = c.set_budget_seconds;
  rc.threads = c.threads;
  return rc;
}

// The engine every bench means by "CFL-Match" under the current config:
// the serial matcher at 1 thread, the root-partitioned parallel matcher
// (identical counts, same MatchLimits contract) when CFL_BENCH_THREADS > 1.
inline std::unique_ptr<SubgraphEngine> MakeDefaultCflEngine(const Graph& g,
                                                            const Config& c) {
  if (c.threads > 1) return MakeParallelCflMatch(g, c.threads);
  return MakeCflMatch(g);
}

// Paper Table 3 query sizes: Human (and the large-graph appendix datasets)
// get small queries; everything else gets 25..200. Sizes that don't fit the
// (possibly scaled-down) data graph are dropped.
inline std::vector<uint32_t> QuerySizes(const std::string& dataset,
                                        const Graph& g) {
  std::vector<uint32_t> sizes;
  if (dataset == "human" || dataset == "wordnet" || dataset == "dblp") {
    sizes = {10, 15, 20, 25};
  } else {
    sizes = {25, 50, 100, 200};
  }
  std::vector<uint32_t> fitting;
  for (uint32_t s : sizes) {
    if (s * 3 <= g.NumVertices()) fitting.push_back(s);
  }
  return fitting;
}

// The paper's default query size for a dataset, clamped to the graph.
inline uint32_t DefaultQuerySize(const std::string& dataset, const Graph& g) {
  uint32_t want = (dataset == "human" || dataset == "wordnet" ||
                   dataset == "dblp")
                      ? 15
                      : 50;
  while (want > 4 && want * 3 > g.NumVertices()) want /= 2;
  return want;
}

inline std::string SetName(uint32_t size, bool sparse) {
  return "q" + std::to_string(size) + (sparse ? "S" : "N");
}

// Deterministic query-set seeds: one stream per (dataset hash, size, S/N).
inline uint64_t SetSeed(const std::string& dataset, uint32_t size,
                        bool sparse) {
  uint64_t h = 1099511628211ull;
  for (char ch : dataset) h = (h ^ static_cast<uint8_t>(ch)) * 16777619ull;
  return h ^ (static_cast<uint64_t>(size) << 20) ^ (sparse ? 1 : 0);
}

inline std::vector<Graph> MakeQuerySet(const Graph& g,
                                       const std::string& dataset,
                                       uint32_t size, bool sparse,
                                       const Config& c) {
  return GenerateQuerySet(g, c.queries_per_set, size, sparse,
                          SetSeed(dataset, size, sparse));
}

// The paper's default synthetic data graph, scaled.
inline Graph MakeDefaultSynthetic(const Config& c, uint64_t seed = 20160626) {
  SyntheticOptions options;
  options.num_vertices =
      std::max<uint32_t>(1000, static_cast<uint32_t>(100'000 * c.scale));
  options.average_degree = 8.0;
  options.num_labels = 50;
  options.seed = seed;
  return MakeSynthetic(options);
}

inline Graph MakeBenchGraph(const std::string& dataset, const Config& c) {
  if (dataset == "synthetic") return MakeDefaultSynthetic(c);
  return MakeDatasetLike(dataset, c.scale);
}

// Appends one JSON object (one line) describing a measured query-set result
// to the CFL_BENCH_JSON file, if that knob is set. The schema is flat on
// purpose so downstream tooling can `jq`/pandas it without schema files:
//   {"artifact":..., "dataset":..., "set":..., "engine":..., "isa":...,
//    "scale":...,
//    "threads":..., "queries_run":..., "inf":..., "avg_total_ms":...,
//    "avg_order_ms":..., "avg_enum_ms":..., "avg_index_entries":...,
//    "total_embeddings":...,
//    "stats_enabled":..., "candidates_generated":..., "candidates_pruned":...,
//    "cpi_candidate_entries":..., "cpi_adjacency_entries":...,
//    "backward_probes":..., "hub_probes":..., "partials_discarded":...,
//    "core_visits":..., "leaf_calls":...}
// The stats_* tail is the QuerySetResult::stats roll-up (obs::StatsTotals,
// summed over the set's first repetition; see src/obs/stats.h).
inline void AppendJsonResult(const std::string& artifact,
                             const std::string& dataset,
                             const std::string& set,
                             const std::string& engine, const Config& c,
                             const QuerySetResult& r) {
  const std::string path = BenchJsonPath();
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::cerr << "warning: cannot append to CFL_BENCH_JSON=" << path << "\n";
    return;
  }
  out << "{\"artifact\":\"" << artifact << "\",\"dataset\":\"" << dataset
      << "\",\"set\":\"" << set << "\",\"engine\":\"" << engine
      << "\",\"isa\":\"" << kernels::IsaName(kernels::ActiveIsa())
      << "\",\"scale\":" << c.scale << ",\"threads\":" << c.threads
      << ",\"queries_run\":" << r.queries_run
      << ",\"inf\":" << (r.IsInf() ? "true" : "false")
      << ",\"avg_total_ms\":" << r.avg_total_ms
      << ",\"avg_order_ms\":" << r.avg_order_ms
      << ",\"avg_enum_ms\":" << r.avg_enum_ms
      << ",\"avg_index_entries\":" << r.avg_index_entries
      << ",\"total_embeddings\":" << r.total_embeddings
      // Execution-stats roll-up (src/obs/stats.h). All-zero when the engine
      // records no stats or the build has CFL_STATS=OFF; the fields stay in
      // the schema either way so downstream readers need no presence checks.
      << ",\"stats_enabled\":" << (obs::kStatsEnabled ? "true" : "false")
      << ",\"candidates_generated\":" << r.stats.candidates_generated
      << ",\"candidates_pruned\":" << r.stats.candidates_pruned
      << ",\"cpi_candidate_entries\":" << r.stats.cpi_candidate_entries
      << ",\"cpi_adjacency_entries\":" << r.stats.cpi_adjacency_entries
      << ",\"backward_probes\":" << r.stats.backward_probes
      << ",\"hub_probes\":" << r.stats.hub_probes
      << ",\"partials_discarded\":" << r.stats.partials_discarded
      << ",\"core_visits\":" << r.stats.core_visits
      << ",\"leaf_calls\":" << r.stats.leaf_calls << "}\n";
}

// Runs `engine` over `queries` and, when CFL_BENCH_JSON is set, appends the
// result as one JSON line before returning it for table formatting.
inline QuerySetResult RunAndRecord(const std::string& artifact,
                                   const std::string& dataset,
                                   const std::string& set,
                                   const std::string& engine_name,
                                   SubgraphEngine& engine,
                                   const std::vector<Graph>& queries,
                                   const Config& c) {
  QuerySetResult r = RunQuerySet(engine, queries, MakeRunConfig(c));
  AppendJsonResult(artifact, dataset, set, engine_name, c, r);
  return r;
}

inline void PrintPreamble(const std::string& artifact,
                          const std::string& description, const Config& c) {
  std::cout << "=== " << artifact << ": " << description << " ===\n"
            << "config: scale=" << c.scale
            << " queries/set=" << c.queries_per_set
            << " set-budget=" << c.set_budget_seconds << "s"
            << " #embeddings=" << c.max_embeddings
            << " threads=" << c.threads << "\n"
            << "(times are avg ms per query; 'INF' = query set exceeded its "
               "budget, as in the paper)\n\n";
}

inline void PrintGraphLine(const std::string& dataset, const Graph& g) {
  std::cout << "data graph [" << dataset << "-like] "
            << Describe(ComputeStats(g)) << "\n";
}

}  // namespace cfl::bench

#endif  // CFL_BENCH_BENCH_COMMON_H_
