// Reproduces paper Figure 12: total processing time when varying the number
// of embeddings to be reported (1e3, 1e5, 1e8) on the default query sets.
//
// Expected shape (Eval-III): all engines slow down as more embeddings are
// requested; CFL-Match consistently fastest, QuickSI worst.

#include "baseline/quicksi.h"
#include "baseline/turboiso.h"
#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  std::vector<std::unique_ptr<SubgraphEngine>> engines;
  engines.push_back(MakeQuickSi(g));
  engines.push_back(MakeTurboIso(g));
  engines.push_back(MakeCflMatch(g));

  const uint32_t default_size = DefaultQuerySize(dataset, g);

  Table table(
      {"query set", "#embeddings", "QuickSI", "TurboISO", "CFL-Match"});
  for (bool sparse : {true, false}) {
    std::vector<Graph> queries =
        MakeQuerySet(g, dataset, default_size, sparse, config);
    for (uint64_t cap : {uint64_t{1'000}, uint64_t{100'000},
                         uint64_t{100'000'000}}) {
      Config varied = config;
      varied.max_embeddings = cap;
      std::vector<std::string> row = {SetName(default_size, sparse),
                                      std::to_string(cap)};
      for (const auto& engine : engines) {
        row.push_back(FormatResult(
            RunQuerySet(*engine, queries, MakeRunConfig(varied))));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 12", "total processing time vs #embeddings", config);
  for (const std::string dataset : {"hprd", "synthetic"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
