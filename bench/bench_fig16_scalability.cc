// Reproduces paper Figure 16: scalability of CFL-Match on synthetic graphs —
// (a) vary |V(G)| in {100k, 500k, 1000k}, (b) vary d(G) in {4, 8, 16, 32},
// (c) vary |Sigma| in {25, 50, 100, 200}, and (d) the CPI index size while
// varying |Sigma|. Default query sets q50S / q50N.
//
// Expected shape (Eval-VII): processing time grows linearly in |V(G)| and
// (almost) linearly in d(G) — CPI construction O(|E(G)| x |E(q)|) dominates;
// time and CPI size *decrease* as |Sigma| grows (fewer candidates per query
// vertex).

#include <sstream>

#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

Graph MakeSyntheticVariant(const Config& c, uint32_t vertices_full,
                           double degree, uint32_t labels) {
  SyntheticOptions options;
  options.num_vertices =
      std::max<uint32_t>(1000, static_cast<uint32_t>(vertices_full * c.scale));
  options.average_degree = degree;
  options.num_labels = labels;
  options.seed = 20160626 ^ vertices_full ^ (labels << 8) ^
                 static_cast<uint64_t>(degree * 16);
  return MakeSynthetic(options);
}

struct Cell {
  std::string time;
  std::string index_entries;
};

Cell RunOne(const Graph& g, const std::string& tag, bool sparse,
            const Config& config) {
  std::unique_ptr<SubgraphEngine> engine = MakeCflMatch(g);
  std::vector<Graph> queries = MakeQuerySet(g, tag, 50, sparse, config);
  QuerySetResult r = RunQuerySet(*engine, queries, MakeRunConfig(config));
  std::ostringstream entries;
  entries << static_cast<uint64_t>(r.avg_index_entries);
  return {FormatResult(r), r.IsInf() ? std::string(kInf) : entries.str()};
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl;
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 16", "scalability of CFL-Match on synthetic graphs",
                config);

  {
    std::cout << "(a) vary |V(G)| (d=8, |Sigma|=50; sizes scaled by "
              << config.scale << ")\n";
    Table table({"|V(G)|", "q50S", "q50N"});
    for (uint32_t v : {100'000u, 500'000u, 1'000'000u}) {
      Graph g = MakeSyntheticVariant(config, v, 8.0, 50);
      table.AddRow({std::to_string(g.NumVertices()),
                    RunOne(g, "synV" + std::to_string(v), true, config).time,
                    RunOne(g, "synV" + std::to_string(v), false, config).time});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "(b) vary d(G) (|V|=100k scaled, |Sigma|=50)\n";
    Table table({"d(G)", "q50S", "q50N"});
    for (double d : {4.0, 8.0, 16.0, 32.0}) {
      Graph g = MakeSyntheticVariant(config, 100'000, d, 50);
      std::string tag = "synD" + std::to_string(static_cast<int>(d));
      table.AddRow({std::to_string(static_cast<int>(d)),
                    RunOne(g, tag, true, config).time,
                    RunOne(g, tag, false, config).time});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "(c) vary |Sigma| (|V|=100k scaled, d=8) and\n"
                 "(d) CPI index size (avg entries per query) while varying "
                 "|Sigma|\n";
    Table table({"|Sigma|", "q50S", "q50N", "CPI q50S", "CPI q50N"});
    for (uint32_t labels : {25u, 50u, 100u, 200u}) {
      Graph g = MakeSyntheticVariant(config, 100'000, 8.0, labels);
      std::string tag = "synL" + std::to_string(labels);
      Cell s = RunOne(g, tag, true, config);
      Cell n = RunOne(g, tag, false, config);
      table.AddRow({std::to_string(labels), s.time, n.time, s.index_entries,
                    n.index_entries});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
