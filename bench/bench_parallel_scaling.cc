// Parallel enumeration scaling: CFL-Match vs the root-partitioned parallel
// matcher at 1/2/4/8 threads on the paper's default synthetic workload
// (there is no paper figure for this — the paper's engine is serial; see
// DESIGN.md "Threading model").
//
// Reports per-thread-count avg total/enumeration time, the speedup of both
// over the 1-thread run, and the embedding counts, which must be identical
// at every thread count (root ranges partition the search space). A count
// mismatch exits non-zero, so the ctest smoke invocation doubles as an
// equivalence check.
//
// Flags:
//   --threads LIST   comma-separated thread counts (default 1,2,4,8)
//   --smoke          tiny fixed workload for ctest (ignores CFL_BENCH_*)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

std::vector<uint32_t> ParseThreadList(const char* csv) {
  std::vector<uint32_t> out;
  std::string s(csv);
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) {
      long parsed = std::atol(s.substr(start, comma - start).c_str());
      if (parsed > 0) out.push_back(static_cast<uint32_t>(parsed));
    }
    start = comma + 1;
  }
  return out;
}

int Run(const std::vector<uint32_t>& thread_counts, const Config& config) {
  PrintPreamble("Parallel scaling",
                "root-partitioned enumeration, 1..N threads", config);
  Graph g = MakeDefaultSynthetic(config);
  PrintGraphLine("synthetic", g);

  const uint32_t size = DefaultQuerySize("synthetic", g);
  std::vector<Graph> queries =
      MakeQuerySet(g, "synthetic", size, /*sparse=*/false, config);
  std::cout << "query set " << SetName(size, false) << ", "
            << queries.size() << " queries\n\n";

  Table table({"threads", "total ms", "enum ms", "speedup(total)",
               "speedup(enum)", "embeddings"});
  double base_total = 0.0, base_enum = 0.0;
  uint64_t base_embeddings = 0;
  bool have_base = false;
  bool count_mismatch = false;

  for (uint32_t threads : thread_counts) {
    Config per_run = config;
    per_run.threads = threads;
    std::unique_ptr<SubgraphEngine> engine = MakeDefaultCflEngine(g, per_run);
    QuerySetResult r = RunQuerySet(*engine, queries, MakeRunConfig(per_run));

    std::vector<std::string> row = {std::to_string(threads),
                                    FormatResult(r), FormatEnumResult(r)};
    if (r.IsInf()) {
      row.insert(row.end(), {"-", "-", "-"});
    } else {
      if (!have_base) {
        base_total = r.avg_total_ms;
        base_enum = r.avg_enum_ms;
        base_embeddings = r.total_embeddings;
        have_base = true;
        row.insert(row.end(), {"1.00x", "1.00x"});
      } else {
        auto speedup = [](double base, double now) {
          if (now <= 0.0) return std::string("-");
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.2fx", base / now);
          return std::string(buf);
        };
        row.push_back(speedup(base_total, r.avg_total_ms));
        row.push_back(speedup(base_enum, r.avg_enum_ms));
        if (r.total_embeddings != base_embeddings) count_mismatch = true;
      }
      row.push_back(std::to_string(r.total_embeddings));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  if (count_mismatch) {
    std::cout << "\nFAIL: embedding counts differ across thread counts\n";
    return 1;
  }
  std::cout << "\nembedding counts identical across all thread counts\n";
  return 0;
}

}  // namespace
}  // namespace cfl::bench

int main(int argc, char** argv) {
  using namespace cfl::bench;
  std::vector<uint32_t> thread_counts = {1, 2, 4, 8};
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = ParseThreadList(argv[++i]);
      if (thread_counts.empty()) {
        std::cerr << "bad --threads list: " << argv[i] << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--threads 1,2,4,8] [--smoke]\n";
      return 2;
    }
  }
  Config config;
  if (smoke) {
    // Fixed tiny workload: a few seconds even single-core, deterministic.
    config.scale = 0.05;
    config.queries_per_set = 4;
    config.set_budget_seconds = 60.0;
  } else {
    config = LoadConfig();
  }
  return Run(thread_counts, config);
}
