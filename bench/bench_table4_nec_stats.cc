// Reproduces paper Table 4: how compressible query *core-structures* are
// under the NEC query-compression of TurboISO [8]. For every dataset and
// query set it reports Avg (average number of vertices removed by NEC
// merging of the core-structure) and #R (number of queries whose core
// compresses at all).
//
// Expected shape: tiny averages (mostly < 1 vertex) — the justification for
// CFL-Match not compressing core-structures (paper Section 4.2 Remark).

#include <iomanip>
#include <sstream>

#include "bench/bench_common.h"
#include "decomp/nec.h"
#include "decomp/two_core.h"
#include "graph/graph_builder.h"

namespace cfl::bench {
namespace {

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  Table table({"query set", "Avg", "#R", "#queries"});
  for (uint32_t size : QuerySizes(dataset, g)) {
    for (bool sparse : {true, false}) {
      std::vector<Graph> queries =
          MakeQuerySet(g, dataset, size, sparse, config);
      uint64_t reduced_total = 0;
      uint32_t reduced_queries = 0;
      for (const Graph& q : queries) {
        std::vector<VertexId> core = TwoCoreVertices(q);
        if (core.size() < 2) continue;
        uint32_t reduced = NecReducedVertices(InducedSubgraph(q, core));
        reduced_total += reduced;
        if (reduced > 0) ++reduced_queries;
      }
      std::ostringstream avg;
      avg << std::fixed << std::setprecision(2)
          << static_cast<double>(reduced_total) / queries.size();
      table.AddRow({SetName(size, sparse), avg.str(),
                    std::to_string(reduced_queries),
                    std::to_string(queries.size())});
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Table 4",
                "NEC compressibility of query core-structures (Avg reduced "
                "vertices; #R queries reduced)",
                config);
  for (const std::string dataset : {"hprd", "yeast", "synthetic", "human"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
