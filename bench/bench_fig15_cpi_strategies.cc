// Reproduces paper Figure 15: effect of the CPI construction strategy on
// CFL-Match's total processing time — Naive (label-only candidates) vs
// TD (top-down construction, Algorithm 3) vs TD+BU refinement (Algorithm 4).
//
// Expected shape (Eval-VI): Naive is much slower (false-positive candidates
// flood the search); TD recovers most of the gap; refinement gives the best
// time, with a small margin on HPRD (top-down already leaves few
// candidates there).

#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  std::vector<std::unique_ptr<SubgraphEngine>> engines;
  engines.push_back(MakeCflMatchNaive(g));
  engines.push_back(MakeCflMatchTd(g));
  engines.push_back(MakeCflMatch(g));

  Table table(
      {"query set", "CFL-Match-Naive", "CFL-Match-TD", "CFL-Match"});
  for (bool sparse : {true, false}) {
    std::vector<Graph> queries =
        MakeQuerySet(g, dataset, DefaultQuerySize(dataset, g), sparse, config);
    std::vector<std::string> row = {SetName(DefaultQuerySize(dataset, g), sparse)};
    for (const auto& engine : engines) {
      row.push_back(
          FormatResult(RunQuerySet(*engine, queries, MakeRunConfig(config))));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 15", "CPI construction strategies", config);
  for (const std::string dataset : {"hprd", "yeast"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
