// Micro-benchmarks (google-benchmark) for the individual components:
// CPI construction strategies, candidate filters, decomposition, ordering,
// and data-graph compression. These complement the figure benches by
// isolating each subsystem's cost.
//
// Honors CFL_BENCH_JSON=<path>: appends one JSON line per benchmark run
// (same JSON-lines file the figure benches append to).

#include <benchmark/benchmark.h>

#include <fstream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "baseline/compress.h"
#include "cpi/candidate_filter.h"
#include "cpi/cpi_builder.h"
#include "decomp/bfs_tree.h"
#include "decomp/cfl_decomposition.h"
#include "decomp/two_core.h"
#include "gen/datasets.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/graph_builder.h"
#include "harness/env.h"
#include "kernels/kernels.h"
#include "match/cfl_match.h"
#include "order/matching_order.h"

namespace cfl {
namespace {

const Graph& BenchData() {
  static const Graph* g = new Graph(MakeYeastLike(1.0));
  return *g;
}

Graph BenchQuery(uint32_t size) {
  QueryGenOptions options;
  options.num_vertices = size;
  options.sparse = false;
  options.seed = 77;
  return GenerateQuery(BenchData(), options);
}

void BM_TwoCore(benchmark::State& state) {
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwoCoreMembership(q));
  }
}
BENCHMARK(BM_TwoCore)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_CflDecompose(benchmark::State& state) {
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposeCfl(q));
  }
}
BENCHMARK(BM_CflDecompose)->Arg(50)->Arg(200);

void BM_CpiConstruction(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(50);
  BfsTree tree = BuildBfsTree(q, 0);
  CpiBuilder builder(g);
  CpiStrategy strategy = static_cast<CpiStrategy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.Build(q, tree, strategy));
  }
}
BENCHMARK(BM_CpiConstruction)
    ->Arg(static_cast<int>(CpiStrategy::kNaive))
    ->Arg(static_cast<int>(CpiStrategy::kTopDown))
    ->Arg(static_cast<int>(CpiStrategy::kRefined));

void BM_MatchingOrder(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  CflDecomposition d = DecomposeCfl(q);
  VertexId root = d.core.front();
  BfsTree tree = BuildBfsTree(q, root);
  Cpi cpi = BuildCpi(q, g, tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeMatchingOrder(q, cpi, d, DecompositionMode::kCfl));
  }
}
BENCHMARK(BM_MatchingOrder)->Arg(50)->Arg(200);

void BM_CandVerify(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(50);
  for (auto _ : state) {
    uint64_t passed = 0;
    for (VertexId v : g.VerticesWithLabel(q.label(0))) {
      passed += CandVerify(q, 0, g, v) ? 1 : 0;
    }
    benchmark::DoNotOptimize(passed);
  }
}
BENCHMARK(BM_CandVerify);

void BM_FullMatch(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  CflMatcher matcher(g);
  MatchOptions options;
  options.limits.max_embeddings = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(q, options));
  }
}
BENCHMARK(BM_FullMatch)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_Compression(benchmark::State& state) {
  Graph g = MakeHumanLike(0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompressBySE(g));
  }
}
BENCHMARK(BM_Compression);

void BM_QueryGeneration(benchmark::State& state) {
  const Graph& g = BenchData();
  uint64_t seed = 0;
  for (auto _ : state) {
    QueryGenOptions options;
    options.num_vertices = 50;
    options.seed = ++seed;
    benchmark::DoNotOptimize(GenerateQuery(g, options));
  }
}
BENCHMARK(BM_QueryGeneration);

// Label-diverse data graph: many labels means each vertex's adjacency
// splits into many short label runs, the setting where the label-partitioned
// CSR pays off most for CPI construction (candidate generation / refinement
// scan one run instead of the whole neighbor list).
const Graph& LabelDiverseData() {
  static const Graph* g = [] {
    SyntheticOptions options;
    options.num_vertices = 50'000;
    options.average_degree = 16.0;
    options.num_labels = 40;
    options.seed = 20160626;
    return new Graph(MakeSynthetic(options));
  }();
  return *g;
}

void BM_CpiBuildLabelDiverse(benchmark::State& state) {
  const Graph& g = LabelDiverseData();
  QueryGenOptions qopt;
  qopt.num_vertices = static_cast<uint32_t>(state.range(0));
  qopt.sparse = false;
  qopt.seed = 13;
  Graph q = GenerateQuery(g, qopt);
  BfsTree tree = BuildBfsTree(q, 0);
  CpiBuilder builder(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.Build(q, tree, CpiStrategy::kRefined));
  }
}
BENCHMARK(BM_CpiBuildLabelDiverse)->Arg(25)->Arg(50)->Arg(100);

// Hub-heavy data graph: a handful of very-high-degree vertices over a
// sparse background, the setting where the per-hub bitmaps turn backward
// edge probes from log-degree binary searches into single word loads.
const Graph& HubHeavyData() {
  static const Graph* g = [] {
    const uint32_t n = 20'000;
    GraphBuilder b(n);
    for (VertexId v = 0; v < n; ++v) b.SetLabel(v, v % 8);
    for (VertexId hub = 0; hub < 32; ++hub) {
      for (VertexId w = 32; w < n; w += 4) b.AddEdge(hub, w);
    }
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<uint32_t> pick(0, n - 1);
    for (uint64_t e = 0; e < 4ull * n; ++e) {
      VertexId u = pick(rng), v = pick(rng);
      if (u != v) b.AddEdge(u, v);
    }
    return new Graph(std::move(b).Build());
  }();
  return *g;
}

void BM_HasEdgeHubHeavy(benchmark::State& state) {
  const Graph& g = HubHeavyData();
  std::mt19937 rng(99);
  std::uniform_int_distribution<uint32_t> pick(0, g.NumVertices() - 1);
  std::vector<std::pair<VertexId, VertexId>> probes(1 << 14);
  for (auto& p : probes) p = {pick(rng) % 32, pick(rng)};  // hub on one side
  for (auto _ : state) {
    uint64_t hits = 0;
    for (auto [u, v] : probes) hits += g.HasEdge(u, v) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(probes.size()));
}
BENCHMARK(BM_HasEdgeHubHeavy);

void BM_EnumerateHubHeavy(benchmark::State& state) {
  const Graph& g = HubHeavyData();
  QueryGenOptions qopt;
  qopt.num_vertices = static_cast<uint32_t>(state.range(0));
  qopt.sparse = false;
  qopt.seed = 5;
  Graph q = GenerateQuery(g, qopt);
  CflMatcher matcher(g);
  MatchOptions options;
  options.limits.max_embeddings = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(q, options));
  }
}
BENCHMARK(BM_EnumerateHubHeavy)->Arg(8)->Arg(12);

// ---- kernel-layer micro-benchmarks ---------------------------------------
//
// Size x selectivity sweeps over the dispatch layer's primitives, each in
// two flavors: `.../0` pins the scalar reference, `.../1` runs whatever the
// startup dispatch selected (AVX2 on x86-64 unless CFL_FORCE_SCALAR). The
// ratio between the two rows is the kernel speedup on this machine.

std::vector<uint32_t> AscendingWithGap(uint64_t seed, size_t n,
                                       uint32_t max_gap) {
  std::mt19937 rng(static_cast<uint32_t>(seed));
  std::uniform_int_distribution<uint32_t> gap(1, max_gap);
  std::vector<uint32_t> v;
  v.reserve(n);
  uint32_t cur = gap(rng);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(cur);
    cur += gap(rng);
  }
  return v;
}

// Args: {size, max_gap, use_dispatch}. Equal-size inputs drawn from the
// same gap distribution: gap 2 ~ 50% selectivity, gap 16 ~ 6%. Each
// iteration rotates through distinct input pairs — repeating one pair
// lets the branch predictor memorize the scalar merge's entire decision
// sequence at small sizes and report fantasy scalar numbers.
void BM_IntersectSorted(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t gap = static_cast<uint32_t>(state.range(1));
  const bool dispatched = state.range(2) != 0;
  constexpr size_t kPairs = 16;
  std::vector<std::vector<uint32_t>> as, bs;
  for (size_t p = 0; p < kPairs; ++p) {
    as.push_back(AscendingWithGap(2 * p + 1, n, gap));
    bs.push_back(AscendingWithGap(2 * p + 2, n, gap));
  }
  std::vector<uint32_t> out;
  out.reserve(n);
  size_t p = 0;
  for (auto _ : state) {
    out.clear();
    if (dispatched) {
      kernels::IntersectSorted(as[p], bs[p], out);
    } else {
      kernels::scalar::IntersectSorted(as[p], bs[p], out);
    }
    benchmark::DoNotOptimize(out.data());
    p = (p + 1) % kPairs;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_IntersectSorted)
    ->Args({1 << 7, 2, 0})
    ->Args({1 << 7, 2, 1})
    ->Args({1 << 10, 2, 0})
    ->Args({1 << 10, 2, 1})
    ->Args({1 << 10, 16, 0})
    ->Args({1 << 10, 16, 1})
    ->Args({1 << 14, 2, 0})
    ->Args({1 << 14, 2, 1})
    ->Args({1 << 14, 16, 0})
    ->Args({1 << 14, 16, 1});

// Args: {large_size, use_dispatch}. 64:1 skew — past the galloping cutover,
// so both flavors take the O(small log large) path; this row guards the
// skew regression rather than showcasing SIMD.
void BM_IntersectSkewed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool dispatched = state.range(1) != 0;
  std::vector<uint32_t> large = AscendingWithGap(3, n, 4);
  std::vector<uint32_t> small = AscendingWithGap(4, n / 64, 4 * 64);
  std::vector<uint32_t> out;
  out.reserve(small.size());
  for (auto _ : state) {
    out.clear();
    if (dispatched) {
      kernels::IntersectSorted(small, large, out);
    } else {
      kernels::scalar::IntersectSorted(small, large, out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size()));
}
BENCHMARK(BM_IntersectSkewed)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1});

// Args: {num_backward_edges, pass_biased, use_dispatch}. All-hub plans
// over the hub-heavy graph — the batched word-AND pass against per-edge
// probing. pass_biased=0 probes random vertices (most fail the first
// edge, the early-exit regime); pass_biased=1 probes the hubs' common
// neighborhood (most candidates survive every edge — the regime CPI
// filtering puts the enumerator in, where early exit never helps and
// batching pays off).
void BM_VerifyBackward(benchmark::State& state) {
  const Graph& g = HubHeavyData();
  const uint32_t nedges = static_cast<uint32_t>(state.range(0));
  const bool pass_biased = state.range(1) != 0;
  const bool dispatched = state.range(2) != 0;
  kernels::BackwardPlan plan;
  for (uint32_t k = 0; k < nedges; ++k) plan.Add(g, k % 32);
  std::mt19937 rng(44);
  std::uniform_int_distribution<uint32_t> pick(0, g.NumVertices() - 1);
  std::vector<VertexId> probes(1 << 12);
  for (VertexId& v : probes) {
    // Every hub in HubHeavyData is adjacent to every vertex 32 + 4k.
    v = pass_biased ? 32 + (pick(rng) % ((g.NumVertices() - 32) / 4)) * 4
                    : pick(rng);
  }
  for (auto _ : state) {
    uint64_t passed = 0;
    for (VertexId v : probes) {
      const uint32_t fail =
          dispatched ? kernels::VerifyBackwardEdges(g, plan, v)
                     : kernels::scalar::VerifyBackwardEdges(g, plan, v);
      passed += fail == nedges ? 1 : 0;
    }
    benchmark::DoNotOptimize(passed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(probes.size()));
}
BENCHMARK(BM_VerifyBackward)
    ->Args({2, 1, 0})
    ->Args({2, 1, 1})
    ->Args({4, 0, 0})
    ->Args({4, 0, 1})
    ->Args({4, 1, 0})
    ->Args({4, 1, 1})
    ->Args({8, 0, 0})
    ->Args({8, 0, 1})
    ->Args({8, 1, 0})
    ->Args({8, 1, 1});

// Console reporter that additionally appends one JSON line per finished
// benchmark to CFL_BENCH_JSON — the same flat-schema JSON-lines file the
// figure benches append to. (A display-reporter wrapper rather than a
// google-benchmark "file reporter", which would require --benchmark_out.)
class JsonlTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonlTeeReporter(const std::string& path)
      : out_(path, std::ios::app) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    if (!out_.good()) return;
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      out_ << "{\"artifact\":\"micro\",\"isa\":\""
           << kernels::IsaName(kernels::ActiveIsa()) << "\",\"name\":\""
           << run.benchmark_name()
           << "\",\"real_time\":" << run.GetAdjustedRealTime()
           << ",\"cpu_time\":" << run.GetAdjustedCPUTime()
           << ",\"time_unit\":\"" << UnitString(run.time_unit)
           << "\",\"iterations\":" << run.iterations << "}\n";
    }
  }

 private:
  static const char* UnitString(benchmark::TimeUnit unit) {
    switch (unit) {
      case benchmark::kNanosecond: return "ns";
      case benchmark::kMicrosecond: return "us";
      case benchmark::kMillisecond: return "ms";
      case benchmark::kSecond: return "s";
    }
    return "?";
  }

  std::ofstream out_;
};

}  // namespace
}  // namespace cfl

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::string json_path = cfl::BenchJsonPath();
  if (!json_path.empty()) {
    cfl::JsonlTeeReporter reporter(json_path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
