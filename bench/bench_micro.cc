// Micro-benchmarks (google-benchmark) for the individual components:
// CPI construction strategies, candidate filters, decomposition, ordering,
// and data-graph compression. These complement the figure benches by
// isolating each subsystem's cost.

#include <benchmark/benchmark.h>

#include "baseline/compress.h"
#include "cpi/candidate_filter.h"
#include "cpi/cpi_builder.h"
#include "decomp/bfs_tree.h"
#include "decomp/cfl_decomposition.h"
#include "decomp/two_core.h"
#include "gen/datasets.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "match/cfl_match.h"
#include "order/matching_order.h"

namespace cfl {
namespace {

const Graph& BenchData() {
  static const Graph* g = new Graph(MakeYeastLike(1.0));
  return *g;
}

Graph BenchQuery(uint32_t size) {
  QueryGenOptions options;
  options.num_vertices = size;
  options.sparse = false;
  options.seed = 77;
  return GenerateQuery(BenchData(), options);
}

void BM_TwoCore(benchmark::State& state) {
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwoCoreMembership(q));
  }
}
BENCHMARK(BM_TwoCore)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_CflDecompose(benchmark::State& state) {
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposeCfl(q));
  }
}
BENCHMARK(BM_CflDecompose)->Arg(50)->Arg(200);

void BM_CpiConstruction(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(50);
  BfsTree tree = BuildBfsTree(q, 0);
  CpiBuilder builder(g);
  CpiStrategy strategy = static_cast<CpiStrategy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.Build(q, tree, strategy));
  }
}
BENCHMARK(BM_CpiConstruction)
    ->Arg(static_cast<int>(CpiStrategy::kNaive))
    ->Arg(static_cast<int>(CpiStrategy::kTopDown))
    ->Arg(static_cast<int>(CpiStrategy::kRefined));

void BM_MatchingOrder(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  CflDecomposition d = DecomposeCfl(q);
  VertexId root = d.core.front();
  BfsTree tree = BuildBfsTree(q, root);
  Cpi cpi = BuildCpi(q, g, tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeMatchingOrder(q, cpi, d, DecompositionMode::kCfl));
  }
}
BENCHMARK(BM_MatchingOrder)->Arg(50)->Arg(200);

void BM_CandVerify(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(50);
  for (auto _ : state) {
    uint64_t passed = 0;
    for (VertexId v : g.VerticesWithLabel(q.label(0))) {
      passed += CandVerify(q, 0, g, v) ? 1 : 0;
    }
    benchmark::DoNotOptimize(passed);
  }
}
BENCHMARK(BM_CandVerify);

void BM_FullMatch(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  CflMatcher matcher(g);
  MatchOptions options;
  options.limits.max_embeddings = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(q, options));
  }
}
BENCHMARK(BM_FullMatch)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_Compression(benchmark::State& state) {
  Graph g = MakeHumanLike(0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompressBySE(g));
  }
}
BENCHMARK(BM_Compression);

void BM_QueryGeneration(benchmark::State& state) {
  const Graph& g = BenchData();
  uint64_t seed = 0;
  for (auto _ : state) {
    QueryGenOptions options;
    options.num_vertices = 50;
    options.seed = ++seed;
    benchmark::DoNotOptimize(GenerateQuery(g, options));
  }
}
BENCHMARK(BM_QueryGeneration);

}  // namespace
}  // namespace cfl

BENCHMARK_MAIN();
