// Micro-benchmarks (google-benchmark) for the individual components:
// CPI construction strategies, candidate filters, decomposition, ordering,
// and data-graph compression. These complement the figure benches by
// isolating each subsystem's cost.
//
// Honors CFL_BENCH_JSON=<path>: appends one JSON line per benchmark run
// (same JSON-lines file the figure benches append to).

#include <benchmark/benchmark.h>

#include <fstream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "baseline/compress.h"
#include "cpi/candidate_filter.h"
#include "cpi/cpi_builder.h"
#include "decomp/bfs_tree.h"
#include "decomp/cfl_decomposition.h"
#include "decomp/two_core.h"
#include "gen/datasets.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/graph_builder.h"
#include "harness/env.h"
#include "match/cfl_match.h"
#include "order/matching_order.h"

namespace cfl {
namespace {

const Graph& BenchData() {
  static const Graph* g = new Graph(MakeYeastLike(1.0));
  return *g;
}

Graph BenchQuery(uint32_t size) {
  QueryGenOptions options;
  options.num_vertices = size;
  options.sparse = false;
  options.seed = 77;
  return GenerateQuery(BenchData(), options);
}

void BM_TwoCore(benchmark::State& state) {
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwoCoreMembership(q));
  }
}
BENCHMARK(BM_TwoCore)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_CflDecompose(benchmark::State& state) {
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposeCfl(q));
  }
}
BENCHMARK(BM_CflDecompose)->Arg(50)->Arg(200);

void BM_CpiConstruction(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(50);
  BfsTree tree = BuildBfsTree(q, 0);
  CpiBuilder builder(g);
  CpiStrategy strategy = static_cast<CpiStrategy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.Build(q, tree, strategy));
  }
}
BENCHMARK(BM_CpiConstruction)
    ->Arg(static_cast<int>(CpiStrategy::kNaive))
    ->Arg(static_cast<int>(CpiStrategy::kTopDown))
    ->Arg(static_cast<int>(CpiStrategy::kRefined));

void BM_MatchingOrder(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  CflDecomposition d = DecomposeCfl(q);
  VertexId root = d.core.front();
  BfsTree tree = BuildBfsTree(q, root);
  Cpi cpi = BuildCpi(q, g, tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeMatchingOrder(q, cpi, d, DecompositionMode::kCfl));
  }
}
BENCHMARK(BM_MatchingOrder)->Arg(50)->Arg(200);

void BM_CandVerify(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(50);
  for (auto _ : state) {
    uint64_t passed = 0;
    for (VertexId v : g.VerticesWithLabel(q.label(0))) {
      passed += CandVerify(q, 0, g, v) ? 1 : 0;
    }
    benchmark::DoNotOptimize(passed);
  }
}
BENCHMARK(BM_CandVerify);

void BM_FullMatch(benchmark::State& state) {
  const Graph& g = BenchData();
  Graph q = BenchQuery(static_cast<uint32_t>(state.range(0)));
  CflMatcher matcher(g);
  MatchOptions options;
  options.limits.max_embeddings = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(q, options));
  }
}
BENCHMARK(BM_FullMatch)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_Compression(benchmark::State& state) {
  Graph g = MakeHumanLike(0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompressBySE(g));
  }
}
BENCHMARK(BM_Compression);

void BM_QueryGeneration(benchmark::State& state) {
  const Graph& g = BenchData();
  uint64_t seed = 0;
  for (auto _ : state) {
    QueryGenOptions options;
    options.num_vertices = 50;
    options.seed = ++seed;
    benchmark::DoNotOptimize(GenerateQuery(g, options));
  }
}
BENCHMARK(BM_QueryGeneration);

// Label-diverse data graph: many labels means each vertex's adjacency
// splits into many short label runs, the setting where the label-partitioned
// CSR pays off most for CPI construction (candidate generation / refinement
// scan one run instead of the whole neighbor list).
const Graph& LabelDiverseData() {
  static const Graph* g = [] {
    SyntheticOptions options;
    options.num_vertices = 50'000;
    options.average_degree = 16.0;
    options.num_labels = 40;
    options.seed = 20160626;
    return new Graph(MakeSynthetic(options));
  }();
  return *g;
}

void BM_CpiBuildLabelDiverse(benchmark::State& state) {
  const Graph& g = LabelDiverseData();
  QueryGenOptions qopt;
  qopt.num_vertices = static_cast<uint32_t>(state.range(0));
  qopt.sparse = false;
  qopt.seed = 13;
  Graph q = GenerateQuery(g, qopt);
  BfsTree tree = BuildBfsTree(q, 0);
  CpiBuilder builder(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.Build(q, tree, CpiStrategy::kRefined));
  }
}
BENCHMARK(BM_CpiBuildLabelDiverse)->Arg(25)->Arg(50)->Arg(100);

// Hub-heavy data graph: a handful of very-high-degree vertices over a
// sparse background, the setting where the per-hub bitmaps turn backward
// edge probes from log-degree binary searches into single word loads.
const Graph& HubHeavyData() {
  static const Graph* g = [] {
    const uint32_t n = 20'000;
    GraphBuilder b(n);
    for (VertexId v = 0; v < n; ++v) b.SetLabel(v, v % 8);
    for (VertexId hub = 0; hub < 32; ++hub) {
      for (VertexId w = 32; w < n; w += 4) b.AddEdge(hub, w);
    }
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<uint32_t> pick(0, n - 1);
    for (uint64_t e = 0; e < 4ull * n; ++e) {
      VertexId u = pick(rng), v = pick(rng);
      if (u != v) b.AddEdge(u, v);
    }
    return new Graph(std::move(b).Build());
  }();
  return *g;
}

void BM_HasEdgeHubHeavy(benchmark::State& state) {
  const Graph& g = HubHeavyData();
  std::mt19937 rng(99);
  std::uniform_int_distribution<uint32_t> pick(0, g.NumVertices() - 1);
  std::vector<std::pair<VertexId, VertexId>> probes(1 << 14);
  for (auto& p : probes) p = {pick(rng) % 32, pick(rng)};  // hub on one side
  for (auto _ : state) {
    uint64_t hits = 0;
    for (auto [u, v] : probes) hits += g.HasEdge(u, v) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(probes.size()));
}
BENCHMARK(BM_HasEdgeHubHeavy);

void BM_EnumerateHubHeavy(benchmark::State& state) {
  const Graph& g = HubHeavyData();
  QueryGenOptions qopt;
  qopt.num_vertices = static_cast<uint32_t>(state.range(0));
  qopt.sparse = false;
  qopt.seed = 5;
  Graph q = GenerateQuery(g, qopt);
  CflMatcher matcher(g);
  MatchOptions options;
  options.limits.max_embeddings = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(q, options));
  }
}
BENCHMARK(BM_EnumerateHubHeavy)->Arg(8)->Arg(12);

// Console reporter that additionally appends one JSON line per finished
// benchmark to CFL_BENCH_JSON — the same flat-schema JSON-lines file the
// figure benches append to. (A display-reporter wrapper rather than a
// google-benchmark "file reporter", which would require --benchmark_out.)
class JsonlTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonlTeeReporter(const std::string& path)
      : out_(path, std::ios::app) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    if (!out_.good()) return;
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      out_ << "{\"artifact\":\"micro\",\"name\":\"" << run.benchmark_name()
           << "\",\"real_time\":" << run.GetAdjustedRealTime()
           << ",\"cpu_time\":" << run.GetAdjustedCPUTime()
           << ",\"time_unit\":\"" << UnitString(run.time_unit)
           << "\",\"iterations\":" << run.iterations << "}\n";
    }
  }

 private:
  static const char* UnitString(benchmark::TimeUnit unit) {
    switch (unit) {
      case benchmark::kNanosecond: return "ns";
      case benchmark::kMicrosecond: return "us";
      case benchmark::kMillisecond: return "ms";
      case benchmark::kSecond: return "s";
    }
    return "?";
  }

  std::ofstream out_;
};

}  // namespace
}  // namespace cfl

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::string json_path = cfl::BenchJsonPath();
  if (!json_path.empty()) {
    cfl::JsonlTeeReporter reporter(json_path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
