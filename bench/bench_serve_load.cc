// Closed-loop load driver for the resident query server (ISSUE 7).
//
// Self-hosting: the driver starts an in-process QueryServer on a private
// socket, replays a query mix against it from several concurrent clients,
// and reports throughput (qps) plus p50/p95/p99 latency. The mix is R
// rounds over Q distinct query shapes, every repeat a *fresh random
// relabeling* of its shape — the realistic cache workload: clients send
// isomorphic queries under different vertex numberings, and only the
// canonical plan cache can recognize them as repeats.
//
// Every counting reply is equivalence-checked against a serial CflMatcher
// count computed up front (for shapes whose exact count fits under the
// embedding cap), so this doubles as a concurrency correctness harness; the
// process exits non-zero on any mismatch.
//
//   bench_serve_load [--dataset=NAME] [--queries=Q] [--rounds=R]
//                    [--clients=C] [--workers=W] [--query-size=K]
//                    [--max=N] [--no-cache] [--compare] [--smoke]
//
// --compare runs the same mix twice — plan cache ON then OFF — and prints
// the qps ratio (the ISSUE 7 acceptance gate is >= 2x). Results append to
// CFL_BENCH_JSON as {"artifact":"serve_load", ...} lines; BENCH_7.json in
// the repo root is a checked-in snapshot of a --compare run.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "gen/rng.h"
#include "graph/graph_builder.h"
#include "obs/clock.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace cfl;

struct DriverConfig {
  std::string dataset = "yeast";
  uint32_t queries = 10;     // distinct query shapes
  uint32_t rounds = 6;       // replays per shape (fresh relabeling each)
  uint32_t clients = 4;      // concurrent closed-loop clients
  uint32_t workers = 4;      // server enumeration workers
  uint32_t query_size = 0;   // 0: dataset default
  uint64_t max_embeddings = 10'000;
  bool cache = true;
  bool compare = false;
  double time_limit_seconds = 30.0;
};

// A random vertex renumbering of `q`: same graph, different ids — what an
// independent client would send for the same logical query.
Graph Relabel(const Graph& q, Rng& rng) {
  const uint32_t n = q.NumVertices();
  std::vector<VertexId> perm(n);
  for (VertexId v = 0; v < n; ++v) perm[v] = v;
  for (uint32_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Below(i)]);
  }
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) builder.SetLabel(perm[v], q.label(v));
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : q.Neighbors(v)) {
      if (u > v) builder.AddEdge(perm[v], perm[u]);
    }
  }
  return std::move(builder).Build();
}

struct Workload {
  std::vector<Graph> requests;         // round-major replay list
  std::vector<uint32_t> shape_of;      // request -> shape index
  std::vector<uint64_t> expected;      // shape -> serial count
  std::vector<bool> exact;             // shape -> count is exact (not capped)
};

Workload BuildWorkload(const Graph& data, const DriverConfig& d,
                       uint32_t query_size) {
  Workload w;
  std::vector<Graph> shapes =
      GenerateQuerySet(data, d.queries, query_size, /*sparse=*/true,
                       /*seed=*/0x5e7feedULL);
  // Ground truth per shape from the serial engine (the difftest-trusted
  // reference); shapes that hit the cap or a timeout are replayed for load
  // but excluded from the equivalence check.
  std::unique_ptr<SubgraphEngine> serial = MakeCflMatch(data);
  MatchLimits limits;
  limits.max_embeddings = d.max_embeddings;
  limits.time_limit_seconds = d.time_limit_seconds;
  for (const Graph& shape : shapes) {
    MatchResult r = serial->Run(shape, limits);
    w.expected.push_back(r.embeddings);
    w.exact.push_back(!r.reached_limit && !r.timed_out);
  }
  Rng rng(0xbe5e11ULL);
  for (uint32_t round = 0; round < d.rounds; ++round) {
    for (uint32_t s = 0; s < shapes.size(); ++s) {
      w.requests.push_back(Relabel(shapes[s], rng));
      w.shape_of.push_back(s);
    }
  }
  return w;
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  if (idx >= sorted_ms.size()) idx = sorted_ms.size() - 1;
  return sorted_ms[idx];
}

struct LoadResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t completed = 0;
  uint64_t mismatches = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

LoadResult RunLoad(const Graph& data, const Workload& w,
                   const DriverConfig& d, bool cache_on,
                   const std::string& socket_path) {
  serve::ServeOptions options;
  options.socket_path = socket_path;
  options.workers = d.workers;
  options.sessions = d.clients + 2;
  options.cache_bytes = cache_on ? (256ull << 20) : 0;
  options.max_time_limit_seconds = d.time_limit_seconds;
  serve::QueryServer server(data, options);
  std::thread server_thread([&server] { server.Serve(); });

  // The socket appears when Serve reaches listen(); retry briefly.
  {
    serve::ServeClient probe;
    bool up = false;
    for (int attempt = 0; attempt < 200 && !up; ++attempt) {
      up = probe.Connect(socket_path) && probe.Ping();
      if (!up) usleep(10'000);
    }
    if (!up) {
      std::fprintf(stderr, "server did not come up on %s\n",
                   socket_path.c_str());
      server.RequestShutdown();
      server_thread.join();
      return {};
    }
  }

  MatchLimits limits;
  limits.max_embeddings = d.max_embeddings;
  limits.time_limit_seconds = d.time_limit_seconds;

  std::atomic<uint32_t> cursor{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::vector<double>> latencies(d.clients);
  obs::WallTimer wall;

  std::vector<std::thread> clients;
  clients.reserve(d.clients);
  for (uint32_t c = 0; c < d.clients; ++c) {
    clients.emplace_back([&, c] {
      serve::ServeClient client;
      if (!client.Connect(socket_path)) return;
      while (true) {
        const uint32_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= w.requests.size()) break;
        obs::WallTimer request_timer;
        serve::ServeClient::Reply reply = client.Count(w.requests[i], limits);
        latencies[c].push_back(request_timer.Lap() * 1e3);
        const uint32_t shape = w.shape_of[i];
        if (!reply.ok ||
            (w.exact[shape] &&
             reply.outcome.embeddings != w.expected[shape])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_seconds = wall.Lap();

  LoadResult result;
  {
    serve::ServeClient admin;
    if (admin.Connect(socket_path)) {
      std::map<std::string, uint64_t> stats = admin.Stats();
      result.cache_hits = stats["cache_hits"];
      result.cache_misses = stats["cache_misses"];
      admin.Shutdown();
    } else {
      server.RequestShutdown();
    }
  }
  server_thread.join();

  std::vector<double> merged;
  for (const std::vector<double>& per_client : latencies) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  std::sort(merged.begin(), merged.end());
  result.completed = merged.size();
  result.mismatches = mismatches.load();
  result.qps = wall_seconds > 0.0
                   ? static_cast<double>(merged.size()) / wall_seconds
                   : 0.0;
  result.p50_ms = Percentile(merged, 0.50);
  result.p95_ms = Percentile(merged, 0.95);
  result.p99_ms = Percentile(merged, 0.99);
  return result;
}

void AppendJson(const DriverConfig& d, const std::string& dataset,
                bool cache_on, const LoadResult& r) {
  const std::string path = BenchJsonPath();
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << "{\"artifact\":\"serve_load\",\"dataset\":\"" << dataset
      << "\",\"cache\":\"" << (cache_on ? "on" : "off")
      << "\",\"clients\":" << d.clients << ",\"workers\":" << d.workers
      << ",\"queries\":" << r.completed << ",\"qps\":" << r.qps
      << ",\"p50_ms\":" << r.p50_ms << ",\"p95_ms\":" << r.p95_ms
      << ",\"p99_ms\":" << r.p99_ms << ",\"cache_hits\":" << r.cache_hits
      << ",\"cache_misses\":" << r.cache_misses
      << ",\"mismatches\":" << r.mismatches << "}\n";
}

void PrintResult(const char* label, const LoadResult& r) {
  std::printf(
      "%-10s qps=%8.1f  p50=%7.2fms  p95=%7.2fms  p99=%7.2fms  "
      "queries=%llu  hits=%llu  misses=%llu  mismatches=%llu\n",
      label, r.qps, r.p50_ms, r.p95_ms, r.p99_ms,
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.cache_hits),
      static_cast<unsigned long long>(r.cache_misses),
      static_cast<unsigned long long>(r.mismatches));
}

}  // namespace

int main(int argc, char** argv) {
  DriverConfig d;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--dataset=", 0) == 0) {
      d.dataset = arg.substr(10);
    } else if (arg.rfind("--queries=", 0) == 0) {
      d.queries = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--rounds=", 0) == 0) {
      d.rounds = static_cast<uint32_t>(std::stoul(arg.substr(9)));
    } else if (arg.rfind("--clients=", 0) == 0) {
      d.clients = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--workers=", 0) == 0) {
      d.workers = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--query-size=", 0) == 0) {
      d.query_size = static_cast<uint32_t>(std::stoul(arg.substr(13)));
    } else if (arg.rfind("--max=", 0) == 0) {
      d.max_embeddings = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg == "--no-cache") {
      d.cache = false;
    } else if (arg == "--compare") {
      d.compare = true;
    } else if (arg == "--smoke") {
      d.queries = 4;
      d.rounds = 3;
      d.clients = 2;
      d.workers = 2;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (d.clients == 0 || d.queries == 0 || d.rounds == 0) {
    std::fprintf(stderr, "clients/queries/rounds must be positive\n");
    return 2;
  }

  bench::Config bc = bench::LoadConfig();
  Graph data = bench::MakeBenchGraph(d.dataset, bc);
  const uint32_t query_size =
      d.query_size != 0 ? d.query_size : bench::DefaultQuerySize(d.dataset,
                                                                 data);
  std::printf("serve load: %s (%u vertices), %u shapes x %u rounds, "
              "size-%u queries, %u clients, %u workers\n",
              d.dataset.c_str(), data.NumVertices(), d.queries, d.rounds,
              query_size, d.clients, d.workers);

  Workload w = BuildWorkload(data, d, query_size);
  uint32_t exact_shapes = 0;
  for (bool e : w.exact) exact_shapes += e ? 1 : 0;
  std::printf("mix: %zu requests, %u/%u shapes equivalence-checked\n",
              w.requests.size(), exact_shapes, d.queries);

  const std::string socket_path =
      "/tmp/cfl_serve_load_" + std::to_string(getpid()) + ".sock";

  bool pass = true;
  if (d.compare) {
    LoadResult on = RunLoad(data, w, d, /*cache_on=*/true, socket_path);
    LoadResult off = RunLoad(data, w, d, /*cache_on=*/false, socket_path);
    PrintResult("cache-on", on);
    PrintResult("cache-off", off);
    AppendJson(d, d.dataset, true, on);
    AppendJson(d, d.dataset, false, off);
    const double ratio = off.qps > 0.0 ? on.qps / off.qps : 0.0;
    std::printf("qps ratio (on/off): %.2fx\n", ratio);
    pass = on.completed > 0 && off.completed > 0 && on.mismatches == 0 &&
           off.mismatches == 0 && on.qps > 0.0;
  } else {
    LoadResult r = RunLoad(data, w, d, d.cache, socket_path);
    PrintResult(d.cache ? "cache-on" : "cache-off", r);
    AppendJson(d, d.dataset, d.cache, r);
    pass = r.completed > 0 && r.mismatches == 0 && r.qps > 0.0;
  }
  if (!pass) {
    std::fprintf(stderr, "FAILED: zero throughput or count mismatches\n");
    return 1;
  }
  return 0;
}
