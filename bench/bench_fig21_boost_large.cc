// Reproduces paper Figure 21 (appendix): TurboISO-Boost against QuickSI,
// TurboISO, and CFL-Match on the two large real graphs, DBLP-like and
// WordNet-like.
//
// Expected shape (Eval-A-II): TurboISO-Boost helps TurboISO on some WordNet
// query sets (high compression) and hurts on others (overheads); CFL-Match
// significantly outperforms all of them either way.

#include "baseline/compress.h"
#include "baseline/quicksi.h"
#include "baseline/turboiso.h"
#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);
  std::cout << "SE compression ratio: " << CompressBySE(g).CompressionRatio()
            << "\n";

  std::vector<std::unique_ptr<SubgraphEngine>> engines;
  engines.push_back(MakeQuickSi(g));
  engines.push_back(MakeTurboIso(g));
  engines.push_back(MakeTurboIsoBoost(g));
  engines.push_back(MakeCflMatch(g));

  Table table({"query set", "QuickSI", "TurboISO", "TurboISO-Boost",
               "CFL-Match"});
  for (uint32_t size : QuerySizes(dataset, g)) {
    for (bool sparse : {true, false}) {
      std::vector<Graph> queries =
          MakeQuerySet(g, dataset, size, sparse, config);
      std::vector<std::string> row = {SetName(size, sparse)};
      for (const auto& engine : engines) {
        row.push_back(
            FormatResult(RunQuerySet(*engine, queries, MakeRunConfig(config))));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 21", "the boost technique on large graphs", config);
  for (const std::string dataset : {"wordnet", "dblp"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
