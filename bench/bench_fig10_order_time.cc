// Reproduces paper Figure 10: query-vertex ordering time (matching order
// plus the auxiliary structures needed to compute it — the CPI for
// CFL-Match, candidate regions for TurboISO) vs |V(q)| on HPRD-like and
// Synthetic graphs. QuickSI is omitted, as in the paper, because its
// frequency-table ordering time is negligible.
//
// Expected shape (Eval-I): CFL-Match's ordering time is much smaller than
// TurboISO's thanks to the O(|E(q)| x |E(G)|) CPI construction.

#include "baseline/turboiso.h"
#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  std::vector<std::pair<std::string, std::unique_ptr<SubgraphEngine>>> engines;
  engines.emplace_back("TurboISO", MakeTurboIso(g));
  engines.emplace_back("CFL-Match", MakeCflMatch(g));

  Table table({"query set", "TurboISO", "CFL-Match"});
  for (uint32_t size : QuerySizes(dataset, g)) {
    for (bool sparse : {true, false}) {
      std::vector<Graph> queries =
          MakeQuerySet(g, dataset, size, sparse, config);
      std::vector<std::string> row = {SetName(size, sparse)};
      for (const auto& [name, engine] : engines) {
        row.push_back(FormatOrderResult(RunAndRecord(
            "fig10", dataset, row[0], name, *engine, queries, config)));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 10", "query vertex ordering time vs |V(q)|", config);
  for (const std::string dataset : {"hprd", "synthetic"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
