// Reproduces paper Figure 9: embedding-enumeration time (total minus
// ordering/auxiliary-structure time) vs |V(q)| on HPRD-like and Synthetic
// graphs for QuickSI / TurboISO / CFL-Match.
//
// Expected shape (Eval-I): CFL-Match fastest across all queries — the paper
// reports improvements of over 4 orders of magnitude at q200N on HPRD;
// QuickSI slowest.

#include "baseline/quicksi.h"
#include "baseline/turboiso.h"
#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  std::vector<std::pair<std::string, std::unique_ptr<SubgraphEngine>>> engines;
  engines.emplace_back("QuickSI", MakeQuickSi(g));
  engines.emplace_back("TurboISO", MakeTurboIso(g));
  engines.emplace_back("CFL-Match", MakeCflMatch(g));

  Table table({"query set", "QuickSI", "TurboISO", "CFL-Match"});
  for (uint32_t size : QuerySizes(dataset, g)) {
    for (bool sparse : {true, false}) {
      std::vector<Graph> queries =
          MakeQuerySet(g, dataset, size, sparse, config);
      std::vector<std::string> row = {SetName(size, sparse)};
      for (const auto& [name, engine] : engines) {
        row.push_back(FormatEnumResult(RunAndRecord(
            "fig09", dataset, row[0], name, *engine, queries, config)));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 9", "embedding enumeration time vs |V(q)|", config);
  for (const std::string dataset : {"hprd", "synthetic"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
