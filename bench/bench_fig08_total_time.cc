// Reproduces paper Figure 8: total processing time per query, varying
// |V(q)|, for QuickSI / TurboISO / CFL-Match on HPRD-, Yeast-, Synthetic-,
// and Human-like data graphs (one table per subfigure).
//
// Expected shape (paper Section 6.1 Eval-I): CFL-Match consistently fastest;
// TurboISO beats QuickSI; the gap widens with query size, with QuickSI and
// TurboISO going INF on the larger/denser settings.

#include "baseline/quicksi.h"
#include "baseline/turboiso.h"
#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  std::vector<std::pair<std::string, std::unique_ptr<SubgraphEngine>>> engines;
  engines.emplace_back("QuickSI", MakeQuickSi(g));
  engines.emplace_back("TurboISO", MakeTurboIso(g));
  engines.emplace_back("CFL-Match", MakeDefaultCflEngine(g, config));

  Table table({"query set", "QuickSI", "TurboISO", "CFL-Match"});
  for (uint32_t size : QuerySizes(dataset, g)) {
    for (bool sparse : {true, false}) {
      std::vector<Graph> queries =
          MakeQuerySet(g, dataset, size, sparse, config);
      std::vector<std::string> row = {SetName(size, sparse)};
      for (const auto& [name, engine] : engines) {
        row.push_back(FormatResult(RunAndRecord(
            "fig08", dataset, row[0], name, *engine, queries, config)));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 8", "total processing time vs |V(q)|", config);
  for (const std::string dataset :
       {"hprd", "yeast", "synthetic", "human"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
