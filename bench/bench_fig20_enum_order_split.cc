// Reproduces paper Figure 20 (appendix): the Figure-12 experiment split into
// enumeration time and ordering time while varying #embeddings.
//
// Expected shape (Eval-A-I): CFL-Match's ordering time is *independent* of
// #embeddings (the CPI is built once, in full); TurboISO's ordering time
// grows with #embeddings because it explores/materializes candidate regions
// on demand as more embeddings are requested.

#include "baseline/turboiso.h"
#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  std::vector<std::unique_ptr<SubgraphEngine>> engines;
  engines.push_back(MakeTurboIso(g));
  engines.push_back(MakeCflMatch(g));

  const uint32_t default_size = DefaultQuerySize(dataset, g);

  Table table({"query set", "#embeddings", "TurboISO enum", "TurboISO order",
               "CFL enum", "CFL order"});
  for (bool sparse : {true, false}) {
    std::vector<Graph> queries =
        MakeQuerySet(g, dataset, default_size, sparse, config);
    for (uint64_t cap : {uint64_t{1'000}, uint64_t{100'000},
                         uint64_t{100'000'000}}) {
      Config varied = config;
      varied.max_embeddings = cap;
      std::vector<std::string> row = {SetName(default_size, sparse),
                                      std::to_string(cap)};
      for (const auto& engine : engines) {
        QuerySetResult r = RunQuerySet(*engine, queries, MakeRunConfig(varied));
        row.push_back(FormatEnumResult(r));
        row.push_back(FormatOrderResult(r));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 20", "enumeration/ordering split vs #embeddings",
                config);
  for (const std::string dataset : {"hprd", "synthetic"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
