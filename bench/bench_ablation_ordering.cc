// Ablation of the matching-order machinery (DESIGN.md design-choice index;
// extends the paper's Figure 1 motivation into a measured experiment):
//
//   * CFL-Match            — Algorithm 2, cost-model-driven path ordering
//   * CFL-Match-BFSOrder   — identical pipeline, but paths sequenced in
//                            plain BFS discovery order (no cost model)
//   * BFS-order ablation of the ordering *within* the same CPI and
//     decomposition, so the delta is attributable to Algorithm 2 alone.
//
// Additionally prints the Section 2.1 cost model T_iso, evaluated on both
// orders for the smaller query sets, echoing the paper's 200302-vs-2302
// Figure 1 arithmetic on live workloads.

#include "bench/bench_common.h"
#include "cpi/cpi_builder.h"
#include "cpi/root_select.h"
#include "decomp/bfs_tree.h"
#include "decomp/cfl_decomposition.h"
#include "decomp/two_core.h"
#include "order/cost_model.h"

namespace cfl::bench {
namespace {

// Average T_iso of a query set under a path-ordering strategy (queries whose
// breadths overflow the cap are skipped for both strategies).
double AverageCost(const Graph& g, const std::vector<Graph>& queries,
                   PathOrderingStrategy strategy) {
  LabelDegreeIndex index(g);
  double total = 0.0;
  uint32_t counted = 0;
  for (const Graph& q : queries) {
    std::vector<VertexId> core = TwoCoreVertices(q);
    std::vector<VertexId> choices = core;
    if (choices.empty()) {
      for (VertexId u = 0; u < q.NumVertices(); ++u) choices.push_back(u);
    }
    VertexId root = SelectRoot(q, g, index, choices);
    CflDecomposition d = DecomposeCfl(q, root);
    BfsTree tree = BuildBfsTree(q, root);
    Cpi cpi = BuildCpi(q, g, tree);
    if (cpi.HasEmptyCandidateSet()) continue;
    // Cost of the core+forest order (the leaf stage is shared).
    MatchingOrder order =
        ComputeMatchingOrder(q, cpi, d, DecompositionMode::kCfl, strategy);
    CostModelResult cost =
        ComputeMatchingCost(q, g, order.steps, /*max_breadth=*/200'000);
    if (cost.truncated) continue;
    total += static_cast<double>(cost.total_cost);
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  std::vector<std::unique_ptr<SubgraphEngine>> engines;
  engines.push_back(MakeCflMatchBfsOrder(g));
  engines.push_back(MakeCflMatch(g));

  Table table({"query set", "BFS order", "Algorithm 2", "T_iso BFS",
               "T_iso Alg2"});
  for (bool sparse : {true, false}) {
    uint32_t size = DefaultQuerySize(dataset, g);
    std::vector<Graph> queries = MakeQuerySet(g, dataset, size, sparse, config);
    std::vector<std::string> row = {SetName(size, sparse)};
    for (const auto& engine : engines) {
      row.push_back(
          FormatResult(RunQuerySet(*engine, queries, MakeRunConfig(config))));
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f",
                  AverageCost(g, queries, PathOrderingStrategy::kBfsNatural));
    row.push_back(buffer);
    std::snprintf(buffer, sizeof(buffer), "%.0f",
                  AverageCost(g, queries, PathOrderingStrategy::kGreedyCost));
    row.push_back(buffer);
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Ablation", "Algorithm 2 ordering vs plain BFS path order",
                config);
  for (const std::string dataset : {"hprd", "yeast"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
