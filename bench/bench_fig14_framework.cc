// Reproduces paper Figure 14: effectiveness of the CFL framework — Match
// (no decomposition) vs CF-Match (core-forest) vs CFL-Match (core-forest-
// leaf) on HPRD-like and Yeast-like graphs, default query sets q50S/q50N.
//
// Expected shape (Eval-V): CF-Match improves on Match; CFL-Match further
// improves on CF-Match by postponing the leaf Cartesian products; the
// improvement is larger on Yeast (more candidates per query vertex).

#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  std::vector<std::unique_ptr<SubgraphEngine>> engines;
  engines.push_back(MakeMatchNoDecomp(g));
  engines.push_back(MakeCfMatch(g));
  engines.push_back(MakeCflMatch(g));

  Table table({"query set", "Match", "CF-Match", "CFL-Match"});
  for (bool sparse : {true, false}) {
    std::vector<Graph> queries =
        MakeQuerySet(g, dataset, DefaultQuerySize(dataset, g), sparse, config);
    std::vector<std::string> row = {SetName(DefaultQuerySize(dataset, g), sparse)};
    for (const auto& engine : engines) {
      row.push_back(
          FormatResult(RunQuerySet(*engine, queries, MakeRunConfig(config))));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 14",
                "framework ablation: Match vs CF-Match vs CFL-Match", config);
  for (const std::string dataset : {"hprd", "yeast"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
