// Reproduces paper Figure 11: embedding-enumeration time when processing
// only the *core-structures* of queries (the 2-core induced subgraph), on
// HPRD-like and Synthetic graphs. With no forest/leaf parts, the CFL
// framework reduces to Core-Match, so this isolates the quality of the
// CPI-based matching order (Eval-II).
//
// Expected shape: all three engines finish (cores are smaller and have
// fewer embeddings than full queries); CFL-Match still clearly fastest,
// confirming the greedy path ordering of Algorithm 2.

#include "baseline/quicksi.h"
#include "baseline/turboiso.h"
#include "bench/bench_common.h"
#include "decomp/two_core.h"
#include "graph/graph_builder.h"

namespace cfl::bench {
namespace {

// Extracts the core-structure of each query; queries whose 2-core is empty
// (trees) or trivial (< 3 vertices) are dropped.
std::vector<Graph> CoreStructures(const std::vector<Graph>& queries) {
  std::vector<Graph> cores;
  for (const Graph& q : queries) {
    std::vector<VertexId> core = TwoCoreVertices(q);
    if (core.size() < 3) continue;
    cores.push_back(InducedSubgraph(q, core));
  }
  return cores;
}

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  std::vector<std::pair<std::string, std::unique_ptr<SubgraphEngine>>> engines;
  engines.emplace_back("QuickSI", MakeQuickSi(g));
  engines.emplace_back("TurboISO", MakeTurboIso(g));
  engines.emplace_back("CFL-Match", MakeCflMatch(g));

  Table table({"query set", "#cores", "QuickSI", "TurboISO", "CFL-Match"});
  for (uint32_t size : QuerySizes(dataset, g)) {
    for (bool sparse : {true, false}) {
      std::vector<Graph> cores =
          CoreStructures(MakeQuerySet(g, dataset, size, sparse, config));
      std::vector<std::string> row = {SetName(size, sparse),
                                      std::to_string(cores.size())};
      for (const auto& [name, engine] : engines) {
        if (cores.empty()) {
          row.push_back("-");
          continue;
        }
        row.push_back(FormatEnumResult(RunAndRecord(
            "fig11", dataset, row[0], name, *engine, cores, config)));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 11",
                "enumeration time for query core-structures vs |V(q)|",
                config);
  for (const std::string dataset : {"hprd", "synthetic"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
