// Update-throughput and query-latency-under-churn driver for the dynamic
// data graph (ISSUE 10).
//
// Self-hosting like bench_serve_load: the driver starts an in-process
// QueryServer on a private socket, then measures two phases over the same
// relabeled query mix:
//
//   quiet — C closed-loop clients counting embeddings against a static
//           graph: the baseline qps and latency distribution.
//   churn — the same clients keep querying while one updater session
//           commits B UPDATE batches of K edge swaps each (every batch
//           removes existing edges and adds previously-absent ones, tracked
//           in a client-side mirror so no batch is ever rejected).
//
// Reported: committed updates/sec and batch-commit latency on the updater
// side; qps + p50/p95 on the query side for both phases, so the cost of
// epoch folding, plan-cache invalidation and matcher rebinding shows up as
// the quiet-vs-churn delta. The final STATS line must account for every
// batch (updates == B, epoch >= B) or the process exits non-zero, so the
// smoke run doubles as an end-to-end UPDATE liveness check. Results append
// to CFL_BENCH_JSON as {"artifact":"dyn_update", ...} lines; BENCH_10.json
// in the repo root is a checked-in snapshot.
//
//   bench_dyn_update [--dataset=NAME] [--batches=B] [--ops=K] [--clients=C]
//                    [--workers=W] [--queries=Q] [--query-size=S] [--smoke]

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "gen/rng.h"
#include "graph/graph_builder.h"
#include "obs/clock.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace cfl;

struct DriverConfig {
  std::string dataset = "synthetic";
  uint32_t batches = 64;      // UPDATE batches in the churn phase
  uint32_t ops = 16;          // edge swaps per batch
  uint32_t clients = 4;       // concurrent closed-loop query clients
  uint32_t workers = 4;       // server enumeration workers
  uint32_t queries = 8;       // distinct query shapes
  uint32_t query_size = 8;
  uint64_t max_embeddings = 10'000;
  double time_limit_seconds = 10.0;
};

// A random vertex renumbering of `q` (same logical query, new ids).
Graph Relabel(const Graph& q, Rng& rng) {
  const uint32_t n = q.NumVertices();
  std::vector<VertexId> perm(n);
  for (VertexId v = 0; v < n; ++v) perm[v] = v;
  for (uint32_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Below(i)]);
  }
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) builder.SetLabel(perm[v], q.label(v));
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : q.Neighbors(v)) {
      if (u > v) builder.AddEdge(perm[v], perm[u]);
    }
  }
  return std::move(builder).Build();
}

// Client-side mirror of the server's edge set: batches are generated
// against it, so the single-writer updater never sends a rejectable op.
struct EdgeMirror {
  std::vector<std::set<VertexId>> adj;
  std::vector<std::pair<VertexId, VertexId>> edges;  // u < v

  explicit EdgeMirror(const Graph& g) : adj(g.NumVertices()) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (VertexId w : g.Neighbors(v)) {
        adj[v].insert(w);
        if (w > v) edges.emplace_back(v, w);
      }
    }
  }

  // K/2 removals of random present edges + K/2 additions of random absent
  // pairs, applied to the mirror as they are generated.
  std::vector<serve::UpdateOp> NextBatch(Rng& rng, uint32_t k) {
    std::vector<serve::UpdateOp> ops;
    const uint32_t n = static_cast<uint32_t>(adj.size());
    for (uint32_t i = 0; i < k / 2 && !edges.empty(); ++i) {
      const size_t pick = rng.Below(edges.size());
      auto [u, v] = edges[pick];
      edges[pick] = edges.back();
      edges.pop_back();
      adj[u].erase(v);
      adj[v].erase(u);
      ops.push_back({serve::UpdateOp::Kind::kRemoveEdge, u, v});
    }
    while (ops.size() < k) {
      VertexId u = static_cast<VertexId>(rng.Below(n));
      VertexId v = static_cast<VertexId>(rng.Below(n));
      if (u == v || adj[u].count(v) > 0) continue;
      adj[u].insert(v);
      adj[v].insert(u);
      edges.emplace_back(std::min(u, v), std::max(u, v));
      ops.push_back({serve::UpdateOp::Kind::kAddEdge, u, v});
    }
    return ops;
  }
};

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  if (idx >= sorted_ms.size()) idx = sorted_ms.size() - 1;
  return sorted_ms[idx];
}

struct QueryPhaseResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  uint64_t completed = 0;
  uint64_t errors = 0;
};

struct ChurnResult {
  QueryPhaseResult queries;
  double updates_per_sec = 0.0;   // committed edge ops per second
  double batch_p50_ms = 0.0;      // UPDATE round-trip latency
  double batch_p95_ms = 0.0;
  uint64_t batches = 0;
  uint64_t failed_batches = 0;
};

// Runs the closed-loop clients over relabeled requests until `stop` flips
// (or a generous request cap is hit, so the quiet phase terminates too).
QueryPhaseResult RunQueryClients(const std::string& socket_path,
                                 const std::vector<Graph>& shapes,
                                 const DriverConfig& d,
                                 const MatchLimits& limits, uint64_t cap,
                                 std::atomic<bool>* stop) {
  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::vector<double>> latencies(d.clients);
  obs::WallTimer wall;

  std::vector<std::thread> clients;
  clients.reserve(d.clients);
  for (uint32_t c = 0; c < d.clients; ++c) {
    clients.emplace_back([&, c] {
      serve::ServeClient client;
      if (!client.Connect(socket_path)) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Rng rng(0xd15ea5eULL + c);
      while (!stop->load(std::memory_order_relaxed)) {
        const uint64_t i = issued.fetch_add(1, std::memory_order_relaxed);
        if (i >= cap) break;
        Graph request = Relabel(shapes[i % shapes.size()], rng);
        obs::WallTimer request_timer;
        serve::ServeClient::Reply reply = client.Count(request, limits);
        latencies[c].push_back(request_timer.Lap() * 1e3);
        if (!reply.ok) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_seconds = wall.Lap();

  std::vector<double> merged;
  for (const std::vector<double>& per_client : latencies) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  std::sort(merged.begin(), merged.end());

  QueryPhaseResult r;
  r.completed = merged.size();
  r.errors = errors.load();
  r.qps = wall_seconds > 0.0
              ? static_cast<double>(merged.size()) / wall_seconds
              : 0.0;
  r.p50_ms = Percentile(merged, 0.50);
  r.p95_ms = Percentile(merged, 0.95);
  return r;
}

void AppendJson(const DriverConfig& d, const QueryPhaseResult& quiet,
                const ChurnResult& churn,
                const std::map<std::string, uint64_t>& stats) {
  const std::string path = BenchJsonPath();
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  auto stat = [&stats](const char* key) -> uint64_t {
    auto it = stats.find(key);
    return it == stats.end() ? 0 : it->second;
  };
  out << "{\"artifact\":\"dyn_update\",\"dataset\":\"" << d.dataset
      << "\",\"clients\":" << d.clients << ",\"workers\":" << d.workers
      << ",\"batches\":" << churn.batches << ",\"ops_per_batch\":" << d.ops
      << ",\"updates_per_sec\":" << churn.updates_per_sec
      << ",\"batch_p50_ms\":" << churn.batch_p50_ms
      << ",\"batch_p95_ms\":" << churn.batch_p95_ms
      << ",\"quiet_qps\":" << quiet.qps << ",\"quiet_p50_ms\":" << quiet.p50_ms
      << ",\"quiet_p95_ms\":" << quiet.p95_ms
      << ",\"churn_qps\":" << churn.queries.qps
      << ",\"churn_p50_ms\":" << churn.queries.p50_ms
      << ",\"churn_p95_ms\":" << churn.queries.p95_ms
      << ",\"query_errors\":" << quiet.errors + churn.queries.errors
      << ",\"update_retries\":" << stat("update_retries")
      << ",\"cache_invalidations\":" << stat("cache_invalidations")
      << ",\"folds\":" << stat("folds")
      << ",\"compactions\":" << stat("compactions")
      << ",\"final_epoch\":" << stat("epoch") << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  DriverConfig d;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--dataset=", 0) == 0) {
      d.dataset = arg.substr(10);
    } else if (arg.rfind("--batches=", 0) == 0) {
      d.batches = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--ops=", 0) == 0) {
      d.ops = static_cast<uint32_t>(std::stoul(arg.substr(6)));
    } else if (arg.rfind("--clients=", 0) == 0) {
      d.clients = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--workers=", 0) == 0) {
      d.workers = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--queries=", 0) == 0) {
      d.queries = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--query-size=", 0) == 0) {
      d.query_size = static_cast<uint32_t>(std::stoul(arg.substr(13)));
    } else if (arg == "--smoke") {
      smoke = true;
      d.batches = 8;
      d.ops = 8;
      d.clients = 2;
      d.workers = 2;
      d.queries = 4;
      d.query_size = 5;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (d.batches == 0 || d.ops < 2 || d.clients == 0 || d.queries == 0) {
    std::fprintf(stderr, "batches/ops/clients/queries must be positive\n");
    return 2;
  }

  bench::Config bc = bench::LoadConfig();
  if (smoke) bc.scale = std::min(bc.scale, 0.02);
  Graph data = bench::MakeBenchGraph(d.dataset, bc);
  std::printf("dyn update: %s (%u vertices, %llu edges), %u batches x %u "
              "ops, %u clients, %u workers\n",
              d.dataset.c_str(), data.NumVertices(),
              static_cast<unsigned long long>(data.NumEdges()), d.batches,
              d.ops, d.clients, d.workers);

  std::vector<Graph> shapes = GenerateQuerySet(
      data, d.queries, d.query_size, /*sparse=*/true, /*seed=*/0xd1ffULL);

  MatchLimits limits;
  limits.max_embeddings = d.max_embeddings;
  limits.time_limit_seconds = d.time_limit_seconds;

  const std::string socket_path =
      "/tmp/cfl_dyn_update_" + std::to_string(getpid()) + ".sock";
  serve::ServeOptions options;
  options.socket_path = socket_path;
  options.workers = d.workers;
  options.sessions = d.clients + 3;  // clients + updater + admin
  options.max_time_limit_seconds = d.time_limit_seconds;
  serve::QueryServer server(data, options);
  std::thread server_thread([&server] { server.Serve(); });

  {
    serve::ServeClient probe;
    bool up = false;
    for (int attempt = 0; attempt < 200 && !up; ++attempt) {
      up = probe.Connect(socket_path) && probe.Ping();
      if (!up) usleep(10'000);
    }
    if (!up) {
      std::fprintf(stderr, "server did not come up on %s\n",
                   socket_path.c_str());
      server.RequestShutdown();
      server_thread.join();
      return 1;
    }
  }

  // Phase 1: quiet baseline over a fixed request budget.
  const uint64_t quiet_cap = static_cast<uint64_t>(d.clients) * 3 *
                             std::max<uint64_t>(d.queries, 4);
  std::atomic<bool> never{false};
  QueryPhaseResult quiet =
      RunQueryClients(socket_path, shapes, d, limits, quiet_cap, &never);
  std::printf("quiet  qps=%8.1f  p50=%7.2fms  p95=%7.2fms  queries=%llu\n",
              quiet.qps, quiet.p50_ms, quiet.p95_ms,
              static_cast<unsigned long long>(quiet.completed));

  // Phase 2: the same mix under churn.
  ChurnResult churn;
  std::atomic<bool> stop{false};
  std::thread updater([&] {
    serve::ServeClient client;
    if (!client.Connect(socket_path)) {
      churn.failed_batches = d.batches;
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    EdgeMirror mirror(data);
    Rng rng(0xc0ffeeULL);
    std::vector<double> batch_ms;
    obs::WallTimer wall;
    for (uint32_t b = 0; b < d.batches; ++b) {
      std::vector<serve::UpdateOp> ops = mirror.NextBatch(rng, d.ops);
      obs::WallTimer batch_timer;
      serve::ServeClient::UpdateReply reply = client.Update(ops);
      batch_ms.push_back(batch_timer.Lap() * 1e3);
      if (!reply.ok) {
        std::fprintf(stderr, "UPDATE failed: %s\n", reply.error.c_str());
        ++churn.failed_batches;
      } else {
        ++churn.batches;
      }
    }
    const double wall_seconds = wall.Lap();
    churn.updates_per_sec =
        wall_seconds > 0.0
            ? static_cast<double>(churn.batches) * d.ops / wall_seconds
            : 0.0;
    std::sort(batch_ms.begin(), batch_ms.end());
    churn.batch_p50_ms = Percentile(batch_ms, 0.50);
    churn.batch_p95_ms = Percentile(batch_ms, 0.95);
    stop.store(true, std::memory_order_relaxed);
  });
  churn.queries = RunQueryClients(socket_path, shapes, d, limits,
                                  /*cap=*/UINT64_MAX, &stop);
  updater.join();
  std::printf("churn  qps=%8.1f  p50=%7.2fms  p95=%7.2fms  queries=%llu\n",
              churn.queries.qps, churn.queries.p50_ms, churn.queries.p95_ms,
              static_cast<unsigned long long>(churn.queries.completed));
  std::printf("update rate=%8.1f ops/s  batch p50=%7.2fms  p95=%7.2fms  "
              "batches=%llu/%u\n",
              churn.updates_per_sec, churn.batch_p50_ms, churn.batch_p95_ms,
              static_cast<unsigned long long>(churn.batches), d.batches);

  std::map<std::string, uint64_t> stats;
  {
    serve::ServeClient admin;
    if (admin.Connect(socket_path)) {
      stats = admin.Stats();
      admin.Shutdown();
    } else {
      server.RequestShutdown();
    }
  }
  server_thread.join();

  std::printf("stats: updates=%llu retries=%llu invalidations=%llu "
              "folds=%llu compactions=%llu epoch=%llu\n",
              static_cast<unsigned long long>(stats["updates"]),
              static_cast<unsigned long long>(stats["update_retries"]),
              static_cast<unsigned long long>(stats["cache_invalidations"]),
              static_cast<unsigned long long>(stats["folds"]),
              static_cast<unsigned long long>(stats["compactions"]),
              static_cast<unsigned long long>(stats["epoch"]));
  AppendJson(d, quiet, churn, stats);

  const bool pass = churn.failed_batches == 0 &&
                    churn.batches == d.batches &&
                    stats["updates"] == d.batches &&
                    stats["epoch"] >= d.batches && quiet.errors == 0 &&
                    churn.queries.errors == 0 && quiet.completed > 0 &&
                    churn.queries.completed > 0;
  if (!pass) {
    std::fprintf(stderr,
                 "FAILED: lost updates, query errors, or zero throughput\n");
    return 1;
  }
  return 0;
}
