// Reproduces paper Figure 22 (appendix): frequent vs infrequent vs random
// query sets on DBLP-like and WordNet-like graphs, comparing CFL-Match and
// TurboISO. Frequent queries have many embeddings (count above a high bar),
// infrequent ones few (below a low bar); random is the ordinary generator
// output. The bars scale with the graph size (the paper used 1e4/1e3 on
// DBLP and 1e8 on WordNet at full size).
//
// Expected shape (Eval-A-II): CFL-Match much faster than TurboISO on all
// three classes.

#include "baseline/turboiso.h"
#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

struct Classified {
  std::vector<Graph> frequent;
  std::vector<Graph> infrequent;
  std::vector<Graph> random;
};

Classified ClassifyQueries(const Graph& g, const std::string& dataset,
                           uint32_t size, const Config& config) {
  Classified out;
  std::unique_ptr<SubgraphEngine> probe = MakeCflMatch(g);
  // DBLP's 100 uniform labels make large counts rare at reduced scale; its
  // bars sit lower (the paper's full-scale bars were 1e4/1e3 on DBLP and
  // 1e8 on WordNet).
  const uint64_t hi = (dataset == "dblp") ? 2'000 : 10'000;
  const uint64_t lo = hi / 10;
  MatchLimits probe_limits;
  probe_limits.max_embeddings = hi;
  probe_limits.time_limit_seconds = 1.0;
  // Probe a larger pool; keep up to queries_per_set of each class.
  uint32_t pool = config.queries_per_set * 8;
  for (uint32_t i = 0; i < pool; ++i) {
    QueryGenOptions qo;
    qo.num_vertices = size;
    qo.sparse = (i % 2 == 0);
    qo.seed = SetSeed(dataset, size, false) * 131 + i;
    Graph q = GenerateQuery(g, qo);
    if (out.random.size() < config.queries_per_set) out.random.push_back(q);
    MatchResult r = probe->Run(q, probe_limits);
    if (r.timed_out) continue;
    if (r.embeddings >= hi && out.frequent.size() < config.queries_per_set) {
      out.frequent.push_back(q);
    } else if (r.embeddings <= lo &&
               out.infrequent.size() < config.queries_per_set) {
      out.infrequent.push_back(q);
    }
    if (out.frequent.size() >= config.queries_per_set &&
        out.infrequent.size() >= config.queries_per_set &&
        out.random.size() >= config.queries_per_set) {
      break;
    }
  }
  return out;
}

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);

  const uint32_t size = DefaultQuerySize(dataset, g);
  Classified sets = ClassifyQueries(g, dataset, size, config);

  std::vector<std::unique_ptr<SubgraphEngine>> engines;
  engines.push_back(MakeTurboIso(g));
  engines.push_back(MakeCflMatch(g));

  Table table({"query class", "#queries", "TurboISO", "CFL-Match"});
  auto add = [&](const char* name, const std::vector<Graph>& queries) {
    std::vector<std::string> row = {name, std::to_string(queries.size())};
    for (const auto& engine : engines) {
      if (queries.empty()) {
        row.push_back("-");
        continue;
      }
      row.push_back(
          FormatResult(RunQuerySet(*engine, queries, MakeRunConfig(config))));
    }
    table.AddRow(std::move(row));
  };
  add("frequent", sets.frequent);
  add("infrequent", sets.infrequent);
  add("random", sets.random);
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 22", "frequent vs infrequent vs random queries",
                config);
  for (const std::string dataset : {"wordnet", "dblp"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
