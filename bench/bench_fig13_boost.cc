// Reproduces paper Figure 13: the data-graph compression boost of [14]
// applied to CFL-Match, on HPRD-like (compression ratio < 5%) and
// Human-like (~40%) graphs.
//
// Expected shape (Eval-IV): the boost helps on Human thanks to the high
// compression ratio, but is slightly *slower* than plain CFL-Match on HPRD
// — the query-dependent compression overhead is not recouped.

#include "baseline/compress.h"
#include "bench/bench_common.h"

namespace cfl::bench {
namespace {

void RunDataset(const std::string& dataset, const Config& config) {
  Graph g = MakeBenchGraph(dataset, config);
  PrintGraphLine(dataset, g);
  CompressedGraph whole = CompressBySE(g);
  std::cout << "SE compression ratio: " << whole.CompressionRatio() << "\n";

  std::vector<std::unique_ptr<SubgraphEngine>> engines;
  engines.push_back(MakeCflMatch(g));
  engines.push_back(MakeCflMatchBoost(g));

  Table table({"query set", "CFL-Match", "CFL-Match-Boost"});
  for (uint32_t size : QuerySizes(dataset, g)) {
    for (bool sparse : {true, false}) {
      std::vector<Graph> queries =
          MakeQuerySet(g, dataset, size, sparse, config);
      std::vector<std::string> row = {SetName(size, sparse)};
      for (const auto& engine : engines) {
        row.push_back(
            FormatResult(RunQuerySet(*engine, queries, MakeRunConfig(config))));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace cfl::bench

int main() {
  using namespace cfl::bench;
  Config config = LoadConfig();
  PrintPreamble("Figure 13", "the data-graph compression boost [14]", config);
  for (const std::string dataset : {"hprd", "human"}) {
    RunDataset(dataset, config);
  }
  return 0;
}
