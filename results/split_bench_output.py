#!/usr/bin/env python3
"""Splits a concatenated `for b in build/bench/*; do $b; done` transcript
(bench_output.txt) into per-bench files under results/.

Each figure bench starts with a distinctive "=== <artifact>: ..." banner;
google-benchmark output (bench_micro) is recognized by its context header.
"""
import os
import re
import sys

BANNERS = {
    "=== Ablation:": "bench_ablation_ordering.txt",
    "=== Figure 8:": "bench_fig08_total_time.txt",
    "=== Figure 9:": "bench_fig09_enum_time.txt",
    "=== Figure 10:": "bench_fig10_order_time.txt",
    "=== Figure 11:": "bench_fig11_core_enum.txt",
    "=== Figure 12:": "bench_fig12_vary_embeddings.txt",
    "=== Figure 13:": "bench_fig13_boost.txt",
    "=== Figure 14:": "bench_fig14_framework.txt",
    "=== Figure 15:": "bench_fig15_cpi_strategies.txt",
    "=== Figure 16:": "bench_fig16_scalability.txt",
    "=== Figure 20:": "bench_fig20_enum_order_split.txt",
    "=== Figure 21:": "bench_fig21_boost_large.txt",
    "=== Figure 22:": "bench_fig22_freq_queries.txt",
    "=== Table 4:": "bench_table4_nec_stats.txt",
}


def main() -> None:
    src = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "results"
    os.makedirs(out_dir, exist_ok=True)
    current = None
    chunks: dict[str, list[str]] = {}
    with open(src) as f:
        for line in f:
            for banner, name in BANNERS.items():
                if line.startswith(banner):
                    current = name
                    break
            if re.match(r"^\d{4}-\d{2}-\d{2}T", line) or line.startswith(
                    "Running ") or line.startswith("Run on "):
                current = "bench_micro.txt"
            if current is not None:
                chunks.setdefault(current, []).append(line)
    for name, lines in chunks.items():
        with open(os.path.join(out_dir, name), "w") as f:
            f.writelines(lines)
    print(f"wrote {len(chunks)} files to {out_dir}/")


if __name__ == "__main__":
    main()
