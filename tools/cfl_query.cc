// Command-line subgraph matching: load a data graph and a query graph from
// files (the `t/v/e` text format, see graph/graph_io.h) and extract
// embeddings with the engine of your choice.
//
//   cfl_query <data-file> <query-file> [options]
//
// Options:
//   --engine=NAME    cfl (default) | cf | match | cfl-td | cfl-naive |
//                    cfl-boost | turboiso | turboiso-boost | quicksi |
//                    vf2 | ullmann
//   --max=N          stop after N embeddings (default: all)
//   --time-limit=S   per-query wall limit in seconds (default: none)
//   --print          print each embedding (CFL engines only)
//   --stats          print the execution-stats block (phase timers, pruning
//                    and search counters; see src/obs/stats.h). Requires a
//                    CFL_STATS=ON build (the default).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "baseline/compress.h"
#include "baseline/quicksi.h"
#include "baseline/turboiso.h"
#include "baseline/ullmann.h"
#include "baseline/vf2.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "match/cfl_match.h"
#include "match/engine.h"
#include "obs/stats.h"

namespace {

using namespace cfl;

std::unique_ptr<SubgraphEngine> MakeEngine(const std::string& name,
                                           const Graph& data) {
  if (name == "cfl") return MakeCflMatch(data);
  if (name == "cf") return MakeCfMatch(data);
  if (name == "match") return MakeMatchNoDecomp(data);
  if (name == "cfl-td") return MakeCflMatchTd(data);
  if (name == "cfl-naive") return MakeCflMatchNaive(data);
  if (name == "cfl-boost") return MakeCflMatchBoost(data);
  if (name == "turboiso") return MakeTurboIso(data);
  if (name == "turboiso-boost") return MakeTurboIsoBoost(data);
  if (name == "quicksi") return MakeQuickSi(data);
  if (name == "vf2") return MakeVf2(data);
  if (name == "ullmann") return MakeUllmann(data);
  return nullptr;
}

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <data-file> <query-file> [--engine=NAME] [--max=N]\n"
      "          [--time-limit=S] [--print] [--stats]\n"
      "engines: cfl cf match cfl-td cfl-naive cfl-boost turboiso\n"
      "         turboiso-boost quicksi vf2 ullmann\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) Usage(argv[0]);
  std::string engine_name = "cfl";
  MatchLimits limits;
  bool print = false;
  bool show_stats = false;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      engine_name = arg.substr(9);
    } else if (arg.rfind("--max=", 0) == 0) {
      limits.max_embeddings = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--time-limit=", 0) == 0) {
      limits.time_limit_seconds = std::atof(arg.c_str() + 13);
    } else if (arg == "--print") {
      print = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else {
      Usage(argv[0]);
    }
  }

  Graph data, query;
  try {
    data = LoadGraph(argv[1]);
    query = LoadGraph(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("data:  %s\n", Describe(ComputeStats(data)).c_str());
  std::printf("query: %s\n", Describe(ComputeStats(query)).c_str());

  MatchResult result;
  if (print) {
    // Enumeration with a callback is a CflMatcher feature.
    CflMatcher matcher(data);
    MatchOptions options;
    options.limits = limits;
    options.on_embedding = [&](const Embedding& m) {
      std::printf("embedding:");
      for (VertexId u = 0; u < query.NumVertices(); ++u) {
        std::printf(" %u->%u", u, m[u]);
      }
      std::printf("\n");
      return true;
    };
    result = matcher.Match(query, options);
    engine_name = "cfl";
  } else {
    std::unique_ptr<SubgraphEngine> engine = MakeEngine(engine_name, data);
    if (engine == nullptr) Usage(argv[0]);
    result = engine->Run(query, limits);
  }

  std::printf(
      "[%s] embeddings=%llu%s  total=%.3fms (ordering=%.3fms, "
      "enumeration=%.3fms)%s\n",
      engine_name.c_str(), static_cast<unsigned long long>(result.embeddings),
      result.reached_limit ? "+" : "", result.total_seconds * 1e3,
      result.OrderingSeconds() * 1e3, result.enumerate_seconds * 1e3,
      result.timed_out ? "  [TIMED OUT]" : "");
  if (show_stats) {
    std::printf("%s", obs::FormatStats(result.stats).c_str());
    std::string violation = obs::CheckStatsInvariants(
        result.stats, result.embeddings, result.total_seconds);
    if (!violation.empty()) {
      std::fprintf(stderr, "stats invariant violated: %s\n",
                   violation.c_str());
      return 4;
    }
  }
  return result.timed_out ? 3 : 0;
}
