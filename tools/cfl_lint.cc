// cfl_lint: the project-rule linter for the CFL-Match tree.
//
// A deliberately self-contained token-level linter (no libclang, no
// compilation database — it runs anywhere the tree checks out) that walks
// src/, bench/, and tools/ and enforces the rules the concurrency contracts
// depend on. clang-tidy and Clang Thread Safety Analysis check what the
// compiler can see; cfl_lint checks the *project* conventions that make
// those analyses sound in the first place — e.g. TSA is useless against a
// raw std::mutex member it has no annotations for.
//
// Rules (ids are what allow-comments and diagnostics use):
//   raw-assert       `assert(` outside src/check/ — use CFL_DCHECK, which
//                    prints context instead of aborting mutely.
//   raw-mutex        std::mutex / std::condition_variable (and friends,
//                    incl. lock_guard/unique_lock/scoped_lock) outside
//                    src/check/thread_annotations.h — use the annotated
//                    cfl::Mutex / cfl::MutexLock / cfl::CondVar wrappers so
//                    Thread Safety Analysis can see the critical sections.
//   mutable-member   `mutable` anywhere — caches invisible to const are how
//                    "immutable" structures grow data races; every use needs
//                    an explicit justification via an allow-comment.
//   immutable-class  violations inside a CFL_IMMUTABLE_AFTER_BUILD class:
//                    non-const public methods (constructors, destructors,
//                    and assignment operators excepted), mutable members.
//   const-cast       `const_cast` anywhere — piercing constness voids the
//                    shared-read contracts.
//   banned-include   library code (src/) including headers it must not:
//                    <mutex>/<condition_variable>/<shared_mutex> outside
//                    thread_annotations.h, <thread> outside src/parallel/,
//                    <iostream> outside src/check/ (diagnostics go through
//                    check.h or the harness).
//   raw-clock        `steady_clock` outside src/obs/ and src/harness/ —
//                    wall-clock reads go through the cfl::obs facade
//                    (src/obs/clock.h) so every timer is reconcilable with
//                    the MatchStats phase accounting.
//   bad-allow        a malformed escape hatch: unknown rule id or missing
//                    reason. Allow-comments must carry their justification.
//
// Escape hatch: `// cfl-lint: allow(<rule>) <reason>` on the offending line
// or the line directly above suppresses that one rule there. The reason is
// mandatory; an unknown rule or empty reason is itself an error, so stale
// or hand-waving suppressions cannot accumulate.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error — CI gates on
// this (the `lint` job and the `cfl_lint_tree` ctest).
//
// Usage:
//   cfl_lint [--root DIR] [FILE...]
// With no FILEs, lints every .h/.cc/.cpp under DIR/{src,bench,tools}
// (DIR defaults to the current directory).

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---- rule ids -----------------------------------------------------------

const char kRawAssert[] = "raw-assert";
const char kRawMutex[] = "raw-mutex";
const char kMutableMember[] = "mutable-member";
const char kImmutableClass[] = "immutable-class";
const char kConstCast[] = "const-cast";
const char kBannedInclude[] = "banned-include";
const char kRawClock[] = "raw-clock";
const char kBadAllow[] = "bad-allow";

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> rules = {
      kRawAssert,    kRawMutex,  kMutableMember, kImmutableClass,
      kConstCast,    kBannedInclude, kRawClock,  kBadAllow};
  return rules;
}

const char kMarker[] = "CFL_IMMUTABLE_AFTER_BUILD";

// ---- diagnostics --------------------------------------------------------

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// ---- source model -------------------------------------------------------

// One allow-comment, parsed from the raw text.
struct Allow {
  int line = 0;
  std::string rule;
  bool well_formed = false;
  std::string problem;  // set when !well_formed
};

struct SourceFile {
  std::string path;            // as reported in diagnostics
  std::string generic_path;    // forward slashes, for rule scoping
  std::vector<std::string> raw_lines;      // 1-based via index-1
  std::vector<std::string> code_lines;     // comments/strings blanked
  std::vector<bool> preproc;               // per line: part of a # directive
  std::vector<Allow> allows;
};

bool PathContains(const SourceFile& f, std::string_view fragment) {
  return f.generic_path.find(fragment) != std::string::npos;
}

bool PathEndsWith(const SourceFile& f, std::string_view suffix) {
  const std::string& p = f.generic_path;
  return p.size() >= suffix.size() &&
         p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Strips comments, string/char literals (incl. raw strings), and
// preprocessor directives out of the text, preserving the line structure so
// every token keeps its original line number. Comment/string bodies become
// spaces; preprocessor lines are recorded in `preproc` and blanked from the
// code view (the include rule reads the raw lines instead).
void StripSource(SourceFile& f, const std::string& text) {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  std::string code;
  code.reserve(text.size());
  State state = State::kCode;
  std::string raw_delim;         // for kRawString: ")delim"
  bool line_has_code = false;    // any non-ws emitted on this line
  bool line_is_preproc = false;  // first non-ws char was '#'
  bool continuation = false;     // previous line ended with backslash
  std::vector<bool> preproc_lines;

  auto end_line = [&]() {
    preproc_lines.push_back(line_is_preproc);
    // The '\n' is already in `code`; a backslash right before it continues
    // the directive onto the next line.
    size_t n = code.size();
    bool backslash =
        n >= 2 && code[n - 1] == '\n' && code[n - 2] == '\\';
    continuation = line_is_preproc && backslash;
    line_is_preproc = continuation;
    line_has_code = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      code.push_back('\n');
      end_line();
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (!line_has_code && !line_is_preproc) {
          if (c == '#') line_is_preproc = true;
          if (!std::isspace(static_cast<unsigned char>(c)))
            line_has_code = true;
        }
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code.append("  ");
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code.append("  ");
          ++i;
        } else if (c == '"') {
          // Raw string? The quote must directly follow an R whose own left
          // neighbor is not an identifier character (allowing u8R/uR/LR
          // prefixes, whose trailing char is still 'R').
          size_t j = code.size();
          bool raw = j > 0 && code[j - 1] == 'R' &&
                     (j < 2 ||
                      !std::isalnum(static_cast<unsigned char>(code[j - 2])) ||
                      code[j - 2] == '8' || code[j - 2] == 'u' ||
                      code[j - 2] == 'U' || code[j - 2] == 'L');
          if (raw && j >= 2 && IsIdentChar(code[j - 2]) &&
              !(code[j - 2] == '8' || code[j - 2] == 'u' ||
                code[j - 2] == 'U' || code[j - 2] == 'L')) {
            raw = false;  // identifier merely ending in R
          }
          if (raw) {
            state = State::kRawString;
            raw_delim = ")";
            code.push_back('"');  // for the opening quote itself
            size_t k = i + 1;
            while (k < text.size() && text[k] != '(' &&
                   raw_delim.size() < 18) {
              raw_delim.push_back(text[k]);
              code.push_back(' ');
              ++k;
            }
            raw_delim.push_back('"');
            i = k;  // at '(' (or bail; malformed raw strings end at EOF)
            code.push_back(' ');
          } else {
            state = State::kString;
            code.push_back('"');
          }
        } else if (c == '\'') {
          state = State::kChar;
          code.push_back('\'');
        } else {
          code.push_back(c);
        }
        break;
      }
      case State::kLineComment:
        code.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code.append("  ");
          ++i;
        } else {
          code.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          code.append("  ");
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code.push_back('"');
        } else {
          code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          code.append("  ");
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code.push_back('\'');
        } else {
          code.push_back(' ');
        }
        break;
      case State::kRawString:
        if (c == ')' &&
            text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 1; k < raw_delim.size(); ++k) code.push_back(' ');
          code.push_back('"');
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          code.push_back(' ');
        }
        break;
    }
  }
  end_line();

  // Split both views into lines.
  auto split = [](const std::string& s) {
    std::vector<std::string> lines;
    std::string cur;
    for (char c : s) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    lines.push_back(cur);
    return lines;
  };
  f.raw_lines = split(text);
  f.code_lines = split(code);
  preproc_lines.resize(f.code_lines.size(), false);
  f.preproc = preproc_lines;
  // Blank preprocessor lines out of the code view; tokens must not come
  // from directives (macro *definitions* of e.g. the marker are not uses).
  for (size_t i = 0; i < f.code_lines.size(); ++i) {
    if (f.preproc[i]) f.code_lines[i].assign(f.code_lines[i].size(), ' ');
  }
}

// ---- allow-comments -----------------------------------------------------

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// A rule id is lowercase-kebab; anything else after `allow(` is prose (for
// example documentation quoting the directive syntax), not a directive.
bool IsRuleShaped(const std::string& s) {
  if (s.empty() || !std::islower(static_cast<unsigned char>(s[0])))
    return false;
  for (char c : s) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '-'))
      return false;
  }
  return true;
}

void ParseAllows(SourceFile& f) {
  // Assembled so the linter's own source does not contain the literal tag.
  const std::string tag = std::string("cfl-lint") + ":";
  for (size_t i = 0; i < f.raw_lines.size(); ++i) {
    const std::string& line = f.raw_lines[i];
    size_t at = line.find(tag);
    if (at == std::string::npos) continue;
    Allow allow;
    allow.line = static_cast<int>(i + 1);
    std::string rest = Trim(line.substr(at + tag.size()));
    const std::string kw = "allow(";
    if (rest.compare(0, kw.size(), kw) != 0) {
      allow.problem =
          "expected allow(rule) plus a reason after the directive tag";
      f.allows.push_back(allow);
      continue;
    }
    size_t close = rest.find(')', kw.size());
    if (close == std::string::npos) {
      allow.problem = "unterminated allow(rule)";
      f.allows.push_back(allow);
      continue;
    }
    allow.rule = Trim(rest.substr(kw.size(), close - kw.size()));
    if (!IsRuleShaped(allow.rule)) continue;  // prose, not a directive
    std::string reason = Trim(rest.substr(close + 1));
    if (KnownRules().count(allow.rule) == 0) {
      allow.problem = "unknown rule id '" + allow.rule + "'";
    } else if (reason.empty()) {
      allow.problem = "missing justification after allow(" + allow.rule + ")";
    } else {
      allow.well_formed = true;
    }
    f.allows.push_back(allow);
  }
}

// True if a well-formed allow for `rule` covers `line` (same line or the
// line directly above).
bool Allowed(const SourceFile& f, const char* rule, int line) {
  for (const Allow& a : f.allows) {
    if (!a.well_formed || a.rule != rule) continue;
    if (a.line == line || a.line + 1 == line) return true;
  }
  return false;
}

// ---- small matching helpers (token-ish, on stripped lines) --------------

// Finds whole-word occurrences of `word` in `line`; returns columns.
std::vector<size_t> FindWord(const std::string& line,
                             std::string_view word) {
  std::vector<size_t> hits;
  size_t at = 0;
  while ((at = line.find(word, at)) != std::string::npos) {
    bool left_ok = at == 0 || !IsIdentChar(line[at - 1]);
    size_t end = at + word.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) hits.push_back(at);
    at = end;
  }
  return hits;
}

// Matches `std :: name` with arbitrary interior whitespace, for any name in
// `names`. Returns the matched name or empty.
std::string FindStdMember(const std::string& line,
                          const std::vector<std::string>& names) {
  for (size_t col : FindWord(line, "std")) {
    size_t i = col + 3;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i + 1 >= line.size() || line[i] != ':' || line[i + 1] != ':')
      continue;
    i += 2;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    for (const std::string& name : names) {
      if (line.compare(i, name.size(), name) == 0) {
        size_t end = i + name.size();
        if (end >= line.size() || !IsIdentChar(line[end])) return name;
      }
    }
  }
  return {};
}

// ---- tokenizer (for the immutable-class analysis) -----------------------

struct Token {
  std::string text;
  int line = 0;
};

std::vector<Token> Tokenize(const SourceFile& f) {
  std::vector<Token> tokens;
  for (size_t li = 0; li < f.code_lines.size(); ++li) {
    const std::string& line = f.code_lines[li];
    size_t i = 0;
    while (i < line.size()) {
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.line = static_cast<int>(li + 1);
      if (IsIdentChar(c)) {
        size_t j = i;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        t.text = line.substr(i, j - i);
        i = j;
      } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        t.text = "::";
        i += 2;
      } else {
        t.text.assign(1, c);
        ++i;
      }
      tokens.push_back(std::move(t));
    }
  }
  return tokens;
}

size_t SkipGroup(const std::vector<Token>& toks, size_t open,
                 const char* open_sym, const char* close_sym) {
  // `open` indexes the opening symbol; returns index one past its match.
  int depth = 0;
  size_t i = open;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == open_sym) ++depth;
    if (toks[i].text == close_sym && --depth == 0) return i + 1;
  }
  return i;
}

struct MarkedClass {
  std::string name;
  bool is_struct = false;
  size_t body_begin = 0;  // token index just past '{'
  size_t body_end = 0;    // token index of matching '}'
  int line = 0;
};

// Finds CFL_IMMUTABLE_AFTER_BUILD-marked class/struct bodies.
std::vector<MarkedClass> FindMarkedClasses(const std::vector<Token>& toks) {
  struct Scope {
    bool is_class = false;
    bool is_struct = false;
    std::string name;
    size_t body_begin = 0;
    bool marked = false;
    int line = 0;
  };
  std::vector<MarkedClass> found;
  std::vector<Scope> stack;

  bool pending = false;      // saw class/struct, waiting for '{' or ';'
  bool pending_struct = false;
  bool name_frozen = false;  // stop updating the name after ':' (bases)
  std::string pending_name;
  int pending_line = 0;

  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if ((t == "class" || t == "struct") &&
        !(i > 0 && toks[i - 1].text == "enum")) {
      pending = true;
      pending_struct = (t == "struct");
      name_frozen = false;
      pending_name.clear();
      pending_line = toks[i].line;
      continue;
    }
    if (pending) {
      if (t == "{") {
        Scope s;
        s.is_class = true;
        s.is_struct = pending_struct;
        s.name = pending_name;
        s.body_begin = i + 1;
        s.line = pending_line;
        stack.push_back(s);
        pending = false;
        continue;
      }
      if (t == ";" || t == ")" || t == "}") {
        pending = false;  // forward declaration / stray close
      } else if (!name_frozen && (t == ">" || t == "<" || t == "," ||
                                  t == "&" || t == "*")) {
        pending = false;  // `template <class T>` — a parameter, not a class
      } else if (t == "(") {
        // Attribute macro between `class` and the name — skip its args.
        i = SkipGroup(toks, i, "(", ")") - 1;
      } else if (t == ":") {
        name_frozen = true;
      } else if (!name_frozen && t != "final" && t != "::" &&
                 IsIdentChar(t[0])) {
        pending_name = t;
      }
      continue;
    }
    if (t == "{") {
      stack.push_back(Scope{});  // non-class scope
    } else if (t == "}") {
      if (!stack.empty()) {
        Scope s = stack.back();
        stack.pop_back();
        if (s.is_class && s.marked) {
          MarkedClass mc;
          mc.name = s.name;
          mc.is_struct = s.is_struct;
          mc.body_begin = s.body_begin;
          mc.body_end = i;
          mc.line = s.line;
          found.push_back(mc);
        }
      }
    } else if (t == kMarker) {
      // Attach to the innermost class scope.
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->is_class) {
          it->marked = true;
          break;
        }
      }
    }
  }
  return found;
}

// Scans one marked class body for contract violations.
void CheckMarkedClass(const SourceFile& f, const std::vector<Token>& toks,
                      const MarkedClass& cls,
                      std::vector<Diagnostic>& diags) {
  auto report = [&](int line, const std::string& msg) {
    if (Allowed(f, kImmutableClass, line)) return;
    diags.push_back({f.path, line, kImmutableClass, msg});
  };

  // `mutable` anywhere in the class span (incl. nested aggregates).
  for (size_t i = cls.body_begin; i < cls.body_end; ++i) {
    if (toks[i].text == "mutable") {
      report(toks[i].line, "mutable member inside " + std::string(kMarker) +
                               " class '" + cls.name + "'");
    }
  }

  // Top-level declarations: public non-const methods.
  std::string access = cls.is_struct ? "public" : "private";
  size_t decl_start = cls.body_begin;
  size_t i = cls.body_begin;
  while (i < cls.body_end) {
    const std::string& t = toks[i].text;
    if (t == "{") {  // nested class/enum body or brace initializer
      i = SkipGroup(toks, i, "{", "}");
      decl_start = i;
      continue;
    }
    if ((t == "public" || t == "protected" || t == "private") &&
        i + 1 < cls.body_end && toks[i + 1].text == ":") {
      access = t;
      i += 2;
      decl_start = i;
      continue;
    }
    if (t == ";") {
      decl_start = ++i;
      continue;
    }
    if (t != "(") {
      ++i;
      continue;
    }
    // A '(': possibly a method declaration. Inspect the declaration so far.
    bool exempt = false;
    bool is_initializer = false;
    std::string name = i > decl_start ? toks[i - 1].text : "";
    bool saw_operator = false;
    std::string operator_sym;
    for (size_t d = decl_start; d < i; ++d) {
      const std::string& dt = toks[d].text;
      if (dt == "friend" || dt == "static" || dt == "typedef" ||
          dt == "using") {
        exempt = true;
      } else if (dt == "=") {
        is_initializer = true;  // member initializer, not a declaration
      } else if (dt == "operator") {
        saw_operator = true;
        for (size_t k = d + 1; k < i; ++k) operator_sym += toks[k].text;
      }
    }
    if (is_initializer || name.empty() || name == kMarker ||
        !(IsIdentChar(name[0]) || saw_operator)) {
      // `= static_cast<T>(x)`, macro residue, or expression parens.
      i = SkipGroup(toks, i, "(", ")");
      continue;
    }
    bool is_ctor_or_dtor =
        name == cls.name ||
        (i >= decl_start + 2 && toks[i - 2].text == "~");
    if (saw_operator && operator_sym == "=") exempt = true;  // assignment
    int name_line = toks[i - 1].line;
    // Walk the qualifiers after the parameter list.
    size_t j = SkipGroup(toks, i, "(", ")");
    bool is_const = false;
    bool deleted = false;
    size_t terminator = cls.body_end;
    while (j < cls.body_end) {
      const std::string& q = toks[j].text;
      if (q == "const") {
        is_const = true;
        ++j;
      } else if (q == "(") {  // noexcept(...)
        j = SkipGroup(toks, j, "(", ")");
      } else if (q == ";" || q == "{" || q == "=" || q == ":") {
        terminator = j;
        break;
      } else {
        ++j;  // noexcept, override, final, &, &&, ->, attributes, types
      }
    }
    // Consume the rest of the declaration.
    if (terminator < cls.body_end && toks[terminator].text == "=") {
      size_t k = terminator + 1;
      if (k < cls.body_end && toks[k].text == "delete") deleted = true;
      while (k < cls.body_end && toks[k].text != ";") ++k;
      i = k + 1;
    } else if (terminator < cls.body_end && toks[terminator].text == ":") {
      // Constructor initializer list: skip groups until the body.
      size_t k = terminator + 1;
      while (k < cls.body_end && toks[k].text != "{") {
        if (toks[k].text == "(")
          k = SkipGroup(toks, k, "(", ")");
        else if (toks[k].text == "{")
          break;
        else
          ++k;
      }
      i = k < cls.body_end ? SkipGroup(toks, k, "{", "}") : cls.body_end;
    } else if (terminator < cls.body_end && toks[terminator].text == "{") {
      i = SkipGroup(toks, terminator, "{", "}");
    } else {
      i = terminator < cls.body_end ? terminator + 1 : cls.body_end;
    }
    decl_start = i;

    if (exempt || is_ctor_or_dtor || deleted || is_const) continue;
    if (access != "public") continue;
    report(name_line,
           "non-const public method '" + name + "' on " + kMarker +
               " class '" + cls.name +
               "' — instances are shared read-only across workers");
  }
}

// ---- per-file lint ------------------------------------------------------

struct IncludeBan {
  std::string header;
  std::string unless_fragment;  // path fragment that exempts the file
  std::string hint;
};

void LintFile(const std::string& display_path, const fs::path& file,
              std::vector<Diagnostic>& diags, bool& io_error) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::cerr << "cfl_lint: cannot read " << display_path << "\n";
    io_error = true;
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  SourceFile f;
  f.path = display_path;
  f.generic_path = fs::path(display_path).generic_string();
  StripSource(f, buf.str());
  ParseAllows(f);

  for (const Allow& a : f.allows) {
    if (!a.well_formed) {
      diags.push_back({f.path, a.line, kBadAllow, a.problem});
    }
  }

  const bool in_check = PathContains(f, "src/check/");
  const bool is_annotations_header =
      PathEndsWith(f, "src/check/thread_annotations.h");
  const bool in_src = PathContains(f, "src/");
  // The two sanctioned clock call sites: the stats layer's facade
  // (obs/clock.h) and the pre-existing harness stopwatch.
  const bool clock_exempt =
      PathContains(f, "src/obs/") || PathContains(f, "src/harness/");

  static const std::vector<std::string> kMutexNames = {
      "mutex",           "recursive_mutex",
      "timed_mutex",     "recursive_timed_mutex",
      "shared_mutex",    "shared_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",      "unique_lock",
      "scoped_lock"};

  for (size_t li = 0; li < f.code_lines.size(); ++li) {
    const int line_no = static_cast<int>(li + 1);
    const std::string& line = f.code_lines[li];
    if (f.preproc[li]) continue;  // include rule handles directives below

    if (!in_check && !FindWord(line, "assert").empty() &&
        line.find("assert") != std::string::npos) {
      // Only a *call* counts: `assert` immediately followed by '('.
      for (size_t col : FindWord(line, "assert")) {
        size_t after = col + 6;
        while (after < line.size() &&
               std::isspace(static_cast<unsigned char>(line[after])))
          ++after;
        if (after < line.size() && line[after] == '(' &&
            !Allowed(f, kRawAssert, line_no)) {
          diags.push_back({f.path, line_no, kRawAssert,
                           "raw assert() — use CFL_DCHECK / CFL_CHECK "
                           "(src/check/check.h) for context on failure"});
          break;
        }
      }
    }

    if (!is_annotations_header) {
      std::string hit = FindStdMember(line, kMutexNames);
      if (!hit.empty() && !Allowed(f, kRawMutex, line_no)) {
        diags.push_back(
            {f.path, line_no, kRawMutex,
             "raw std::" + hit +
                 " — use the annotated cfl::Mutex / cfl::MutexLock / "
                 "cfl::CondVar (src/check/thread_annotations.h) so Thread "
                 "Safety Analysis sees the critical section"});
      }

      if (!FindWord(line, "mutable").empty() &&
          !Allowed(f, kMutableMember, line_no)) {
        diags.push_back(
            {f.path, line_no, kMutableMember,
             "`mutable` — const-invisible state breaks the shared-read "
             "contracts; justify with `// cfl-lint: allow(mutable-member) "
             "<reason>` if this really is private scratch"});
      }

      if (!FindWord(line, "const_cast").empty() &&
          !Allowed(f, kConstCast, line_no)) {
        diags.push_back({f.path, line_no, kConstCast,
                         "const_cast pierces the immutability contracts"});
      }
    }

    if (!clock_exempt && !FindWord(line, "steady_clock").empty() &&
        !Allowed(f, kRawClock, line_no)) {
      diags.push_back(
          {f.path, line_no, kRawClock,
           "raw steady_clock — wall-clock reads go through cfl::obs "
           "(src/obs/clock.h) or the harness Stopwatch so phase accounting "
           "stays reconcilable with MatchStats"});
    }
  }

  // banned-include: library code only (src/).
  if (in_src) {
    static const std::vector<IncludeBan> kBans = {
        {"mutex", "src/check/thread_annotations.h",
         "use the annotated wrappers from check/thread_annotations.h"},
        {"condition_variable", "src/check/thread_annotations.h",
         "use cfl::CondVar from check/thread_annotations.h"},
        {"shared_mutex", "src/check/thread_annotations.h",
         "use the annotated wrappers from check/thread_annotations.h"},
        {"thread", "src/parallel/",
         "thread management belongs to the parallel layer"},
        {"iostream", "src/check/",
         "library code must not write to std streams; report through "
         "check.h or return data to the harness"},
    };
    for (size_t li = 0; li < f.raw_lines.size(); ++li) {
      if (!f.preproc[li]) continue;
      const std::string& line = f.raw_lines[li];
      size_t hash = line.find('#');
      if (hash == std::string::npos) continue;
      size_t inc = line.find("include", hash);
      if (inc == std::string::npos) continue;
      size_t open = line.find_first_of("<\"", inc);
      if (open == std::string::npos) continue;
      size_t close = line.find_first_of(">\"", open + 1);
      if (close == std::string::npos) continue;
      std::string header = line.substr(open + 1, close - open - 1);
      for (const IncludeBan& ban : kBans) {
        if (header != ban.header) continue;
        if (PathContains(f, ban.unless_fragment) ||
            PathEndsWith(f, ban.unless_fragment))
          continue;
        const int line_no = static_cast<int>(li + 1);
        if (Allowed(f, kBannedInclude, line_no)) continue;
        diags.push_back({f.path, line_no, kBannedInclude,
                         "#include <" + header + "> in library code — " +
                             ban.hint});
      }
    }
  }

  // immutable-class: marker-bearing classes.
  std::vector<Token> tokens = Tokenize(f);
  bool marker_used = false;
  for (const Token& t : tokens) {
    if (t.text == kMarker) marker_used = true;
  }
  if (marker_used) {
    std::vector<MarkedClass> classes = FindMarkedClasses(tokens);
    size_t attached = 0;
    for (const MarkedClass& cls : classes) {
      attached += 1;
      CheckMarkedClass(f, tokens, cls, diags);
    }
    if (attached == 0) {
      // Marker present but not inside any class body we could parse.
      for (const Token& t : tokens) {
        if (t.text == kMarker) {
          diags.push_back({f.path, t.line, kImmutableClass,
                           std::string(kMarker) +
                               " must appear inside a class body"});
          break;
        }
      }
    }
  }
}

// ---- driver -------------------------------------------------------------

bool HasLintableExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

int Usage(int code) {
  std::cerr << "usage: cfl_lint [--root DIR] [FILE...]\n"
            << "  Lints FILEs, or with none given every .h/.cc/.cpp under\n"
            << "  DIR/src, DIR/bench, DIR/tools (DIR defaults to `.`).\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage(2);
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cfl_lint: unknown option " << arg << "\n";
      return Usage(2);
    } else {
      files.push_back(arg);
    }
  }

  if (files.empty()) {
    std::error_code ec;
    for (const char* top : {"src", "bench", "tools"}) {
      fs::path dir = root / top;
      if (!fs::is_directory(dir, ec)) continue;
      for (fs::recursive_directory_iterator it(dir, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && HasLintableExtension(it->path())) {
          files.push_back(it->path().string());
        }
      }
    }
    if (files.empty()) {
      std::cerr << "cfl_lint: nothing to lint under " << root
                << " (expected src/, bench/, tools/)\n";
      return 2;
    }
    std::sort(files.begin(), files.end());
  }

  std::vector<Diagnostic> diags;
  bool io_error = false;
  for (const std::string& file : files) {
    LintFile(file, fs::path(file), diags, io_error);
  }
  if (io_error) return 2;

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  std::set<std::string> files_with_errors;
  for (const Diagnostic& d : diags) {
    std::cout << d.file << ":" << d.line << ": error: [" << d.rule << "] "
              << d.message << "\n";
    files_with_errors.insert(d.file);
  }
  if (diags.empty()) {
    std::cout << "cfl_lint: clean (" << files.size() << " files)\n";
    return 0;
  }
  std::cout << "cfl_lint: " << diags.size() << " error(s) in "
            << files_with_errors.size() << " file(s) (" << files.size()
            << " files scanned)\n";
  return 1;
}
