// cfl_lint: the single-file project-rule linter for the CFL-Match tree.
//
// A deliberately self-contained token-level linter (no libclang, no
// compilation database — it runs anywhere the tree checks out) that walks
// src/, bench/, and tools/ and enforces the rules the concurrency contracts
// depend on. clang-tidy and Clang Thread Safety Analysis check what the
// compiler can see; cfl_lint checks the *project* conventions that make
// those analyses sound in the first place — e.g. TSA is useless against a
// raw std::mutex member it has no annotations for. Whole-program rules that
// need every translation unit at once (module layering, span lifetimes,
// narrowing, worker-boundary noexcept, stats gating) live in the sibling
// tools/cfl_analyze.cc; the lexer and diagnostic model are shared
// (tools/lint_common.h).
//
// Rules (ids are what allow-comments and diagnostics use):
//   raw-assert       `assert(` outside src/check/ — use CFL_DCHECK, which
//                    prints context instead of aborting mutely.
//   raw-mutex        std::mutex / std::condition_variable (and friends,
//                    incl. lock_guard/unique_lock/scoped_lock) outside
//                    src/check/thread_annotations.h — use the annotated
//                    cfl::Mutex / cfl::MutexLock / cfl::CondVar wrappers so
//                    Thread Safety Analysis can see the critical sections.
//   mutable-member   `mutable` anywhere — caches invisible to const are how
//                    "immutable" structures grow data races; every use needs
//                    an explicit justification via an allow-comment.
//   immutable-class  violations inside a CFL_IMMUTABLE_AFTER_BUILD class:
//                    non-const public methods (constructors, destructors,
//                    and assignment operators excepted), mutable members.
//   const-cast       `const_cast` anywhere — piercing constness voids the
//                    shared-read contracts.
//   banned-include   library code (src/) including headers it must not:
//                    <mutex>/<condition_variable>/<shared_mutex> outside
//                    thread_annotations.h, <thread> outside src/parallel/,
//                    <iostream> outside src/check/ (diagnostics go through
//                    check.h or the harness).
//   raw-clock        `steady_clock` outside src/obs/ and src/harness/ —
//                    wall-clock reads go through the cfl::obs facade
//                    (src/obs/clock.h) so every timer is reconcilable with
//                    the MatchStats phase accounting.
//   raw-simd         vendor-intrinsic headers (immintrin.h and family) or
//                    intrinsic-shaped identifiers (the _mm*/__m* families)
//                    outside src/kernels/ — SIMD lives behind the dispatch
//                    layer (kernels/kernels.h) so engine code never grows
//                    an ISA dependency unreviewed.
//   bad-allow        a malformed escape hatch: unknown rule id or missing
//                    reason. Allow-comments must carry their justification.
//
// Escape hatch: `// cfl-lint: allow(<rule>) <reason>` on the offending line
// or the line directly above suppresses that one rule there. The reason is
// mandatory; an unknown rule or empty reason is itself an error, so stale
// or hand-waving suppressions cannot accumulate. (Allow-comments for
// cfl_analyze's rule ids are recognized and left to that tool.)
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error — CI gates on
// this (the `lint` job and the `cfl_lint_tree` ctest).
//
// Usage:
//   cfl_lint [--root DIR] [--json] [FILE...]
// With no FILEs, lints every .h/.cc/.cpp under DIR/{src,bench,tools}
// (DIR defaults to the current directory). --json emits the diagnostics as
// one JSON document on stdout instead of gcc-style lines.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint_common.h"

namespace {

namespace fs = std::filesystem;
using cfl::lint::Allowed;
using cfl::lint::ClassInfo;
using cfl::lint::Diagnostic;
using cfl::lint::FindClasses;
using cfl::lint::FindStdMember;
using cfl::lint::FindWord;
using cfl::lint::IsIdentChar;
using cfl::lint::kMarker;
using cfl::lint::PathContains;
using cfl::lint::PathEndsWith;
using cfl::lint::SkipGroup;
using cfl::lint::SourceFile;
using cfl::lint::Token;
using cfl::lint::Tokenize;

using cfl::lint::kBadAllow;
using cfl::lint::kBannedInclude;
using cfl::lint::kConstCast;
using cfl::lint::kImmutableClass;
using cfl::lint::kMutableMember;
using cfl::lint::kRawAssert;
using cfl::lint::kRawClock;
using cfl::lint::kRawMutex;
using cfl::lint::kRawSimd;

// Scans one marked class body for contract violations.
void CheckMarkedClass(const SourceFile& f, const std::vector<Token>& toks,
                      const ClassInfo& cls, std::vector<Diagnostic>& diags) {
  auto report = [&](int line, int col, const std::string& msg) {
    if (Allowed(f, kImmutableClass, line)) return;
    diags.push_back({f.path, line, col, kImmutableClass, msg});
  };

  // `mutable` anywhere in the class span (incl. nested aggregates).
  for (size_t i = cls.body_begin; i < cls.body_end; ++i) {
    if (toks[i].text == "mutable") {
      report(toks[i].line, toks[i].col,
             "mutable member inside " + std::string(kMarker) + " class '" +
                 cls.name + "'");
    }
  }

  // Top-level declarations: public non-const methods.
  std::string access = cls.is_struct ? "public" : "private";
  size_t decl_start = cls.body_begin;
  size_t i = cls.body_begin;
  while (i < cls.body_end) {
    const std::string& t = toks[i].text;
    if (t == "{") {  // nested class/enum body or brace initializer
      i = SkipGroup(toks, i, "{", "}");
      decl_start = i;
      continue;
    }
    if ((t == "public" || t == "protected" || t == "private") &&
        i + 1 < cls.body_end && toks[i + 1].text == ":") {
      access = t;
      i += 2;
      decl_start = i;
      continue;
    }
    if (t == ";") {
      decl_start = ++i;
      continue;
    }
    if (t != "(") {
      ++i;
      continue;
    }
    // A '(': possibly a method declaration. Inspect the declaration so far.
    bool exempt = false;
    bool is_initializer = false;
    std::string name = i > decl_start ? toks[i - 1].text : "";
    bool saw_operator = false;
    std::string operator_sym;
    for (size_t d = decl_start; d < i; ++d) {
      const std::string& dt = toks[d].text;
      if (dt == "friend" || dt == "static" || dt == "typedef" ||
          dt == "using") {
        exempt = true;
      } else if (dt == "=") {
        is_initializer = true;  // member initializer, not a declaration
      } else if (dt == "operator") {
        saw_operator = true;
        for (size_t k = d + 1; k < i; ++k) operator_sym += toks[k].text;
      }
    }
    if (is_initializer || name.empty() || name == kMarker ||
        !(IsIdentChar(name[0]) || saw_operator)) {
      // `= static_cast<T>(x)`, macro residue, or expression parens.
      i = SkipGroup(toks, i, "(", ")");
      continue;
    }
    bool is_ctor_or_dtor =
        name == cls.name || (i >= decl_start + 2 && toks[i - 2].text == "~");
    if (saw_operator && operator_sym == "=") exempt = true;  // assignment
    int name_line = toks[i - 1].line;
    int name_col = toks[i - 1].col;
    // Walk the qualifiers after the parameter list.
    size_t j = SkipGroup(toks, i, "(", ")");
    bool is_const = false;
    bool deleted = false;
    size_t terminator = cls.body_end;
    while (j < cls.body_end) {
      const std::string& q = toks[j].text;
      if (q == "const") {
        is_const = true;
        ++j;
      } else if (q == "(") {  // noexcept(...)
        j = SkipGroup(toks, j, "(", ")");
      } else if (q == ";" || q == "{" || q == "=" || q == ":") {
        terminator = j;
        break;
      } else {
        ++j;  // noexcept, override, final, &, &&, ->, attributes, types
      }
    }
    // Consume the rest of the declaration.
    if (terminator < cls.body_end && toks[terminator].text == "=") {
      size_t k = terminator + 1;
      if (k < cls.body_end && toks[k].text == "delete") deleted = true;
      while (k < cls.body_end && toks[k].text != ";") ++k;
      i = k + 1;
    } else if (terminator < cls.body_end && toks[terminator].text == ":") {
      // Constructor initializer list: skip groups until the body.
      size_t k = terminator + 1;
      while (k < cls.body_end && toks[k].text != "{") {
        if (toks[k].text == "(")
          k = SkipGroup(toks, k, "(", ")");
        else if (toks[k].text == "{")
          break;
        else
          ++k;
      }
      i = k < cls.body_end ? SkipGroup(toks, k, "{", "}") : cls.body_end;
    } else if (terminator < cls.body_end && toks[terminator].text == "{") {
      i = SkipGroup(toks, terminator, "{", "}");
    } else {
      i = terminator < cls.body_end ? terminator + 1 : cls.body_end;
    }
    decl_start = i;

    if (exempt || is_ctor_or_dtor || deleted || is_const) continue;
    if (access != "public") continue;
    report(name_line, name_col,
           "non-const public method '" + name + "' on " + kMarker +
               " class '" + cls.name +
               "' — instances are shared read-only across workers");
  }
}

// ---- per-file lint ------------------------------------------------------

struct IncludeBan {
  std::string header;
  std::string unless_fragment;  // path fragment that exempts the file
  std::string hint;
};

void LintFile(const std::string& display_path, const fs::path& file,
              std::vector<Diagnostic>& diags, bool& io_error) {
  SourceFile f;
  if (!cfl::lint::LoadSourceFile(display_path, file, f)) {
    std::cerr << "cfl_lint: cannot read " << display_path << "\n";
    io_error = true;
    return;
  }

  for (const cfl::lint::Allow& a : f.allows) {
    if (!a.well_formed) {
      diags.push_back({f.path, a.line, 1, kBadAllow, a.problem});
    }
  }

  const bool in_check = PathContains(f, "src/check/");
  const bool is_annotations_header =
      PathEndsWith(f, "src/check/thread_annotations.h");
  const bool in_src = PathContains(f, "src/");
  // The two sanctioned clock call sites: the stats layer's facade
  // (obs/clock.h) and the pre-existing harness stopwatch.
  const bool clock_exempt =
      PathContains(f, "src/obs/") || PathContains(f, "src/harness/");
  // The one sanctioned home for vendor intrinsics (kernels/kernels.h).
  const bool in_kernels = PathContains(f, "src/kernels/");

  static const std::vector<std::string> kMutexNames = {
      "mutex",           "recursive_mutex",
      "timed_mutex",     "recursive_timed_mutex",
      "shared_mutex",    "shared_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",      "unique_lock",
      "scoped_lock"};

  for (size_t li = 0; li < f.code_lines.size(); ++li) {
    const int line_no = static_cast<int>(li + 1);
    const std::string& line = f.code_lines[li];
    if (f.preproc[li]) continue;  // include rule handles directives below

    if (!in_check && !FindWord(line, "assert").empty() &&
        line.find("assert") != std::string::npos) {
      // Only a *call* counts: `assert` immediately followed by '('.
      for (size_t col : FindWord(line, "assert")) {
        size_t after = col + 6;
        while (after < line.size() &&
               std::isspace(static_cast<unsigned char>(line[after])))
          ++after;
        if (after < line.size() && line[after] == '(' &&
            !Allowed(f, kRawAssert, line_no)) {
          diags.push_back({f.path, line_no, static_cast<int>(col + 1),
                           kRawAssert,
                           "raw assert() — use CFL_DCHECK / CFL_CHECK "
                           "(src/check/check.h) for context on failure"});
          break;
        }
      }
    }

    if (!is_annotations_header) {
      std::string hit = FindStdMember(line, kMutexNames);
      if (!hit.empty() && !Allowed(f, kRawMutex, line_no)) {
        diags.push_back(
            {f.path, line_no, 1, kRawMutex,
             "raw std::" + hit +
                 " — use the annotated cfl::Mutex / cfl::MutexLock / "
                 "cfl::CondVar (src/check/thread_annotations.h) so Thread "
                 "Safety Analysis sees the critical section"});
      }

      std::vector<size_t> mutable_hits = FindWord(line, "mutable");
      if (!mutable_hits.empty() && !Allowed(f, kMutableMember, line_no)) {
        diags.push_back(
            {f.path, line_no, static_cast<int>(mutable_hits[0] + 1),
             kMutableMember,
             "`mutable` — const-invisible state breaks the shared-read "
             "contracts; justify with `// cfl-lint: allow(mutable-member) "
             "<reason>` if this really is private scratch"});
      }

      std::vector<size_t> cast_hits = FindWord(line, "const_cast");
      if (!cast_hits.empty() && !Allowed(f, kConstCast, line_no)) {
        diags.push_back({f.path, line_no, static_cast<int>(cast_hits[0] + 1),
                         kConstCast,
                         "const_cast pierces the immutability contracts"});
      }
    }

    if (!clock_exempt) {
      std::vector<size_t> clock_hits = FindWord(line, "steady_clock");
      if (!clock_hits.empty() && !Allowed(f, kRawClock, line_no)) {
        diags.push_back(
            {f.path, line_no, static_cast<int>(clock_hits[0] + 1), kRawClock,
             "raw steady_clock — wall-clock reads go through cfl::obs "
             "(src/obs/clock.h) or the harness Stopwatch so phase accounting "
             "stays reconcilable with MatchStats"});
      }
    }

    if (!in_kernels) {
      // raw-simd: intrinsic-shaped identifiers (_mm*/__m* families). One
      // diagnostic per line keeps counts stable when a single expression
      // holds several intrinsics.
      static const std::vector<std::string> kSimdPrefixes = {
          "_mm_", "_mm256_", "_mm512_", "__m128", "__m256", "__m512"};
      size_t simd_col = std::string::npos;
      for (size_t at = 0; at < line.size() && simd_col == std::string::npos;) {
        if (!IsIdentChar(line[at]) ||
            (at > 0 && IsIdentChar(line[at - 1]))) {
          ++at;
          continue;
        }
        size_t end = at;
        while (end < line.size() && IsIdentChar(line[end])) ++end;
        const std::string_view word(line.data() + at, end - at);
        for (const std::string& prefix : kSimdPrefixes) {
          if (word.substr(0, prefix.size()) == prefix) {
            simd_col = at;
            break;
          }
        }
        at = end;
      }
      if (simd_col != std::string::npos && !Allowed(f, kRawSimd, line_no)) {
        diags.push_back(
            {f.path, line_no, static_cast<int>(simd_col + 1), kRawSimd,
             "raw SIMD intrinsic outside src/kernels/ — engine code goes "
             "through the dispatch layer (kernels/kernels.h)"});
      }
    }
  }

  // raw-simd: vendor-intrinsic headers confined to src/kernels/.
  if (!in_kernels) {
    static const std::set<std::string> kSimdHeaders = {
        "immintrin.h", "x86intrin.h",  "mmintrin.h",  "xmmintrin.h",
        "emmintrin.h", "pmmintrin.h",  "tmmintrin.h", "smmintrin.h",
        "nmmintrin.h", "wmmintrin.h",  "ammintrin.h", "avxintrin.h",
        "avx2intrin.h"};
    for (size_t li = 0; li < f.raw_lines.size(); ++li) {
      if (!f.preproc[li]) continue;
      const std::string& line = f.raw_lines[li];
      size_t hash = line.find('#');
      if (hash == std::string::npos) continue;
      size_t inc = line.find("include", hash);
      if (inc == std::string::npos) continue;
      size_t open = line.find_first_of("<\"", inc);
      if (open == std::string::npos) continue;
      size_t close = line.find_first_of(">\"", open + 1);
      if (close == std::string::npos) continue;
      std::string header = line.substr(open + 1, close - open - 1);
      if (kSimdHeaders.count(header) == 0) continue;
      const int line_no = static_cast<int>(li + 1);
      if (Allowed(f, kRawSimd, line_no)) continue;
      diags.push_back({f.path, line_no, static_cast<int>(hash + 1), kRawSimd,
                       "#include <" + header +
                           "> outside src/kernels/ — vendor intrinsics are "
                           "confined to the kernel layer"});
    }
  }

  // banned-include: library code only (src/).
  if (in_src) {
    static const std::vector<IncludeBan> kBans = {
        {"mutex", "src/check/thread_annotations.h",
         "use the annotated wrappers from check/thread_annotations.h"},
        {"condition_variable", "src/check/thread_annotations.h",
         "use cfl::CondVar from check/thread_annotations.h"},
        {"shared_mutex", "src/check/thread_annotations.h",
         "use the annotated wrappers from check/thread_annotations.h"},
        {"thread", "src/parallel/",
         "thread management belongs to the parallel layer"},
        {"iostream", "src/check/",
         "library code must not write to std streams; report through "
         "check.h or return data to the harness"},
    };
    for (size_t li = 0; li < f.raw_lines.size(); ++li) {
      if (!f.preproc[li]) continue;
      const std::string& line = f.raw_lines[li];
      size_t hash = line.find('#');
      if (hash == std::string::npos) continue;
      size_t inc = line.find("include", hash);
      if (inc == std::string::npos) continue;
      size_t open = line.find_first_of("<\"", inc);
      if (open == std::string::npos) continue;
      size_t close = line.find_first_of(">\"", open + 1);
      if (close == std::string::npos) continue;
      std::string header = line.substr(open + 1, close - open - 1);
      for (const IncludeBan& ban : kBans) {
        if (header != ban.header) continue;
        if (PathContains(f, ban.unless_fragment) ||
            PathEndsWith(f, ban.unless_fragment))
          continue;
        const int line_no = static_cast<int>(li + 1);
        if (Allowed(f, kBannedInclude, line_no)) continue;
        diags.push_back({f.path, line_no, static_cast<int>(hash + 1),
                         kBannedInclude,
                         "#include <" + header + "> in library code — " +
                             ban.hint});
      }
    }
  }

  // immutable-class: marker-bearing classes.
  std::vector<Token> tokens = Tokenize(f);
  bool marker_used = false;
  for (const Token& t : tokens) {
    if (t.text == kMarker) marker_used = true;
  }
  if (marker_used) {
    std::vector<ClassInfo> classes = FindClasses(tokens);
    size_t attached = 0;
    for (const ClassInfo& cls : classes) {
      if (!cls.marked) continue;
      attached += 1;
      CheckMarkedClass(f, tokens, cls, diags);
    }
    if (attached == 0) {
      // Marker present but not inside any class body we could parse.
      for (const Token& t : tokens) {
        if (t.text == kMarker) {
          diags.push_back({f.path, t.line, t.col, kImmutableClass,
                           std::string(kMarker) +
                               " must appear inside a class body"});
          break;
        }
      }
    }
  }
}

// ---- driver -------------------------------------------------------------

int Usage(int code) {
  std::cerr << "usage: cfl_lint [--root DIR] [--json] [FILE...]\n"
            << "  Lints FILEs, or with none given every .h/.cc/.cpp under\n"
            << "  DIR/src, DIR/bench, DIR/tools (DIR defaults to `.`).\n"
            << "  --json emits one JSON document instead of gcc-style "
               "lines.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage(2);
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cfl_lint: unknown option " << arg << "\n";
      return Usage(2);
    } else {
      files.push_back(arg);
    }
  }

  if (files.empty()) {
    std::error_code ec;
    for (const char* top : {"src", "bench", "tools"}) {
      fs::path dir = root / top;
      if (!fs::is_directory(dir, ec)) continue;
      for (fs::recursive_directory_iterator it(dir, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) &&
            cfl::lint::HasLintableExtension(it->path())) {
          files.push_back(it->path().string());
        }
      }
    }
    if (files.empty()) {
      std::cerr << "cfl_lint: nothing to lint under " << root
                << " (expected src/, bench/, tools/)\n";
      return 2;
    }
    std::sort(files.begin(), files.end());
  }

  std::vector<Diagnostic> diags;
  bool io_error = false;
  for (const std::string& file : files) {
    LintFile(file, fs::path(file), diags, io_error);
  }
  if (io_error) return 2;

  cfl::lint::PrintDiagnostics("cfl_lint", diags, files.size(), json);
  return diags.empty() ? 0 : 1;
}
