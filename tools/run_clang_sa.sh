#!/usr/bin/env bash
# Runs the Clang Static Analyzer (clang --analyze) over every translation
# unit under src/ and diffs the findings against the committed baseline
# (tools/clang_sa_baseline.txt), exactly like run_clang_tidy.sh: only NEW
# findings fail, resolved findings are reported, --update-baseline rewrites.
#
# Usage:
#   tools/run_clang_sa.sh [--update-baseline]
#
# The analyzer is driven directly (not via scan-build) with the project's
# one include root and language standard, so no configured build directory
# is required. Findings are normalized to `file: warning: message [checker]`
# with line:col stripped (line numbers drift on unrelated edits).
#
# Exit codes: 0 no new findings, 1 new findings, 2 environment error.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
baseline="${repo_root}/tools/clang_sa_baseline.txt"

clang_bin="${CLANG:-}"
if [[ -z "${clang_bin}" ]]; then
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                   clang++-15 clang++-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      clang_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${clang_bin}" ]]; then
  echo "run_clang_sa.sh: clang++ not found on PATH (set CLANG to override);" \
       "install clang to run the static-analyzer gate" >&2
  exit 2
fi

update_baseline=0
if [[ "${1:-}" == "--update-baseline" ]]; then
  update_baseline=1
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cc' | sort)
echo "clang static analyzer (${clang_bin}) over ${#sources[@]} files"

raw="$(mktemp)"
trap 'rm -f "${raw}" "${raw}.cur" "${raw}.base"' EXIT
for source in "${sources[@]}"; do
  "${clang_bin}" --analyze --analyzer-output text -std=c++20 \
    -I "${repo_root}/src" -DNDEBUG \
    "${source}" >> "${raw}" 2>&1 || true
done

grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' "${raw}" \
  | sed "s|^${repo_root}/||" \
  | sed -E 's|^([^:]+):[0-9]+:[0-9]+:|\1:|' \
  | sort -u > "${raw}.cur"

if [[ ${update_baseline} -eq 1 ]]; then
  {
    echo "# clang static-analyzer baseline — normalized findings that"
    echo "# run_clang_sa.sh tolerates. Regenerate with:"
    echo "# tools/run_clang_sa.sh --update-baseline"
    cat "${raw}.cur"
  } > "${baseline}"
  echo "run_clang_sa.sh: baseline updated ($(wc -l < "${raw}.cur")" \
       "findings) -> ${baseline}"
  exit 0
fi

if [[ ! -f "${baseline}" ]]; then
  echo "run_clang_sa.sh: no baseline at ${baseline}; run with" \
       "--update-baseline to create one" >&2
  exit 2
fi
# Load the baseline, pruning entries whose file no longer exists (same
# policy as run_clang_tidy.sh: stale entries must not accumulate).
pruned=0
: > "${raw}.base"
while IFS= read -r entry; do
  entry_file="${entry%%:*}"
  if [[ -f "${repo_root}/${entry_file}" ]]; then
    printf '%s\n' "${entry}" >> "${raw}.base"
  else
    pruned=$((pruned + 1))
  fi
done < <(grep -v '^#' "${baseline}" | sort -u)
if [[ ${pruned} -gt 0 ]]; then
  echo "run_clang_sa.sh: pruned ${pruned} baseline entries for deleted" \
       "files (rewrite the baseline with --update-baseline)"
fi

new_findings="$(comm -13 "${raw}.base" "${raw}.cur")"
resolved="$(comm -23 "${raw}.base" "${raw}.cur")"

if [[ -n "${resolved}" ]]; then
  echo "run_clang_sa.sh: findings in the baseline no longer fire" \
       "(shrink it with --update-baseline):"
  printf '  %s\n' "${resolved}"
fi
if [[ -n "${new_findings}" ]]; then
  echo "run_clang_sa.sh: NEW findings not in the baseline:" >&2
  printf '  %s\n' "${new_findings}" >&2
  exit 1
fi
echo "run_clang_sa.sh: clean ($(wc -l < "${raw}.cur") findings, all" \
     "baselined)"
exit 0
