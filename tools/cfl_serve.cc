// Resident query server: load a data graph once, serve queries over a local
// socket until shut down.
//
//   cfl_serve <data-file> <socket-path> [options]
//
// Options:
//   --workers=N          enumeration worker threads (default 4)
//   --sessions=N         concurrent client connections (default 8)
//   --cache-mb=MB        plan/CPI cache budget in MiB (default 256)
//   --no-cache           disable the plan cache (load-driver baseline mode)
//   --max-time=S         per-query wall ceiling, also applied to queries
//                        that request no limit (default 30; 0 = unlimited)
//   --max-embeddings=N   per-query embedding-count ceiling (default none)
//   --max-concurrent=N   queries admitted at once (default 2*workers)
//
// Protocol: line-delimited text, one request per exchange — see
// src/serve/protocol.h. Drive it by hand with
//   socat - UNIX-CONNECT:<socket-path>
// or programmatically through serve::ServeClient. A SHUTDOWN request (or
// SIGINT/SIGTERM) drains open sessions and exits 0.
//
// All CFL_* environment knobs are snapshotted once at startup
// (check/env.h): a setenv in some client of a long-lived server process can
// never change serving behavior mid-flight.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/env.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "serve/server.h"

namespace {

using namespace cfl;

serve::QueryServer* g_server = nullptr;

void HandleSignal(int) {
  // RequestShutdown is async-signal-safe: an atomic exchange and a write(2)
  // to the self-pipe.
  if (g_server != nullptr) g_server->RequestShutdown();
}

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <data-file> <socket-path> [--workers=N] [--sessions=N]\n"
      "          [--cache-mb=MB] [--no-cache] [--max-time=S]\n"
      "          [--max-embeddings=N] [--max-concurrent=N]\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  env::Capture();
  if (argc < 3) Usage(argv[0]);

  serve::ServeOptions options;
  options.socket_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      options.workers =
          static_cast<uint32_t>(std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--sessions=", 0) == 0) {
      options.sessions =
          static_cast<uint32_t>(std::strtoul(arg.c_str() + 11, nullptr, 10));
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      options.cache_bytes =
          std::strtoull(arg.c_str() + 11, nullptr, 10) << 20;
    } else if (arg == "--no-cache") {
      options.cache_bytes = 0;
    } else if (arg.rfind("--max-time=", 0) == 0) {
      options.max_time_limit_seconds = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--max-embeddings=", 0) == 0) {
      options.max_embeddings = std::strtoull(arg.c_str() + 17, nullptr, 10);
    } else if (arg.rfind("--max-concurrent=", 0) == 0) {
      options.max_concurrent_queries =
          static_cast<uint32_t>(std::strtoul(arg.c_str() + 17, nullptr, 10));
    } else {
      Usage(argv[0]);
    }
  }
  if (options.workers == 0 || options.sessions == 0) Usage(argv[0]);

  Graph data;
  try {
    data = LoadGraph(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading %s: %s\n", argv[1], e.what());
    return 1;
  }
  std::printf("loaded %s: %u vertices, %llu edges, %u labels\n", argv[1],
              data.NumVertices(),
              static_cast<unsigned long long>(data.NumEdges()),
              data.NumLabels());
  std::printf("serving on %s: workers=%u sessions=%u cache=%s\n",
              options.socket_path.c_str(), options.workers, options.sessions,
              options.cache_bytes == 0
                  ? "off"
                  : (std::to_string(options.cache_bytes >> 20) + "MiB")
                        .c_str());
  std::fflush(stdout);

  serve::QueryServer server(data, options);
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  int rc = server.Serve();
  if (rc != 0) {
    std::fprintf(stderr, "serve failed: %s\n", server.last_error().c_str());
    return 1;
  }
  std::printf("clean shutdown\n");
  return 0;
}
