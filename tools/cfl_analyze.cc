// cfl_analyze: the whole-program analyzer for the CFL-Match tree.
//
// Where tools/cfl_lint.cc checks each file in isolation, cfl_analyze lexes
// every translation unit of the program into one symbol/include/call index
// (driven by the build's compile_commands.json when given) and enforces the
// structural rules a single-file linter cannot see:
//
//   layering         src/ modules form an explicit DAG:
//                        check < obs < graph < {gen, decomp} < cpi < order
//                              < validate < match < {baseline, parallel,
//                                harness}
//                    (check and obs are reachable from anywhere; src/check
//                    splits into the dependency-free base headers and the
//                    `validate` sub-module, which sits above the structures
//                    it validates). Any include edge outside the DAG is a
//                    back-edge error, and file-level include cycles are
//                    reported as such.
//   span-escape      a std::span / std::string_view *class member* can
//                    outlive the scratch buffer or rebuilt arena it aliases.
//                    View-typed members (and view-returning methods) are
//                    forbidden unless the owning class is
//                    CFL_IMMUTABLE_AFTER_BUILD, or the member carries
//                    CFL_SPAN_INTO(Owner) naming a type that is marked
//                    immutable somewhere in the program (the whole-program
//                    lookup), or an explicit allow.
//   narrowing        64->32 index conversions in src/cpi, src/match,
//                    src/parallel that bypass the checked helpers:
//                    static_cast<uint32_t> of a size()/offset expression,
//                    or a 32-bit variable initialized from .size(). Use
//                    cfl::CheckedU32 (check/narrow.h) or
//                    CheckedCandidateCount (match/enumerator.h).
//   worker-noexcept  the ThreadPool worker boundary: the run body may be
//                    invoked only through InvokeBody (which converts an
//                    escaped exception into a contextful CFL_CHECK failure);
//                    InvokeBody and WorkerLoop themselves must be noexcept
//                    (they run outside that net); and every src/parallel/-
//                    defined function called from a ThreadPool::Run lambda
//                    must be noexcept or carry CFL_POOL_SAFE.
//   stats-gate       mutations of EnumStats / CpiBuildStats counters
//                    outside a CFL_STATS_ONLY(...) wrapper: such a site
//                    would survive -DCFL_STATS=OFF and break the
//                    "stats-off build is bit-identical" contract. The
//                    counter field list is read from src/obs/stats.h, so
//                    new counters are covered automatically.
//   lock-order       every cfl::Mutex member declares its position in the
//                    global lock hierarchy with CFL_LOCK_LEVEL(n)
//                    (check/thread_annotations.h). Nested MutexLock
//                    acquisitions are extracted per function across all
//                    TUs (including acquisitions reached through calls,
//                    via a may-acquire fixpoint over the call graph); an
//                    acquisition edge whose levels do not strictly ascend,
//                    a recursive acquisition, or any cycle in the
//                    acquisition graph is an error — deadlock-freedom by
//                    construction.
//   blocking-under-lock
//                    CondVar::Wait-family calls, TaskLatch waits,
//                    TaskPool::Submit / ThreadPool::Run, thread joins, and
//                    syscall-shaped calls (read/write/poll/accept/...)
//                    made while a MutexLock is live in the same function.
//                    Legitimate sites (condvar wait loops release the
//                    mutex while parked) carry an explicit
//                    `// cfl-analyze: allow(blocking-under-lock) <reason>`.
//   atomic-intent    every std::atomic declaration must say what it is for
//                    via CFL_ATOMIC_INTENT(counter|flag|publish); each
//                    load/store/fetch_*/exchange use site must spell its
//                    memory_order explicitly and the order must match the
//                    declared intent (counter -> relaxed; publish ->
//                    release store + acquire load, e.g. the kernels.h
//                    dispatch pointer). A defaulted (seq_cst) order is an
//                    undeclared intent, not a safe harbor.
//
// Escape hatch: the same `allow(<rule>) <reason>` directive cfl_lint uses
// (either directive tag works — the analyzer's own rules conventionally use
// the cfl-analyze tag), with this tool's rule ids. Malformed directives are
// `bad-allow` errors here exactly as there.
//
// Exit codes: 0 clean, 1 violations, 2 usage/IO error.
//
// Usage:
//   cfl_analyze --root DIR [--compdb FILE] [--json]
// Analyzes every .h/.cc/.cpp under DIR/src as one program. --compdb points
// at a compile_commands.json; its translation units under DIR/src are
// cross-checked against the scan (a TU the scan missed is an error, so the
// analyzer provably covers the program the build sees). --json emits one
// JSON document instead of gcc-style lines.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint_common.h"

namespace {

namespace fs = std::filesystem;
using cfl::lint::Allowed;
using cfl::lint::ClassInfo;
using cfl::lint::Diagnostic;
using cfl::lint::FindClasses;
using cfl::lint::IsIdentChar;
using cfl::lint::SkipGroup;
using cfl::lint::SourceFile;
using cfl::lint::Token;
using cfl::lint::Tokenize;

using cfl::lint::kAtomicIntent;
using cfl::lint::kBadAllow;
using cfl::lint::kBlockingUnderLock;
using cfl::lint::kLayering;
using cfl::lint::kLockOrder;
using cfl::lint::kNarrowing;
using cfl::lint::kSpanEscape;
using cfl::lint::kStatsGate;
using cfl::lint::kWorkerNoexcept;

// ---- program model ------------------------------------------------------

struct AnalyzedFile {
  SourceFile src;
  std::vector<Token> toks;
  std::string rel;     // path relative to --root, forward slashes
  std::string module;  // src/<module>/, with the check/validate split
};

// One function declaration or definition (token-level heuristic).
struct FuncDecl {
  std::string file_rel;
  int line = 0;
  bool is_definition = false;
  bool is_noexcept = false;
  bool pool_safe = false;  // carries CFL_POOL_SAFE
};

struct ProgramIndex {
  // class name -> carries CFL_IMMUTABLE_AFTER_BUILD anywhere in the program
  std::map<std::string, bool> classes;
  // function name (last component) -> every decl/def seen
  std::map<std::string, std::vector<FuncDecl>> functions;
  // names of variables/members declared with type ThreadPool
  std::set<std::string> pool_vars;
  // counter fields of the stats structs (from src/obs/stats.h)
  std::set<std::string> stats_fields;
};

// ---- module DAG ---------------------------------------------------------

// The allowed dependency table. Every module may additionally include
// itself and `check`; every module except `check` may include `obs`.
// src/check is split: check.h / thread_annotations.h / narrow.h /
// analyze_annotations.h are the dependency-free base (`check`), while
// validate.{h,cc} and test_access.h form `validate`, which sits above the
// structures it validates.
const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>> table = {
      {"check", {}},
      {"obs", {}},
      {"graph", {}},
      // The SIMD kernel layer sits directly above graph: it needs the hub
      // bitmap rows (VerifyBackwardEdges) and nothing else.
      {"kernels", {"graph"}},
      {"gen", {"graph"}},
      {"decomp", {"graph"}},
      {"cpi", {"graph", "kernels", "decomp"}},
      {"order", {"graph", "kernels", "decomp", "cpi"}},
      {"validate", {"graph", "kernels", "decomp", "cpi", "order"}},
      {"match", {"graph", "kernels", "decomp", "cpi", "order", "validate"}},
      {"baseline",
       {"graph", "kernels", "decomp", "cpi", "order", "validate", "match"}},
      {"parallel",
       {"graph", "kernels", "decomp", "cpi", "order", "validate", "match"}},
      {"harness",
       {"graph", "kernels", "decomp", "cpi", "order", "validate", "match"}},
      // Dynamic graphs sit beside the engines: deltas and folds need only
      // the CSR builder, and the background compactor rides the task pool.
      {"dyn", {"graph", "parallel"}},
      // The serving stack sits at the top: it drives the match engines via
      // both the serial iterator and the parallel sharding primitives, and
      // owns the epoch-versioned data graph.
      {"serve",
       {"graph", "kernels", "decomp", "cpi", "order", "validate", "match",
        "parallel", "dyn"}},
  };
  return table;
}

// Files under src/check/ that belong to the `validate` sub-module.
bool IsValidateFile(std::string_view rel_or_include) {
  return rel_or_include.find("check/validate.") != std::string_view::npos ||
         rel_or_include.find("check/test_access.h") != std::string_view::npos;
}

// Module of a repo-relative path "src/<m>/..." ("" when not under src/).
std::string ModuleOf(const std::string& rel) {
  const std::string prefix = "src/";
  if (rel.compare(0, prefix.size(), prefix) != 0) return "";
  size_t slash = rel.find('/', prefix.size());
  if (slash == std::string::npos) return "";
  std::string mod = rel.substr(prefix.size(), slash - prefix.size());
  if (mod == "check" && IsValidateFile(rel)) return "validate";
  return mod;
}

// Module of a project include path "<m>/file.h".
std::string ModuleOfInclude(const std::string& inc) {
  size_t slash = inc.find('/');
  if (slash == std::string::npos) return "";
  std::string mod = inc.substr(0, slash);
  if (mod == "check" && IsValidateFile(inc)) return "validate";
  return mod;
}

bool DepAllowed(const std::string& from, const std::string& to) {
  if (from == to) return true;
  if (to == "check") return true;
  if (to == "obs" && from != "check") return true;
  auto it = AllowedDeps().find(from);
  if (it == AllowedDeps().end()) return false;
  return it->second.count(to) != 0;
}

// ---- include extraction -------------------------------------------------

struct Include {
  std::string path;  // as written between the quotes
  int line = 0;
  int col = 1;
  bool quoted = false;  // "project" vs <system>
};

std::vector<Include> ExtractIncludes(const SourceFile& f) {
  std::vector<Include> out;
  for (size_t li = 0; li < f.raw_lines.size(); ++li) {
    if (!f.preproc[li]) continue;
    const std::string& line = f.raw_lines[li];
    size_t hash = line.find('#');
    if (hash == std::string::npos) continue;
    size_t inc = line.find("include", hash);
    if (inc == std::string::npos) continue;
    size_t open = line.find_first_of("<\"", inc);
    if (open == std::string::npos) continue;
    char close_ch = line[open] == '<' ? '>' : '"';
    size_t close = line.find(close_ch, open + 1);
    if (close == std::string::npos) continue;
    Include i;
    i.path = line.substr(open + 1, close - open - 1);
    i.line = static_cast<int>(li + 1);
    i.col = static_cast<int>(hash + 1);
    i.quoted = line[open] == '"';
    out.push_back(i);
  }
  return out;
}

// ---- token helpers ------------------------------------------------------

bool IsIdent(const Token& t) { return !t.text.empty() && IsIdentChar(t.text[0]) &&
                                      !std::isdigit(static_cast<unsigned char>(t.text[0])); }

bool IsKeywordCall(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "while",  "for",    "switch", "return", "sizeof",
      "catch",  "static_assert",    "alignof", "decltype", "typeid",
      "new",    "delete", "throw",  "co_return", "co_await", "assert"};
  return kw.count(s) != 0;
}

bool LooksLikeMacro(const std::string& s) {
  if (s.empty()) return false;
  bool has_lower = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) has_lower = true;
  }
  return !has_lower;  // ALL_CAPS / digits / underscores
}

// ---- index construction -------------------------------------------------

// Records every `name(...)` followed by qualifiers and then `{` or `;`,
// where `name` is an identifier preceded by something type-shaped (an
// identifier, `::`, `>`, `*`, `&`, or `~`). Captures noexcept and
// CFL_POOL_SAFE between the parameter list and the terminator. This
// over-approximates (paren-initialized variables index as declarations),
// which is harmless: the worker-noexcept rule only consults PascalCase
// names that are actually called.
void IndexFunctions(const AnalyzedFile& af, ProgramIndex& index) {
  const std::vector<Token>& toks = af.toks;
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "(") continue;
    const Token& name = toks[i - 1];
    if (!IsIdent(name) || IsKeywordCall(name.text)) continue;
    if (i >= 2) {
      const std::string& before = toks[i - 2].text;
      bool type_shaped = before == "::" || before == ">" || before == "*" ||
                         before == "&" || before == "~" ||
                         (IsIdentChar(before[0]) && before != "return" &&
                          !IsKeywordCall(before));
      if (!type_shaped) continue;
    } else {
      continue;
    }
    size_t after_params = SkipGroup(toks, i, "(", ")");
    // Walk qualifiers to the terminator.
    bool is_noexcept = false;
    bool pool_safe = false;
    size_t j = after_params;
    size_t terminator = toks.size();
    int steps = 0;
    while (j < toks.size() && steps < 32) {
      const std::string& q = toks[j].text;
      if (q == "noexcept") {
        is_noexcept = true;
        ++j;
      } else if (q == "CFL_POOL_SAFE") {
        pool_safe = true;
        ++j;
      } else if (q == "(") {  // noexcept(...), attribute macros
        j = SkipGroup(toks, j, "(", ")");
      } else if (q == ";" || q == "{" || q == "=" || q == ":") {
        terminator = j;
        break;
      } else if (q == ")" || q == "}" || q == ",") {
        terminator = toks.size();  // expression context, not a declarator
        break;
      } else {
        ++j;  // const, override, final, &, &&, ->, trailing types
      }
      ++steps;
    }
    if (terminator >= toks.size()) continue;
    const std::string& term = toks[terminator].text;
    if (term == "=" ) continue;  // `= delete` / `= default` / initializer
    bool is_def = term == "{" || term == ":";
    if (term == ";" && after_params == i + 1 + 1 && !is_noexcept &&
        !pool_safe) {
      // `Name();` with empty parens and no qualifiers: could be a call
      // statement as easily as a declaration; too ambiguous to index.
      // (Real declarations in this tree always have parameters or
      // qualifiers.) Skip unless preceded by `::` (out-of-line def ref).
    }
    FuncDecl d;
    d.file_rel = af.rel;
    d.line = name.line;
    d.is_definition = is_def;
    d.is_noexcept = is_noexcept;
    d.pool_safe = pool_safe;
    index.functions[name.text].push_back(d);
  }
}

// Collects names of variables/parameters/members declared as ThreadPool.
void IndexPoolVars(const AnalyzedFile& af, ProgramIndex& index) {
  const std::vector<Token>& toks = af.toks;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "ThreadPool") continue;
    if (i > 0 && (toks[i - 1].text == "class" || toks[i - 1].text == "struct"))
      continue;
    size_t j = i + 1;
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const"))
      ++j;
    if (j < toks.size() && IsIdent(toks[j])) {
      index.pool_vars.insert(toks[j].text);
    }
  }
}

// Reads the counter field names out of the stats structs. Field lists are
// taken from EnumStats and CpiBuildStats in src/obs/stats.h — per-call
// recording counters that must vanish under -DCFL_STATS=OFF. (MatchStats
// summary fields are assigned at merge points that are themselves gated,
// and share names with always-on MatchResult counters, so they are
// deliberately not in the set.)
void IndexStatsFields(const AnalyzedFile& af, ProgramIndex& index) {
  if (af.rel.find("src/obs/") != 0) return;
  std::vector<ClassInfo> classes = FindClasses(af.toks);
  for (const ClassInfo& cls : classes) {
    if (cls.name != "EnumStats" && cls.name != "CpiBuildStats") continue;
    size_t i = cls.body_begin;
    std::vector<size_t> decl;  // token indices of the current declaration
    while (i < cls.body_end) {
      const std::string& t = af.toks[i].text;
      if (t == "{") {  // method body / brace initializer
        i = SkipGroup(af.toks, i, "{", "}");
        decl.clear();
        continue;
      }
      if (t == "(") {  // function declaration — not a data member
        i = SkipGroup(af.toks, i, "(", ")");
        decl.push_back(0);  // poison: decl contained parens
        continue;
      }
      if (t == ";") {
        // Member name: the identifier before `=` if present, else the last
        // identifier of the declaration.
        bool poisoned = false;
        size_t name_at = 0;
        bool have = false;
        for (size_t d : decl) {
          if (d == 0) poisoned = true;
        }
        if (!poisoned) {
          for (size_t d : decl) {
            if (af.toks[d].text == "=") break;
            if (IsIdent(af.toks[d])) {
              name_at = d;
              have = true;
            }
          }
          if (have) index.stats_fields.insert(af.toks[name_at].text);
        }
        decl.clear();
        ++i;
        continue;
      }
      decl.push_back(i);
      ++i;
    }
  }
}

// ---- rule: layering -----------------------------------------------------

void CheckLayering(const std::vector<AnalyzedFile>& files,
                   std::vector<Diagnostic>& diags) {
  // Module DAG over the include edges.
  std::map<std::string, std::vector<Include>> project_includes;
  for (const AnalyzedFile& af : files) {
    if (af.module.empty()) continue;
    for (const Include& inc : ExtractIncludes(af.src)) {
      if (!inc.quoted) continue;
      std::string dep = ModuleOfInclude(inc.path);
      if (dep.empty()) continue;  // not a project module path
      if (AllowedDeps().count(dep) == 0 && dep != "validate") continue;
      project_includes[af.rel].push_back(inc);
      if (DepAllowed(af.module, dep)) continue;
      if (Allowed(af.src, kLayering, inc.line)) continue;
      bool known = AllowedDeps().count(af.module) != 0;
      diags.push_back(
          {af.src.path, inc.line, inc.col, kLayering,
           known ? ("module '" + af.module + "' must not include '" +
                    inc.path + "' (module '" + dep +
                    "') — layering back-edge; the DAG is check < obs < "
                    "graph < {kernels,gen,decomp} < cpi < order < validate < match "
                    "< {baseline,parallel,harness}")
                 : ("module '" + af.module +
                    "' is not in the layering DAG — add it to AllowedDeps() "
                    "in tools/cfl_analyze.cc (and DESIGN.md §9)")});
    }
  }

  // File-level include cycles (covers within-module cycles the DAG check
  // cannot see). Nodes are repo-relative paths under src/.
  std::map<std::string, const AnalyzedFile*> by_rel;
  for (const AnalyzedFile& af : files) by_rel[af.rel] = &af;
  std::map<std::string, std::vector<std::string>> edges;
  for (const AnalyzedFile& af : files) {
    for (const Include& inc : ExtractIncludes(af.src)) {
      if (!inc.quoted) continue;
      std::string target = "src/" + inc.path;
      if (by_rel.count(target) != 0) edges[af.rel].push_back(target);
    }
  }
  // Iterative DFS with colors; report each cycle once (at its first edge).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& n) {
    color[n] = 1;
    stack.push_back(n);
    for (const std::string& m : edges[n]) {
      if (color[m] == 1) {
        // Cycle: stack suffix from m to n.
        auto at = std::find(stack.begin(), stack.end(), m);
        std::string chain;
        for (auto it = at; it != stack.end(); ++it) chain += *it + " -> ";
        chain += m;
        if (reported.insert(chain).second) {
          const AnalyzedFile* af = by_rel[n];
          int line = 1, col = 1;
          for (const Include& inc : ExtractIncludes(af->src)) {
            if ("src/" + inc.path == m) {
              line = inc.line;
              col = inc.col;
              break;
            }
          }
          if (!Allowed(af->src, kLayering, line)) {
            diags.push_back({af->src.path, line, col, kLayering,
                             "include cycle: " + chain});
          }
        }
      } else if (color[m] == 0) {
        dfs(m);
      }
    }
    stack.pop_back();
    color[n] = 2;
  };
  for (const AnalyzedFile& af : files) {
    if (color[af.rel] == 0) dfs(af.rel);
  }
}

// ---- rule: span-escape --------------------------------------------------

// True if the token range contains `std :: span` (always) or
// `std :: string_view` (only when string_view_too). Method returns audit
// span only: `std::string_view name() const` over a literal or a stable
// string member is the dominant safe accessor idiom, while a returned span
// almost always aliases arena storage. Members audit both: a cached
// string_view member dangles exactly like a span member.
bool ContainsViewType(const std::vector<Token>& toks, size_t begin,
                      size_t end, bool string_view_too, size_t* at) {
  for (size_t i = begin; i + 2 < end; ++i) {
    if (toks[i].text == "std" && toks[i + 1].text == "::" &&
        (toks[i + 2].text == "span" ||
         (string_view_too && toks[i + 2].text == "string_view"))) {
      *at = i;
      return true;
    }
  }
  return false;
}

void CheckSpanEscape(const AnalyzedFile& af, const ProgramIndex& index,
                     std::vector<Diagnostic>& diags) {
  if (af.module.empty()) return;  // src/ only
  std::vector<ClassInfo> classes = FindClasses(af.toks);
  for (const ClassInfo& cls : classes) {
    if (cls.marked) continue;  // immutable owner: views cannot dangle
    size_t i = cls.body_begin;
    size_t decl_start = i;
    while (i < cls.body_end) {
      const std::string& t = af.toks[i].text;
      if (t == "{") {  // method body, nested class, brace initializer
        i = SkipGroup(af.toks, i, "{", "}");
        decl_start = i;
        continue;
      }
      if (t == "(" && i > decl_start &&
          af.toks[i - 1].text == "CFL_SPAN_INTO") {
        // Annotation arguments, not a function declarator.
        i = SkipGroup(af.toks, i, "(", ")");
        continue;
      }
      if (t != ";" && t != "(") {
        ++i;
        continue;
      }
      // Declaration span is [decl_start, i); for a function declarator the
      // view check covers only the return type (tokens before the name).
      size_t decl_end = i;
      bool is_function = t == "(";
      if (is_function) decl_end = i > decl_start ? i - 1 : decl_start;
      size_t view_at = 0;
      bool has_view = ContainsViewType(af.toks, decl_start, decl_end,
                                       /*string_view_too=*/!is_function,
                                       &view_at);
      // CFL_SPAN_INTO(Owner) annotation anywhere in the declaration.
      std::string span_owner;
      bool has_annotation = false;
      for (size_t d = decl_start; d + 2 < i; ++d) {
        if (af.toks[d].text == "CFL_SPAN_INTO" &&
            af.toks[d + 1].text == "(") {
          has_annotation = true;
          span_owner = af.toks[d + 2].text;
        }
      }
      if (has_view) {
        const Token& vt = af.toks[view_at];
        bool allowed = Allowed(af.src, kSpanEscape, vt.line);
        bool owner_ok = false;
        std::string why;
        if (has_annotation) {
          auto it = index.classes.find(span_owner);
          if (it != index.classes.end() && it->second) {
            owner_ok = true;
          } else {
            why = "CFL_SPAN_INTO names '" + span_owner +
                  "', which is not CFL_IMMUTABLE_AFTER_BUILD anywhere in "
                  "the program";
          }
        } else {
          why = is_function
                    ? "method returns a view from a class that is not "
                      "CFL_IMMUTABLE_AFTER_BUILD — the referent may be "
                      "rebuilt under the caller"
                    : "view-typed member of a class that is not "
                      "CFL_IMMUTABLE_AFTER_BUILD — it can outlive a reused "
                      "scratch buffer or rebuilt arena; annotate with "
                      "CFL_SPAN_INTO(<frozen owner>) "
                      "(check/analyze_annotations.h) or justify with an "
                      "allow";
        }
        if (!allowed && !owner_ok) {
          diags.push_back({af.src.path, vt.line, vt.col, kSpanEscape,
                           "in class '" + cls.name + "': " + why});
        }
      }
      // Advance past the declarator.
      if (is_function) {
        size_t j = SkipGroup(af.toks, i, "(", ")");
        while (j < cls.body_end && af.toks[j].text != ";" &&
               af.toks[j].text != "{") {
          if (af.toks[j].text == "(")
            j = SkipGroup(af.toks, j, "(", ")");
          else
            ++j;
        }
        if (j < cls.body_end && af.toks[j].text == "{")
          j = SkipGroup(af.toks, j, "{", "}");
        else if (j < cls.body_end)
          ++j;
        i = j;
      } else {
        ++i;
      }
      decl_start = i;
    }
  }
}

// ---- rule: narrowing ----------------------------------------------------

bool InNarrowingScope(const std::string& rel) {
  return rel.find("src/cpi/") == 0 || rel.find("src/match/") == 0 ||
         rel.find("src/parallel/") == 0;
}

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Size/offset-shaped subexpression: `.size(`, or an arena/offset member.
bool RangeLooksLikeIndexExpr(const std::vector<Token>& toks, size_t begin,
                             size_t end) {
  for (size_t i = begin; i < end; ++i) {
    const std::string& t = toks[i].text;
    if (t == "size" && i + 1 < end && toks[i + 1].text == "(" && i > begin &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      return true;
    if (EndsWith(t, "offsets_") || EndsWith(t, "start_") ||
        EndsWith(t, "arena_"))
      return true;
  }
  return false;
}

bool RangeContains(const std::vector<Token>& toks, size_t begin, size_t end,
                   std::string_view word) {
  for (size_t i = begin; i < end; ++i) {
    if (toks[i].text == word) return true;
  }
  return false;
}

void CheckNarrowing(const AnalyzedFile& af, std::vector<Diagnostic>& diags) {
  if (!InNarrowingScope(af.rel)) return;
  const std::vector<Token>& toks = af.toks;
  for (size_t i = 0; i + 4 < toks.size(); ++i) {
    // static_cast<uint32_t>(<size/offset expr>)
    if (toks[i].text == "static_cast" && toks[i + 1].text == "<" &&
        toks[i + 2].text == "uint32_t" && toks[i + 3].text == ">" &&
        toks[i + 4].text == "(") {
      size_t close = SkipGroup(toks, i + 4, "(", ")");
      if (RangeLooksLikeIndexExpr(toks, i + 5, close - 1) &&
          !Allowed(af.src, kNarrowing, toks[i].line)) {
        diags.push_back(
            {af.src.path, toks[i].line, toks[i].col, kNarrowing,
             "unchecked 64->32 narrowing of a size/offset expression — use "
             "cfl::CheckedU32 (check/narrow.h) or CheckedCandidateCount "
             "(match/enumerator.h) so truncation fails loudly"});
      }
      continue;
    }
    // <32-bit type> name = <expr containing .size()>;
    if ((toks[i].text == "uint32_t" || toks[i].text == "int32_t" ||
         toks[i].text == "int" || toks[i].text == "unsigned") &&
        IsIdent(toks[i + 1]) && toks[i + 2].text == "=") {
      // RHS ends at the first top-level `;`, `,`, `)` or `{` so default
      // arguments and initializer lists do not bleed into the next
      // declaration.
      size_t end = i + 3;
      while (end < toks.size() && toks[end].text != ";" &&
             toks[end].text != "," && toks[end].text != ")" &&
             toks[end].text != "{") {
        if (toks[end].text == "(")
          end = SkipGroup(toks, end, "(", ")") - 1;
        ++end;
      }
      if (RangeLooksLikeIndexExpr(toks, i + 3, end) &&
          !RangeContains(toks, i + 3, end, "CheckedU32") &&
          !RangeContains(toks, i + 3, end, "CheckedCandidateCount") &&
          !Allowed(af.src, kNarrowing, toks[i].line)) {
        diags.push_back(
            {af.src.path, toks[i].line, toks[i].col, kNarrowing,
             "implicit 64->32 narrowing: " + toks[i].text + " " +
                 toks[i + 1].text +
                 " initialized from a size/offset expression — route it "
                 "through cfl::CheckedU32 (check/narrow.h)"});
      }
    }
  }
}

// ---- rule: worker-noexcept ----------------------------------------------

// Merged view of a function across all decls/defs.
struct FuncSummary {
  bool known = false;
  bool is_noexcept = false;
  bool pool_safe = false;
  bool defined_in_parallel = false;
  std::string def_file;
  int def_line = 0;
};

FuncSummary Summarize(const ProgramIndex& index, const std::string& name) {
  FuncSummary s;
  auto it = index.functions.find(name);
  if (it == index.functions.end()) return s;
  s.known = true;
  for (const FuncDecl& d : it->second) {
    if (d.is_noexcept) s.is_noexcept = true;
    if (d.pool_safe) s.pool_safe = true;
    if (d.file_rel.find("src/parallel/") == 0) {
      s.defined_in_parallel = true;
      if (s.def_file.empty() || d.is_definition) {
        s.def_file = d.file_rel;
        s.def_line = d.line;
      }
    }
  }
  return s;
}

// Token range of the body of function `name` in this file ({...} after the
// declarator), or (0,0) when not found / declaration only.
std::pair<size_t, size_t> FindFunctionBody(const std::vector<Token>& toks,
                                           const std::string& name) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != name || toks[i + 1].text != "(") continue;
    size_t j = SkipGroup(toks, i + 1, "(", ")");
    // Walk qualifiers/initializer list to the body.
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
      if (toks[j].text == "(")
        j = SkipGroup(toks, j, "(", ")");
      else
        ++j;
    }
    if (j < toks.size() && toks[j].text == "{") {
      return {j + 1, SkipGroup(toks, j, "{", "}") - 1};
    }
  }
  return {0, 0};
}

void CheckWorkerNoexcept(const AnalyzedFile& af, const ProgramIndex& index,
                         std::vector<Diagnostic>& diags) {
  if (af.module.empty()) return;  // src/ only
  const std::vector<Token>& toks = af.toks;

  // (a) ThreadPool internals: the body functor is invoked only through
  // InvokeBody, and the out-of-boundary functions are noexcept.
  bool is_pool_impl = false;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text == "ThreadPool" && toks[i + 1].text == "::" &&
        (toks[i + 2].text == "WorkerLoop" || toks[i + 2].text == "Run" ||
         toks[i + 2].text == "InvokeBody")) {
      is_pool_impl = true;
      break;
    }
  }
  if (is_pool_impl) {
    auto invoke_body = FindFunctionBody(toks, "InvokeBody");
    auto called_as_body = [&](size_t i) {
      const std::string& t = toks[i].text;
      if (t != "body" && t != "body_") return false;
      if (i + 1 < toks.size() && toks[i + 1].text == "(") return true;
      // (*body_)(...) / (*body)(...)
      if (i > 0 && toks[i - 1].text == "*" && i + 2 < toks.size() &&
          toks[i + 1].text == ")" && toks[i + 2].text == "(")
        return true;
      return false;
    };
    for (size_t i = 0; i < toks.size(); ++i) {
      if (!called_as_body(i)) continue;
      if (i >= invoke_body.first && i < invoke_body.second) continue;
      if (Allowed(af.src, kWorkerNoexcept, toks[i].line)) continue;
      diags.push_back(
          {af.src.path, toks[i].line, toks[i].col, kWorkerNoexcept,
           "ThreadPool invokes the run body directly — route it through "
           "InvokeBody so an escaped exception fails fast with context "
           "instead of std::terminate / stranding the join barrier"});
    }
    for (const char* fn : {"InvokeBody", "WorkerLoop"}) {
      FuncSummary s = Summarize(index, fn);
      if (!s.known || s.is_noexcept) continue;
      // Report at this file's mention of the function (once).
      for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].text != fn) continue;
        if (Allowed(af.src, kWorkerNoexcept, toks[i].line)) break;
        diags.push_back(
            {af.src.path, toks[i].line, toks[i].col, kWorkerNoexcept,
             std::string("ThreadPool::") + fn +
                 " must be noexcept — it runs on the worker outside the "
                 "InvokeBody boundary, where an exception is an immediate "
                 "std::terminate with no context"});
        break;
      }
    }
  }

  // (b) Run-lambda audit: functions called from a ThreadPool::Run body that
  // are defined in src/parallel/ must be noexcept or CFL_POOL_SAFE.
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!IsIdent(toks[i]) || index.pool_vars.count(toks[i].text) == 0)
      continue;
    size_t j = i + 1;
    if (toks[j].text == "." || (toks[j].text == "-" &&
                                j + 1 < toks.size() &&
                                toks[j + 1].text == ">")) {
      j += toks[j].text == "." ? 1 : 2;
    } else {
      continue;
    }
    if (j + 1 >= toks.size() || toks[j].text != "Run" ||
        toks[j + 1].text != "(")
      continue;
    size_t call_end = SkipGroup(toks, j + 1, "(", ")");
    // Lambda body inside the call: first top-level '{' after the capture.
    size_t k = j + 2;
    if (k >= call_end || toks[k].text != "[") continue;
    k = SkipGroup(toks, k, "[", "]");
    while (k < call_end && toks[k].text != "{") {
      if (toks[k].text == "(")
        k = SkipGroup(toks, k, "(", ")");
      else
        ++k;
    }
    if (k >= call_end) continue;
    size_t body_begin = k + 1;
    size_t body_end = SkipGroup(toks, k, "{", "}") - 1;
    for (size_t c = body_begin; c + 1 < body_end; ++c) {
      if (!IsIdent(toks[c]) || toks[c + 1].text != "(") continue;
      const std::string& callee = toks[c].text;
      if (IsKeywordCall(callee) || LooksLikeMacro(callee)) continue;
      if (!std::isupper(static_cast<unsigned char>(callee[0])))
        continue;  // project functions are PascalCase; locals are not
      if (c > body_begin) {
        const std::string& prev = toks[c - 1].text;
        if (prev == "." || prev == "::" || prev == ">") continue;  // method
      }
      FuncSummary s = Summarize(index, callee);
      if (!s.known || !s.defined_in_parallel) continue;
      if (s.is_noexcept || s.pool_safe) continue;
      if (Allowed(af.src, kWorkerNoexcept, toks[c].line)) continue;
      diags.push_back(
          {af.src.path, toks[c].line, toks[c].col, kWorkerNoexcept,
           "'" + callee + "' (defined in " + s.def_file +
               ") is called from a ThreadPool::Run body but is neither "
               "noexcept nor CFL_POOL_SAFE — the parallel layer's own "
               "helpers must not throw across the worker boundary"});
    }
  }
}

// ---- rule: stats-gate ---------------------------------------------------

void CheckStatsGate(const AnalyzedFile& af, const ProgramIndex& index,
                    std::vector<Diagnostic>& diags) {
  if (af.module.empty() || af.rel.find("src/obs/") == 0) return;
  const std::vector<Token>& toks = af.toks;

  // Token ranges covered by CFL_STATS_ONLY(...).
  std::vector<std::pair<size_t, size_t>> gated;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text == "CFL_STATS_ONLY" && toks[i + 1].text == "(") {
      gated.emplace_back(i + 2, SkipGroup(toks, i + 1, "(", ")") - 1);
    }
  }
  auto in_gate = [&](size_t i) {
    for (const auto& g : gated) {
      if (i >= g.first && i < g.second) return true;
    }
    return false;
  };

  static const std::set<std::string> kMutatingMethods = {
      "push_back", "resize", "clear",  "assign",
      "emplace_back", "reserve", "shrink_to_fit", "pop_back"};

  for (size_t i = 1; i < toks.size(); ++i) {
    if (index.stats_fields.count(toks[i].text) == 0) continue;
    const std::string& prev = toks[i - 1].text;
    bool member_access =
        prev == "." || (prev == ">" && i >= 2 && toks[i - 2].text == "-");
    if (!member_access) continue;

    // Skip subscript groups after the field: stats.generated[u] += ...
    size_t j = i + 1;
    while (j < toks.size() && toks[j].text == "[")
      j = SkipGroup(toks, j, "[", "]");
    bool mutation = false;
    std::string how;
    if (j + 1 < toks.size()) {
      const std::string& a = toks[j].text;
      const std::string& b = toks[j + 1].text;
      if (a == "=" && b != "=") {
        mutation = true;
        how = "assignment";
      } else if ((a == "+" || a == "-" || a == "*" || a == "/" || a == "|" ||
                  a == "&" || a == "^") &&
                 b == "=") {
        mutation = true;
        how = "compound assignment";
      } else if ((a == "+" && b == "+") || (a == "-" && b == "-")) {
        mutation = true;
        how = "increment";
      } else if (a == "." && kMutatingMethods.count(b) != 0 &&
                 j + 2 < toks.size() && toks[j + 2].text == "(") {
        mutation = true;
        how = "." + b + "()";
      }
    }
    if (!mutation) {
      // Prefix ++/--: walk left over the member chain.
      size_t k = i - 1;
      while (k > 0 && (toks[k].text == "." || IsIdent(toks[k]) ||
                       (toks[k].text == ">" && k >= 1 &&
                        toks[k - 1].text == "-") ||
                       toks[k].text == "-"))
        --k;
      if (k >= 1 && ((toks[k].text == "+" && toks[k - 1].text == "+") ||
                     (toks[k].text == "-" && toks[k - 1].text == "-"))) {
        mutation = true;
        how = "increment";
      }
    }
    if (!mutation) continue;
    if (in_gate(i)) continue;
    if (Allowed(af.src, kStatsGate, toks[i].line)) continue;
    diags.push_back(
        {af.src.path, toks[i].line, toks[i].col, kStatsGate,
         "stats counter '" + toks[i].text + "' mutated (" + how +
             ") outside CFL_STATS_ONLY — the site would survive "
             "-DCFL_STATS=OFF and break the bit-identical-hot-path "
             "contract (src/obs/stats.h)"});
  }
}

// ---- concurrency model --------------------------------------------------
//
// Shared token-level model for the lock-order and blocking-under-lock
// rules: every cfl::Mutex member with its declared CFL_LOCK_LEVEL, a
// program-wide variable-name -> type map for the lockable / waitable types
// (built the same way IndexPoolVars types ThreadPool variables), and every
// function *definition* with its body token range so acquisitions can be
// attributed to a (class, function) and propagated along the call graph.

struct MutexInfo {
  std::string cls;
  std::string member;
  int level = -1;  // -1: marker missing or malformed
  size_t file_index = 0;
  int line = 0;
  int col = 1;
};

struct FunctionDef {
  size_t file_index = 0;
  std::string cls;  // "" for free functions
  std::string name;
  size_t body_begin = 0;  // first token inside the body braces
  size_t body_end = 0;    // one past the last token inside them
  int line = 0;
};

struct ConcurrencyModel {
  // "Cls::member" -> info, and member name -> set of owning keys (for
  // resolving `MutexLock lock(mu_)` outside the owning class).
  std::map<std::string, MutexInfo> mutexes;
  std::map<std::string, std::set<std::string>> members_by_name;
  // variable / member / parameter name -> possible class types (a name used
  // with different types in different classes maps to the union — the
  // analysis is conservative across the aliases).
  std::map<std::string, std::set<std::string>> var_types;
  std::vector<FunctionDef> defs;
  std::map<std::string, std::vector<size_t>> defs_by_name;
};

bool IsThreadAnnotationsHeader(const AnalyzedFile& af) {
  return af.rel.find("check/thread_annotations.h") != std::string::npos;
}

// Scans class bodies (at member level — nested braces and parens skipped)
// for `Mutex <name> ... ;` members and their CFL_LOCK_LEVEL markers. The
// wrapper's own header is exempt: it defines Mutex, it does not hold one.
void CollectMutexMembers(const std::vector<AnalyzedFile>& files,
                         ConcurrencyModel& model,
                         std::vector<Diagnostic>& diags) {
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const AnalyzedFile& af = files[fi];
    if (af.module.empty() || IsThreadAnnotationsHeader(af)) continue;
    const std::vector<Token>& toks = af.toks;
    for (const ClassInfo& cls : FindClasses(toks)) {
      if (cls.name.empty()) continue;
      size_t i = cls.body_begin;
      while (i < cls.body_end) {
        const std::string& t = toks[i].text;
        if (t == "{") {
          i = SkipGroup(toks, i, "{", "}");
          continue;
        }
        if (t == "(") {
          i = SkipGroup(toks, i, "(", ")");
          continue;
        }
        bool decl_head =
            t == "Mutex" && i + 1 < cls.body_end && IsIdent(toks[i + 1]) &&
            (i == 0 || (toks[i - 1].text != "class" &&
                        toks[i - 1].text != "struct" &&
                        toks[i - 1].text != "friend"));
        if (!decl_head) {
          ++i;
          continue;
        }
        const Token& name = toks[i + 1];
        MutexInfo info;
        info.cls = cls.name;
        info.member = name.text;
        info.file_index = fi;
        info.line = name.line;
        info.col = name.col;
        bool has_marker = false;
        bool bad_arg = false;
        size_t j = i + 2;
        while (j < cls.body_end && toks[j].text != ";") {
          if (toks[j].text == "CFL_LOCK_LEVEL" && j + 2 < cls.body_end &&
              toks[j + 1].text == "(") {
            has_marker = true;
            const std::string& arg = toks[j + 2].text;
            bool numeric = !arg.empty();
            for (char c : arg) {
              if (!std::isdigit(static_cast<unsigned char>(c)))
                numeric = false;
            }
            if (numeric) {
              info.level = std::atoi(arg.c_str());
            } else {
              bad_arg = true;
            }
            j = SkipGroup(toks, j + 1, "(", ")");
            continue;
          }
          if (toks[j].text == "{") {
            j = SkipGroup(toks, j, "{", "}");
            continue;
          }
          if (toks[j].text == "(") {
            j = SkipGroup(toks, j, "(", ")");
            continue;
          }
          ++j;
        }
        const std::string key = cls.name + "::" + name.text;
        if (!has_marker) {
          if (!Allowed(af.src, kLockOrder, name.line)) {
            diags.push_back(
                {af.src.path, name.line, name.col, kLockOrder,
                 "cfl::Mutex member '" + key +
                     "' has no CFL_LOCK_LEVEL(n) — every mutex must "
                     "declare its position in the lock hierarchy "
                     "(check/thread_annotations.h, DESIGN.md §9)"});
          }
        } else if (bad_arg) {
          if (!Allowed(af.src, kLockOrder, name.line)) {
            diags.push_back({af.src.path, name.line, name.col, kLockOrder,
                             "CFL_LOCK_LEVEL on '" + key +
                                 "' must take an integer literal"});
          }
        }
        model.mutexes[key] = info;
        model.members_by_name[name.text].insert(key);
        i = j;
      }
    }
  }
}

// Types whose variables the concurrency rules care about: anything holding
// a Mutex member, plus the waitable primitives from thread_annotations.h
// and the pools. `Mutex` itself is deliberately absent — `Mutex&`
// parameters (CondVar::Wait) are the wrapper's own plumbing.
void CollectVarTypes(const std::vector<AnalyzedFile>& files,
                     ConcurrencyModel& model) {
  std::set<std::string> known = {"CondVar", "TaskPool", "ThreadPool",
                                 "TaskLatch"};
  for (const auto& [key, info] : model.mutexes) known.insert(info.cls);
  for (const AnalyzedFile& af : files) {
    if (af.module.empty() || IsThreadAnnotationsHeader(af)) continue;
    const std::vector<Token>& toks = af.toks;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (known.count(toks[i].text) == 0) continue;
      if (i > 0 && (toks[i - 1].text == "class" ||
                    toks[i - 1].text == "struct" ||
                    toks[i - 1].text == "enum" ||
                    toks[i - 1].text == "friend"))
        continue;
      size_t j = i + 1;
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "*" ||
              toks[j].text == ">" || toks[j].text == "const"))
        ++j;
      if (j < toks.size() && IsIdent(toks[j]) &&
          !IsKeywordCall(toks[j].text)) {
        model.var_types[toks[j].text].insert(toks[i].text);
      }
    }
  }
}

// Records every function *definition* with its body token range. Same
// declarator walk as IndexFunctions, but it resolves the enclosing class
// (out-of-line `Cls::name` qualifier first, innermost containing class
// body otherwise) and follows constructor initializer lists to the body.
void CollectFunctionDefs(const std::vector<AnalyzedFile>& files,
                         ConcurrencyModel& model) {
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const AnalyzedFile& af = files[fi];
    if (af.module.empty()) continue;
    const std::vector<Token>& toks = af.toks;
    std::vector<ClassInfo> classes = FindClasses(toks);
    for (size_t i = 2; i + 1 < toks.size(); ++i) {
      if (toks[i].text != "(") continue;
      const Token& name = toks[i - 1];
      if (!IsIdent(name) || IsKeywordCall(name.text) ||
          LooksLikeMacro(name.text))
        continue;
      std::string cls;
      const std::string& before = toks[i - 2].text;
      if (before == "::" && i >= 3 && IsIdent(toks[i - 3])) {
        cls = toks[i - 3].text;  // Cls::name( — out-of-line definition
        if (cls == "std") continue;
      } else if (before == "~") {
        // Destructor: `~Cls(` inline, or `Cls :: ~ Cls (` out of line.
        if (i >= 4 && toks[i - 3].text == "::" && IsIdent(toks[i - 4])) {
          cls = toks[i - 4].text;
        }
      } else {
        bool type_shaped =
            before == ">" || before == "*" || before == "&" ||
            (IsIdentChar(before[0]) && !IsKeywordCall(before) &&
             before != "return" && before != "else" && before != "do" &&
             before != "case" && !LooksLikeMacro(before));
        if (!type_shaped) continue;
      }
      size_t after_params = SkipGroup(toks, i, "(", ")");
      size_t j = after_params;
      int steps = 0;
      bool found_body = false;
      bool init_list = false;
      while (j < toks.size() && steps++ < 32) {
        const std::string& q = toks[j].text;
        if (q == "(") {
          j = SkipGroup(toks, j, "(", ")");
        } else if (q == "{") {
          found_body = true;
          break;
        } else if (q == ":") {
          init_list = true;
          break;
        } else if (q == ";" || q == "=" || q == ")" || q == "}" ||
                   q == ",") {
          break;
        } else {
          ++j;
        }
      }
      if (init_list) {
        // Constructor initializer list: `member(init)` / `member{init}`
        // groups until a `{` that is NOT a brace-initializer (i.e. not
        // preceded by an identifier) — that `{` is the body.
        ++j;
        while (j < toks.size()) {
          const std::string& q = toks[j].text;
          if (q == "(") {
            j = SkipGroup(toks, j, "(", ")");
            continue;
          }
          if (q == "{") {
            if (j > 0 && IsIdent(toks[j - 1])) {
              j = SkipGroup(toks, j, "{", "}");
              continue;
            }
            found_body = true;
            break;
          }
          if (q == ";") break;  // misparse (bit-field, label) — bail
          ++j;
        }
      }
      if (!found_body || j >= toks.size()) continue;
      FunctionDef d;
      d.file_index = fi;
      d.name = name.text;
      d.line = name.line;
      if (cls.empty()) {
        // Innermost class whose body contains the definition, if any.
        size_t best_span = static_cast<size_t>(-1);
        for (const ClassInfo& c : classes) {
          if (c.name.empty()) continue;
          if (i >= c.body_begin && i < c.body_end &&
              c.body_end - c.body_begin < best_span) {
            best_span = c.body_end - c.body_begin;
            d.cls = c.name;
          }
        }
      } else {
        d.cls = cls;
      }
      d.body_begin = j + 1;
      d.body_end = SkipGroup(toks, j, "{", "}") - 1;
      model.defs_by_name[d.name].push_back(model.defs.size());
      model.defs.push_back(d);
    }
  }
}

// Resolves the mutex variable named in `MutexLock lock(<var>)`: the
// enclosing class's member of that name first, then a program-wide unique
// member name; "" when ambiguous or unknown (the lock still counts as held
// for blocking-under-lock, it just contributes no ordering edges).
std::string ResolveMutexVar(const ConcurrencyModel& model,
                            const std::string& cls, const std::string& var) {
  if (!cls.empty()) {
    std::string key = cls + "::" + var;
    if (model.mutexes.count(key) != 0) return key;
  }
  auto it = model.members_by_name.find(var);
  if (it != model.members_by_name.end() && it->second.size() == 1) {
    return *it->second.begin();
  }
  return "";
}

// ---- rules: lock-order + blocking-under-lock ----------------------------

void CheckLockDiscipline(const std::vector<AnalyzedFile>& files,
                         const ConcurrencyModel& model,
                         std::vector<Diagnostic>& diags) {
  static const std::set<std::string> kSyscalls = {
      "read",    "write",   "pread",   "pwrite",  "poll",
      "accept",  "recv",    "send",    "select",  "connect",
      "recvmsg", "sendmsg", "usleep",  "sleep",   "nanosleep"};
  static const std::set<std::string> kPoolBlocking = {"Submit", "Run"};

  struct CallUnderLock {
    std::vector<std::string> held;  // known mutex keys live at the call
    size_t callee = 0;              // index into model.defs
    size_t file_index = 0;
    int line = 0;
    int col = 1;
  };
  struct EdgeSite {
    size_t file_index = 0;
    int line = 0;
    int col = 1;
  };

  const size_t n = model.defs.size();
  std::vector<std::set<std::string>> direct(n);
  std::vector<std::set<size_t>> callees(n);
  std::vector<CallUnderLock> deferred;
  std::map<std::pair<std::string, std::string>, EdgeSite> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      size_t fi, int line, int col) {
    edges.emplace(std::make_pair(from, to), EdgeSite{fi, line, col});
  };

  // Resolves a method call `recv.name(...)` to definition indices via the
  // receiver's possible types; a bare call to same-class methods and free
  // functions; a qualified call to that class's definitions.
  auto resolve_typed = [&](const std::set<std::string>& types,
                           const std::string& name,
                           std::vector<size_t>& out) {
    auto it = model.defs_by_name.find(name);
    if (it == model.defs_by_name.end()) return;
    for (size_t d : it->second) {
      if (types.count(model.defs[d].cls) != 0) out.push_back(d);
    }
  };
  auto resolve_bare = [&](const std::string& cls, const std::string& name,
                          std::vector<size_t>& out) {
    auto it = model.defs_by_name.find(name);
    if (it == model.defs_by_name.end()) return;
    for (size_t d : it->second) {
      if (model.defs[d].cls == cls || model.defs[d].cls.empty())
        out.push_back(d);
    }
  };

  for (size_t di = 0; di < n; ++di) {
    const FunctionDef& d = model.defs[di];
    const AnalyzedFile& af = files[d.file_index];
    const std::vector<Token>& toks = af.toks;

    struct LiveLock {
      std::string key;  // "" when unresolved
      int depth = 0;
      int line = 0;
    };
    std::vector<LiveLock> live;
    int depth = 0;

    for (size_t i = d.body_begin; i < d.body_end && i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (t == "{") {
        ++depth;
        continue;
      }
      if (t == "}") {
        --depth;
        while (!live.empty() && live.back().depth > depth) live.pop_back();
        continue;
      }
      // RAII acquisition: `MutexLock <var>(<mutex>);`
      if (t == "MutexLock" && i + 2 < d.body_end && IsIdent(toks[i + 1]) &&
          toks[i + 2].text == "(") {
        size_t close = SkipGroup(toks, i + 2, "(", ")");
        std::string var;
        for (size_t a = i + 3; a + 1 < close; ++a) {
          if (IsIdent(toks[a])) var = toks[a].text;
        }
        std::string key = ResolveMutexVar(model, d.cls, var);
        if (!key.empty()) {
          direct[di].insert(key);
          for (const LiveLock& l : live) {
            if (!l.key.empty()) {
              add_edge(l.key, key, d.file_index, toks[i].line, toks[i].col);
            }
          }
        }
        live.push_back({key, depth, toks[i].line});
        i = close - 1;
        continue;
      }
      // Call sites.
      if (!IsIdent(toks[i]) || i + 1 >= d.body_end ||
          toks[i + 1].text != "(")
        continue;
      const std::string& name = toks[i].text;
      if (IsKeywordCall(name) || LooksLikeMacro(name)) continue;

      const std::string& prev = toks[i - 1].text;
      bool is_method = false;
      std::string recv;
      if (prev == ".") {
        if (i >= 2) recv = toks[i - 2].text;
        is_method = true;
      } else if (prev == ">" && i >= 3 && toks[i - 2].text == "-") {
        recv = toks[i - 3].text;
        is_method = true;
      }

      std::vector<size_t> targets;
      bool blocking = false;
      std::string why;
      if (is_method) {
        auto vt = model.var_types.find(recv);
        const bool typed = vt != model.var_types.end();
        const bool condvar = typed && vt->second.count("CondVar") != 0;
        if (name == "Wait") {
          blocking = true;
          why = condvar ? "CondVar::Wait parks the thread"
                        : "'" + recv + ".Wait' blocks until signalled";
        } else if (name == "join") {
          blocking = true;
          why = "join blocks until the thread exits";
        } else if (typed && !condvar && kPoolBlocking.count(name) != 0 &&
                   (vt->second.count("TaskPool") != 0 ||
                    vt->second.count("ThreadPool") != 0)) {
          blocking = true;
          why = name == "Run"
                    ? "ThreadPool::Run blocks at the join barrier"
                    : "TaskPool::Submit takes the pool mutex to queue work";
        }
        // CondVar::Wait releases and re-acquires the mutex it is handed —
        // it is a blocking site, never an ordering edge.
        if (typed && !condvar) resolve_typed(vt->second, name, targets);
      } else if (prev == "::") {
        std::string qual = i >= 2 ? toks[i - 2].text : "";
        if (qual == "std" || qual.empty()) continue;
        std::set<std::string> one = {qual};
        resolve_typed(one, name, targets);
      } else {
        if (kSyscalls.count(name) != 0) {
          blocking = true;
          why = "'" + name + "' is a syscall-shaped blocking call";
        }
        resolve_bare(d.cls, name, targets);
      }

      if (blocking && !live.empty() &&
          !Allowed(af.src, kBlockingUnderLock, toks[i].line)) {
        std::string held = live.back().key.empty() ? "a mutex"
                                                   : "'" + live.back().key +
                                                         "' (locked line " +
                                                         std::to_string(
                                                             live.back()
                                                                 .line) +
                                                         ")";
        diags.push_back({af.src.path, toks[i].line, toks[i].col,
                         kBlockingUnderLock,
                         "blocking call while holding " + held + ": " + why +
                             " — waiting under a lock stalls every other "
                             "acquirer (DESIGN.md §9)"});
      }
      for (size_t tgt : targets) {
        if (tgt == di) continue;  // direct recursion: no new facts
        callees[di].insert(tgt);
        if (!live.empty()) {
          CallUnderLock cu;
          for (const LiveLock& l : live) {
            if (!l.key.empty()) cu.held.push_back(l.key);
          }
          if (!cu.held.empty()) {
            cu.callee = tgt;
            cu.file_index = d.file_index;
            cu.line = toks[i].line;
            cu.col = toks[i].col;
            deferred.push_back(cu);
          }
        }
      }
    }
  }

  // May-acquire fixpoint over the call graph: what can each function end
  // up locking, directly or transitively?
  std::vector<std::set<std::string>> may = direct;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t di = 0; di < n; ++di) {
      for (size_t c : callees[di]) {
        for (const std::string& m : may[c]) {
          if (may[di].insert(m).second) changed = true;
        }
      }
    }
  }
  for (const CallUnderLock& cu : deferred) {
    for (const std::string& acquired : may[cu.callee]) {
      for (const std::string& held : cu.held) {
        add_edge(held, acquired, cu.file_index, cu.line, cu.col);
      }
    }
  }

  // Ordering checks over the acquisition edges.
  auto level_of = [&](const std::string& key) {
    auto it = model.mutexes.find(key);
    return it == model.mutexes.end() ? -1 : it->second.level;
  };
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [edge, site] : edges) {
    const auto& [from, to] = edge;
    const AnalyzedFile& af = files[site.file_index];
    if (from == to) {
      if (!Allowed(af.src, kLockOrder, site.line)) {
        diags.push_back({af.src.path, site.line, site.col, kLockOrder,
                         "mutex '" + from +
                             "' acquired while already held — recursive "
                             "acquisition deadlocks cfl::Mutex"});
      }
      continue;
    }
    adj[from].push_back(to);
    int lf = level_of(from);
    int lt = level_of(to);
    if (lf >= 0 && lt >= 0 && lf >= lt &&
        !Allowed(af.src, kLockOrder, site.line)) {
      diags.push_back(
          {af.src.path, site.line, site.col, kLockOrder,
           "acquires '" + to + "' (CFL_LOCK_LEVEL " + std::to_string(lt) +
               ") while holding '" + from + "' (CFL_LOCK_LEVEL " +
               std::to_string(lf) +
               ") — lock levels must strictly ascend (DESIGN.md §9)"});
    }
  }

  // Cycle detection (grey-set DFS, same scheme as the layering rule).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& m) {
    color[m] = 1;
    stack.push_back(m);
    for (const std::string& nxt : adj[m]) {
      if (color[nxt] == 1) {
        std::string chain = nxt;
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          chain = *it + " -> " + chain;
          if (*it == nxt) break;
        }
        if (reported.insert(chain).second) {
          auto site = edges.find(std::make_pair(m, nxt));
          if (site != edges.end()) {
            const AnalyzedFile& af = files[site->second.file_index];
            if (!Allowed(af.src, kLockOrder, site->second.line)) {
              diags.push_back({af.src.path, site->second.line,
                               site->second.col, kLockOrder,
                               "lock-order cycle: " + chain +
                                   " — two threads taking this ring from "
                                   "different entry points deadlock"});
            }
          }
        }
      } else if (color[nxt] == 0) {
        dfs(nxt);
      }
    }
    stack.pop_back();
    color[m] = 2;
  };
  for (const auto& [from, tos] : adj) {
    if (color[from] == 0) dfs(from);
  }
}

// ---- rule: atomic-intent ------------------------------------------------

void CheckAtomicIntent(const std::vector<AnalyzedFile>& files,
                       std::vector<Diagnostic>& diags) {
  static const std::set<std::string> kIntents = {"counter", "flag",
                                                 "publish"};
  static const std::set<std::string> kRmwOps = {
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "compare_exchange_weak",
      "compare_exchange_strong"};

  struct DeclaredAtomic {
    std::string intent;
    size_t file_index = 0;
    int line = 0;
  };
  std::map<std::string, DeclaredAtomic> declared;

  // Phase 1: declarations. `std :: atomic < ... >` followed by an
  // identifier is a storage declaration (followed by `&`/`*` it is a
  // reference or pointer — the storage is annotated where it lives).
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const AnalyzedFile& af = files[fi];
    if (af.module.empty()) continue;
    const std::vector<Token>& toks = af.toks;
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].text != "std" || toks[i + 1].text != "::" ||
          toks[i + 2].text != "atomic" || toks[i + 3].text != "<")
        continue;
      size_t close = SkipGroup(toks, i + 3, "<", ">");
      if (close >= toks.size()) continue;
      const Token& name = toks[close];
      if (name.text == "&" || name.text == "*") {
        i = close;
        continue;
      }
      if (!IsIdent(name) || IsKeywordCall(name.text)) {
        i = close - 1;
        continue;
      }
      // Scan the rest of the declaration for the intent marker; a `,` or
      // `)` terminator means a non-member context (template argument,
      // cast) — skip those.
      std::string intent;
      bool terminated = false;
      size_t j = close + 1;
      int guard = 0;
      while (j < toks.size() && guard++ < 64) {
        const std::string& t = toks[j].text;
        if (t == "(") {
          if (toks[j - 1].text == "CFL_ATOMIC_INTENT" &&
              j + 1 < toks.size()) {
            intent = toks[j + 1].text;
          }
          j = SkipGroup(toks, j, "(", ")");
          continue;
        }
        if (t == "{") {
          j = SkipGroup(toks, j, "{", "}");
          continue;
        }
        if (t == ";") {
          terminated = true;
          break;
        }
        if (t == "," || t == ")") break;
        ++j;
      }
      i = close;
      if (!terminated) continue;
      if (intent.empty()) {
        if (!Allowed(af.src, kAtomicIntent, name.line)) {
          diags.push_back(
              {af.src.path, name.line, name.col, kAtomicIntent,
               "std::atomic '" + name.text +
                   "' declares no CFL_ATOMIC_INTENT(counter|flag|publish) "
                   "— say what the atomic is for so use sites can be "
                   "checked (check/thread_annotations.h, DESIGN.md §9)"});
        }
        continue;
      }
      if (kIntents.count(intent) == 0) {
        if (!Allowed(af.src, kAtomicIntent, name.line)) {
          diags.push_back({af.src.path, name.line, name.col, kAtomicIntent,
                           "unknown atomic intent '" + intent +
                               "' on '" + name.text +
                               "' — must be counter, flag, or publish"});
        }
        continue;
      }
      auto it = declared.find(name.text);
      if (it != declared.end() && it->second.intent != intent) {
        if (!Allowed(af.src, kAtomicIntent, name.line)) {
          diags.push_back(
              {af.src.path, name.line, name.col, kAtomicIntent,
               "atomic '" + name.text + "' re-declared with intent '" +
                   intent + "' but '" + it->second.intent +
                   "' elsewhere (" + files[it->second.file_index].rel +
                   ":" + std::to_string(it->second.line) +
                   ") — one name, one protocol"});
        }
        continue;
      }
      declared[name.text] = {intent, fi, name.line};
    }
  }

  // Phase 2: use sites. Every load/store/RMW on a declared atomic must
  // spell a memory_order, and the order must implement the intent.
  auto allowed_orders = [](const std::string& intent, bool is_load,
                           bool is_store) -> std::set<std::string> {
    if (intent == "counter") return {"memory_order_relaxed"};
    if (intent == "flag") {
      if (is_load) return {"memory_order_relaxed", "memory_order_acquire"};
      if (is_store) return {"memory_order_relaxed", "memory_order_release"};
      return {"memory_order_relaxed", "memory_order_acquire",
              "memory_order_release", "memory_order_acq_rel"};
    }
    // publish: release the write, acquire the read. RMW success orders may
    // combine; a CAS failure order is an acquire.
    if (is_load) return {"memory_order_acquire"};
    if (is_store) return {"memory_order_release"};
    return {"memory_order_acq_rel", "memory_order_acquire",
            "memory_order_release"};
  };

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const AnalyzedFile& af = files[fi];
    if (af.module.empty()) continue;
    const std::vector<Token>& toks = af.toks;
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!IsIdent(toks[i])) continue;
      auto it = declared.find(toks[i].text);
      if (it == declared.end()) continue;
      size_t op_at = 0;
      if (toks[i + 1].text == ".") {
        op_at = i + 2;
      } else if (toks[i + 1].text == "-" && toks[i + 2].text == ">") {
        op_at = i + 3;
      } else {
        continue;
      }
      if (op_at + 1 >= toks.size() || toks[op_at + 1].text != "(") continue;
      const std::string& op = toks[op_at].text;
      const bool is_load = op == "load";
      const bool is_store = op == "store";
      const bool is_rmw = kRmwOps.count(op) != 0;
      if (!is_load && !is_store && !is_rmw) continue;
      size_t close = SkipGroup(toks, op_at + 1, "(", ")");
      std::vector<std::string> orders;
      for (size_t a = op_at + 2; a + 1 < close; ++a) {
        if (toks[a].text.rfind("memory_order_", 0) == 0) {
          orders.push_back(toks[a].text);
        }
      }
      const std::string& intent = it->second.intent;
      const Token& site = toks[op_at];
      if (orders.empty()) {
        if (!Allowed(af.src, kAtomicIntent, site.line)) {
          diags.push_back(
              {af.src.path, site.line, site.col, kAtomicIntent,
               "'" + toks[i].text + "." + op +
                   "' defaults to seq_cst — spell the memory_order "
                   "explicitly; intent '" + intent +
                   "' declares what this atomic needs (DESIGN.md §9)"});
        }
        continue;
      }
      std::set<std::string> ok = allowed_orders(intent, is_load, is_store);
      for (const std::string& order : orders) {
        if (ok.count(order) != 0) continue;
        if (Allowed(af.src, kAtomicIntent, site.line)) continue;
        diags.push_back({af.src.path, site.line, site.col, kAtomicIntent,
                         "'" + toks[i].text + "." + op + "' uses " + order +
                             " but the atomic's declared intent is '" +
                             intent + "' — " +
                             (intent == "publish"
                                  ? "publication needs release stores and "
                                    "acquire loads"
                                  : intent == "counter"
                                        ? "counters are relaxed-only"
                                        : "flags never need more than "
                                          "acquire/release")});
      }
    }
  }
}

// ---- compile_commands.json ----------------------------------------------

// Minimal extraction of the "directory" and "file" string values of each
// entry. Good enough for every CMake-emitted database.
bool ParseCompDb(const fs::path& path, std::vector<fs::path>& out,
                 std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot read " + path.string();
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  auto read_string = [&](size_t& i) {
    std::string s;
    ++i;  // opening quote
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) {
        char e = text[i + 1];
        if (e == 'n')
          s += '\n';
        else if (e == 't')
          s += '\t';
        else if (e == 'u') {
          i += 4;  // skip the hex digits; exotic paths are out of scope
        } else
          s += e;
        i += 2;
      } else {
        s += text[i++];
      }
    }
    ++i;  // closing quote
    return s;
  };

  std::string key, directory, file;
  bool expect_value = false;
  for (size_t i = 0; i < text.size();) {
    char c = text[i];
    if (c == '"') {
      std::string s = read_string(i);
      if (expect_value) {
        if (key == "directory") directory = s;
        if (key == "file") file = s;
        expect_value = false;
      } else {
        key = s;
      }
      continue;
    }
    if (c == ':') expect_value = true;
    if (c == '{') directory = file = "";
    if (c == '}') {
      if (!file.empty()) {
        fs::path p(file);
        if (p.is_relative() && !directory.empty()) p = fs::path(directory) / p;
        out.push_back(p);
      }
      file = "";
    }
    ++i;
  }
  return true;
}

// ---- driver -------------------------------------------------------------

int Usage(int code) {
  std::cerr
      << "usage: cfl_analyze --root DIR [--compdb FILE] [--json]\n"
      << "  Whole-program analysis of every .h/.cc/.cpp under DIR/src.\n"
      << "  --compdb cross-checks the scan against a compile_commands.json\n"
      << "  (every TU under DIR/src must be covered).\n"
      << "  --json emits one JSON document instead of gcc-style lines.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path compdb;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage(2);
      root = argv[++i];
    } else if (arg == "--compdb") {
      if (i + 1 >= argc) return Usage(2);
      compdb = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else {
      std::cerr << "cfl_analyze: unknown argument " << arg << "\n";
      return Usage(2);
    }
  }

  std::error_code ec;
  fs::path src_dir = root / "src";
  if (!fs::is_directory(src_dir, ec)) {
    std::cerr << "cfl_analyze: no src/ under " << root << "\n";
    return 2;
  }
  std::vector<std::string> paths;
  for (fs::recursive_directory_iterator it(src_dir, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (it->is_regular_file(ec) &&
        cfl::lint::HasLintableExtension(it->path())) {
      paths.push_back(it->path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<AnalyzedFile> files;
  files.reserve(paths.size());
  const std::string root_prefix =
      fs::path(root).lexically_normal().generic_string();
  for (const std::string& p : paths) {
    AnalyzedFile af;
    if (!cfl::lint::LoadSourceFile(p, fs::path(p), af.src)) {
      std::cerr << "cfl_analyze: cannot read " << p << "\n";
      return 2;
    }
    std::string rel =
        fs::path(p).lexically_proximate(root).generic_string();
    af.rel = rel;
    af.module = ModuleOf(rel);
    af.toks = Tokenize(af.src);
    files.push_back(std::move(af));
  }

  std::vector<Diagnostic> diags;

  // compile_commands cross-check: every TU the build compiles under src/
  // must be in the scan, so "clean" provably covers the whole program.
  if (!compdb.empty()) {
    std::vector<fs::path> tus;
    std::string error;
    if (!ParseCompDb(compdb, tus, error)) {
      std::cerr << "cfl_analyze: --compdb: " << error << "\n";
      return 2;
    }
    std::set<std::string> scanned;
    for (const AnalyzedFile& af : files) {
      scanned.insert(fs::weakly_canonical(af.src.path, ec).string());
    }
    fs::path canon_src = fs::weakly_canonical(src_dir, ec);
    for (const fs::path& tu : tus) {
      fs::path canon = fs::weakly_canonical(tu, ec);
      auto rel = canon.lexically_proximate(canon_src).generic_string();
      if (rel.compare(0, 2, "..") == 0) continue;  // tools/tests/bench TU
      if (scanned.count(canon.string()) == 0) {
        diags.push_back({canon.string(), 1, 1, kLayering,
                         "translation unit is in compile_commands.json but "
                         "was not scanned — analyzer coverage hole"});
      }
    }
  }

  // Malformed allow-directives.
  for (const AnalyzedFile& af : files) {
    for (const cfl::lint::Allow& a : af.src.allows) {
      if (!a.well_formed) {
        diags.push_back({af.src.path, a.line, 1, kBadAllow, a.problem});
      }
    }
  }

  // Whole-program index.
  ProgramIndex index;
  for (const AnalyzedFile& af : files) {
    for (const ClassInfo& cls : FindClasses(af.toks)) {
      if (cls.name.empty()) continue;
      bool& marked = index.classes[cls.name];
      marked = marked || cls.marked;
    }
    IndexFunctions(af, index);
    IndexPoolVars(af, index);
    IndexStatsFields(af, index);
  }

  // Concurrency model: mutex hierarchy, lockable-variable types, function
  // definitions with body ranges.
  ConcurrencyModel cmodel;
  CollectMutexMembers(files, cmodel, diags);
  CollectVarTypes(files, cmodel);
  CollectFunctionDefs(files, cmodel);

  // Rules.
  CheckLayering(files, diags);
  for (const AnalyzedFile& af : files) {
    CheckSpanEscape(af, index, diags);
    CheckNarrowing(af, diags);
    CheckWorkerNoexcept(af, index, diags);
    CheckStatsGate(af, index, diags);
  }
  CheckLockDiscipline(files, cmodel, diags);
  CheckAtomicIntent(files, diags);

  cfl::lint::PrintDiagnostics("cfl_analyze", diags, files.size(), json);
  return diags.empty() ? 0 : 1;
}
