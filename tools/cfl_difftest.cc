// cfl_difftest: cross-engine differential testing oracle.
//
// The engines in this repository implement the same semantics — count the
// subgraph-isomorphic embeddings of a query in a data graph — via wildly
// different machinery (CPI-based postponed Cartesian products, CR-based
// exploration, plain backtracking). That makes them near-perfect oracles
// for each other: generate seeded random graph/query pairs, run every
// selected engine, and any disagreement in counts is a bug in at least one
// of them. Tiny pairs are additionally checked against a brute-force
// enumerator, so the whole engine set cannot drift together.
//
// On a mismatch the tool *shrinks* the pair — greedily deleting query and
// data vertices/edges while the disagreement reproduces — and prints the
// minimal pair as a ready-to-paste repro before exiting non-zero.
//
// Examples:
//   cfl_difftest --pairs 200 --seed 1
//   cfl_difftest --pairs 50 --engines cfl,turboiso --query-vertices 14
//   CFL_VALIDATE=1 cfl_difftest --pairs 200   # also run debug validators
//
// Exit codes: 0 all pairs agree; 1 mismatch found; 2 usage error.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseline/quicksi.h"
#include "baseline/turboiso.h"
#include "baseline/ullmann.h"
#include "baseline/vf2.h"
#include "gen/query_gen.h"
#include "gen/rng.h"
#include "gen/synthetic.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "match/engine.h"
#include "obs/stats.h"
#include "parallel/parallel_match.h"

namespace cfl {
namespace {

struct Options {
  uint64_t pairs = 200;
  uint64_t seed = 1;
  uint32_t max_data_vertices = 160;
  uint32_t max_query_vertices = 10;
  uint64_t max_embeddings = 100'000;
  double time_limit_seconds = 10.0;
  std::vector<std::string> engines = {"cfl", "cfl-par4", "vf2", "quicksi",
                                      "turboiso"};
  bool brute_force = true;
  bool verbose = false;
};

std::unique_ptr<SubgraphEngine> MakeEngineByName(const std::string& name,
                                                 const Graph& data) {
  if (name == "cfl") return MakeCflMatch(data);
  if (name == "cfl-par2") return MakeParallelCflMatch(data, 2);
  if (name == "cfl-par4") return MakeParallelCflMatch(data, 4);
  if (name == "cfl-td") return MakeCflMatchTd(data);
  if (name == "cfl-naive") return MakeCflMatchNaive(data);
  if (name == "cf") return MakeCfMatch(data);
  if (name == "match") return MakeMatchNoDecomp(data);
  if (name == "bfs-order") return MakeCflMatchBfsOrder(data);
  if (name == "vf2") return MakeVf2(data);
  if (name == "quicksi") return MakeQuickSi(data);
  if (name == "turboiso") return MakeTurboIso(data);
  if (name == "ullmann") return MakeUllmann(data);
  return nullptr;
}

const std::vector<std::string> kAllEngines = {
    "cfl",   "cfl-par2", "cfl-par4", "cfl-td",   "cfl-naive",
    "cf",    "match",    "bfs-order", "vf2",     "quicksi",
    "turboiso"};

// Exponential but obviously correct; only invoked on tiny pairs.
uint64_t BruteForceCount(const Graph& q, const Graph& g, uint64_t limit) {
  const uint32_t n = q.NumVertices();
  std::vector<VertexId> mapping(n, kInvalidVertex);
  std::vector<bool> used(g.NumVertices(), false);
  uint64_t count = 0;
  std::function<void(uint32_t)> rec = [&](uint32_t u) {
    if (count >= limit) return;
    if (u == n) {
      ++count;
      return;
    }
    for (VertexId v : g.VerticesWithLabel(q.label(u))) {
      if (used[v]) continue;
      bool ok = true;
      for (VertexId w : q.Neighbors(u)) {
        if (w < u && !g.HasEdge(mapping[w], v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      mapping[u] = v;
      used[v] = true;
      rec(u + 1);
      used[v] = false;
      mapping[u] = kInvalidVertex;
    }
  };
  rec(0);
  return count;
}

struct EngineCount {
  std::string engine;
  uint64_t count = 0;
  bool timed_out = false;
  // Complete uncapped run: the engine exhausted the search space, so its
  // order-independent stats are comparable across CFL-family engines.
  bool complete = false;
  MatchStats stats;
};

struct Verdict {
  std::vector<EngineCount> counts;
  bool timed_out = false;   // some engine hit the deadline; not comparable
  bool mismatch = false;
  std::string stats_error;  // non-empty: a stats invariant/equivalence broke
};

bool IsCflFamily(const std::string& name) {
  return name == "cfl" || name.rfind("cfl-par", 0) == 0;
}

// The per-engine invariants plus cross-engine stats equivalence: serial and
// parallel CFL engines share Prepare and explore the same search space, so
// on complete uncapped runs their order-independent counters must agree.
void CheckStats(Verdict* v) {
  if (!obs::kStatsEnabled) return;
  const EngineCount* reference = nullptr;
  for (const EngineCount& ec : v->counts) {
    if (!ec.stats.recorded || !ec.complete || !IsCflFamily(ec.engine)) {
      continue;
    }
    if (reference == nullptr) {
      reference = &ec;
      continue;
    }
    const EnumStats& a = reference->stats.enumeration;
    const EnumStats& b = ec.stats.enumeration;
    auto differs = [&](const char* what, uint64_t x, uint64_t y) {
      v->stats_error = reference->engine + " vs " + ec.engine + ": " + what +
                       " differ (" + std::to_string(x) + " vs " +
                       std::to_string(y) + ")";
      v->mismatch = true;
    };
    if (a.core_visits != b.core_visits) {
      return differs("core_visits", a.core_visits, b.core_visits);
    }
    if (a.leaf_products != b.leaf_products) {
      return differs("leaf_products", a.leaf_products, b.leaf_products);
    }
    if (a.leaf_calls != b.leaf_calls) {
      return differs("leaf_calls", a.leaf_calls, b.leaf_calls);
    }
    if (reference->stats.candidates_tried != ec.stats.candidates_tried) {
      return differs("candidates_tried", reference->stats.candidates_tried,
                     ec.stats.candidates_tried);
    }
    if (reference->stats.root_candidates != ec.stats.root_candidates) {
      return differs("root_candidates", reference->stats.root_candidates,
                     ec.stats.root_candidates);
    }
    // Each root is claimed exactly once on a complete run, at any thread
    // count (the shared cursor hands them out; nobody abandons one).
    if (ec.stats.root_candidates != 0 &&
        ec.stats.TotalRootsClaimed() != ec.stats.root_candidates) {
      return differs("claimed roots vs root candidates",
                     ec.stats.TotalRootsClaimed(), ec.stats.root_candidates);
    }
  }
}

// Runs every engine on (q, data); counts are clamped at the cap so pairs
// where engines legitimately stop early still compare equal.
Verdict RunPair(const Options& opt, const Graph& data, const Graph& q,
                double time_limit) {
  Verdict v;
  MatchLimits limits;
  limits.max_embeddings = opt.max_embeddings;
  limits.time_limit_seconds = time_limit;
  for (const std::string& name : opt.engines) {
    std::unique_ptr<SubgraphEngine> engine = MakeEngineByName(name, data);
    MatchResult r = engine->Run(q, limits);
    // Stop-flag invariant (every engine, every run): reached_limit reports
    // exactly "the cap was hit", independent of timed_out — a cap+deadline
    // photo finish must classify the same way in every engine.
    if (r.reached_limit != (r.embeddings >= limits.max_embeddings) &&
        v.stats_error.empty()) {
      v.stats_error = name + ": reached_limit=" +
                      std::to_string(r.reached_limit) +
                      " disagrees with embeddings=" +
                      std::to_string(r.embeddings) + " vs cap=" +
                      std::to_string(limits.max_embeddings);
      v.mismatch = true;
    }
    // Per-engine stats invariants hold on every run, even partial ones.
    std::string violation = obs::CheckStatsInvariants(r.stats, r.embeddings,
                                                      r.total_seconds);
    if (!violation.empty() && v.stats_error.empty()) {
      v.stats_error = name + ": " + violation;
      v.mismatch = true;
    }
    EngineCount ec;
    ec.engine = name;
    ec.count = std::min(r.embeddings, opt.max_embeddings);
    ec.timed_out = r.timed_out;
    ec.complete = !r.timed_out && !r.reached_limit;
    ec.stats = r.stats;
    v.timed_out = v.timed_out || r.timed_out;
    v.counts.push_back(ec);
  }
  if (!v.timed_out && v.stats_error.empty()) CheckStats(&v);
  if (opt.brute_force && !v.timed_out && data.NumVertices() <= 64 &&
      q.NumVertices() <= 8 && !data.HasMultiplicities()) {
    EngineCount ec;
    ec.engine = "brute-force";
    ec.count = BruteForceCount(q, data, opt.max_embeddings);
    v.counts.push_back(ec);
  }
  if (!v.timed_out) {
    for (const EngineCount& ec : v.counts) {
      if (ec.count != v.counts.front().count) v.mismatch = true;
    }
  }
  return v;
}

// ---- Shrinking ------------------------------------------------------------

struct EdgeList {
  std::vector<Label> labels;
  std::vector<std::pair<VertexId, VertexId>> edges;

  Graph ToGraph() const { return MakeGraph(labels, edges); }
};

EdgeList ToEdgeList(const Graph& g) {
  EdgeList e;
  e.labels.resize(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    e.labels[v] = g.label(v);
    for (VertexId w : g.Neighbors(v)) {
      if (w > v) e.edges.emplace_back(v, w);
    }
  }
  return e;
}

bool IsConnected(const EdgeList& g) {
  const uint32_t n = static_cast<uint32_t>(g.labels.size());
  if (n == 0) return false;
  std::vector<std::vector<VertexId>> adj(n);
  for (const auto& [a, b] : g.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(n, false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  uint32_t reached = 1;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (VertexId w : adj[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++reached;
        stack.push_back(w);
      }
    }
  }
  return reached == n;
}

EdgeList RemoveVertex(const EdgeList& g, VertexId victim) {
  EdgeList out;
  out.labels.reserve(g.labels.size() - 1);
  std::vector<VertexId> remap(g.labels.size(), kInvalidVertex);
  for (VertexId v = 0; v < g.labels.size(); ++v) {
    if (v == victim) continue;
    remap[v] = static_cast<VertexId>(out.labels.size());
    out.labels.push_back(g.labels[v]);
  }
  for (const auto& [a, b] : g.edges) {
    if (a == victim || b == victim) continue;
    out.edges.emplace_back(remap[a], remap[b]);
  }
  return out;
}

// Greedy minimization: keeps applying the first vertex/edge deletion under
// which the engines still disagree, until none applies. Queries must stay
// connected (GenerateQuery's contract); data graphs may fall apart.
void Shrink(const Options& opt, EdgeList* data, EdgeList* query) {
  auto still_fails = [&](const EdgeList& d, const EdgeList& q) {
    if (q.labels.empty() || d.labels.empty()) return false;
    // A short limit keeps shrinking fast; a timeout counts as "gone".
    return RunPair(opt, d.ToGraph(), q.ToGraph(), /*time_limit=*/2.0)
        .mismatch;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    for (VertexId v = 0; v < query->labels.size() && query->labels.size() > 1;
         ++v) {
      EdgeList smaller = RemoveVertex(*query, v);
      if (IsConnected(smaller) && still_fails(*data, smaller)) {
        *query = std::move(smaller);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (size_t e = 0; e < query->edges.size(); ++e) {
      EdgeList smaller = *query;
      smaller.edges.erase(smaller.edges.begin() + e);
      if (IsConnected(smaller) && still_fails(*data, smaller)) {
        *query = std::move(smaller);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (VertexId v = 0; v < data->labels.size(); ++v) {
      EdgeList smaller = RemoveVertex(*data, v);
      if (still_fails(smaller, *query)) {
        *data = std::move(smaller);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (size_t e = 0; e < data->edges.size(); ++e) {
      EdgeList smaller = *data;
      smaller.edges.erase(smaller.edges.begin() + e);
      if (still_fails(smaller, *query)) {
        *data = std::move(smaller);
        progress = true;
        break;
      }
    }
  }
}

void PrintEdgeList(const char* name, const EdgeList& g) {
  std::cout << "  " << name << ": " << g.labels.size() << " vertices, labels {";
  for (size_t v = 0; v < g.labels.size(); ++v) {
    std::cout << (v ? ", " : "") << g.labels[v];
  }
  std::cout << "}, edges {";
  for (size_t e = 0; e < g.edges.size(); ++e) {
    std::cout << (e ? ", " : "") << "{" << g.edges[e].first << ","
              << g.edges[e].second << "}";
  }
  std::cout << "}\n";
}

void PrintCounts(const Verdict& v) {
  for (const EngineCount& ec : v.counts) {
    std::cout << "    " << ec.engine << ": " << ec.count
              << (ec.timed_out ? " (timed out)" : "") << "\n";
  }
}

// ---- Driver ---------------------------------------------------------------

int Usage(const char* argv0) {
  std::cerr
      << "Usage: " << argv0 << " [options]\n"
      << "  --pairs N           seeded graph/query pairs to run (200)\n"
      << "  --seed S            base seed; pair i uses seed S+i (1)\n"
      << "  --data-vertices N   max data-graph vertices (160)\n"
      << "  --query-vertices N  max query vertices (10)\n"
      << "  --max-embeddings M  per-pair embedding cap (100000)\n"
      << "  --time-limit SEC    per-engine time limit (10)\n"
      << "  --engines LIST      comma list of: cfl cfl-par2 cfl-par4 cfl-td\n"
      << "                      cfl-naive cf match bfs-order vf2 quicksi\n"
      << "                      turboiso ullmann\n"
      << "                      (default: cfl,cfl-par4,vf2,quicksi,turboiso)\n"
      << "  --all-engines       every CFL variant plus all baselines\n"
      << "  --no-brute-force    skip the brute-force oracle on tiny pairs\n"
      << "  --verbose           per-pair progress\n";
  return 2;
}

int Run(const Options& opt) {
  uint64_t ran = 0;
  uint64_t skipped_gen = 0;
  uint64_t skipped_timeout = 0;

  for (uint64_t i = 0; i < opt.pairs; ++i) {
    const uint64_t pair_seed = opt.seed + i;
    Rng rng(pair_seed * 0x9e3779b97f4a7c15ULL + 1);

    SyntheticOptions data_opt;
    data_opt.num_vertices = static_cast<uint32_t>(
        rng.Between(16, std::max<uint32_t>(17, opt.max_data_vertices)));
    data_opt.average_degree = 2.0 + rng.NextDouble() * 4.0;
    data_opt.num_labels = static_cast<uint32_t>(rng.Between(2, 8));
    data_opt.label_exponent = 0.5 + rng.NextDouble() * 1.5;
    data_opt.seed = pair_seed;
    Graph data = MakeSynthetic(data_opt);

    QueryGenOptions query_opt;
    query_opt.num_vertices = static_cast<uint32_t>(rng.Between(
        4, std::max<uint32_t>(5, std::min<uint32_t>(opt.max_query_vertices,
                                                    data.NumVertices() / 3))));
    query_opt.sparse = rng.Chance(0.5);
    query_opt.seed = pair_seed;
    Graph query;
    try {
      query = GenerateQuery(data, query_opt);
    } catch (const std::exception& e) {
      ++skipped_gen;
      if (opt.verbose) {
        std::cout << "pair " << i << " (seed " << pair_seed
                  << "): query generation failed: " << e.what() << "\n";
      }
      continue;
    }

    Verdict verdict = RunPair(opt, data, query, opt.time_limit_seconds);
    ++ran;
    if (verdict.timed_out) {
      ++skipped_timeout;
      if (opt.verbose) {
        std::cout << "pair " << i << " (seed " << pair_seed
                  << "): timed out, counts not comparable\n";
      }
      continue;
    }
    if (opt.verbose) {
      std::cout << "pair " << i << " (seed " << pair_seed << "): |V(G)|="
                << data.NumVertices() << " |E(G)|=" << data.NumEdges()
                << " |V(q)|=" << query.NumVertices() << " count="
                << verdict.counts.front().count << "\n";
    }
    if (!verdict.mismatch) continue;

    std::cout << "MISMATCH at pair " << i << " (seed " << pair_seed
              << "):\n";
    if (!verdict.stats_error.empty()) {
      std::cout << "  stats check failed: " << verdict.stats_error << "\n";
    }
    PrintCounts(verdict);

    EdgeList data_el = ToEdgeList(data);
    EdgeList query_el = ToEdgeList(query);
    std::cout << "shrinking...\n";
    Shrink(opt, &data_el, &query_el);
    Graph min_data = data_el.ToGraph();
    Graph min_query = query_el.ToGraph();
    Verdict min_verdict =
        RunPair(opt, min_data, min_query, opt.time_limit_seconds);

    std::cout << "minimal failing pair (paste into MakeGraph):\n";
    PrintEdgeList("query", query_el);
    PrintEdgeList("data", data_el);
    std::cout << "  counts on the minimal pair:\n";
    if (!min_verdict.stats_error.empty()) {
      std::cout << "    stats check failed: " << min_verdict.stats_error
                << "\n";
    }
    PrintCounts(min_verdict);
    return 1;
  }

  std::cout << "cfl_difftest: " << ran << " pairs compared across "
            << opt.engines.size() << " engines"
            << (opt.brute_force ? " (+brute-force on tiny pairs)" : "")
            << (obs::kStatsEnabled ? " (stats invariants checked)" : "")
            << ", 0 mismatches";
  if (skipped_gen > 0) std::cout << "; " << skipped_gen << " pairs ungeneratable";
  if (skipped_timeout > 0) {
    std::cout << "; " << skipped_timeout << " pairs timed out";
  }
  std::cout << "\n";
  return 0;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace cfl

int main(int argc, char** argv) {
  cfl::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(cfl::Usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--pairs") {
      opt.pairs = std::stoull(next());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else if (arg == "--data-vertices") {
      opt.max_data_vertices = static_cast<uint32_t>(std::stoul(next()));
    } else if (arg == "--query-vertices") {
      opt.max_query_vertices = static_cast<uint32_t>(std::stoul(next()));
    } else if (arg == "--max-embeddings") {
      opt.max_embeddings = std::stoull(next());
    } else if (arg == "--time-limit") {
      opt.time_limit_seconds = std::stod(next());
    } else if (arg == "--engines") {
      opt.engines = cfl::SplitCsv(next());
    } else if (arg == "--all-engines") {
      opt.engines = cfl::kAllEngines;
    } else if (arg == "--no-brute-force") {
      opt.brute_force = false;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      cfl::Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return cfl::Usage(argv[0]);
    }
  }
  if (opt.engines.size() < 2 && opt.brute_force == false) {
    std::cerr << "need at least two engines (or brute force) to compare\n";
    return cfl::Usage(argv[0]);
  }
  for (const std::string& name : opt.engines) {
    cfl::Graph probe = cfl::MakeGraph({0}, {});
    if (cfl::MakeEngineByName(name, probe) == nullptr) {
      std::cerr << "unknown engine: " << name << "\n";
      return cfl::Usage(argv[0]);
    }
  }
  return cfl::Run(opt);
}
