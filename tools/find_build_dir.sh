#!/usr/bin/env bash
# Resolves the build directory whose compile_commands.json the static-analysis
# tools should share, and prints it to stdout. Both run_clang_tidy.sh and the
# CI lint job source this so clang-tidy and cfl_lint always agree on one path.
#
# Usage:
#   build_dir="$(tools/find_build_dir.sh [CANDIDATE])"
#
# Resolution order:
#   1. CANDIDATE argument, if given (must contain compile_commands.json);
#   2. $CFL_BUILD_DIR, if set;
#   3. first of build-release/ build/ build-dev/ (preset binary dirs) that
#      contains a compile_commands.json.
# Exits 2 with a hint on stderr when nothing resolves.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

try() {
  if [[ -n "$1" && -f "$1/compile_commands.json" ]]; then
    printf '%s\n' "$1"
    exit 0
  fi
}

if [[ -n "${1:-}" ]]; then
  try "$1"
  echo "find_build_dir.sh: '$1' has no compile_commands.json" >&2
  exit 2
fi
try "${CFL_BUILD_DIR:-}"
for candidate in "${repo_root}/build-release" "${repo_root}/build" \
                 "${repo_root}/build-dev"; do
  try "${candidate}"
done

echo "find_build_dir.sh: no compile_commands.json found; configure first," \
     "e.g.: cmake --preset release" >&2
exit 2
