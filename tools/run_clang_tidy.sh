#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# translation unit under src/ and diffs the findings against the committed
# baseline (tools/clang_tidy_baseline.txt). Only NEW findings fail the run,
# so a toolchain upgrade that introduces noisy checks can be absorbed by
# re-baselining instead of blocking every PR; resolved findings are
# reported so the baseline can be shrunk.
#
# Usage:
#   tools/run_clang_tidy.sh [BUILD_DIR] [--update-baseline] [-- extra args]
#
# BUILD_DIR is resolved by tools/find_build_dir.sh (argument, then
# $CFL_BUILD_DIR, then the preset binary dirs) so clang-tidy and cfl_lint
# share a single compile-commands path in CI.
#
# Findings are normalized before comparison: the repo-root prefix and the
# line:col are stripped (line numbers drift on every unrelated edit), so a
# baseline entry is `file: severity: message [check]`. --update-baseline
# rewrites the baseline from the current findings.
#
# Exit codes: 0 no new findings, 1 new findings, 2 environment error.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
baseline="${repo_root}/tools/clang_tidy_baseline.txt"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH (set CLANG_TIDY to" \
       "override); install clang-tidy to run the static-analysis gate" >&2
  exit 2
fi

build_dir=""
update_baseline=0
extra_args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --update-baseline)
      update_baseline=1
      shift
      ;;
    --)
      shift
      extra_args=("$@")
      break
      ;;
    *)
      build_dir="$1"
      shift
      ;;
  esac
done
build_dir="$("${repo_root}/tools/find_build_dir.sh" "${build_dir}")"

mapfile -t sources < <(find "${repo_root}/src" -name '*.cc' | sort)
echo "clang-tidy (${tidy_bin}) over ${#sources[@]} files" \
     "using ${build_dir}/compile_commands.json"

# Collect findings; clang-tidy's exit status is ignored here — the gate is
# the baseline diff, not the raw status.
raw="$(mktemp)"
trap 'rm -f "${raw}" "${raw}.cur" "${raw}.base"' EXIT
for source in "${sources[@]}"; do
  "${tidy_bin}" -p "${build_dir}" --quiet "${extra_args[@]}" \
    "${source}" >> "${raw}" 2> /dev/null || true
done

# Normalize: repo-root prefix off, line:col off, one finding per line.
grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' "${raw}" \
  | sed "s|^${repo_root}/||" \
  | sed -E 's|^([^:]+):[0-9]+:[0-9]+:|\1:|' \
  | sort -u > "${raw}.cur"

if [[ ${update_baseline} -eq 1 ]]; then
  {
    echo "# clang-tidy baseline — normalized findings (file: severity:"
    echo "# message [check]) that run_clang_tidy.sh tolerates. Regenerate"
    echo "# with: tools/run_clang_tidy.sh --update-baseline"
    cat "${raw}.cur"
  } > "${baseline}"
  echo "run_clang_tidy.sh: baseline updated ($(wc -l < "${raw}.cur")" \
       "findings) -> ${baseline}"
  exit 0
fi

if [[ ! -f "${baseline}" ]]; then
  echo "run_clang_tidy.sh: no baseline at ${baseline}; run with" \
       "--update-baseline to create one" >&2
  exit 2
fi
# Load the baseline, pruning entries whose file no longer exists — a
# deleted TU must not keep tolerating a finding that could reappear
# elsewhere, and stale entries otherwise accumulate forever.
pruned=0
: > "${raw}.base"
while IFS= read -r entry; do
  entry_file="${entry%%:*}"
  if [[ -f "${repo_root}/${entry_file}" ]]; then
    printf '%s\n' "${entry}" >> "${raw}.base"
  else
    pruned=$((pruned + 1))
  fi
done < <(grep -v '^#' "${baseline}" | sort -u)
if [[ ${pruned} -gt 0 ]]; then
  echo "run_clang_tidy.sh: pruned ${pruned} baseline entries for deleted" \
       "files (rewrite the baseline with --update-baseline)"
fi

new_findings="$(comm -13 "${raw}.base" "${raw}.cur")"
resolved="$(comm -23 "${raw}.base" "${raw}.cur")"

if [[ -n "${resolved}" ]]; then
  echo "run_clang_tidy.sh: findings in the baseline no longer fire" \
       "(shrink it with --update-baseline):"
  printf '  %s\n' "${resolved}"
fi
if [[ -n "${new_findings}" ]]; then
  echo "run_clang_tidy.sh: NEW findings not in the baseline:" >&2
  printf '  %s\n' "${new_findings}" >&2
  exit 1
fi
echo "run_clang_tidy.sh: clean ($(wc -l < "${raw}.cur") findings, all" \
     "baselined)"
exit 0
