#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# translation unit under src/, using the compilation database of an
# existing build directory.
#
# Usage:
#   tools/run_clang_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#
# BUILD_DIR is resolved by tools/find_build_dir.sh (argument, then
# $CFL_BUILD_DIR, then the preset binary dirs) so clang-tidy and cfl_lint
# share a single compile-commands path in CI.
# Exits non-zero if clang-tidy reports any warning promoted to error by the
# WarningsAsErrors list in .clang-tidy, so CI can gate on it.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH (set CLANG_TIDY to" \
       "override); install clang-tidy to run the static-analysis gate" >&2
  exit 2
fi

build_dir=""
extra_args=()
if [[ $# -gt 0 && "$1" != "--" ]]; then
  build_dir="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
  extra_args=("$@")
fi
build_dir="$("${repo_root}/tools/find_build_dir.sh" "${build_dir}")"

mapfile -t sources < <(find "${repo_root}/src" -name '*.cc' | sort)
echo "clang-tidy (${tidy_bin}) over ${#sources[@]} files" \
     "using ${build_dir}/compile_commands.json"

status=0
for source in "${sources[@]}"; do
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "${extra_args[@]}" \
       "${source}"; then
    status=1
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "run_clang_tidy.sh: clang-tidy reported errors" >&2
fi
exit ${status}
