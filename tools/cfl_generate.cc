// Graph and query generation to files (the `t/v/e` text format).
//
//   cfl_generate dataset  <hprd|yeast|human|wordnet|dblp> <scale> <out>
//   cfl_generate synthetic <vertices> <avg-degree> <labels> <seed> <out>
//   cfl_generate query    <data-file> <size> <S|N> <seed> <out>
//
// Examples:
//   cfl_generate dataset yeast 1.0 yeast.graph
//   cfl_generate synthetic 100000 8 50 1 synth.graph
//   cfl_generate query yeast.graph 50 N 42 q50n.graph

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/datasets.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s dataset   <hprd|yeast|human|wordnet|dblp> <scale> <out>\n"
      "  %s synthetic <vertices> <avg-degree> <labels> <seed> <out>\n"
      "  %s query     <data-file> <size> <S|N> <seed> <out>\n",
      argv0, argv0, argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cfl;
  if (argc < 2) Usage(argv[0]);
  const std::string mode = argv[1];
  try {
    if (mode == "dataset" && argc == 5) {
      Graph g = MakeDatasetLike(argv[2], std::atof(argv[3]));
      SaveGraph(g, argv[4]);
      std::printf("wrote %s: %s\n", argv[4], Describe(ComputeStats(g)).c_str());
    } else if (mode == "synthetic" && argc == 7) {
      SyntheticOptions options;
      options.num_vertices = static_cast<uint32_t>(std::atol(argv[2]));
      options.average_degree = std::atof(argv[3]);
      options.num_labels = static_cast<uint32_t>(std::atol(argv[4]));
      options.seed = std::strtoull(argv[5], nullptr, 10);
      Graph g = MakeSynthetic(options);
      SaveGraph(g, argv[6]);
      std::printf("wrote %s: %s\n", argv[6], Describe(ComputeStats(g)).c_str());
    } else if (mode == "query" && argc == 7) {
      Graph data = LoadGraph(argv[2]);
      QueryGenOptions options;
      options.num_vertices = static_cast<uint32_t>(std::atol(argv[3]));
      options.sparse = (argv[4][0] == 'S' || argv[4][0] == 's');
      options.seed = std::strtoull(argv[5], nullptr, 10);
      Graph q = GenerateQuery(data, options);
      SaveGraph(q, argv[6]);
      std::printf("wrote %s: %s\n", argv[6], Describe(ComputeStats(q)).c_str());
    } else {
      Usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
