// Shared source-model infrastructure for the project's static-analysis
// tools (tools/cfl_lint.cc, tools/cfl_analyze.cc).
//
// Both tools are deliberately self-contained (no libclang): they lex C++
// just far enough to be sound for the project's own conventions. This
// header holds everything that must behave identically in both —
// the comment/string/preprocessor stripper, the tokenizer, the
// `// cfl-lint: allow(<rule>) <reason>` escape-hatch parser, and the
// diagnostic model with its two output modes (gcc-style text and --json).
//
// The rule-id registry is also shared: each tool enforces its own subset,
// but allow-comment *validation* (rule `bad-allow`) accepts the union, so
// an allow for an analyzer rule does not trip the linter and vice versa.
//
// Header-only and dependency-free by design: the tools must build and run
// anywhere the tree checks out, before anything else compiles.

#ifndef CFL_TOOLS_LINT_COMMON_H_
#define CFL_TOOLS_LINT_COMMON_H_

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cfl {
namespace lint {

namespace fs = std::filesystem;

// ---- rule ids -----------------------------------------------------------

// cfl_lint (single-file, token-level project rules).
inline const char kRawAssert[] = "raw-assert";
inline const char kRawMutex[] = "raw-mutex";
inline const char kMutableMember[] = "mutable-member";
inline const char kImmutableClass[] = "immutable-class";
inline const char kConstCast[] = "const-cast";
inline const char kBannedInclude[] = "banned-include";
inline const char kRawClock[] = "raw-clock";
inline const char kRawSimd[] = "raw-simd";
inline const char kBadAllow[] = "bad-allow";

// cfl_analyze (whole-program rules; see tools/cfl_analyze.cc).
inline const char kLayering[] = "layering";
inline const char kSpanEscape[] = "span-escape";
inline const char kNarrowing[] = "narrowing";
inline const char kWorkerNoexcept[] = "worker-noexcept";
inline const char kStatsGate[] = "stats-gate";
inline const char kLockOrder[] = "lock-order";
inline const char kBlockingUnderLock[] = "blocking-under-lock";
inline const char kAtomicIntent[] = "atomic-intent";

inline const std::set<std::string>& LintRules() {
  static const std::set<std::string> rules = {
      kRawAssert, kRawMutex,      kMutableMember, kImmutableClass,
      kConstCast, kBannedInclude, kRawClock,      kRawSimd,
      kBadAllow};
  return rules;
}

inline const std::set<std::string>& AnalyzeRules() {
  static const std::set<std::string> rules = {
      kLayering,   kSpanEscape,        kNarrowing,    kWorkerNoexcept,
      kStatsGate,  kLockOrder,         kBlockingUnderLock,
      kAtomicIntent, kBadAllow};
  return rules;
}

// The union: any of these is a legal target for an allow-comment; each tool
// only *acts* on allows for its own rules.
inline const std::set<std::string>& AllKnownRules() {
  static const std::set<std::string> rules = [] {
    std::set<std::string> all = LintRules();
    all.insert(AnalyzeRules().begin(), AnalyzeRules().end());
    return all;
  }();
  return rules;
}

inline const char kMarker[] = "CFL_IMMUTABLE_AFTER_BUILD";

// ---- diagnostics --------------------------------------------------------

struct Diagnostic {
  std::string file;
  int line = 0;
  int col = 1;  // 1-based; 1 when the rule has no finer position
  std::string rule;
  std::string message;
};

inline bool DiagnosticOrder(const Diagnostic& a, const Diagnostic& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.col != b.col) return a.col < b.col;
  return a.rule < b.rule;
}

inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Renders the sorted diagnostics: gcc style (`file:line:col: error:
// [rule] message` + a summary line) by default, or a JSON document
// (`{"tool": ..., "diagnostics": [...]}`) that CI and editors can consume.
inline void PrintDiagnostics(const std::string& tool,
                             std::vector<Diagnostic>& diags,
                             size_t files_scanned, bool json) {
  std::sort(diags.begin(), diags.end(), DiagnosticOrder);
  if (json) {
    std::cout << "{\"tool\":\"" << JsonEscape(tool) << "\",\"files_scanned\":"
              << files_scanned << ",\"errors\":" << diags.size()
              << ",\"diagnostics\":[";
    for (size_t i = 0; i < diags.size(); ++i) {
      const Diagnostic& d = diags[i];
      if (i != 0) std::cout << ",";
      std::cout << "\n  {\"file\":\"" << JsonEscape(d.file)
                << "\",\"line\":" << d.line << ",\"col\":" << d.col
                << ",\"rule\":\"" << JsonEscape(d.rule) << "\",\"message\":\""
                << JsonEscape(d.message) << "\"}";
    }
    if (!diags.empty()) std::cout << "\n";
    std::cout << "]}\n";
    return;
  }
  std::set<std::string> files_with_errors;
  for (const Diagnostic& d : diags) {
    std::cout << d.file << ":" << d.line << ":" << d.col << ": error: ["
              << d.rule << "] " << d.message << "\n";
    files_with_errors.insert(d.file);
  }
  if (diags.empty()) {
    std::cout << tool << ": clean (" << files_scanned << " files)\n";
  } else {
    std::cout << tool << ": " << diags.size() << " error(s) in "
              << files_with_errors.size() << " file(s) (" << files_scanned
              << " files scanned)\n";
  }
}

inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// ---- source model -------------------------------------------------------

// One allow-comment, parsed from the raw text.
struct Allow {
  int line = 0;
  std::string rule;
  bool well_formed = false;
  std::string problem;  // set when !well_formed
};

struct SourceFile {
  std::string path;            // as reported in diagnostics
  std::string generic_path;    // forward slashes, for rule scoping
  std::vector<std::string> raw_lines;      // 1-based via index-1
  std::vector<std::string> code_lines;     // comments/strings blanked
  std::vector<bool> preproc;               // per line: part of a # directive
  std::vector<Allow> allows;
};

inline bool PathContains(const SourceFile& f, std::string_view fragment) {
  return f.generic_path.find(fragment) != std::string::npos;
}

inline bool PathEndsWith(const SourceFile& f, std::string_view suffix) {
  const std::string& p = f.generic_path;
  return p.size() >= suffix.size() &&
         p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Strips comments, string/char literals (incl. raw strings), and
// preprocessor directives out of the text, preserving the line structure so
// every token keeps its original line number. Comment/string bodies become
// spaces; preprocessor lines are recorded in `preproc` and blanked from the
// code view (the include rules read the raw lines instead).
inline void StripSource(SourceFile& f, const std::string& text) {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  std::string code;
  code.reserve(text.size());
  State state = State::kCode;
  std::string raw_delim;         // for kRawString: ")delim"
  bool line_has_code = false;    // any non-ws emitted on this line
  bool line_is_preproc = false;  // first non-ws char was '#'
  bool continuation = false;     // previous line ended with backslash
  std::vector<bool> preproc_lines;

  auto end_line = [&]() {
    preproc_lines.push_back(line_is_preproc);
    // The '\n' is already in `code`; a backslash right before it continues
    // the directive onto the next line.
    size_t n = code.size();
    bool backslash = n >= 2 && code[n - 1] == '\n' && code[n - 2] == '\\';
    continuation = line_is_preproc && backslash;
    line_is_preproc = continuation;
    line_has_code = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      code.push_back('\n');
      end_line();
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (!line_has_code && !line_is_preproc) {
          if (c == '#') line_is_preproc = true;
          if (!std::isspace(static_cast<unsigned char>(c)))
            line_has_code = true;
        }
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code.append("  ");
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code.append("  ");
          ++i;
        } else if (c == '"') {
          // Raw string? The quote must directly follow an R whose own left
          // neighbor is not an identifier character (allowing u8R/uR/LR
          // prefixes, whose trailing char is still 'R').
          size_t j = code.size();
          bool raw = j > 0 && code[j - 1] == 'R' &&
                     (j < 2 ||
                      !std::isalnum(static_cast<unsigned char>(code[j - 2])) ||
                      code[j - 2] == '8' || code[j - 2] == 'u' ||
                      code[j - 2] == 'U' || code[j - 2] == 'L');
          if (raw && j >= 2 && IsIdentChar(code[j - 2]) &&
              !(code[j - 2] == '8' || code[j - 2] == 'u' ||
                code[j - 2] == 'U' || code[j - 2] == 'L')) {
            raw = false;  // identifier merely ending in R
          }
          if (raw) {
            state = State::kRawString;
            raw_delim = ")";
            code.push_back('"');  // for the opening quote itself
            size_t k = i + 1;
            while (k < text.size() && text[k] != '(' &&
                   raw_delim.size() < 18) {
              raw_delim.push_back(text[k]);
              code.push_back(' ');
              ++k;
            }
            raw_delim.push_back('"');
            i = k;  // at '(' (or bail; malformed raw strings end at EOF)
            code.push_back(' ');
          } else {
            state = State::kString;
            code.push_back('"');
          }
        } else if (c == '\'') {
          state = State::kChar;
          code.push_back('\'');
        } else {
          code.push_back(c);
        }
        break;
      }
      case State::kLineComment:
        code.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code.append("  ");
          ++i;
        } else {
          code.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          code.append("  ");
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code.push_back('"');
        } else {
          code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          code.append("  ");
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code.push_back('\'');
        } else {
          code.push_back(' ');
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 1; k < raw_delim.size(); ++k) code.push_back(' ');
          code.push_back('"');
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          code.push_back(' ');
        }
        break;
    }
  }
  end_line();

  // Split both views into lines.
  auto split = [](const std::string& s) {
    std::vector<std::string> lines;
    std::string cur;
    for (char c : s) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    lines.push_back(cur);
    return lines;
  };
  f.raw_lines = split(text);
  f.code_lines = split(code);
  preproc_lines.resize(f.code_lines.size(), false);
  f.preproc = preproc_lines;
  // Blank preprocessor lines out of the code view; tokens must not come
  // from directives (macro *definitions* of e.g. the marker are not uses).
  for (size_t i = 0; i < f.code_lines.size(); ++i) {
    if (f.preproc[i]) f.code_lines[i].assign(f.code_lines[i].size(), ' ');
  }
}

// ---- allow-comments -----------------------------------------------------

inline std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// A rule id is lowercase-kebab; anything else after `allow(` is prose (for
// example documentation quoting the directive syntax), not a directive.
inline bool IsRuleShaped(const std::string& s) {
  if (s.empty() || !std::islower(static_cast<unsigned char>(s[0])))
    return false;
  for (char c : s) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '-'))
      return false;
  }
  return true;
}

// Parses every allow-directive in the file. Two directive tags exist — the
// lint tag for single-file lint rules and the analyze tag for the
// whole-program analyzer — but both feed one parser: rule ids are validated
// against the *union* of both tools' rules, so each tool tolerates (and
// neither double-reports) the other's suppressions, and every directive
// needs a non-empty reason regardless of tag.
inline void ParseAllows(SourceFile& f) {
  // Assembled so the tools' own sources do not contain the literal tags.
  const std::string tags[] = {std::string("cfl-lint") + ":",
                              std::string("cfl-analyze") + ":"};
  for (size_t i = 0; i < f.raw_lines.size(); ++i) {
    const std::string& line = f.raw_lines[i];
    size_t at = std::string::npos;
    size_t tag_len = 0;
    for (const std::string& tag : tags) {
      size_t pos = line.find(tag);
      if (pos != std::string::npos && (at == std::string::npos || pos < at)) {
        at = pos;
        tag_len = tag.size();
      }
    }
    if (at == std::string::npos) continue;
    Allow allow;
    allow.line = static_cast<int>(i + 1);
    std::string rest = Trim(line.substr(at + tag_len));
    const std::string kw = "allow(";
    if (rest.compare(0, kw.size(), kw) != 0) {
      allow.problem =
          "expected allow(rule) plus a reason after the directive tag";
      f.allows.push_back(allow);
      continue;
    }
    size_t close = rest.find(')', kw.size());
    if (close == std::string::npos) {
      allow.problem = "unterminated allow(rule)";
      f.allows.push_back(allow);
      continue;
    }
    allow.rule = Trim(rest.substr(kw.size(), close - kw.size()));
    if (!IsRuleShaped(allow.rule)) continue;  // prose, not a directive
    std::string reason = Trim(rest.substr(close + 1));
    if (AllKnownRules().count(allow.rule) == 0) {
      allow.problem = "unknown rule id '" + allow.rule + "'";
    } else if (reason.empty()) {
      allow.problem = "missing justification after allow(" + allow.rule + ")";
    } else {
      allow.well_formed = true;
    }
    f.allows.push_back(allow);
  }
}

// True if a well-formed allow for `rule` covers `line` (same line or the
// line directly above).
inline bool Allowed(const SourceFile& f, const char* rule, int line) {
  for (const Allow& a : f.allows) {
    if (!a.well_formed || a.rule != rule) continue;
    if (a.line == line || a.line + 1 == line) return true;
  }
  return false;
}

// ---- small matching helpers (token-ish, on stripped lines) --------------

// Finds whole-word occurrences of `word` in `line`; returns columns.
inline std::vector<size_t> FindWord(const std::string& line,
                                    std::string_view word) {
  std::vector<size_t> hits;
  size_t at = 0;
  while ((at = line.find(word, at)) != std::string::npos) {
    bool left_ok = at == 0 || !IsIdentChar(line[at - 1]);
    size_t end = at + word.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) hits.push_back(at);
    at = end;
  }
  return hits;
}

// Matches `std :: name` with arbitrary interior whitespace, for any name in
// `names`. Returns the matched name or empty.
inline std::string FindStdMember(const std::string& line,
                                 const std::vector<std::string>& names) {
  for (size_t col : FindWord(line, "std")) {
    size_t i = col + 3;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i + 1 >= line.size() || line[i] != ':' || line[i + 1] != ':')
      continue;
    i += 2;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    for (const std::string& name : names) {
      if (line.compare(i, name.size(), name) == 0) {
        size_t end = i + name.size();
        if (end >= line.size() || !IsIdentChar(line[end])) return name;
      }
    }
  }
  return {};
}

// ---- tokenizer ----------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  int col = 1;  // 1-based column of the token's first character
};

inline std::vector<Token> Tokenize(const SourceFile& f) {
  std::vector<Token> tokens;
  for (size_t li = 0; li < f.code_lines.size(); ++li) {
    const std::string& line = f.code_lines[li];
    size_t i = 0;
    while (i < line.size()) {
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.line = static_cast<int>(li + 1);
      t.col = static_cast<int>(i + 1);
      if (IsIdentChar(c)) {
        size_t j = i;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        t.text = line.substr(i, j - i);
        i = j;
      } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        t.text = "::";
        i += 2;
      } else {
        t.text.assign(1, c);
        ++i;
      }
      tokens.push_back(std::move(t));
    }
  }
  return tokens;
}

inline size_t SkipGroup(const std::vector<Token>& toks, size_t open,
                        const char* open_sym, const char* close_sym) {
  // `open` indexes the opening symbol; returns index one past its match.
  int depth = 0;
  size_t i = open;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == open_sym) ++depth;
    if (toks[i].text == close_sym && --depth == 0) return i + 1;
  }
  return i;
}

// ---- class discovery ----------------------------------------------------

struct ClassInfo {
  std::string name;
  bool is_struct = false;
  bool marked = false;    // carries CFL_IMMUTABLE_AFTER_BUILD
  size_t body_begin = 0;  // token index just past '{'
  size_t body_end = 0;    // token index of matching '}'
  int line = 0;
};

// Finds every class/struct body in the token stream, recording whether it
// carries the CFL_IMMUTABLE_AFTER_BUILD marker. Nested classes yield their
// own entries (inner bodies are sub-ranges of outer ones).
inline std::vector<ClassInfo> FindClasses(const std::vector<Token>& toks) {
  struct Scope {
    bool is_class = false;
    bool is_struct = false;
    std::string name;
    size_t body_begin = 0;
    bool marked = false;
    int line = 0;
  };
  std::vector<ClassInfo> found;
  std::vector<Scope> stack;

  bool pending = false;      // saw class/struct, waiting for '{' or ';'
  bool pending_struct = false;
  bool name_frozen = false;  // stop updating the name after ':' (bases)
  std::string pending_name;
  int pending_line = 0;

  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if ((t == "class" || t == "struct") &&
        !(i > 0 && toks[i - 1].text == "enum")) {
      pending = true;
      pending_struct = (t == "struct");
      name_frozen = false;
      pending_name.clear();
      pending_line = toks[i].line;
      continue;
    }
    if (pending) {
      if (t == "{") {
        Scope s;
        s.is_class = true;
        s.is_struct = pending_struct;
        s.name = pending_name;
        s.body_begin = i + 1;
        s.line = pending_line;
        stack.push_back(s);
        pending = false;
        continue;
      }
      if (t == ";" || t == ")" || t == "}") {
        pending = false;  // forward declaration / stray close
      } else if (!name_frozen && (t == ">" || t == "<" || t == "," ||
                                  t == "&" || t == "*")) {
        pending = false;  // `template <class T>` — a parameter, not a class
      } else if (t == "(") {
        // Attribute macro between `class` and the name — skip its args.
        i = SkipGroup(toks, i, "(", ")") - 1;
      } else if (t == ":") {
        name_frozen = true;
      } else if (!name_frozen && t != "final" && t != "::" &&
                 IsIdentChar(t[0])) {
        pending_name = t;
      }
      continue;
    }
    if (t == "{") {
      stack.push_back(Scope{});  // non-class scope
    } else if (t == "}") {
      if (!stack.empty()) {
        Scope s = stack.back();
        stack.pop_back();
        if (s.is_class) {
          ClassInfo ci;
          ci.name = s.name;
          ci.is_struct = s.is_struct;
          ci.marked = s.marked;
          ci.body_begin = s.body_begin;
          ci.body_end = i;
          ci.line = s.line;
          found.push_back(ci);
        }
      }
    } else if (t == kMarker) {
      // Attach to the innermost class scope.
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->is_class) {
          it->marked = true;
          break;
        }
      }
    }
  }
  return found;
}

// ---- file loading -------------------------------------------------------

// Reads, strips, and parses allow-comments; false + message on IO error.
inline bool LoadSourceFile(const std::string& display_path,
                           const fs::path& file, SourceFile& out) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out.path = display_path;
  out.generic_path = fs::path(display_path).generic_string();
  StripSource(out, buf.str());
  ParseAllows(out);
  return true;
}

inline bool HasLintableExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

}  // namespace lint
}  // namespace cfl

#endif  // CFL_TOOLS_LINT_COMMON_H_
