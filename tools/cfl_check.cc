// cfl_check: the one-shot diagnostics driver. Runs every static gate the
// tree has — cfl_lint (single-file rules), cfl_analyze (whole-program
// rules, including the concurrency passes), and the clang-tidy / clang
// static-analyzer baseline diffs — in a single invocation, merges their
// findings into one report, and can emit that report as the shared JSON
// schema the individual tools use and/or as SARIF 2.1.0 for CI annotation
// and artifact upload.
//
// Usage:
//   cfl_check --root DIR [--build-dir DIR] [--bin-dir DIR]
//             [--json FILE] [--sarif FILE] [--skip lint,analyze,tidy,sa]
//
// The sibling cfl_lint / cfl_analyze binaries are located next to this
// executable (override with --bin-dir); the clang wrappers are
// DIR/tools/run_clang_{tidy,sa}.sh. A wrapper that exits 2 (toolchain not
// installed, no baseline) is reported as skipped, not failed — the
// project's own gates never depend on an external toolchain being present.
//
// Exit codes: 0 every gate clean, 1 findings, 2 usage/environment error.

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint_common.h"

namespace {

namespace fs = std::filesystem;
using cfl::lint::Diagnostic;
using cfl::lint::JsonEscape;

struct GateResult {
  std::string name;     // "cfl_lint", "cfl_analyze", "clang-tidy", "clang-sa"
  std::string status;   // "clean", "findings", "skipped", "error"
  std::string detail;   // one-line human summary
  std::vector<Diagnostic> diags;
};

// ---- child processes ----------------------------------------------------

// Runs `cmd` capturing stdout+stderr; returns the child's exit code or -1.
int RunCapture(const std::string& cmd, std::string& out) {
  out.clear();
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  std::array<char, 4096> buf;
  size_t n;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), n);
  }
  int status = pclose(pipe);
  if (status < 0) return -1;
#if defined(WIFEXITED)
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
#else
  return status;
#endif
}

std::string ShellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

// ---- parsing the tools' own JSON ----------------------------------------

// Minimal extraction for the schema lint_common.h emits — each diagnostic
// is one object with string values "file", "rule", "message" and integer
// values "line", "col". Not a general JSON parser; it only needs to read
// what PrintDiagnostics writes.

// Reads the JSON string starting at the opening quote s[at]; returns the
// unescaped value and leaves `at` one past the closing quote.
std::string ReadJsonString(const std::string& s, size_t& at) {
  std::string out;
  ++at;  // opening quote
  while (at < s.size() && s[at] != '"') {
    if (s[at] == '\\' && at + 1 < s.size()) {
      char e = s[at + 1];
      switch (e) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u':
          // Only control characters are \u-escaped by JsonEscape; decode
          // the low byte and drop the rest.
          if (at + 5 < s.size()) {
            out.push_back(static_cast<char>(
                std::strtol(s.substr(at + 2, 4).c_str(), nullptr, 16)));
            at += 4;
          }
          break;
        default: out.push_back(e);
      }
      at += 2;
    } else {
      out.push_back(s[at]);
      ++at;
    }
  }
  ++at;  // closing quote
  return out;
}

bool FindKey(const std::string& obj, const std::string& key, size_t& at) {
  std::string needle = "\"" + key + "\":";
  size_t pos = obj.find(needle, at);
  if (pos == std::string::npos) return false;
  at = pos + needle.size();
  return true;
}

// Parses every diagnostic object out of a tool's --json document.
std::vector<Diagnostic> ParseToolJson(const std::string& doc) {
  std::vector<Diagnostic> out;
  size_t at = doc.find("\"diagnostics\":");
  if (at == std::string::npos) return out;
  while (true) {
    size_t obj = doc.find("{\"file\":", at);
    if (obj == std::string::npos) break;
    Diagnostic d;
    size_t p = obj;
    if (FindKey(doc, "file", p)) d.file = ReadJsonString(doc, p);
    p = obj;
    if (FindKey(doc, "line", p)) d.line = std::atoi(doc.c_str() + p);
    p = obj;
    if (FindKey(doc, "col", p)) d.col = std::atoi(doc.c_str() + p);
    p = obj;
    if (FindKey(doc, "rule", p)) d.rule = ReadJsonString(doc, p);
    p = obj;
    if (FindKey(doc, "message", p)) d.message = ReadJsonString(doc, p);
    out.push_back(d);
    at = obj + 1;
  }
  return out;
}

// ---- parsing the clang wrappers' NEW-findings reports -------------------

// After the "NEW findings not in the baseline:" marker every two-space
// indented `file: severity: message` line is one finding (line numbers are
// normalized away by the wrappers; SARIF regions default to line 1).
std::vector<Diagnostic> ParseWrapperFindings(const std::string& out,
                                             const std::string& rule) {
  std::vector<Diagnostic> diags;
  std::istringstream in(out);
  std::string line;
  bool in_new = false;
  while (std::getline(in, line)) {
    if (line.find("NEW findings not in the baseline:") != std::string::npos) {
      in_new = true;
      continue;
    }
    if (!in_new) continue;
    if (line.size() < 3 || line.compare(0, 2, "  ") != 0) {
      in_new = false;
      continue;
    }
    std::string entry = line.substr(2);
    size_t colon = entry.find(':');
    if (colon == std::string::npos) continue;
    Diagnostic d;
    d.file = entry.substr(0, colon);
    d.line = 1;
    d.col = 1;
    d.rule = rule;
    d.message = entry.substr(colon + 1);
    while (!d.message.empty() && d.message.front() == ' ') {
      d.message.erase(d.message.begin());
    }
    diags.push_back(d);
  }
  return diags;
}

// ---- report emission ----------------------------------------------------

// Repo-relative forward-slash path for report URIs.
std::string RelUri(const std::string& file, const fs::path& root) {
  std::error_code ec;
  fs::path p(file);
  fs::path rel = p.lexically_proximate(root);
  std::string s = rel.generic_string();
  if (s.compare(0, 2, "./") == 0) s = s.substr(2);
  if (s.compare(0, 3, "../") == 0) return fs::path(file).generic_string();
  return s;
}

void WriteJsonReport(std::ostream& os, const std::vector<GateResult>& gates,
                     const fs::path& root) {
  size_t total = 0;
  for (const GateResult& g : gates) total += g.diags.size();
  os << "{\"tool\":\"cfl_check\",\"errors\":" << total << ",\"gates\":[";
  for (size_t gi = 0; gi < gates.size(); ++gi) {
    const GateResult& g = gates[gi];
    if (gi != 0) os << ",";
    os << "\n {\"name\":\"" << JsonEscape(g.name) << "\",\"status\":\""
       << JsonEscape(g.status) << "\",\"errors\":" << g.diags.size()
       << ",\"diagnostics\":[";
    for (size_t i = 0; i < g.diags.size(); ++i) {
      const Diagnostic& d = g.diags[i];
      if (i != 0) os << ",";
      os << "\n  {\"file\":\"" << JsonEscape(RelUri(d.file, root))
         << "\",\"line\":" << d.line << ",\"col\":" << d.col
         << ",\"rule\":\"" << JsonEscape(d.rule) << "\",\"message\":\""
         << JsonEscape(d.message) << "\"}";
    }
    if (!g.diags.empty()) os << "\n ";
    os << "]}";
  }
  os << "\n]}\n";
}

void WriteSarif(std::ostream& os, const std::vector<GateResult>& gates,
                const fs::path& root) {
  // One run, one driver; the source gate is carried per-result in
  // properties so CI annotations stay attributable.
  std::set<std::string> rule_ids;
  for (const GateResult& g : gates) {
    for (const Diagnostic& d : g.diags) rule_ids.insert(d.rule);
  }
  os << "{\n"
     << " \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << " \"version\": \"2.1.0\",\n"
     << " \"runs\": [\n  {\n   \"tool\": {\n    \"driver\": {\n"
     << "     \"name\": \"cfl_check\",\n"
     << "     \"informationUri\": "
        "\"https://github.com/cfl-match/cfl-match\",\n"
     << "     \"rules\": [";
  size_t ri = 0;
  for (const std::string& id : rule_ids) {
    if (ri++ != 0) os << ",";
    os << "\n      {\"id\": \"" << JsonEscape(id) << "\"}";
  }
  if (!rule_ids.empty()) os << "\n     ";
  os << "]\n    }\n   },\n   \"results\": [";
  size_t out_i = 0;
  for (const GateResult& g : gates) {
    for (const Diagnostic& d : g.diags) {
      if (out_i++ != 0) os << ",";
      os << "\n    {\n     \"ruleId\": \"" << JsonEscape(d.rule) << "\",\n"
         << "     \"level\": \"error\",\n"
         << "     \"message\": {\"text\": \"" << JsonEscape(d.message)
         << "\"},\n"
         << "     \"locations\": [{\"physicalLocation\": "
            "{\"artifactLocation\": {\"uri\": \""
         << JsonEscape(RelUri(d.file, root))
         << "\"}, \"region\": {\"startLine\": " << (d.line > 0 ? d.line : 1)
         << ", \"startColumn\": " << (d.col > 0 ? d.col : 1) << "}}}],\n"
         << "     \"properties\": {\"gate\": \"" << JsonEscape(g.name)
         << "\"}\n    }";
    }
  }
  if (out_i != 0) os << "\n   ";
  os << "]\n  }\n ]\n}\n";
}

// ---- driver -------------------------------------------------------------

int Usage(int code) {
  std::cerr
      << "usage: cfl_check --root DIR [--build-dir DIR] [--bin-dir DIR]\n"
      << "                 [--json FILE] [--sarif FILE]\n"
      << "                 [--skip lint,analyze,tidy,sa]\n"
      << "  Runs cfl_lint, cfl_analyze, and the clang-tidy / clang-sa\n"
      << "  baseline diffs in one invocation and merges the findings.\n"
      << "  --json / --sarif write the merged report (shared JSON schema /\n"
      << "  SARIF 2.1.0); --skip drops gates; a clang wrapper without its\n"
      << "  toolchain is reported as skipped, never as a failure.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path bin_dir;
  std::string build_dir;
  std::string json_path;
  std::string sarif_path;
  std::set<std::string> skip;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return Usage(2);
      root = v;
    } else if (arg == "--bin-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(2);
      bin_dir = v;
    } else if (arg == "--build-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(2);
      build_dir = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return Usage(2);
      json_path = v;
    } else if (arg == "--sarif") {
      const char* v = next();
      if (v == nullptr) return Usage(2);
      sarif_path = v;
    } else if (arg == "--skip") {
      const char* v = next();
      if (v == nullptr) return Usage(2);
      std::string list = v;
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string item = list.substr(
            start, comma == std::string::npos ? comma : comma - start);
        if (!item.empty()) {
          if (item != "lint" && item != "analyze" && item != "tidy" &&
              item != "sa") {
            std::cerr << "cfl_check: unknown gate '" << item
                      << "' in --skip\n";
            return Usage(2);
          }
          skip.insert(item);
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else {
      std::cerr << "cfl_check: unknown argument " << arg << "\n";
      return Usage(2);
    }
  }

  std::error_code ec;
  if (!fs::is_directory(root / "src", ec)) {
    std::cerr << "cfl_check: no src/ under " << root << "\n";
    return 2;
  }
  if (bin_dir.empty()) {
    bin_dir = fs::path(argv[0]).parent_path();
    if (bin_dir.empty()) bin_dir = ".";
  }

  std::vector<GateResult> gates;
  bool environment_error = false;

  // The project's own gates: required — a missing binary is an error.
  struct OwnGate {
    const char* skip_key;
    const char* name;
    const char* binary;
  };
  for (const OwnGate& own : {OwnGate{"lint", "cfl_lint", "cfl_lint"},
                             OwnGate{"analyze", "cfl_analyze",
                                     "cfl_analyze"}}) {
    if (skip.count(own.skip_key) != 0) {
      gates.push_back({own.name, "skipped", "skipped by --skip", {}});
      continue;
    }
    fs::path bin = bin_dir / own.binary;
    GateResult g;
    g.name = own.name;
    if (!fs::exists(bin, ec)) {
      g.status = "error";
      g.detail = "binary not found at " + bin.string() +
                 " (build it, or pass --bin-dir)";
      environment_error = true;
      gates.push_back(g);
      continue;
    }
    std::string out;
    int code = RunCapture(ShellQuote(bin.string()) + " --root " +
                              ShellQuote(root.string()) + " --json",
                          out);
    if (code != 0 && code != 1) {
      g.status = "error";
      g.detail = own.name + std::string(" exited ") + std::to_string(code);
      environment_error = true;
    } else {
      g.diags = ParseToolJson(out);
      g.status = g.diags.empty() ? "clean" : "findings";
      g.detail = std::to_string(g.diags.size()) + " finding(s)";
    }
    gates.push_back(g);
  }

  // The clang wrappers: best-effort — exit 2 means the toolchain or the
  // baseline is absent, which is an environment fact, not a finding.
  struct Wrapper {
    const char* skip_key;
    const char* name;
    const char* script;
    const char* rule;
    bool pass_build_dir;
  };
  for (const Wrapper& w :
       {Wrapper{"tidy", "clang-tidy", "run_clang_tidy.sh",
                "clang-tidy-baseline", true},
        Wrapper{"sa", "clang-sa", "run_clang_sa.sh", "clang-sa-baseline",
                false}}) {
    if (skip.count(w.skip_key) != 0) {
      gates.push_back({w.name, "skipped", "skipped by --skip", {}});
      continue;
    }
    fs::path script = root / "tools" / w.script;
    GateResult g;
    g.name = w.name;
    if (!fs::exists(script, ec)) {
      g.status = "skipped";
      g.detail = "no " + std::string(w.script) + " under " +
                 (root / "tools").string();
      gates.push_back(g);
      continue;
    }
    std::string cmd = ShellQuote(script.string());
    if (w.pass_build_dir && !build_dir.empty()) {
      cmd += " " + ShellQuote(build_dir);
    }
    std::string out;
    int code = RunCapture(cmd, out);
    if (code == 0) {
      g.status = "clean";
      g.detail = "no new findings vs baseline";
    } else if (code == 1) {
      g.diags = ParseWrapperFindings(out, w.rule);
      if (g.diags.empty()) {
        // Exit 1 without parseable findings: surface the raw tail.
        Diagnostic d;
        d.file = script.string();
        d.line = 1;
        d.col = 1;
        d.rule = w.rule;
        d.message = "wrapper reported new findings (see its output)";
        g.diags.push_back(d);
      }
      g.status = "findings";
      g.detail = std::to_string(g.diags.size()) + " new finding(s)";
    } else {
      g.status = "skipped";
      g.detail = "toolchain unavailable (wrapper exited " +
                 std::to_string(code) + ")";
    }
    gates.push_back(g);
  }

  // Human summary + per-finding lines.
  size_t total = 0;
  for (const GateResult& g : gates) {
    std::cout << "cfl_check: " << g.name << ": " << g.status;
    if (!g.detail.empty()) std::cout << " (" << g.detail << ")";
    std::cout << "\n";
    for (const Diagnostic& d : g.diags) {
      std::cout << "  " << RelUri(d.file, root) << ":" << d.line << ":"
                << d.col << ": [" << d.rule << "] " << d.message << "\n";
    }
    total += g.diags.size();
  }
  std::cout << "cfl_check: " << total << " finding(s) across " << gates.size()
            << " gate(s)\n";

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) {
      std::cerr << "cfl_check: cannot write " << json_path << "\n";
      return 2;
    }
    WriteJsonReport(f, gates, root);
  }
  if (!sarif_path.empty()) {
    std::ofstream f(sarif_path);
    if (!f) {
      std::cerr << "cfl_check: cannot write " << sarif_path << "\n";
      return 2;
    }
    WriteSarif(f, gates, root);
  }

  if (environment_error) return 2;
  return total == 0 ? 0 : 1;
}
