// Execution statistics: phase timers and pruning/search counters.
//
// The paper's evaluation (Section 6) reasons in internal quantities —
// candidate-set sizes, CPI space, pruning power of the bottom-up refinement,
// the split between ordering and enumeration time — that end-to-end wall
// time cannot expose. MatchStats records them per Match call:
//
//   * Phase timers: consecutive laps of one monotonic WallTimer
//     (decomposition, CPI top-down / bottom-up / adjacency build, ordering,
//     enumeration), so their sum is <= total wall time by construction.
//   * Prepare-side counters: candidates generated and pruned per query
//     vertex and filter round (top-down backward pass vs bottom-up
//     refinement), final CPI candidate/adjacency arena sizes. These obey
//     the accounting identity
//         generated[u] - pruned_backward[u] - pruned_bottomup[u]
//             == |C(u)|
//     which tests/stats_test.cc checks on randomized inputs.
//   * Enumeration-side counters (EnumStats): backward-edge probes and how
//     many were answered by a hub bitmap, injectivity/backward rejects,
//     partial embeddings discarded, deepest bound prefix, core+forest
//     embeddings visited, leaf-match calls and counted leaf products.
//     Recorded into the worker-private EnumeratorState (the thread-local
//     shard) and merged into MatchStats at the join barrier, so recording
//     itself is never contended.
//   * Per-worker root-claim counts for the parallel matcher: without a cap
//     or deadline their sum equals the root candidate count exactly (each
//     root is claimed once), at any thread count.
//
// Compile-time gate: configure with -DCFL_STATS=OFF and every recording
// site (all wrapped in CFL_STATS_ONLY) compiles to nothing — the hot path
// is bit-identical to a build without the subsystem. The struct fields
// remain so MatchResult consumers need no #ifdefs; they just stay zero.
// With stats ON the recording is plain private-field increments; measured
// enumeration overhead on bench_micro is within the 5% budget DESIGN.md §8
// documents.
//
// Exception: leaf-match timing. CountEmbeddings runs once per core+forest
// embedding — the hottest call in the matcher — so timing every call would
// blow the overhead budget on leaf-light queries. It is instead *sampled*
// (every 64th call is timed) and `LeafSecondsEstimate` extrapolates; the
// estimate is explicitly not part of the phase-sum identity.

#ifndef CFL_OBS_STATS_H_
#define CFL_OBS_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.h"

// Compile-time gate, set to 0 by -DCFL_STATS=OFF (see the top-level
// CMakeLists). Default ON.
#ifndef CFL_STATS_ENABLED
#define CFL_STATS_ENABLED 1
#endif

// Wraps every recording statement; expands to nothing when stats are
// compiled out, so disabled builds carry no stats code at all.
#if CFL_STATS_ENABLED
#define CFL_STATS_ONLY(...) __VA_ARGS__
#else
#define CFL_STATS_ONLY(...)
#endif

namespace cfl {

namespace obs {
inline constexpr bool kStatsEnabled = CFL_STATS_ENABLED != 0;

// Leaf-match timing sample stride (power of two): one in kLeafSampleStride
// CountEmbeddings calls is timed.
inline constexpr uint32_t kLeafSampleStride = 64;
}  // namespace obs

// Enumeration-side counters. One instance lives in each EnumeratorState, so
// in parallel runs every worker records into its own shard; MatchStats
// merges the shards after the join barrier (no torn counters: nothing reads
// a shard while its worker still runs).
struct EnumStats {
  uint64_t backward_probes = 0;   // HasEdge probes for backward non-tree edges
  uint64_t hub_probes = 0;        // of those, answered by a hub bitmap row
  uint64_t backward_rejects = 0;  // candidates rejected by a backward edge
  uint64_t conflict_rejects = 0;  // rejected by injectivity / capacity
  uint64_t partials_discarded = 0;  // dead-end backtracks of non-empty prefixes
  uint64_t max_depth = 0;           // deepest bound prefix (matched vertices)
  uint64_t core_visits = 0;       // complete core+forest embeddings visited
  uint64_t leaf_calls = 0;        // leaf-match invocations (count or enumerate)
  uint64_t leaf_products = 0;     // embeddings contributed via leaf counting
  uint64_t leaf_sampled_calls = 0;
  double leaf_sampled_seconds = 0.0;

  // Sampling cursor for the leaf timers (not merged; shard-local state).
  uint32_t leaf_tick = 0;

  bool ShouldSampleLeaf() {
    return (leaf_tick++ & (obs::kLeafSampleStride - 1)) == 0;
  }

  // Accumulates `other` into this shard-sum (max for max_depth).
  void Merge(const EnumStats& other);
};

// Prepare-side counters recorded by CpiBuilder::Build. All vectors are
// indexed by query vertex; empty when stats are compiled out or the builder
// was invoked without a stats sink.
struct CpiBuildStats {
  std::vector<uint64_t> generated;        // candidates at generation time
  std::vector<uint64_t> pruned_backward;  // top-down same-level backward pass
  std::vector<uint64_t> pruned_bottomup;  // bottom-up refinement (Algorithm 4)

  double top_down_seconds = 0.0;
  double bottom_up_seconds = 0.0;
  double adjacency_seconds = 0.0;

  uint64_t TotalGenerated() const;
  uint64_t TotalPruned() const;
};

// Everything one Match call recorded. Attached to MatchResult; also carried
// by PreparedQuery for the Prepare-side half.
struct MatchStats {
  // True iff the engine that produced the result records stats at all
  // (the CFL family and instrumented baselines); lets consumers distinguish
  // "zero because nothing happened" from "zero because not recorded".
  bool recorded = false;

  // --- Phase timers (seconds; consecutive monotonic laps) ---------------
  double decompose_seconds = 0.0;  // decomposition + root select + BFS tree
  double cpi_top_down_seconds = 0.0;
  double cpi_bottom_up_seconds = 0.0;
  double cpi_adjacency_seconds = 0.0;
  double order_seconds = 0.0;
  double enumerate_seconds = 0.0;

  // Sum of the (non-overlapping) phase timers above; <= total wall time.
  double PhaseSecondsSum() const {
    return decompose_seconds + cpi_top_down_seconds + cpi_bottom_up_seconds +
           cpi_adjacency_seconds + order_seconds + enumerate_seconds;
  }

  // --- Prepare side ------------------------------------------------------
  CpiBuildStats cpi;
  std::vector<uint64_t> cpi_candidates_per_vertex;  // |C(u)| per query vertex
  uint64_t cpi_candidate_entries = 0;   // candidate arena size
  uint64_t cpi_adjacency_entries = 0;   // adjacency arena size

  // --- Enumeration side ---------------------------------------------------
  EnumStats enumeration;  // merged over all workers
  uint64_t candidates_tried = 0;  // mirrors MatchResult counters
  uint64_t candidates_bound = 0;
  uint64_t embeddings_found = 0;  // == MatchResult::embeddings

  // Extrapolated leaf-match time (sampled; see header comment). Zero when
  // no leaf call was sampled.
  double LeafSecondsEstimate() const;

  // --- Parallel run shape -------------------------------------------------
  uint32_t threads = 1;
  uint64_t root_candidates = 0;  // |C(root)| — the parallel work units
  // Roots claimed per worker (size == threads for parallel runs, {n} for
  // serial). Without a cap or deadline the entries sum to root_candidates.
  std::vector<uint64_t> worker_roots_claimed;

  uint64_t TotalRootsClaimed() const;
};

namespace obs {

// Checks the accounting identities a well-formed MatchStats must satisfy
// against the enclosing result's embedding count and total wall time.
// Returns an empty string if everything holds (or stats were not recorded /
// compiled out), else a description of the first violated identity. Used by
// tools/cfl_difftest and the randomized property tests.
std::string CheckStatsInvariants(const MatchStats& stats, uint64_t embeddings,
                                 double total_seconds);

// Human-readable multi-line rendering for cfl_query --stats.
std::string FormatStats(const MatchStats& stats);

// Scalar roll-up of many MatchStats (per query set / bench run); the JSONL
// emitter in bench/bench_common.h reports these fields.
struct StatsTotals {
  uint64_t candidates_generated = 0;
  uint64_t candidates_pruned = 0;
  uint64_t cpi_candidate_entries = 0;
  uint64_t cpi_adjacency_entries = 0;
  uint64_t backward_probes = 0;
  uint64_t hub_probes = 0;
  uint64_t partials_discarded = 0;
  uint64_t core_visits = 0;
  uint64_t leaf_calls = 0;

  void Add(const MatchStats& stats);
};

}  // namespace obs

}  // namespace cfl

#endif  // CFL_OBS_STATS_H_
