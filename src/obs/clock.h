// Monotonic-clock facade for the whole library.
//
// Every wall-clock read in src/, bench/, and tools/ goes through this header
// (or through src/harness/stopwatch.h, the pre-existing harness-side timer):
// tools/cfl_lint rule `raw-clock` rejects direct std::chrono::steady_clock
// use anywhere else. Centralizing the reads keeps phase accounting honest —
// a timer that bypasses the stats layer produces numbers MatchStats cannot
// reconcile against total wall time — and gives one place to swap the clock
// source (e.g. a coarse clock or TSC reads) for all timers at once.

#ifndef CFL_OBS_CLOCK_H_
#define CFL_OBS_CLOCK_H_

#include <chrono>

namespace cfl::obs {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

inline TimePoint Now() { return Clock::now(); }

// Seconds from `from` to `to` (negative if `to` precedes `from`).
inline double SecondsBetween(TimePoint from, TimePoint to) {
  return std::chrono::duration<double>(to - from).count();
}

inline double SecondsSince(TimePoint from) {
  return SecondsBetween(from, Now());
}

// `at + seconds`, for deadline arithmetic.
inline TimePoint AfterSeconds(TimePoint at, double seconds) {
  return at + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds));
}

// Lap-style monotonic timer: Lap() returns the seconds since construction or
// the previous Lap and restarts. The phase timers of MatchStats are laps of
// one WallTimer, so consecutive phases can never overlap or double-count.
class WallTimer {
 public:
  WallTimer() : start_(Now()) {}

  double Lap() {
    TimePoint now = Now();
    double s = SecondsBetween(start_, now);
    start_ = now;
    return s;
  }

  double Elapsed() const { return SecondsSince(start_); }

 private:
  TimePoint start_;
};

}  // namespace cfl::obs

#endif  // CFL_OBS_CLOCK_H_
