// Counters for the dynamic-graph subsystem (src/dyn/).
//
// Lives in obs (not dyn) for the same reason MatchStats does: the serve
// layer reports these on its STATS line and must be able to name the type
// without depending on the subsystem that fills it. Plain fields, no
// atomics — DynamicGraph mutates them under its own mutex and hands out
// copies, so readers never see torn values.

#ifndef CFL_OBS_DYN_COUNTERS_H_
#define CFL_OBS_DYN_COUNTERS_H_

#include <cstdint>

namespace cfl::obs {

struct DynCounters {
  // Lifetime totals.
  uint64_t epochs_created = 0;   // commits: folds + installed compactions
  uint64_t folds = 0;            // deltas folded into a fresh snapshot
  uint64_t compactions = 0;      // from-scratch rebuilds installed
  uint64_t compactions_abandoned = 0;  // rebuilt, but the epoch moved on
  uint64_t epochs_retired = 0;   // superseded snapshots whose pins drained

  uint64_t vertices_added = 0;
  uint64_t vertices_removed = 0;
  uint64_t edges_added = 0;
  uint64_t edges_removed = 0;

  // Gauges sampled when the snapshot of counters is taken.
  uint64_t live_epochs = 0;      // current + retained-but-not-yet-retired
  uint64_t pinned_refs = 0;      // outstanding EpochRefs across all epochs
};

}  // namespace cfl::obs

#endif  // CFL_OBS_DYN_COUNTERS_H_
