#include "obs/stats.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace cfl {

void EnumStats::Merge(const EnumStats& other) {
  backward_probes += other.backward_probes;
  hub_probes += other.hub_probes;
  backward_rejects += other.backward_rejects;
  conflict_rejects += other.conflict_rejects;
  partials_discarded += other.partials_discarded;
  max_depth = std::max(max_depth, other.max_depth);
  core_visits += other.core_visits;
  leaf_calls += other.leaf_calls;
  leaf_products += other.leaf_products;
  leaf_sampled_calls += other.leaf_sampled_calls;
  leaf_sampled_seconds += other.leaf_sampled_seconds;
}

uint64_t CpiBuildStats::TotalGenerated() const {
  return std::accumulate(generated.begin(), generated.end(), uint64_t{0});
}

uint64_t CpiBuildStats::TotalPruned() const {
  uint64_t total =
      std::accumulate(pruned_backward.begin(), pruned_backward.end(),
                      uint64_t{0});
  return total + std::accumulate(pruned_bottomup.begin(),
                                 pruned_bottomup.end(), uint64_t{0});
}

double MatchStats::LeafSecondsEstimate() const {
  if (enumeration.leaf_sampled_calls == 0) return 0.0;
  double per_call = enumeration.leaf_sampled_seconds /
                    static_cast<double>(enumeration.leaf_sampled_calls);
  return per_call * static_cast<double>(enumeration.leaf_calls);
}

uint64_t MatchStats::TotalRootsClaimed() const {
  return std::accumulate(worker_roots_claimed.begin(),
                         worker_roots_claimed.end(), uint64_t{0});
}

namespace obs {

namespace {

std::string Violation(const char* what, uint64_t lhs, uint64_t rhs) {
  std::ostringstream os;
  os << what << " (" << lhs << " vs " << rhs << ")";
  return os.str();
}

}  // namespace

std::string CheckStatsInvariants(const MatchStats& stats, uint64_t embeddings,
                                 double total_seconds) {
  if (!stats.recorded || !kStatsEnabled) return "";

  // Identity 1: embeddings in the stats match the result they ride on.
  if (stats.embeddings_found != embeddings) {
    return Violation("stats.embeddings_found != result.embeddings",
                     stats.embeddings_found, embeddings);
  }

  // Identity 2: per-vertex candidate accounting. The CPI-side vectors may
  // be empty (naive strategy or no stats sink); when present they must be
  // parallel and reconcile with the final candidate counts.
  const CpiBuildStats& cpi = stats.cpi;
  if (!cpi.generated.empty()) {
    size_t n = cpi.generated.size();
    if (cpi.pruned_backward.size() != n || cpi.pruned_bottomup.size() != n ||
        stats.cpi_candidates_per_vertex.size() != n) {
      return "cpi stats vectors have mismatched sizes";
    }
    for (size_t u = 0; u < n; ++u) {
      uint64_t pruned = cpi.pruned_backward[u] + cpi.pruned_bottomup[u];
      if (pruned > cpi.generated[u]) {
        return Violation("pruned > generated for a query vertex", pruned,
                         cpi.generated[u]);
      }
      if (cpi.generated[u] - pruned != stats.cpi_candidates_per_vertex[u]) {
        return Violation("generated - pruned != |C(u)| for a query vertex",
                         cpi.generated[u] - pruned,
                         stats.cpi_candidates_per_vertex[u]);
      }
    }
    uint64_t final_total =
        std::accumulate(stats.cpi_candidates_per_vertex.begin(),
                        stats.cpi_candidates_per_vertex.end(), uint64_t{0});
    if (stats.cpi_candidate_entries != 0 &&
        final_total != stats.cpi_candidate_entries) {
      return Violation("sum |C(u)| != candidate arena size", final_total,
                       stats.cpi_candidate_entries);
    }
  }

  // Identity 3: phase laps of one monotonic timer cannot exceed the
  // enclosing wall time. Allow a small absolute slack for the float adds.
  if (total_seconds > 0.0 &&
      stats.PhaseSecondsSum() > total_seconds + 1e-6) {
    std::ostringstream os;
    os << "phase timer sum exceeds total wall time ("
       << stats.PhaseSecondsSum() << "s vs " << total_seconds << "s)";
    return os.str();
  }

  // Identity 4: probe/reject sanity.
  const EnumStats& e = stats.enumeration;
  if (e.hub_probes > e.backward_probes) {
    return Violation("hub_probes > backward_probes", e.hub_probes,
                     e.backward_probes);
  }
  if (e.backward_rejects > e.backward_probes) {
    return Violation("backward_rejects > backward_probes", e.backward_rejects,
                     e.backward_probes);
  }
  if (e.leaf_sampled_calls > e.leaf_calls) {
    return Violation("leaf_sampled_calls > leaf_calls", e.leaf_sampled_calls,
                     e.leaf_calls);
  }
  if (stats.candidates_bound > stats.candidates_tried) {
    return Violation("candidates_bound > candidates_tried",
                     stats.candidates_bound, stats.candidates_tried);
  }

  // Identity 5: workers cannot claim more roots than exist.
  if (stats.root_candidates != 0 &&
      stats.TotalRootsClaimed() > stats.root_candidates) {
    return Violation("claimed roots exceed root candidates",
                     stats.TotalRootsClaimed(), stats.root_candidates);
  }

  return "";
}

std::string FormatStats(const MatchStats& stats) {
  std::ostringstream os;
  if (!kStatsEnabled) {
    os << "stats: compiled out (CFL_STATS=OFF)\n";
    return os.str();
  }
  if (!stats.recorded) {
    os << "stats: not recorded by this engine\n";
    return os.str();
  }

  auto ms = [](double s) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", s * 1e3);
    return std::string(buf);
  };

  os << "phases (ms): decompose=" << ms(stats.decompose_seconds)
     << " cpi_top_down=" << ms(stats.cpi_top_down_seconds)
     << " cpi_bottom_up=" << ms(stats.cpi_bottom_up_seconds)
     << " cpi_adjacency=" << ms(stats.cpi_adjacency_seconds)
     << " order=" << ms(stats.order_seconds)
     << " enumerate=" << ms(stats.enumerate_seconds)
     << " | sum=" << ms(stats.PhaseSecondsSum()) << "\n";
  os << "cpi: candidates_generated=" << stats.cpi.TotalGenerated()
     << " pruned=" << stats.cpi.TotalPruned()
     << " candidate_entries=" << stats.cpi_candidate_entries
     << " adjacency_entries=" << stats.cpi_adjacency_entries << "\n";
  const EnumStats& e = stats.enumeration;
  os << "enumerate: tried=" << stats.candidates_tried
     << " bound=" << stats.candidates_bound
     << " backward_probes=" << e.backward_probes
     << " hub_probes=" << e.hub_probes
     << " backward_rejects=" << e.backward_rejects
     << " conflict_rejects=" << e.conflict_rejects << "\n";
  os << "search: max_depth=" << e.max_depth
     << " partials_discarded=" << e.partials_discarded
     << " core_visits=" << e.core_visits << " leaf_calls=" << e.leaf_calls
     << " leaf_products=" << e.leaf_products
     << " leaf_ms_est=" << ms(stats.LeafSecondsEstimate()) << "\n";
  os << "run: embeddings=" << stats.embeddings_found
     << " threads=" << stats.threads
     << " root_candidates=" << stats.root_candidates << " roots_claimed=[";
  for (size_t i = 0; i < stats.worker_roots_claimed.size(); ++i) {
    if (i != 0) os << ",";
    os << stats.worker_roots_claimed[i];
  }
  os << "]\n";
  return os.str();
}

void StatsTotals::Add(const MatchStats& stats) {
  if (!stats.recorded) return;
  candidates_generated += stats.cpi.TotalGenerated();
  candidates_pruned += stats.cpi.TotalPruned();
  cpi_candidate_entries += stats.cpi_candidate_entries;
  cpi_adjacency_entries += stats.cpi_adjacency_entries;
  backward_probes += stats.enumeration.backward_probes;
  hub_probes += stats.enumeration.hub_probes;
  partials_discarded += stats.enumeration.partials_discarded;
  core_visits += stats.enumeration.core_visits;
  leaf_calls += stats.enumeration.leaf_calls;
}

}  // namespace obs

}  // namespace cfl
