// Plain-text table printing in the shape of the paper's figures: one row
// per query set / parameter value, one column per algorithm/series.

#ifndef CFL_HARNESS_TABLE_H_
#define CFL_HARNESS_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace cfl {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Milliseconds with sensible precision ("0.42", "13.5", "5021").
std::string FormatMillis(double millis);

// The paper plots unfinishable query sets as "INF".
inline constexpr const char* kInf = "INF";

}  // namespace cfl

#endif  // CFL_HARNESS_TABLE_H_
