#include "harness/env.h"

#include <cstdlib>
#include <string>

#include "check/env.h"

namespace cfl {

namespace {

const char* Getenv(const char* name) {
  // All knobs come from the immutable process-env snapshot (check/env.h):
  // no getenv on any path, so reads stay safe after worker threads exist.
  return env::Get(name);
}

}  // namespace

double ParseBenchScale(const char* value, double fallback) {
  if (value == nullptr || value[0] == '\0') return fallback;
  std::string s(value);
  if (s == "full" || s == "FULL") return 1.0;
  double parsed = std::atof(value);
  return (parsed > 0.0 && parsed <= 1.0) ? parsed : fallback;
}

uint32_t ParsePositiveU32(const char* value, uint32_t fallback) {
  if (value == nullptr || value[0] == '\0') return fallback;
  long parsed = std::atol(value);
  return parsed > 0 ? static_cast<uint32_t>(parsed) : fallback;
}

double ParsePositiveSeconds(const char* value, double fallback) {
  if (value == nullptr || value[0] == '\0') return fallback;
  double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : fallback;
}

double BenchScale(double fallback) {
  return ParseBenchScale(Getenv("CFL_BENCH_SCALE"), fallback);
}

uint32_t BenchQueries(uint32_t fallback) {
  return ParsePositiveU32(Getenv("CFL_BENCH_QUERIES"), fallback);
}

double BenchTimeLimitSeconds(double fallback) {
  return ParsePositiveSeconds(Getenv("CFL_BENCH_TIME_LIMIT_S"), fallback);
}

uint32_t BenchThreads(uint32_t fallback) {
  return ParsePositiveU32(Getenv("CFL_BENCH_THREADS"), fallback);
}

std::string BenchJsonPath() {
  const char* value = Getenv("CFL_BENCH_JSON");
  return value != nullptr ? std::string(value) : std::string();
}

}  // namespace cfl
