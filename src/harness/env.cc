#include "harness/env.h"

#include <cstdlib>
#include <string>

namespace cfl {

namespace {

const char* Getenv(const char* name) {
  // Config is read once at startup, before any worker thread exists.
  const char* value = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  return (value != nullptr && value[0] != '\0') ? value : nullptr;
}

}  // namespace

double BenchScale(double fallback) {
  const char* value = Getenv("CFL_BENCH_SCALE");
  if (value == nullptr) return fallback;
  std::string s(value);
  if (s == "full" || s == "FULL") return 1.0;
  double parsed = std::atof(value);
  return (parsed > 0.0 && parsed <= 1.0) ? parsed : fallback;
}

uint32_t BenchQueries(uint32_t fallback) {
  const char* value = Getenv("CFL_BENCH_QUERIES");
  if (value == nullptr) return fallback;
  long parsed = std::atol(value);
  return parsed > 0 ? static_cast<uint32_t>(parsed) : fallback;
}

double BenchTimeLimitSeconds(double fallback) {
  const char* value = Getenv("CFL_BENCH_TIME_LIMIT_S");
  if (value == nullptr) return fallback;
  double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : fallback;
}

uint32_t BenchThreads(uint32_t fallback) {
  const char* value = Getenv("CFL_BENCH_THREADS");
  if (value == nullptr) return fallback;
  long parsed = std::atol(value);
  return parsed > 0 ? static_cast<uint32_t>(parsed) : fallback;
}

std::string BenchJsonPath() {
  const char* value = Getenv("CFL_BENCH_JSON");
  return value != nullptr ? std::string(value) : std::string();
}

}  // namespace cfl
