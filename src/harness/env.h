// Environment-variable knobs for the benches.
//
// Every bench honors:
//   CFL_BENCH_SCALE   — "full" for paper-scale graphs, or a fraction in
//                       (0, 1]; the default keeps the whole suite at
//                       laptop/minutes scale.
//   CFL_BENCH_QUERIES — queries per query set (paper: 100; default lower).
//   CFL_BENCH_TIME_LIMIT_S — per-query-set wall budget in seconds standing
//                       in for the paper's 5-hour limit; sets that exceed
//                       it report "INF" like the paper's plots.
//   CFL_BENCH_JSON    — path of a JSON-lines file to which benches append
//                       machine-readable results alongside the human tables.

#ifndef CFL_HARNESS_ENV_H_
#define CFL_HARNESS_ENV_H_

#include <cstdint>
#include <string>

namespace cfl {

// CFL_BENCH_SCALE (default `fallback`, typically 0.25).
double BenchScale(double fallback = 0.25);

// CFL_BENCH_QUERIES (default `fallback`, typically 20).
uint32_t BenchQueries(uint32_t fallback = 20);

// CFL_BENCH_TIME_LIMIT_S (default `fallback` seconds, typically 20).
double BenchTimeLimitSeconds(double fallback = 20.0);

// CFL_BENCH_THREADS (default `fallback`, typically 1): enumeration threads
// for the CFL-Match engine under measurement; > 1 selects the parallel
// root-partitioned matcher (parallel/parallel_match.h).
uint32_t BenchThreads(uint32_t fallback = 1);

// CFL_BENCH_JSON (default empty: disabled). When set, benches append one
// JSON object per measured result to this file (JSON-lines, created on
// first append).
std::string BenchJsonPath();

// The accessors above read the immutable process-env snapshot taken by
// cfl::env (src/check/env.h) — never the live environment — so they stay
// safe on the query paths of long-lived processes. setenv after the
// snapshot has no effect. The raw parsers are exposed for tests:
double ParseBenchScale(const char* value, double fallback);
uint32_t ParsePositiveU32(const char* value, uint32_t fallback);
double ParsePositiveSeconds(const char* value, double fallback);

}  // namespace cfl

#endif  // CFL_HARNESS_ENV_H_
