// Minimal wall-clock stopwatch for the experiment harness.

#ifndef CFL_HARNESS_STOPWATCH_H_
#define CFL_HARNESS_STOPWATCH_H_

#include <chrono>

namespace cfl {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cfl

#endif  // CFL_HARNESS_STOPWATCH_H_
