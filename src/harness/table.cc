#include "harness/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cfl {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& out) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const std::vector<std::string>& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
          << (c == 0 ? std::left : std::right) << row[c];
      out << std::right;
    }
    out << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << "\n";
  for (const std::vector<std::string>& row : rows_) print_row(row);
}

std::string FormatMillis(double millis) {
  std::ostringstream os;
  if (millis < 1.0) {
    os << std::fixed << std::setprecision(3) << millis;
  } else if (millis < 100.0) {
    os << std::fixed << std::setprecision(2) << millis;
  } else {
    os << std::fixed << std::setprecision(0) << millis;
  }
  return os.str();
}

}  // namespace cfl
