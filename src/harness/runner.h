// Query-set runner reproducing the paper's measurement protocol
// (Section 6, "Metrics"): run an engine over a query set, report the
// *average CPU time in milliseconds per query*, split into ordering and
// enumeration time; a query set that exceeds its wall budget is reported as
// "INF" (the paper's 5-hour limit, scaled down via CFL_BENCH_TIME_LIMIT_S).

#ifndef CFL_HARNESS_RUNNER_H_
#define CFL_HARNESS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "match/engine.h"
#include "obs/stats.h"

namespace cfl {

struct QuerySetResult {
  uint32_t queries_run = 0;
  uint32_t queries_total = 0;
  bool exhausted_budget = false;  // => report as INF

  double avg_total_ms = 0.0;
  double avg_order_ms = 0.0;  // ordering + auxiliary-structure time
  double avg_enum_ms = 0.0;
  double avg_index_entries = 0.0;
  uint64_t total_embeddings = 0;
  uint32_t timeouts = 0;  // per-query deadline hits

  // Execution-stats roll-up over the set (first repetition; the counters
  // are deterministic, see RunConfig::repetitions). All-zero for engines
  // that do not record stats or under CFL_STATS=OFF.
  obs::StatsTotals stats;

  bool IsInf() const { return exhausted_budget; }
};

struct RunConfig {
  MatchLimits per_query;            // embedding cap & per-query deadline
  double set_budget_seconds = 0.0;  // <= 0: unlimited, applied per repetition

  // The paper runs each query set three times; we likewise repeat and keep
  // the fastest repetition (the one with the best total time, all of whose
  // component metrics are reported together), which suppresses scheduler
  // spikes that would otherwise dominate sub-millisecond averages. Counts
  // come from the first repetition (they are deterministic anyway).
  uint32_t repetitions = 3;

  // Enumeration threads of the engine under measurement. The runner itself
  // is engine-agnostic (engines are constructed by the caller, see
  // bench_common.h's MakeDefaultCflEngine); the knob rides along so bench
  // binaries construct engines and label output from one config.
  uint32_t threads = 1;
};

// Per-query limits for a query starting `elapsed_seconds` into a set with
// `set_budget_seconds` of wall budget (<= 0 budget: `per_query` unchanged).
// Shrinks the per-query deadline so the query cannot run past the budget;
// when the remaining budget is zero or negative — which the <= 0 "no
// deadline" convention would otherwise read as *unlimited*, letting a query
// at the budget edge run forever — sets `*exhausted` instead and the query
// must be skipped. Exposed for the regression tests.
MatchLimits ClampToBudget(const MatchLimits& per_query,
                          double set_budget_seconds, double elapsed_seconds,
                          bool* exhausted);

// Runs `engine` over `queries`; stops early (marking INF) once the set
// budget is exhausted. Per-query deadline hits also mark the set INF, since
// the paper's protocol has no per-query timeout — a query that we had to cut
// off would have pushed the set past its budget.
QuerySetResult RunQuerySet(SubgraphEngine& engine,
                           const std::vector<Graph>& queries,
                           const RunConfig& config);

// "INF" or the average total time, for figure-style tables.
std::string FormatResult(const QuerySetResult& r);
// Same for the ordering / enumeration splits.
std::string FormatOrderResult(const QuerySetResult& r);
std::string FormatEnumResult(const QuerySetResult& r);

}  // namespace cfl

#endif  // CFL_HARNESS_RUNNER_H_
