#include "harness/runner.h"

#include <algorithm>

#include "harness/stopwatch.h"
#include "harness/table.h"
#include "match/embedding.h"

namespace cfl {

namespace {

QuerySetResult RunOnce(SubgraphEngine& engine,
                       const std::vector<Graph>& queries,
                       const RunConfig& config) {
  QuerySetResult out;
  out.queries_total = static_cast<uint32_t>(queries.size());
  Stopwatch budget;

  double total_s = 0.0, order_s = 0.0, enum_s = 0.0, index_entries = 0.0;
  for (const Graph& q : queries) {
    // One budget read serves both the exhaustion check and the deadline
    // clamp: reading the clock twice opened a window where the first read
    // passed but the second produced a remaining <= 0, which the <= 0
    // deadline convention silently turned into an *unlimited* query.
    bool exhausted = false;
    MatchLimits limits = ClampToBudget(
        config.per_query, config.set_budget_seconds, budget.Seconds(),
        &exhausted);
    if (exhausted) {
      out.exhausted_budget = true;
      break;
    }
    MatchResult r = engine.Run(q, limits);
    ++out.queries_run;
    total_s += r.total_seconds;
    order_s += r.OrderingSeconds();
    enum_s += r.enumerate_seconds;
    index_entries += static_cast<double>(r.index_entries);
    out.total_embeddings += r.embeddings;
    CFL_STATS_ONLY(out.stats.Add(r.stats);)
    if (r.timed_out) {
      ++out.timeouts;
      out.exhausted_budget = true;  // a cut-off query means the set is INF
      break;
    }
  }

  if (out.queries_run > 0) {
    out.avg_total_ms = total_s * 1e3 / out.queries_run;
    out.avg_order_ms = order_s * 1e3 / out.queries_run;
    out.avg_enum_ms = enum_s * 1e3 / out.queries_run;
    out.avg_index_entries = index_entries / out.queries_run;
  }
  return out;
}

}  // namespace

MatchLimits ClampToBudget(const MatchLimits& per_query,
                          double set_budget_seconds, double elapsed_seconds,
                          bool* exhausted) {
  *exhausted = false;
  MatchLimits limits = per_query;
  if (set_budget_seconds <= 0.0) return limits;
  const double remaining = set_budget_seconds - elapsed_seconds;
  // A microscopic positive remainder is as exhausted as a negative one: the
  // query would only burn its deadline machinery. 1 us is far below the
  // coarse deadline's resolution, so nothing measurable is cut off.
  constexpr double kMinRemainingSeconds = 1e-6;
  if (remaining <= kMinRemainingSeconds) {
    *exhausted = true;
    return limits;
  }
  if (limits.time_limit_seconds <= 0.0 ||
      limits.time_limit_seconds > remaining) {
    limits.time_limit_seconds = remaining;
  }
  return limits;
}

QuerySetResult RunQuerySet(SubgraphEngine& engine,
                           const std::vector<Graph>& queries,
                           const RunConfig& config) {
  QuerySetResult best = RunOnce(engine, queries, config);
  // Sets that blow the budget are INF; re-measuring them would only burn
  // more budget for the same label.
  if (best.IsInf()) return best;
  for (uint32_t rep = 1; rep < std::max(1u, config.repetitions); ++rep) {
    QuerySetResult again = RunOnce(engine, queries, config);
    if (again.IsInf()) continue;  // a spike pushed it over; keep `best`
    // Keep the fastest repetition *wholesale*: taking per-field minima
    // could report avg_total_ms from one repetition and avg_enum_ms from
    // another, so the columns no longer summed consistently.
    if (again.avg_total_ms < best.avg_total_ms) {
      best.avg_total_ms = again.avg_total_ms;
      best.avg_order_ms = again.avg_order_ms;
      best.avg_enum_ms = again.avg_enum_ms;
      best.avg_index_entries = again.avg_index_entries;
    }
  }
  return best;
}

std::string FormatResult(const QuerySetResult& r) {
  return r.IsInf() ? kInf : FormatMillis(r.avg_total_ms);
}

std::string FormatOrderResult(const QuerySetResult& r) {
  return r.IsInf() ? kInf : FormatMillis(r.avg_order_ms);
}

std::string FormatEnumResult(const QuerySetResult& r) {
  return r.IsInf() ? kInf : FormatMillis(r.avg_enum_ms);
}

}  // namespace cfl
