// Machine-checked concurrency contracts.
//
// PR 2's parallel enumerator rests on disciplines that used to live only in
// comments: "one Run at a time per pool", "a built Cpi is immutable", "every
// field shared across workers is lock-guarded or atomic". tsan catches the
// violations the tests happen to execute; Clang's Thread Safety Analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) proves every
// compiled path, before a scheduler ever has to get unlucky. This header is
// the whole substrate:
//
//   * CFL_CAPABILITY / CFL_GUARDED_BY / CFL_REQUIRES / CFL_ACQUIRE /
//     CFL_RELEASE / CFL_EXCLUDES ... — portable spellings of the TSA
//     attributes. They expand to `__attribute__((...))` under Clang and to
//     nothing elsewhere, so GCC builds are unaffected while any Clang build
//     (the `lint` CI job compiles the tree with
//     -Wthread-safety -Werror=thread-safety) checks the contracts.
//
//   * cfl::Mutex / cfl::MutexLock / cfl::CondVar — annotated wrappers over
//     the std primitives. Library code must use these instead of raw
//     std::mutex / std::condition_variable members (tools/cfl_lint rule
//     `raw-mutex`): a raw member is invisible to the analysis, so a missed
//     lock around a CFL_GUARDED_BY field would compile silently.
//
//   * CFL_IMMUTABLE_AFTER_BUILD — marker for classes whose instances are
//     frozen once construction/build completes (Graph, Cpi, PreparedQuery)
//     and may therefore be shared by reference across enumeration workers
//     with no synchronization at all. cfl_lint (rule `immutable-class`)
//     statically enforces what the marker promises: no non-const public
//     methods (constructors and assignment excepted — freezing happens at
//     build, not at birth), no `mutable` members, no `const_cast` to pierce
//     the contract.
//
// Header-only and dependency-free (like check.h) so the bottom-most
// libraries can take the marker without a link dependency.

#ifndef CFL_CHECK_THREAD_ANNOTATIONS_H_
#define CFL_CHECK_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__)
#define CFL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CFL_THREAD_ANNOTATION_(x)  // no-op: GCC/MSVC lack the analysis
#endif

// A type that acts as a capability (lockable); the string names the kind.
#define CFL_CAPABILITY(x) CFL_THREAD_ANNOTATION_(capability(x))

// An RAII type whose lifetime acquires/releases a capability.
#define CFL_SCOPED_CAPABILITY CFL_THREAD_ANNOTATION_(scoped_lockable)

// Field is protected by the given capability; reads and writes require it.
#define CFL_GUARDED_BY(x) CFL_THREAD_ANNOTATION_(guarded_by(x))

// Pointer field whose *pointee* is protected by the given capability.
#define CFL_PT_GUARDED_BY(x) CFL_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function acquires / releases the capability (or `this` if no argument).
#define CFL_ACQUIRE(...) \
  CFL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CFL_RELEASE(...) \
  CFL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CFL_TRY_ACQUIRE(...) \
  CFL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Caller must hold / must not hold the capability.
#define CFL_REQUIRES(...) \
  CFL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define CFL_EXCLUDES(...) CFL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Runtime-verified "the capability is held here" (for code the analysis
// cannot follow, e.g. callbacks re-entered under a caller's lock).
#define CFL_ASSERT_CAPABILITY(x) \
  CFL_THREAD_ANNOTATION_(assert_capability(x))

// Function returns a reference to the given capability.
#define CFL_RETURN_CAPABILITY(x) CFL_THREAD_ANNOTATION_(lock_returned(x))

// Last resort: skip analysis of one function. Not used anywhere in
// src/parallel/ — keep it that way; see DESIGN.md §7.
#define CFL_NO_THREAD_SAFETY_ANALYSIS \
  CFL_THREAD_ANNOTATION_(no_thread_safety_analysis)

// Marks a class frozen after construction/build: safe to share by reference
// across threads with no synchronization. Enforced by tools/cfl_lint
// (rule `immutable-class`); expands to a harmless declaration so it can sit
// first in the class body like a contract banner.
#define CFL_IMMUTABLE_AFTER_BUILD(class_name) \
  static_assert(true, #class_name " is immutable once built")

// Declares a cfl::Mutex member's position in the global lock hierarchy.
// Every Mutex member must carry one; tools/cfl_analyze (rule `lock-order`)
// extracts nested MutexLock acquisitions across all translation units and
// requires that locks only nest in strictly ascending level order, which
// makes acquisition cycles (and therefore lock-order deadlocks) impossible
// by construction. Levels are process-global — see the hierarchy table in
// DESIGN.md §9. Expands to nothing: it is an analyzer marker, not code.
//
//   cfl::Mutex mu_ CFL_LOCK_LEVEL(30);
#define CFL_LOCK_LEVEL(n)

// Declares what a std::atomic member is *for*, so tools/cfl_analyze (rule
// `atomic-intent`) can check every load/store/fetch_* use site's explicit
// memory_order against the declared intent:
//
//   counter — statistics/budget accumulator; all ops memory_order_relaxed.
//   flag    — stop/cancel signal with no data dependence; relaxed ops, or
//             store(release)/load(acquire) when it hands off anything.
//   publish — pointer/value publication; store(release), load(acquire),
//             RMW acq_rel (e.g. the kernels.h dispatch-table pointer).
//
// Defaulted (seq_cst) orderings are rejected as undeclared intent: if the
// code does not say what it needs, the analyzer cannot check it and the
// next reader cannot trust it. Expands to nothing.
//
//   std::atomic<bool> stop_ CFL_ATOMIC_INTENT(flag){false};
#define CFL_ATOMIC_INTENT(intent)

namespace cfl {

class CondVar;

// Annotated std::mutex. Prefer MutexLock for scoped acquisition; Lock()/
// Unlock() exist for the rare manually-paired section (and for MutexLock
// itself).
class CFL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CFL_ACQUIRE() { mu_.lock(); }
  void Unlock() CFL_RELEASE() { mu_.unlock(); }
  bool TryLock() CFL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // CondVar::Wait adopts the underlying handle

  std::mutex mu_;  // wrapped primitive; the annotated surface is this class
};

// RAII lock whose scope *is* the critical section, visible to the analysis.
class CFL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CFL_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CFL_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to cfl::Mutex. Wait() deliberately has no
// predicate overload: a predicate lambda is a separate function to the
// analysis and would read guarded fields outside any visible critical
// section, so callers write the standard `while (!cond) cv.Wait(mu);` loop
// inside their locked scope — which is exactly what the analysis can check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu` and blocks; reacquires before returning. May
  // wake spuriously — always re-check the condition in a loop.
  void Wait(Mutex& mu) CFL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cfl

#endif  // CFL_CHECK_THREAD_ANNOTATIONS_H_
