// Structural annotations read by the whole-program analyzer
// (tools/cfl_analyze.cc). Like the thread-safety macros, these make
// disciplines that used to live in comments machine-checkable — but where
// thread_annotations.h feeds Clang's analysis, these feed our own: each
// macro expands to nothing (or a harmless declaration) at compile time and
// is consumed purely by the analyzer's lexer.
//
//   CFL_SPAN_INTO(Owner)
//     Prefixes a span/string_view *class member* declaration and names the
//     type whose storage the view aliases:
//
//       CFL_SPAN_INTO(Cpi) std::span<const uint32_t> adjacent;
//
//     Rule `span-escape` forbids view-typed members outright — a member can
//     outlive a reused scratch buffer or a rebuilt arena — unless (a) the
//     enclosing class is itself CFL_IMMUTABLE_AFTER_BUILD, or (b) the
//     member carries this annotation AND the named owner type is marked
//     CFL_IMMUTABLE_AFTER_BUILD somewhere in the program. The owner lookup
//     is the whole-program part: naming a non-frozen type is an error, so
//     the annotation cannot rot into a blanket waiver.
//
//   CFL_POOL_SAFE
//     Trails a function declarator (before the body/semicolon) to assert
//     the function is safe to call from a ThreadPool worker body without
//     being declared noexcept — e.g. it allocates, and the sanctioned
//     InvokeBody boundary converting bad_alloc into a contextful CFL_CHECK
//     failure is preferable to std::terminate. Rule `worker-noexcept`
//     requires every src/parallel/-defined function called from a
//     ThreadPool::Run lambda to be noexcept or carry this marker; the
//     ThreadPool internals themselves (WorkerLoop, InvokeBody) must be
//     genuinely noexcept, since they run outside that boundary.
//
// Header-only and dependency-free (like check.h) so the bottom-most
// libraries can take the annotations without a link dependency.

#ifndef CFL_CHECK_ANALYZE_ANNOTATIONS_H_
#define CFL_CHECK_ANALYZE_ANNOTATIONS_H_

// Declares which CFL_IMMUTABLE_AFTER_BUILD type owns the storage a view
// member aliases. Expands to nothing; read by cfl_analyze (span-escape).
#define CFL_SPAN_INTO(owner)

// Asserts a non-noexcept function has been audited for the worker boundary.
// Expands to nothing; read by cfl_analyze (worker-noexcept).
#define CFL_POOL_SAFE

#endif  // CFL_CHECK_ANALYZE_ANNOTATIONS_H_
