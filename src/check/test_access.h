// Mutable backdoors into otherwise-immutable structures, for tests ONLY.
//
// The validator tests (tests/check_test.cc) must corrupt a known-good Graph
// or Cpi — unsort an adjacency list, point a CPI position out of range —
// and assert the validators catch it. Graph and Cpi are deliberately
// immutable after construction, so the corruption goes through these friend
// structs instead of loosening the production API.
//
// Never include this header outside of tests.

#ifndef CFL_CHECK_TEST_ACCESS_H_
#define CFL_CHECK_TEST_ACCESS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cpi/cpi.h"
#include "graph/graph.h"

namespace cfl {

struct GraphTestAccess {
  static std::vector<VertexId>& Neighbors(Graph& g) { return g.neighbors_; }
  static std::vector<Label>& Labels(Graph& g) { return g.labels_; }
  static std::vector<uint32_t>& Multiplicity(Graph& g) {
    return g.multiplicity_;
  }
  static uint64_t& EffectiveNumVertices(Graph& g) {
    return g.effective_num_vertices_;
  }
  static std::vector<uint32_t>& EffectiveDegree(Graph& g) {
    return g.effective_degree_;
  }
  static std::vector<VertexId>& LabelVertices(Graph& g) {
    return g.label_vertices_;
  }
  static std::vector<uint64_t>& LabelFrequency(Graph& g) {
    return g.label_frequency_;
  }
  static std::vector<Graph::LabelCount>& Nlf(Graph& g) { return g.nlf_; }
  static std::vector<uint32_t>& Mnd(Graph& g) { return g.mnd_; }
  static uint64_t& NumEdges(Graph& g) { return g.num_edges_; }
};

struct CpiTestAccess {
  // Arenas and their offset tables (see cpi.h for the layout). Tests mutate
  // entries in place; resizing an arena without fixing every downstream
  // start table invalidates other vertices' slices.
  static std::vector<VertexId>& CandArena(Cpi& cpi) { return cpi.cand_arena_; }
  static std::vector<uint64_t>& CandOffsets(Cpi& cpi) {
    return cpi.cand_offsets_;
  }
  static std::vector<uint32_t>& AdjOffArena(Cpi& cpi) {
    return cpi.adj_off_arena_;
  }
  static std::vector<uint64_t>& AdjOffStart(Cpi& cpi) {
    return cpi.adj_off_start_;
  }
  static std::vector<uint32_t>& AdjEntryArena(Cpi& cpi) {
    return cpi.adj_entry_arena_;
  }
  static std::vector<uint64_t>& AdjEntryStart(Cpi& cpi) {
    return cpi.adj_entry_start_;
  }

  // Mutable view of u's candidate slice.
  // cfl-lint: allow(span-escape) deliberate test-only pierce of a frozen Cpi
  static std::span<VertexId> Candidates(Cpi& cpi, VertexId u) {
    return {cpi.cand_arena_.data() + cpi.cand_offsets_[u],
            cpi.cand_arena_.data() + cpi.cand_offsets_[u + 1]};
  }
  // Mutable views of u's adjacency offset / entry slices.
  // cfl-lint: allow(span-escape) deliberate test-only pierce of a frozen Cpi
  static std::span<uint32_t> AdjOffsets(Cpi& cpi, VertexId u) {
    return {cpi.adj_off_arena_.data() + cpi.adj_off_start_[u],
            cpi.adj_off_arena_.data() + cpi.adj_off_start_[u + 1]};
  }
  // cfl-lint: allow(span-escape) deliberate test-only pierce of a frozen Cpi
  static std::span<uint32_t> AdjEntries(Cpi& cpi, VertexId u) {
    return {cpi.adj_entry_arena_.data() + cpi.adj_entry_start_[u],
            cpi.adj_entry_arena_.data() + cpi.adj_entry_start_[u + 1]};
  }
};

}  // namespace cfl

#endif  // CFL_CHECK_TEST_ACCESS_H_
