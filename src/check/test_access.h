// Mutable backdoors into otherwise-immutable structures, for tests ONLY.
//
// The validator tests (tests/check_test.cc) must corrupt a known-good Graph
// or Cpi — unsort an adjacency list, point a CPI position out of range —
// and assert the validators catch it. Graph and Cpi are deliberately
// immutable after construction, so the corruption goes through these friend
// structs instead of loosening the production API.
//
// Never include this header outside of tests.

#ifndef CFL_CHECK_TEST_ACCESS_H_
#define CFL_CHECK_TEST_ACCESS_H_

#include <cstdint>
#include <vector>

#include "cpi/cpi.h"
#include "graph/graph.h"

namespace cfl {

struct GraphTestAccess {
  static std::vector<VertexId>& Neighbors(Graph& g) { return g.neighbors_; }
  static std::vector<Label>& Labels(Graph& g) { return g.labels_; }
  static std::vector<uint32_t>& Multiplicity(Graph& g) {
    return g.multiplicity_;
  }
  static uint64_t& EffectiveNumVertices(Graph& g) {
    return g.effective_num_vertices_;
  }
  static std::vector<uint32_t>& EffectiveDegree(Graph& g) {
    return g.effective_degree_;
  }
  static std::vector<VertexId>& LabelVertices(Graph& g) {
    return g.label_vertices_;
  }
  static std::vector<uint64_t>& LabelFrequency(Graph& g) {
    return g.label_frequency_;
  }
  static std::vector<Graph::LabelCount>& Nlf(Graph& g) { return g.nlf_; }
  static std::vector<uint32_t>& Mnd(Graph& g) { return g.mnd_; }
  static uint64_t& NumEdges(Graph& g) { return g.num_edges_; }
};

struct CpiTestAccess {
  static std::vector<std::vector<VertexId>>& Candidates(Cpi& cpi) {
    return cpi.candidates_;
  }
  static std::vector<std::vector<uint32_t>>& AdjOffsets(Cpi& cpi) {
    return cpi.adj_offsets_;
  }
  static std::vector<std::vector<uint32_t>>& Adj(Cpi& cpi) {
    return cpi.adj_;
  }
};

}  // namespace cfl

#endif  // CFL_CHECK_TEST_ACCESS_H_
