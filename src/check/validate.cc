#include "check/validate.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "check/env.h"

#include "decomp/two_core.h"

namespace cfl {

namespace {

template <typename... Args>
ValidationResult Fail(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return ValidationResult::Fail(os.str());
}

// True iff `values` is strictly ascending (sorted and duplicate-free).
template <typename Range>
bool StrictlyAscending(const Range& values) {
  return std::adjacent_find(values.begin(), values.end(),
                            [](auto a, auto b) { return a >= b; }) ==
         values.end();
}

}  // namespace

// ---- ValidateGraph --------------------------------------------------------

ValidationResult ValidateGraph(const Graph& g) {
  const uint32_t n = g.NumVertices();

  for (VertexId v = 0; v < n; ++v) {
    if (g.label(v) >= g.NumLabels()) {
      return Fail("graph: label(", v, ") = ", g.label(v),
                  " out of range [0, ", g.NumLabels(), ")");
    }
  }

  // Multiplicities and effective vertex count.
  uint64_t effective_n = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (g.multiplicity(v) == 0) {
      return Fail("graph: multiplicity(", v, ") = 0; must be >= 1");
    }
    effective_n += g.multiplicity(v);
  }
  if (g.EffectiveNumVertices() != effective_n) {
    return Fail("graph: EffectiveNumVertices() = ", g.EffectiveNumVertices(),
                " but multiplicities sum to ", effective_n);
  }

  // Adjacency: (label, id) sortedness, range, symmetry, self-loop rules,
  // edge count. Symmetry uses a linear find so it stays meaningful even when
  // the other list's ordering is corrupted.
  uint64_t arcs = 0;
  uint64_t loops = 0;
  for (VertexId v = 0; v < n; ++v) {
    std::span<const VertexId> nb = g.Neighbors(v);
    arcs += nb.size();
    for (size_t i = 0; i < nb.size(); ++i) {
      if (nb[i] >= n) {
        return Fail("graph: neighbor ", nb[i], " of vertex ", v,
                    " out of range [0, ", n, ")");
      }
      if (i > 0 && (g.label(nb[i]) < g.label(nb[i - 1]) ||
                    (g.label(nb[i]) == g.label(nb[i - 1]) &&
                     nb[i] <= nb[i - 1]))) {
        return Fail("graph: adjacency of vertex ", v,
                    " not strictly ascending by (label, id) at index ", i,
                    " (", nb[i - 1], " then ", nb[i], ")");
      }
    }
    for (VertexId w : nb) {
      if (w == v) {
        ++loops;
        if (g.multiplicity(v) < 2) {
          return Fail("graph: self-loop at vertex ", v, " with multiplicity ",
                      g.multiplicity(v),
                      "; self-loops mark compressed clique classes and "
                      "require multiplicity >= 2");
        }
        continue;
      }
      std::span<const VertexId> back = g.Neighbors(w);
      if (std::find(back.begin(), back.end(), v) == back.end()) {
        return Fail("graph: asymmetric adjacency: ", w, " in N(", v,
                    ") but ", v, " not in N(", w, ")");
      }
    }
  }
  const uint64_t expected_edges = (arcs - loops) / 2 + loops;
  if (g.NumEdges() != expected_edges) {
    return Fail("graph: NumEdges() = ", g.NumEdges(),
                " but adjacency lists imply ", expected_edges);
  }

  // Label-run index: per vertex, runs must mark exactly the label boundaries
  // of the (label, id)-sorted adjacency.
  for (VertexId v = 0; v < n; ++v) {
    std::span<const VertexId> nb = g.Neighbors(v);
    std::span<const Graph::LabelRun> runs = g.AdjacencyLabelRuns(v);
    size_t r = 0;
    for (size_t i = 0; i < nb.size(); ++i) {
      if (i == 0 || g.label(nb[i]) != g.label(nb[i - 1])) {
        if (r >= runs.size() || runs[r].label != g.label(nb[i]) ||
            runs[r].begin != i) {
          return Fail("graph: label-run index of vertex ", v,
                      " disagrees with adjacency at entry ", i, " (label ",
                      g.label(nb[i]), ")");
        }
        ++r;
      }
    }
    if (r != runs.size()) {
      return Fail("graph: label-run index of vertex ", v, " has ",
                  runs.size(), " runs; adjacency implies ", r);
    }
  }

  // Hub-probe rows: membership must match the threshold, and each row must
  // encode exactly the vertex's neighbor set.
  if (g.HasHubIndex()) {
    for (VertexId v = 0; v < n; ++v) {
      const bool should = g.StructuralDegree(v) >= g.HubDegreeThreshold();
      if (g.IsHub(v) != should) {
        return Fail("graph: vertex ", v, " with structural degree ",
                    g.StructuralDegree(v), " is ",
                    g.IsHub(v) ? "" : "not ", "a hub but the threshold is ",
                    g.HubDegreeThreshold());
      }
      if (!g.IsHub(v)) continue;
      std::span<const VertexId> nb = g.Neighbors(v);
      size_t i = 0;
      std::vector<VertexId> sorted(nb.begin(), nb.end());
      std::sort(sorted.begin(), sorted.end());
      for (VertexId w = 0; w < n; ++w) {
        const bool in_adj = i < sorted.size() && sorted[i] == w;
        if (in_adj) ++i;
        if (g.HubRowBit(v, w) != in_adj) {
          return Fail("graph: hub row of vertex ", v, " disagrees with its ",
                      "adjacency at vertex ", w);
        }
      }
    }
  }

  // Effective degrees and max-neighbor-degree, recomputed per the builder's
  // contract (a self-loop contributes the other multiplicity(v)-1 members).
  for (VertexId v = 0; v < n; ++v) {
    uint64_t d = 0;
    uint32_t mnd = 0;
    for (VertexId w : g.Neighbors(v)) {
      d += (w == v) ? g.multiplicity(v) - 1 : g.multiplicity(w);
      mnd = std::max(mnd, g.degree(w));
    }
    if (g.degree(v) != d) {
      return Fail("graph: degree(", v, ") = ", g.degree(v),
                  " but adjacency implies effective degree ", d);
    }
    if (g.MaxNeighborDegree(v) != mnd) {
      return Fail("graph: MaxNeighborDegree(", v, ") = ",
                  g.MaxNeighborDegree(v), " but neighbors imply ", mnd);
    }
  }

  // Label index.
  uint64_t indexed = 0;
  for (Label l = 0; l < g.NumLabels(); ++l) {
    std::span<const VertexId> vs = g.VerticesWithLabel(l);
    indexed += vs.size();
    uint64_t freq = 0;
    for (size_t i = 0; i < vs.size(); ++i) {
      if (vs[i] >= n) {
        return Fail("graph: label index entry ", vs[i], " for label ", l,
                    " out of range");
      }
      if (g.label(vs[i]) != l) {
        return Fail("graph: vertex ", vs[i], " listed under label ", l,
                    " but has label ", g.label(vs[i]));
      }
      if (i > 0 && vs[i] <= vs[i - 1]) {
        return Fail("graph: label index for label ", l,
                    " not strictly ascending at index ", i);
      }
      freq += g.multiplicity(vs[i]);
    }
    if (g.LabelFrequency(l) != freq) {
      return Fail("graph: LabelFrequency(", l, ") = ", g.LabelFrequency(l),
                  " but members' multiplicities sum to ", freq);
    }
  }
  if (indexed != n) {
    return Fail("graph: label index covers ", indexed, " of ", n,
                " vertices");
  }

  // NLF runs: sorted by label, positive effective counts, exact.
  for (VertexId v = 0; v < n; ++v) {
    std::span<const Graph::LabelCount> runs = g.NeighborLabelCounts(v);
    std::map<Label, uint32_t> expected;
    for (VertexId w : g.Neighbors(v)) {
      uint32_t c = (w == v) ? g.multiplicity(v) - 1 : g.multiplicity(w);
      if (c > 0) expected[g.label(w)] += c;
    }
    if (runs.size() != expected.size()) {
      return Fail("graph: NLF of vertex ", v, " has ", runs.size(),
                  " runs; adjacency implies ", expected.size());
    }
    auto it = expected.begin();
    for (size_t i = 0; i < runs.size(); ++i, ++it) {
      if (runs[i].label != it->first || runs[i].count != it->second) {
        return Fail("graph: NLF of vertex ", v, " run ", i, " is (label ",
                    runs[i].label, ", count ", runs[i].count,
                    "); adjacency implies (label ", it->first, ", count ",
                    it->second, ")");
      }
    }
  }

  return ValidationResult::Ok();
}

// ---- ValidateBfsTree ------------------------------------------------------

ValidationResult ValidateBfsTree(const Graph& q, const BfsTree& tree) {
  const uint32_t n = q.NumVertices();
  if (tree.parent.size() != n || tree.level.size() != n ||
      tree.children.size() != n || tree.non_tree_neighbors.size() != n) {
    return Fail("bfs tree: per-vertex array sizes disagree with |V(q)| = ",
                n);
  }
  if (n == 0) return ValidationResult::Ok();
  if (tree.root >= n) return Fail("bfs tree: root ", tree.root, " invalid");
  if (tree.parent[tree.root] != kInvalidVertex) {
    return Fail("bfs tree: root ", tree.root, " has a parent");
  }
  if (tree.level[tree.root] != 1) {
    return Fail("bfs tree: root level is ", tree.level[tree.root],
                "; the paper numbers levels from 1");
  }

  uint64_t tree_edges = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (v == tree.root) continue;
    const VertexId p = tree.parent[v];
    if (p >= n) {
      return Fail("bfs tree: parent of ", v, " is invalid (", p, ")");
    }
    if (!q.HasEdge(v, p)) {
      return Fail("bfs tree: tree edge (", p, ", ", v,
                  ") is not a query edge");
    }
    if (tree.level[v] != tree.level[p] + 1) {
      return Fail("bfs tree: level(", v, ") = ", tree.level[v],
                  " but parent ", p, " has level ", tree.level[p]);
    }
    ++tree_edges;
  }

  // Children lists mirror the parent array, ascending.
  for (VertexId u = 0; u < n; ++u) {
    std::vector<VertexId> expected;
    for (VertexId v = 0; v < n; ++v) {
      if (v != tree.root && tree.parent[v] == u) expected.push_back(v);
    }
    if (tree.children[u] != expected) {
      return Fail("bfs tree: children of ", u,
                  " disagree with the parent array");
    }
  }

  // `order` is a level-monotone permutation and `levels` buckets it.
  if (tree.order.size() != n) {
    return Fail("bfs tree: order has ", tree.order.size(), " of ", n,
                " vertices");
  }
  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < tree.order.size(); ++i) {
    VertexId v = tree.order[i];
    if (v >= n || seen[v]) {
      return Fail("bfs tree: order entry ", i, " (vertex ", v,
                  ") is out of range or repeated");
    }
    seen[v] = true;
    if (i > 0 && tree.level[v] < tree.level[tree.order[i - 1]]) {
      return Fail("bfs tree: order is not level-monotone at index ", i);
    }
  }
  size_t cursor = 0;
  for (uint32_t lev = 0; lev < tree.NumLevels(); ++lev) {
    for (VertexId v : tree.levels[lev]) {
      if (cursor >= n || tree.order[cursor] != v) {
        return Fail("bfs tree: levels[", lev,
                    "] is not the matching slice of `order`");
      }
      if (tree.level[v] != lev + 1) {
        return Fail("bfs tree: vertex ", v, " in levels[", lev,
                    "] has level ", tree.level[v]);
      }
      ++cursor;
    }
  }
  if (cursor != n) {
    return Fail("bfs tree: levels cover ", cursor, " of ", n, " vertices");
  }

  // Non-tree edges: real query edges, not tree edges, level gap <= 1,
  // classified correctly, and collectively exhaustive.
  for (const NonTreeEdge& e : tree.non_tree_edges) {
    if (e.u >= n || e.v >= n || !q.HasEdge(e.u, e.v)) {
      return Fail("bfs tree: non-tree edge (", e.u, ", ", e.v,
                  ") is not a query edge");
    }
    if (tree.IsTreeEdge(e.u, e.v)) {
      return Fail("bfs tree: (", e.u, ", ", e.v,
                  ") recorded as non-tree but is a tree edge");
    }
    if (tree.level[e.u] > tree.level[e.v] ||
        tree.level[e.v] - tree.level[e.u] > 1) {
      return Fail("bfs tree: non-tree edge (", e.u, ", ", e.v,
                  ") has levels ", tree.level[e.u], " and ", tree.level[e.v],
                  "; BFS allows a gap of at most one with u shallower");
    }
    if (e.same_level != (tree.level[e.u] == tree.level[e.v])) {
      return Fail("bfs tree: non-tree edge (", e.u, ", ", e.v,
                  ") misclassified as ", e.same_level ? "S-NTE" : "C-NTE");
    }
  }
  if (q.NumEdges() != tree_edges + tree.non_tree_edges.size()) {
    return Fail("bfs tree: ", tree_edges, " tree edges + ",
                tree.non_tree_edges.size(), " non-tree edges != |E(q)| = ",
                q.NumEdges());
  }
  uint64_t nt_entries = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : tree.non_tree_neighbors[v]) {
      ++nt_entries;
      if (w >= n || !q.HasEdge(v, w) || tree.IsTreeEdge(v, w)) {
        return Fail("bfs tree: non_tree_neighbors[", v, "] entry ", w,
                    " is not a non-tree query edge");
      }
    }
  }
  if (nt_entries != 2 * tree.non_tree_edges.size()) {
    return Fail("bfs tree: non_tree_neighbors holds ", nt_entries,
                " entries; expected both directions of ",
                tree.non_tree_edges.size(), " non-tree edges");
  }

  return ValidationResult::Ok();
}

// ---- ValidateCpi ----------------------------------------------------------

ValidationResult ValidateCpi(const Graph& q, const Graph& data,
                             const Cpi& cpi) {
  const uint32_t n = q.NumVertices();
  if (cpi.NumQueryVertices() != n) {
    return Fail("cpi: built for ", cpi.NumQueryVertices(),
                " query vertices, query has ", n);
  }
  if (ValidationResult tree_ok = ValidateBfsTree(q, cpi.tree()); !tree_ok) {
    return Fail("cpi: ", tree_ok.error);
  }
  const BfsTree& tree = cpi.tree();

  // Candidate sets: ascending, in range, label-consistent.
  for (VertexId u = 0; u < n; ++u) {
    std::span<const VertexId> cands = cpi.Candidates(u);
    if (!StrictlyAscending(cands)) {
      return Fail("cpi: candidates of query vertex ", u,
                  " not strictly ascending");
    }
    for (VertexId v : cands) {
      if (v >= data.NumVertices()) {
        return Fail("cpi: candidate ", v, " of query vertex ", u,
                    " out of range");
      }
      if (data.label(v) != q.label(u)) {
        return Fail("cpi: candidate ", v, " of query vertex ", u,
                    " has label ", data.label(v), ", query wants ",
                    q.label(u));
      }
    }
  }

  if (!cpi.AdjacencyOffsets(tree.root).empty() ||
      !cpi.AdjacencyEntries(tree.root).empty()) {
    return Fail("cpi: root ", tree.root, " carries adjacency lists");
  }

  // Per tree edge (p, u): offsets shape, and each block N_u^{p}(v_p) must be
  // *exactly* the positions of u's candidates adjacent to v_p in the data
  // graph, ascending. `pos_of` maps data vertex -> position in u.C + 1.
  std::vector<uint32_t> pos_of(data.NumVertices(), 0);
  for (VertexId u : tree.order) {
    if (u == tree.root) continue;
    const VertexId p = tree.parent[u];
    std::span<const VertexId> cands = cpi.Candidates(u);
    std::span<const VertexId> parent_cands = cpi.Candidates(p);
    std::span<const uint32_t> offsets = cpi.AdjacencyOffsets(u);
    std::span<const uint32_t> entries = cpi.AdjacencyEntries(u);

    if (offsets.size() != parent_cands.size() + 1 || offsets.front() != 0 ||
        offsets.back() != entries.size() ||
        !std::is_sorted(offsets.begin(), offsets.end())) {
      return Fail("cpi: adjacency offsets of query vertex ", u,
                  " do not partition its ", entries.size(),
                  " entries into ", parent_cands.size(), " blocks");
    }
    if (entries.size() > 2 * data.NumEdges()) {
      return Fail("cpi: tree edge (", p, ", ", u, ") stores ",
                  entries.size(), " adjacency entries, exceeding the 2|E(G)|",
                  " = ", 2 * data.NumEdges(), " bound");
    }

    for (uint32_t i = 0; i < cands.size(); ++i) pos_of[cands[i]] = i + 1;
    for (uint32_t pp = 0; pp < parent_cands.size(); ++pp) {
      const VertexId vp = parent_cands[pp];
      std::span<const uint32_t> block = cpi.AdjacentPositions(u, pp);
      // Data adjacency is ascending and candidate positions are id-monotone,
      // so the expected block comes out ascending.
      size_t k = 0;
      for (VertexId w : data.Neighbors(vp)) {
        if (pos_of[w] == 0) continue;
        const uint32_t want = pos_of[w] - 1;
        if (k >= block.size() || block[k] != want) {
          for (VertexId c : cands) pos_of[c] = 0;
          return Fail("cpi: N_", u, "^", p, "(", vp, ") block ",
                      k < block.size()
                          ? "diverges from the data graph at index "
                          : "misses data-graph neighbor at index ",
                      k, " (expected position ", want, " = data vertex ", w,
                      ")");
        }
        ++k;
      }
      if (k != block.size()) {
        const uint32_t extra = block[k];
        ValidationResult r = Fail(
            "cpi: N_", u, "^", p, "(", vp, ") lists position ", extra,
            extra < cands.size()
                ? " without a matching data-graph edge"
                : " out of range of the candidate set");
        for (VertexId c : cands) pos_of[c] = 0;
        return r;
      }
    }
    for (VertexId c : cands) pos_of[c] = 0;
  }

  return ValidationResult::Ok();
}

// ---- ValidateDecomposition ------------------------------------------------

ValidationResult ValidateDecomposition(const Graph& q,
                                       const CflDecomposition& d) {
  const uint32_t n = q.NumVertices();
  if (d.klass.size() != n) {
    return Fail("decomposition: klass has ", d.klass.size(),
                " entries for ", n, " query vertices");
  }

  // The three lists partition V(q) and agree with klass.
  if (d.core.size() + d.forest.size() + d.leaf.size() != n) {
    return Fail("decomposition: core/forest/leaf sizes ", d.core.size(),
                "+", d.forest.size(), "+", d.leaf.size(),
                " do not partition ", n, " vertices");
  }
  struct Part {
    const std::vector<VertexId>* list;
    VertexClass klass;
    const char* name;
  };
  for (const Part& part :
       {Part{&d.core, VertexClass::kCore, "core"},
        Part{&d.forest, VertexClass::kForest, "forest"},
        Part{&d.leaf, VertexClass::kLeaf, "leaf"}}) {
    if (!StrictlyAscending(*part.list)) {
      return Fail("decomposition: ", part.name,
                  " list not strictly ascending");
    }
    for (VertexId v : *part.list) {
      if (v >= n) {
        return Fail("decomposition: ", part.name, " entry ", v,
                    " out of range");
      }
      if (d.klass[v] != part.klass) {
        return Fail("decomposition: vertex ", v, " listed in ", part.name,
                    " but klass disagrees");
      }
    }
  }

  // The core-set is exactly the 2-core (Lemma 3.1), or exactly the root
  // when q is a tree and the 2-core is empty.
  std::vector<bool> in_core = TwoCoreMembership(q);
  bool core_empty = std::find(in_core.begin(), in_core.end(), true) ==
                    in_core.end();
  if (core_empty != d.QueryIsTree()) {
    return Fail("decomposition: query_is_tree = ", d.QueryIsTree(),
                " but the 2-core is ", core_empty ? "empty" : "non-empty");
  }
  if (core_empty) {
    if (d.core.size() != 1) {
      return Fail("decomposition: tree query must have a singleton core-set,"
                  " got ", d.core.size(), " vertices");
    }
  } else {
    for (VertexId v = 0; v < n; ++v) {
      if (in_core[v] != (d.klass[v] == VertexClass::kCore)) {
        return Fail("decomposition: vertex ", v,
                    in_core[v] ? " is in the 2-core but not classified core"
                               : " classified core but not in the 2-core");
      }
    }
  }

  // Outside the core, leaves are exactly the degree-one vertices.
  for (VertexId v = 0; v < n; ++v) {
    if (d.klass[v] == VertexClass::kCore) continue;
    const bool degree_one = q.StructuralDegree(v) == 1;
    if (degree_one != (d.klass[v] == VertexClass::kLeaf)) {
      return Fail("decomposition: non-core vertex ", v, " has degree ",
                  q.StructuralDegree(v), " but is classified ",
                  d.klass[v] == VertexClass::kLeaf ? "leaf" : "forest");
    }
  }

  // Connections: exactly the core vertices with a non-core neighbor.
  std::vector<VertexId> expected;
  for (VertexId v : d.core) {
    for (VertexId w : q.Neighbors(v)) {
      if (d.klass[w] != VertexClass::kCore) {
        expected.push_back(v);
        break;
      }
    }
  }
  if (d.connections != expected) {
    return Fail("decomposition: connection vertices disagree with the core "
                "vertices that have non-core neighbors (got ",
                d.connections.size(), ", expected ", expected.size(), ")");
  }

  return ValidationResult::Ok();
}

// ---- ValidateNecClasses ---------------------------------------------------

ValidationResult ValidateNecClasses(
    const Graph& g, const std::vector<std::vector<VertexId>>& classes) {
  const uint32_t n = g.NumVertices();
  std::vector<bool> seen(n, false);
  VertexId prev_first = 0;
  std::map<std::pair<Label, std::vector<VertexId>>, size_t> signatures;

  for (size_t c = 0; c < classes.size(); ++c) {
    const std::vector<VertexId>& members = classes[c];
    if (members.empty()) return Fail("nec: class ", c, " is empty");
    if (!StrictlyAscending(members)) {
      return Fail("nec: class ", c, " members not strictly ascending");
    }
    if (c > 0 && members.front() <= prev_first) {
      return Fail("nec: classes not ordered by first member at class ", c);
    }
    prev_first = members.front();

    const VertexId rep = members.front();
    if (rep >= n) return Fail("nec: vertex ", rep, " out of range");
    std::span<const VertexId> rep_nb = g.Neighbors(rep);
    for (VertexId v : members) {
      if (v >= n) return Fail("nec: vertex ", v, " out of range");
      if (seen[v]) return Fail("nec: vertex ", v, " in two classes");
      seen[v] = true;
      if (g.label(v) != g.label(rep)) {
        return Fail("nec: class ", c, " mixes labels ", g.label(rep),
                    " and ", g.label(v));
      }
      std::span<const VertexId> nb = g.Neighbors(v);
      if (!std::equal(nb.begin(), nb.end(), rep_nb.begin(), rep_nb.end())) {
        return Fail("nec: vertices ", rep, " and ", v, " share class ", c,
                    " but have different neighborhoods");
      }
    }

    // Maximality: no other class may share (label, neighborhood).
    std::pair<Label, std::vector<VertexId>> sig{
        g.label(rep), std::vector<VertexId>(rep_nb.begin(), rep_nb.end())};
    auto [it, inserted] = signatures.emplace(std::move(sig), c);
    if (!inserted) {
      return Fail("nec: classes ", it->second, " and ", c,
                  " are equivalent and should be merged");
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    if (!seen[v]) return Fail("nec: vertex ", v, " missing from partition");
  }
  return ValidationResult::Ok();
}

// ---- ValidateEmbedding ----------------------------------------------------

ValidationResult ValidateEmbedding(const Graph& q, const Graph& data,
                                   const std::vector<VertexId>& mapping) {
  const uint32_t n = q.NumVertices();
  if (mapping.size() != n) {
    return Fail("embedding: maps ", mapping.size(), " of ", n,
                " query vertices");
  }

  std::unordered_map<VertexId, uint32_t> uses;
  for (VertexId u = 0; u < n; ++u) {
    const VertexId v = mapping[u];
    if (v == kInvalidVertex || v >= data.NumVertices()) {
      return Fail("embedding: query vertex ", u, " unmatched or out of "
                  "range");
    }
    if (data.label(v) != q.label(u)) {
      return Fail("embedding: query vertex ", u, " (label ", q.label(u),
                  ") mapped to data vertex ", v, " (label ", data.label(v),
                  ")");
    }
    if (++uses[v] > data.multiplicity(v)) {
      return Fail("embedding: data vertex ", v, " absorbs ", uses[v],
                  " query vertices but has multiplicity ",
                  data.multiplicity(v));
    }
  }

  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w : q.Neighbors(u)) {
      if (w <= u) continue;  // each undirected query edge once
      // Co-mapped adjacent query vertices need a self-loop (clique class).
      if (!data.HasEdge(mapping[u], mapping[w])) {
        return Fail("embedding: query edge (", u, ", ", w,
                    ") has no data edge (", mapping[u], ", ", mapping[w],
                    ")");
      }
    }
  }

  return ValidationResult::Ok();
}

// ---- DebugValidationEnabled -----------------------------------------------

namespace check {

bool DebugValidationEnabled() {
#ifdef CFL_FORCE_VALIDATE
  return true;
#else
  static const bool enabled = [] {
    // Reads the immutable process-env snapshot (check/env.h), never the
    // live environment: safe on query paths of long-lived processes.
    const char* v = env::Get("CFL_VALIDATE");
    return v != nullptr && v[0] != '0';
  }();
  return enabled;
#endif
}

}  // namespace check
}  // namespace cfl
