// Structural validators for the matcher's auxiliary data structures.
//
// CFL-Match's enumeration never probes the data graph for tree edges — it
// trusts the CPI's candidate sets and adjacency positions, and it trusts the
// core/forest/leaf partition to postpone the right Cartesian products. A
// single off-by-one in any of these yields *wrong embedding counts*, not
// crashes. These validators machine-check each structure's full contract
// against its definition (graph_builder.cc, cpi_builder.cc,
// cfl_decomposition.cc document the contracts being checked).
//
// Each validator returns the first violation it finds with enough context
// to localize it; tests corrupt known-good structures and assert the
// violation is caught, and `CflMatcher` re-checks every structure it builds
// when debug validation is enabled (CFL_VALIDATE=1 in the environment, or
// the CFL_FORCE_VALIDATE build option).
//
// Complexity: all validators are O(structure size · log) or better — cheap
// enough for tests and debug runs, not for production hot paths.

#ifndef CFL_CHECK_VALIDATE_H_
#define CFL_CHECK_VALIDATE_H_

#include <string>
#include <vector>

#include "cpi/cpi.h"
#include "decomp/bfs_tree.h"
#include "decomp/cfl_decomposition.h"
#include "graph/graph.h"

namespace cfl {

// First violation found, or ok. `explicit operator bool` reads as "valid".
struct ValidationResult {
  bool ok = true;
  std::string error;

  explicit operator bool() const { return ok; }

  static ValidationResult Ok() { return {}; }
  static ValidationResult Fail(std::string message) {
    return {false, std::move(message)};
  }
};

// Full CSR-consistency check of a Graph (plain or compressed):
//   * offsets monotone and bounded; adjacency sorted strictly ascending,
//     entries in range; adjacency symmetric; edge count consistent;
//   * self-loops only at vertices with multiplicity >= 2 (compressed clique
//     classes); multiplicities >= 1; effective vertex count consistent;
//   * label index: dense labels, per-label vertex lists sorted and exact,
//     label frequencies equal to summed multiplicities;
//   * NLF runs sorted by label with positive effective counts matching the
//     adjacency; effective degrees and mnd() recomputed and compared.
ValidationResult ValidateGraph(const Graph& g);

// Checks that `tree` is a structurally consistent BFS tree of `q`: parent
// pointers are query edges, levels increase by one along them and differ by
// at most one across non-tree edges, children/levels/order agree with the
// parent array, and every vertex is reached exactly once.
ValidationResult ValidateBfsTree(const Graph& q, const BfsTree& tree);

// Checks a CPI built for query `q` over data graph `data`:
//   * per query vertex: candidates sorted strictly ascending, in range, and
//     label-consistent with q;
//   * per non-root u with parent p: adjacency offsets cover exactly
//     |C(p)| blocks; every stored position is in range of C(u); each block
//     is sorted, duplicate-free, and *exactly* the set of positions of
//     candidates of u adjacent in `data` to the parent candidate (both
//     soundness and completeness — a missing entry silently drops
//     embeddings, which is the bug class this exists to catch);
//   * the paper's size bound: |C(u)| <= |V(G)| and per tree edge at most
//     2|E(G)| adjacency entries (O(|E(G)| x |V(q)|) total).
ValidationResult ValidateCpi(const Graph& q, const Graph& data,
                             const Cpi& cpi);

// Checks a core-forest-leaf decomposition of `q`:
//   * klass array and the core/forest/leaf lists agree, each list sorted,
//     the three lists partition V(q);
//   * the core-set is exactly the 2-core (recomputed independently by
//     peeling), or exactly one root vertex when q is a tree;
//   * the leaf-set is exactly the degree-one vertices outside the core;
//   * connections are exactly the core vertices with a non-core neighbor.
ValidationResult ValidateDecomposition(const Graph& q,
                                       const CflDecomposition& d);

// Checks that `classes` is a genuine NEC partition of V(g): classes and
// members ascending, every vertex in exactly one class, all members of a
// class share label and *identical* neighbor sets, and the partition is
// maximal (no two classes could merge).
ValidationResult ValidateNecClasses(
    const Graph& g, const std::vector<std::vector<VertexId>>& classes);

// Checks that `mapping` (query vertex -> data vertex; same layout as
// cfl::Embedding) is a subgraph-isomorphism embedding of `q` in `data`:
// complete, in range, label-preserving, edge-preserving, and injective —
// where on compressed data graphs a hypervertex may absorb up to
// multiplicity(v) query vertices, and two query vertices co-mapped to the
// same hypervertex may only be adjacent if it carries a self-loop.
ValidationResult ValidateEmbedding(const Graph& q, const Graph& data,
                                   const std::vector<VertexId>& mapping);

namespace check {

// True when debug validation is requested: compiled in via the
// CFL_FORCE_VALIDATE option, or CFL_VALIDATE=1/true in the environment
// (read once). CflMatcher consults this to re-check the structures it
// builds; see cfl_match.cc.
bool DebugValidationEnabled();

}  // namespace check
}  // namespace cfl

#endif  // CFL_CHECK_VALIDATE_H_
