// Checked integer narrowing for the index hot paths.
//
// The CPI arenas and offset tables are 64-bit, but the enumeration cursors
// and candidate positions are deliberately 32-bit (half the cache traffic
// on the descent). Every 64→32 crossing is therefore a potential silent
// truncation — exactly the latent bug class the CheckedCandidateCount fix
// in the parallel-enumeration PR closed. This header is the single
// sanctioned crossing point:
//
//   uint32_t n = CheckedU32(cand_.size());
//
// CFL_DCHECK-guarded: debug/sanitizer builds fail loudly with the value;
// release builds compile to the bare cast. tools/cfl_analyze rule
// `narrowing` flags any `static_cast<uint32_t>` of a size/offset expression
// in src/cpi, src/match, or src/parallel that bypasses these helpers, so
// new crossings cannot creep in unchecked.
//
// Header-only and dependency-light (check.h only) so the bottom-most
// libraries can use it without a link dependency.

#ifndef CFL_CHECK_NARROW_H_
#define CFL_CHECK_NARROW_H_

#include <cstdint>
#include <limits>

#include "check/check.h"

namespace cfl {

// Narrows a size/offset to the 32-bit cursor domain, failing loudly (under
// CFL_DCHECK) on values that do not fit instead of wrapping.
inline uint32_t CheckedU32(uint64_t value) {
  CFL_DCHECK_LE(value, std::numeric_limits<uint32_t>::max())
      << " — 64-bit index does not fit the uint32 cursor domain";
  return static_cast<uint32_t>(value);
}

}  // namespace cfl

#endif  // CFL_CHECK_NARROW_H_
