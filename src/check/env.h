// Process-environment snapshot for long-lived processes.
//
// `std::getenv` is not safe to call once worker threads exist (another
// thread calling setenv/putenv may invalidate the returned pointer), which
// is exactly the situation a resident server is in: config knobs are read
// on query paths long after startup. The fix is structural: every CFL_*
// knob is captured ONCE into an immutable snapshot, and all later reads hit
// the snapshot.
//
// The capture scans `environ` directly instead of calling getenv per name,
// so no mt-unsafe function is involved at all; the snapshot is built inside
// a function-local static (thread-safe magic-statics) on first access.
// Call `Capture()` explicitly at the top of main() in resident processes to
// pin the capture point before any thread is spawned; short-lived CLIs may
// rely on the lazy first-read capture.
//
// This lives in the dependency-free `check` base module (not src/harness)
// because the validate gate — module `validate`, which sits *below* harness
// in the layering DAG — must read it too; src/harness/env.h keeps the
// user-facing bench-knob accessors and delegates here.

#ifndef CFL_CHECK_ENV_H_
#define CFL_CHECK_ENV_H_

namespace cfl::env {

// Forces the snapshot to be taken now (idempotent; only the first call —
// or first Get, whichever comes earlier — reads the process environment).
void Capture();

// Cached value of the environment variable `name` from the snapshot, or
// nullptr when it was unset or empty at capture time. Only CFL_*-prefixed
// names are captured; any other name returns nullptr.
const char* Get(const char* name);

}  // namespace cfl::env

#endif  // CFL_CHECK_ENV_H_
