// CFL_CHECK / CFL_DCHECK: invariant-checking macros with streamed context.
//
// `assert(x)` aborts mutely; in a matcher whose whole value proposition is
// that aggressive pruning stays *exact*, a failed invariant needs to say
// which structure broke and where. These macros print file:line, the failed
// expression, the operand values (for the comparison forms), and any
// streamed context before aborting:
//
//   CFL_CHECK(pos < cands.size()) << " u=" << u << " pos=" << pos;
//   CFL_CHECK_EQ(offsets.back(), adj.size()) << " while building u=" << u;
//
// CFL_CHECK is always on. CFL_DCHECK compiles to the same thing in debug
// builds (and whenever CFL_FORCE_DCHECKS is defined, which the CMake option
// CFL_FORCE_DCHECKS wires through); in NDEBUG builds it compiles away to a
// dead, syntax-checked statement with zero runtime cost, so it is safe on
// the enumeration hot paths.
//
// Header-only by design: any library in the tree can use the macros without
// taking a link dependency on cfl_check (which holds the heavier structural
// validators, see validate.h).

#ifndef CFL_CHECK_CHECK_H_
#define CFL_CHECK_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace cfl {
namespace check {

// Accumulates a failure message and aborts the process when destroyed at
// the end of the full expression (after all `<<` context has been applied).
class FailureStream {
 public:
  FailureStream(const char* file, int line, const char* expression) {
    stream_ << "CFL_CHECK failed at " << file << ":" << line << ": "
            << expression;
  }

  FailureStream(const FailureStream&) = delete;
  FailureStream& operator=(const FailureStream&) = delete;

  [[noreturn]] ~FailureStream() {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
    std::abort();
  }

  // Appends " (lhs vs rhs)" for the comparison macros.
  template <typename A, typename B>
  FailureStream& WithValues(const A& lhs, const B& rhs) {
    stream_ << " (" << lhs << " vs " << rhs << ")";
    return *this;
  }

  template <typename T>
  FailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// `Voidifier() & stream` gives the failure arm of the ternary type void;
// `&` binds looser than `<<`, so streamed context attaches to the stream.
// Takes a const ref so both a bare temporary (`CFL_CHECK(c);`) and the
// lvalue returned by `operator<<` chains bind.
struct Voidifier {
  void operator&(const FailureStream&) const {}
};

// Swallows `<< context` of compiled-out CFL_DCHECKs without evaluating it.
struct NullStream {
  template <typename T>
  const NullStream& operator<<(const T&) const {
    return *this;
  }
};

}  // namespace check
}  // namespace cfl

#define CFL_CHECK(condition)                             \
  (condition) ? (void)0                                  \
              : ::cfl::check::Voidifier() &              \
                    ::cfl::check::FailureStream(         \
                        __FILE__, __LINE__, #condition)

#define CFL_CHECK_OP_(lhs, op, rhs)                              \
  ((lhs)op(rhs)) ? (void)0                                       \
                 : ::cfl::check::Voidifier() &                   \
                       ::cfl::check::FailureStream(              \
                           __FILE__, __LINE__, #lhs " " #op " " #rhs) \
                           .WithValues((lhs), (rhs))

#define CFL_CHECK_EQ(lhs, rhs) CFL_CHECK_OP_(lhs, ==, rhs)
#define CFL_CHECK_NE(lhs, rhs) CFL_CHECK_OP_(lhs, !=, rhs)
#define CFL_CHECK_LT(lhs, rhs) CFL_CHECK_OP_(lhs, <, rhs)
#define CFL_CHECK_LE(lhs, rhs) CFL_CHECK_OP_(lhs, <=, rhs)
#define CFL_CHECK_GT(lhs, rhs) CFL_CHECK_OP_(lhs, >, rhs)
#define CFL_CHECK_GE(lhs, rhs) CFL_CHECK_OP_(lhs, >=, rhs)

#if !defined(NDEBUG) || defined(CFL_FORCE_DCHECKS)
#define CFL_DCHECK_IS_ON 1
#define CFL_DCHECK(condition) CFL_CHECK(condition)
#define CFL_DCHECK_EQ(lhs, rhs) CFL_CHECK_EQ(lhs, rhs)
#define CFL_DCHECK_NE(lhs, rhs) CFL_CHECK_NE(lhs, rhs)
#define CFL_DCHECK_LT(lhs, rhs) CFL_CHECK_LT(lhs, rhs)
#define CFL_DCHECK_LE(lhs, rhs) CFL_CHECK_LE(lhs, rhs)
#define CFL_DCHECK_GT(lhs, rhs) CFL_CHECK_GT(lhs, rhs)
#define CFL_DCHECK_GE(lhs, rhs) CFL_CHECK_GE(lhs, rhs)
#else
#define CFL_DCHECK_IS_ON 0
// Dead but syntax-checked: operands stay "used" (no -Wunused warnings) and
// the optimizer removes the whole statement.
#define CFL_DCHECK_DEAD_(condition) \
  while (false && (condition)) ::cfl::check::NullStream()
#define CFL_DCHECK(condition) CFL_DCHECK_DEAD_(condition)
#define CFL_DCHECK_EQ(lhs, rhs) CFL_DCHECK_DEAD_((lhs) == (rhs))
#define CFL_DCHECK_NE(lhs, rhs) CFL_DCHECK_DEAD_((lhs) != (rhs))
#define CFL_DCHECK_LT(lhs, rhs) CFL_DCHECK_DEAD_((lhs) < (rhs))
#define CFL_DCHECK_LE(lhs, rhs) CFL_DCHECK_DEAD_((lhs) <= (rhs))
#define CFL_DCHECK_GT(lhs, rhs) CFL_DCHECK_DEAD_((lhs) > (rhs))
#define CFL_DCHECK_GE(lhs, rhs) CFL_DCHECK_DEAD_((lhs) >= (rhs))
#endif

#endif  // CFL_CHECK_CHECK_H_
