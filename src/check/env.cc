#include "check/env.h"

#include <cstring>
#include <map>
#include <string>

// POSIX: the raw environment block. Scanning it once at snapshot time avoids
// std::getenv entirely (the function clang-tidy flags as concurrency-mt-
// unsafe); the snapshot itself is immutable afterwards.
extern "C" char** environ;

namespace cfl::env {

namespace {

const std::map<std::string, std::string>& Snapshot() {
  static const std::map<std::string, std::string> snapshot = [] {
    std::map<std::string, std::string> vars;
    for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
      const char* entry = *e;
      if (std::strncmp(entry, "CFL_", 4) != 0) continue;
      const char* eq = std::strchr(entry, '=');
      if (eq == nullptr || eq[1] == '\0') continue;  // unset-like or empty
      vars.emplace(std::string(entry, eq), std::string(eq + 1));
    }
    return vars;
  }();
  return snapshot;
}

}  // namespace

void Capture() { Snapshot(); }

const char* Get(const char* name) {
  const auto& vars = Snapshot();
  auto it = vars.find(name);
  return it == vars.end() ? nullptr : it->second.c_str();
}

}  // namespace cfl::env
