// Compact Path Index (paper Section 4.1 and A.2).
//
// The CPI mirrors the query's BFS tree q_T. Each query vertex u carries a
// candidate set u.C (data vertices u may map to); for each tree edge
// (u.p, u) it stores, per candidate of the parent, the adjacency list
// N_u^{u.p}(v) — which candidates of u are adjacent to v in the data graph.
//
// Storage follows the paper's A.2 exactly: adjacency lists hold *positions*
// (offsets) into the child's candidate array rather than raw vertex ids, so
// enumeration walks the index without any hashing, and a matched vertex's
// own adjacency lists are locatable by its position.
//
// Size is O(|E(G)| x |V(q)|) by construction (each tree edge's lists are a
// subset of E(G)); `SizeInEntries` / `MemoryBytes` let the scalability
// experiment (paper Figure 16(d)) report it.
//
// Thread-sharing contract: a built Cpi is immutable — it has no mutable
// members and no const accessor writes any state — so one instance may be
// read concurrently from any number of enumeration workers without
// synchronization (parallel/parallel_match.h relies on this). Keep it that
// way: lazy caches inside const accessors would silently break the
// parallel matcher.

#ifndef CFL_CPI_CPI_H_
#define CFL_CPI_CPI_H_

#include <cstdint>
#include <span>
#include <vector>

#include "decomp/bfs_tree.h"
#include "graph/graph.h"

namespace cfl {

class Cpi {
 public:
  Cpi() = default;

  // The BFS tree this CPI is defined over.
  const BfsTree& tree() const { return tree_; }

  // u.C: candidate data vertices of query vertex u, ascending.
  const std::vector<VertexId>& Candidates(VertexId u) const {
    return candidates_[u];
  }

  // Data vertex at `pos` within u.C.
  VertexId CandidateAt(VertexId u, uint32_t pos) const {
    return candidates_[u][pos];
  }

  // N_u^{u.p}(v) where v is the parent candidate at `parent_pos` in u.p's
  // candidate array: positions into u.C of the candidates adjacent to v.
  // Only valid for non-root u.
  std::span<const uint32_t> AdjacentPositions(VertexId u,
                                              uint32_t parent_pos) const {
    const std::vector<uint32_t>& off = adj_offsets_[u];
    return {adj_[u].data() + off[parent_pos],
            adj_[u].data() + off[parent_pos + 1]};
  }

  // True iff some query vertex has an empty candidate set, in which case the
  // query has no embeddings at all.
  bool HasEmptyCandidateSet() const {
    for (const std::vector<VertexId>& c : candidates_) {
      if (c.empty()) return true;
    }
    return false;
  }

  // Total number of candidate entries plus adjacency entries — the paper's
  // "index size" metric (Figure 16(d)).
  uint64_t SizeInEntries() const;

  uint64_t MemoryBytes() const;

  // --- Introspection (validators and tests; not used by enumeration) -----

  uint32_t NumQueryVertices() const {
    return static_cast<uint32_t>(candidates_.size());
  }

  // Raw per-vertex adjacency storage: `AdjacencyOffsets(u)` has one entry
  // per candidate of u's parent plus a trailing end offset, slicing
  // `AdjacencyEntries(u)` into the N_u^{u.p}(v) blocks. Both empty for the
  // root. See check/validate.h for the invariants these must satisfy.
  const std::vector<uint32_t>& AdjacencyOffsets(VertexId u) const {
    return adj_offsets_[u];
  }
  const std::vector<uint32_t>& AdjacencyEntries(VertexId u) const {
    return adj_[u];
  }

 private:
  friend class CpiBuilder;
  friend struct CpiTestAccess;  // check/test_access.h

  BfsTree tree_;
  std::vector<std::vector<VertexId>> candidates_;   // per query vertex
  std::vector<std::vector<uint32_t>> adj_offsets_;  // per non-root u
  std::vector<std::vector<uint32_t>> adj_;          // positions into u.C
};

}  // namespace cfl

#endif  // CFL_CPI_CPI_H_
