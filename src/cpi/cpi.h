// Compact Path Index (paper Section 4.1 and A.2).
//
// The CPI mirrors the query's BFS tree q_T. Each query vertex u carries a
// candidate set u.C (data vertices u may map to); for each tree edge
// (u.p, u) it stores, per candidate of the parent, the adjacency list
// N_u^{u.p}(v) — which candidates of u are adjacent to v in the data graph.
//
// Storage follows the paper's A.2 exactly: adjacency lists hold *positions*
// (offsets) into the child's candidate array rather than raw vertex ids, so
// enumeration walks the index without any hashing, and a matched vertex's
// own adjacency lists are locatable by its position.
//
// Layout: all three stores are flattened arenas — one contiguous array per
// kind plus per-query-vertex offset tables (the same CSR idiom `Graph`
// uses) — so the enumeration hot path (`CandidateAt`, `AdjacentPositions`)
// is pure pointer arithmetic with no per-vertex heap objects:
//
//   cand_arena_      [ u0.C | u1.C | ... ]        cand_offsets_[u] slices it
//   adj_off_arena_   [ u1 offs | u2 offs | ... ]  adj_off_start_[u] slices it
//   adj_entry_arena_ [ u1 lists | u2 lists | ... ]adj_entry_start_[u] slices it
//
// For non-root u, the slice adj_off_arena_[adj_off_start_[u] ...] holds
// |u.p.C| + 1 offsets (relative to u's entry slice) partitioning u's entry
// slice into the per-parent-candidate N_u^{u.p}(v) blocks. Root slices are
// empty.
//
// Size is O(|E(G)| x |V(q)|) by construction (each tree edge's lists are a
// subset of E(G)); `SizeInEntries` / `MemoryBytes` let the scalability
// experiment (paper Figure 16(d)) report it.
//
// Thread-sharing contract: a built Cpi is immutable — it has no mutable
// members and no const accessor writes any state — so one instance may be
// read concurrently from any number of enumeration workers without
// synchronization (parallel/parallel_match.h relies on this). Keep it that
// way: lazy caches inside const accessors would silently break the
// parallel matcher. The CFL_IMMUTABLE_AFTER_BUILD marker below has
// tools/cfl_lint enforce the contract (no non-const public methods, no
// mutable members, no const_cast); see check/thread_annotations.h.

#ifndef CFL_CPI_CPI_H_
#define CFL_CPI_CPI_H_

#include <cstdint>
#include <span>
#include <vector>

#include "check/narrow.h"
#include "check/thread_annotations.h"
#include "decomp/bfs_tree.h"
#include "graph/graph.h"
#include "kernels/kernels.h"

namespace cfl {

class Cpi {
 public:
  CFL_IMMUTABLE_AFTER_BUILD(Cpi);

  Cpi() = default;

  // The BFS tree this CPI is defined over.
  const BfsTree& tree() const { return tree_; }

  // u.C: candidate data vertices of query vertex u, ascending.
  std::span<const VertexId> Candidates(VertexId u) const {
    return {cand_arena_.data() + cand_offsets_[u],
            cand_arena_.data() + cand_offsets_[u + 1]};
  }

  uint32_t NumCandidates(VertexId u) const {
    return CheckedU32(cand_offsets_[u + 1] - cand_offsets_[u]);
  }

  // Data vertex at `pos` within u.C.
  VertexId CandidateAt(VertexId u, uint32_t pos) const {
    return cand_arena_[cand_offsets_[u] + pos];
  }

  // N_u^{u.p}(v) where v is the parent candidate at `parent_pos` in u.p's
  // candidate array: positions into u.C of the candidates adjacent to v.
  // Only valid for non-root u.
  std::span<const uint32_t> AdjacentPositions(VertexId u,
                                              uint32_t parent_pos) const {
    const uint32_t* off = adj_off_arena_.data() + adj_off_start_[u];
    const uint32_t* base = adj_entry_arena_.data() + adj_entry_start_[u];
    return {base + off[parent_pos], base + off[parent_pos + 1]};
  }

  // Prefetch hints for the enumeration descent (kernels/kernels.h). Pure
  // hints — no state is read beyond address arithmetic, no state is written
  // — so they keep the immutability contract. Call sites gate on
  // kernels::PrefetchEnabled() && PrefetchWorthwhile().

  // True when the CPI arenas are large enough that descent touches can
  // actually miss cache. Small CPIs are fully cache-resident after the
  // first few descents, where the extra prefetch instructions per
  // candidate are measurable pure overhead (~5% on a 20k-vertex graph).
  bool PrefetchWorthwhile() const {
    constexpr size_t kMinArenaBytes = 4u << 20;
    return (cand_arena_.size() * sizeof(VertexId) +
            adj_entry_arena_.size() * sizeof(uint32_t)) >= kMinArenaBytes;
  }

  // Touch the candidate-arena entry at `pos` of u.C ahead of CandidateAt.
  void PrefetchCandidate(VertexId u, uint32_t pos) const {
    kernels::PrefetchSpan(cand_arena_.data() + cand_offsets_[u] + pos,
                          sizeof(VertexId));
  }

  // Touch the adjacency-offset pair of (u, parent_pos) ahead of the
  // AdjacentPositions call the next descent into u performs.
  void PrefetchAdjacency(VertexId u, uint32_t parent_pos) const {
    kernels::PrefetchSpan(
        adj_off_arena_.data() + adj_off_start_[u] + parent_pos,
        2 * sizeof(uint32_t));
  }

  // True iff some query vertex has an empty candidate set, in which case the
  // query has no embeddings at all.
  bool HasEmptyCandidateSet() const {
    for (uint32_t u = 0; u + 1 < cand_offsets_.size(); ++u) {
      if (cand_offsets_[u] == cand_offsets_[u + 1]) return true;
    }
    return false;
  }

  // Total number of candidate entries plus adjacency entries — the paper's
  // "index size" metric (Figure 16(d)).
  uint64_t SizeInEntries() const {
    return cand_arena_.size() + adj_entry_arena_.size();
  }

  // The two arena sizes separately (MatchStats reports them side by side;
  // their sum is SizeInEntries()).
  uint64_t NumCandidateEntries() const { return cand_arena_.size(); }
  uint64_t NumAdjacencyEntries() const { return adj_entry_arena_.size(); }

  uint64_t MemoryBytes() const;

  // --- Introspection (validators and tests; not used by enumeration) -----

  uint32_t NumQueryVertices() const {
    return cand_offsets_.empty() ? 0 : CheckedU32(cand_offsets_.size() - 1);
  }

  // Raw per-vertex adjacency storage: `AdjacencyOffsets(u)` has one entry
  // per candidate of u's parent plus a trailing end offset (relative to the
  // start of u's entry slice), slicing `AdjacencyEntries(u)` into the
  // N_u^{u.p}(v) blocks. Both empty for the root. See check/validate.h for
  // the invariants these must satisfy.
  std::span<const uint32_t> AdjacencyOffsets(VertexId u) const {
    return {adj_off_arena_.data() + adj_off_start_[u],
            adj_off_arena_.data() + adj_off_start_[u + 1]};
  }
  std::span<const uint32_t> AdjacencyEntries(VertexId u) const {
    return {adj_entry_arena_.data() + adj_entry_start_[u],
            adj_entry_arena_.data() + adj_entry_start_[u + 1]};
  }

 private:
  friend class CpiBuilder;
  friend struct CpiTestAccess;  // check/test_access.h

  BfsTree tree_;

  // Candidate arena: cand_offsets_ has NumQueryVertices()+1 entries slicing
  // cand_arena_ into the per-query-vertex candidate sets.
  std::vector<VertexId> cand_arena_;
  std::vector<uint64_t> cand_offsets_;

  // Adjacency arenas, sliced per query vertex by the *_start_ tables
  // (NumQueryVertices()+1 entries each; root slices are empty).
  std::vector<uint32_t> adj_off_arena_;    // relative offsets, |u.p.C|+1 per u
  std::vector<uint64_t> adj_off_start_;
  std::vector<uint32_t> adj_entry_arena_;  // positions into u.C
  std::vector<uint64_t> adj_entry_start_;
};

}  // namespace cfl

#endif  // CFL_CPI_CPI_H_
