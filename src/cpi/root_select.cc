#include "cpi/root_select.h"

#include <algorithm>
#include <limits>

#include "check/check.h"

namespace cfl {

VertexId SelectRoot(const Graph& q, const Graph& data,
                    const LabelDegreeIndex& index,
                    const std::vector<VertexId>& choices) {
  CFL_DCHECK(!choices.empty()) << " root selection needs at least one choice";

  // Light-weight pass: rank by (#label+degree candidates) / degree.
  struct Scored {
    VertexId u;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(choices.size());
  for (VertexId u : choices) {
    uint64_t cands = index.CountAtLeast(q.label(u), q.StructuralDegree(u));
    double degree = std::max<uint32_t>(1, q.StructuralDegree(u));
    scored.push_back({u, static_cast<double>(cands) / degree});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.score < b.score || (a.score == b.score && a.u < b.u);
  });
  size_t shortlist = std::min<size_t>(3, scored.size());

  // Accurate pass over the top-3: count candidates surviving CandVerify.
  VertexId best = scored[0].u;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < shortlist; ++i) {
    VertexId u = scored[i].u;
    uint64_t cands = CountVerifiedCandidates(q, u, data);
    double degree = std::max<uint32_t>(1, q.StructuralDegree(u));
    double score = static_cast<double>(cands) / degree;
    if (score < best_score) {
      best_score = score;
      best = u;
    }
  }
  return best;
}

}  // namespace cfl
