#include "cpi/cpi_builder.h"

#include <algorithm>

#include "check/check.h"
#include "cpi/candidate_filter.h"

namespace cfl {

CpiBuilder::CpiBuilder(const Graph& data)
    : data_(data),
      cnt_(data.NumVertices(), 0),
      pos_(data.NumVertices(), 0) {}

void CpiBuilder::GenerateCandidates(const Graph& q, VertexId u,
                                    const std::vector<VertexId>& against) {
  CFL_DCHECK(!against.empty())
      << " generating candidates for query vertex " << u
      << " with no visited neighbors; BFS guarantees a visited parent";
  // Counting intersection (Algorithm 3 lines 6-14 / Lemma 5.1): after round
  // k, cnt_[v] == k+1 iff v has a neighbor in cand_[u'] for each of the
  // first k+1 query vertices u' processed.
  uint32_t round = 0;
  for (VertexId uprime : against) {
    for (VertexId vprime : cand_[uprime]) {
      for (VertexId v : data_.Neighbors(vprime)) {
        if (cnt_[v] != round) continue;
        if (!LabelDegreeFilter(q, u, data_, v)) continue;
        if (round == 0) touched_.push_back(v);
        cnt_[v] = round + 1;
      }
    }
    ++round;
  }
  std::vector<VertexId>& out = cand_[u];
  out.clear();
  for (VertexId v : touched_) {
    if (cnt_[v] == round && CandVerify(q, u, data_, v)) out.push_back(v);
    cnt_[v] = 0;
  }
  touched_.clear();
  std::sort(out.begin(), out.end());
}

void CpiBuilder::RefineCandidates(VertexId u,
                                  const std::vector<VertexId>& against) {
  if (against.empty() || cand_[u].empty()) return;
  uint32_t round = 0;
  for (VertexId uprime : against) {
    for (VertexId vprime : cand_[uprime]) {
      for (VertexId v : data_.Neighbors(vprime)) {
        if (cnt_[v] != round) continue;
        if (round == 0) touched_.push_back(v);
        cnt_[v] = round + 1;
      }
    }
    ++round;
  }
  // Keep only candidates that survived every round (Algorithm 3 lines 21-22
  // / Algorithm 4 lines 5-6).
  std::vector<VertexId>& c = cand_[u];
  c.erase(std::remove_if(c.begin(), c.end(),
                         [this, round](VertexId v) { return cnt_[v] != round; }),
          c.end());
  for (VertexId v : touched_) cnt_[v] = 0;
  touched_.clear();
}

void CpiBuilder::TopDownConstruct(const Graph& q, const BfsTree& tree) {
  const uint32_t n = q.NumVertices();
  std::vector<bool> visited(n, false);

  // Root candidates: label + degree + CandVerify (Algorithm 3 lines 1-2).
  const VertexId r = tree.root;
  for (VertexId v : data_.VerticesWithLabel(q.label(r))) {
    if (data_.degree(v) >= q.StructuralDegree(r) && CandVerify(q, r, data_, v)) {
      cand_[r].push_back(v);
    }
  }
  visited[r] = true;

  std::vector<std::vector<VertexId>> unvisited_same_level(n);
  for (uint32_t lev = 1; lev < tree.NumLevels(); ++lev) {
    const std::vector<VertexId>& level = tree.levels[lev];

    // Forward candidate generation (lines 5-17).
    for (VertexId u : level) {
      std::vector<VertexId> vis;  // u.N: visited query neighbors
      for (VertexId uprime : q.Neighbors(u)) {
        if (visited[uprime]) {
          vis.push_back(uprime);
        } else if (tree.level[uprime] == tree.level[u]) {
          // S-NTE to a not-yet-visited same-level vertex; recorded for the
          // backward pass (u.UN).
          unvisited_same_level[u].push_back(uprime);
        }
      }
      GenerateCandidates(q, u, vis);
      visited[u] = true;
    }

    // Backward candidate pruning (lines 18-23), reverse order within level.
    for (auto it = level.rbegin(); it != level.rend(); ++it) {
      RefineCandidates(*it, unvisited_same_level[*it]);
    }
  }
}

void CpiBuilder::BottomUpRefine(const Graph& q, const BfsTree& tree) {
  // Process query vertices bottom-up; at each u, prune u.C against the
  // (already-refined) candidate sets of u's lower-level neighbors — tree
  // children and downward C-NTEs alike (Algorithm 4).
  for (auto it = tree.order.rbegin(); it != tree.order.rend(); ++it) {
    VertexId u = *it;
    std::vector<VertexId> lower;
    for (VertexId uprime : q.Neighbors(u)) {
      if (tree.level[uprime] == tree.level[u] + 1) lower.push_back(uprime);
    }
    RefineCandidates(u, lower);
  }
}

void CpiBuilder::BuildAdjacency(const BfsTree& tree, Cpi* cpi) {
  const uint32_t n = static_cast<uint32_t>(cand_.size());
  cpi->adj_offsets_.assign(n, {});
  cpi->adj_.assign(n, {});

  for (VertexId u : tree.order) {
    if (u == tree.root) continue;
    const VertexId p = tree.parent[u];
    const std::vector<VertexId>& child_cands = cand_[u];
    const std::vector<VertexId>& parent_cands = cand_[p];

    // Mark child candidates with their position + 1.
    for (uint32_t i = 0; i < child_cands.size(); ++i) {
      pos_[child_cands[i]] = i + 1;
    }

    std::vector<uint32_t>& offsets = cpi->adj_offsets_[u];
    std::vector<uint32_t>& adj = cpi->adj_[u];
    offsets.reserve(parent_cands.size() + 1);
    offsets.push_back(0);
    for (VertexId vp : parent_cands) {
      // Data adjacency is sorted and candidate positions are id-monotone,
      // so each N_u^{p}(vp) block comes out sorted by position.
      for (VertexId v : data_.Neighbors(vp)) {
        if (pos_[v] != 0) adj.push_back(pos_[v] - 1);
      }
      offsets.push_back(static_cast<uint32_t>(adj.size()));
    }

    for (VertexId v : child_cands) pos_[v] = 0;
  }
}

Cpi CpiBuilder::Build(const Graph& q, const BfsTree& tree,
                      CpiStrategy strategy) {
  const uint32_t n = q.NumVertices();
  cand_.assign(n, {});

  if (strategy == CpiStrategy::kNaive) {
    // Section 4.1's naive sound CPI: candidates by label only.
    for (VertexId u = 0; u < n; ++u) {
      std::span<const VertexId> vs = data_.VerticesWithLabel(q.label(u));
      cand_[u].assign(vs.begin(), vs.end());
    }
  } else {
    TopDownConstruct(q, tree);
    if (strategy == CpiStrategy::kRefined) BottomUpRefine(q, tree);
  }

  Cpi cpi;
  cpi.tree_ = tree;
  BuildAdjacency(tree, &cpi);
  cpi.candidates_ = std::move(cand_);
  cand_.clear();
  return cpi;
}

Cpi BuildCpi(const Graph& q, const Graph& data, const BfsTree& tree,
             CpiStrategy strategy) {
  CpiBuilder builder(data);
  return builder.Build(q, tree, strategy);
}

}  // namespace cfl
