#include "cpi/cpi_builder.h"

#include <algorithm>

#include "check/check.h"
#include "check/narrow.h"
#include "cpi/candidate_filter.h"
#include "obs/clock.h"

namespace cfl {

CpiBuilder::CpiBuilder(const Graph& data)
    : data_(data),
      cnt_(data.NumVertices(), 0),
      pos_(data.NumVertices(), 0) {}

void CpiBuilder::GenerateCandidates(const Graph& q, VertexId u,
                                    const std::vector<VertexId>& against) {
  CFL_DCHECK(!against.empty())
      << " generating candidates for query vertex " << u
      << " with no visited neighbors; BFS guarantees a visited parent";
  // Counting intersection (Algorithm 3 lines 6-14 / Lemma 5.1): after round
  // k, cnt_[v] == k+1 iff v has a neighbor in cand_[u'] for each of the
  // first k+1 query vertices u' processed. Only data vertices with u's label
  // can survive, so each candidate's neighborhood is scanned through its
  // label run alone; the label filter is implied, and the degree filter only
  // needs to run on round 0 (later rounds only ever see vertices that
  // already passed it).
  const Label label = q.label(u);
  const uint32_t min_degree = q.StructuralDegree(u);
  uint32_t round = 0;
  for (VertexId uprime : against) {
    for (VertexId vprime : cand_[uprime]) {
      for (VertexId v : data_.NeighborsWithLabel(vprime, label)) {
        if (cnt_[v] != round) continue;
        if (round == 0) {
          if (data_.degree(v) < min_degree) continue;
          touched_.push_back(v);
        }
        cnt_[v] = round + 1;
      }
    }
    ++round;
  }
  std::vector<VertexId>& out = cand_[u];
  out.clear();
  for (VertexId v : touched_) {
    if (cnt_[v] == round && CandVerify(q, u, data_, v)) out.push_back(v);
    cnt_[v] = 0;
  }
  touched_.clear();
  std::sort(out.begin(), out.end());
}

void CpiBuilder::RefineCandidates(VertexId u,
                                  const std::vector<VertexId>& against) {
  if (against.empty() || cand_[u].empty()) return;
  // All candidates of u share u's label, so the scans below only need that
  // one label run of each vprime.
  const Label label = data_.label(cand_[u].front());
  uint32_t round = 0;
  for (VertexId uprime : against) {
    for (VertexId vprime : cand_[uprime]) {
      for (VertexId v : data_.NeighborsWithLabel(vprime, label)) {
        if (cnt_[v] != round) continue;
        if (round == 0) touched_.push_back(v);
        cnt_[v] = round + 1;
      }
    }
    ++round;
  }
  // Keep only candidates that survived every round (Algorithm 3 lines 21-22
  // / Algorithm 4 lines 5-6).
  std::vector<VertexId>& c = cand_[u];
  c.erase(std::remove_if(c.begin(), c.end(),
                         [this, round](VertexId v) { return cnt_[v] != round; }),
          c.end());
  for (VertexId v : touched_) cnt_[v] = 0;
  touched_.clear();
}

void CpiBuilder::TopDownConstruct(const Graph& q, const BfsTree& tree) {
  const uint32_t n = q.NumVertices();
  std::vector<bool> visited(n, false);

  // Root candidates: label + degree + CandVerify (Algorithm 3 lines 1-2).
  const VertexId r = tree.root;
  for (VertexId v : data_.VerticesWithLabel(q.label(r))) {
    if (data_.degree(v) >= q.StructuralDegree(r) && CandVerify(q, r, data_, v)) {
      cand_[r].push_back(v);
    }
  }
  CFL_STATS_ONLY(if (stats_) stats_->generated[r] = cand_[r].size();)
  visited[r] = true;

  std::vector<std::vector<VertexId>> unvisited_same_level(n);
  for (uint32_t lev = 1; lev < tree.NumLevels(); ++lev) {
    const std::vector<VertexId>& level = tree.levels[lev];

    // Forward candidate generation (lines 5-17).
    for (VertexId u : level) {
      vis_.clear();  // u.N: visited query neighbors
      for (VertexId uprime : q.Neighbors(u)) {
        if (visited[uprime]) {
          vis_.push_back(uprime);
        } else if (tree.level[uprime] == tree.level[u]) {
          // S-NTE to a not-yet-visited same-level vertex; recorded for the
          // backward pass (u.UN).
          unvisited_same_level[u].push_back(uprime);
        }
      }
      GenerateCandidates(q, u, vis_);
      CFL_STATS_ONLY(if (stats_) stats_->generated[u] = cand_[u].size();)
      visited[u] = true;
    }

    // Backward candidate pruning (lines 18-23), reverse order within level.
    for (auto it = level.rbegin(); it != level.rend(); ++it) {
      CFL_STATS_ONLY(const size_t before = cand_[*it].size();)
      RefineCandidates(*it, unvisited_same_level[*it]);
      CFL_STATS_ONLY(
          if (stats_) stats_->pruned_backward[*it] = before - cand_[*it].size();)
    }
  }
}

void CpiBuilder::BottomUpRefine(const Graph& q, const BfsTree& tree) {
  // Process query vertices bottom-up; at each u, prune u.C against the
  // (already-refined) candidate sets of u's lower-level neighbors — tree
  // children and downward C-NTEs alike (Algorithm 4).
  for (auto it = tree.order.rbegin(); it != tree.order.rend(); ++it) {
    VertexId u = *it;
    lower_.clear();
    for (VertexId uprime : q.Neighbors(u)) {
      if (tree.level[uprime] == tree.level[u] + 1) lower_.push_back(uprime);
    }
    CFL_STATS_ONLY(const size_t before = cand_[u].size();)
    RefineCandidates(u, lower_);
    CFL_STATS_ONLY(
        if (stats_) stats_->pruned_bottomup[u] = before - cand_[u].size();)
  }
}

void CpiBuilder::BuildAdjacency(const BfsTree& tree, Cpi* cpi) {
  const uint32_t n = CheckedU32(cand_.size());

  // Arena layout: vertices in ascending id order so the start tables are
  // monotone; each non-root u contributes |u.p.C|+1 relative offsets and
  // its concatenated N_u^{u.p}(v) blocks. Per-u content is independent of
  // this iteration order.
  cpi->adj_off_arena_.clear();
  cpi->adj_entry_arena_.clear();
  cpi->adj_off_start_.assign(n + 1, 0);
  cpi->adj_entry_start_.assign(n + 1, 0);

  for (VertexId u = 0; u < n; ++u) {
    if (u != tree.root) {
      const VertexId p = tree.parent[u];
      const std::vector<VertexId>& child_cands = cand_[u];
      const std::vector<VertexId>& parent_cands = cand_[p];
      const uint64_t entry_base = cpi->adj_entry_arena_.size();

      // Mark child candidates with their position + 1.
      for (uint32_t i = 0; i < child_cands.size(); ++i) {
        pos_[child_cands[i]] = i + 1;
      }
      // All child candidates share one label, so only that run of each
      // parent candidate's adjacency can contribute. An empty child set
      // degenerates to all-empty blocks.
      const Label label =
          child_cands.empty() ? 0 : data_.label(child_cands.front());

      cpi->adj_off_arena_.push_back(0);
      for (VertexId vp : parent_cands) {
        if (!child_cands.empty()) {
          // Runs are sorted by id and candidate positions are id-monotone,
          // so each N_u^{p}(vp) block comes out sorted by position.
          for (VertexId v : data_.NeighborsWithLabel(vp, label)) {
            if (pos_[v] != 0) {
              cpi->adj_entry_arena_.push_back(pos_[v] - 1);
            }
          }
        }
        cpi->adj_off_arena_.push_back(
            CheckedU32(cpi->adj_entry_arena_.size() - entry_base));
      }

      for (VertexId v : child_cands) pos_[v] = 0;
    }
    cpi->adj_off_start_[u + 1] = cpi->adj_off_arena_.size();
    cpi->adj_entry_start_[u + 1] = cpi->adj_entry_arena_.size();
  }
}

Cpi CpiBuilder::Build(const Graph& q, const BfsTree& tree,
                      CpiStrategy strategy, CpiBuildStats* stats) {
  const uint32_t n = q.NumVertices();
  cand_.assign(n, {});
  stats_ = nullptr;
  CFL_STATS_ONLY(stats_ = stats;
                 if (stats_) {
                   stats_->generated.assign(n, 0);
                   stats_->pruned_backward.assign(n, 0);
                   stats_->pruned_bottomup.assign(n, 0);
                 })
  CFL_STATS_ONLY(obs::WallTimer timer;)

  if (strategy == CpiStrategy::kNaive) {
    // Section 4.1's naive sound CPI: candidates by label only.
    for (VertexId u = 0; u < n; ++u) {
      std::span<const VertexId> vs = data_.VerticesWithLabel(q.label(u));
      cand_[u].assign(vs.begin(), vs.end());
      CFL_STATS_ONLY(if (stats_) stats_->generated[u] = cand_[u].size();)
    }
    CFL_STATS_ONLY(if (stats_) stats_->top_down_seconds = timer.Lap();)
  } else {
    TopDownConstruct(q, tree);
    CFL_STATS_ONLY(if (stats_) stats_->top_down_seconds = timer.Lap();)
    if (strategy == CpiStrategy::kRefined) {
      BottomUpRefine(q, tree);
      CFL_STATS_ONLY(if (stats_) stats_->bottom_up_seconds = timer.Lap();)
    }
  }

  CFL_STATS_ONLY(timer.Lap();)  // exclude any stats bookkeeping gaps
  Cpi cpi;
  cpi.tree_ = tree;
  BuildAdjacency(tree, &cpi);

  // Flatten the per-vertex candidate sets into the arena.
  cpi.cand_offsets_.assign(n + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    cpi.cand_offsets_[u + 1] = cpi.cand_offsets_[u] + cand_[u].size();
  }
  cpi.cand_arena_.reserve(cpi.cand_offsets_[n]);
  for (VertexId u = 0; u < n; ++u) {
    cpi.cand_arena_.insert(cpi.cand_arena_.end(), cand_[u].begin(),
                           cand_[u].end());
  }
  CFL_STATS_ONLY(if (stats_) stats_->adjacency_seconds = timer.Lap();)
  stats_ = nullptr;
  return cpi;
}

Cpi BuildCpi(const Graph& q, const Graph& data, const BfsTree& tree,
             CpiStrategy strategy) {
  CpiBuilder builder(data);
  return builder.Build(q, tree, strategy);
}

}  // namespace cfl
