#include "cpi/cpi_builder.h"

#include <algorithm>

#include "check/check.h"
#include "check/narrow.h"
#include "cpi/candidate_filter.h"
#include "kernels/kernels.h"
#include "obs/clock.h"

namespace cfl {

CpiBuilder::CpiBuilder(const Graph& data)
    : data_(data), cnt_(data.NumVertices(), 0) {}

void CpiBuilder::RefineRounds(const Label label,
                              const std::vector<VertexId>& against,
                              size_t first) {
  // Rounds over `against[first..]` of the counting intersection (Algorithm 3
  // lines 6-14 / Lemma 5.1), reformulated over the sorted survivor list:
  // v survives a round iff some vprime in cand_[uprime] has v in its
  // label-run — i.e. surv_ ∩ N(vprime, label) is non-empty at v for some
  // vprime. Each run ∩ surv_ goes through the kernel layer (SIMD block
  // merge / galloping by skew); cnt_ marks dedup vertices reached through
  // several vprime runs, and the in-place filter keeps surv_ sorted.
  uint32_t mark = 1;
  for (size_t a = first; a < against.size(); ++a, ++mark) {
    for (VertexId vprime : cand_[against[a]]) {
      isect_.clear();
      kernels::IntersectSorted(data_.NeighborsWithLabel(vprime, label), surv_,
                               isect_);
      for (VertexId v : isect_) cnt_[v] = mark;
    }
    std::erase_if(surv_,
                  [this, mark](VertexId v) { return cnt_[v] != mark; });
  }
}

void CpiBuilder::GenerateCandidates(const Graph& q, VertexId u,
                                    const std::vector<VertexId>& against) {
  CFL_DCHECK(!against.empty())
      << " generating candidates for query vertex " << u
      << " with no visited neighbors; BFS guarantees a visited parent";
  // Round 0 seeds the survivor set with a counting scan: only data vertices
  // with u's label can survive, so each candidate's neighborhood is scanned
  // through its label run alone (the label filter is implied), and the
  // degree filter runs here once — later rounds only shrink the set.
  const Label label = q.label(u);
  const uint32_t min_degree = q.StructuralDegree(u);
  for (VertexId vprime : cand_[against.front()]) {
    for (VertexId v : data_.NeighborsWithLabel(vprime, label)) {
      if (cnt_[v] != 0) continue;
      if (data_.degree(v) < min_degree) continue;
      touched_.push_back(v);
      cnt_[v] = 1;
    }
  }
  for (VertexId v : touched_) cnt_[v] = 0;
  std::sort(touched_.begin(), touched_.end());
  surv_ = touched_;

  RefineRounds(label, against, /*first=*/1);

  std::vector<VertexId>& out = cand_[u];
  out.clear();
  for (VertexId v : surv_) {
    if (CandVerify(q, u, data_, v)) out.push_back(v);
  }
  // surv_ stayed sorted throughout, so `out` needs no final sort. Marks only
  // ever land on members of the seed set, so resetting over touched_ (not
  // just the final survivors) restores cnt_ to all-zero.
  for (VertexId v : touched_) cnt_[v] = 0;
  touched_.clear();
}

void CpiBuilder::RefineCandidates(VertexId u,
                                  const std::vector<VertexId>& against) {
  if (against.empty() || cand_[u].empty()) return;
  // All candidates of u share u's label, so the intersections below only
  // need that one label run of each vprime. Keep only candidates that
  // survive every round (Algorithm 3 lines 21-22 / Algorithm 4 lines 5-6).
  std::vector<VertexId>& c = cand_[u];
  const Label label = data_.label(c.front());
  surv_ = c;
  RefineRounds(label, against, /*first=*/0);
  for (VertexId v : c) cnt_[v] = 0;  // marks only ever land on subsets of c
  c = surv_;
}

void CpiBuilder::TopDownConstruct(const Graph& q, const BfsTree& tree) {
  const uint32_t n = q.NumVertices();
  std::vector<bool> visited(n, false);

  // Root candidates: label + degree + CandVerify (Algorithm 3 lines 1-2).
  const VertexId r = tree.root;
  for (VertexId v : data_.VerticesWithLabel(q.label(r))) {
    if (data_.degree(v) >= q.StructuralDegree(r) && CandVerify(q, r, data_, v)) {
      cand_[r].push_back(v);
    }
  }
  CFL_STATS_ONLY(if (stats_) stats_->generated[r] = cand_[r].size();)
  visited[r] = true;

  std::vector<std::vector<VertexId>> unvisited_same_level(n);
  for (uint32_t lev = 1; lev < tree.NumLevels(); ++lev) {
    const std::vector<VertexId>& level = tree.levels[lev];

    // Forward candidate generation (lines 5-17).
    for (VertexId u : level) {
      vis_.clear();  // u.N: visited query neighbors
      for (VertexId uprime : q.Neighbors(u)) {
        if (visited[uprime]) {
          vis_.push_back(uprime);
        } else if (tree.level[uprime] == tree.level[u]) {
          // S-NTE to a not-yet-visited same-level vertex; recorded for the
          // backward pass (u.UN).
          unvisited_same_level[u].push_back(uprime);
        }
      }
      GenerateCandidates(q, u, vis_);
      CFL_STATS_ONLY(if (stats_) stats_->generated[u] = cand_[u].size();)
      visited[u] = true;
    }

    // Backward candidate pruning (lines 18-23), reverse order within level.
    for (auto it = level.rbegin(); it != level.rend(); ++it) {
      CFL_STATS_ONLY(const size_t before = cand_[*it].size();)
      RefineCandidates(*it, unvisited_same_level[*it]);
      CFL_STATS_ONLY(
          if (stats_) stats_->pruned_backward[*it] = before - cand_[*it].size();)
    }
  }
}

void CpiBuilder::BottomUpRefine(const Graph& q, const BfsTree& tree) {
  // Process query vertices bottom-up; at each u, prune u.C against the
  // (already-refined) candidate sets of u's lower-level neighbors — tree
  // children and downward C-NTEs alike (Algorithm 4).
  for (auto it = tree.order.rbegin(); it != tree.order.rend(); ++it) {
    VertexId u = *it;
    lower_.clear();
    for (VertexId uprime : q.Neighbors(u)) {
      if (tree.level[uprime] == tree.level[u] + 1) lower_.push_back(uprime);
    }
    CFL_STATS_ONLY(const size_t before = cand_[u].size();)
    RefineCandidates(u, lower_);
    CFL_STATS_ONLY(
        if (stats_) stats_->pruned_bottomup[u] = before - cand_[u].size();)
  }
}

void CpiBuilder::BuildAdjacency(const BfsTree& tree, Cpi* cpi) {
  const uint32_t n = CheckedU32(cand_.size());

  // Arena layout: vertices in ascending id order so the start tables are
  // monotone; each non-root u contributes |u.p.C|+1 relative offsets and
  // its concatenated N_u^{u.p}(v) blocks. Per-u content is independent of
  // this iteration order.
  cpi->adj_off_arena_.clear();
  cpi->adj_entry_arena_.clear();
  cpi->adj_off_start_.assign(n + 1, 0);
  cpi->adj_entry_start_.assign(n + 1, 0);

  for (VertexId u = 0; u < n; ++u) {
    if (u != tree.root) {
      const VertexId p = tree.parent[u];
      const std::vector<VertexId>& child_cands = cand_[u];
      const std::vector<VertexId>& parent_cands = cand_[p];
      const uint64_t entry_base = cpi->adj_entry_arena_.size();

      // All child candidates share one label, so only that run of each
      // parent candidate's adjacency can contribute. An empty child set
      // degenerates to all-empty blocks.
      const Label label =
          child_cands.empty() ? 0 : data_.label(child_cands.front());

      cpi->adj_off_arena_.push_back(0);
      for (VertexId vp : parent_cands) {
        if (!child_cands.empty()) {
          // N_u^{p}(vp) = run ∩ child_cands, emitted as positions into the
          // (sorted) candidate list: both sides ascend by id, so each block
          // comes out sorted by position — exactly IntersectPositions,
          // appended straight into the entry arena.
          kernels::IntersectPositions(data_.NeighborsWithLabel(vp, label),
                                      child_cands, cpi->adj_entry_arena_);
        }
        cpi->adj_off_arena_.push_back(
            CheckedU32(cpi->adj_entry_arena_.size() - entry_base));
      }
    }
    cpi->adj_off_start_[u + 1] = cpi->adj_off_arena_.size();
    cpi->adj_entry_start_[u + 1] = cpi->adj_entry_arena_.size();
  }
}

Cpi CpiBuilder::Build(const Graph& q, const BfsTree& tree,
                      CpiStrategy strategy, CpiBuildStats* stats) {
  const uint32_t n = q.NumVertices();
  cand_.assign(n, {});
  stats_ = nullptr;
  CFL_STATS_ONLY(stats_ = stats;
                 if (stats_) {
                   stats_->generated.assign(n, 0);
                   stats_->pruned_backward.assign(n, 0);
                   stats_->pruned_bottomup.assign(n, 0);
                 })
  CFL_STATS_ONLY(obs::WallTimer timer;)

  if (strategy == CpiStrategy::kNaive) {
    // Section 4.1's naive sound CPI: candidates by label only.
    for (VertexId u = 0; u < n; ++u) {
      std::span<const VertexId> vs = data_.VerticesWithLabel(q.label(u));
      cand_[u].assign(vs.begin(), vs.end());
      CFL_STATS_ONLY(if (stats_) stats_->generated[u] = cand_[u].size();)
    }
    CFL_STATS_ONLY(if (stats_) stats_->top_down_seconds = timer.Lap();)
  } else {
    TopDownConstruct(q, tree);
    CFL_STATS_ONLY(if (stats_) stats_->top_down_seconds = timer.Lap();)
    if (strategy == CpiStrategy::kRefined) {
      BottomUpRefine(q, tree);
      CFL_STATS_ONLY(if (stats_) stats_->bottom_up_seconds = timer.Lap();)
    }
  }

  CFL_STATS_ONLY(timer.Lap();)  // exclude any stats bookkeeping gaps
  Cpi cpi;
  cpi.tree_ = tree;
  BuildAdjacency(tree, &cpi);

  // Flatten the per-vertex candidate sets into the arena.
  cpi.cand_offsets_.assign(n + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    cpi.cand_offsets_[u + 1] = cpi.cand_offsets_[u] + cand_[u].size();
  }
  cpi.cand_arena_.reserve(cpi.cand_offsets_[n]);
  for (VertexId u = 0; u < n; ++u) {
    cpi.cand_arena_.insert(cpi.cand_arena_.end(), cand_[u].begin(),
                           cand_[u].end());
  }
  CFL_STATS_ONLY(if (stats_) stats_->adjacency_seconds = timer.Lap();)
  stats_ = nullptr;
  return cpi;
}

Cpi BuildCpi(const Graph& q, const Graph& data, const BfsTree& tree,
             CpiStrategy strategy) {
  CpiBuilder builder(data);
  return builder.Build(q, tree, strategy);
}

}  // namespace cfl
