#include "cpi/cpi.h"

namespace cfl {

uint64_t Cpi::SizeInEntries() const {
  uint64_t entries = 0;
  for (const std::vector<VertexId>& c : candidates_) entries += c.size();
  for (const std::vector<uint32_t>& a : adj_) entries += a.size();
  return entries;
}

uint64_t Cpi::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const std::vector<VertexId>& c : candidates_) {
    bytes += c.capacity() * sizeof(VertexId);
  }
  for (const std::vector<uint32_t>& o : adj_offsets_) {
    bytes += o.capacity() * sizeof(uint32_t);
  }
  for (const std::vector<uint32_t>& a : adj_) {
    bytes += a.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace cfl
