#include "cpi/cpi.h"

namespace cfl {

uint64_t Cpi::MemoryBytes() const {
  uint64_t bytes = 0;
  bytes += cand_arena_.capacity() * sizeof(VertexId);
  bytes += cand_offsets_.capacity() * sizeof(uint64_t);
  bytes += adj_off_arena_.capacity() * sizeof(uint32_t);
  bytes += adj_off_start_.capacity() * sizeof(uint64_t);
  bytes += adj_entry_arena_.capacity() * sizeof(uint32_t);
  bytes += adj_entry_start_.capacity() * sizeof(uint64_t);
  return bytes;
}

}  // namespace cfl
