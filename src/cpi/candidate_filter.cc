#include "cpi/candidate_filter.h"

#include <algorithm>
#include <span>

#include "kernels/kernels.h"

namespace cfl {

bool CandVerify(const Graph& q, VertexId u, const Graph& data, VertexId v) {
  // Constant-time MND filter first (Algorithm 6 line 1).
  if (data.MaxNeighborDegree(v) < q.MaxNeighborDegree(u)) return false;
  // NLF filter (lines 2-4): every neighbor-label requirement of u must be
  // met by v. Query NLF runs are few, data lookups are O(log).
  for (const Graph::LabelCount& need : q.NeighborLabelCounts(u)) {
    if (data.NeighborLabelCount(v, need.label) < need.count) return false;
  }
  return true;
}

uint64_t CountVerifiedCandidates(const Graph& q, VertexId u,
                                 const Graph& data) {
  const std::span<const VertexId> vs = data.VerticesWithLabel(q.label(u));
  const uint32_t min_degree = q.StructuralDegree(u);
  const bool prefetch = kernels::PrefetchEnabled();
  uint64_t count = 0;
  for (size_t i = 0; i < vs.size(); ++i) {
    if (prefetch && i + 1 < vs.size()) {
      const std::span<const Graph::LabelCount> next =
          data.NeighborLabelCounts(vs[i + 1]);
      kernels::PrefetchSpan(next.data(), next.size_bytes());
    }
    const VertexId v = vs[i];
    if (data.degree(v) >= min_degree && CandVerify(q, u, data, v)) ++count;
  }
  return count;
}

LabelDegreeIndex::LabelDegreeIndex(const Graph& data) {
  degrees_by_label_.resize(data.NumLabels());
  for (Label l = 0; l < data.NumLabels(); ++l) {
    std::span<const VertexId> vs = data.VerticesWithLabel(l);
    std::vector<uint32_t>& ds = degrees_by_label_[l];
    ds.reserve(vs.size());
    for (VertexId v : vs) ds.push_back(data.degree(v));
    std::sort(ds.begin(), ds.end());
  }
}

uint64_t LabelDegreeIndex::CountAtLeast(Label l, uint32_t min_degree) const {
  if (l >= degrees_by_label_.size()) return 0;
  const std::vector<uint32_t>& ds = degrees_by_label_[l];
  auto it = std::lower_bound(ds.begin(), ds.end(), min_degree);
  return static_cast<uint64_t>(ds.end() - it);
}

}  // namespace cfl
