// Root vertex selection for the query BFS tree (paper Section A.6).
//
// The root must come from the core-set (it is the first vertex matched).
// The paper picks r = argmin |C(u)| / d_q(u): few candidates means few
// partial embeddings; high degree means early pruning. To keep selection
// cheap, candidate counts are first estimated with the label+degree filter
// only; the top-3 vertices by that estimate are then re-scored with the full
// CandVerify filter, and the best of the three wins.

#ifndef CFL_CPI_ROOT_SELECT_H_
#define CFL_CPI_ROOT_SELECT_H_

#include <vector>

#include "cpi/candidate_filter.h"
#include "graph/graph.h"

namespace cfl {

// Selects the BFS-tree root among `choices` (normally the core-set of q; or
// all of V(q) when q is a tree and the core degenerates to the root itself).
// `choices` must be non-empty. `index` is the data graph's LabelDegreeIndex.
VertexId SelectRoot(const Graph& q, const Graph& data,
                    const LabelDegreeIndex& index,
                    const std::vector<VertexId>& choices);

}  // namespace cfl

#endif  // CFL_CPI_ROOT_SELECT_H_
