// CPI construction (paper Section 5).
//
// Building a *minimum* sound CPI is NP-hard (Lemma 4.1), so the paper builds
// a small sound CPI heuristically in two phases, both O(|E(G)| x |E(q)|):
//
//   * Top-down construction (Algorithm 3): per BFS level, forward candidate
//     generation (intersecting neighbor sets of already-visited query
//     neighbors via the counting trick of Lemma 5.1, then CandVerify),
//     followed by backward pruning within the level using same-level
//     non-tree edges (S-NTEs) in the reverse direction.
//   * Bottom-up refinement (Algorithm 4): prune each u.C against the final
//     candidate sets of u's lower-level neighbors (tree children and
//     cross-level non-tree edges pointing down).
//
// Together the two phases exploit both directions of every query edge
// (paper Table 2).
//
// Deviation (documented in DESIGN.md): the paper interleaves adjacency-list
// construction with Algorithm 3 and prunes the lists in Algorithm 4; we
// build the lists once from the final candidate sets, producing an
// identical CPI with the same complexity.
//
// Strategies (paper Section 6 variants):
//   kNaive   — u.C = all data vertices with u's label (CFL-Match-Naive)
//   kTopDown — Algorithm 3 only (CFL-Match-TD)
//   kRefined — Algorithms 3 + 4 (CFL-Match; the default)

#ifndef CFL_CPI_CPI_BUILDER_H_
#define CFL_CPI_CPI_BUILDER_H_

#include <cstdint>
#include <vector>

#include "cpi/cpi.h"
#include "decomp/bfs_tree.h"
#include "graph/graph.h"
#include "obs/stats.h"

namespace cfl {

enum class CpiStrategy {
  kNaive,
  kTopDown,
  kRefined,
};

// Reusable builder: scratch arrays are sized to the data graph once and
// reused across queries (CFL-Match processes query sets of 100).
class CpiBuilder {
 public:
  explicit CpiBuilder(const Graph& data);

  CpiBuilder(const CpiBuilder&) = delete;
  CpiBuilder& operator=(const CpiBuilder&) = delete;

  // Builds the CPI of `q` over the data graph regarding BFS tree `tree`.
  // When `stats` is non-null (and CFL_STATS is on), records per-vertex
  // candidate generation/pruning counts and per-phase build times into it;
  // the accounting identity generated[u] - pruned[u] == |C(u)| holds for
  // every strategy.
  Cpi Build(const Graph& q, const BfsTree& tree,
            CpiStrategy strategy = CpiStrategy::kRefined,
            CpiBuildStats* stats = nullptr);

 private:
  // Candidate-set generation passes; all operate on cand_ (per query vertex).
  void TopDownConstruct(const Graph& q, const BfsTree& tree);
  void BottomUpRefine(const Graph& q, const BfsTree& tree);

  // Intersection-counting primitive (Lemma 5.1): filters the data vertices
  // that have a neighbor in cand_[u'] for every u' in `against`, optionally
  // seeding from scratch (generate) or filtering an existing set (refine).
  void GenerateCandidates(const Graph& q, VertexId u,
                          const std::vector<VertexId>& against);
  void RefineCandidates(VertexId u, const std::vector<VertexId>& against);

  // Shared round loop of the two passes above: filters the sorted survivor
  // list surv_ against cand_[against[first..]] one round at a time, each
  // vprime label-run intersected with surv_ through the kernel layer
  // (kernels/kernels.h). Marks cnt_ with values 1.. per round; callers reset
  // cnt_ over the round-0 seed set afterwards.
  void RefineRounds(Label label, const std::vector<VertexId>& against,
                    size_t first);

  void BuildAdjacency(const BfsTree& tree, Cpi* cpi);

  const Graph& data_;
  std::vector<std::vector<VertexId>> cand_;

  // Stats sink for the Build in flight; null when the caller passed none.
  CpiBuildStats* stats_ = nullptr;

  // Scratch, |V(G)|-sized, reset via touched lists after each use.
  std::vector<uint32_t> cnt_;
  std::vector<VertexId> touched_;

  // Small reused buffers (cleared per query vertex, allocated once).
  std::vector<VertexId> vis_;    // TopDownConstruct: visited query neighbors
  std::vector<VertexId> lower_;  // BottomUpRefine: lower-level neighbors
  std::vector<VertexId> surv_;   // RefineRounds: sorted survivor list
  std::vector<VertexId> isect_;  // RefineRounds: per-run intersection
};

// One-shot convenience wrapper.
Cpi BuildCpi(const Graph& q, const Graph& data, const BfsTree& tree,
             CpiStrategy strategy = CpiStrategy::kRefined);

}  // namespace cfl

#endif  // CFL_CPI_CPI_BUILDER_H_
