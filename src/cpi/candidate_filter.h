// Candidate filters (paper Section A.6 and Algorithm 6).
//
// A data vertex v can be a candidate for query vertex u only if it passes,
// in increasing order of cost:
//   1. label filter:   l_G(v) == l_q(u)
//   2. degree filter:  d_G(v) >= d_q(u)
//   3. maximum-neighbor-degree (MND) filter (Lemma A.1, O(1)):
//      mnd_G(v) >= mnd_q(u)
//   4. NLF (neighbor label frequency) filter: for every label l among u's
//      neighbors, d_G(v, l) >= d_q(u, l)
//
// `CandVerify` is filters 3+4 (Algorithm 6); callers apply 1+2 while
// scanning. `LabelDegreeIndex` answers "how many data vertices have label l
// and degree >= d" in O(log), which root selection (A.6) uses to estimate
// candidate counts cheaply.

#ifndef CFL_CPI_CANDIDATE_FILTER_H_
#define CFL_CPI_CANDIDATE_FILTER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cfl {

// Algorithm 6: MND filter then NLF filter. Assumes the label filter already
// passed; the degree filter is implied by NLF but callers typically check it
// first anyway since it is cheaper.
bool CandVerify(const Graph& q, VertexId u, const Graph& data, VertexId v);

// Number of data vertices passing all four filters for u — the accurate
// score root selection (A.6) uses for its shortlist. Streams the label's
// vertex list with one-ahead NLF-run prefetch (kernels/kernels.h): each
// vertex's verification hides the next one's index loads.
uint64_t CountVerifiedCandidates(const Graph& q, VertexId u,
                                 const Graph& data);

// Label + degree precheck (paper Algorithm 3 lines 1 and 12).
inline bool LabelDegreeFilter(const Graph& q, VertexId u, const Graph& data,
                              VertexId v) {
  return data.label(v) == q.label(u) &&
         data.degree(v) >= q.StructuralDegree(u);
}

// Per-label sorted degree lists over a data graph; build once per data
// graph, reuse across queries.
class LabelDegreeIndex {
 public:
  explicit LabelDegreeIndex(const Graph& data);

  // Number of data vertices with label `l` and effective degree >= `min_degree`.
  uint64_t CountAtLeast(Label l, uint32_t min_degree) const;

 private:
  std::vector<std::vector<uint32_t>> degrees_by_label_;  // each sorted asc
};

}  // namespace cfl

#endif  // CFL_CPI_CANDIDATE_FILTER_H_
