// Concurrent multi-query scheduling over a shared worker pool.
//
// A resident server cannot hand each query a private fork-join ThreadPool:
// N concurrent queries would oversubscribe the machine N-fold, and a pool
// per query pays thread start/join on every request. Instead one TaskPool
// (parallel/task_pool.h) owns the enumeration workers for the whole
// process, and each admitted query fans out a *quota* of shard tasks —
// `max(1, workers / active_queries)` at admission time, so a lone query
// still uses the whole machine while a loaded server degrades to one shard
// per query. Shards claim enumeration roots from a shared atomic cursor,
// exactly the work-stealing scheme of parallel/parallel_match.cc, and the
// session thread joins on a TaskLatch.
//
// Admission control enforces the server's budgets before any work starts:
//   - at most `max_concurrent_queries` queries execute at once; later
//     arrivals block (backpressure to the socket, not a thread per query);
//   - requested time limits are clamped to `max_time_limit_seconds`, and
//     "unlimited" requests are *given* that ceiling — a resident process
//     never runs an unbounded query;
//   - requested embedding caps are clamped to `max_embeddings`.
//
// Execute() runs counting queries. Streaming queries enumerate on their
// session thread via EmbeddingIterator but still take an AdmissionTicket,
// so they count against the same concurrency budget.

#ifndef CFL_SERVE_SCHEDULER_H_
#define CFL_SERVE_SCHEDULER_H_

#include <cstdint>

#include "check/thread_annotations.h"
#include "graph/graph.h"
#include "match/cfl_match.h"
#include "parallel/task_pool.h"

namespace cfl::serve {

struct SchedulerOptions {
  uint32_t workers = 4;

  // Hard per-query shard ceiling; 0 means `workers`.
  uint32_t max_quota = 0;

  // Queries admitted at once; 0 means `2 * workers`.
  uint32_t max_concurrent_queries = 0;

  // Per-query wall-clock ceiling, also substituted for "unlimited"
  // requests; 0 disables the clamp (accepts unlimited queries — only
  // sensible in tests).
  double max_time_limit_seconds = 0.0;

  // Per-query embedding-count ceiling; 0 disables the clamp.
  uint64_t max_embeddings = 0;
};

class QueryScheduler;

// RAII concurrency slot: the constructor blocks until the scheduler is
// below max_concurrent_queries, the destructor frees the slot and wakes one
// waiter. quota() is the worker quota granted at admission.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(QueryScheduler& scheduler);
  ~AdmissionTicket();

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  uint32_t quota() const { return quota_; }

 private:
  QueryScheduler& scheduler_;
  uint32_t quota_;
};

class QueryScheduler {
 public:
  explicit QueryScheduler(const SchedulerOptions& options);

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  uint32_t workers() const { return pool_.size(); }

  // The admission-control clamp alone (no execution): what Execute will
  // actually run `requested` as.
  MatchLimits ClampLimits(const MatchLimits& requested) const;

  // Counting execution of `prepared` against `data` under admission
  // control. The scheduler holds no graph of its own: with dynamic data
  // graphs (dyn/dynamic_graph.h) every query runs against the epoch
  // snapshot it pinned, so the caller passes the snapshot's graph — which
  // must be the instance `prepared`'s CPI candidates refer to. `query`
  // must be the graph `prepared` was built from (the cache representative
  // on a hit). Blocks until the query completes; concurrent callers
  // interleave on the shared workers. `quota_used` (optional) reports the
  // granted quota.
  MatchResult Execute(const Graph& data, const Graph& query,
                      const PreparedQuery& prepared,
                      const MatchLimits& requested,
                      uint32_t* quota_used = nullptr);

  // Queries currently admitted (advisory, for STATS reporting).
  uint32_t ActiveQueries() CFL_EXCLUDES(mu_);

 private:
  friend class AdmissionTicket;

  // Blocks until a slot is free; returns the granted quota.
  uint32_t AcquireSlot() CFL_EXCLUDES(mu_);
  void ReleaseSlot() CFL_EXCLUDES(mu_);

  const SchedulerOptions options_;
  const uint32_t max_concurrent_;
  TaskPool pool_;

  Mutex mu_ CFL_LOCK_LEVEL(40);
  CondVar slot_free_;  // signaled under mu_ when active_ drops
  uint32_t active_ CFL_GUARDED_BY(mu_) = 0;
};

}  // namespace cfl::serve

#endif  // CFL_SERVE_SCHEDULER_H_
