#include "serve/scheduler.h"

#include <algorithm>
#include <atomic>
#include <span>
#include <vector>

#include "check/check.h"
#include "match/enumerator.h"
#include "match/leaf_match.h"
#include "obs/clock.h"

namespace cfl::serve {

namespace {

using obs::WallTimer;

// Same saturating accumulate as parallel/parallel_match.cc: leaf-match
// products can individually saturate at kNoLimit, so a plain fetch_add
// could wrap. Returns the post-add value.
uint64_t AtomicSaturatingAdd(std::atomic<uint64_t>& total,
                             uint64_t delta) noexcept {
  uint64_t current = total.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = SaturatingAdd(current, delta);
  } while (!total.compare_exchange_weak(current, next,
                                        std::memory_order_relaxed));
  return next;
}

}  // namespace

AdmissionTicket::AdmissionTicket(QueryScheduler& scheduler)
    : scheduler_(scheduler), quota_(scheduler.AcquireSlot()) {}

AdmissionTicket::~AdmissionTicket() { scheduler_.ReleaseSlot(); }

QueryScheduler::QueryScheduler(const SchedulerOptions& options)
    : options_(options),
      max_concurrent_(options.max_concurrent_queries != 0
                          ? options.max_concurrent_queries
                          : 2 * (options.workers == 0 ? 1 : options.workers)),
      pool_(options.workers) {}

MatchLimits QueryScheduler::ClampLimits(const MatchLimits& requested) const {
  MatchLimits limits = requested;
  if (options_.max_time_limit_seconds > 0.0 &&
      (limits.time_limit_seconds <= 0.0 ||
       limits.time_limit_seconds > options_.max_time_limit_seconds)) {
    limits.time_limit_seconds = options_.max_time_limit_seconds;
  }
  if (options_.max_embeddings != 0) {
    limits.max_embeddings =
        std::min(limits.max_embeddings, options_.max_embeddings);
  }
  return limits;
}

uint32_t QueryScheduler::AcquireSlot() {
  MutexLock lock(mu_);
  // cfl-analyze: allow(blocking-under-lock) admission backpressure releases mu_
  while (active_ >= max_concurrent_) slot_free_.Wait(mu_);
  ++active_;
  // Quota at admission time: a lone query gets every worker, a loaded
  // server converges to one shard per query. Never zero.
  uint32_t quota = std::max(1u, pool_.size() / active_);
  const uint32_t ceiling =
      options_.max_quota != 0 ? options_.max_quota : pool_.size();
  return std::min(quota, ceiling);
}

void QueryScheduler::ReleaseSlot() {
  {
    MutexLock lock(mu_);
    CFL_CHECK(active_ > 0) << " — slot released twice";
    --active_;
  }
  slot_free_.NotifyOne();
}

uint32_t QueryScheduler::ActiveQueries() {
  MutexLock lock(mu_);
  return active_;
}

MatchResult QueryScheduler::Execute(const Graph& data, const Graph& query,
                                    const PreparedQuery& prepared,
                                    const MatchLimits& requested,
                                    uint32_t* quota_used) {
  AdmissionTicket ticket(*this);
  if (quota_used != nullptr) *quota_used = ticket.quota();

  MatchResult result;
  WallTimer total_timer;
  const MatchLimits limits = ClampLimits(requested);
  const Cpi& cpi = prepared.cpi;
  result.build_seconds = prepared.build_seconds;
  result.order_seconds = prepared.order_seconds;
  result.index_entries = cpi.SizeInEntries();

  if (prepared.no_results || prepared.order.steps.empty()) {
    result.total_seconds = total_timer.Lap();
    return result;
  }

  WallTimer phase_timer;
  const std::span<const MatchStep> steps(prepared.order.steps);
  const uint32_t root_count =
      CheckedCandidateCount(cpi.Candidates(steps[0].u).size());
  const uint64_t cap = limits.max_embeddings;
  const bool compressed = data.HasMultiplicities();

  // Shared across this query's shard tasks: atomics only, the same
  // discipline (and the same roles) as parallel/parallel_match.cc — `total`
  // is the embedding budget, `stop` fans the cap out, `next_root` is the
  // work-stealing cursor. The deadline instant is fixed before the fan-out
  // so shards that start late (queued behind other queries' shards) expire
  // at the same wall-clock moment: an admitted query's clock runs even
  // while it waits for a worker.
  std::atomic<uint32_t> next_root CFL_ATOMIC_INTENT(counter){0};
  std::atomic<uint64_t> total CFL_ATOMIC_INTENT(counter){0};
  std::atomic<bool> stop CFL_ATOMIC_INTENT(flag){false};
  std::atomic<bool> timed_out CFL_ATOMIC_INTENT(flag){false};

  const Deadline shared_deadline(limits.time_limit_seconds);
  const LeafMatcher leaf_prototype(query, cpi, prepared.order.leaves);

  const uint32_t shards = std::min(ticket.quota(), std::max(root_count, 1u));
  std::vector<uint64_t> tried(shards, 0);
  std::vector<uint64_t> bound(shards, 0);

  TaskLatch latch(shards);
  for (uint32_t shard = 0; shard < shards; ++shard) {
    pool_.Submit([&, shard] {
      EnumeratorState state(query.NumVertices(), data.NumVertices());
      LeafMatcher leaf_matcher = leaf_prototype;
      Deadline deadline = shared_deadline;

      auto visit = [&]() {
        uint64_t count = 1;
        if (compressed) count = ExpansionFactor(data, state.mapping);
        if (leaf_matcher.HasLeaves()) {
          count = SaturatingMul(count, leaf_matcher.CountEmbeddings(data, state));
        }
        uint64_t after = AtomicSaturatingAdd(total, count);
        if (after >= cap) {
          stop.store(true, std::memory_order_relaxed);
          return false;
        }
        return !stop.load(std::memory_order_relaxed);
      };

      while (!stop.load(std::memory_order_relaxed)) {
        const uint32_t r = next_root.fetch_add(1, std::memory_order_relaxed);
        if (r >= root_count) break;
        EnumerateStatus status = EnumeratePartial(data, cpi, steps, state,
                                                  deadline, visit, r, r + 1);
        if (status == EnumerateStatus::kTimedOut) {
          timed_out.store(true, std::memory_order_relaxed);
          break;
        }
        if (status == EnumerateStatus::kStopped) break;
      }
      tried[shard] = state.candidates_tried;
      bound[shard] = state.candidates_bound;
      latch.CountDown();
    });
  }
  latch.Wait();

  result.embeddings = total.load(std::memory_order_relaxed);
  result.timed_out = timed_out.load(std::memory_order_relaxed);
  // The engine-wide tie-break (asserted by cfl_difftest): reached_limit iff
  // the cap was hit, independent of a simultaneous deadline expiry.
  result.reached_limit = result.embeddings >= cap;
  for (uint32_t s = 0; s < shards; ++s) {
    result.candidates_tried += tried[s];
    result.candidates_bound += bound[s];
  }
  result.enumerate_seconds = phase_timer.Lap();
  result.total_seconds = total_timer.Lap();
  return result;
}

}  // namespace cfl::serve
