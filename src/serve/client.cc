#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "graph/graph_io.h"

namespace cfl::serve {

ServeClient::~ServeClient() { Close(); }

void ServeClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

bool ServeClient::Connect(const std::string& socket_path) {
  Close();
  fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path empty or longer than sun_path";
    Close();
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    Close();
    return false;
  }
  return true;
}

bool ServeClient::SendAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool ServeClient::ReadLine(std::string* line) {
  while (true) {
    size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      error_ = n == 0 ? "connection closed by server"
                      : std::string("recv: ") + std::strerror(errno);
      return false;
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

ServeClient::Reply ServeClient::RunQuery(const Graph& query, QueryMode mode,
                                         const MatchLimits& limits) {
  Reply reply;
  if (fd_ < 0) {
    reply.error = "not connected";
    return reply;
  }
  RequestHeader header;
  header.kind = RequestKind::kQuery;
  header.mode = mode;
  header.limits = limits;

  std::ostringstream request;
  request << FormatRequestHeader(header) << '\n';
  WriteGraph(query, request);
  request << "END\n";
  if (!SendAll(request.str())) {
    reply.error = error_;
    return reply;
  }

  std::string line;
  while (true) {
    if (!ReadLine(&line)) {
      reply.error = error_;
      return reply;
    }
    if (line.rfind("EMB", 0) == 0) {
      std::optional<Embedding> embedding = ParseEmbeddingLine(line);
      if (!embedding.has_value()) {
        reply.error = "malformed EMB line: '" + line + "'";
        return reply;
      }
      reply.embeddings.push_back(*std::move(embedding));
      continue;
    }
    if (line.rfind("ERR", 0) == 0) {
      reply.error = line.size() > 4 ? line.substr(4) : "server error";
      return reply;
    }
    std::string parse_error;
    std::optional<QueryOutcome> outcome = ParseResultLine(line, &parse_error);
    if (!outcome.has_value()) {
      reply.error = parse_error;
      return reply;
    }
    reply.outcome = *outcome;
    reply.ok = true;
    return reply;
  }
}

ServeClient::Reply ServeClient::Count(const Graph& query,
                                      const MatchLimits& limits) {
  return RunQuery(query, QueryMode::kCount, limits);
}

ServeClient::Reply ServeClient::Stream(const Graph& query,
                                       const MatchLimits& limits) {
  return RunQuery(query, QueryMode::kStream, limits);
}

bool ServeClient::Ping() {
  if (fd_ < 0 || !SendAll("PING\n")) return false;
  std::string line;
  return ReadLine(&line) && line == "PONG";
}

ServeClient::UpdateReply ServeClient::Update(
    const std::vector<UpdateOp>& ops) {
  UpdateReply reply;
  if (fd_ < 0) {
    reply.error = "not connected";
    return reply;
  }
  std::ostringstream request;
  request << "UPDATE\n";
  for (const UpdateOp& op : ops) request << FormatUpdateOp(op) << '\n';
  request << "END\n";
  if (!SendAll(request.str())) {
    reply.error = error_;
    return reply;
  }
  std::string line;
  if (!ReadLine(&line)) {
    reply.error = error_;
    return reply;
  }
  if (line.rfind("ERR", 0) == 0) {
    reply.error = line.size() > 4 ? line.substr(4) : "server error";
    return reply;
  }
  std::string parse_error;
  std::optional<UpdateOutcome> outcome = ParseUpdatedLine(line, &parse_error);
  if (!outcome.has_value()) {
    reply.error = parse_error;
    return reply;
  }
  reply.outcome = *outcome;
  reply.ok = true;
  return reply;
}

std::map<std::string, uint64_t> ServeClient::Stats() {
  std::map<std::string, uint64_t> stats;
  if (fd_ < 0 || !SendAll("STATS\n")) return stats;
  std::string line;
  if (!ReadLine(&line) || line.rfind("STATS", 0) != 0) return stats;
  std::istringstream in(line);
  std::string token;
  in >> token;  // "STATS"
  while (in >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    stats[token.substr(0, eq)] =
        std::strtoull(token.c_str() + eq + 1, nullptr, 10);
  }
  return stats;
}

bool ServeClient::Shutdown() {
  if (fd_ < 0 || !SendAll("SHUTDOWN\n")) return false;
  std::string line;
  return ReadLine(&line) && line == "BYE";
}

}  // namespace cfl::serve
