// Canonical query forms for the plan cache.
//
// The plan/CPI cache must give isomorphic-but-relabeled queries one shared
// PreparedQuery. Keys are therefore a *canonical hash*: iterated
// degree/label refinement (1-dimensional Weisfeiler-Leman color refinement
// seeded with (label, degree)), folded into one order-independent digest.
// Vertex numbering cannot influence the hash, so any two isomorphic queries
// collide by construction.
//
// WL refinement is not a complete isomorphism invariant (regular
// non-isomorphic graphs can share a hash), so the hash only selects a
// bucket: the cache confirms a hit by finding an actual isomorphism onto
// the bucket's representative query with `FindIsomorphism`, which doubles
// as the vertex remap needed to translate streamed embeddings back into
// the caller's numbering. A hash collision between non-isomorphic queries
// is therefore a performance event, never a correctness event.

#ifndef CFL_SERVE_CANONICAL_H_
#define CFL_SERVE_CANONICAL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace cfl::serve {

// Stable per-vertex WL colors after refinement to a fixed point (at most
// |V| rounds). Isomorphic graphs yield identical color multisets, and
// corresponding vertices get identical colors.
std::vector<uint64_t> WlColors(const Graph& g);

// Order-independent canonical hash of (|V|, |E|, refined color multiset).
// Equal for isomorphic graphs; unequal with high probability otherwise.
uint64_t CanonicalQueryHash(const Graph& g);

// An isomorphism from `a` onto `b` (result[va] = vb) if one exists.
// Backtracking seeded and pruned by the WL colors, so the common cases —
// actual relabelings of cached queries — resolve near-linearly. Both
// graphs are expected to be query-sized (tens to hundreds of vertices).
std::optional<std::vector<VertexId>> FindIsomorphism(const Graph& a,
                                                     const Graph& b);

}  // namespace cfl::serve

#endif  // CFL_SERVE_CANONICAL_H_
