#include "serve/protocol.h"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace cfl::serve {

namespace {

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

// "key=value" -> (key, value); tokens without '=' parse as (token, "").
std::pair<std::string, std::string> SplitKv(const std::string& token) {
  size_t eq = token.find('=');
  if (eq == std::string::npos) return {token, ""};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

std::string FormatF64(double v) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << v;
  return os.str();
}

}  // namespace

std::optional<RequestHeader> ParseRequestHeader(const std::string& line,
                                                std::string* error) {
  if (line.size() > kMaxRequestLineBytes) {
    if (error != nullptr) {
      *error = "request line exceeds " +
               std::to_string(kMaxRequestLineBytes) + " bytes";
    }
    return std::nullopt;
  }
  std::vector<std::string> tokens = SplitWs(line);
  if (tokens.empty()) {
    if (error != nullptr) *error = "empty request line";
    return std::nullopt;
  }
  RequestHeader header;
  if (tokens[0] == "PING") {
    header.kind = RequestKind::kPing;
    return header;
  }
  if (tokens[0] == "STATS") {
    header.kind = RequestKind::kStats;
    return header;
  }
  if (tokens[0] == "SHUTDOWN") {
    header.kind = RequestKind::kShutdown;
    return header;
  }
  if (tokens[0] == "UPDATE") {
    if (tokens.size() != 1) {
      if (error != nullptr) *error = "UPDATE takes no options";
      return std::nullopt;
    }
    header.kind = RequestKind::kUpdate;
    return header;
  }
  if (tokens[0] != "QUERY") {
    if (error != nullptr) *error = "unknown request '" + tokens[0] + "'";
    return std::nullopt;
  }
  header.kind = RequestKind::kQuery;
  for (size_t i = 1; i < tokens.size(); ++i) {
    auto [key, value] = SplitKv(tokens[i]);
    if (key == "mode") {
      if (value == "count") {
        header.mode = QueryMode::kCount;
      } else if (value == "stream") {
        header.mode = QueryMode::kStream;
      } else {
        if (error != nullptr) *error = "bad mode '" + value + "'";
        return std::nullopt;
      }
    } else if (key == "max") {
      uint64_t max = 0;
      if (!ParseU64(value, &max) || max == 0) {
        if (error != nullptr) *error = "bad max '" + value + "'";
        return std::nullopt;
      }
      header.limits.max_embeddings = max;
    } else if (key == "time") {
      double seconds = 0.0;
      if (!ParseF64(value, &seconds) || seconds <= 0.0) {
        if (error != nullptr) *error = "bad time '" + value + "'";
        return std::nullopt;
      }
      header.limits.time_limit_seconds = seconds;
    } else {
      if (error != nullptr) *error = "unknown QUERY option '" + key + "'";
      return std::nullopt;
    }
  }
  return header;
}

std::string FormatRequestHeader(const RequestHeader& header) {
  switch (header.kind) {
    case RequestKind::kPing:
      return "PING";
    case RequestKind::kStats:
      return "STATS";
    case RequestKind::kShutdown:
      return "SHUTDOWN";
    case RequestKind::kUpdate:
      return "UPDATE";
    case RequestKind::kQuery:
      break;
  }
  std::string line = "QUERY mode=";
  line += header.mode == QueryMode::kStream ? "stream" : "count";
  if (header.limits.max_embeddings != kNoLimit) {
    line += " max=" + std::to_string(header.limits.max_embeddings);
  }
  if (header.limits.time_limit_seconds > 0.0) {
    line += " time=" + FormatF64(header.limits.time_limit_seconds);
  }
  return line;
}

std::string FormatResultLine(const QueryOutcome& outcome) {
  std::string line = "RESULT embeddings=" + std::to_string(outcome.embeddings);
  line += " reached_limit=" + std::string(outcome.reached_limit ? "1" : "0");
  line += " timed_out=" + std::string(outcome.timed_out ? "1" : "0");
  switch (outcome.cache) {
    case QueryOutcome::Cache::kHit:
      line += " cache=hit";
      break;
    case QueryOutcome::Cache::kMiss:
      line += " cache=miss";
      break;
    case QueryOutcome::Cache::kOff:
      line += " cache=off";
      break;
  }
  line += " prepare_ms=" + FormatF64(outcome.prepare_ms);
  line += " enum_ms=" + FormatF64(outcome.enum_ms);
  line += " total_ms=" + FormatF64(outcome.total_ms);
  line += " quota=" + std::to_string(outcome.quota);
  return line;
}

std::optional<QueryOutcome> ParseResultLine(const std::string& line,
                                            std::string* error) {
  std::vector<std::string> tokens = SplitWs(line);
  if (tokens.empty() || tokens[0] != "RESULT") {
    if (error != nullptr) *error = "not a RESULT line: '" + line + "'";
    return std::nullopt;
  }
  QueryOutcome outcome;
  for (size_t i = 1; i < tokens.size(); ++i) {
    auto [key, value] = SplitKv(tokens[i]);
    uint64_t u = 0;
    double f = 0.0;
    if (key == "embeddings" && ParseU64(value, &u)) {
      outcome.embeddings = u;
    } else if (key == "reached_limit" && ParseU64(value, &u)) {
      outcome.reached_limit = u != 0;
    } else if (key == "timed_out" && ParseU64(value, &u)) {
      outcome.timed_out = u != 0;
    } else if (key == "cache") {
      if (value == "hit") {
        outcome.cache = QueryOutcome::Cache::kHit;
      } else if (value == "miss") {
        outcome.cache = QueryOutcome::Cache::kMiss;
      } else if (value == "off") {
        outcome.cache = QueryOutcome::Cache::kOff;
      } else {
        if (error != nullptr) *error = "bad cache state '" + value + "'";
        return std::nullopt;
      }
    } else if (key == "prepare_ms" && ParseF64(value, &f)) {
      outcome.prepare_ms = f;
    } else if (key == "enum_ms" && ParseF64(value, &f)) {
      outcome.enum_ms = f;
    } else if (key == "total_ms" && ParseF64(value, &f)) {
      outcome.total_ms = f;
    } else if (key == "quota" && ParseU64(value, &u)) {
      outcome.quota = static_cast<uint32_t>(u);
    } else {
      if (error != nullptr) *error = "bad RESULT field '" + tokens[i] + "'";
      return std::nullopt;
    }
  }
  return outcome;
}

std::string FormatEmbeddingLine(const Embedding& embedding) {
  std::string line = "EMB";
  for (VertexId v : embedding) {
    line += ' ';
    line += std::to_string(v);
  }
  return line;
}

std::string FormatUpdateOp(const UpdateOp& op) {
  switch (op.kind) {
    case UpdateOp::Kind::kAddVertex:
      return "av " + std::to_string(op.u);
    case UpdateOp::Kind::kRemoveVertex:
      return "rv " + std::to_string(op.u);
    case UpdateOp::Kind::kAddEdge:
      return "ae " + std::to_string(op.u) + " " + std::to_string(op.v);
    case UpdateOp::Kind::kRemoveEdge:
      return "re " + std::to_string(op.u) + " " + std::to_string(op.v);
  }
  return "";
}

std::optional<UpdateOp> ParseUpdateOp(const std::string& line,
                                      std::string* error) {
  std::vector<std::string> tokens = SplitWs(line);
  auto fail = [&](const std::string& message) -> std::optional<UpdateOp> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (tokens.empty()) return fail("empty update op");
  UpdateOp op;
  size_t want = 0;
  if (tokens[0] == "av") {
    op.kind = UpdateOp::Kind::kAddVertex;
    want = 1;
  } else if (tokens[0] == "rv") {
    op.kind = UpdateOp::Kind::kRemoveVertex;
    want = 1;
  } else if (tokens[0] == "ae") {
    op.kind = UpdateOp::Kind::kAddEdge;
    want = 2;
  } else if (tokens[0] == "re") {
    op.kind = UpdateOp::Kind::kRemoveEdge;
    want = 2;
  } else {
    return fail("unknown update op '" + tokens[0] + "'");
  }
  if (tokens.size() != want + 1) {
    return fail("op '" + tokens[0] + "' takes " + std::to_string(want) +
                " argument(s)");
  }
  uint64_t a = 0;
  if (!ParseU64(tokens[1], &a) || a > static_cast<uint32_t>(-1)) {
    return fail("bad op argument '" + tokens[1] + "'");
  }
  op.u = static_cast<uint32_t>(a);
  if (want == 2) {
    if (!ParseU64(tokens[2], &a) || a > static_cast<uint32_t>(-1)) {
      return fail("bad op argument '" + tokens[2] + "'");
    }
    op.v = static_cast<uint32_t>(a);
  }
  return op;
}

std::string FormatUpdatedLine(const UpdateOutcome& outcome) {
  std::string line = "UPDATED epoch=" + std::to_string(outcome.epoch);
  line += " added_vertices=" + std::to_string(outcome.added_vertices);
  line += " removed_vertices=" + std::to_string(outcome.removed_vertices);
  line += " added_edges=" + std::to_string(outcome.added_edges);
  line += " removed_edges=" + std::to_string(outcome.removed_edges);
  line += " dirty_labels=" + std::to_string(outcome.dirty_labels);
  line += " invalidated=" + std::to_string(outcome.invalidated);
  line += " retained=" + std::to_string(outcome.retained);
  return line;
}

std::optional<UpdateOutcome> ParseUpdatedLine(const std::string& line,
                                              std::string* error) {
  std::vector<std::string> tokens = SplitWs(line);
  if (tokens.empty() || tokens[0] != "UPDATED") {
    if (error != nullptr) *error = "not an UPDATED line: '" + line + "'";
    return std::nullopt;
  }
  UpdateOutcome outcome;
  for (size_t i = 1; i < tokens.size(); ++i) {
    auto [key, value] = SplitKv(tokens[i]);
    uint64_t u = 0;
    if (!ParseU64(value, &u)) {
      if (error != nullptr) *error = "bad UPDATED field '" + tokens[i] + "'";
      return std::nullopt;
    }
    if (key == "epoch") {
      outcome.epoch = u;
    } else if (key == "added_vertices") {
      outcome.added_vertices = static_cast<uint32_t>(u);
    } else if (key == "removed_vertices") {
      outcome.removed_vertices = static_cast<uint32_t>(u);
    } else if (key == "added_edges") {
      outcome.added_edges = u;
    } else if (key == "removed_edges") {
      outcome.removed_edges = u;
    } else if (key == "dirty_labels") {
      outcome.dirty_labels = static_cast<uint32_t>(u);
    } else if (key == "invalidated") {
      outcome.invalidated = u;
    } else if (key == "retained") {
      outcome.retained = u;
    } else {
      if (error != nullptr) *error = "bad UPDATED field '" + tokens[i] + "'";
      return std::nullopt;
    }
  }
  return outcome;
}

std::optional<Embedding> ParseEmbeddingLine(const std::string& line) {
  std::vector<std::string> tokens = SplitWs(line);
  if (tokens.empty() || tokens[0] != "EMB") return std::nullopt;
  Embedding embedding;
  embedding.reserve(tokens.size() - 1);
  for (size_t i = 1; i < tokens.size(); ++i) {
    uint64_t v = 0;
    if (!ParseU64(tokens[i], &v)) return std::nullopt;
    embedding.push_back(static_cast<VertexId>(v));
  }
  return embedding;
}

}  // namespace cfl::serve
