// Resident query server over a local (AF_UNIX) stream socket.
//
// `QueryServer` loads nothing itself: it is handed the data graph once and
// serves any number of queries against it — the whole point of residency is
// paying graph load + index warm-up once instead of per cfl_query run. The
// server owns the graph's evolution from then on: UPDATE requests commit
// mutation batches through a `DynamicGraph` (dyn/dynamic_graph.h), and
// every query runs against the immutable epoch snapshot it pins on arrival
// (snapshot isolation: a query admitted at epoch e answers as of e, even
// if updates commit mid-flight). Per QUERY request it:
//
//   1. pins the current epoch snapshot;
//   2. looks the query up in the plan/CPI cache (serve/plan_cache.h);
//      isomorphic queries, under any vertex numbering, share one plan.
//      Updates invalidate exactly the entries whose query labels the batch
//      dirtied — from inside the commit's critical section, so a query can
//      never hit a plan its own epoch staled;
//   3. on a miss, runs CflMatcher::Prepare — serialized by a mutex, because
//      Prepare reuses the CPI builder's scratch and is not thread-safe
//      (enumeration, the expensive half under load, is what parallelizes).
//      The matcher is rebound when the epoch moved since the last prepare;
//      a plan prepared against a snapshot that is no longer current is
//      used for its own query but not cached;
//   4. executes: counting queries fan out over the shared worker pool under
//      the scheduler's admission control (serve/scheduler.h); streaming
//      queries pull embeddings one at a time through EmbeddingIterator and
//      write them back as EMB lines, remapped to the client's own vertex
//      numbering when served from a cached isomorphic plan.
//
// Concurrency model: the accept loop runs on the caller of Serve();
// connections are handled as tasks on a session TaskPool (one task per
// connection, requests on a connection are sequential); enumeration shards
// run on the scheduler's separate worker TaskPool. Session tasks block on
// socket reads and latch joins, worker tasks never block on anything —
// keeping the two pools separate is what makes that rule (and so
// deadlock-freedom) hold by construction.
//
// Shutdown: SHUTDOWN on any connection, or RequestShutdown() from any
// thread, wakes the accept loop via a self-pipe; open connections are then
// shut down at the socket layer so parked session tasks observe EOF and
// drain. Serve() returns once the listener is closed; the destructor joins
// both pools.

#ifndef CFL_SERVE_SERVER_H_
#define CFL_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "check/thread_annotations.h"
#include "dyn/dynamic_graph.h"
#include "graph/graph.h"
#include "match/cfl_match.h"
#include "parallel/task_pool.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"

namespace cfl::serve {

struct ServeOptions {
  std::string socket_path;

  // Enumeration workers (the scheduler's pool).
  uint32_t workers = 4;

  // Concurrent connections; one parked session task each.
  uint32_t sessions = 8;

  // Plan-cache budget; 0 runs the server with caching OFF (the load
  // driver's baseline mode).
  uint64_t cache_bytes = 256ull << 20;

  // Admission-control budgets (see SchedulerOptions).
  uint32_t max_quota = 0;
  uint32_t max_concurrent_queries = 0;
  double max_time_limit_seconds = 30.0;
  uint64_t max_embeddings = 0;

  // Dynamic-graph knobs (see dyn::DynOptions).
  double compact_touched_fraction = 0.25;
  bool background_compaction = true;
};

struct ServerCounters {
  uint64_t queries = 0;        // QUERY requests completed
  uint64_t stream_queries = 0;
  uint64_t updates = 0;        // UPDATE batches committed
  // UPDATE commit attempts that lost the race to a concurrent batch and
  // were replayed against the fresh snapshot.
  uint64_t update_retries = 0;
  uint64_t errors = 0;         // ERR responses sent
  uint64_t connections = 0;
};

class QueryServer {
 public:
  // The server copies `data` once and owns its evolution (UPDATE batches
  // advance it epoch by epoch); the caller's instance is not read again.
  QueryServer(const Graph& data, const ServeOptions& options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds the socket and serves until shutdown is requested. Blocking.
  // Returns 0 on clean shutdown, -1 if the socket could not be set up (the
  // error text is available via last_error()).
  int Serve();

  // Thread-safe; wakes the accept loop and unblocks parked sessions. Also
  // triggered by a SHUTDOWN request on any connection.
  void RequestShutdown();

  const std::string& last_error() const { return last_error_; }
  const ServeOptions& options() const { return options_; }

 private:
  void HandleConnection(int fd);
  // Reads graph lines up to END, answers the query. Returns false if the
  // connection should close.
  bool HandleQuery(int fd, class LineReader& reader,
                   const RequestHeader& header);
  // Reads op lines up to END, commits the batch, answers UPDATED or ERR.
  bool HandleUpdate(int fd, class LineReader& reader);
  bool HandleStats(int fd);

  void RegisterConnection(int fd) CFL_EXCLUDES(conn_mu_);
  void UnregisterConnection(int fd) CFL_EXCLUDES(conn_mu_);
  void ShutdownAllConnections() CFL_EXCLUDES(conn_mu_);

  void CountQuery(bool stream) CFL_EXCLUDES(counter_mu_);
  void CountError() CFL_EXCLUDES(counter_mu_);

  const ServeOptions options_;

  // The data graph's epochs. All query/update state hangs off this; the
  // server never holds a bare `const Graph&` anymore.
  dyn::DynamicGraph dyn_;

  // CflMatcher::Prepare is not thread-safe; level 20 < DynamicGraph's 22 <
  // PlanCache's 30, because HandleQuery inserts into the cache under
  // prepare_mu_ and HandleUpdate commits (and invalidates the cache from
  // the commit hook) under it. The matcher is lazily rebound to the
  // querying snapshot's epoch; matcher_graph_ keeps that epoch's graph
  // alive for as long as the matcher references it.
  Mutex prepare_mu_ CFL_LOCK_LEVEL(20);
  std::shared_ptr<const Graph> matcher_graph_ CFL_GUARDED_BY(prepare_mu_);
  std::unique_ptr<CflMatcher> matcher_ CFL_GUARDED_BY(prepare_mu_);
  dyn::Epoch matcher_epoch_ CFL_GUARDED_BY(prepare_mu_) = 0;

  PlanCache cache_;
  QueryScheduler scheduler_;

  std::atomic<bool> stop_ CFL_ATOMIC_INTENT(flag){false};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: RequestShutdown -> accept loop
  std::string last_error_;

  Mutex conn_mu_ CFL_LOCK_LEVEL(60);
  std::set<int> open_fds_ CFL_GUARDED_BY(conn_mu_);

  Mutex counter_mu_ CFL_LOCK_LEVEL(70);
  ServerCounters counters_ CFL_GUARDED_BY(counter_mu_);

  // Last: sessions join before members they use are destroyed.
  std::unique_ptr<TaskPool> session_pool_;
};

}  // namespace cfl::serve

#endif  // CFL_SERVE_SERVER_H_
