// Resident query server over a local (AF_UNIX) stream socket.
//
// `QueryServer` loads nothing itself: it is handed the data graph once and
// serves any number of queries against it — the whole point of residency is
// paying graph load + index warm-up once instead of per cfl_query run. Per
// request it:
//
//   1. looks the query up in the plan/CPI cache (serve/plan_cache.h);
//      isomorphic queries, under any vertex numbering, share one plan;
//   2. on a miss, runs CflMatcher::Prepare — serialized by a mutex, because
//      Prepare reuses the CPI builder's scratch and is not thread-safe
//      (enumeration, the expensive half under load, is what parallelizes);
//   3. executes: counting queries fan out over the shared worker pool under
//      the scheduler's admission control (serve/scheduler.h); streaming
//      queries pull embeddings one at a time through EmbeddingIterator and
//      write them back as EMB lines, remapped to the client's own vertex
//      numbering when served from a cached isomorphic plan.
//
// Concurrency model: the accept loop runs on the caller of Serve();
// connections are handled as tasks on a session TaskPool (one task per
// connection, requests on a connection are sequential); enumeration shards
// run on the scheduler's separate worker TaskPool. Session tasks block on
// socket reads and latch joins, worker tasks never block on anything —
// keeping the two pools separate is what makes that rule (and so
// deadlock-freedom) hold by construction.
//
// Shutdown: SHUTDOWN on any connection, or RequestShutdown() from any
// thread, wakes the accept loop via a self-pipe; open connections are then
// shut down at the socket layer so parked session tasks observe EOF and
// drain. Serve() returns once the listener is closed; the destructor joins
// both pools.

#ifndef CFL_SERVE_SERVER_H_
#define CFL_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "check/thread_annotations.h"
#include "graph/graph.h"
#include "match/cfl_match.h"
#include "parallel/task_pool.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"

namespace cfl::serve {

struct ServeOptions {
  std::string socket_path;

  // Enumeration workers (the scheduler's pool).
  uint32_t workers = 4;

  // Concurrent connections; one parked session task each.
  uint32_t sessions = 8;

  // Plan-cache budget; 0 runs the server with caching OFF (the load
  // driver's baseline mode).
  uint64_t cache_bytes = 256ull << 20;

  // Admission-control budgets (see SchedulerOptions).
  uint32_t max_quota = 0;
  uint32_t max_concurrent_queries = 0;
  double max_time_limit_seconds = 30.0;
  uint64_t max_embeddings = 0;
};

struct ServerCounters {
  uint64_t queries = 0;        // QUERY requests completed
  uint64_t stream_queries = 0;
  uint64_t errors = 0;         // ERR responses sent
  uint64_t connections = 0;
};

class QueryServer {
 public:
  // `data` must outlive the server.
  QueryServer(const Graph& data, const ServeOptions& options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds the socket and serves until shutdown is requested. Blocking.
  // Returns 0 on clean shutdown, -1 if the socket could not be set up (the
  // error text is available via last_error()).
  int Serve();

  // Thread-safe; wakes the accept loop and unblocks parked sessions. Also
  // triggered by a SHUTDOWN request on any connection.
  void RequestShutdown();

  const std::string& last_error() const { return last_error_; }
  const ServeOptions& options() const { return options_; }

 private:
  void HandleConnection(int fd);
  // Reads graph lines up to END, answers the query. Returns false if the
  // connection should close.
  bool HandleQuery(int fd, class LineReader& reader,
                   const RequestHeader& header);
  bool HandleStats(int fd);

  void RegisterConnection(int fd) CFL_EXCLUDES(conn_mu_);
  void UnregisterConnection(int fd) CFL_EXCLUDES(conn_mu_);
  void ShutdownAllConnections() CFL_EXCLUDES(conn_mu_);

  void CountQuery(bool stream) CFL_EXCLUDES(counter_mu_);
  void CountError() CFL_EXCLUDES(counter_mu_);

  const Graph& data_;
  const ServeOptions options_;

  CflMatcher matcher_;
  // CflMatcher::Prepare is not thread-safe; level 20 < PlanCache's 30
  // because HandleQuery inserts into the cache under prepare_mu_.
  Mutex prepare_mu_ CFL_LOCK_LEVEL(20);
  PlanCache cache_;
  QueryScheduler scheduler_;

  std::atomic<bool> stop_ CFL_ATOMIC_INTENT(flag){false};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: RequestShutdown -> accept loop
  std::string last_error_;

  Mutex conn_mu_ CFL_LOCK_LEVEL(60);
  std::set<int> open_fds_ CFL_GUARDED_BY(conn_mu_);

  Mutex counter_mu_ CFL_LOCK_LEVEL(70);
  ServerCounters counters_ CFL_GUARDED_BY(counter_mu_);

  // Last: sessions join before members they use are destroyed.
  std::unique_ptr<TaskPool> session_pool_;
};

}  // namespace cfl::serve

#endif  // CFL_SERVE_SERVER_H_
