#include "serve/canonical.h"

#include <algorithm>
#include <cstddef>

#include "check/check.h"

namespace cfl::serve {
namespace {

// splitmix64 finalizer: cheap, well-distributed 64-bit mixing.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Combine(uint64_t seed, uint64_t value) {
  return Mix(seed ^ Mix(value));
}

// One refinement round: color'[v] = hash(color[v], sorted neighbor colors).
// Sorting makes the digest independent of adjacency-list order; hashing the
// sorted sequence *positionally* keeps multiset multiplicities significant.
std::vector<uint64_t> RefineOnce(const Graph& g,
                                 const std::vector<uint64_t>& color) {
  std::vector<uint64_t> next(color.size());
  std::vector<uint64_t> around;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    around.clear();
    for (VertexId u : g.Neighbors(v)) around.push_back(color[u]);
    std::sort(around.begin(), around.end());
    uint64_t h = Combine(0x5ca1ab1eULL, color[v]);
    for (uint64_t c : around) h = Combine(h, c);
    next[v] = h;
  }
  return next;
}

size_t DistinctCount(std::vector<uint64_t> colors) {
  std::sort(colors.begin(), colors.end());
  return static_cast<size_t>(
      std::unique(colors.begin(), colors.end()) - colors.begin());
}

}  // namespace

std::vector<uint64_t> WlColors(const Graph& g) {
  std::vector<uint64_t> color(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    color[v] = Combine(Combine(Combine(0xc0ffeeULL, g.label(v)), g.degree(v)),
                       g.multiplicity(v));
  }
  // Refine until the partition stops splitting. |V| rounds always suffice
  // (each round either splits a class or reaches the fixed point), and
  // queries are small, so no tighter bound is needed.
  size_t classes = DistinctCount(color);
  for (VertexId round = 0; round < g.NumVertices(); ++round) {
    std::vector<uint64_t> next = RefineOnce(g, color);
    size_t next_classes = DistinctCount(next);
    color = std::move(next);
    if (next_classes == classes) break;
    classes = next_classes;
  }
  return color;
}

uint64_t CanonicalQueryHash(const Graph& g) {
  std::vector<uint64_t> color = WlColors(g);
  // Fold the color *multiset* (sorted sequence) so vertex numbering cannot
  // leak into the digest.
  std::sort(color.begin(), color.end());
  uint64_t h = Combine(Combine(0xfacadeULL, g.NumVertices()), g.NumEdges());
  for (uint64_t c : color) h = Combine(h, c);
  return h;
}

namespace {

// Backtracking state for FindIsomorphism.
struct IsoSearch {
  const Graph& a;
  const Graph& b;
  const std::vector<uint64_t>& color_a;
  const std::vector<uint64_t>& color_b;
  const std::vector<VertexId>& order;  // vertices of `a`, most-constrained 1st
  std::vector<VertexId> map;           // a-vertex -> b-vertex or kInvalid
  std::vector<bool> used;              // b-vertex already an image

  bool Feasible(VertexId va, VertexId vb) const {
    if (used[vb]) return false;
    if (color_a[va] != color_b[vb]) return false;
    if (a.label(va) != b.label(vb)) return false;
    if (a.degree(va) != b.degree(vb)) return false;
    if (a.multiplicity(va) != b.multiplicity(vb)) return false;
    // Every already-mapped a-neighbor must be a b-neighbor of vb. Checking
    // edge preservation alone suffices for full isomorphism: a vertex
    // bijection preserving all |E(a)| edges into a graph with |E(b)| ==
    // |E(a)| edges is automatically edge-surjective.
    for (VertexId ua : a.Neighbors(va)) {
      if (map[ua] != kInvalidVertex && !b.HasEdge(map[ua], vb)) return false;
    }
    return true;
  }

  bool Extend(size_t depth) {
    if (depth == order.size()) return true;
    VertexId va = order[depth];
    for (VertexId vb = 0; vb < b.NumVertices(); ++vb) {
      if (!Feasible(va, vb)) continue;
      map[va] = vb;
      used[vb] = true;
      if (Extend(depth + 1)) return true;
      map[va] = kInvalidVertex;
      used[vb] = false;
    }
    return false;
  }
};

// Most-constrained-first matching order over `a`: BFS from the vertex with
// the rarest (color, degree) signature so later vertices are anchored by
// mapped neighbors; disconnected queries fall back to appending remaining
// vertices by rarity.
std::vector<VertexId> MatchOrder(const Graph& a,
                                 const std::vector<uint64_t>& color_a) {
  const VertexId n = a.NumVertices();
  std::vector<uint64_t> freq_key(n);
  {
    std::vector<uint64_t> sorted(color_a);
    std::sort(sorted.begin(), sorted.end());
    for (VertexId v = 0; v < n; ++v) {
      auto range = std::equal_range(sorted.begin(), sorted.end(), color_a[v]);
      // Rare colors first, ties broken toward high degree.
      freq_key[v] = (static_cast<uint64_t>(range.second - range.first) << 32) |
                    (0xffffffffULL - a.degree(v));
    }
  }
  std::vector<VertexId> by_rarity(n);
  for (VertexId v = 0; v < n; ++v) by_rarity[v] = v;
  std::sort(by_rarity.begin(), by_rarity.end(), [&](VertexId x, VertexId y) {
    if (freq_key[x] != freq_key[y]) return freq_key[x] < freq_key[y];
    return x < y;
  });

  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  std::vector<VertexId> frontier;
  for (VertexId start : by_rarity) {
    if (seen[start]) continue;
    // BFS component by component, rarest unvisited vertex as the root.
    frontier.assign(1, start);
    seen[start] = true;
    size_t head = 0;
    while (head < frontier.size()) {
      VertexId v = frontier[head++];
      order.push_back(v);
      for (VertexId u : a.Neighbors(v)) {
        if (!seen[u]) {
          seen[u] = true;
          frontier.push_back(u);
        }
      }
    }
  }
  CFL_DCHECK(order.size() == n);
  return order;
}

}  // namespace

std::optional<std::vector<VertexId>> FindIsomorphism(const Graph& a,
                                                     const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return std::nullopt;
  }
  if (a.NumVertices() == 0) return std::vector<VertexId>{};

  std::vector<uint64_t> color_a = WlColors(a);
  std::vector<uint64_t> color_b = WlColors(b);
  {
    // Color multisets must agree, or no bijection can respect the colors.
    std::vector<uint64_t> sa(color_a);
    std::vector<uint64_t> sb(color_b);
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    if (sa != sb) return std::nullopt;
  }

  std::vector<VertexId> order = MatchOrder(a, color_a);
  IsoSearch search{a,
                   b,
                   color_a,
                   color_b,
                   order,
                   std::vector<VertexId>(a.NumVertices(), kInvalidVertex),
                   std::vector<bool>(b.NumVertices(), false)};
  if (!search.Extend(0)) return std::nullopt;
  return std::move(search.map);
}

}  // namespace cfl::serve
