// Blocking client for the cfl_serve line protocol.
//
// One connection, sequential request/response exchanges — the concurrency
// in the serving stack lives server-side; load generators open several
// clients. Used by bench/bench_serve_load.cc, tests/serve_test.cc, and the
// CI smoke lane; also handy interactively from gdb or small tools.

#ifndef CFL_SERVE_CLIENT_H_
#define CFL_SERVE_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "match/embedding.h"
#include "serve/protocol.h"

namespace cfl::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Connects to a listening cfl_serve socket; false on failure (error()).
  bool Connect(const std::string& socket_path);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Transport-level error text of the last failed call.
  const std::string& error() const { return error_; }

  struct Reply {
    bool ok = false;       // a RESULT line arrived
    std::string error;     // ERR payload or transport failure
    QueryOutcome outcome;  // valid when ok
    std::vector<Embedding> embeddings;  // stream mode only
  };

  // Counting query: server-side parallel execution, one RESULT line back.
  Reply Count(const Graph& query, const MatchLimits& limits = {});

  // Streaming query: collects the EMB lines (in the caller's vertex
  // numbering) plus the final RESULT.
  Reply Stream(const Graph& query, const MatchLimits& limits = {});

  bool Ping();

  struct UpdateReply {
    bool ok = false;        // an UPDATED line arrived
    std::string error;      // ERR payload or transport failure
    UpdateOutcome outcome;  // valid when ok
  };

  // Commits one mutation batch (all ops or none). The reply reports the
  // new epoch and how many cached plans the batch invalidated/retained.
  UpdateReply Update(const std::vector<UpdateOp>& ops);

  // Raw key=value counters from the STATS line (empty map on failure).
  std::map<std::string, uint64_t> Stats();

  // Sends SHUTDOWN; true once the server acknowledged with BYE.
  bool Shutdown();

 private:
  Reply RunQuery(const Graph& query, QueryMode mode, const MatchLimits&);
  bool SendAll(const std::string& data);
  bool ReadLine(std::string* line);

  int fd_ = -1;
  std::string buf_;
  std::string error_;
};

}  // namespace cfl::serve

#endif  // CFL_SERVE_CLIENT_H_
