// Plan/CPI cache: isomorphic queries share one PreparedQuery.
//
// The expensive half of a CFL-Match query is Prepare (decomposition + CPI
// construction + ordering); a resident server replaying a workload mix sees
// the same query *shapes* over and over, usually under different vertex
// numberings. The cache keys plans by the canonical WL hash
// (serve/canonical.h) and confirms candidate hits with an explicit
// isomorphism onto the bucket's representative query, which doubles as the
// vertex remap for translating streamed embeddings back to the caller's
// numbering. Counting queries need no translation at all.
//
// Eviction is LRU by *bytes* (Cpi::MemoryBytes dominates a plan's arena
// footprint), not by entry count: one giant CPI can be worth a hundred
// small ones. A plan larger than the whole budget is returned to the caller
// uncached.
//
// Dynamic data graphs: a cached plan's CPI holds *data* vertex candidates,
// so a committed update can silently stale it. Each entry records the
// sorted label set of its representative query; `InvalidateLabels` drops
// exactly the entries whose label set intersects an update's dirty-label
// set (dyn/delta.h — labels whose candidate populations changed). Entries
// with disjoint labels are provably unaffected: every changed edge has two
// touched (hence dirty-labeled) endpoints, so no edge between
// clean-labeled vertices moved, and their NLF/MND signatures are intact —
// those plans keep producing bit-identical results on the new epoch
// (proved by tests/serve_test.cc). The server calls InvalidateLabels from
// DynamicGraph::Apply's on_commit hook, i.e. before the new epoch is
// visible to any query, so a query can never hit a plan its own epoch
// dirtied.
//
// Thread-safe: one mutex guards the map + LRU list; PreparedQuery itself is
// immutable after build, so handed-out shared_ptrs stay valid after
// eviction — eviction only drops the cache's reference.

#ifndef CFL_SERVE_PLAN_CACHE_H_
#define CFL_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "check/thread_annotations.h"
#include "dyn/delta.h"
#include "graph/graph.h"
#include "match/cfl_match.h"

namespace cfl::serve {

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  // Same-hash candidates that failed the isomorphism confirmation (WL
  // collisions between non-isomorphic queries). High values mean the hash
  // is degrading into a scan, not that results are wrong.
  uint64_t collisions = 0;
  // Entries dropped by InvalidateLabels (update-driven, distinct from LRU
  // evictions).
  uint64_t invalidations = 0;
  uint64_t bytes = 0;    // current resident plan bytes
  uint64_t entries = 0;  // current resident plan count
};

class PlanCache {
 public:
  struct Hit {
    std::shared_ptr<const PreparedQuery> plan;
    // remap[caller vertex] = representative vertex: apply to query vertices
    // before consulting the plan, and invert embeddings on the way out as
    // result[caller vertex] = plan_embedding[remap[caller vertex]].
    std::vector<VertexId> remap;
    // The representative query graph the plan was prepared from — the
    // enumerator needs the graph matching the plan's vertex numbering.
    std::shared_ptr<const Graph> representative;
    // Epoch the plan was prepared against. Valid for every epoch >= this
    // one the entry survives to (surviving a commit proves disjointness);
    // a reader pinned *before* it must treat the hit as a miss — it cannot
    // know whether the intervening batch dirtied the plan's labels.
    uint64_t epoch = 0;
  };

  // `max_bytes` == 0 disables caching entirely (every Find misses, Insert
  // is a no-op pass-through) — the load driver's cache-OFF mode.
  explicit PlanCache(uint64_t max_bytes);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  bool enabled() const { return max_bytes_ > 0; }
  uint64_t max_bytes() const { return max_bytes_; }

  // Looks up a plan for a query isomorphic to `query`. On a hit the entry
  // is touched to the LRU front. Returns an empty Hit (null plan) on miss.
  Hit Find(const Graph& query) CFL_EXCLUDES(mu_);

  // Registers a plan freshly prepared from `query` (identity remap). The
  // cache copies the query as the bucket representative. Returns the shared
  // plan so the caller enumerates from the same object it cached. Oversized
  // plans (> max_bytes) and duplicate buckets (a racing insert of an
  // isomorphic query) are passed through uncached.
  std::shared_ptr<const PreparedQuery> Insert(const Graph& query,
                                              PreparedQuery plan,
                                              uint64_t epoch = 0)
      CFL_EXCLUDES(mu_);

  // Drops every entry whose query label set intersects `dirty`; returns
  // the number dropped (and counts them in stats().invalidations).
  uint64_t InvalidateLabels(const dyn::DirtyLabels& dirty) CFL_EXCLUDES(mu_);

  PlanCacheStats Stats() CFL_EXCLUDES(mu_);

  void Clear() CFL_EXCLUDES(mu_);

 private:
  struct Entry {
    uint64_t hash = 0;
    std::shared_ptr<const Graph> representative;
    std::shared_ptr<const PreparedQuery> plan;
    uint64_t bytes = 0;
    // Sorted distinct labels of the representative query: the entry's
    // invalidation signature.
    std::vector<Label> labels;
    // Epoch the plan was prepared against (see Hit::epoch).
    uint64_t epoch = 0;
  };

  static uint64_t PlanBytes(const Graph& query, const PreparedQuery& plan);

  void EvictIfOver() CFL_REQUIRES(mu_);

  const uint64_t max_bytes_;

  Mutex mu_ CFL_LOCK_LEVEL(30);
  // Recency list, front = most recently used; the list *is* the storage.
  std::list<Entry> lru_ CFL_GUARDED_BY(mu_);
  // hash -> entries (multimap: distinct query shapes can share a WL hash).
  std::multimap<uint64_t, std::list<Entry>::iterator> index_
      CFL_GUARDED_BY(mu_);
  uint64_t bytes_ CFL_GUARDED_BY(mu_) = 0;
  PlanCacheStats stats_ CFL_GUARDED_BY(mu_);
};

}  // namespace cfl::serve

#endif  // CFL_SERVE_PLAN_CACHE_H_
