#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <sstream>
#include <utility>
#include <vector>

#include "check/check.h"
#include "graph/graph_io.h"
#include "match/iterator.h"
#include "obs/clock.h"

namespace cfl::serve {

namespace {

using obs::WallTimer;

// Writes the whole buffer; MSG_NOSIGNAL so a vanished client surfaces as
// EPIPE (drop the connection) instead of killing the process.
bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

// Buffered line reads from a connection; one instance per session task, so
// no locking. Forward-declared in server.h.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // A peer that streams bytes with no newline would otherwise grow buf_
  // without bound; past this the connection is dropped as hostile. Large
  // enough for any legitimate graph body line.
  static constexpr size_t kMaxBufferedBytes = 1 << 20;

  // Next '\n'-terminated line (terminator and any '\r' stripped). False on
  // EOF, error, or overflow with no complete buffered line.
  bool ReadLine(std::string* line) {
    while (true) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      if (buf_.size() > kMaxBufferedBytes) return false;
      char chunk[4096];
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

QueryServer::QueryServer(const Graph& data, const ServeOptions& options)
    : options_(options),
      dyn_(data, dyn::DynOptions{options.compact_touched_fraction,
                                 options.background_compaction}),
      cache_(options.cache_bytes),
      scheduler_(SchedulerOptions{options.workers, options.max_quota,
                                  options.max_concurrent_queries,
                                  options.max_time_limit_seconds,
                                  options.max_embeddings}),
      session_pool_(std::make_unique<TaskPool>(options.sessions)) {}

QueryServer::~QueryServer() {
  RequestShutdown();
  ShutdownAllConnections();
  session_pool_.reset();
  if (listen_fd_ >= 0) close(listen_fd_);
  for (int fd : wake_pipe_) {
    if (fd >= 0) close(fd);
  }
}

void QueryServer::RequestShutdown() {
  if (stop_.exchange(true, std::memory_order_relaxed)) return;
  if (wake_pipe_[1] >= 0) {
    char byte = 1;
    ssize_t rc = write(wake_pipe_[1], &byte, 1);
    (void)rc;  // the poll loop also rechecks stop_; a full pipe is fine
  }
}

void QueryServer::RegisterConnection(int fd) {
  MutexLock lock(conn_mu_);
  open_fds_.insert(fd);
}

void QueryServer::UnregisterConnection(int fd) {
  MutexLock lock(conn_mu_);
  open_fds_.erase(fd);
}

void QueryServer::ShutdownAllConnections() {
  MutexLock lock(conn_mu_);
  // Socket-layer shutdown only: parked session reads observe EOF and each
  // session closes its own fd on the way out.
  for (int fd : open_fds_) shutdown(fd, SHUT_RDWR);
}

void QueryServer::CountQuery(bool stream) {
  MutexLock lock(counter_mu_);
  ++counters_.queries;
  if (stream) ++counters_.stream_queries;
}

void QueryServer::CountError() {
  MutexLock lock(counter_mu_);
  ++counters_.errors;
}

int QueryServer::Serve() {
  CFL_CHECK(session_pool_ != nullptr) << " — Serve is single-shot";
  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    last_error_ = ErrnoText("socket");
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    last_error_ = "socket path empty or longer than sun_path";
    return -1;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  unlink(options_.socket_path.c_str());  // stale socket from a crashed run
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    last_error_ = ErrnoText("bind");
    return -1;
  }
  if (listen(listen_fd_, 64) < 0) {
    last_error_ = ErrnoText("listen");
    return -1;
  }
  if (pipe(wake_pipe_) < 0) {
    last_error_ = ErrnoText("pipe");
    return -1;
  }

  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int ready = poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      last_error_ = ErrnoText("poll");
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // RequestShutdown woke us
    if ((fds[0].revents & POLLIN) != 0) {
      int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      {
        MutexLock lock(counter_mu_);
        ++counters_.connections;
      }
      session_pool_->Submit([this, fd] { HandleConnection(fd); });
    }
  }

  close(listen_fd_);
  listen_fd_ = -1;
  unlink(options_.socket_path.c_str());
  // Unblock parked sessions, then drain and join them so a clean Serve()
  // return means no request is still in flight.
  ShutdownAllConnections();
  session_pool_.reset();
  return 0;
}

void QueryServer::HandleConnection(int fd) {
  RegisterConnection(fd);
  LineReader reader(fd);
  std::string line;
  while (!stop_.load(std::memory_order_relaxed) && reader.ReadLine(&line)) {
    if (line.empty()) continue;
    std::string parse_error;
    std::optional<RequestHeader> header =
        ParseRequestHeader(line, &parse_error);
    if (!header.has_value()) {
      CountError();
      if (!WriteAll(fd, "ERR " + parse_error + "\n")) break;
      continue;
    }
    bool keep = true;
    switch (header->kind) {
      case RequestKind::kPing:
        keep = WriteAll(fd, "PONG\n");
        break;
      case RequestKind::kStats:
        keep = HandleStats(fd);
        break;
      case RequestKind::kShutdown:
        WriteAll(fd, "BYE\n");
        RequestShutdown();
        keep = false;
        break;
      case RequestKind::kQuery:
        // Session tasks run on a TaskPool, whose boundary fails fast on
        // escaped exceptions — convert anything a request can throw (parse
        // errors throw std::runtime_error, allocation can throw) into an
        // ERR reply on this connection instead.
        try {
          keep = HandleQuery(fd, reader, *header);
        } catch (const std::exception& e) {
          CountError();
          keep = WriteAll(fd, std::string("ERR internal: ") + e.what() + "\n");
        }
        break;
      case RequestKind::kUpdate:
        try {
          keep = HandleUpdate(fd, reader);
        } catch (const std::exception& e) {
          CountError();
          keep = WriteAll(fd, std::string("ERR internal: ") + e.what() + "\n");
        }
        break;
    }
    if (!keep) break;
  }
  UnregisterConnection(fd);
  close(fd);
}

bool QueryServer::HandleQuery(int fd, LineReader& reader,
                              const RequestHeader& header) {
  // Collect the graph body (everything up to END) before parsing, so a
  // malformed graph still leaves the connection aligned on request
  // boundaries.
  std::string body;
  std::string line;
  bool saw_end = false;
  while (reader.ReadLine(&line)) {
    if (line == "END") {
      saw_end = true;
      break;
    }
    body += line;
    body += '\n';
  }
  if (!saw_end) return false;  // client vanished mid-request

  Graph query;
  try {
    std::istringstream in(body);
    query = ReadGraph(in);
  } catch (const std::exception& e) {
    CountError();
    return WriteAll(fd, std::string("ERR bad query graph: ") + e.what() +
                            "\n");
  }

  // Pin the epoch first: everything below — cache lookup, prepare,
  // enumeration — answers as of this snapshot, no matter how many updates
  // commit while the query runs.
  dyn::Snapshot snapshot = dyn_.Acquire();
  const Graph& data = snapshot.graph();

  WallTimer total_timer;
  QueryOutcome outcome;
  outcome.cache = cache_.enabled() ? QueryOutcome::Cache::kMiss
                                   : QueryOutcome::Cache::kOff;

  std::shared_ptr<const PreparedQuery> plan;
  std::shared_ptr<const Graph> plan_graph;  // graph in the plan's numbering
  std::vector<VertexId> remap;  // client vertex -> plan vertex; empty = id
  PlanCache::Hit hit = cache_.Find(query);
  // A hit is usable only if the plan's epoch is not newer than ours: a plan
  // inserted for epoch e+1 may depend on a batch this query (pinned at e)
  // must not see. Surviving entries from epochs <= ours are proven valid by
  // the invalidation invariant.
  if (hit.plan != nullptr && hit.epoch <= snapshot.epoch()) {
    outcome.cache = QueryOutcome::Cache::kHit;
    plan = std::move(hit.plan);
    plan_graph = std::move(hit.representative);
    remap = std::move(hit.remap);
  } else {
    WallTimer prepare_timer;
    {
      // Prepare reuses the CPI builder's scratch: one at a time. Insert
      // rides inside the critical section (lock order prepare_mu_ ->
      // cache mutex; nothing takes them in the other order).
      MutexLock lock(prepare_mu_);
      if (matcher_ == nullptr || matcher_epoch_ != snapshot.epoch() ||
          matcher_graph_ != snapshot.graph_ptr()) {
        // Rebind the prepare-side matcher to this query's snapshot; the
        // shared_ptr keeps the epoch's graph alive for the matcher's
        // internal references.
        matcher_graph_ = snapshot.graph_ptr();
        matcher_ = std::make_unique<CflMatcher>(*matcher_graph_);
        matcher_epoch_ = snapshot.epoch();
      }
      PreparedQuery prepared = matcher_->Prepare(query);
      if (dyn_.CurrentEpoch() == snapshot.epoch()) {
        plan = cache_.Insert(query, std::move(prepared), snapshot.epoch());
      } else {
        // An update committed since we pinned: this plan describes a
        // superseded epoch. Correct for *this* query (snapshot isolation)
        // but must not outlive it in the cache — the committed batch's
        // invalidation pass ran before this insert would land. Updates
        // also hold prepare_mu_, so the epoch check and Insert are atomic
        // with respect to commits.
        plan = std::make_shared<const PreparedQuery>(std::move(prepared));
      }
    }
    outcome.prepare_ms = prepare_timer.Lap() * 1e3;
    plan_graph = std::make_shared<const Graph>(query);
  }

  if (header.mode == QueryMode::kCount) {
    uint32_t quota = 0;
    WallTimer enum_timer;
    MatchResult result = scheduler_.Execute(data, *plan_graph, *plan,
                                            header.limits, &quota);
    outcome.enum_ms = enum_timer.Lap() * 1e3;
    outcome.embeddings = result.embeddings;
    outcome.reached_limit = result.reached_limit;
    outcome.timed_out = result.timed_out;
    outcome.quota = quota;
  } else {
    // Streaming pulls embeddings on this session thread (the socket is the
    // bottleneck, not enumeration) but still holds an admission slot so
    // streams count against the server's concurrency budget.
    AdmissionTicket ticket(scheduler_);
    MatchLimits limits = scheduler_.ClampLimits(header.limits);
    WallTimer enum_timer;
    EmbeddingIterator it(data, plan, limits);
    Embedding embedding;
    Embedding out;
    while (it.Next(&embedding)) {
      const Embedding* to_send = &embedding;
      if (!remap.empty()) {
        // Cached plan of an isomorphic query: embedding[] is indexed by
        // *representative* vertices; translate to the client's numbering.
        out.resize(embedding.size());
        for (VertexId u = 0; u < out.size(); ++u) {
          out[u] = embedding[remap[u]];
        }
        to_send = &out;
      }
      if (!WriteAll(fd, FormatEmbeddingLine(*to_send) + "\n")) return false;
    }
    outcome.enum_ms = enum_timer.Lap() * 1e3;
    outcome.embeddings = it.produced();
    outcome.reached_limit = it.reached_limit();
    outcome.timed_out = it.timed_out();
  }

  outcome.total_ms = total_timer.Lap() * 1e3;
  CountQuery(header.mode == QueryMode::kStream);
  return WriteAll(fd, FormatResultLine(outcome) + "\n");
}

bool QueryServer::HandleUpdate(int fd, LineReader& reader) {
  // Collect op lines up to END before parsing, so a malformed op still
  // leaves the connection aligned on request boundaries.
  std::vector<std::string> op_lines;
  std::string line;
  bool saw_end = false;
  while (reader.ReadLine(&line)) {
    if (line == "END") {
      saw_end = true;
      break;
    }
    if (!line.empty()) op_lines.push_back(line);
  }
  if (!saw_end) return false;  // client vanished mid-request

  std::vector<UpdateOp> ops;
  ops.reserve(op_lines.size());
  for (const std::string& op_line : op_lines) {
    std::string parse_error;
    std::optional<UpdateOp> op = ParseUpdateOp(op_line, &parse_error);
    if (!op.has_value()) {
      CountError();
      return WriteAll(fd, "ERR " + parse_error + "\n");
    }
    ops.push_back(*op);
  }

  // Optimistic commit with bounded replay: updates serialize on prepare_mu_,
  // but the background compactor installs rebuilds outside it, so the delta
  // we build here can lose the race to a compaction epoch. Rebuilding a
  // small op batch is cheap; lose eight times in a row and report failure.
  static constexpr int kMaxAttempts = 8;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    dyn::Snapshot snapshot = dyn_.Acquire();
    dyn::GraphDelta delta = dyn_.NewDelta(snapshot);
    for (const UpdateOp& op : ops) {
      bool ok = true;
      switch (op.kind) {
        case UpdateOp::Kind::kAddVertex:
          ok = delta.AddVertex(static_cast<Label>(op.u));
          break;
        case UpdateOp::Kind::kRemoveVertex:
          ok = delta.RemoveVertex(op.u);
          break;
        case UpdateOp::Kind::kAddEdge:
          ok = delta.AddEdge(op.u, op.v);
          break;
        case UpdateOp::Kind::kRemoveEdge:
          ok = delta.RemoveEdge(op.u, op.v);
          break;
      }
      if (!ok) {
        // Whole-batch rejection: nothing of a bad batch is applied.
        CountError();
        return WriteAll(fd, "ERR update rejected: " + delta.error() + "\n");
      }
    }

    dyn::ApplyResult result;
    uint64_t invalidated = 0;
    std::optional<std::string> stale;
    {
      // prepare_mu_ makes the commit atomic with HandleQuery's
      // epoch-checked cache inserts; the on_commit hook invalidates
      // affected plans before the new epoch is visible to any Acquire.
      MutexLock lock(prepare_mu_);
      stale = dyn_.Apply(std::move(delta), &result,
                         [&](const dyn::DirtyLabels& dirty) {
                           invalidated = cache_.InvalidateLabels(dirty);
                         });
    }
    if (stale.has_value()) {
      MutexLock lock(counter_mu_);
      ++counters_.update_retries;
      continue;
    }

    UpdateOutcome outcome;
    outcome.epoch = result.epoch;
    outcome.added_vertices = result.added_vertices;
    outcome.removed_vertices = result.removed_vertices;
    outcome.added_edges = result.added_edges;
    outcome.removed_edges = result.removed_edges;
    outcome.dirty_labels = static_cast<uint32_t>(result.dirty.labels.size());
    outcome.invalidated = invalidated;
    outcome.retained = cache_.Stats().entries;
    {
      MutexLock lock(counter_mu_);
      ++counters_.updates;
    }
    return WriteAll(fd, FormatUpdatedLine(outcome) + "\n");
  }
  CountError();
  return WriteAll(fd, "ERR update failed: lost the commit race " +
                          std::to_string(kMaxAttempts) + " times\n");
}

bool QueryServer::HandleStats(int fd) {
  ServerCounters counters;
  {
    MutexLock lock(counter_mu_);
    counters = counters_;
  }
  PlanCacheStats cache = cache_.Stats();
  obs::DynCounters dyn = dyn_.Stats();
  std::string line = "STATS";
  line += " queries=" + std::to_string(counters.queries);
  line += " stream_queries=" + std::to_string(counters.stream_queries);
  line += " updates=" + std::to_string(counters.updates);
  line += " update_retries=" + std::to_string(counters.update_retries);
  line += " errors=" + std::to_string(counters.errors);
  line += " connections=" + std::to_string(counters.connections);
  line += " cache_hits=" + std::to_string(cache.hits);
  line += " cache_misses=" + std::to_string(cache.misses);
  line += " cache_evictions=" + std::to_string(cache.evictions);
  line += " cache_collisions=" + std::to_string(cache.collisions);
  line += " cache_invalidations=" + std::to_string(cache.invalidations);
  line += " cache_bytes=" + std::to_string(cache.bytes);
  line += " cache_entries=" + std::to_string(cache.entries);
  line += " epoch=" + std::to_string(dyn_.CurrentEpoch());
  line += " folds=" + std::to_string(dyn.folds);
  line += " compactions=" + std::to_string(dyn.compactions);
  line += " epochs_retired=" + std::to_string(dyn.epochs_retired);
  line += " live_epochs=" + std::to_string(dyn.live_epochs);
  line += " active=" + std::to_string(scheduler_.ActiveQueries());
  line += " workers=" + std::to_string(scheduler_.workers());
  line += "\n";
  return WriteAll(fd, line);
}

}  // namespace cfl::serve
