#include "serve/plan_cache.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "check/check.h"
#include "serve/canonical.h"

namespace cfl::serve {

namespace {

// Sorted distinct vertex labels of `query` — the invalidation signature.
std::vector<Label> QueryLabels(const Graph& query) {
  std::vector<Label> labels;
  labels.reserve(query.NumVertices());
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    labels.push_back(query.label(u));
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

}  // namespace

PlanCache::PlanCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

uint64_t PlanCache::PlanBytes(const Graph& query, const PreparedQuery& plan) {
  // The CPI arena dominates; the representative graph and the order/tree
  // vectors are charged approximately (exactness is not needed for LRU
  // pressure, only monotonicity in actual footprint).
  uint64_t bytes = plan.cpi.MemoryBytes();
  bytes += static_cast<uint64_t>(query.NumVertices()) * sizeof(VertexId) * 8;
  bytes += query.NumEdges() * sizeof(VertexId) * 2;
  bytes += sizeof(PreparedQuery) + sizeof(Entry);
  return bytes;
}

PlanCache::Hit PlanCache::Find(const Graph& query) {
  if (!enabled()) return {};
  const uint64_t hash = CanonicalQueryHash(query);

  MutexLock lock(mu_);
  auto range = index_.equal_range(hash);
  for (auto it = range.first; it != range.second; ++it) {
    std::list<Entry>::iterator entry = it->second;
    std::optional<std::vector<VertexId>> iso =
        FindIsomorphism(query, *entry->representative);
    if (!iso.has_value()) {
      ++stats_.collisions;
      continue;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, entry);  // touch: move to MRU front
    return Hit{entry->plan, *std::move(iso), entry->representative,
               entry->epoch};
  }
  ++stats_.misses;
  return {};
}

std::shared_ptr<const PreparedQuery> PlanCache::Insert(const Graph& query,
                                                       PreparedQuery plan,
                                                       uint64_t epoch) {
  auto shared = std::make_shared<const PreparedQuery>(std::move(plan));
  if (!enabled()) return shared;

  const uint64_t hash = CanonicalQueryHash(query);
  const uint64_t bytes = PlanBytes(query, *shared);
  if (bytes > max_bytes_) return shared;  // would evict everything: skip

  MutexLock lock(mu_);
  // A racing prepare of an isomorphic query may have populated the bucket
  // already; keep the resident entry (its LRU position is warm) and hand
  // the caller its own plan uncached.
  auto range = index_.equal_range(hash);
  for (auto it = range.first; it != range.second; ++it) {
    if (FindIsomorphism(query, *it->second->representative).has_value()) {
      return shared;
    }
  }

  lru_.push_front(Entry{hash, std::make_shared<const Graph>(query), shared,
                        bytes, QueryLabels(query), epoch});
  index_.emplace(hash, lru_.begin());
  bytes_ += bytes;
  EvictIfOver();
  return shared;
}

void PlanCache::EvictIfOver() {
  while (bytes_ > max_bytes_) {
    CFL_CHECK(!lru_.empty()) << " — cache byte accounting drifted";
    std::list<Entry>::iterator victim = std::prev(lru_.end());
    auto range = index_.equal_range(victim->hash);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == victim) {
        index_.erase(it);
        break;
      }
    }
    bytes_ -= victim->bytes;
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

uint64_t PlanCache::InvalidateLabels(const dyn::DirtyLabels& dirty) {
  if (!enabled() || dirty.labels.empty()) return 0;
  MutexLock lock(mu_);
  uint64_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (!dirty.Intersects(it->labels)) {
      ++it;
      continue;
    }
    auto range = index_.equal_range(it->hash);
    for (auto idx = range.first; idx != range.second; ++idx) {
      if (idx->second == it) {
        index_.erase(idx);
        break;
      }
    }
    bytes_ -= it->bytes;
    it = lru_.erase(it);
    ++dropped;
  }
  stats_.invalidations += dropped;
  return dropped;
}

PlanCacheStats PlanCache::Stats() {
  MutexLock lock(mu_);
  PlanCacheStats out = stats_;
  out.bytes = bytes_;
  out.entries = lru_.size();
  return out;
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  index_.clear();
  lru_.clear();
  bytes_ = 0;
}

}  // namespace cfl::serve
