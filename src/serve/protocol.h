// Line-delimited wire protocol between cfl_serve and its clients.
//
// Requests (client -> server), one per exchange on the connection:
//
//   PING
//   STATS
//   SHUTDOWN
//   QUERY mode=<count|stream> [max=<N>] [time=<seconds>]
//   <graph lines: t / v / e, the graph_io.h text format>
//   END
//   UPDATE
//   <op lines, one per mutation, applied as a single atomic batch:
//      av <label>       add a vertex (the reply reports nothing per-op;
//                       ids are assigned densely after the current count)
//      rv <id>          remove a vertex (and its incident edges)
//      ae <u> <v>       add the undirected edge (u, v)
//      re <u> <v>       remove the undirected edge (u, v)>
//   END
//
// Responses (server -> client):
//
//   PONG
//   STATS queries=<N> cache_hits=<N> ... active=<N>     (one line)
//   BYE                                                  (then close)
//   EMB <v0> <v1> ... <vk>      zero or more, stream mode only; position i
//                               is the data vertex matched to query vertex i
//   RESULT embeddings=<N> reached_limit=<0|1> timed_out=<0|1>
//          cache=<hit|miss|off> prepare_ms=<f> enum_ms=<f> total_ms=<f>
//          quota=<N>            always the final line of a QUERY exchange
//   UPDATED epoch=<N> added_vertices=<N> removed_vertices=<N>
//           added_edges=<N> removed_edges=<N> dirty_labels=<N>
//           invalidated=<N> retained=<N>
//                               the batch committed as epoch <N>;
//                               <invalidated> cached plans were dropped
//                               because their labels intersect the batch's
//                               dirty set, <retained> survived
//   ERR <message>               malformed request or rejected batch (e.g.
//                               an op referencing a dead vertex); the
//                               connection stays usable and nothing of the
//                               batch was applied
//
// Everything is ASCII lines so the protocol can be driven by hand
// (`socat - UNIX-CONNECT:/tmp/cfl.sock`), logged as-is, and diffed in CI.
// This header is pure parse/format — no sockets — so the difftest-style
// tests can round-trip messages without a running server.

#ifndef CFL_SERVE_PROTOCOL_H_
#define CFL_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "match/embedding.h"

namespace cfl::serve {

enum class RequestKind { kQuery, kPing, kStats, kShutdown, kUpdate };
enum class QueryMode { kCount, kStream };

// Hard cap on the request header line ("QUERY ...", "PING", ...). A sane
// client fits in a fraction of this; anything longer is rejected before
// parsing so a garbage-spewing peer gets a bounded ERR, not a bounded-only-
// by-memory token scan. Graph body lines are not request lines and are
// capped by the server's read buffer instead.
inline constexpr size_t kMaxRequestLineBytes = 4096;

struct RequestHeader {
  RequestKind kind = RequestKind::kPing;
  QueryMode mode = QueryMode::kCount;
  // Defaults: unlimited — the scheduler's admission clamp applies either
  // way, so "no limit given" means "the server's ceiling".
  MatchLimits limits;
};

// Parses one request line ("QUERY ...", "PING", ...). For kQuery the graph
// lines follow on the connection until "END"; the caller reads those.
// Returns nullopt and fills *error on malformed input.
std::optional<RequestHeader> ParseRequestHeader(const std::string& line,
                                                std::string* error);
std::string FormatRequestHeader(const RequestHeader& header);

// The terminal line of every QUERY exchange.
struct QueryOutcome {
  uint64_t embeddings = 0;
  bool reached_limit = false;
  bool timed_out = false;
  enum class Cache { kHit, kMiss, kOff } cache = Cache::kOff;
  double prepare_ms = 0.0;  // 0 on cache hits: no prepare ran
  double enum_ms = 0.0;
  double total_ms = 0.0;
  uint32_t quota = 0;  // worker quota granted (0 for streamed queries)
};

std::string FormatResultLine(const QueryOutcome& outcome);
std::optional<QueryOutcome> ParseResultLine(const std::string& line,
                                            std::string* error);

std::string FormatEmbeddingLine(const Embedding& embedding);
std::optional<Embedding> ParseEmbeddingLine(const std::string& line);

// --- UPDATE batches -------------------------------------------------------

// One mutation line of an UPDATE body. `u` doubles as the label for
// kAddVertex and the vertex id for kRemoveVertex.
struct UpdateOp {
  enum class Kind { kAddVertex, kRemoveVertex, kAddEdge, kRemoveEdge };
  Kind kind = Kind::kAddVertex;
  uint32_t u = 0;
  uint32_t v = 0;
};

std::string FormatUpdateOp(const UpdateOp& op);
std::optional<UpdateOp> ParseUpdateOp(const std::string& line,
                                      std::string* error);

// The terminal line of a successful UPDATE exchange.
struct UpdateOutcome {
  uint64_t epoch = 0;
  uint32_t added_vertices = 0;
  uint32_t removed_vertices = 0;
  uint64_t added_edges = 0;
  uint64_t removed_edges = 0;
  uint32_t dirty_labels = 0;  // size of the batch's dirty-label set
  uint64_t invalidated = 0;   // cached plans dropped by this batch
  uint64_t retained = 0;      // cached plans that survived it
};

std::string FormatUpdatedLine(const UpdateOutcome& outcome);
std::optional<UpdateOutcome> ParseUpdatedLine(const std::string& line,
                                              std::string* error);

}  // namespace cfl::serve

#endif  // CFL_SERVE_PROTOCOL_H_
