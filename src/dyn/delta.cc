#include "dyn/delta.h"

#include <algorithm>
#include <sstream>

#include "check/check.h"

namespace cfl::dyn {

bool DirtyLabels::Contains(Label l) const {
  return std::binary_search(labels.begin(), labels.end(), l);
}

bool DirtyLabels::Intersects(std::span<const Label> sorted) const {
  auto a = labels.begin();
  auto b = sorted.begin();
  while (a != labels.end() && b != sorted.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

GraphDelta::GraphDelta(const Graph& base) : base_(&base) {
  // Multiplicity-compressed graphs alias many original vertices behind one
  // id; a single edge op would have no well-defined expansion. Dynamics are
  // defined on plain graphs only.
  CFL_CHECK(!base.HasMultiplicities())
      << " GraphDelta requires a plain (uncompressed) base graph";
}

bool GraphDelta::Fail(const std::string& message) {
  error_ = message;
  return false;
}

Label GraphDelta::LabelOf(VertexId v) const {
  if (v < BaseVertices()) return base_->label(v);
  CFL_CHECK(v < NewVertices()) << " LabelOf(" << v << ") out of range";
  return added_labels_[v - BaseVertices()];
}

const GraphDelta::PerVertex* GraphDelta::Find(VertexId v) const {
  auto it = per_vertex_.find(v);
  return it == per_vertex_.end() ? nullptr : &it->second;
}

bool GraphDelta::HasEdgeNow(VertexId u, VertexId v) const {
  const PerVertex* pu = Find(u);
  if (pu != nullptr) {
    if (sealed_) {
      if (std::find(pu->added.begin(), pu->added.end(), v) != pu->added.end())
        return true;
      if (std::find(pu->removed.begin(), pu->removed.end(), v) !=
          pu->removed.end())
        return false;
    } else {
      if (pu->add_set.count(v) != 0) return true;
      if (pu->remove_set.count(v) != 0) return false;
    }
  }
  if (u >= BaseVertices() || v >= BaseVertices()) return false;
  return base_->HasEdge(u, v);
}

bool GraphDelta::AddVertex(Label label, VertexId* id_out) {
  if (sealed_) return Fail("delta is sealed");
  const VertexId id = NewVertices();
  added_labels_.push_back(label);
  // Materialize the per-vertex slot so the vertex counts as touched (its
  // adjacency "changed" from nonexistent to empty).
  per_vertex_[id];
  if (id_out != nullptr) *id_out = id;
  return true;
}

bool GraphDelta::RemoveVertex(VertexId v) {
  if (sealed_) return Fail("delta is sealed");
  if (v >= NewVertices()) return Fail("remove of unknown vertex");
  if (v >= BaseVertices())
    return Fail("remove of a vertex added in the same batch");
  if (VertexRemoved(v)) return Fail("vertex already removed");
  // Drop every currently-present incident edge: the base adjacency minus
  // in-batch removals, plus in-batch additions.
  std::vector<VertexId> incident;
  for (VertexId w : base_->Neighbors(v)) {
    if (HasEdgeNow(v, w)) incident.push_back(w);
  }
  if (const PerVertex* pv = Find(v); pv != nullptr) {
    for (VertexId w : pv->add_set) incident.push_back(w);
  }
  for (VertexId w : incident) RecordRemove(v, w);
  removed_vertices_.insert(v);
  per_vertex_[v];  // removed vertices are always touched
  return true;
}

bool GraphDelta::AddEdge(VertexId u, VertexId v) {
  if (sealed_) return Fail("delta is sealed");
  if (u == v) return Fail("self-loops are not supported on dynamic graphs");
  if (!VertexAlive(u) || !VertexAlive(v)) {
    std::ostringstream msg;
    msg << "edge (" << u << ", " << v << ") touches a dead or unknown vertex";
    return Fail(msg.str());
  }
  if (HasEdgeNow(u, v)) {
    std::ostringstream msg;
    msg << "edge (" << u << ", " << v << ") already present";
    return Fail(msg.str());
  }
  RecordAdd(u, v);
  return true;
}

bool GraphDelta::RemoveEdge(VertexId u, VertexId v) {
  if (sealed_) return Fail("delta is sealed");
  if (!VertexAlive(u) || !VertexAlive(v)) {
    std::ostringstream msg;
    msg << "edge (" << u << ", " << v << ") touches a dead or unknown vertex";
    return Fail(msg.str());
  }
  if (!HasEdgeNow(u, v)) {
    std::ostringstream msg;
    msg << "edge (" << u << ", " << v << ") not present";
    return Fail(msg.str());
  }
  RecordRemove(u, v);
  return true;
}

void GraphDelta::RecordAdd(VertexId u, VertexId v) {
  // Removing then re-adding a base edge nets to nothing; adding a brand-new
  // edge is recorded. Symmetric on both endpoints.
  for (int side = 0; side < 2; ++side) {
    PerVertex& p = per_vertex_[side == 0 ? u : v];
    const VertexId w = side == 0 ? v : u;
    if (p.remove_set.erase(w) == 0) p.add_set.insert(w);
  }
  ++added_edges_;
}

void GraphDelta::RecordRemove(VertexId u, VertexId v) {
  for (int side = 0; side < 2; ++side) {
    PerVertex& p = per_vertex_[side == 0 ? u : v];
    const VertexId w = side == 0 ? v : u;
    if (p.add_set.erase(w) == 0) p.remove_set.insert(w);
  }
  ++removed_edges_;
}

void GraphDelta::Seal() {
  if (sealed_) return;
  sealed_ = true;
  touched_.reserve(per_vertex_.size());
  auto label_id_less = [this](VertexId a, VertexId b) {
    const Label la = LabelOf(a);
    const Label lb = LabelOf(b);
    return la != lb ? la < lb : a < b;
  };
  for (auto it = per_vertex_.begin(); it != per_vertex_.end();) {
    PerVertex& p = it->second;
    p.added.assign(p.add_set.begin(), p.add_set.end());
    p.removed.assign(p.remove_set.begin(), p.remove_set.end());
    p.add_set.clear();
    p.remove_set.clear();
    // A vertex whose ops all cancelled is not touched — unless it was
    // added or tombstoned this batch (degree-zero slots still matter to
    // the fold's label index and NLF rewrite).
    const VertexId v = it->first;
    if (p.added.empty() && p.removed.empty() && v < BaseVertices() &&
        !VertexRemoved(v)) {
      it = per_vertex_.erase(it);
      continue;
    }
    std::sort(p.added.begin(), p.added.end(), label_id_less);
    std::sort(p.removed.begin(), p.removed.end(), label_id_less);
    touched_.push_back(v);
    ++it;
  }
  std::sort(touched_.begin(), touched_.end());
}

std::span<const VertexId> GraphDelta::Touched() const {
  CFL_CHECK(sealed_) << " Touched() before Seal()";
  return touched_;
}

bool GraphDelta::IsTouched(VertexId v) const {
  CFL_CHECK(sealed_) << " IsTouched() before Seal()";
  return per_vertex_.count(v) != 0;
}

std::span<const VertexId> GraphDelta::Added(VertexId v) const {
  CFL_CHECK(sealed_) << " Added() before Seal()";
  const PerVertex* p = Find(v);
  if (p == nullptr) return {};
  return p->added;
}

std::span<const VertexId> GraphDelta::Removed(VertexId v) const {
  CFL_CHECK(sealed_) << " Removed() before Seal()";
  const PerVertex* p = Find(v);
  if (p == nullptr) return {};
  return p->removed;
}

void GraphDelta::MergedNeighborsWithLabel(VertexId v, Label l,
                                          std::vector<VertexId>* out) const {
  CFL_CHECK(sealed_) << " merge before Seal()";
  std::span<const VertexId> base_run =
      v < BaseVertices() ? base_->NeighborsWithLabel(v, l)
                         : std::span<const VertexId>{};
  const PerVertex* p = Find(v);
  if (p == nullptr) {
    out->insert(out->end(), base_run.begin(), base_run.end());
    return;
  }
  // Slice the (label, id)-sorted delta vectors down to label l.
  auto slice = [&](const std::vector<VertexId>& vec) {
    auto lo = std::lower_bound(vec.begin(), vec.end(), l,
                               [this](VertexId w, Label want) {
                                 return LabelOf(w) < want;
                               });
    auto hi = lo;
    while (hi != vec.end() && LabelOf(*hi) == l) ++hi;
    return std::span<const VertexId>(vec.data() + (lo - vec.begin()),
                                     static_cast<size_t>(hi - lo));
  };
  std::span<const VertexId> add = slice(p->added);
  std::span<const VertexId> rem = slice(p->removed);
  // Three-way linear merge: (base_run \ rem) ∪ add, ascending by id. All
  // three inputs are ascending; removed ⊆ base_run and add ∩ base_run = ∅
  // by construction.
  auto bi = base_run.begin();
  auto ai = add.begin();
  auto ri = rem.begin();
  while (bi != base_run.end() || ai != add.end()) {
    if (ai == add.end() || (bi != base_run.end() && *bi < *ai)) {
      if (ri != rem.end() && *ri == *bi) {
        ++ri;
      } else {
        out->push_back(*bi);
      }
      ++bi;
    } else {
      out->push_back(*ai);
      ++ai;
    }
  }
}

void GraphDelta::MergedNeighbors(VertexId v, std::vector<VertexId>* out) const {
  CFL_CHECK(sealed_) << " merge before Seal()";
  out->clear();
  if (VertexRemoved(v)) return;
  // Walk the union of base run labels and delta-added labels in ascending
  // label order, merging each label run independently.
  std::span<const Graph::LabelRun> base_runs =
      v < BaseVertices() ? base_->AdjacencyLabelRuns(v)
                         : std::span<const Graph::LabelRun>{};
  std::span<const VertexId> add = Added(v);
  size_t run = 0;
  size_t a = 0;
  Label prev = kInvalidVertex;  // sentinel: no label processed yet
  while (run < base_runs.size() || a < add.size()) {
    Label next;
    if (run >= base_runs.size()) {
      next = LabelOf(add[a]);
    } else if (a >= add.size()) {
      next = base_runs[run].label;
    } else {
      next = std::min(base_runs[run].label, LabelOf(add[a]));
    }
    if (next != prev) MergedNeighborsWithLabel(v, next, out);
    prev = next;
    if (run < base_runs.size() && base_runs[run].label == next) ++run;
    while (a < add.size() && LabelOf(add[a]) == next) ++a;
  }
}

}  // namespace cfl::dyn
