// Epoch pinning: which snapshots are still being read.
//
// Every committed delta advances a monotonically increasing epoch counter;
// each epoch has one immutable `Graph` snapshot. A query pins the epoch it
// starts on by holding an `EpochRef` (RAII) for as long as it reads the
// snapshot; the compactor (dyn/dynamic_graph.h) may retire a superseded
// snapshot's memory and fold forward only after every ref on older epochs
// is released — `WaitUntilDrained` is that barrier.
//
// The protocol is deliberately strict, and death-tested
// (tests/dyn_epoch_test.cc):
//   * releasing a ref twice is a CFL_CHECK failure (a double release would
//     let the compactor free a snapshot another query still reads);
//   * destroying the manager with refs outstanding is a CFL_CHECK failure
//     (the leaked ref's query would read a freed snapshot).
//
// Thread safety: all methods lock the manager's mutex (level 24 — above
// DynamicGraph's 22, so pinning from inside the graph's locked Acquire path
// nests in ascending order; see DESIGN.md §9). EpochRef itself is not
// thread-safe: one ref belongs to one query.

#ifndef CFL_DYN_EPOCH_H_
#define CFL_DYN_EPOCH_H_

#include <cstdint>
#include <map>

#include "check/thread_annotations.h"

namespace cfl::dyn {

using Epoch = uint64_t;

class EpochManager;

// Move-only handle: "some query is still reading epoch `epoch()`".
// Released on destruction or by an explicit Release() (exactly once).
class EpochRef {
 public:
  EpochRef() = default;
  ~EpochRef();

  EpochRef(EpochRef&& other) noexcept;
  EpochRef& operator=(EpochRef&& other) noexcept;

  EpochRef(const EpochRef&) = delete;
  EpochRef& operator=(const EpochRef&) = delete;

  // Unpins. Calling this on an empty (released or moved-from) ref dies:
  // a double release is always a lifetime bug upstream.
  void Release();

  bool held() const { return manager_ != nullptr; }
  Epoch epoch() const { return epoch_; }

 private:
  friend class EpochManager;
  EpochRef(EpochManager* manager, Epoch epoch)
      : manager_(manager), epoch_(epoch) {}

  EpochManager* manager_ = nullptr;
  Epoch epoch_ = 0;
};

class EpochManager {
 public:
  EpochManager() = default;

  // Dies if any ref is still outstanding (see header comment).
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Pins the current epoch. The caller typically holds DynamicGraph's
  // mutex (level 22) so the pinned epoch and the snapshot pointer it read
  // are consistent; this method's own lock (24) nests above it.
  EpochRef Pin() CFL_EXCLUDES(mu_);

  Epoch current() CFL_EXCLUDES(mu_);

  // Commits the next epoch and returns it.
  Epoch Advance() CFL_EXCLUDES(mu_);

  // Outstanding refs on exactly `epoch`.
  uint32_t PinCount(Epoch epoch) CFL_EXCLUDES(mu_);

  // Outstanding refs on any epoch <= `epoch`.
  uint32_t PinnedAtOrBelow(Epoch epoch) CFL_EXCLUDES(mu_);

  // Blocks until no ref on any epoch <= `epoch` remains. Returns true when
  // drained, false if Cancel() interrupted the wait (shutdown).
  bool WaitUntilDrained(Epoch epoch) CFL_EXCLUDES(mu_);

  // Wakes and fails all current and future WaitUntilDrained calls. Used on
  // shutdown so a parked compactor cannot deadlock the destructor of its
  // pool. Refs stay valid; only the waits give up.
  void Cancel() CFL_EXCLUDES(mu_);

 private:
  friend class EpochRef;

  void Unpin(Epoch epoch) CFL_EXCLUDES(mu_);

  Mutex mu_ CFL_LOCK_LEVEL(24);
  CondVar drained_;  // signaled under mu_: a pin count hit zero, or Cancel

  Epoch current_ CFL_GUARDED_BY(mu_) = 0;
  // epoch -> outstanding ref count; entries erased at zero, so the map
  // holds exactly the pinned epochs (its size is the live-epoch gauge).
  std::map<Epoch, uint32_t> pins_ CFL_GUARDED_BY(mu_);
  bool cancelled_ CFL_GUARDED_BY(mu_) = false;
};

}  // namespace cfl::dyn

#endif  // CFL_DYN_EPOCH_H_
