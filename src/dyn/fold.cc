#include "dyn/fold.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "check/check.h"
#include "graph/graph_builder.h"

namespace cfl::dyn {

// Friend of Graph: writes the same private fields as GraphBuilder::Build,
// in the same order, so the two stay reviewable side by side.
class GraphFolder {
 public:
  GraphFolder(const Graph& base, const GraphDelta& delta)
      : base_(base), delta_(delta) {}

  Graph Fold(DirtyLabels* dirty) {
    CFL_CHECK(delta_.sealed()) << " FoldDelta requires a sealed delta";
    CFL_CHECK(&delta_.base() == &base_)
        << " FoldDelta: delta is bound to a different base graph";

    Graph g;
    const uint32_t old_n = base_.NumVertices();
    const uint32_t n = delta_.NewVertices();

    // Labels: base labels plus the batch's appended vertices.
    g.labels_.reserve(n);
    g.labels_.assign(base_.labels_.begin(), base_.labels_.end());
    for (uint32_t i = 0; i < delta_.AddedVertices(); ++i) {
      g.labels_.push_back(delta_.AddedVertexLabel(i));
    }

    // CSR + label-run index in one appending pass: untouched vertices
    // block-copy their base slices (run begins are relative to the list
    // start, so runs copy verbatim); touched vertices take the delta merge
    // and re-derive runs from the merged list.
    g.offsets_.assign(n + 1, 0);
    g.run_offsets_.assign(n + 1, 0);
    g.neighbors_.reserve(base_.neighbors_.size() + delta_.AddedEdges() * 2);
    g.runs_.reserve(base_.runs_.size());
    std::vector<VertexId> merged;
    for (uint32_t v = 0; v < n; ++v) {
      if (v < old_n && !delta_.IsTouched(v)) {
        std::span<const VertexId> adj = base_.Neighbors(v);
        g.neighbors_.insert(g.neighbors_.end(), adj.begin(), adj.end());
        std::span<const Graph::LabelRun> runs = base_.AdjacencyLabelRuns(v);
        g.runs_.insert(g.runs_.end(), runs.begin(), runs.end());
      } else {
        delta_.MergedNeighbors(v, &merged);
        for (uint32_t i = 0; i < merged.size(); ++i) {
          if (i == 0 || g.labels_[merged[i]] != g.labels_[merged[i - 1]]) {
            g.runs_.push_back({g.labels_[merged[i]], i});
          }
        }
        g.neighbors_.insert(g.neighbors_.end(), merged.begin(), merged.end());
      }
      g.offsets_[v + 1] = g.neighbors_.size();
      g.run_offsets_[v + 1] = g.runs_.size();
    }

    // Plain graphs only (no loops, no multiplicities — delta.cc rejects
    // both), so the edge count is pure arithmetic and effective quantities
    // equal structural ones.
    g.num_edges_ =
        base_.NumEdges() + delta_.AddedEdges() - delta_.RemovedEdges();
    g.num_labels_ = base_.NumLabels();
    for (uint32_t i = 0; i < delta_.AddedVertices(); ++i) {
      g.num_labels_ = std::max(g.num_labels_, delta_.AddedVertexLabel(i) + 1);
    }
    g.effective_num_vertices_ = n;
    g.effective_degree_.resize(n);
    for (uint32_t v = 0; v < n; ++v) {
      g.effective_degree_[v] = g.StructuralDegree(v);
    }

    // Label index: linear counting pass, exactly the builder's. Tombstoned
    // vertices keep their entry (degree zero), matching a rebuild over the
    // same vertex set.
    g.label_offsets_.assign(g.num_labels_ + 1, 0);
    g.label_frequency_.assign(g.num_labels_, 0);
    for (uint32_t v = 0; v < n; ++v) {
      g.label_offsets_[g.labels_[v] + 1]++;
      g.label_frequency_[g.labels_[v]]++;
    }
    for (uint32_t l = 0; l < g.num_labels_; ++l) {
      g.label_offsets_[l + 1] += g.label_offsets_[l];
    }
    g.label_vertices_.resize(n);
    {
      std::vector<uint64_t> cursor(g.label_offsets_.begin(),
                                   g.label_offsets_.end() - 1);
      for (uint32_t v = 0; v < n; ++v) {
        g.label_vertices_[cursor[g.labels_[v]]++] = v;
      }
    }

    // NLF runs: with unit counts these are the adjacency label runs with
    // run lengths, already computed above. Untouched vertices block-copy
    // the base slice; touched ones derive from the new runs.
    g.nlf_offsets_.assign(n + 1, 0);
    for (uint32_t v = 0; v < n; ++v) {
      if (v < old_n && !delta_.IsTouched(v)) {
        std::span<const Graph::LabelCount> nlf = base_.NeighborLabelCounts(v);
        g.nlf_.insert(g.nlf_.end(), nlf.begin(), nlf.end());
      } else {
        std::span<const Graph::LabelRun> runs = g.AdjacencyLabelRuns(v);
        const uint32_t deg = g.StructuralDegree(v);
        for (uint32_t i = 0; i < runs.size(); ++i) {
          const uint32_t end =
              (i + 1 < runs.size()) ? runs[i + 1].begin : deg;
          g.nlf_.push_back({runs[i].label, end - runs[i].begin});
        }
      }
      g.nlf_offsets_[v + 1] = g.nlf_.size();
    }

    // Max neighbor degree. Degrees changed only at touched vertices, so
    // mnd can move only for touched vertices and their neighbors; a far
    // endpoint that *lost* its edge is itself touched, so the new
    // neighborhoods of the touched set cover every affected vertex.
    g.mnd_.resize(n);
    if (old_n > 0) {
      std::memcpy(g.mnd_.data(), base_.mnd_.data(), old_n * sizeof(uint32_t));
    }
    std::vector<uint8_t> affected(n, 0);
    for (VertexId t : delta_.Touched()) {
      affected[t] = 1;
      for (VertexId w : g.Neighbors(t)) affected[w] = 1;
    }
    for (uint32_t v = 0; v < n; ++v) {
      if (!affected[v] && v < old_n) continue;
      uint32_t best = 0;
      for (VertexId w : g.Neighbors(v)) {
        best = std::max(best, g.effective_degree_[w]);
      }
      g.mnd_[v] = best;
    }

    if (dirty != nullptr) {
      ComputeDirty(g, affected, dirty);
    }

    FoldHubs(&g, old_n, n);
    return g;
  }

 private:
  // Dirty labels: labels of touched vertices, plus labels of untouched
  // vertices whose mnd moved (their candidate memberships can flip under
  // the paper's mnd pruning even though their own adjacency is unchanged).
  void ComputeDirty(const Graph& g, const std::vector<uint8_t>& affected,
                    DirtyLabels* dirty) {
    dirty->labels.clear();
    for (VertexId t : delta_.Touched()) dirty->labels.push_back(g.label(t));
    const uint32_t old_n = base_.NumVertices();
    for (uint32_t v = 0; v < old_n; ++v) {
      if (!affected[v] || delta_.IsTouched(v)) continue;
      if (g.MaxNeighborDegree(v) != base_.MaxNeighborDegree(v)) {
        dirty->labels.push_back(g.label(v));
      }
    }
    std::sort(dirty->labels.begin(), dirty->labels.end());
    dirty->labels.erase(
        std::unique(dirty->labels.begin(), dirty->labels.end()),
        dirty->labels.end());
  }

  // Hub rows: settle the threshold exactly as a from-scratch build would
  // (restart the doubling from the builder default — the degree
  // distribution moved, so the base's settlement is not authoritative),
  // then copy-and-patch base rows where possible.
  void FoldHubs(Graph* g, uint32_t old_n, uint32_t n) {
    if (n == 0) return;
    const uint64_t words_per_row = (static_cast<uint64_t>(n) + 63) / 64;
    uint64_t threshold = GraphBuilder::kDefaultHubDegreeThreshold;
    uint64_t num_hubs = 0;
    for (;;) {
      num_hubs = 0;
      for (uint32_t v = 0; v < n; ++v) {
        if (g->StructuralDegree(v) >= threshold) ++num_hubs;
      }
      if (num_hubs * words_per_row * sizeof(uint64_t) <=
          GraphBuilder::kHubSpaceBudgetBytes) {
        break;
      }
      threshold *= 2;
    }
    g->hub_degree_threshold_ = static_cast<uint32_t>(
        std::min<uint64_t>(threshold, static_cast<uint32_t>(-1)));
    if (num_hubs == 0) return;

    const uint64_t base_words = base_.hub_words_per_row_;
    g->hub_words_per_row_ = words_per_row;
    g->hub_index_.assign(n, Graph::kNoHub);
    g->hub_bits_.assign(num_hubs * words_per_row, 0);
    uint32_t row = 0;
    for (uint32_t v = 0; v < n; ++v) {
      if (g->StructuralDegree(v) < threshold) continue;
      g->hub_index_[v] = row;
      uint64_t* bits = g->hub_bits_.data() + row * words_per_row;
      ++row;
      const uint64_t* base_row = v < old_n ? base_.HubRowWords(v) : nullptr;
      if (base_row == nullptr) {
        // Crossed the threshold this epoch (or the base had no rows):
        // build from the already-folded adjacency.
        for (VertexId w : g->Neighbors(v)) bits[w >> 6] |= 1ull << (w & 63);
        continue;
      }
      // Copy-and-patch: the base row covers ids < old_n; batch-added ids
      // land in the zeroed tail and are covered by the Added() patches.
      std::memcpy(bits, base_row, base_words * sizeof(uint64_t));
      for (VertexId w : delta_.Removed(v)) bits[w >> 6] &= ~(1ull << (w & 63));
      for (VertexId w : delta_.Added(v)) bits[w >> 6] |= 1ull << (w & 63);
    }
  }

  const Graph& base_;
  const GraphDelta& delta_;
};

Graph FoldDelta(const Graph& base, const GraphDelta& delta,
                DirtyLabels* dirty) {
  return GraphFolder(base, delta).Fold(dirty);
}

}  // namespace cfl::dyn
