#include "dyn/epoch.h"

#include "check/check.h"

namespace cfl::dyn {

EpochRef::~EpochRef() {
  if (manager_ != nullptr) Release();
}

EpochRef::EpochRef(EpochRef&& other) noexcept
    : manager_(other.manager_), epoch_(other.epoch_) {
  other.manager_ = nullptr;
}

EpochRef& EpochRef::operator=(EpochRef&& other) noexcept {
  if (this != &other) {
    if (manager_ != nullptr) Release();
    manager_ = other.manager_;
    epoch_ = other.epoch_;
    other.manager_ = nullptr;
  }
  return *this;
}

void EpochRef::Release() {
  CFL_CHECK(manager_ != nullptr)
      << " EpochRef double release (epoch " << epoch_ << ")";
  manager_->Unpin(epoch_);
  manager_ = nullptr;
}

EpochManager::~EpochManager() {
  MutexLock lock(mu_);
  CFL_CHECK(pins_.empty())
      << " EpochManager destroyed with " << pins_.size()
      << " epoch(s) still pinned — an EpochRef leaked";
}

EpochRef EpochManager::Pin() {
  MutexLock lock(mu_);
  pins_[current_]++;
  return EpochRef(this, current_);
}

Epoch EpochManager::current() {
  MutexLock lock(mu_);
  return current_;
}

Epoch EpochManager::Advance() {
  MutexLock lock(mu_);
  return ++current_;
}

uint32_t EpochManager::PinCount(Epoch epoch) {
  MutexLock lock(mu_);
  auto it = pins_.find(epoch);
  return it == pins_.end() ? 0 : it->second;
}

uint32_t EpochManager::PinnedAtOrBelow(Epoch epoch) {
  MutexLock lock(mu_);
  uint32_t count = 0;
  for (const auto& [e, c] : pins_) {
    if (e > epoch) break;  // map is ordered
    count += c;
  }
  return count;
}

bool EpochManager::WaitUntilDrained(Epoch epoch) {
  MutexLock lock(mu_);
  for (;;) {
    if (cancelled_) return false;
    bool pinned = false;
    for (const auto& [e, c] : pins_) {
      if (e > epoch) break;
      if (c > 0) {
        pinned = true;
        break;
      }
    }
    if (!pinned) return true;
    // cfl-analyze: allow(blocking-under-lock) condvar wait releases mu_
    drained_.Wait(mu_);
  }
}

void EpochManager::Cancel() {
  MutexLock lock(mu_);
  cancelled_ = true;
  drained_.NotifyAll();
}

void EpochManager::Unpin(Epoch epoch) {
  MutexLock lock(mu_);
  auto it = pins_.find(epoch);
  CFL_CHECK(it != pins_.end() && it->second > 0)
      << " Unpin of epoch " << epoch << " with no outstanding pins";
  if (--it->second == 0) {
    pins_.erase(it);
    drained_.NotifyAll();
  }
}

}  // namespace cfl::dyn
