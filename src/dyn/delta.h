// One batch of mutations against an immutable base `Graph`.
//
// The engine is immutable-per-epoch (DESIGN.md §13): nothing ever mutates a
// built Graph in place. Instead a `GraphDelta` records edge/vertex
// insertions and deletions relative to one specific base snapshot,
// validates them eagerly (duplicate edge, missing edge, dead vertex — the
// server turns these into ERR replies instead of corrupting state), and
// after `Seal()` exposes the normalized view the fold consumes: per touched
// vertex, the added and removed neighbors sorted by (label, id) — exactly
// the order of the base CSR's label-partitioned adjacency runs, so
// `MergedNeighborsWithLabel` can produce the post-delta neighbor list as a
// single linear three-way merge (base run ∪ added − removed) without ever
// sorting. dyn/fold.cc folds a sealed delta into a fresh CSR with the same
// merge; tests/dyn_epoch_test.cc sweeps the merge against a std::set
// reference.
//
// Semantics:
//   * AddVertex appends ids after the base's (ids are stable forever);
//     new labels may extend the label space.
//   * RemoveVertex removes every incident edge and tombstones the vertex:
//     the id, and its label-index entry, survive (so a from-scratch rebuild
//     over the same vertex set stays bit-comparable — the differential
//     oracle depends on this), but its degree drops to zero and further ops
//     on it are rejected.
//   * Add/RemoveEdge of the same pair within one batch cancel out, so a
//     random op stream normalizes to the net difference.
//
// A delta is bound to the base it was constructed from; DynamicGraph
// rejects stale deltas (base no longer current) instead of guessing.

#ifndef CFL_DYN_DELTA_H_
#define CFL_DYN_DELTA_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"

namespace cfl::dyn {

// Labels whose candidate populations changed under a delta: the labels of
// every touched vertex (its adjacency, degree, and NLF runs changed) plus
// the labels of untouched neighbors whose max-neighbor-degree moved. A
// cached plan whose query labels are disjoint from this set has a
// bit-identical embedding set before and after the delta (no edge between
// two unchanged-label vertices can have changed without touching them), so
// the plan cache drops exactly the intersecting entries (DESIGN.md §13).
struct DirtyLabels {
  std::vector<Label> labels;  // sorted, deduped

  bool Contains(Label l) const;
  // True iff any label in `sorted` (ascending) is dirty.
  bool Intersects(std::span<const Label> sorted) const;
};

class GraphDelta {
 public:
  // `base` must outlive the delta.
  explicit GraphDelta(const Graph& base);

  GraphDelta(GraphDelta&&) = default;
  GraphDelta& operator=(GraphDelta&&) = default;

  // --- Mutation recording (before Seal) ---------------------------------
  //
  // Each returns false and sets error() on an invalid op; the delta is
  // unchanged and stays usable (the server reports the op, not the batch).

  // Appends a vertex (id = base vertices + added so far; reported via
  // `id_out` when non-null). Isolated until edges are added.
  bool AddVertex(Label label, VertexId* id_out = nullptr);

  // Tombstones `v`: drops every currently-present incident edge.
  bool RemoveVertex(VertexId v);

  bool AddEdge(VertexId u, VertexId v);
  bool RemoveEdge(VertexId u, VertexId v);

  const std::string& error() const { return error_; }

  // --- Overlay queries (valid any time) ---------------------------------

  const Graph& base() const { return *base_; }
  uint32_t BaseVertices() const { return base_->NumVertices(); }
  uint32_t NewVertices() const { return BaseVertices() + AddedVertices(); }

  // Label of `v` in the post-delta graph (base label or added-vertex label).
  Label LabelOf(VertexId v) const;

  bool VertexRemoved(VertexId v) const {
    return removed_vertices_.count(v) != 0;
  }
  bool VertexAlive(VertexId v) const {
    return v < NewVertices() && !VertexRemoved(v);
  }

  // Edge presence in the post-delta graph (base minus removals plus adds).
  bool HasEdgeNow(VertexId u, VertexId v) const;

  // Net op counts.
  uint32_t AddedVertices() const {
    return static_cast<uint32_t>(added_labels_.size());
  }
  uint32_t RemovedVertices() const {
    return static_cast<uint32_t>(removed_vertices_.size());
  }
  uint64_t AddedEdges() const { return added_edges_; }
  uint64_t RemovedEdges() const { return removed_edges_; }
  Label AddedVertexLabel(uint32_t i) const { return added_labels_[i]; }

  bool empty() const {
    return added_labels_.empty() && removed_vertices_.empty() &&
           added_edges_ == 0 && removed_edges_ == 0;
  }

  // --- Sealed views (fold + merge; Seal first) --------------------------

  // Freezes the delta and builds the normalized per-vertex views below.
  // Further mutations are rejected. Idempotent.
  void Seal();
  bool sealed() const { return sealed_; }

  // Vertices whose adjacency changed (endpoints of every net edge op,
  // every tombstone, every added vertex), ascending. Sealed only.
  // cfl-analyze: allow(span-escape) views into the sealed (frozen) delta
  std::span<const VertexId> Touched() const;
  bool IsTouched(VertexId v) const;

  // Net added / removed neighbors of `v`, sorted by (post-delta label, id).
  // Empty spans for untouched vertices. Sealed only.
  // cfl-analyze: allow(span-escape) views into the sealed (frozen) delta
  std::span<const VertexId> Added(VertexId v) const;
  // cfl-analyze: allow(span-escape) views into the sealed (frozen) delta
  std::span<const VertexId> Removed(VertexId v) const;

  // The on-the-fly merge: neighbors of `v` with label `l` in the
  // post-delta graph, ascending by id — the base CSR label run merged with
  // the delta, never materializing the rest of the graph. Appends to *out.
  void MergedNeighborsWithLabel(VertexId v, Label l,
                                std::vector<VertexId>* out) const;

  // Full post-delta adjacency of `v`, (label, id)-sorted like the CSR.
  // Replaces *out.
  void MergedNeighbors(VertexId v, std::vector<VertexId>* out) const;

 private:
  struct PerVertex {
    // Pre-seal: hash-set staging. Post-seal: the sorted vectors.
    std::unordered_set<VertexId> add_set;
    std::unordered_set<VertexId> remove_set;
    std::vector<VertexId> added;    // (label, id)-sorted at Seal
    std::vector<VertexId> removed;  // (label, id)-sorted at Seal
  };

  bool Fail(const std::string& message);
  // Net-cancelling edge flip shared by Add/RemoveEdge and RemoveVertex.
  void RecordAdd(VertexId u, VertexId v);
  void RecordRemove(VertexId u, VertexId v);
  const PerVertex* Find(VertexId v) const;

  const Graph* base_;
  bool sealed_ = false;
  std::string error_;

  std::vector<Label> added_labels_;             // one per added vertex
  std::unordered_set<VertexId> removed_vertices_;
  std::unordered_map<VertexId, PerVertex> per_vertex_;
  uint64_t added_edges_ = 0;
  uint64_t removed_edges_ = 0;

  std::vector<VertexId> touched_;  // built at Seal, ascending
};

}  // namespace cfl::dyn

#endif  // CFL_DYN_DELTA_H_
