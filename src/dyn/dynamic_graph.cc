#include "dyn/dynamic_graph.h"

#include <utility>

#include "check/check.h"
#include "dyn/fold.h"
#include "graph/graph_builder.h"

namespace cfl::dyn {

DynamicGraph::DynamicGraph(Graph base, DynOptions options)
    : options_(options),
      current_(std::make_shared<const Graph>(std::move(base))) {
  CFL_CHECK(!current_->HasMultiplicities())
      << " DynamicGraph requires a plain (uncompressed) base graph";
  if (options_.background_compaction) {
    compactor_ = std::make_unique<TaskPool>(1);
  }
}

DynamicGraph::~DynamicGraph() {
  // A compactor parked in WaitUntilDrained would deadlock the pool join;
  // fail its wait first. Tasks already rebuilding finish and install (or
  // abandon) against still-live members — the pool joins before any member
  // destructor runs.
  epochs_.Cancel();
  compactor_.reset();
}

Snapshot DynamicGraph::Acquire() {
  MutexLock lock(mu_);
  return Snapshot(current_, epochs_.Pin());
}

Epoch DynamicGraph::CurrentEpoch() { return epochs_.current(); }

std::optional<std::string> DynamicGraph::Apply(
    GraphDelta&& delta, ApplyResult* result,
    const std::function<void(const DirtyLabels&)>& on_commit) {
  delta.Seal();
  bool schedule = false;
  {
    MutexLock lock(mu_);
    if (&delta.base() != current_.get()) {
      return "stale delta: the base snapshot is no longer current "
             "(re-acquire and rebuild the batch)";
    }
    if (delta.empty()) {
      if (result != nullptr) {
        *result = {};
        result->epoch = epochs_.current();
      }
      return std::nullopt;
    }
    DirtyLabels dirty;
    Graph folded = FoldDelta(*current_, delta, &dirty);
    retained_.push_back({epochs_.current(), current_});
    current_ = std::make_shared<const Graph>(std::move(folded));
    const Epoch committed = epochs_.Advance();

    counters_.folds++;
    counters_.epochs_created++;
    counters_.vertices_added += delta.AddedVertices();
    counters_.vertices_removed += delta.RemovedVertices();
    counters_.edges_added += delta.AddedEdges();
    counters_.edges_removed += delta.RemovedEdges();
    touched_since_rebuild_ += delta.Touched().size();

    if (compactor_ != nullptr && options_.compact_touched_fraction > 0 &&
        !compaction_scheduled_ &&
        static_cast<double>(touched_since_rebuild_) >
            options_.compact_touched_fraction * current_->NumVertices()) {
      compaction_scheduled_ = true;
      schedule = true;
    }
    RetireDrainedLocked();

    if (on_commit != nullptr) on_commit(dirty);
    if (result != nullptr) {
      result->epoch = committed;
      result->dirty = std::move(dirty);
      result->added_vertices = delta.AddedVertices();
      result->removed_vertices = delta.RemovedVertices();
      result->added_edges = delta.AddedEdges();
      result->removed_edges = delta.RemovedEdges();
    }
  }
  if (schedule) {
    compactor_->Submit([this] {
      CompactNow();
      MutexLock lock(mu_);
      compaction_scheduled_ = false;
    });
  }
  return std::nullopt;
}

obs::DynCounters DynamicGraph::Stats() {
  MutexLock lock(mu_);
  RetireDrainedLocked();
  obs::DynCounters out = counters_;
  out.live_epochs = 1 + retained_.size();
  out.pinned_refs = epochs_.PinnedAtOrBelow(epochs_.current());
  return out;
}

bool DynamicGraph::CompactNow() {
  Epoch target;
  std::shared_ptr<const Graph> snapshot;
  {
    MutexLock lock(mu_);
    target = epochs_.current();
    snapshot = current_;
  }
  // The drain barrier: no rebuild is installed while any older epoch is
  // still pinned. Cancelled on shutdown.
  if (target > 0 && !epochs_.WaitUntilDrained(target - 1)) return false;

  Graph rebuilt = Rebuild(*snapshot);  // off-lock: the expensive part

  MutexLock lock(mu_);
  if (epochs_.current() != target) {
    // A writer committed while we rebuilt; the rebuild describes a stale
    // epoch. Abandon — the next trigger will try again.
    counters_.compactions_abandoned++;
    return false;
  }
  retained_.push_back({target, current_});
  current_ = std::make_shared<const Graph>(std::move(rebuilt));
  epochs_.Advance();
  counters_.compactions++;
  counters_.epochs_created++;
  touched_since_rebuild_ = 0;
  RetireDrainedLocked();
  return true;
}

void DynamicGraph::RetireDrainedLocked() {
  auto it = retained_.begin();
  while (it != retained_.end()) {
    if (epochs_.PinCount(it->epoch) == 0) {
      counters_.epochs_retired++;
      it = retained_.erase(it);
    } else {
      ++it;
    }
  }
}

Graph DynamicGraph::Rebuild(const Graph& g) {
  const uint32_t n = g.NumVertices();
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) {
    b.SetLabel(v, g.label(v));
    for (VertexId w : g.Neighbors(v)) {
      if (w > v) b.AddEdge(v, w);  // each undirected edge once; no loops
    }
  }
  return std::move(b).Build();
}

}  // namespace cfl::dyn
