// Folding a sealed GraphDelta into a fresh epoch Graph.
//
// Each committed batch produces a brand-new immutable `Graph` — the next
// epoch's snapshot — while queries pinned to older epochs keep reading
// their own instances untouched (dyn/epoch.h). The fold is *incremental*:
// it never re-sorts the data graph. Untouched vertices' adjacency slices,
// label runs, and NLF runs are block-copied from the base CSR; touched
// vertices get their post-delta lists from the delta's linear three-way
// merge (base run ∪ added − removed, already (label, id)-ordered). Derived
// structures are rewritten only where they can change:
//
//   * degrees / NLF: touched vertices only,
//   * max-neighbor-degree: touched vertices plus their new neighbors (a
//     removed edge's far endpoint is itself touched, so that set covers
//     every vertex whose neighborhood degrees moved),
//   * label index: one linear counting pass (it is O(n) even in the
//     builder; not worth diffing),
//   * hub rows: membership re-derived by the builder's threshold-doubling
//     scan over the new degrees, then each hub row is block-copied from the
//     base and bit-patched with the delta mask (cleared for removed, set
//     for added neighbors) when the vertex had a base row, or rebuilt from
//     the new adjacency when it crossed the threshold. Row strides grow
//     with the vertex count; copied rows are re-strided with a zero tail
//     (untouched vertices cannot be adjacent to batch-added ids).
//
// The output is content-equal to `GraphBuilder` over the post-delta edge
// set — same CSR bytes, same indexes, same hub threshold settlement — which
// is the property the update-vs-rebuild oracle (tests/dyn_oracle_test.cc)
// checks end to end through every engine's embeddings.
//
// FoldDelta also reports the delta's DirtyLabels (delta.h): the exact label
// set the serve layer uses to invalidate cached plans.

#ifndef CFL_DYN_FOLD_H_
#define CFL_DYN_FOLD_H_

#include "dyn/delta.h"
#include "graph/graph.h"

namespace cfl::dyn {

// Builds the post-delta snapshot. `delta` must be sealed and bound to
// `base` (CFL_CHECK otherwise). When `dirty` is non-null it receives the
// labels whose candidate populations changed (sorted, deduped).
Graph FoldDelta(const Graph& base, const GraphDelta& delta,
                DirtyLabels* dirty = nullptr);

}  // namespace cfl::dyn

#endif  // CFL_DYN_FOLD_H_
