// The mutable facade over immutable per-epoch snapshots.
//
// `DynamicGraph` is the one stateful object of the dynamic subsystem. It
// owns the current `Graph` snapshot, the epoch counter, the retained list
// of superseded snapshots, and the background compactor. The engine's
// `const Graph&` interface is untouched: a reader calls `Acquire()` and
// gets a `Snapshot` — a shared_ptr to one immutable epoch graph plus an
// RAII `EpochRef` pin — and runs the entire prepare/enumerate pipeline
// against that frozen instance while writers commit later epochs alongside.
//
// Writer path (`Apply`): seal the delta, fold it into a fresh CSR
// (dyn/fold.h) under the graph mutex, retain the superseded snapshot until
// its pins drain, advance the epoch, and report the fold's DirtyLabels so
// the serve layer can invalidate exactly the affected cached plans. A delta
// built against a snapshot that is no longer current is rejected as stale —
// the caller re-acquires and rebuilds its delta (serve/server.cc does this
// with a bounded retry).
//
// Compaction: folds are incremental and never re-sort, so after enough
// churn the snapshot drifts from what a from-scratch build would choose
// (hub budget settlement pessimism, tombstone accumulation in the label
// index). When the touched-vertex accumulator crosses
// `compact_touched_fraction * n`, the compactor (one TaskPool worker)
// waits until every older epoch drains (`EpochManager::WaitUntilDrained` —
// compaction never runs while an older epoch is pinned, the property
// tests/dyn_epoch_test.cc locks in under tsan), rebuilds from scratch
// off-lock, and installs the rebuild only if the epoch did not advance
// mid-rebuild (otherwise the work is abandoned and recounted).
//
// Lock hierarchy (DESIGN.md §9): mu_ is level 22 — above serve's
// prepare_mu_ (20), below EpochManager's (24), so Apply's
// prepare -> graph -> pin chain ascends.

#ifndef CFL_DYN_DYNAMIC_GRAPH_H_
#define CFL_DYN_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/thread_annotations.h"
#include "dyn/delta.h"
#include "dyn/epoch.h"
#include "graph/graph.h"
#include "obs/dyn_counters.h"
#include "parallel/task_pool.h"

namespace cfl::dyn {

struct DynOptions {
  // Schedule a compaction once the cumulative touched-vertex count since
  // the last rebuild exceeds this fraction of the vertex count. <= 0
  // disables automatic compaction (CompactNow still works).
  double compact_touched_fraction = 0.25;

  // Run compactions on a background worker. When false, nothing compacts
  // until CompactNow() is called (deterministic tests).
  bool background_compaction = true;
};

// One pinned epoch: the immutable graph plus the pin keeping its snapshot
// from being retired. Move-only; queries hold it for their full lifetime.
class Snapshot {
 public:
  Snapshot() = default;
  Snapshot(std::shared_ptr<const Graph> graph, EpochRef ref)
      : graph_(std::move(graph)), ref_(std::move(ref)) {}

  Snapshot(Snapshot&&) = default;
  Snapshot& operator=(Snapshot&&) = default;

  const Graph& graph() const { return *graph_; }
  const std::shared_ptr<const Graph>& graph_ptr() const { return graph_; }
  Epoch epoch() const { return ref_.epoch(); }
  bool valid() const { return graph_ != nullptr && ref_.held(); }

  // Unpins early (before destruction). The graph pointer stays usable —
  // shared ownership protects the memory — but the compactor no longer
  // waits for this reader.
  void ReleasePin() { ref_.Release(); }

 private:
  std::shared_ptr<const Graph> graph_;
  EpochRef ref_;
};

// Result of a successful Apply.
struct ApplyResult {
  Epoch epoch = 0;           // the newly committed epoch
  DirtyLabels dirty;         // labels whose candidates changed
  uint32_t added_vertices = 0;
  uint32_t removed_vertices = 0;
  uint64_t added_edges = 0;
  uint64_t removed_edges = 0;
};

class DynamicGraph {
 public:
  explicit DynamicGraph(Graph base, DynOptions options = {});

  // Cancels any parked compactor wait and joins the worker. Dies (via
  // ~EpochManager) if a Snapshot still holds a pin.
  ~DynamicGraph();

  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;

  // Pins the current epoch and returns its snapshot.
  Snapshot Acquire() CFL_EXCLUDES(mu_);

  // Builds a delta against `snapshot`'s graph. Convenience for callers
  // that already hold a snapshot (the delta is bound to that instance).
  GraphDelta NewDelta(const Snapshot& snapshot) const {
    return GraphDelta(snapshot.graph());
  }

  // Commits one batch: seals, folds, advances the epoch. Returns an error
  // string when the delta is stale (bound to a superseded snapshot) — the
  // caller should re-acquire and rebuild — or nullopt on success with
  // `result` (optional) filled. An empty delta commits nothing and reports
  // the current epoch.
  //
  // `on_commit`, when given, runs *inside* the commit's critical section,
  // after the new epoch exists but before any Acquire can observe it. The
  // serve layer invalidates its plan cache here: a query that later pins
  // the new epoch can then never hit a plan the batch dirtied (invalidation
  // strictly precedes visibility). The callback must not call back into
  // this DynamicGraph and may only take locks above level 22 (the plan
  // cache's 30 qualifies).
  std::optional<std::string> Apply(
      GraphDelta&& delta, ApplyResult* result = nullptr,
      const std::function<void(const DirtyLabels&)>& on_commit = nullptr)
      CFL_EXCLUDES(mu_);

  Epoch CurrentEpoch() CFL_EXCLUDES(mu_);

  // Counter snapshot (gauges sampled now). Also opportunistically retires
  // drained snapshots so the gauges reflect reality.
  obs::DynCounters Stats() CFL_EXCLUDES(mu_);

  // Synchronous compaction: waits for older epochs to drain, rebuilds,
  // installs. Returns false if cancelled (shutdown) or if the epoch
  // advanced mid-rebuild. Test hook and the background task's body.
  bool CompactNow() CFL_EXCLUDES(mu_);

 private:
  struct Retained {
    Epoch epoch;
    std::shared_ptr<const Graph> graph;
  };

  // Drops retained snapshots whose epoch has no outstanding pins.
  void RetireDrainedLocked() CFL_REQUIRES(mu_);

  // From-scratch rebuild of `g` through GraphBuilder (fresh hub
  // settlement, canonical vector sizes). Static: runs off-lock.
  static Graph Rebuild(const Graph& g);

  const DynOptions options_;

  Mutex mu_ CFL_LOCK_LEVEL(22);
  std::shared_ptr<const Graph> current_ CFL_GUARDED_BY(mu_);
  std::vector<Retained> retained_ CFL_GUARDED_BY(mu_);
  obs::DynCounters counters_ CFL_GUARDED_BY(mu_);
  // Touched vertices folded since the last from-scratch rebuild; the
  // compaction trigger.
  uint64_t touched_since_rebuild_ CFL_GUARDED_BY(mu_) = 0;
  bool compaction_scheduled_ CFL_GUARDED_BY(mu_) = false;

  EpochManager epochs_;

  // Single-worker pool for background compaction; null when
  // options_.background_compaction is false. Declared last so its
  // destructor (which joins the worker) runs first — after ~DynamicGraph
  // has cancelled the epoch waits the worker might be parked on.
  std::unique_ptr<TaskPool> compactor_;
};

}  // namespace cfl::dyn

#endif  // CFL_DYN_DYNAMIC_GRAPH_H_
