#include "graph/graph.h"

#include <algorithm>

namespace cfl {

bool Graph::HasEdge(VertexId u, VertexId v) const {
  // Probe the endpoint with the shorter adjacency list.
  if (StructuralDegree(u) > StructuralDegree(v)) std::swap(u, v);
  std::span<const VertexId> adj = Neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

uint32_t Graph::NeighborLabelCount(VertexId v, Label l) const {
  std::span<const LabelCount> runs = NeighborLabelCounts(v);
  auto it = std::lower_bound(
      runs.begin(), runs.end(), l,
      [](const LabelCount& run, Label want) { return run.label < want; });
  if (it == runs.end() || it->label != l) return 0;
  return it->count;
}

uint64_t Graph::MemoryBytes() const {
  uint64_t bytes = 0;
  bytes += offsets_.capacity() * sizeof(uint64_t);
  bytes += neighbors_.capacity() * sizeof(VertexId);
  bytes += labels_.capacity() * sizeof(Label);
  bytes += multiplicity_.capacity() * sizeof(uint32_t);
  bytes += effective_degree_.capacity() * sizeof(uint32_t);
  bytes += label_offsets_.capacity() * sizeof(uint64_t);
  bytes += label_vertices_.capacity() * sizeof(VertexId);
  bytes += label_frequency_.capacity() * sizeof(uint64_t);
  bytes += nlf_offsets_.capacity() * sizeof(uint64_t);
  bytes += nlf_.capacity() * sizeof(LabelCount);
  bytes += mnd_.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace cfl
