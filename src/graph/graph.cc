#include "graph/graph.h"

#include <algorithm>

namespace cfl {

uint32_t Graph::NeighborLabelCount(VertexId v, Label l) const {
  std::span<const LabelCount> runs = NeighborLabelCounts(v);
  auto it = std::lower_bound(
      runs.begin(), runs.end(), l,
      [](const LabelCount& run, Label want) { return run.label < want; });
  if (it == runs.end() || it->label != l) return 0;
  return it->count;
}

uint64_t Graph::MemoryBytes() const {
  uint64_t bytes = 0;
  bytes += offsets_.capacity() * sizeof(uint64_t);
  bytes += neighbors_.capacity() * sizeof(VertexId);
  bytes += labels_.capacity() * sizeof(Label);
  bytes += multiplicity_.capacity() * sizeof(uint32_t);
  bytes += effective_degree_.capacity() * sizeof(uint32_t);
  bytes += label_offsets_.capacity() * sizeof(uint64_t);
  bytes += label_vertices_.capacity() * sizeof(VertexId);
  bytes += label_frequency_.capacity() * sizeof(uint64_t);
  bytes += run_offsets_.capacity() * sizeof(uint64_t);
  bytes += runs_.capacity() * sizeof(LabelRun);
  bytes += hub_index_.capacity() * sizeof(uint32_t);
  bytes += hub_bits_.capacity() * sizeof(uint64_t);
  bytes += nlf_offsets_.capacity() * sizeof(uint64_t);
  bytes += nlf_.capacity() * sizeof(LabelCount);
  bytes += mnd_.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace cfl
