// Core graph representation for the CFL-Match library.
//
// The paper (Bi et al., SIGMOD 2016) operates on vertex-labeled undirected
// graphs. `Graph` is an immutable CSR (compressed sparse row) structure
// optimized for the access patterns of subgraph matching:
//   * O(1) label lookup and candidate seeding via a label index,
//   * O(log d) edge-existence probes (sorted adjacency, probe the smaller
//     endpoint),
//   * O(log L) neighbor-label-frequency (NLF) lookups for CandVerify
//     (paper Algorithm 6),
//   * O(1) max-neighbor-degree lookups (paper Lemma A.1).
//
// `Graph` doubles as the representation of *compressed* data graphs produced
// by the structural-equivalence merging of Ren & Wang [14] (the "-Boost"
// variants): each vertex may carry a multiplicity >= 1 counting how many
// original vertices it stands for, and a vertex whose members form a clique
// carries a self-loop. All degree-like accessors report *effective* values
// (as if the graph were expanded), which is exactly what candidate filters
// must compare against; `StructuralDegree` reports the raw CSR degree.
//
// Instances are created through `GraphBuilder` (graph_builder.h). Once
// built, a Graph is immutable: every accessor is const and writes nothing
// (no mutable members, no lazy caches), so a single instance is safe to
// share by reference across concurrent enumeration workers — the parallel
// matcher (parallel/parallel_match.h) depends on this contract.

#ifndef CFL_GRAPH_GRAPH_H_
#define CFL_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace cfl {

using VertexId = uint32_t;
using Label = uint32_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // --- Basic shape ------------------------------------------------------

  uint32_t NumVertices() const { return static_cast<uint32_t>(labels_.size()); }

  // Number of undirected edges (a self-loop counts as one edge).
  uint64_t NumEdges() const { return num_edges_; }

  // Labels are dense in [0, NumLabels()).
  uint32_t NumLabels() const { return num_labels_; }

  Label label(VertexId v) const { return labels_[v]; }

  // --- Adjacency --------------------------------------------------------

  // Neighbors of v, sorted ascending. If the graph has a self-loop at v
  // (compressed clique class), v itself appears in the list.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  // Number of entries in v's adjacency list.
  uint32_t StructuralDegree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  // Degree of v in the (conceptually expanded) graph: the number of distinct
  // vertices adjacent to any member of v. Equal to StructuralDegree for
  // plain graphs.
  uint32_t degree(VertexId v) const { return effective_degree_[v]; }

  // True iff (u, v) is an edge. u == v tests for a self-loop.
  bool HasEdge(VertexId u, VertexId v) const;

  // --- Multiplicities (compressed graphs) --------------------------------

  bool HasMultiplicities() const { return !multiplicity_.empty(); }

  // How many original vertices this vertex stands for (1 in plain graphs).
  uint32_t multiplicity(VertexId v) const {
    return multiplicity_.empty() ? 1u : multiplicity_[v];
  }

  // Total vertex count of the conceptually expanded graph.
  uint64_t EffectiveNumVertices() const { return effective_num_vertices_; }

  // --- Label index -------------------------------------------------------

  // All vertices with label l, sorted ascending.
  std::span<const VertexId> VerticesWithLabel(Label l) const {
    if (l >= num_labels_) return {};
    return {label_vertices_.data() + label_offsets_[l],
            label_vertices_.data() + label_offsets_[l + 1]};
  }

  // Number of (expanded) vertices with label l; the paper's label frequency.
  uint64_t LabelFrequency(Label l) const {
    return l < num_labels_ ? label_frequency_[l] : 0;
  }

  // --- Filters' support structures ---------------------------------------

  // Number of (expanded) neighbors of v with label l; the paper's d(v, l)
  // used by the NLF filter (Algorithm 6 lines 2-4).
  uint32_t NeighborLabelCount(VertexId v, Label l) const;

  // Number of distinct labels among v's neighbors; |L_N(v)|.
  uint32_t NeighborLabelKinds(VertexId v) const {
    return static_cast<uint32_t>(nlf_offsets_[v + 1] - nlf_offsets_[v]);
  }

  // Runs of (label, count) over v's neighbors, sorted by label.
  struct LabelCount {
    Label label;
    uint32_t count;
  };
  std::span<const LabelCount> NeighborLabelCounts(VertexId v) const {
    return {nlf_.data() + nlf_offsets_[v], nlf_.data() + nlf_offsets_[v + 1]};
  }

  // The paper's mnd(v) (Definition A.1): max effective degree over N(v).
  // Zero for isolated vertices.
  uint32_t MaxNeighborDegree(VertexId v) const { return mnd_[v]; }

  // Approximate heap footprint in bytes; used by the index-size experiment.
  uint64_t MemoryBytes() const;

 private:
  friend class GraphBuilder;
  friend struct GraphTestAccess;  // check/test_access.h

  std::vector<uint64_t> offsets_;   // size n+1
  std::vector<VertexId> neighbors_; // size 2m, sorted per vertex
  std::vector<Label> labels_;       // size n
  uint64_t num_edges_ = 0;
  uint32_t num_labels_ = 0;

  std::vector<uint32_t> multiplicity_;      // empty => all ones
  uint64_t effective_num_vertices_ = 0;

  std::vector<uint32_t> effective_degree_;  // size n

  // Label index.
  std::vector<uint64_t> label_offsets_;   // size num_labels+1
  std::vector<VertexId> label_vertices_;  // size n
  std::vector<uint64_t> label_frequency_; // size num_labels (multiplicities)

  // NLF index: per-vertex (label, count) runs.
  std::vector<uint64_t> nlf_offsets_;  // size n+1
  std::vector<LabelCount> nlf_;

  std::vector<uint32_t> mnd_;  // size n
};

}  // namespace cfl

#endif  // CFL_GRAPH_GRAPH_H_
