// Core graph representation for the CFL-Match library.
//
// The paper (Bi et al., SIGMOD 2016) operates on vertex-labeled undirected
// graphs. `Graph` is an immutable CSR (compressed sparse row) structure
// whose layout is tuned for the access patterns of subgraph matching:
//   * label-partitioned adjacency: each vertex's neighbor list is sorted by
//     (label, id), and a per-vertex label-run index makes
//     `NeighborsWithLabel(v, l)` a contiguous span — the CPI builder's
//     counting-intersection loops scan only the one label that can survive
//     instead of the whole neighborhood,
//   * O(1) edge-existence probes against hub vertices (per-hub bitsets,
//     see below), falling back to an O(log d) binary search inside the
//     matching label run otherwise,
//   * O(1) label lookup and candidate seeding via a label index,
//   * O(log L) neighbor-label-frequency (NLF) lookups for CandVerify
//     (paper Algorithm 6),
//   * O(1) max-neighbor-degree lookups (paper Lemma A.1).
//
// Hub probes: vertices whose structural degree reaches the builder's hub
// threshold carry a direct-indexed bitset row over all vertex ids, so the
// enumerator's backward-edge checks against high-degree vertices — the worst
// case for binary search — are a single word load. Rows live in one shared
// arena; the builder only materializes them when the total fits a fixed
// space budget (raising the threshold until it does), so the index is
// bounded regardless of the degree distribution.
//
// `Graph` doubles as the representation of *compressed* data graphs produced
// by the structural-equivalence merging of Ren & Wang [14] (the "-Boost"
// variants): each vertex may carry a multiplicity >= 1 counting how many
// original vertices it stands for, and a vertex whose members form a clique
// carries a self-loop. All degree-like accessors report *effective* values
// (as if the graph were expanded), which is exactly what candidate filters
// must compare against; `StructuralDegree` reports the raw CSR degree.
//
// Instances are created through `GraphBuilder` (graph_builder.h). Once
// built, a Graph is immutable: every accessor is const and writes nothing
// (no mutable members, no lazy caches), so a single instance is safe to
// share by reference across concurrent enumeration workers — the parallel
// matcher (parallel/parallel_match.h) depends on this contract. The
// CFL_IMMUTABLE_AFTER_BUILD marker below makes the contract machine-checked:
// tools/cfl_lint rejects non-const public methods, mutable members, and
// const_cast in marked classes (see check/thread_annotations.h).

#ifndef CFL_GRAPH_GRAPH_H_
#define CFL_GRAPH_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "check/thread_annotations.h"

namespace cfl {

using VertexId = uint32_t;
using Label = uint32_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

class GraphBuilder;

namespace dyn {
class GraphFolder;  // dyn/fold.h: folds a GraphDelta into a fresh epoch CSR
}  // namespace dyn

class Graph {
 public:
  CFL_IMMUTABLE_AFTER_BUILD(Graph);

  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // --- Basic shape ------------------------------------------------------

  uint32_t NumVertices() const { return static_cast<uint32_t>(labels_.size()); }

  // Number of undirected edges (a self-loop counts as one edge).
  uint64_t NumEdges() const { return num_edges_; }

  // Labels are dense in [0, NumLabels()).
  uint32_t NumLabels() const { return num_labels_; }

  Label label(VertexId v) const { return labels_[v]; }

  // --- Adjacency --------------------------------------------------------

  // Neighbors of v, sorted by (label, id): one contiguous ascending-id run
  // per neighbor label, runs ordered by label. If the graph has a self-loop
  // at v (compressed clique class), v itself appears in its label's run.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  // Neighbors of v with label l: a contiguous span of the (label, id)-sorted
  // adjacency, ascending by id. Empty if v has no l-labeled neighbor.
  // O(log |L_N(v)|) via the per-vertex label-run index.
  std::span<const VertexId> NeighborsWithLabel(VertexId v, Label l) const {
    const LabelRun* first = runs_.data() + run_offsets_[v];
    const LabelRun* last = runs_.data() + run_offsets_[v + 1];
    const LabelRun* it = std::lower_bound(
        first, last, l,
        [](const LabelRun& run, Label want) { return run.label < want; });
    if (it == last || it->label != l) return {};
    const uint64_t begin = offsets_[v] + it->begin;
    const uint64_t end =
        (it + 1 != last) ? offsets_[v] + (it + 1)->begin : offsets_[v + 1];
    return {neighbors_.data() + begin, neighbors_.data() + end};
  }

  // Number of entries in v's adjacency list.
  uint32_t StructuralDegree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  // Degree of v in the (conceptually expanded) graph: the number of distinct
  // vertices adjacent to any member of v. Equal to StructuralDegree for
  // plain graphs.
  uint32_t degree(VertexId v) const { return effective_degree_[v]; }

  // True iff (u, v) is an edge. u == v tests for a self-loop. O(1) when
  // either endpoint is a hub; otherwise a binary search inside the matching
  // label run of the lower-degree endpoint.
  bool HasEdge(VertexId u, VertexId v) const {
    if (!hub_bits_.empty()) {
      const uint32_t hu = hub_index_[u];
      if (hu != kNoHub) return HubBit(hu, v);
      const uint32_t hv = hub_index_[v];
      if (hv != kNoHub) return HubBit(hv, u);
    }
    if (StructuralDegree(u) > StructuralDegree(v)) std::swap(u, v);
    std::span<const VertexId> run = NeighborsWithLabel(u, labels_[v]);
    return std::binary_search(run.begin(), run.end(), v);
  }

  // --- Multiplicities (compressed graphs) --------------------------------

  bool HasMultiplicities() const { return !multiplicity_.empty(); }

  // How many original vertices this vertex stands for (1 in plain graphs).
  uint32_t multiplicity(VertexId v) const {
    return multiplicity_.empty() ? 1u : multiplicity_[v];
  }

  // Total vertex count of the conceptually expanded graph.
  uint64_t EffectiveNumVertices() const { return effective_num_vertices_; }

  // --- Label index -------------------------------------------------------

  // All vertices with label l, sorted ascending.
  std::span<const VertexId> VerticesWithLabel(Label l) const {
    if (l >= num_labels_) return {};
    return {label_vertices_.data() + label_offsets_[l],
            label_vertices_.data() + label_offsets_[l + 1]};
  }

  // Number of (expanded) vertices with label l; the paper's label frequency.
  uint64_t LabelFrequency(Label l) const {
    return l < num_labels_ ? label_frequency_[l] : 0;
  }

  // --- Filters' support structures ---------------------------------------

  // Number of (expanded) neighbors of v with label l; the paper's d(v, l)
  // used by the NLF filter (Algorithm 6 lines 2-4).
  uint32_t NeighborLabelCount(VertexId v, Label l) const;

  // Number of distinct labels among v's neighbors; |L_N(v)|.
  uint32_t NeighborLabelKinds(VertexId v) const {
    return static_cast<uint32_t>(nlf_offsets_[v + 1] - nlf_offsets_[v]);
  }

  // Runs of (label, count) over v's neighbors, sorted by label.
  struct LabelCount {
    Label label;
    uint32_t count;
  };
  std::span<const LabelCount> NeighborLabelCounts(VertexId v) const {
    return {nlf_.data() + nlf_offsets_[v], nlf_.data() + nlf_offsets_[v + 1]};
  }

  // The paper's mnd(v) (Definition A.1): max effective degree over N(v).
  // Zero for isolated vertices.
  uint32_t MaxNeighborDegree(VertexId v) const { return mnd_[v]; }

  // --- Label-run / hub introspection (validators and tests) ---------------

  // One run of same-labeled neighbors; `begin` is the offset of the run's
  // first entry relative to the start of v's adjacency list.
  struct LabelRun {
    Label label;
    uint32_t begin;
  };
  std::span<const LabelRun> AdjacencyLabelRuns(VertexId v) const {
    return {runs_.data() + run_offsets_[v],
            runs_.data() + run_offsets_[v + 1]};
  }

  // True iff the hub-probe index was materialized at build time.
  bool HasHubIndex() const { return !hub_bits_.empty(); }

  // The effective degree threshold the builder settled on (after any budget
  // doubling); 0 if hub probes were disabled.
  uint32_t HubDegreeThreshold() const { return hub_degree_threshold_; }

  bool IsHub(VertexId v) const {
    return !hub_bits_.empty() && hub_index_[v] != kNoHub;
  }

  // Raw bitset row lookup for hub v (IsHub(v) must hold): true iff the row
  // marks w as a neighbor. Validators compare this against the adjacency.
  bool HubRowBit(VertexId v, VertexId w) const {
    return HubBit(hub_index_[v], w);
  }

  // Base of hub v's bitset row — NumVertices() bits in 64-bit words indexed
  // by neighbor id — or nullptr when v is not a hub (or the index is
  // absent). The kernel layer (kernels/kernels.h) resolves rows once per
  // enumeration descent so backward-edge probes skip the hub_index_ lookup.
  const uint64_t* HubRowWords(VertexId v) const {
    if (hub_bits_.empty()) return nullptr;
    const uint32_t row = hub_index_[v];
    if (row == kNoHub) return nullptr;
    return hub_bits_.data() + row * hub_words_per_row_;
  }

  // Approximate heap footprint in bytes; used by the index-size experiment.
  uint64_t MemoryBytes() const;

 private:
  friend class GraphBuilder;
  friend class dyn::GraphFolder;  // writes the same fields as GraphBuilder
  friend struct GraphTestAccess;  // check/test_access.h

  static constexpr uint32_t kNoHub = static_cast<uint32_t>(-1);

  bool HubBit(uint32_t row, VertexId w) const {
    return (hub_bits_[row * hub_words_per_row_ + (w >> 6)] >>
            (w & 63)) & 1u;
  }

  std::vector<uint64_t> offsets_;   // size n+1
  std::vector<VertexId> neighbors_; // size 2m, sorted by (label, id) per vertex
  std::vector<Label> labels_;       // size n
  uint64_t num_edges_ = 0;
  uint32_t num_labels_ = 0;

  std::vector<uint32_t> multiplicity_;      // empty => all ones
  uint64_t effective_num_vertices_ = 0;

  std::vector<uint32_t> effective_degree_;  // size n

  // Label index.
  std::vector<uint64_t> label_offsets_;   // size num_labels+1
  std::vector<VertexId> label_vertices_;  // size n
  std::vector<uint64_t> label_frequency_; // size num_labels (multiplicities)

  // Per-vertex label-run index over `neighbors_`.
  std::vector<uint64_t> run_offsets_;  // size n+1
  std::vector<LabelRun> runs_;

  // Hub-probe index: hub_index_[v] is the bitset row of hub v (kNoHub for
  // non-hubs); rows are hub_words_per_row_ words each, packed in hub_bits_.
  // All empty when no vertex met the threshold within the space budget.
  std::vector<uint32_t> hub_index_;
  std::vector<uint64_t> hub_bits_;
  uint64_t hub_words_per_row_ = 0;
  uint32_t hub_degree_threshold_ = 0;

  // NLF index: per-vertex (label, count) runs.
  std::vector<uint64_t> nlf_offsets_;  // size n+1
  std::vector<LabelCount> nlf_;

  std::vector<uint32_t> mnd_;  // size n
};

}  // namespace cfl

#endif  // CFL_GRAPH_GRAPH_H_
