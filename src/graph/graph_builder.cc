#include "graph/graph_builder.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "check/check.h"

namespace cfl {

GraphBuilder::GraphBuilder(uint32_t num_vertices)
    : num_vertices_(num_vertices), labels_(num_vertices, 0) {}

void GraphBuilder::SetLabel(VertexId v, Label l) {
  CFL_DCHECK_LT(v, num_vertices_) << " SetLabel on out-of-range vertex";
  labels_[v] = l;
}

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw std::out_of_range("GraphBuilder::AddEdge: vertex id out of range");
  }
  if (u == v) {
    if (!allow_self_loops_) {
      throw std::invalid_argument(
          "GraphBuilder::AddEdge: self-loop without AllowSelfLoops()");
    }
    edges_.emplace_back(u, u);
    return;
  }
  edges_.emplace_back(u, v);
  edges_.emplace_back(v, u);
}

void GraphBuilder::SetMultiplicities(std::vector<uint32_t> multiplicity) {
  if (multiplicity.size() != num_vertices_) {
    throw std::invalid_argument(
        "GraphBuilder::SetMultiplicities: size mismatch");
  }
  for (uint32_t m : multiplicity) {
    if (m == 0) {
      throw std::invalid_argument(
          "GraphBuilder::SetMultiplicities: multiplicity must be >= 1");
    }
  }
  multiplicity_ = std::move(multiplicity);
}

Graph GraphBuilder::Build() && {
  Graph g;
  const uint32_t n = num_vertices_;
  g.labels_ = std::move(labels_);
  g.multiplicity_ = std::move(multiplicity_);

  // Deduplicate and sort directed arcs by (source, target label, target id):
  // the counting sort below then lands each vertex's neighbors already in
  // the label-partitioned order `Graph` promises.
  std::sort(edges_.begin(), edges_.end(),
            [&](const std::pair<VertexId, VertexId>& a,
                const std::pair<VertexId, VertexId>& b) {
              if (a.first != b.first) return a.first < b.first;
              if (g.labels_[a.second] != g.labels_[b.second]) {
                return g.labels_[a.second] < g.labels_[b.second];
              }
              return a.second < b.second;
            });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  g.offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) g.offsets_[u + 1]++;
  for (uint32_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.neighbors_.resize(edges_.size());
  {
    std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (const auto& [u, v] : edges_) g.neighbors_[cursor[u]++] = v;
  }

  // Label-run index: one LabelRun per maximal same-label stretch of each
  // adjacency list, offsets relative to the list start.
  g.run_offsets_.assign(n + 1, 0);
  for (uint32_t v = 0; v < n; ++v) {
    std::span<const VertexId> adj = g.Neighbors(v);
    uint64_t count = 0;
    for (uint32_t i = 0; i < adj.size(); ++i) {
      if (i == 0 || g.labels_[adj[i]] != g.labels_[adj[i - 1]]) ++count;
    }
    g.run_offsets_[v + 1] = g.run_offsets_[v] + count;
  }
  g.runs_.reserve(g.run_offsets_[n]);
  for (uint32_t v = 0; v < n; ++v) {
    std::span<const VertexId> adj = g.Neighbors(v);
    for (uint32_t i = 0; i < adj.size(); ++i) {
      if (i == 0 || g.labels_[adj[i]] != g.labels_[adj[i - 1]]) {
        g.runs_.push_back({g.labels_[adj[i]], i});
      }
    }
  }

  // Undirected edge count: non-loop arcs appear twice, loops once.
  uint64_t loops = 0;
  for (const auto& [u, v] : edges_) {
    if (u == v) ++loops;
  }
  g.num_edges_ = (edges_.size() - loops) / 2 + loops;

  g.num_labels_ = 0;
  for (Label l : g.labels_) g.num_labels_ = std::max(g.num_labels_, l + 1);

  auto mult = [&g](VertexId v) {
    return g.multiplicity_.empty() ? 1u : g.multiplicity_[v];
  };

  g.effective_num_vertices_ = 0;
  for (uint32_t v = 0; v < n; ++v) g.effective_num_vertices_ += mult(v);

  // Effective degrees: a neighbor hypervertex w contributes mult(w) distinct
  // expanded neighbors; a self-loop contributes the other mult(v)-1 members.
  g.effective_degree_.assign(n, 0);
  for (uint32_t v = 0; v < n; ++v) {
    uint64_t d = 0;
    for (VertexId w : g.Neighbors(v)) d += (w == v) ? mult(v) - 1 : mult(w);
    g.effective_degree_[v] = static_cast<uint32_t>(d);
  }

  // Label index, grouped by label then id.
  g.label_offsets_.assign(g.num_labels_ + 1, 0);
  g.label_frequency_.assign(g.num_labels_, 0);
  for (uint32_t v = 0; v < n; ++v) {
    g.label_offsets_[g.labels_[v] + 1]++;
    g.label_frequency_[g.labels_[v]] += mult(v);
  }
  for (uint32_t l = 0; l < g.num_labels_; ++l) {
    g.label_offsets_[l + 1] += g.label_offsets_[l];
  }
  g.label_vertices_.resize(n);
  {
    std::vector<uint64_t> cursor(g.label_offsets_.begin(),
                                 g.label_offsets_.end() - 1);
    for (uint32_t v = 0; v < n; ++v) {
      g.label_vertices_[cursor[g.labels_[v]]++] = v;
    }
  }

  // NLF runs: per vertex, (label, effective count) sorted by label.
  g.nlf_offsets_.assign(n + 1, 0);
  std::vector<Graph::LabelCount> scratch;
  std::vector<std::vector<Graph::LabelCount>> runs(n);
  for (uint32_t v = 0; v < n; ++v) {
    scratch.clear();
    for (VertexId w : g.Neighbors(v)) {
      uint32_t c = (w == v) ? mult(v) - 1 : mult(w);
      if (c == 0) continue;  // singleton self-loop adds no expanded neighbor
      scratch.push_back({g.labels_[w], c});
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const Graph::LabelCount& a, const Graph::LabelCount& b) {
                return a.label < b.label;
              });
    std::vector<Graph::LabelCount>& out = runs[v];
    for (const Graph::LabelCount& lc : scratch) {
      if (!out.empty() && out.back().label == lc.label) {
        out.back().count += lc.count;
      } else {
        out.push_back(lc);
      }
    }
    g.nlf_offsets_[v + 1] = g.nlf_offsets_[v] + out.size();
  }
  g.nlf_.reserve(g.nlf_offsets_[n]);
  for (uint32_t v = 0; v < n; ++v) {
    g.nlf_.insert(g.nlf_.end(), runs[v].begin(), runs[v].end());
  }

  // Max neighbor degree over effective degrees.
  g.mnd_.assign(n, 0);
  for (uint32_t v = 0; v < n; ++v) {
    uint32_t best = 0;
    for (VertexId w : g.Neighbors(v)) {
      best = std::max(best, g.effective_degree_[w]);
    }
    g.mnd_[v] = best;
  }

  // Hub-probe rows: direct-indexed bitsets for high-degree vertices. Double
  // the threshold until the rows fit the space budget; a threshold that
  // exceeds every degree simply yields no rows.
  if (hub_degree_threshold_ > 0 && n > 0) {
    const uint64_t words_per_row = (static_cast<uint64_t>(n) + 63) / 64;
    uint64_t threshold = hub_degree_threshold_;
    uint64_t num_hubs = 0;
    for (;;) {
      num_hubs = 0;
      for (uint32_t v = 0; v < n; ++v) {
        if (g.StructuralDegree(v) >= threshold) ++num_hubs;
      }
      if (num_hubs * words_per_row * sizeof(uint64_t) <= kHubSpaceBudgetBytes) {
        break;
      }
      threshold *= 2;
    }
    g.hub_degree_threshold_ = static_cast<uint32_t>(
        std::min<uint64_t>(threshold, static_cast<uint32_t>(-1)));
    if (num_hubs > 0) {
      g.hub_words_per_row_ = words_per_row;
      g.hub_index_.assign(n, Graph::kNoHub);
      g.hub_bits_.assign(num_hubs * words_per_row, 0);
      uint32_t row = 0;
      for (uint32_t v = 0; v < n; ++v) {
        if (g.StructuralDegree(v) < threshold) continue;
        g.hub_index_[v] = row;
        uint64_t* bits = g.hub_bits_.data() + row * words_per_row;
        for (VertexId w : g.Neighbors(v)) bits[w >> 6] |= 1ull << (w & 63);
        ++row;
      }
    }
  }

  return g;
}

Graph MakeGraph(const std::vector<Label>& labels,
                const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder b(static_cast<uint32_t>(labels.size()));
  for (uint32_t v = 0; v < labels.size(); ++v) b.SetLabel(v, labels[v]);
  for (const auto& [u, v] : edges) b.AddEdge(u, v);
  return std::move(b).Build();
}

Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices,
                      std::vector<VertexId>* to_original) {
  std::unordered_map<VertexId, uint32_t> local;
  local.reserve(vertices.size() * 2);
  for (uint32_t i = 0; i < vertices.size(); ++i) local.emplace(vertices[i], i);

  GraphBuilder b(static_cast<uint32_t>(vertices.size()));
  if (g.HasMultiplicities()) b.AllowSelfLoops();
  std::vector<uint32_t> mult;
  for (uint32_t i = 0; i < vertices.size(); ++i) {
    b.SetLabel(i, g.label(vertices[i]));
    if (g.HasMultiplicities()) mult.push_back(g.multiplicity(vertices[i]));
    for (VertexId w : g.Neighbors(vertices[i])) {
      auto it = local.find(w);
      if (it == local.end()) continue;
      if (it->second >= i) b.AddEdge(i, it->second);  // each edge once
    }
  }
  if (g.HasMultiplicities()) b.SetMultiplicities(std::move(mult));
  if (to_original != nullptr) *to_original = vertices;
  return std::move(b).Build();
}

}  // namespace cfl
