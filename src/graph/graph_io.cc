#include "graph/graph_io.h"

#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/graph_builder.h"

namespace cfl {

namespace {

[[noreturn]] void Fail(uint64_t line_no, const std::string& why) {
  std::ostringstream os;
  os << "graph parse error at line " << line_no << ": " << why;
  throw std::runtime_error(os.str());
}

}  // namespace

Graph ReadGraph(std::istream& in) {
  std::optional<GraphBuilder> builder;
  std::vector<uint32_t> multiplicity;
  bool any_multiplicity = false;

  std::string line;
  uint64_t line_no = 0;
  uint64_t declared_edges = 0;
  uint64_t seen_edges = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 't') {
      uint64_t n = 0, m = 0;
      if (!(ls >> n >> m)) Fail(line_no, "bad 't' header");
      builder.emplace(static_cast<uint32_t>(n));
      builder->AllowSelfLoops();
      multiplicity.assign(n, 1);
      declared_edges = m;
    } else if (tag == 'v') {
      if (!builder) Fail(line_no, "'v' before 't' header");
      uint64_t id = 0, label = 0;
      if (!(ls >> id >> label)) Fail(line_no, "bad 'v' line");
      if (id >= builder->num_vertices()) Fail(line_no, "vertex id out of range");
      builder->SetLabel(static_cast<VertexId>(id), static_cast<Label>(label));
      uint64_t mult = 0;
      if (ls >> mult) {
        if (mult == 0) Fail(line_no, "multiplicity must be >= 1");
        multiplicity[id] = static_cast<uint32_t>(mult);
        if (mult != 1) any_multiplicity = true;
      }
    } else if (tag == 'e') {
      if (!builder) Fail(line_no, "'e' before 't' header");
      uint64_t u = 0, v = 0;
      if (!(ls >> u >> v)) Fail(line_no, "bad 'e' line");
      if (u >= builder->num_vertices() || v >= builder->num_vertices()) {
        Fail(line_no, "edge endpoint out of range");
      }
      builder->AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      ++seen_edges;
    } else {
      Fail(line_no, std::string("unknown record tag '") + tag + "'");
    }
  }
  if (!builder) throw std::runtime_error("graph parse error: empty input");
  if (declared_edges != seen_edges) {
    std::ostringstream os;
    os << "graph parse error: header declares " << declared_edges
       << " edges but " << seen_edges << " were listed";
    throw std::runtime_error(os.str());
  }
  if (any_multiplicity) builder->SetMultiplicities(std::move(multiplicity));
  return std::move(*builder).Build();
}

Graph LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return ReadGraph(in);
}

void WriteGraph(const Graph& g, std::ostream& out) {
  out << "t " << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << "v " << v << " " << g.label(v);
    if (g.HasMultiplicities()) out << " " << g.multiplicity(v);
    out << "\n";
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (w >= v) out << "e " << v << " " << w << "\n";  // each edge once
    }
  }
}

void SaveGraph(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open graph file: " + path);
  WriteGraph(g, out);
  if (!out) throw std::runtime_error("error writing graph file: " + path);
}

}  // namespace cfl
