// Summary statistics over graphs.
//
// Used by (a) the QuickSI baseline, whose QI-sequence orders query edges by
// how infrequent their label pair is in the data graph, (b) the dataset
// stand-in builders which must verify they hit the paper's published
// statistics, and (c) the benches' workload descriptions.

#ifndef CFL_GRAPH_GRAPH_STATS_H_
#define CFL_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "graph/graph.h"

namespace cfl {

struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t num_labels = 0;       // label-space size (max label + 1)
  uint32_t distinct_labels = 0;  // labels actually used
  double average_degree = 0.0;
  uint32_t max_degree = 0;
};

GraphStats ComputeStats(const Graph& g);

// Human-readable one-liner: "|V|=9460 |E|=37081 |Sigma|=307 d=7.84 dmax=270".
std::string Describe(const GraphStats& s);

// Frequencies of unordered label pairs over the edges of `g`, keyed by
// min(l1,l2) * num_labels + max(l1,l2). This is QuickSI's edge-frequency
// table: the weight of a query edge (u, u') is the number of data edges
// whose endpoint labels are {l(u), l(u')}.
class LabelPairFrequency {
 public:
  explicit LabelPairFrequency(const Graph& g);

  uint64_t Frequency(Label a, Label b) const;

 private:
  uint64_t num_labels_;
  std::unordered_map<uint64_t, uint64_t> counts_;
};

}  // namespace cfl

#endif  // CFL_GRAPH_GRAPH_STATS_H_
