#include "graph/graph_stats.h"

#include <algorithm>
#include <sstream>

namespace cfl {

GraphStats ComputeStats(const Graph& g) {
  GraphStats s;
  s.num_vertices = g.NumVertices();
  s.num_edges = g.NumEdges();
  s.num_labels = g.NumLabels();
  for (Label l = 0; l < g.NumLabels(); ++l) {
    if (!g.VerticesWithLabel(l).empty()) ++s.distinct_labels;
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    s.max_degree = std::max(s.max_degree, g.StructuralDegree(v));
  }
  if (s.num_vertices > 0) {
    s.average_degree =
        2.0 * static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);
  }
  return s;
}

std::string Describe(const GraphStats& s) {
  std::ostringstream os;
  os << "|V|=" << s.num_vertices << " |E|=" << s.num_edges
     << " |Sigma|=" << s.distinct_labels << " d=" << s.average_degree
     << " dmax=" << s.max_degree;
  return os.str();
}

LabelPairFrequency::LabelPairFrequency(const Graph& g)
    : num_labels_(g.NumLabels()) {
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (w < v) continue;  // count each undirected edge once
      Label a = std::min(g.label(v), g.label(w));
      Label b = std::max(g.label(v), g.label(w));
      counts_[a * num_labels_ + b]++;
    }
  }
}

uint64_t LabelPairFrequency::Frequency(Label a, Label b) const {
  if (a > b) std::swap(a, b);
  auto it = counts_.find(a * num_labels_ + b);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace cfl
