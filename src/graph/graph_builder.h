// Mutable builder producing immutable `Graph` instances.
//
// Usage:
//   GraphBuilder b(/*num_vertices=*/5);
//   b.SetLabel(0, 2); ...
//   b.AddEdge(0, 1); ...
//   Graph g = std::move(b).Build();
//
// The builder deduplicates edges, (label, id)-sorts adjacency lists, and
// constructs the label-run / label / NLF / max-neighbor-degree / hub-probe
// indexes that `Graph` exposes. Self-loops
// are rejected unless `AllowSelfLoops` was called (they are only meaningful
// for compressed graphs whose clique classes loop to themselves).

#ifndef CFL_GRAPH_GRAPH_BUILDER_H_
#define CFL_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace cfl {

class GraphBuilder {
 public:
  explicit GraphBuilder(uint32_t num_vertices);

  // All vertices default to label 0.
  void SetLabel(VertexId v, Label l);

  // Adds the undirected edge (u, v). Duplicate additions are coalesced at
  // Build time. u == v requires AllowSelfLoops().
  void AddEdge(VertexId u, VertexId v);

  // Permits self-loops (used by the data-graph compressor).
  void AllowSelfLoops() { allow_self_loops_ = true; }

  // Assigns vertex multiplicities (compressed graphs). Must have size
  // num_vertices; every entry must be >= 1.
  void SetMultiplicities(std::vector<uint32_t> multiplicity);

  // Structural-degree threshold above which a vertex gets a direct-indexed
  // bitset row for O(1) `HasEdge` probes. 0 disables hub rows entirely. The
  // effective threshold may end up higher: Build doubles it until the rows
  // fit `kHubSpaceBudgetBytes`. Query graphs are tiny, so this only matters
  // for data graphs.
  void SetHubDegreeThreshold(uint32_t threshold) {
    hub_degree_threshold_ = threshold;
  }

  static constexpr uint32_t kDefaultHubDegreeThreshold = 64;
  static constexpr uint64_t kHubSpaceBudgetBytes = 64ull << 20;

  uint32_t num_vertices() const { return num_vertices_; }

  // Finalizes the graph. The builder is left in a moved-from state.
  Graph Build() &&;

 private:
  uint32_t num_vertices_;
  std::vector<Label> labels_;
  std::vector<std::pair<VertexId, VertexId>> edges_;  // both directions
  std::vector<uint32_t> multiplicity_;
  bool allow_self_loops_ = false;
  uint32_t hub_degree_threshold_ = kDefaultHubDegreeThreshold;
};

// Convenience: builds a graph from labels and an undirected edge list.
Graph MakeGraph(const std::vector<Label>& labels,
                const std::vector<std::pair<VertexId, VertexId>>& edges);

// Vertex-induced subgraph on `vertices` (which must be distinct). Local
// vertex i of the result corresponds to vertices[i]; labels and
// multiplicities carry over. If `to_original` is non-null it receives the
// local-to-original id mapping (a copy of `vertices`).
Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices,
                      std::vector<VertexId>* to_original = nullptr);

}  // namespace cfl

#endif  // CFL_GRAPH_GRAPH_BUILDER_H_
