// Text (de)serialization of graphs.
//
// The format follows the common subgraph-matching benchmark convention:
//
//   t <num_vertices> <num_edges>
//   v <id> <label> [multiplicity]
//   e <u> <v>
//
// Vertices must be declared before edges that use them; ids are dense in
// [0, n). Lines starting with '#' and blank lines are ignored.

#ifndef CFL_GRAPH_GRAPH_IO_H_
#define CFL_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace cfl {

// Parses a graph from `in`. Throws std::runtime_error on malformed input.
Graph ReadGraph(std::istream& in);

// Loads a graph from the file at `path`. Throws on I/O or parse errors.
Graph LoadGraph(const std::string& path);

// Writes `g` in the format above.
void WriteGraph(const Graph& g, std::ostream& out);

// Saves `g` to the file at `path`. Throws on I/O errors.
void SaveGraph(const Graph& g, const std::string& path);

}  // namespace cfl

#endif  // CFL_GRAPH_GRAPH_IO_H_
