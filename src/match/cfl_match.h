// CFL-Match: the paper's algorithm (Algorithm 1) and its ablation variants.
//
// Pipeline per query:
//   1. CFL-Decompose: 2-core peeling -> (V_C, V_T, V_I); root selection from
//      the core-set (A.6); BFS tree construction.
//   2. CPI-Construct: top-down construction + bottom-up refinement
//      (Algorithms 3-4), or the Naive / TD-only strategies for the
//      CFL-Match-Naive / CFL-Match-TD variants.
//   3. Matching order: greedy path ordering from the CPI cost model
//      (Algorithm 2), macro order (V_C, V_T, V_I).
//   4. Core-match + forest-match by CPI-based backtracking (Algorithm 5);
//      leaf-match by label-class/NEC counting (Section 4.4).
//
// `CflMatcher` is constructed once per data graph (it hosts the
// LabelDegreeIndex and the CPI builder's scratch) and then serves any number
// of queries. It accepts compressed data graphs (vertex multiplicities, the
// [14] boost): counting mode is exact on them; enumeration mode emits
// compressed embeddings (each distinct expansion is counted, not emitted).

#ifndef CFL_MATCH_CFL_MATCH_H_
#define CFL_MATCH_CFL_MATCH_H_

#include <memory>

#include "check/thread_annotations.h"
#include "cpi/candidate_filter.h"
#include "cpi/cpi_builder.h"
#include "decomp/cfl_decomposition.h"
#include "graph/graph.h"
#include "match/embedding.h"
#include "order/matching_order.h"

namespace cfl {

struct MatchOptions {
  MatchLimits limits;

  // Ablations (paper Section 6): kCfl = CFL-Match, kCoreForest = CF-Match,
  // kNone = Match.
  DecompositionMode decomposition = DecompositionMode::kCfl;

  // kRefined = CFL-Match, kTopDown = CFL-Match-TD, kNaive = CFL-Match-Naive.
  CpiStrategy cpi_strategy = CpiStrategy::kRefined;

  // Ordering ablation: Algorithm 2 (default) vs plain BFS path order.
  PathOrderingStrategy ordering = PathOrderingStrategy::kGreedyCost;

  // Optional: invoked per embedding. Forces full enumeration of leaf
  // assignments (instead of the on-the-fly Cartesian-product counting), so
  // it is slower when leaves dominate; leave unset for counting workloads.
  EmbeddingCallback on_embedding;
};

// Everything `Match` computes before enumeration starts: decomposition,
// BFS tree, CPI, and matching order (steps 1-3 of the pipeline above).
// Once built, a PreparedQuery is immutable and reads only const state of
// the data graph, so one instance can be shared by reference across any
// number of concurrent enumeration workers (see parallel/parallel_match.h).
// The marker makes tools/cfl_lint reject mutations sneaking in as methods,
// mutable members, or const_cast (rule `immutable-class`); workers must
// treat the public fields as read-only after Prepare returns.
struct PreparedQuery {
  CFL_IMMUTABLE_AFTER_BUILD(PreparedQuery);

  CflDecomposition decomposition;
  BfsTree tree;
  Cpi cpi;
  MatchingOrder order;  // empty when `no_results` is set

  // Some candidate set is empty: the query has no embeddings and the
  // ordering/enumeration stages were skipped.
  bool no_results = false;

  double build_seconds = 0.0;  // CPI construction time
  double order_seconds = 0.0;  // matching-order computation time

  // Prepare-side half of the execution stats (obs/stats.h): decomposition /
  // CPI / ordering phase timers and per-vertex candidate accounting. Match
  // copies this into MatchResult::stats and adds the enumeration half.
  MatchStats stats;
};

class CflMatcher {
 public:
  explicit CflMatcher(const Graph& data);

  CflMatcher(const CflMatcher&) = delete;
  CflMatcher& operator=(const CflMatcher&) = delete;

  const Graph& data() const { return data_; }

  // Extracts (counts, or enumerates via options.on_embedding) all subgraph
  // isomorphic embeddings of `q` in the data graph, subject to limits.
  MatchResult Match(const Graph& q, const MatchOptions& options = {});

  // Runs the pre-enumeration pipeline only (decomposition, root selection,
  // CPI construction, matching order). `Match` is exactly Prepare followed
  // by enumeration; the parallel matcher calls Prepare once and enumerates
  // the shared result from several workers. Not thread-safe: the CPI
  // builder's scratch is reused across calls.
  PreparedQuery Prepare(const Graph& q, const MatchOptions& options = {});

  // Cheap cardinality estimate: the number of embeddings of q's BFS *tree*
  // in the refined CPI (the same quantity Algorithm 2's cost model ranks
  // paths by), computed without any enumeration. Ignores non-tree edges and
  // injectivity, so it upper-approximates sparse queries and is exact for
  // tree queries whose labels are pairwise distinct. Useful as a join-size
  // estimate before committing to a full Match.
  double EstimateEmbeddings(const Graph& q);

 private:
  const Graph& data_;
  LabelDegreeIndex label_degree_index_;
  CpiBuilder cpi_builder_;
};

}  // namespace cfl

#endif  // CFL_MATCH_CFL_MATCH_H_
