#include "match/embedding.h"

#include <unordered_map>

namespace cfl {

uint64_t ExpansionFactor(const Graph& data, const Embedding& mapping) {
  if (!data.HasMultiplicities()) return 1;
  uint64_t factor = 1;
  std::unordered_map<VertexId, uint32_t> seen;
  for (VertexId v : mapping) {
    if (v == kInvalidVertex) continue;
    uint32_t j = ++seen[v];
    factor = SaturatingMul(factor, data.multiplicity(v) - j + 1);
  }
  return factor;
}

}  // namespace cfl
