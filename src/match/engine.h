// Uniform engine interface over every matcher in the repository, used by
// the benches, the cross-engine property tests, and the comparison example.
//
// An engine is bound to one data graph at construction (so per-data-graph
// indexes are built once) and then answers queries. All engines count
// embeddings with the same limit semantics: stop once `max_embeddings` have
// been found, report timed_out if the deadline expires first.

#ifndef CFL_MATCH_ENGINE_H_
#define CFL_MATCH_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>

#include "cpi/cpi_builder.h"
#include "graph/graph.h"
#include "match/embedding.h"
#include "order/matching_order.h"

namespace cfl {

class SubgraphEngine {
 public:
  virtual ~SubgraphEngine() = default;

  virtual std::string_view name() const = 0;

  virtual MatchResult Run(const Graph& query, const MatchLimits& limits) = 0;
};

// The CFL family (paper Section 6 variants):
//   MakeCflMatch       — CFL-Match (full framework, refined CPI)
//   MakeCfMatch        — CF-Match (no leaf stage)
//   MakeMatchNoDecomp  — Match (no decomposition)
//   MakeCflMatchTd     — CFL-Match-TD (top-down CPI only)
//   MakeCflMatchNaive  — CFL-Match-Naive (label-only CPI)
std::unique_ptr<SubgraphEngine> MakeCflEngine(
    const Graph& data, std::string name, DecompositionMode mode,
    CpiStrategy strategy,
    PathOrderingStrategy ordering = PathOrderingStrategy::kGreedyCost);

std::unique_ptr<SubgraphEngine> MakeCflMatch(const Graph& data);
std::unique_ptr<SubgraphEngine> MakeCfMatch(const Graph& data);
std::unique_ptr<SubgraphEngine> MakeMatchNoDecomp(const Graph& data);
std::unique_ptr<SubgraphEngine> MakeCflMatchTd(const Graph& data);
std::unique_ptr<SubgraphEngine> MakeCflMatchNaive(const Graph& data);

// Ordering ablation: CFL-Match with paths in plain BFS order instead of the
// cost-model-driven Algorithm 2 ("CFL-Match-BFSOrder").
std::unique_ptr<SubgraphEngine> MakeCflMatchBfsOrder(const Graph& data);

}  // namespace cfl

#endif  // CFL_MATCH_ENGINE_H_
