#include "match/leaf_match.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace cfl {

namespace {

// C(n, k), saturating.
uint64_t Binomial(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    // result * (n - k + i) / i is always integral at this point.
    uint64_t numerator = n - k + i;
    if (result > kNoLimit / numerator) return kNoLimit;
    result = result * numerator / i;
  }
  return result;
}

// Falling factorial (n)_k = n (n-1) ... (n-k+1), saturating.
uint64_t FallingFactorial(uint64_t n, uint64_t k) {
  uint64_t result = 1;
  for (uint64_t i = 0; i < k; ++i) {
    result = SaturatingMul(result, n - i);
  }
  return result;
}

}  // namespace

LeafMatcher::LeafMatcher(const Graph& q, const Cpi& cpi,
                         std::vector<VertexId> leaves)
    : cpi_(&cpi), leaves_(std::move(leaves)) {
  // Label classes (Lemma 4.3) containing NEC groups: leaves with the same
  // label and the same parent have identical candidate sets.
  std::map<Label, std::map<VertexId, std::vector<VertexId>>> by_label_parent;
  for (VertexId u : leaves_) {
    by_label_parent[q.label(u)][cpi.tree().parent[u]].push_back(u);
  }
  for (auto& [label, by_parent] : by_label_parent) {
    LabelClass cls;
    cls.label = label;
    for (auto& [parent, members] : by_parent) {
      NecGroup group;
      group.parent = parent;
      group.members = std::move(members);
      cls.groups.push_back(std::move(group));
    }
    classes_.push_back(std::move(cls));
  }
  for (const LabelClass& cls : classes_) {
    for (const NecGroup& g : cls.groups) {
      flat_leaves_.insert(flat_leaves_.end(), g.members.begin(),
                          g.members.end());
    }
  }
}

void LeafMatcher::AvailableCandidates(
    const Graph& data, const EnumeratorState& state, const NecGroup& group,
    std::vector<std::pair<VertexId, uint32_t>>* out) const {
  out->clear();
  VertexId representative = group.members.front();
  std::span<const uint32_t> adjacent = cpi_->AdjacentPositions(
      representative, state.position[group.parent]);
  for (uint32_t pos : adjacent) {
    VertexId v = cpi_->CandidateAt(representative, pos);
    uint32_t cap = data.multiplicity(v);
    if (state.used[v] < cap) out->emplace_back(v, cap - state.used[v]);
  }
}

namespace {

// Ordered injective assignments of k interchangeable-candidate leaves into
// the expanded slots of `cands`: the falling factorial of total capacity.
uint64_t GroupFallingFactorial(
    const std::vector<std::pair<VertexId, uint32_t>>& cands, uint64_t k) {
  uint64_t capacity = 0;
  for (const auto& [v, r] : cands) capacity += r;
  if (capacity < k) return 0;
  return FallingFactorial(capacity, k);
}

}  // namespace

uint64_t LeafMatcher::CountClass(const Graph& data,
                                 const EnumeratorState& state,
                                 const LabelClass& cls) const {
  // Available candidates per group, under the core/forest embedding
  // (scratch reused across calls; see header).
  if (avail_.size() < cls.groups.size()) avail_.resize(cls.groups.size());
  std::vector<std::vector<std::pair<VertexId, uint32_t>>>& avail = avail_;
  for (size_t i = 0; i < cls.groups.size(); ++i) {
    AvailableCandidates(data, state, cls.groups[i], &avail[i]);
  }

  // Fast path 1 — single NEC group: every member has the same candidates,
  // so the count is the falling factorial of the total free capacity.
  if (cls.groups.size() == 1) {
    return GroupFallingFactorial(avail[0], cls.groups[0].members.size());
  }

  // Fast path 2 — groups with pairwise-disjoint candidates factorize.
  // Candidate lists are sorted by vertex id (CPI order), so overlap checks
  // are linear merges.
  bool disjoint = true;
  for (size_t a = 0; a < cls.groups.size() && disjoint; ++a) {
    for (size_t b = a + 1; b < cls.groups.size() && disjoint; ++b) {
      size_t i = 0, j = 0;
      while (i < avail[a].size() && j < avail[b].size()) {
        if (avail[a][i].first < avail[b][j].first) {
          ++i;
        } else if (avail[a][i].first > avail[b][j].first) {
          ++j;
        } else {
          disjoint = false;
          break;
        }
      }
    }
  }
  if (disjoint) {
    uint64_t total = 1;
    for (size_t i = 0; i < cls.groups.size(); ++i) {
      total = SaturatingMul(
          total, GroupFallingFactorial(avail[i], cls.groups[i].members.size()));
      if (total == 0) return 0;
    }
    return total;
  }

  // General case: groups of one label share candidates; enumerate capacity
  // distributions exactly.
  std::vector<size_t> group_order(cls.groups.size());
  for (size_t i = 0; i < cls.groups.size(); ++i) group_order[i] = i;
  // Paper Section 4.4: process groups in increasing candidate-count order so
  // dead ends surface early.
  std::sort(group_order.begin(), group_order.end(), [&](size_t a, size_t b) {
    return avail[a].size() < avail[b].size();
  });

  // Same-label groups can share candidates; `extra` tracks consumption by
  // earlier groups of this class.
  std::unordered_map<VertexId, uint32_t> extra;

  // Over groups: assign each group's k distinguishable leaves injectively
  // into the expanded slots of its available candidates. Per candidate v
  // with r remaining slots taking c leaves: C(left, c) ways to pick which
  // leaves, (r)_c ways to pick distinct slots.
  std::function<uint64_t(size_t)> per_group = [&](size_t gi) -> uint64_t {
    if (gi == cls.groups.size()) return 1;
    const size_t g = group_order[gi];
    const uint64_t k = cls.groups[g].members.size();
    const std::vector<std::pair<VertexId, uint32_t>>& cands = avail[g];

    std::function<uint64_t(size_t, uint64_t)> distribute =
        [&](size_t j, uint64_t left) -> uint64_t {
      if (left == 0) return per_group(gi + 1);
      if (j == cands.size()) return 0;
      const auto& [v, base_remaining] = cands[j];
      uint32_t taken = 0;
      if (auto it = extra.find(v); it != extra.end()) taken = it->second;
      if (taken >= base_remaining) return distribute(j + 1, left);
      const uint64_t remaining = base_remaining - taken;

      uint64_t total = distribute(j + 1, left);  // c = 0
      uint64_t max_c = std::min<uint64_t>(left, remaining);
      for (uint64_t c = 1; c <= max_c; ++c) {
        uint64_t ways = SaturatingMul(Binomial(left, c),
                                      FallingFactorial(remaining, c));
        extra[v] = taken + static_cast<uint32_t>(c);
        total = SaturatingAdd(total,
                              SaturatingMul(ways, distribute(j + 1, left - c)));
      }
      if (taken == 0) {
        extra.erase(v);
      } else {
        extra[v] = taken;
      }
      return total;
    };

    return distribute(0, k);
  };

  return per_group(0);
}

uint64_t LeafMatcher::CountEmbeddings(const Graph& data,
                                      const EnumeratorState& state) const {
  uint64_t total = 1;
  for (const LabelClass& cls : classes_) {
    uint64_t class_count = CountClass(data, state, cls);
    if (class_count == 0) return 0;
    total = SaturatingMul(total, class_count);
  }
  return total;
}

}  // namespace cfl
