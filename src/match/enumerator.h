// CPI-based backtracking enumeration (paper Algorithm 5, Core-Match, in the
// non-recursive form the authors also use).
//
// Walks the matching order's steps, drawing the candidates of each query
// vertex u from the CPI adjacency list N_u^{u.p}(M(u.p)) of its BFS-tree
// parent's current mapping; the data graph is probed only to validate
// backward non-tree edges (Theorem 4.1). Forest steps simply have no
// backward edges, so the same loop serves core-match and forest-match.
//
// Injectivity is capacity-based: `used[v] < data.multiplicity(v)` — on plain
// graphs this is the ordinary visited check, on compressed data graphs
// (the [14] boost) it lets several query vertices share a hypervertex.

#ifndef CFL_MATCH_ENUMERATOR_H_
#define CFL_MATCH_ENUMERATOR_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "check/check.h"
#include "check/narrow.h"
#include "cpi/cpi.h"
#include "graph/graph.h"
#include "kernels/kernels.h"
#include "match/embedding.h"
#include "order/matching_order.h"

namespace cfl {

// Candidate/adjacency cursors are uint32_t; a size that does not fit would
// silently truncate and skip candidates, so fail loudly instead (a >4B-entry
// candidate set is far beyond anything the CPI can hold today, but the
// enumerator must not be the place that quietly caps it).
inline uint32_t CheckedCandidateCount(size_t size) {
  return CheckedU32(size);
}

enum class EnumerateStatus {
  kDone,      // search space exhausted
  kStopped,   // visitor returned false (limit reached)
  kTimedOut,  // deadline expired
};

// State shared with the visitor. `mapping[u]` / `position[u]` are the data
// vertex / candidate position assigned to query vertex u (valid for all
// step vertices when the visitor runs); `used[v]` counts how many query
// vertices currently occupy data vertex v.
struct EnumeratorState {
  Embedding mapping;
  std::vector<uint32_t> position;
  std::vector<uint32_t> used;

  // Search-effort counters (candidates examined / successfully bound).
  uint64_t candidates_tried = 0;
  uint64_t candidates_bound = 0;

  // Detailed stats shard (obs/stats.h). Worker-private like the rest of the
  // state: the parallel matcher merges shards only after the join barrier.
  EnumStats stats;

  EnumeratorState(uint32_t query_vertices, uint32_t data_vertices)
      : mapping(query_vertices, kInvalidVertex),
        position(query_vertices, 0),
        used(data_vertices, 0) {}
};

// Enumerates all embeddings of the step-covered query vertices; calls
// `visit()` once per embedding (state holds the mapping); visit returns
// false to stop. Steps must be non-empty and connected (each step's parent
// already matched).
//
// `root_begin` / `root_end` restrict the first step to the half-open range
// of root candidate positions [root_begin, min(root_end, |C(root)|)). The
// search spaces of disjoint root ranges are disjoint and their union (over a
// partition of the full range) is exactly the full search space — this is
// the partitioning axis of the parallel matcher (see parallel/
// parallel_match.h). The defaults cover the whole candidate set.
template <typename Visitor>
EnumerateStatus EnumeratePartial(
    const Graph& data, const Cpi& cpi, std::span<const MatchStep> steps,
    EnumeratorState& state, Deadline& deadline, Visitor&& visit,
    uint32_t root_begin = 0,
    uint32_t root_end = std::numeric_limits<uint32_t>::max()) {
  const size_t depth_count = steps.size();
  // Per-depth cursor into the candidate source.
  std::vector<uint32_t> cursor(depth_count, 0);

  // Backward-edge plans (kernels/kernels.h): the shallower bindings are
  // fixed for a depth's whole candidate sweep, so the mapped endpoints and
  // their hub bitmap rows are resolved once per descent; per candidate the
  // verification is then a batched bit-test pass with no hub-index or
  // mapping loads. Rebuilt exactly where hub_prefix is.
  std::vector<kernels::BackwardPlan> plans(depth_count);
  auto rebuild_plan = [&](size_t d) {
    kernels::BackwardPlan& plan = plans[d];
    plan.Reset();
    for (VertexId w : steps[d].backward) plan.Add(data, state.mapping[w]);
  };
  rebuild_plan(0);
  const bool prefetch =
      kernels::PrefetchEnabled() && cpi.PrefetchWorthwhile();

  // Stats builds classify each backward probe as hub-answered or not
  // (HasEdge is O(1) when either endpoint is a hub). Doing that inside the
  // probe loop costs two hub-index reads per probe — measurable against an
  // O(1) bit-test HasEdge — so instead `hub_prefix[d][i]` holds how many of
  // the first i backward endpoints of steps[d] are currently mapped to
  // hubs. The shallower bindings are fixed for a depth's whole candidate
  // sweep, so the prefix is rebuilt only on descent (where the sweep
  // restarts) and the per-candidate count reduces to a table lookup plus at
  // most one IsHub(v).
  CFL_STATS_ONLY(
      std::vector<std::vector<uint32_t>> hub_prefix(depth_count);
      auto rebuild_hub_prefix = [&](size_t d) {
        const std::vector<VertexId>& backward = steps[d].backward;
        std::vector<uint32_t>& pre = hub_prefix[d];
        pre.resize(backward.size() + 1);
        pre[0] = 0;
        for (size_t i = 0; i < backward.size(); ++i) {
          pre[i + 1] =
              pre[i] + (data.IsHub(state.mapping[backward[i]]) ? 1 : 0);
        }
      };
      rebuild_hub_prefix(0);)

  auto unbind = [&](size_t d) {
    VertexId u = steps[d].u;
    --state.used[state.mapping[u]];
    state.mapping[u] = kInvalidVertex;
  };

  size_t depth = 0;
  cursor[0] = root_begin;
  while (true) {
    if (deadline.ExpiredCoarse()) {
      CFL_STATS_ONLY(state.stats.max_depth =
                         std::max<uint64_t>(state.stats.max_depth, depth);)
      // Unwind bindings so `state.used` is clean for the caller.
      for (size_t d = 0; d < depth; ++d) unbind(d);
      return EnumerateStatus::kTimedOut;
    }

    const MatchStep& step = steps[depth];
    // Candidate source: root iterates its whole candidate set; everyone
    // else follows the CPI adjacency list under the parent's mapping.
    std::span<const uint32_t> adjacent;
    uint32_t root_count = 0;
    const bool is_root = (depth == 0 && step.parent == kInvalidVertex);
    if (is_root) {
      root_count = std::min(
          CheckedCandidateCount(cpi.Candidates(step.u).size()), root_end);
    } else {
      adjacent = cpi.AdjacentPositions(step.u, state.position[step.parent]);
    }
    const uint32_t limit =
        is_root ? root_count : CheckedCandidateCount(adjacent.size());

    bool bound = false;
    while (cursor[depth] < limit) {
      uint32_t pos = is_root ? cursor[depth] : adjacent[cursor[depth]];
      ++cursor[depth];
      ++state.candidates_tried;
      // Touch the next candidate-arena entry while this one is verified;
      // the lookahead hides the dependent load the next iteration starts
      // with. Bounded to one position — deeper lookahead would prefetch
      // past rejects.
      if (prefetch && cursor[depth] < limit) {
        cpi.PrefetchCandidate(
            step.u, is_root ? cursor[depth] : adjacent[cursor[depth]]);
      }
      VertexId v = cpi.CandidateAt(step.u, pos);
      if (state.used[v] >= data.multiplicity(v)) {
        CFL_STATS_ONLY(++state.stats.conflict_rejects;)
        continue;
      }
      // Backward non-tree edges (Theorem 4.1), batched against the plan.
      // The first-fail index reproduces the scalar loop's probe count
      // exactly: fail index + 1 probes on a reject, all of them on a pass.
      const uint32_t nback = CheckedU32(plans[depth].edges.size());
      const uint32_t fail = kernels::VerifyBackwardEdges(data, plans[depth], v);
      const bool ok = fail == nback;
      CFL_STATS_ONLY(const uint32_t probed = ok ? nback : fail + 1;)
      // Probe accounting once per candidate: the prefix table counts the
      // probed endpoints mapped to hubs; a hub v makes the rest of the
      // probes hub-answered too. IsHub(v) is consulted only when the prefix
      // alone doesn't already prove every probe hub-answered.
      CFL_STATS_ONLY(if (probed != 0) {
        state.stats.backward_probes += probed;
        uint32_t hubbed = hub_prefix[depth][probed];
        if (hubbed != probed && data.IsHub(v)) hubbed = probed;
        state.stats.hub_probes += hubbed;
      })
      if (!ok) {
        CFL_STATS_ONLY(++state.stats.backward_rejects;)
        continue;
      }
      state.mapping[step.u] = v;
      state.position[step.u] = pos;
      ++state.used[v];
      ++state.candidates_bound;
      bound = true;
      break;
    }

    if (!bound) {
      if (depth == 0) return EnumerateStatus::kDone;
      // The deepest bound prefix is maintained here (and at the visit /
      // timeout sites) instead of on every successful bind: every descent
      // that reached depth d stops by discarding at d, visiting, or timing
      // out, so recording at the stops sees the same maximum for a fraction
      // of the bind path's cost.
      CFL_STATS_ONLY(++state.stats.partials_discarded;
                     state.stats.max_depth =
                         std::max<uint64_t>(state.stats.max_depth, depth);)
      --depth;
      unbind(depth);
      continue;
    }

    if (depth + 1 == depth_count) {
      CFL_STATS_ONLY(++state.stats.core_visits;
                     state.stats.max_depth = depth_count;)
      bool keep_going = visit();
      unbind(depth);  // retry next candidate at this depth
      if (!keep_going) {
        for (size_t d = 0; d < depth; ++d) unbind(d);
        return EnumerateStatus::kStopped;
      }
      continue;
    }

    ++depth;
    cursor[depth] = 0;
    rebuild_plan(depth);
    CFL_STATS_ONLY(rebuild_hub_prefix(depth);)
    // Touch the adjacency-offset pair the next iteration dereferences for
    // the freshly entered step while the plan/prefix rebuilds retire.
    if (prefetch && steps[depth].parent != kInvalidVertex) {
      cpi.PrefetchAdjacency(steps[depth].u,
                            state.position[steps[depth].parent]);
    }
  }
}

}  // namespace cfl

#endif  // CFL_MATCH_ENUMERATOR_H_
