// Leaf-Match (paper Section 4.4).
//
// Given an embedding of V_C (core) and V_T (forest), the remaining leaf
// vertices V_I are degree-one, so each leaf u's candidates are simply
// C(u) = N_u^{u.p}(M(u.p)) minus already-used data vertices. Leaves with
// different labels can never conflict (Lemma 4.3), so V_I splits into label
// classes whose embedding sets combine by Cartesian product — which
// CFL-Match never materializes: class counts are multiplied ("compress the
// mappings of leaf vertices on the fly").
//
// Within a label class, leaves sharing a parent form NEC groups with
// identical candidate sets; a group of size k maps to a *combination* of k
// candidates, contributing ordered assignments by a multinomial/falling-
// factorial expansion (exactly the paper's combination-then-permute
// counting, generalized to capacity > 1 for compressed data graphs).
//
// Two modes:
//   * CountEmbeddings: exact number of leaf completions (saturating).
//   * EnumerateEmbeddings: backtracks over individual leaves and invokes a
//     visitor per full leaf assignment (plain-graph enumeration API).

#ifndef CFL_MATCH_LEAF_MATCH_H_
#define CFL_MATCH_LEAF_MATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cpi/cpi.h"
#include "graph/graph.h"
#include "match/embedding.h"
#include "match/enumerator.h"

namespace cfl {

class LeafMatcher {
 public:
  // `leaves` = V_I of the query. Grouping (label classes, NEC groups) is
  // precomputed once per query; per-embedding calls only read the CPI.
  LeafMatcher(const Graph& q, const Cpi& cpi, std::vector<VertexId> leaves);

  bool HasLeaves() const { return !leaves_.empty(); }

  // Exact number of ways to extend the partial embedding in `state` (which
  // must cover every leaf parent) to all of V_I. Saturates at kNoLimit.
  // Accounts for remaining capacity on compressed data graphs.
  uint64_t CountEmbeddings(const Graph& data, const EnumeratorState& state) const;

  // Enumerates leaf assignments, writing them into state.mapping/used and
  // calling visit() per complete assignment; visit returns false to stop.
  // Restores `state` before returning.
  template <typename Visitor>
  EnumerateStatus EnumerateEmbeddings(const Graph& data,
                                      EnumeratorState& state,
                                      Deadline& deadline,
                                      Visitor&& visit) const;

 private:
  // NEC group: leaves with identical (label, parent) — identical candidates.
  struct NecGroup {
    std::vector<VertexId> members;
    VertexId parent = kInvalidVertex;
  };
  // A label class: all NEC groups of one label; classes are independent.
  struct LabelClass {
    Label label = 0;
    std::vector<NecGroup> groups;
  };

  // Collects the available candidates of `group` under `state` into `out`
  // (data vertices with remaining capacity, paired with that capacity).
  void AvailableCandidates(const Graph& data, const EnumeratorState& state,
                           const NecGroup& group,
                           std::vector<std::pair<VertexId, uint32_t>>* out) const;

  uint64_t CountClass(const Graph& data, const EnumeratorState& state,
                      const LabelClass& cls) const;

  const Cpi* cpi_;
  std::vector<VertexId> leaves_;
  std::vector<LabelClass> classes_;
  std::vector<VertexId> flat_leaves_;  // class-major order for enumeration

  // Reused per-call scratch. CountEmbeddings runs once per partial core+
  // forest embedding — the hot loop of the whole matcher — so it must not
  // allocate. LeafMatcher is consequently not thread-safe; the parallel
  // matcher gives each enumeration worker its own copy (copying is cheap:
  // the grouping vectors plus this scratch), all pointing at the one
  // shared immutable CPI.
  // cfl-lint: allow(mutable-member) per-call scratch; never shared — each enumeration worker owns a private LeafMatcher copy (DESIGN.md §7)
  mutable std::vector<std::vector<std::pair<VertexId, uint32_t>>> avail_;
};

// ---- template implementation -------------------------------------------

template <typename Visitor>
EnumerateStatus LeafMatcher::EnumerateEmbeddings(const Graph& data,
                                                 EnumeratorState& state,
                                                 Deadline& deadline,
                                                 Visitor&& visit) const {
  if (flat_leaves_.empty()) {
    return visit() ? EnumerateStatus::kDone : EnumerateStatus::kStopped;
  }
  // Straightforward backtracking over individual leaves: candidate lists
  // come from the CPI adjacency under each leaf's parent mapping. Leaves
  // are visited class-major so conflicts cluster early.
  const size_t k = flat_leaves_.size();
  std::vector<uint32_t> cursor(k, 0);
  size_t depth = 0;

  auto unbind = [&](size_t d) {
    VertexId u = flat_leaves_[d];
    --state.used[state.mapping[u]];
    state.mapping[u] = kInvalidVertex;
  };

  while (true) {
    if (deadline.ExpiredCoarse()) {
      for (size_t d = 0; d < depth; ++d) unbind(d);
      return EnumerateStatus::kTimedOut;
    }
    VertexId u = flat_leaves_[depth];
    VertexId parent = cpi_->tree().parent[u];
    std::span<const uint32_t> adjacent =
        cpi_->AdjacentPositions(u, state.position[parent]);

    bool bound = false;
    while (cursor[depth] < adjacent.size()) {
      uint32_t pos = adjacent[cursor[depth]++];
      VertexId v = cpi_->CandidateAt(u, pos);
      if (state.used[v] >= data.multiplicity(v)) continue;
      state.mapping[u] = v;
      ++state.used[v];
      bound = true;
      break;
    }
    if (!bound) {
      if (depth == 0) return EnumerateStatus::kDone;
      --depth;
      unbind(depth);
      continue;
    }
    if (depth + 1 == k) {
      bool keep_going = visit();
      unbind(depth);
      if (!keep_going) {
        for (size_t d = 0; d < depth; ++d) unbind(d);
        return EnumerateStatus::kStopped;
      }
      continue;
    }
    ++depth;
    cursor[depth] = 0;
  }
}

}  // namespace cfl

#endif  // CFL_MATCH_LEAF_MATCH_H_
