#include "match/iterator.h"

#include "check/check.h"
#include "check/narrow.h"
#include "match/cfl_match.h"

namespace cfl {

// ---- StepEnumerator -------------------------------------------------------

StepEnumerator::StepEnumerator(const Graph& data, const Cpi& cpi,
                               const std::vector<MatchStep>& steps,
                               EnumeratorState* state, Deadline* deadline)
    : data_(data),
      cpi_(cpi),
      steps_(steps),
      state_(state),
      deadline_(deadline),
      cursor_(steps.size(), 0),
      plans_(steps.size()) {}

void StepEnumerator::RebuildPlan(size_t depth) {
  kernels::BackwardPlan& plan = plans_[depth];
  plan.Reset();
  for (VertexId w : steps_[depth].backward) {
    plan.Add(data_, state_->mapping[w]);
  }
}

void StepEnumerator::Abort() {
  for (size_t d = 0; d < bound_; ++d) {
    VertexId u = steps_[d].u;
    --state_->used[state_->mapping[u]];
    state_->mapping[u] = kInvalidVertex;
  }
  bound_ = 0;
  exhausted_ = true;
}

bool StepEnumerator::Next() {
  if (exhausted_) return false;
  const size_t n = steps_.size();
  if (n == 0) {  // vacuous step list: one empty binding
    exhausted_ = true;
    return true;
  }

  size_t depth;
  if (bound_ == n) {
    // Resume: release the deepest binding and search onward from its cursor.
    depth = n - 1;
    VertexId u = steps_[depth].u;
    --state_->used[state_->mapping[u]];
    state_->mapping[u] = kInvalidVertex;
    bound_ = depth;
  } else {
    CFL_DCHECK_EQ(bound_, 0u)
        << " StepEnumerator::Next resumed with a partial binding";
    depth = 0;
    cursor_[0] = 0;
    RebuildPlan(0);
  }

  while (true) {
    // Same cooperative-deadline granularity as EnumeratePartial: one coarse
    // check per depth visit, so a resumed search cannot outlive its budget
    // no matter how barren the subtree is.
    if (deadline_ != nullptr && deadline_->ExpiredCoarse()) {
      bound_ = depth;
      timed_out_ = true;
      Abort();
      return false;
    }

    const MatchStep& step = steps_[depth];
    const bool is_root = (depth == 0 && step.parent == kInvalidVertex);
    std::span<const uint32_t> adjacent;
    uint32_t limit;
    if (is_root) {
      limit = CheckedCandidateCount(cpi_.Candidates(step.u).size());
    } else {
      adjacent = cpi_.AdjacentPositions(step.u, state_->position[step.parent]);
      limit = CheckedCandidateCount(adjacent.size());
    }

    bool bound_here = false;
    while (cursor_[depth] < limit) {
      uint32_t pos = is_root ? cursor_[depth] : adjacent[cursor_[depth]];
      ++cursor_[depth];
      VertexId v = cpi_.CandidateAt(step.u, pos);
      if (state_->used[v] >= data_.multiplicity(v)) continue;
      // Backward non-tree edges, batched against the per-descent plan
      // exactly as EnumeratePartial does.
      if (kernels::VerifyBackwardEdges(data_, plans_[depth], v) !=
          plans_[depth].edges.size()) {
        continue;
      }
      state_->mapping[step.u] = v;
      state_->position[step.u] = pos;
      ++state_->used[v];
      bound_here = true;
      break;
    }

    if (bound_here) {
      bound_ = depth + 1;
      if (bound_ == n) return true;
      ++depth;
      cursor_[depth] = 0;
      RebuildPlan(depth);
      continue;
    }
    if (depth == 0) {
      bound_ = 0;
      exhausted_ = true;
      return false;
    }
    --depth;
    VertexId u = steps_[depth].u;
    --state_->used[state_->mapping[u]];
    state_->mapping[u] = kInvalidVertex;
    bound_ = depth;
  }
}

// ---- LeafEnumerator -------------------------------------------------------

LeafEnumerator::LeafEnumerator(const Graph& data, const Cpi& cpi,
                               const std::vector<VertexId>& leaves,
                               EnumeratorState* state, Deadline* deadline)
    : data_(data),
      cpi_(cpi),
      leaves_(leaves),
      state_(state),
      deadline_(deadline),
      cursor_(leaves.size(), 0),
      exhausted_(true) {}

void LeafEnumerator::Abort() {
  for (size_t d = 0; d < bound_; ++d) {
    VertexId u = leaves_[d];
    --state_->used[state_->mapping[u]];
    state_->mapping[u] = kInvalidVertex;
  }
  bound_ = 0;
  exhausted_ = true;
}

void LeafEnumerator::Reset() {
  Abort();
  exhausted_ = false;
}

bool LeafEnumerator::Next() {
  if (exhausted_) return false;
  const size_t n = leaves_.size();
  if (n == 0) {  // no leaves: one vacuous completion per Reset
    exhausted_ = true;
    return true;
  }

  size_t depth;
  if (bound_ == n) {
    depth = n - 1;
    VertexId u = leaves_[depth];
    --state_->used[state_->mapping[u]];
    state_->mapping[u] = kInvalidVertex;
    bound_ = depth;
  } else {
    CFL_DCHECK_EQ(bound_, 0u)
        << " LeafEnumerator::Next resumed with a partial binding";
    depth = 0;
    cursor_[0] = 0;
  }

  while (true) {
    if (deadline_ != nullptr && deadline_->ExpiredCoarse()) {
      bound_ = depth;
      timed_out_ = true;
      Abort();
      return false;
    }

    VertexId u = leaves_[depth];
    VertexId parent = cpi_.tree().parent[u];
    std::span<const uint32_t> adjacent =
        cpi_.AdjacentPositions(u, state_->position[parent]);

    bool bound_here = false;
    while (cursor_[depth] < adjacent.size()) {
      uint32_t pos = adjacent[cursor_[depth]++];
      VertexId v = cpi_.CandidateAt(u, pos);
      if (state_->used[v] >= data_.multiplicity(v)) continue;
      state_->mapping[u] = v;
      ++state_->used[v];
      bound_here = true;
      break;
    }
    if (bound_here) {
      bound_ = depth + 1;
      if (bound_ == n) return true;
      ++depth;
      cursor_[depth] = 0;
      continue;
    }
    if (depth == 0) {
      bound_ = 0;
      exhausted_ = true;
      return false;
    }
    --depth;
    VertexId w = leaves_[depth];
    --state_->used[state_->mapping[w]];
    state_->mapping[w] = kInvalidVertex;
    bound_ = depth;
  }
}

// ---- EmbeddingIterator ------------------------------------------------------

struct EmbeddingIterator::Pipeline {
  // Shared ownership keeps cached plans alive while a stream runs; for the
  // self-preparing constructor the iterator is the only owner.
  std::shared_ptr<const PreparedQuery> prepared;
  Deadline deadline;
  EnumeratorState state;
  StepEnumerator steps;
  LeafEnumerator leaves;
  bool inner_active = false;
  bool dead = false;  // empty candidate set: no embeddings at all

  Pipeline(const Graph& data, std::shared_ptr<const PreparedQuery> plan,
           const MatchLimits& limits)
      : prepared(std::move(plan)),
        deadline(limits.time_limit_seconds),
        state(CheckedU32(prepared->cpi.tree().parent.size()),
              data.NumVertices()),
        steps(data, prepared->cpi, prepared->order.steps, &state, &deadline),
        leaves(data, prepared->cpi, prepared->order.leaves, &state,
               &deadline),
        dead(prepared->no_results) {}
};

EmbeddingIterator::~EmbeddingIterator() = default;
EmbeddingIterator::EmbeddingIterator(EmbeddingIterator&&) noexcept = default;
EmbeddingIterator& EmbeddingIterator::operator=(EmbeddingIterator&&) noexcept =
    default;

EmbeddingIterator::EmbeddingIterator(const Graph& data, const Graph& query,
                                     const MatchLimits& limits)
    : cap_(limits.max_embeddings) {
  // Front half of CflMatcher::Match: decomposition, root, CPI, order.
  CflMatcher matcher(data);
  p_ = std::make_unique<Pipeline>(
      data, std::make_shared<const PreparedQuery>(matcher.Prepare(query)),
      limits);
}

EmbeddingIterator::EmbeddingIterator(
    const Graph& data, std::shared_ptr<const PreparedQuery> prepared,
    const MatchLimits& limits)
    : cap_(limits.max_embeddings) {
  CFL_CHECK(prepared != nullptr);
  p_ = std::make_unique<Pipeline>(data, std::move(prepared), limits);
}

bool EmbeddingIterator::Next(Embedding* out) {
  if (exhausted_ || p_->dead || produced_ >= cap_) {
    exhausted_ = true;
    return false;
  }
  while (true) {
    if (!p_->inner_active) {
      if (!p_->steps.Next()) {
        exhausted_ = true;
        return false;
      }
      p_->leaves.Reset();
      p_->inner_active = true;
    }
    if (p_->leaves.Next()) {
      *out = p_->state.mapping;
      ++produced_;
      return true;
    }
    if (p_->leaves.timed_out()) {
      exhausted_ = true;
      return false;
    }
    p_->inner_active = false;
  }
}

bool EmbeddingIterator::timed_out() const {
  return p_ != nullptr && (p_->steps.timed_out() || p_->leaves.timed_out());
}

}  // namespace cfl
