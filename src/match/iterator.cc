#include "match/iterator.h"

#include "check/check.h"
#include "check/narrow.h"
#include "cpi/candidate_filter.h"
#include "cpi/cpi_builder.h"
#include "cpi/root_select.h"
#include "decomp/cfl_decomposition.h"
#include "decomp/two_core.h"

namespace cfl {

// ---- StepEnumerator -------------------------------------------------------

StepEnumerator::StepEnumerator(const Graph& data, const Cpi& cpi,
                               const std::vector<MatchStep>& steps,
                               EnumeratorState* state)
    : data_(data),
      cpi_(cpi),
      steps_(steps),
      state_(state),
      cursor_(steps.size(), 0) {}

void StepEnumerator::Abort() {
  for (size_t d = 0; d < bound_; ++d) {
    VertexId u = steps_[d].u;
    --state_->used[state_->mapping[u]];
    state_->mapping[u] = kInvalidVertex;
  }
  bound_ = 0;
  exhausted_ = true;
}

bool StepEnumerator::Next() {
  if (exhausted_) return false;
  const size_t n = steps_.size();
  if (n == 0) {  // vacuous step list: one empty binding
    exhausted_ = true;
    return true;
  }

  size_t depth;
  if (bound_ == n) {
    // Resume: release the deepest binding and search onward from its cursor.
    depth = n - 1;
    VertexId u = steps_[depth].u;
    --state_->used[state_->mapping[u]];
    state_->mapping[u] = kInvalidVertex;
    bound_ = depth;
  } else {
    CFL_DCHECK_EQ(bound_, 0u)
        << " StepEnumerator::Next resumed with a partial binding";
    depth = 0;
    cursor_[0] = 0;
  }

  while (true) {
    const MatchStep& step = steps_[depth];
    const bool is_root = (depth == 0 && step.parent == kInvalidVertex);
    std::span<const uint32_t> adjacent;
    uint32_t limit;
    if (is_root) {
      limit = CheckedCandidateCount(cpi_.Candidates(step.u).size());
    } else {
      adjacent = cpi_.AdjacentPositions(step.u, state_->position[step.parent]);
      limit = CheckedCandidateCount(adjacent.size());
    }

    bool bound_here = false;
    while (cursor_[depth] < limit) {
      uint32_t pos = is_root ? cursor_[depth] : adjacent[cursor_[depth]];
      ++cursor_[depth];
      VertexId v = cpi_.CandidateAt(step.u, pos);
      if (state_->used[v] >= data_.multiplicity(v)) continue;
      bool ok = true;
      for (VertexId w : step.backward) {
        if (!data_.HasEdge(state_->mapping[w], v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      state_->mapping[step.u] = v;
      state_->position[step.u] = pos;
      ++state_->used[v];
      bound_here = true;
      break;
    }

    if (bound_here) {
      bound_ = depth + 1;
      if (bound_ == n) return true;
      ++depth;
      cursor_[depth] = 0;
      continue;
    }
    if (depth == 0) {
      bound_ = 0;
      exhausted_ = true;
      return false;
    }
    --depth;
    VertexId u = steps_[depth].u;
    --state_->used[state_->mapping[u]];
    state_->mapping[u] = kInvalidVertex;
    bound_ = depth;
  }
}

// ---- LeafEnumerator -------------------------------------------------------

LeafEnumerator::LeafEnumerator(const Graph& data, const Cpi& cpi,
                               const std::vector<VertexId>& leaves,
                               EnumeratorState* state)
    : data_(data),
      cpi_(cpi),
      leaves_(leaves),
      state_(state),
      cursor_(leaves.size(), 0),
      exhausted_(true) {}

void LeafEnumerator::Abort() {
  for (size_t d = 0; d < bound_; ++d) {
    VertexId u = leaves_[d];
    --state_->used[state_->mapping[u]];
    state_->mapping[u] = kInvalidVertex;
  }
  bound_ = 0;
  exhausted_ = true;
}

void LeafEnumerator::Reset() {
  Abort();
  exhausted_ = false;
}

bool LeafEnumerator::Next() {
  if (exhausted_) return false;
  const size_t n = leaves_.size();
  if (n == 0) {  // no leaves: one vacuous completion per Reset
    exhausted_ = true;
    return true;
  }

  size_t depth;
  if (bound_ == n) {
    depth = n - 1;
    VertexId u = leaves_[depth];
    --state_->used[state_->mapping[u]];
    state_->mapping[u] = kInvalidVertex;
    bound_ = depth;
  } else {
    CFL_DCHECK_EQ(bound_, 0u)
        << " LeafEnumerator::Next resumed with a partial binding";
    depth = 0;
    cursor_[0] = 0;
  }

  while (true) {
    VertexId u = leaves_[depth];
    VertexId parent = cpi_.tree().parent[u];
    std::span<const uint32_t> adjacent =
        cpi_.AdjacentPositions(u, state_->position[parent]);

    bool bound_here = false;
    while (cursor_[depth] < adjacent.size()) {
      uint32_t pos = adjacent[cursor_[depth]++];
      VertexId v = cpi_.CandidateAt(u, pos);
      if (state_->used[v] >= data_.multiplicity(v)) continue;
      state_->mapping[u] = v;
      ++state_->used[v];
      bound_here = true;
      break;
    }
    if (bound_here) {
      bound_ = depth + 1;
      if (bound_ == n) return true;
      ++depth;
      cursor_[depth] = 0;
      continue;
    }
    if (depth == 0) {
      bound_ = 0;
      exhausted_ = true;
      return false;
    }
    --depth;
    VertexId w = leaves_[depth];
    --state_->used[state_->mapping[w]];
    state_->mapping[w] = kInvalidVertex;
    bound_ = depth;
  }
}

// ---- EmbeddingIterator ------------------------------------------------------

struct EmbeddingIterator::Pipeline {
  Cpi cpi;
  MatchingOrder order;
  EnumeratorState state;
  StepEnumerator steps;
  LeafEnumerator leaves;
  bool inner_active = false;
  bool dead = false;  // empty candidate set: no embeddings at all

  Pipeline(const Graph& data, Cpi built_cpi, MatchingOrder built_order)
      : cpi(std::move(built_cpi)),
        order(std::move(built_order)),
        state(CheckedU32(cpi.tree().parent.size()),
              data.NumVertices()),
        steps(data, cpi, order.steps, &state),
        leaves(data, cpi, order.leaves, &state) {}
};

EmbeddingIterator::~EmbeddingIterator() = default;
EmbeddingIterator::EmbeddingIterator(EmbeddingIterator&&) noexcept = default;
EmbeddingIterator& EmbeddingIterator::operator=(EmbeddingIterator&&) noexcept =
    default;

EmbeddingIterator::EmbeddingIterator(const Graph& data, const Graph& query) {
  // Front half of CflMatcher::Match: decomposition, root, CPI, order.
  std::vector<VertexId> core = TwoCoreVertices(query);
  std::vector<VertexId> choices = core;
  if (choices.empty()) {
    for (VertexId u = 0; u < query.NumVertices(); ++u) choices.push_back(u);
  }
  LabelDegreeIndex index(data);
  VertexId root = SelectRoot(query, data, index, choices);
  CflDecomposition decomposition = DecomposeCfl(query, root);
  BfsTree tree = BuildBfsTree(query, root);
  Cpi cpi = BuildCpi(query, data, tree);
  bool dead = cpi.HasEmptyCandidateSet();
  MatchingOrder order =
      dead ? MatchingOrder{}
           : ComputeMatchingOrder(query, cpi, decomposition,
                                  DecompositionMode::kCfl);
  if (dead) {
    // Give the dead pipeline one unmatchable step so Next() terminates
    // immediately (empty candidate list for the root).
    MatchStep step;
    step.u = root;
    order.steps.push_back(step);
  }
  p_ = std::make_unique<Pipeline>(data, std::move(cpi), std::move(order));
  p_->dead = dead;
}

bool EmbeddingIterator::Next(Embedding* out) {
  if (exhausted_ || p_->dead) {
    exhausted_ = true;
    return false;
  }
  while (true) {
    if (!p_->inner_active) {
      if (!p_->steps.Next()) {
        exhausted_ = true;
        return false;
      }
      p_->leaves.Reset();
      p_->inner_active = true;
    }
    if (p_->leaves.Next()) {
      *out = p_->state.mapping;
      ++produced_;
      return true;
    }
    p_->inner_active = false;
  }
}

}  // namespace cfl
