#include "match/cfl_match.h"

#include <chrono>
#include <unordered_map>

#include "check/check.h"
#include "check/validate.h"
#include "cpi/root_select.h"
#include "decomp/cfl_decomposition.h"
#include "decomp/two_core.h"
#include "match/enumerator.h"
#include "match/leaf_match.h"
#include "order/cardinality.h"

namespace cfl {

namespace {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Lap() {
    auto now = std::chrono::steady_clock::now();
    double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

CflMatcher::CflMatcher(const Graph& data)
    : data_(data), label_degree_index_(data), cpi_builder_(data) {
  if (check::DebugValidationEnabled()) {
    ValidationResult r = ValidateGraph(data);
    CFL_CHECK(r.ok) << " — data graph invalid: " << r.error;
  }
}

double CflMatcher::EstimateEmbeddings(const Graph& q) {
  std::vector<VertexId> core = TwoCoreVertices(q);
  std::vector<VertexId> choices = core;
  if (choices.empty()) {
    for (VertexId u = 0; u < q.NumVertices(); ++u) choices.push_back(u);
  }
  VertexId root = SelectRoot(q, data_, label_degree_index_, choices);
  BfsTree tree = BuildBfsTree(q, root);
  Cpi cpi = cpi_builder_.Build(q, tree, CpiStrategy::kRefined);
  if (cpi.HasEmptyCandidateSet()) return 0.0;
  std::vector<bool> all(q.NumVertices(), true);
  return TreeCardinality(cpi, root, all);
}

PreparedQuery CflMatcher::Prepare(const Graph& q, const MatchOptions& options) {
  PreparedQuery prepared;
  WallTimer phase_timer;

  // --- Decomposition, root selection, BFS tree --------------------------
  std::vector<VertexId> core = TwoCoreVertices(q);
  const std::vector<VertexId>* root_choices = &core;
  std::vector<VertexId> all_vertices;
  if (core.empty()) {
    // Tree query: the core degenerates to the root, chosen among all.
    all_vertices.resize(q.NumVertices());
    for (VertexId v = 0; v < q.NumVertices(); ++v) all_vertices[v] = v;
    root_choices = &all_vertices;
  }
  VertexId root = SelectRoot(q, data_, label_degree_index_, *root_choices);
  prepared.decomposition = DecomposeCfl(q, root);
  prepared.tree = BuildBfsTree(q, root);

  // --- CPI ----------------------------------------------------------------
  prepared.cpi = cpi_builder_.Build(q, prepared.tree, options.cpi_strategy);
  prepared.build_seconds = phase_timer.Lap();

  // Debug validation (CFL_VALIDATE=1 / CFL_FORCE_VALIDATE): re-check the
  // structures enumeration will trust blindly; see check/validate.h.
  if (check::DebugValidationEnabled()) {
    ValidationResult r = ValidateDecomposition(q, prepared.decomposition);
    CFL_CHECK(r.ok) << " — decomposition invalid: " << r.error;
    r = ValidateCpi(q, data_, prepared.cpi);
    CFL_CHECK(r.ok) << " — CPI invalid: " << r.error;
  }

  if (prepared.cpi.HasEmptyCandidateSet()) {
    prepared.no_results = true;
    return prepared;
  }

  // --- Matching order ----------------------------------------------------
  prepared.order =
      ComputeMatchingOrder(q, prepared.cpi, prepared.decomposition,
                           options.decomposition, options.ordering);
  prepared.order_seconds = phase_timer.Lap();
  return prepared;
}

MatchResult CflMatcher::Match(const Graph& q, const MatchOptions& options) {
  MatchResult result;
  WallTimer total_timer;

  PreparedQuery prepared = Prepare(q, options);
  const Cpi& cpi = prepared.cpi;
  const MatchingOrder& order = prepared.order;
  result.build_seconds = prepared.build_seconds;
  result.order_seconds = prepared.order_seconds;
  result.index_entries = cpi.SizeInEntries();

  if (prepared.no_results) {
    result.total_seconds = total_timer.Lap();
    return result;
  }

  // --- Enumeration -------------------------------------------------------
  WallTimer phase_timer;
  Deadline deadline(options.limits.time_limit_seconds);
  EnumeratorState state(q.NumVertices(), data_.NumVertices());
  LeafMatcher leaf_matcher(q, cpi, order.leaves);
  const uint64_t cap = options.limits.max_embeddings;
  const bool compressed = data_.HasMultiplicities();

  EnumerateStatus status;
  if (!options.on_embedding) {
    // Counting mode: leaf completions are counted as Cartesian products of
    // label-class counts — never materialized.
    status = EnumeratePartial(
        data_, cpi, order.steps, state, deadline, [&]() {
          uint64_t count = 1;
          if (compressed) {
            // Unmatched leaf entries are kInvalidVertex and skipped; the
            // leaf count below already accounts for leaf expansions.
            count = ExpansionFactor(data_, state.mapping);
          }
          if (leaf_matcher.HasLeaves()) {
            count = SaturatingMul(
                count, leaf_matcher.CountEmbeddings(data_, state));
          }
          result.embeddings = SaturatingAdd(result.embeddings, count);
          return result.embeddings < cap;
        });
  } else {
    // Enumeration mode: expand leaf assignments and invoke the callback.
    const bool validate_embeddings = check::DebugValidationEnabled();
    status = EnumeratePartial(
        data_, cpi, order.steps, state, deadline, [&]() {
          EnumerateStatus leaf_status = leaf_matcher.EnumerateEmbeddings(
              data_, state, deadline, [&]() {
                ++result.embeddings;
                if (validate_embeddings) {
                  ValidationResult r =
                      ValidateEmbedding(q, data_, state.mapping);
                  CFL_CHECK(r.ok) << " — emitted embedding invalid: "
                                  << r.error;
                }
                bool keep = options.on_embedding(state.mapping);
                return keep && result.embeddings < cap;
              });
          if (leaf_status == EnumerateStatus::kTimedOut) {
            result.timed_out = true;
          }
          return leaf_status == EnumerateStatus::kDone;
        });
  }

  if (status == EnumerateStatus::kTimedOut) result.timed_out = true;
  result.reached_limit = !result.timed_out && result.embeddings >= cap;

  result.candidates_tried = state.candidates_tried;
  result.candidates_bound = state.candidates_bound;
  result.enumerate_seconds = phase_timer.Lap();
  result.total_seconds = total_timer.Lap();
  return result;
}

}  // namespace cfl
